package rankeval

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/forest"
	"repro/internal/selection"
	"repro/internal/simulate"
	"repro/internal/smart"
)

func testSource(t *testing.T) dataset.Source {
	t.Helper()
	f, err := simulate.New(simulate.Config{
		TotalDrives: 600, Seed: 5, AFRScale: 4,
		Models: []smart.ModelID{smart.MC1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return dataset.FleetSource{Fleet: f}
}

func testCfg() engine.Config {
	return engine.Config{
		Forest:   forest.Config{NumTrees: 8, MaxDepth: 6, Seed: 1},
		NegEvery: 40,
		Seed:     1,
	}
}

// quickOpts keeps the harness cheap enough for CI smoke runs under
// -race while still exercising every metric.
func quickOpts() Options {
	return Options{Seed: 3, Bootstraps: 3, Seeds: 2, TopK: []int{3, 6}}
}

// TestRankEvalSmoke is the CI rank-eval-smoke entry point: every
// registered ranker plus the WEFR ensemble must evaluate on a small
// fleet without a single ranker error, and every metric must land in
// its defined range.
func TestRankEvalSmoke(t *testing.T) {
	src := testSource(t)
	ph := engine.StandardPhases(src.Days())[2]
	res, err := Run(src, smart.MC1, ph, testCfg(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	wantRows := len(selection.Registered()) + 1
	if len(res.Rows) != wantRows {
		t.Fatalf("rows = %d, want %d (every registered ranker + WEFR)", len(res.Rows), wantRows)
	}
	if res.Rows[len(res.Rows)-1].Spec != WEFRSpec {
		t.Errorf("last row spec = %q, want %q", res.Rows[len(res.Rows)-1].Spec, WEFRSpec)
	}
	for _, row := range res.Rows {
		if len(row.Errors) > 0 {
			t.Errorf("%s: ranker errors: %v", row.Name, row.Errors)
		}
		if row.Stability < -1 || row.Stability > 1.0000001 {
			t.Errorf("%s: stability %v out of range", row.Name, row.Stability)
		}
		if row.SeedSimilarity < -1 || row.SeedSimilarity > 1.0000001 {
			t.Errorf("%s: seed similarity %v out of range", row.Name, row.SeedSimilarity)
		}
		if len(row.AUC) != 2 {
			t.Fatalf("%s: %d AUC points, want 2", row.Name, len(row.AUC))
		}
		for _, p := range row.AUC {
			if p.AUC != -1 && (p.AUC < 0 || p.AUC > 1) {
				t.Errorf("%s: AUC@%d = %v out of range", row.Name, p.K, p.AUC)
			}
		}
	}
	// Deterministic rankers must be perfectly seed-stable.
	for _, row := range res.Rows {
		switch row.Spec {
		case "pearson", "spearman", "j-index", "mutual-info":
			if row.SeedSimilarity < 0.9999999 {
				t.Errorf("%s: deterministic ranker seed similarity = %v, want 1", row.Name, row.SeedSimilarity)
			}
		}
	}
}

// TestRankEvalDeterminism pins that a fixed seed reproduces the whole
// report bit for bit, and that it serializes to JSON (no NaNs — the -1
// sentinel convention).
func TestRankEvalDeterminism(t *testing.T) {
	src := testSource(t)
	ph := engine.StandardPhases(src.Days())[2]
	opts := quickOpts()
	opts.Specs = []string{"pearson", "random-forest", "svm-margin"}
	a, err := Run(src, smart.MC1, ph, testCfg(), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(testSource(t), smart.MC1, ph, testCfg(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("reports differ across identical runs:\n%+v\n%+v", a, b)
	}
	blob, err := json.Marshal(a)
	if err != nil {
		t.Fatalf("report not JSON-serializable: %v", err)
	}
	if strings.Contains(string(blob), "NaN") {
		t.Errorf("JSON report contains NaN: %s", blob)
	}
	if got := len(a.Rows); got != 4 {
		t.Errorf("rows = %d, want 3 specs + WEFR", got)
	}
}

func TestRankEvalUnknownSpec(t *testing.T) {
	src := testSource(t)
	ph := engine.StandardPhases(src.Days())[2]
	opts := quickOpts()
	opts.Specs = []string{"no-such-ranker"}
	if _, err := Run(src, smart.MC1, ph, testCfg(), opts); err == nil {
		t.Fatal("unknown spec did not error")
	}
}

func TestRenderTable(t *testing.T) {
	res := Result{
		Model: "MC1", Samples: 10, Features: 4,
		Bootstraps: 2, Seeds: 2, TopK: []int{2}, Seed: 3,
		Rows: []Row{
			{Spec: "pearson", Name: "Pearson", Stability: 0.91234, SeedSimilarity: 1, AUC: []AUCPoint{{K: 2, AUC: 0.75}}},
			{Spec: WEFRSpec, Name: "WEFR ensemble", Stability: -1, SeedSimilarity: -1, AUC: []AUCPoint{{K: 2, AUC: -1}}, Errors: []string{"x"}},
		},
	}
	out := res.Render()
	for _, want := range []string{"Pearson", "WEFR ensemble", "0.912", "AUC@2", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

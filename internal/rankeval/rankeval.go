// Package rankeval is a principled evaluation harness for feature
// rankers, following the methodology of Overschie et al. ("A novel
// evaluation methodology for supervised Feature Ranking algorithms"):
// instead of judging a ranker only by the accuracy of one downstream
// model on one split, it measures, for every registered ranker plus
// the WEFR ensemble,
//
//   - stability — the mean pairwise Spearman correlation of the
//     rankings produced on B stratified bootstrap resamples of the
//     selection frame (does the ranking survive sampling noise?),
//   - seed similarity — the mean pairwise Spearman correlation of the
//     rankings produced on the full frame under S different seeds
//     (deterministic rankers score exactly 1), and
//   - AUC-vs-k — the threshold-free accuracy (drive-level ROC AUC) of
//     the downstream prediction model trained on the ranker's top-k
//     features, for each configured k.
//
// The harness runs on one (model, phase) of the staged engine workflow
// and reuses its Ingest/Featurize output across all entrants, so every
// ranker is judged on the identical frame, survival curve, and
// downstream training procedure. Results are deterministic for a fixed
// seed and JSON-serializable (non-computable metrics use the -1
// sentinel, never NaN).
package rankeval

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/frame"
	"repro/internal/selection"
	"repro/internal/smart"
	"repro/internal/stats"
	"repro/internal/textplot"
)

// WEFRSpec is the reserved entrant name for the full WEFR ensemble
// (the paper's five preliminary approaches aggregated with outlier
// removal), evaluated alongside the individual rankers.
const WEFRSpec = "WEFR"

// Options scales the evaluation.
type Options struct {
	// Specs names the registered rankers to evaluate; nil means every
	// registered ranker (selection.Registered()). The WEFR ensemble is
	// always evaluated in addition.
	Specs []string
	// Seed is the base seed: bootstrap resamples derive from it and
	// the seed-similarity sweep uses Seed..Seed+Seeds-1.
	Seed int64
	// Bootstraps is the resample count B for stability; 0 means 8.
	Bootstraps int
	// Seeds is the seed count S for cross-seed similarity; 0 means 3.
	Seeds int
	// TopK are the cut points of the AUC-vs-k curve; nil means
	// {2, 4, 8, 16}. Values above the feature count are clamped.
	TopK []int
}

func (o Options) withDefaults() Options {
	if o.Specs == nil {
		o.Specs = selection.Registered()
	}
	if o.Bootstraps == 0 {
		o.Bootstraps = 8
	}
	if o.Seeds == 0 {
		o.Seeds = 3
	}
	if o.TopK == nil {
		o.TopK = []int{2, 4, 8, 16}
	}
	return o
}

// AUCPoint is one point of an AUC-vs-k curve.
type AUCPoint struct {
	K int `json:"k"`
	// AUC is the drive-level ROC AUC of the downstream model trained
	// on the top-K features; -1 when not computable.
	AUC float64 `json:"auc"`
}

// Row is one entrant's evaluation.
type Row struct {
	// Spec is the registry spec (or WEFRSpec for the ensemble).
	Spec string `json:"spec"`
	// Name is the entrant's display name.
	Name string `json:"name"`
	// Stability is the mean pairwise Spearman correlation across the
	// bootstrap rankings; -1 when fewer than two rankings succeeded or
	// every pairwise correlation was undefined.
	Stability float64 `json:"stability"`
	// SeedSimilarity is the mean pairwise Spearman correlation across
	// the per-seed rankings; -1 when not computable.
	SeedSimilarity float64 `json:"seed_similarity"`
	// AUC is the AUC-vs-k curve, one point per requested k.
	AUC []AUCPoint `json:"auc_vs_k"`
	// Errors lists every failure hit while evaluating the entrant
	// (failed resamples, downstream training errors, ...).
	Errors []string `json:"errors,omitempty"`
}

// Result is the full evaluation report.
type Result struct {
	// Model is the drive model evaluated.
	Model string `json:"model"`
	// Samples and Features describe the selection frame.
	Samples  int `json:"samples"`
	Features int `json:"features"`
	// Bootstraps, Seeds, TopK, and Seed echo the effective options.
	Bootstraps int   `json:"bootstraps"`
	Seeds      int   `json:"seeds"`
	TopK       []int `json:"top_k"`
	Seed       int64 `json:"seed"`
	// Rows holds one evaluation per entrant, in Specs order with the
	// WEFR ensemble last.
	Rows []Row `json:"rows"`
}

// ranking is one entrant's way of producing a rank vector (1 = most
// important, aligned with the frame's feature columns) for a given
// seed.
type ranking func(seed int64, fr *frame.Frame) ([]float64, error)

// entrant is one evaluated ranking method.
type entrant struct {
	spec, name string
	rank       ranking
}

// Run evaluates the configured rankers on one (model, phase) of the
// staged engine workflow over src. All entrants share a single
// Ingest/Featurize pass; the downstream model for the AUC-vs-k curves
// is trained with cfg exactly as the experiments train theirs.
func Run(src dataset.Source, model smart.ModelID, ph engine.Phase, cfg engine.Config, opts Options) (Result, error) {
	opts = opts.withDefaults()
	entrants := make([]entrant, 0, len(opts.Specs)+1)
	for _, spec := range opts.Specs {
		r, err := selection.Resolve(spec, opts.Seed, cfg.SplitMethod)
		if err != nil {
			return Result{}, fmt.Errorf("rankeval: %w", err)
		}
		spec := spec
		entrants = append(entrants, entrant{spec, r.Name(), func(seed int64, fr *frame.Frame) ([]float64, error) {
			// Re-resolve per seed so seed-sensitive rankers actually
			// vary across the similarity sweep.
			rk, err := selection.Resolve(spec, seed, cfg.SplitMethod)
			if err != nil {
				return nil, err
			}
			res, err := rk.Rank(fr)
			if err != nil {
				return nil, err
			}
			return res.Ranks, nil
		}})
	}
	entrants = append(entrants, entrant{WEFRSpec, "WEFR ensemble", func(seed int64, fr *frame.Frame) ([]float64, error) {
		sel, err := core.SelectFeatures(fr, core.Config{Seed: seed, SplitMethod: cfg.SplitMethod})
		if err != nil {
			return nil, err
		}
		return sel.FinalRanks, nil
	}})

	pd, err := engine.PreparePhase(src, model, ph, cfg)
	if err != nil {
		return Result{}, fmt.Errorf("rankeval: %w", err)
	}
	fr := pd.SelFrame
	res := Result{
		Model:      model.String(),
		Samples:    fr.NumRows(),
		Features:   fr.NumFeatures(),
		Bootstraps: opts.Bootstraps,
		Seeds:      opts.Seeds,
		TopK:       append([]int(nil), opts.TopK...),
		Seed:       opts.Seed,
	}

	// One set of stratified resamples, shared by every entrant so their
	// stability numbers are comparable.
	resamples := make([]*frame.Frame, opts.Bootstraps)
	for i, idx := range bootstrapSets(fr, opts.Bootstraps, opts.Seed) {
		resamples[i] = fr.SubsetRows(idx)
	}

	for _, e := range entrants {
		row := Row{Spec: e.spec, Name: e.name, Stability: -1, SeedSimilarity: -1}
		fail := func(stage string, err error) {
			row.Errors = append(row.Errors, fmt.Sprintf("%s: %v", stage, err))
		}

		// (a) Stability under bootstrap resampling.
		var boot [][]float64
		for i, sub := range resamples {
			ranks, err := e.rank(opts.Seed, sub)
			if err != nil {
				fail(fmt.Sprintf("bootstrap %d", i), err)
				continue
			}
			boot = append(boot, ranks)
		}
		row.Stability = meanPairwiseSpearman(boot)

		// (b) Rank similarity across seeds, on the full frame. The
		// base-seed ranking doubles as the ranking the AUC-vs-k curve
		// truncates.
		var seeded [][]float64
		for s := 0; s < opts.Seeds; s++ {
			ranks, err := e.rank(opts.Seed+int64(s), fr)
			if err != nil {
				fail(fmt.Sprintf("seed %d", opts.Seed+int64(s)), err)
				continue
			}
			seeded = append(seeded, ranks)
		}
		row.SeedSimilarity = meanPairwiseSpearman(seeded)

		// (c) AUC-vs-k with the downstream model on the top-k features.
		var order []int
		if len(seeded) > 0 {
			order = stats.ArgsortAscending(seeded[0])
		}
		for _, k := range opts.TopK {
			point := AUCPoint{K: k, AUC: -1}
			if order != nil {
				n := k
				if n > len(order) {
					n = len(order)
				}
				names := make([]string, n)
				for i, f := range order[:n] {
					names[i] = fr.Names()[f]
				}
				label := fmt.Sprintf("rank-eval %s top-%d", e.name, k)
				pr, err := pd.RunSelection(label, engine.SelectorResult{All: names})
				if err != nil {
					fail(fmt.Sprintf("top-%d", k), err)
				} else if auc, err := engine.AUC(pr.Outcomes); err != nil {
					fail(fmt.Sprintf("top-%d auc", k), err)
				} else {
					point.AUC = auc
				}
			}
			row.AUC = append(row.AUC, point)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// bootstrapSets draws b stratified bootstrap index sets: positives and
// negatives are resampled with replacement separately, so every
// resample keeps the original class counts and no resample collapses
// to a single class. Deterministic in seed.
func bootstrapSets(fr *frame.Frame, b int, seed int64) [][]int {
	var pos, neg []int
	for i, y := range fr.Labels() {
		if y == 1 {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	rng := rand.New(rand.NewSource(seed*0x9E3779B9 + 0xB00757A9))
	sets := make([][]int, b)
	for s := range sets {
		idx := make([]int, 0, fr.NumRows())
		for range pos {
			idx = append(idx, pos[rng.Intn(len(pos))])
		}
		for range neg {
			idx = append(idx, neg[rng.Intn(len(neg))])
		}
		sort.Ints(idx)
		sets[s] = idx
	}
	return sets
}

// meanPairwiseSpearman averages the Spearman correlation over all
// pairs of rank vectors. Pairs with undefined correlation (a constant
// vector) are skipped; with fewer than two vectors or no defined pair
// it returns -1.
func meanPairwiseSpearman(vecs [][]float64) float64 {
	sum, n := 0.0, 0
	for i := 0; i < len(vecs); i++ {
		for j := i + 1; j < len(vecs); j++ {
			rho, err := stats.Spearman(vecs[i], vecs[j])
			if err != nil {
				continue
			}
			sum += rho
			n++
		}
	}
	if n == 0 {
		return -1
	}
	return sum / float64(n)
}

// Render formats the evaluation as an experiments-style text table.
func (r Result) Render() string {
	header := []string{"Ranker", "Stability", "Seed-sim"}
	for _, k := range r.TopK {
		header = append(header, fmt.Sprintf("AUC@%d", k))
	}
	header = append(header, "Errors")
	var rows [][]string
	for _, row := range r.Rows {
		cells := []string{row.Name, fmtMetric(row.Stability), fmtMetric(row.SeedSimilarity)}
		for _, p := range row.AUC {
			cells = append(cells, fmtMetric(p.AUC))
		}
		cells = append(cells, fmt.Sprintf("%d", len(row.Errors)))
		rows = append(rows, cells)
	}
	return fmt.Sprintf(
		"Ranker evaluation on %s (%d samples, %d features; %d bootstraps, %d seeds, seed %d)\n",
		r.Model, r.Samples, r.Features, r.Bootstraps, r.Seeds, r.Seed) +
		textplot.Table(header, rows)
}

// fmtMetric renders a metric value, with "-" for the -1 sentinel.
func fmtMetric(v float64) string {
	if v == -1 {
		return "-"
	}
	return fmt.Sprintf("%.3f", v)
}

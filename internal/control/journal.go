package control

import (
	"errors"
	"fmt"

	"repro/internal/runlog"
	"repro/internal/smart"
)

// Journaling errors.
var (
	// ErrJournalExists indicates a control directory that already holds
	// a journal while Resume was not requested.
	ErrJournalExists = errors.New("control: journal exists (resume not requested)")
	// ErrJournalMismatch indicates a journal written by a controller
	// with a different configuration.
	ErrJournalMismatch = errors.New("control: journal does not match this run")
	// ErrJournalCorrupt indicates a journal whose record sequence is
	// not one the controller could have written.
	ErrJournalCorrupt = errors.New("control: journal record sequence corrupt")
)

// Journal record types. Each control decision is journaled before the
// controller acts on its consequences, so a killed controller replays
// to the exact decision state it died in.
const (
	recMeta       = "meta"        // run identity, first record
	recServing    = "serving"     // bootstrap complete: initial serving version
	recDay        = "day"         // one ingested + summarized fleet day
	recDrift      = "drift"       // drift detector fired
	recCandidate  = "candidate"   // candidate snapshot trained and saved
	recVerdict    = "verdict"     // canary evaluation decided
	recPromoted   = "promoted"    // candidate promoted to serving
	recRolledBack = "rolled-back" // candidate rejected, serving retained
)

// Canary decisions (recordVerdict.Decision).
const (
	// DecisionPromote promotes the candidate to serving.
	DecisionPromote = "promote"
	// DecisionRollback rejects the candidate and keeps serving the
	// prior version (the registry's never-overwrite versioning makes
	// this a pure bookkeeping step — the old artifact never left).
	DecisionRollback = "rollback"
	// DecisionKeep keeps the serving snapshot because the canary could
	// not be evaluated (unevaluable window, failed candidate training);
	// accounted separately from a lost canary.
	DecisionKeep = "keep"
)

// recordMeta is the journal's first record: the identity of the
// controller run that owns it. Resuming with any differing field is
// refused — the journaled decisions would be meaningless.
type recordMeta struct {
	ConfigHash   string        `json:"config_hash"`
	Model        smart.ModelID `json:"model"`
	Selector     string        `json:"selector"`
	Start        int           `json:"start"`
	End          int           `json:"end"`
	CanaryDays   int           `json:"canary_days"`
	MinWindow    int           `json:"min_window"`
	RefDays      int           `json:"ref_days"`
	Bins         int           `json:"bins"`
	ZThreshold   float64       `json:"z_threshold"`
	PSIThreshold float64       `json:"psi_threshold"`
	Artifact     string        `json:"artifact"`
}

// recordServing marks bootstrap completion: the initial serving
// snapshot version, trained through Day.
type recordServing struct {
	Day     int `json:"day"`
	Version int `json:"version"`
}

// recordDay is one processed fleet day and its drift-detector summary.
type recordDay struct {
	Day int     `json:"day"`
	Sum Summary `json:"sum"`
}

// recordDrift marks a drift-detector firing on Day, opening a refresh
// cycle.
type recordDrift struct {
	Day     int     `json:"day"`
	Trigger string  `json:"trigger"`
	Stat    float64 `json:"stat"`
	Index   int     `json:"index,omitempty"`
	Window  int     `json:"window"`
}

// recordCandidate marks a candidate snapshot saved to the registry.
type recordCandidate struct {
	Day            int `json:"day"`
	Version        int `json:"version"`
	TrainedThrough int `json:"trained_through"`
}

// Metrics is one side of a canary comparison.
type Metrics struct {
	TP       int     `json:"tp"`
	FP       int     `json:"fp"`
	FN       int     `json:"fn"`
	F05      float64 `json:"f05"`
	AUC      float64 `json:"auc,omitempty"`
	AUCValid bool    `json:"auc_valid,omitempty"`
	N        int     `json:"n"`
}

// recordVerdict is the canary decision for the open refresh cycle.
type recordVerdict struct {
	Day              int     `json:"day"`
	Decision         string  `json:"decision"`
	Reason           string  `json:"reason"`
	CandidateVersion int     `json:"candidate_version,omitempty"`
	Candidate        Metrics `json:"candidate,omitempty"`
	Serving          Metrics `json:"serving,omitempty"`
}

// recordPromoted marks the candidate version becoming the serving
// snapshot.
type recordPromoted struct {
	Day     int `json:"day"`
	Version int `json:"version"`
}

// recordRolledBack marks the candidate's rejection: Serving stays the
// live version, Candidate remains in the registry (never overwritten)
// for post-mortem.
type recordRolledBack struct {
	Day       int `json:"day"`
	Serving   int `json:"serving"`
	Candidate int `json:"candidate"`
}

// cycle is an in-flight refresh: drift fired, and the candidate /
// canary / promotion steps are worked through in order. Exactly the
// journaled facts are kept, so a replayed cycle is indistinguishable
// from a live one.
type cycle struct {
	day              int // day the drift detector fired
	trigger          string
	candidateVersion int            // 0 until the candidate record lands
	trainedThrough   int            //
	verdict          *recordVerdict // nil until the verdict record lands
}

// state is the controller's decision state, built identically by live
// execution and by journal replay: every mutation goes through an
// apply method, and live execution appends the journal record first.
type state struct {
	serving    int // serving registry version; 0 before bootstrap
	nextDay    int // next fleet day to process
	sums       []Summary
	cycle      *cycle
	maxVersion int // highest registry version the journal accounts for

	refreshes  int
	promotions int
	rollbacks  int
	keeps      int
	events     []string
}

func (st *state) applyServing(r recordServing) {
	st.serving = r.Version
	if r.Version > st.maxVersion {
		st.maxVersion = r.Version
	}
	st.events = append(st.events,
		fmt.Sprintf("day %4d  serving v%d (bootstrap, trained through day %d)", r.Day, r.Version, r.Day))
}

func (st *state) applyDay(r recordDay) {
	st.sums = append(st.sums, r.Sum)
	st.nextDay = r.Day + 1
}

func (st *state) applyDrift(r recordDrift) {
	st.cycle = &cycle{day: r.Day, trigger: r.Trigger}
	st.refreshes++
	st.events = append(st.events,
		fmt.Sprintf("day %4d  drift fired (%s, stat %.3f, window %d days)", r.Day, r.Trigger, r.Stat, r.Window))
}

func (st *state) applyCandidate(r recordCandidate) {
	st.cycle.candidateVersion = r.Version
	st.cycle.trainedThrough = r.TrainedThrough
	if r.Version > st.maxVersion {
		st.maxVersion = r.Version
	}
	st.events = append(st.events,
		fmt.Sprintf("day %4d  candidate v%d trained through day %d", r.Day, r.Version, r.TrainedThrough))
}

// closeCycle ends the in-flight refresh and resets the summary window:
// the regime under the (possibly new) serving snapshot starts fresh,
// which doubles as a natural cooldown against refiring on the same
// episode.
func (st *state) closeCycle() {
	st.cycle = nil
	st.sums = nil
}

func (st *state) applyVerdict(r recordVerdict) {
	rc := r
	st.cycle.verdict = &rc
	switch r.Decision {
	case DecisionKeep:
		st.keeps++
		st.events = append(st.events,
			fmt.Sprintf("day %4d  canary verdict: keep serving (%s)", r.Day, r.Reason))
		st.closeCycle()
	default:
		st.events = append(st.events,
			fmt.Sprintf("day %4d  canary verdict: %s (%s; candidate F0.5 %.3f, serving F0.5 %.3f, %d drives)",
				r.Day, r.Decision, r.Reason, r.Candidate.F05, r.Serving.F05, r.Candidate.N))
	}
}

func (st *state) applyPromoted(r recordPromoted) {
	st.serving = r.Version
	if r.Version > st.maxVersion {
		st.maxVersion = r.Version
	}
	st.promotions++
	st.events = append(st.events, fmt.Sprintf("day %4d  promoted v%d to serving", r.Day, r.Version))
	st.closeCycle()
}

func (st *state) applyRolledBack(r recordRolledBack) {
	st.rollbacks++
	st.events = append(st.events,
		fmt.Sprintf("day %4d  rolled back to v%d (candidate v%d stays in registry)", r.Day, r.Serving, r.Candidate))
	st.closeCycle()
}

// replayState rebuilds the controller's decision state from journal
// records. The first record must be a meta record equal to want; the
// remaining records replay through the same apply methods live
// execution uses, so the rebuilt state — including the event log — is
// byte-identical to the state of the process that wrote the journal.
func replayState(recs []runlog.Record, want recordMeta) (*state, error) {
	st := &state{nextDay: want.Start}
	if len(recs) == 0 {
		return st, nil
	}
	if recs[0].Type != recMeta {
		return nil, fmt.Errorf("%w: first record is %q, not %q", ErrJournalCorrupt, recs[0].Type, recMeta)
	}
	var meta recordMeta
	if err := recs[0].Decode(&meta); err != nil {
		return nil, fmt.Errorf("control: decode meta record: %w", err)
	}
	if meta != want {
		return nil, fmt.Errorf("%w: journal %+v, run %+v", ErrJournalMismatch, meta, want)
	}
	for _, rec := range recs[1:] {
		if err := st.replayRecord(rec); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// replayRecord replays one post-meta record, validating that it can
// legally follow the state so far.
func (st *state) replayRecord(rec runlog.Record) error {
	decode := func(v any) error {
		if err := rec.Decode(v); err != nil {
			return fmt.Errorf("control: decode %q record: %w", rec.Type, err)
		}
		return nil
	}
	switch rec.Type {
	case recServing:
		var r recordServing
		if err := decode(&r); err != nil {
			return err
		}
		if st.serving != 0 {
			return fmt.Errorf("%w: duplicate serving record", ErrJournalCorrupt)
		}
		st.applyServing(r)
	case recDay:
		var r recordDay
		if err := decode(&r); err != nil {
			return err
		}
		if st.serving == 0 || r.Day != st.nextDay || st.cycle != nil {
			return fmt.Errorf("%w: day %d record out of order", ErrJournalCorrupt, r.Day)
		}
		st.applyDay(r)
	case recDrift:
		var r recordDrift
		if err := decode(&r); err != nil {
			return err
		}
		if st.cycle != nil || st.serving == 0 {
			return fmt.Errorf("%w: drift record with refresh cycle already open", ErrJournalCorrupt)
		}
		st.applyDrift(r)
	case recCandidate:
		var r recordCandidate
		if err := decode(&r); err != nil {
			return err
		}
		if st.cycle == nil || st.cycle.candidateVersion != 0 {
			return fmt.Errorf("%w: candidate record without open cycle", ErrJournalCorrupt)
		}
		st.applyCandidate(r)
	case recVerdict:
		var r recordVerdict
		if err := decode(&r); err != nil {
			return err
		}
		if st.cycle == nil || st.cycle.verdict != nil {
			return fmt.Errorf("%w: verdict record without open cycle", ErrJournalCorrupt)
		}
		st.applyVerdict(r)
	case recPromoted:
		var r recordPromoted
		if err := decode(&r); err != nil {
			return err
		}
		if st.cycle == nil || st.cycle.verdict == nil || st.cycle.verdict.Decision != DecisionPromote {
			return fmt.Errorf("%w: promoted record without promote verdict", ErrJournalCorrupt)
		}
		st.applyPromoted(r)
	case recRolledBack:
		var r recordRolledBack
		if err := decode(&r); err != nil {
			return err
		}
		if st.cycle == nil || st.cycle.verdict == nil || st.cycle.verdict.Decision != DecisionRollback {
			return fmt.Errorf("%w: rolled-back record without rollback verdict", ErrJournalCorrupt)
		}
		st.applyRolledBack(r)
	case recMeta:
		return fmt.Errorf("%w: duplicate meta record", ErrJournalCorrupt)
	default:
		return fmt.Errorf("%w: unknown record type %q", ErrJournalCorrupt, rec.Type)
	}
	return nil
}

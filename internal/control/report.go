package control

import (
	"fmt"
	"strings"
)

// Result is the controller's final report. It is assembled purely from
// journaled state, so a run resumed after any kill renders the exact
// bytes an uninterrupted run would.
type Result struct {
	// Model and Selector identify the controlled configuration.
	Model    string
	Selector string
	// Start and End are the controlled days.
	Start, End int
	// ServingVersion is the registry version serving when the run
	// ended.
	ServingVersion int
	// Refreshes counts drift-detector firings; Promotions, Rollbacks
	// and Keeps partition their outcomes.
	Refreshes  int
	Promotions int
	Rollbacks  int
	Keeps      int
	// Events is the chronological decision log, one line per control
	// decision.
	Events []string
}

func (c *controller) result() *Result {
	return &Result{
		Model:          c.cfg.Model.String(),
		Selector:       c.cfg.Selector.Name(),
		Start:          c.cfg.Start,
		End:            c.cfg.End,
		ServingVersion: c.st.serving,
		Refreshes:      c.st.refreshes,
		Promotions:     c.st.promotions,
		Rollbacks:      c.st.rollbacks,
		Keeps:          c.st.keeps,
		Events:         append([]string(nil), c.st.events...),
	}
}

// String renders the report deterministically.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "controller: model %s, selector %s, days [%d, %d]\n", r.Model, r.Selector, r.Start, r.End)
	for _, ev := range r.Events {
		fmt.Fprintf(&b, "  %s\n", ev)
	}
	fmt.Fprintf(&b, "final: serving v%d, %d refresh(es): %d promoted, %d rolled back, %d kept\n",
		r.ServingVersion, r.Refreshes, r.Promotions, r.Rollbacks, r.Keeps)
	return b.String()
}

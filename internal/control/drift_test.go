package control

import (
	"math"
	"testing"
)

func mkSums(means []float64, hist ...[]int) []Summary {
	out := make([]Summary, len(means))
	for i, m := range means {
		out[i] = Summary{Day: i, N: 100, Mean: m, Hist: []int{50, 50}}
		if len(hist) > 0 {
			out[i].Hist = hist[0]
		}
	}
	return out
}

func TestEvalDriftStep(t *testing.T) {
	means := make([]float64, 40)
	for i := range means {
		means[i] = 0.02
		if i >= 20 {
			means[i] = 0.2
		}
		means[i] += 0.001 * float64(i%3) // mild noise, far below the step
	}
	firing, fired := evalDrift(mkSums(means), 2.5, 100, 10)
	if !fired {
		t.Fatal("step drift not detected")
	}
	if firing.Trigger != TriggerChangePoint {
		t.Fatalf("trigger = %q, want %q", firing.Trigger, TriggerChangePoint)
	}
	if firing.Index < 17 || firing.Index > 23 {
		t.Errorf("change point index = %d, want near 20", firing.Index)
	}
	if firing.Window != 40 {
		t.Errorf("window = %d, want 40", firing.Window)
	}
}

func TestEvalDriftStableSeries(t *testing.T) {
	means := make([]float64, 40)
	for i := range means {
		means[i] = 0.05
	}
	if firing, fired := evalDrift(mkSums(means), 2.5, 100, 10); fired {
		t.Fatalf("stable series fired drift: %+v", firing)
	}
}

// A ramp has no single step, but the summary window's head and tail
// score distributions diverge — the PSI trigger must catch what the
// change-point trigger structurally cannot.
func TestEvalDriftGradualRampFiresPSI(t *testing.T) {
	const n = 40
	sums := make([]Summary, n)
	for i := range sums {
		// Histogram mass slides from bin 0 to bin 1 linearly.
		hi := i * 100 / n
		sums[i] = Summary{Day: i, N: 100, Mean: 0.05, Hist: []int{100 - hi, hi}}
	}
	firing, fired := evalDrift(sums, 1e9, 0.25, 10)
	if !fired {
		t.Fatal("gradual ramp not detected")
	}
	if firing.Trigger != TriggerDivergence {
		t.Fatalf("trigger = %q, want %q", firing.Trigger, TriggerDivergence)
	}
	if firing.Stat < 0.25 {
		t.Errorf("PSI = %v, want >= 0.25", firing.Stat)
	}
}

// Non-finite day means (a day with no observed drives, a dirty score
// aggregate) must not poison the detector: the series is sanitized by
// carrying the last finite level, and a genuine step on the other side
// of the garbage is still found.
func TestEvalDriftNonFiniteMeans(t *testing.T) {
	means := make([]float64, 40)
	for i := range means {
		means[i] = 0.02
		if i >= 20 {
			means[i] = 0.3
		}
	}
	means[5] = math.NaN()
	means[12] = math.Inf(1)
	means[28] = math.Inf(-1)
	firing, fired := evalDrift(mkSums(means), 2.5, 100, 10)
	if !fired {
		t.Fatal("step behind non-finite values not detected")
	}
	if firing.Trigger != TriggerChangePoint {
		t.Fatalf("trigger = %q, want %q", firing.Trigger, TriggerChangePoint)
	}

	// An all-garbage window must not fire (sanitizes to a constant).
	garbage := make([]float64, 40)
	for i := range garbage {
		garbage[i] = math.NaN()
	}
	if _, fired := evalDrift(mkSums(garbage), 2.5, 100, 10); fired {
		t.Error("all-NaN window fired drift")
	}
}

func TestEvalDriftEdgeGuard(t *testing.T) {
	// A "step" at the last observation is indistinguishable from an
	// outlier; the edge guard must hold it back.
	means := make([]float64, 40)
	for i := range means {
		means[i] = 0.02
	}
	means[39] = 0.4
	if firing, fired := evalDrift(mkSums(means), 2.5, 100, 10); fired {
		t.Fatalf("trailing outlier fired drift: %+v", firing)
	}
}

func TestPSI(t *testing.T) {
	same := []float64{0.5, 0.3, 0.2}
	if p := psi(same, same); p != 0 {
		t.Errorf("psi(x, x) = %v, want 0", p)
	}
	shifted := []float64{0.1, 0.3, 0.6}
	if p := psi(same, shifted); p < 0.25 {
		t.Errorf("psi(major shift) = %v, want >= 0.25", p)
	}
	// Empty bins must not produce infinities.
	if p := psi([]float64{1, 0}, []float64{0, 1}); math.IsInf(p, 0) || math.IsNaN(p) {
		t.Errorf("psi with empty bins = %v, want finite", p)
	}
}

func TestAvgHist(t *testing.T) {
	sums := []Summary{
		{Hist: []int{8, 2}},
		{Hist: []int{6, 4}},
	}
	got := avgHist(sums)
	want := []float64{0.7, 0.3}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("avgHist = %v, want %v", got, want)
		}
	}
	if avgHist(nil) != nil {
		t.Error("avgHist(nil) != nil")
	}
}

func TestCanaryWin(t *testing.T) {
	cases := []struct {
		name       string
		cand, serv Metrics
		want       bool
	}{
		{"higher F05 wins", Metrics{F05: 0.8}, Metrics{F05: 0.7}, true},
		{"lower F05 loses", Metrics{F05: 0.6}, Metrics{F05: 0.7}, false},
		{"F05 tie, higher AUC wins", Metrics{F05: 0.7, AUC: 0.9, AUCValid: true}, Metrics{F05: 0.7, AUC: 0.8, AUCValid: true}, true},
		{"F05 tie, AUC invalid keeps serving", Metrics{F05: 0.7, AUC: 0.9}, Metrics{F05: 0.7, AUC: 0.8}, false},
		{"full tie keeps serving", Metrics{F05: 0.7, AUC: 0.9, AUCValid: true}, Metrics{F05: 0.7, AUC: 0.9, AUCValid: true}, false},
	}
	for _, tc := range cases {
		if got := canaryWin(tc.cand, tc.serv); got != tc.want {
			t.Errorf("%s: canaryWin = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// Package control runs the continuous-operation loop the paper's
// periodic re-selection implies: ingest each new fleet day, monitor
// the serving model's score stream for drift, and when the detector
// fires train a candidate on fresh data, canary it against the serving
// snapshot on a held-out recent window, and promote or roll back
// through the registry's never-overwrite versioning.
//
// Every control decision is journaled (internal/runlog) before the
// controller acts on it, so a controller killed at any point — even at
// a registered crash site inside a decision boundary — resumes to
// byte-identical decisions, artifacts, and final report.
package control

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/changepoint"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/runlog"
	"repro/internal/smart"
)

// Crash sites at the controller's decision boundaries, armable via
// WEFR_CRASHPOINT (see internal/faults). Prefixed "ctrl-" to keep them
// disjoint from the engine's stage sites (ingest/train/...), which
// also fire inside controller runs during bootstrap and candidate
// training.
var (
	crashAfterDriftEval = faults.RegisterCrashSite("ctrl-drift-eval")
	crashAfterCandidate = faults.RegisterCrashSite("ctrl-candidate-train")
	crashAfterCanary    = faults.RegisterCrashSite("ctrl-canary-eval")
	crashAfterPromote   = faults.RegisterCrashSite("ctrl-promote")
)

// degradeCandidate, armable via WEFR_DEGRADE, makes candidate training
// produce a deliberately degenerate snapshot (all alarm thresholds
// zeroed: the model alarms on every drive). The degradation is baked
// into the saved artifact before the canary sees it, so crash/resume
// runs observe a consistent fault. Used to exercise the rollback path.
var degradeCandidate = faults.RegisterDegradeSite("ctrl-candidate")

// Defaults for Config's tunables.
const (
	// DefaultCanaryDays is the held-out recent window (in days) a
	// candidate must win on before promotion.
	DefaultCanaryDays = 21
	// DefaultMinWindow is the minimum summary-window length before the
	// drift detector is consulted.
	DefaultMinWindow = 30
	// DefaultRefDays sizes the PSI reference/current windows.
	DefaultRefDays = 10
	// DefaultBins is the score-histogram resolution.
	DefaultBins = 10
	// DefaultPSIThreshold fires the divergence trigger; 0.25 is the
	// conventional "significant population shift" PSI level.
	DefaultPSIThreshold = 0.25
	// DefaultArtifact names the registry artifact versions are saved
	// under.
	DefaultArtifact = "serving"
)

// journalFile is the control journal's file name inside Config.Dir.
const journalFile = "control.journal"

// registryDir is the artifact registry directory inside Config.Dir.
const registryDir = "registry"

// Config configures a controller run.
type Config struct {
	// Model is the drive model under control.
	Model smart.ModelID
	// Selector re-selects features when a refresh fires (the paper's
	// WEFR in production use).
	Selector engine.Selector
	// Engine configures training and scoring (robust mode is rejected:
	// robust results are not snapshotable, hence not resumable).
	Engine engine.Config

	// Start and End bound the controlled days, inclusive. The
	// bootstrap snapshot is trained on days [0, Start-1]; the control
	// loop then processes days Start..End.
	Start, End int

	// CanaryDays is the held-out window before the drift day on which
	// serving and candidate are compared (default DefaultCanaryDays).
	// The candidate trains only on days before that window.
	CanaryDays int
	// MinWindow is the minimum number of summarized days before drift
	// is evaluated (default DefaultMinWindow).
	MinWindow int
	// RefDays sizes the PSI reference and trailing windows (default
	// DefaultRefDays).
	RefDays int
	// Bins is the score-histogram resolution (default DefaultBins).
	Bins int
	// ZThreshold is the change-point significance threshold (default
	// changepoint.DefaultZThreshold).
	ZThreshold float64
	// PSIThreshold fires the divergence trigger (default
	// DefaultPSIThreshold).
	PSIThreshold float64

	// Dir is the controller's state directory: the control journal and
	// the snapshot registry live under it. Created if missing.
	Dir string
	// Artifact names the registry artifact (default DefaultArtifact).
	Artifact string
	// Resume allows continuing an existing journal; without it, an
	// existing journal is an error (mixing two runs would corrupt
	// both).
	Resume bool
	// Log, when non-nil, receives progress lines (stderr in CLIs). The
	// final Result is independent of logging, so stdout stays
	// byte-identical across crash/resume.
	Log func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.CanaryDays == 0 {
		c.CanaryDays = DefaultCanaryDays
	}
	if c.MinWindow == 0 {
		c.MinWindow = DefaultMinWindow
	}
	if c.RefDays == 0 {
		c.RefDays = DefaultRefDays
	}
	if c.Bins == 0 {
		c.Bins = DefaultBins
	}
	if c.ZThreshold == 0 {
		c.ZThreshold = changepoint.DefaultZThreshold
	}
	if c.PSIThreshold == 0 {
		c.PSIThreshold = DefaultPSIThreshold
	}
	if c.Artifact == "" {
		c.Artifact = DefaultArtifact
	}
	return c
}

func (c Config) logf(format string, args ...any) {
	if c.Log != nil {
		c.Log(format, args...)
	}
}

func (c Config) validate(days int) error {
	switch {
	case c.Dir == "":
		return errors.New("control: empty state directory")
	case c.Selector == nil:
		return errors.New("control: nil selector")
	case c.Engine.Robust != nil:
		return errors.New("control: robust-mode configs are not snapshotable, hence not controllable")
	case c.Start < 2:
		return fmt.Errorf("control: start day %d leaves no bootstrap training days", c.Start)
	case c.End < c.Start:
		return fmt.Errorf("control: end day %d before start day %d", c.End, c.Start)
	case c.End >= days:
		return fmt.Errorf("control: end day %d beyond source horizon %d", c.End, days-1)
	case c.CanaryDays < 1:
		return fmt.Errorf("control: canary window %d days", c.CanaryDays)
	case c.MinWindow <= c.CanaryDays:
		return fmt.Errorf("control: min window %d must exceed canary window %d", c.MinWindow, c.CanaryDays)
	}
	return nil
}

// meta builds the journal identity record for this config.
func (c Config) meta() recordMeta {
	return recordMeta{
		ConfigHash:   c.Engine.Hash(),
		Model:        c.Model,
		Selector:     c.Selector.Name(),
		Start:        c.Start,
		End:          c.End,
		CanaryDays:   c.CanaryDays,
		MinWindow:    c.MinWindow,
		RefDays:      c.RefDays,
		Bins:         c.Bins,
		ZThreshold:   c.ZThreshold,
		PSIThreshold: c.PSIThreshold,
		Artifact:     c.Artifact,
	}
}

// controller is one running control loop.
type controller struct {
	cfg    Config
	eng    *engine.Engine
	reg    *core.Registry
	j      *runlog.Journal
	st     *state
	scorer *engine.Scorer  // serving snapshot, decoded once
	sbuf   engine.ScoreBuf // recycled scoring scratch across days
}

// Run executes the control loop over src: bootstrap (or resume), then
// one pass over days [Start, End]. It returns the final Result; the
// journal and every snapshot version remain in cfg.Dir.
func Run(src dataset.Source, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(src.Days()); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("control: state dir: %w", err)
	}
	path := filepath.Join(cfg.Dir, journalFile)
	if !cfg.Resume {
		if _, err := os.Stat(path); err == nil {
			return nil, fmt.Errorf("%w: %s", ErrJournalExists, path)
		} else if !errors.Is(err, os.ErrNotExist) {
			return nil, err
		}
	}
	j, recs, err := runlog.Open(path)
	if err != nil {
		return nil, fmt.Errorf("control: open journal: %w", err)
	}
	defer j.Close()

	meta := cfg.meta()
	st, err := replayState(recs, meta)
	if err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		if err := j.Append(recMeta, meta); err != nil {
			return nil, err
		}
	} else {
		cfg.logf("resumed from journal: %d records, next day %d", len(recs), st.nextDay)
	}

	c := &controller{
		cfg: cfg,
		eng: engine.New(src, cfg.Engine),
		reg: &core.Registry{Dir: filepath.Join(cfg.Dir, registryDir)},
		j:   j,
		st:  st,
	}
	if err := c.bootstrap(); err != nil {
		return nil, err
	}
	if err := c.loadServing(); err != nil {
		return nil, err
	}
	// A cycle left open by a kill finishes before new days are
	// processed — exactly where the dead process stood.
	if c.st.cycle != nil {
		if err := c.finishCycle(); err != nil {
			return nil, err
		}
	}
	for day := c.st.nextDay; day <= cfg.End; day++ {
		if err := c.processDay(day); err != nil {
			return nil, err
		}
	}
	return c.result(), nil
}

// bootstrap establishes the initial serving snapshot when the journal
// has none: train on days [0, Start-1], save as the artifact's first
// version, journal it. A snapshot saved by a process that died before
// journaling is adopted instead of retrained.
func (c *controller) bootstrap() error {
	if c.st.serving != 0 {
		return nil
	}
	trainHi := c.cfg.Start - 1
	version, ok, err := c.adoptSaved(trainHi)
	if err != nil {
		return err
	}
	if ok {
		c.cfg.logf("adopted bootstrap snapshot v%d (trained through day %d)", version, trainHi)
	} else {
		c.cfg.logf("bootstrap: training serving snapshot through day %d", trainHi)
		version, err = c.trainAndSave(trainHi, false)
		if err != nil {
			return fmt.Errorf("control: bootstrap training: %w", err)
		}
	}
	r := recordServing{Day: trainHi, Version: version}
	if err := c.j.Append(recServing, r); err != nil {
		return err
	}
	c.st.applyServing(r)
	return nil
}

// loadServing (re)builds the scorer for the journaled serving version.
func (c *controller) loadServing() error {
	snap, err := engine.LoadSnapshot(c.reg, c.cfg.Artifact, c.st.serving)
	if err != nil {
		return fmt.Errorf("control: load serving snapshot v%d: %w", c.st.serving, err)
	}
	if snap.ConfigHash != c.cfg.Engine.Hash() {
		return fmt.Errorf("%w: serving snapshot v%d config %s, run config %s",
			ErrJournalMismatch, c.st.serving, snap.ConfigHash, c.cfg.Engine.Hash())
	}
	scorer, err := engine.NewScorer(snap, c.cfg.Engine.Workers)
	if err != nil {
		return fmt.Errorf("control: serving snapshot v%d: %w", c.st.serving, err)
	}
	c.scorer = scorer
	return nil
}

// trainAndSave runs selection + training on days [0, trainHi] and
// saves the snapshot as the artifact's next registry version. With
// degradable set (candidate training only), an armed degrade point
// zeroes the calibrated thresholds before the save, so the degenerate
// artifact — not just the in-memory model — carries the fault.
func (c *controller) trainAndSave(trainHi int, degradable bool) (int, error) {
	ph := engine.Phase{TrainLo: 0, TrainHi: trainHi, TestLo: trainHi + 1, TestHi: trainHi + 1}
	pd, err := c.eng.PreparePhase(c.cfg.Model, ph)
	if err != nil {
		return 0, err
	}
	res, err := pd.RunSelector(c.cfg.Selector)
	if err != nil {
		return 0, err
	}
	snap, err := res.Snapshot()
	if err != nil {
		return 0, err
	}
	if degradable && faults.Degraded(degradeCandidate) {
		for i := range snap.Thresholds {
			snap.Thresholds[i] = 0
		}
	}
	return engine.SaveSnapshot(c.reg, c.cfg.Artifact, snap)
}

// adoptSaved checks whether the registry already holds an unjournaled
// snapshot trained through trainHi for this run — the signature of a
// crash between SaveSnapshot and the journal append — and adopts it.
// The registry version must be newer than anything the journal
// accounts for, and the snapshot must carry this run's exact identity.
func (c *controller) adoptSaved(trainHi int) (int, bool, error) {
	data, version, err := c.reg.Latest(c.cfg.Artifact)
	if errors.Is(err, core.ErrNoArtifact) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	if version <= c.st.maxVersion {
		return 0, false, nil
	}
	snap, err := engine.DecodeSnapshot(data)
	if err != nil {
		// A corrupt unjournaled artifact cannot be adopted; the save
		// path is atomic, so treat it as a real error rather than
		// silently training over it.
		return 0, false, fmt.Errorf("control: undecodable registry artifact v%d: %w", version, err)
	}
	if snap.ConfigHash != c.cfg.Engine.Hash() || snap.Model != c.cfg.Model ||
		snap.Selector != c.cfg.Selector.Name() || snap.TrainedThrough != trainHi {
		return 0, false, nil
	}
	return version, true, nil
}

// processDay ingests and summarizes one fleet day under the serving
// snapshot, then consults the drift detector.
func (c *controller) processDay(day int) error {
	st := c.eng.Store()
	if err := st.Track(c.cfg.Model); err != nil {
		return fmt.Errorf("control: day %d: %w", day, err)
	}
	if err := st.AppendThrough(day); err != nil {
		return fmt.Errorf("control: ingest day %d: %w", day, err)
	}
	sum, err := summarize(st.Snapshot(), c.scorer, c.cfg.Model, day, c.cfg.Bins, &c.sbuf)
	if err != nil {
		return fmt.Errorf("control: summarize day %d: %w", day, err)
	}
	rd := recordDay{Day: day, Sum: sum}
	if err := c.j.Append(recDay, rd); err != nil {
		return err
	}
	c.st.applyDay(rd)

	if len(c.st.sums) < c.cfg.MinWindow {
		return nil
	}
	firing, fired := evalDrift(c.st.sums, c.cfg.ZThreshold, c.cfg.PSIThreshold, c.cfg.RefDays)
	if fired {
		r := recordDrift{Day: day, Trigger: firing.Trigger, Stat: firing.Stat, Index: firing.Index, Window: firing.Window}
		if err := c.j.Append(recDrift, r); err != nil {
			return err
		}
		c.st.applyDrift(r)
	}
	// The site sits after the (journaled) evaluation outcome, so a
	// resume replays the identical decision whether or not it fired.
	faults.CrashPoint(crashAfterDriftEval)
	if c.st.cycle != nil {
		return c.finishCycle()
	}
	return nil
}

// finishCycle drives an open refresh cycle to its close: candidate
// training, canary evaluation, then promotion or rollback. Each step
// is skipped when the journal already records it, so a resumed cycle
// continues from the exact step the dead process reached.
func (c *controller) finishCycle() error {
	cyc := c.st.cycle
	day := cyc.day
	trainHi := day - c.cfg.CanaryDays

	// A resumed process re-enters here before any day was processed;
	// the canary (and an adopted candidate) need the store ingested
	// through the cycle day, which the dead process had done.
	if err := c.eng.Store().Track(c.cfg.Model); err != nil {
		return fmt.Errorf("control: day %d: %w", day, err)
	}
	if err := c.eng.Store().AppendThrough(day); err != nil {
		return fmt.Errorf("control: ingest day %d: %w", day, err)
	}

	if cyc.candidateVersion == 0 {
		version, adopted, err := c.adoptSaved(trainHi)
		if err != nil {
			return err
		}
		if adopted {
			c.cfg.logf("adopted candidate snapshot v%d (trained through day %d)", version, trainHi)
		} else {
			c.cfg.logf("day %d: drift fired, training candidate through day %d", day, trainHi)
			version, err = c.trainAndSave(trainHi, true)
			if err != nil {
				// A candidate that cannot be trained is a failed
				// refresh, not a controller failure: keep serving.
				return c.keepServing(day, fmt.Sprintf("candidate training failed: %v", err))
			}
		}
		faults.CrashPoint(crashAfterCandidate)
		r := recordCandidate{Day: day, Version: version, TrainedThrough: trainHi}
		if err := c.j.Append(recCandidate, r); err != nil {
			return err
		}
		c.st.applyCandidate(r)
	}

	if cyc.verdict == nil {
		verdict, err := c.runCanary(day, trainHi, cyc.candidateVersion)
		if err != nil {
			return err
		}
		if err := c.j.Append(recVerdict, verdict); err != nil {
			return err
		}
		c.st.applyVerdict(verdict)
		faults.CrashPoint(crashAfterCanary)
	}
	if c.st.cycle == nil {
		// A keep verdict closes the cycle in applyVerdict.
		return nil
	}

	v := c.st.cycle.verdict
	switch v.Decision {
	case DecisionPromote:
		r := recordPromoted{Day: day, Version: v.CandidateVersion}
		if err := c.j.Append(recPromoted, r); err != nil {
			return err
		}
		c.st.applyPromoted(r)
		faults.CrashPoint(crashAfterPromote)
		if err := c.loadServing(); err != nil {
			return err
		}
	case DecisionRollback:
		r := recordRolledBack{Day: day, Serving: c.st.serving, Candidate: v.CandidateVersion}
		if err := c.j.Append(recRolledBack, r); err != nil {
			return err
		}
		c.st.applyRolledBack(r)
		faults.CrashPoint(crashAfterPromote)
	default:
		return fmt.Errorf("%w: verdict decision %q left cycle open", ErrJournalCorrupt, v.Decision)
	}
	return nil
}

// keepServing journals a keep verdict — a refresh cycle that ends
// without a candidate comparison (failed training, unevaluable
// canary). The serving snapshot stays; the event is accounted in the
// report rather than raised as an error.
func (c *controller) keepServing(day int, reason string) error {
	verdict := recordVerdict{Day: day, Decision: DecisionKeep, Reason: reason}
	if err := c.j.Append(recVerdict, verdict); err != nil {
		return err
	}
	c.st.applyVerdict(verdict)
	faults.CrashPoint(crashAfterCanary)
	return nil
}

// runCanary scores candidate and serving snapshots over the held-out
// window (trainHi, day] — days the candidate never trained on — and
// decides promote or rollback. An unevaluable canary (empty window,
// scoring failure) degrades to a keep verdict instead of failing the
// controller.
func (c *controller) runCanary(day, trainHi, candidateVersion int) (recordVerdict, error) {
	keep := func(reason string) (recordVerdict, error) {
		return recordVerdict{Day: day, Decision: DecisionKeep, Reason: reason, CandidateVersion: candidateVersion}, nil
	}
	candSnap, err := engine.LoadSnapshot(c.reg, c.cfg.Artifact, candidateVersion)
	if err != nil {
		return recordVerdict{}, fmt.Errorf("control: load candidate v%d: %w", candidateVersion, err)
	}
	candScorer, err := engine.NewScorer(candSnap, c.cfg.Engine.Workers)
	if err != nil {
		return recordVerdict{}, fmt.Errorf("control: candidate v%d: %w", candidateVersion, err)
	}
	lo, hi := trainHi+1, day
	if lo > hi {
		return keep(fmt.Sprintf("empty canary window [%d, %d]", lo, hi))
	}
	src := c.eng.Store().Snapshot()
	candOut, err := candScorer.Score(src, lo, hi)
	if err != nil {
		return keep(fmt.Sprintf("candidate canary scoring failed: %v", err))
	}
	servOut, err := c.scorer.Score(src, lo, hi)
	if err != nil {
		return keep(fmt.Sprintf("serving canary scoring failed: %v", err))
	}
	if len(candOut) == 0 || len(servOut) == 0 {
		return keep(fmt.Sprintf("no drives observed in canary window [%d, %d]", lo, hi))
	}
	cand := canaryMetrics(candOut)
	serv := canaryMetrics(servOut)
	verdict := recordVerdict{Day: day, CandidateVersion: candidateVersion, Candidate: cand, Serving: serv}
	if canaryWin(cand, serv) {
		verdict.Decision = DecisionPromote
		verdict.Reason = fmt.Sprintf("candidate wins canary [%d, %d]", lo, hi)
	} else {
		verdict.Decision = DecisionRollback
		verdict.Reason = fmt.Sprintf("candidate loses canary [%d, %d]", lo, hi)
	}
	return verdict, nil
}

// canaryMetrics condenses canary outcomes into the journaled
// comparison record.
func canaryMetrics(outcomes []engine.DriveOutcome) Metrics {
	conf := engine.EvaluateOutcomes(outcomes)
	m := Metrics{TP: conf.TP, FP: conf.FP, FN: conf.FN, F05: conf.F05(), N: len(outcomes)}
	if auc, err := engine.AUC(outcomes); err == nil {
		m.AUC = auc
		m.AUCValid = true
	}
	return m
}

// canaryWin decides promotion: the candidate must strictly beat the
// serving snapshot on the paper's headline F0.5; ties fall through to
// AUC (when computable on both sides), and a full tie keeps serving —
// churn without improvement is pure risk.
func canaryWin(cand, serv Metrics) bool {
	if cand.F05 != serv.F05 {
		return cand.F05 > serv.F05
	}
	if cand.AUCValid && serv.AUCValid {
		return cand.AUC > serv.AUC
	}
	return false
}

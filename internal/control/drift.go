package control

import (
	"math"

	"repro/internal/changepoint"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/smart"
)

// Summary condenses one fleet day under the serving snapshot into the
// drift detector's inputs: how many drives were observed, how their
// failure scores were distributed, how many alarmed, and how many
// failure tickets were filed that day. Summaries are journaled, so a
// resumed controller replays them instead of re-scoring history.
type Summary struct {
	// Day is the fleet day the summary describes.
	Day int `json:"day"`
	// N is the number of drives observed (scored) on the day.
	N int `json:"n"`
	// Mean is the mean predicted failure probability across drives.
	Mean float64 `json:"mean"`
	// AlarmRate is the fraction of observed drives whose probability
	// cleared their group's alarm threshold.
	AlarmRate float64 `json:"alarm_rate"`
	// NewFailures is the number of failure tickets filed on the day.
	NewFailures int `json:"new_failures"`
	// Hist is the score histogram over Bins equal-width bins on [0, 1].
	Hist []int `json:"hist"`
}

// summarize scores one day of the fleet with the serving model and
// condenses it. Probabilities outside [0, 1] (or NaN) are clamped into
// the histogram's edge bins so dirty scores cannot corrupt the
// detector's input.
// The buf recycles the scoring pass's working state across days
// (engine.ScoreBuf); nil falls back to per-call allocation.
func summarize(src dataset.Source, scorer *engine.Scorer, model smart.ModelID, day, bins int, buf *engine.ScoreBuf) (Summary, error) {
	outcomes, err := scorer.ScoreInto(src, day, day, buf)
	if err != nil {
		return Summary{}, err
	}
	sum := Summary{Day: day, N: len(outcomes), Hist: make([]int, bins)}
	var total float64
	for _, o := range outcomes {
		p := o.MaxProb
		if math.IsNaN(p) || p < 0 {
			p = 0
		} else if p > 1 {
			p = 1
		}
		total += p
		bi := int(p * float64(bins))
		if bi >= bins {
			bi = bins - 1
		}
		sum.Hist[bi]++
		if o.Pred.FirstAlarmDay >= 0 {
			sum.AlarmRate++
		}
	}
	if sum.N > 0 {
		sum.Mean = total / float64(sum.N)
		sum.AlarmRate /= float64(sum.N)
	}
	for _, ref := range src.DrivesOf(model) {
		if ref.FailDay == day {
			sum.NewFailures++
		}
	}
	return sum, nil
}

// Drift triggers.
const (
	// TriggerChangePoint marks a drift firing from the Bayesian online
	// change-point detector on the daily mean-score series.
	TriggerChangePoint = "changepoint"
	// TriggerDivergence marks a drift firing from the score-distribution
	// divergence (PSI) between the regime's reference window and the
	// trailing window.
	TriggerDivergence = "divergence"
)

// driftFiring describes one drift detection.
type driftFiring struct {
	Trigger string  // TriggerChangePoint or TriggerDivergence
	Stat    float64 // z-score (changepoint) or PSI (divergence)
	Index   int     // change-point index within the summary window (changepoint only)
	Window  int     // summary-window length at evaluation time
}

// cpEdgeGuard keeps change points detected at the very edges of the
// summary window from firing a refresh: the first observations of a
// regime carry bootstrap transients, and the final observation cannot
// be distinguished from an outlier yet.
const cpEdgeGuard = 3

// evalDrift decides whether the regime's summary window shows drift:
// a significant Bayesian change point in the daily mean-score series
// (away from the window edges), or a score-distribution divergence
// (PSI) between the first refDays and the last refDays of the window.
// The evaluation is pure and deterministic: a resumed controller
// reaches the identical decision from the replayed summaries.
func evalDrift(sums []Summary, zThreshold, psiThreshold float64, refDays int) (driftFiring, bool) {
	series := make([]float64, len(sums))
	last := 0.0
	for i, s := range sums {
		v := s.Mean
		// The Gaussian observation model is undefined on non-finite
		// values; carry the last finite level instead of aborting.
		if math.IsNaN(v) || math.IsInf(v, 0) {
			v = last
		}
		series[i] = v
		last = v
	}
	pts, err := changepoint.Detect(series, changepoint.DefaultConfig(), zThreshold)
	if err == nil {
		if best, ok := changepoint.MostSignificant(pts); ok &&
			best.Index >= cpEdgeGuard && best.Index < len(series)-1 {
			return driftFiring{
				Trigger: TriggerChangePoint,
				Stat:    best.Z,
				Index:   best.Index,
				Window:  len(series),
			}, true
		}
	}
	if len(sums) >= 2*refDays && refDays > 0 {
		ref := avgHist(sums[:refDays])
		cur := avgHist(sums[len(sums)-refDays:])
		if p := psi(ref, cur); p >= psiThreshold {
			return driftFiring{
				Trigger: TriggerDivergence,
				Stat:    p,
				Window:  len(sums),
			}, true
		}
	}
	return driftFiring{}, false
}

// avgHist averages the summaries' score histograms into a probability
// distribution over bins.
func avgHist(sums []Summary) []float64 {
	if len(sums) == 0 {
		return nil
	}
	out := make([]float64, len(sums[0].Hist))
	var total float64
	for _, s := range sums {
		for i, c := range s.Hist {
			if i < len(out) {
				out[i] += float64(c)
				total += float64(c)
			}
		}
	}
	if total > 0 {
		for i := range out {
			out[i] /= total
		}
	}
	return out
}

// psiEpsilon floors each bin's mass so empty bins cannot blow the
// logarithm up to infinity; the standard PSI practice.
const psiEpsilon = 1e-4

// psi is the population stability index between two binned score
// distributions: Σ (cur_i − ref_i) · ln(cur_i / ref_i). By convention
// PSI < 0.1 is stable, 0.1–0.25 moderate shift, > 0.25 a significant
// shift warranting model review.
func psi(ref, cur []float64) float64 {
	n := min(len(ref), len(cur))
	var out float64
	for i := 0; i < n; i++ {
		r := math.Max(ref[i], psiEpsilon)
		c := math.Max(cur[i], psiEpsilon)
		out += (c - r) * math.Log(c/r)
	}
	return out
}

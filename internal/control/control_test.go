package control

import (
	"encoding/json"
	"errors"
	"testing"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/forest"
	"repro/internal/pipeline"
	"repro/internal/runlog"
	"repro/internal/simulate"
	"repro/internal/smart"
)

func rec(t *testing.T, typ string, v any) runlog.Record {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return runlog.Record{Type: typ, Payload: data}
}

func testMeta() recordMeta {
	return recordMeta{
		ConfigHash: "abc", Model: smart.MC2, Selector: "WEFR",
		Start: 10, End: 50, CanaryDays: 3, MinWindow: 5,
		RefDays: 2, Bins: 4, ZThreshold: 2.5, PSIThreshold: 0.25,
		Artifact: "serving",
	}
}

func TestReplayStateEmpty(t *testing.T) {
	st, err := replayState(nil, testMeta())
	if err != nil {
		t.Fatal(err)
	}
	if st.serving != 0 || st.nextDay != 10 || st.cycle != nil {
		t.Fatalf("fresh state = %+v", st)
	}
}

func TestReplayStateFullCycle(t *testing.T) {
	meta := testMeta()
	recs := []runlog.Record{
		rec(t, recMeta, meta),
		rec(t, recServing, recordServing{Day: 9, Version: 1}),
		rec(t, recDay, recordDay{Day: 10, Sum: Summary{Day: 10, Mean: 0.1}}),
		rec(t, recDay, recordDay{Day: 11, Sum: Summary{Day: 11, Mean: 0.2}}),
		rec(t, recDrift, recordDrift{Day: 11, Trigger: TriggerChangePoint, Stat: 3, Window: 2}),
		rec(t, recCandidate, recordCandidate{Day: 11, Version: 2, TrainedThrough: 8}),
		rec(t, recVerdict, recordVerdict{Day: 11, Decision: DecisionPromote, Reason: "wins",
			CandidateVersion: 2, Candidate: Metrics{F05: 0.9}, Serving: Metrics{F05: 0.5}}),
		rec(t, recPromoted, recordPromoted{Day: 11, Version: 2}),
	}
	st, err := replayState(recs, meta)
	if err != nil {
		t.Fatal(err)
	}
	if st.serving != 2 || st.cycle != nil || st.nextDay != 12 {
		t.Fatalf("state = serving %d, nextDay %d, cycle %v", st.serving, st.nextDay, st.cycle)
	}
	if st.refreshes != 1 || st.promotions != 1 || st.rollbacks != 0 || st.keeps != 0 {
		t.Fatalf("counters = %d/%d/%d/%d", st.refreshes, st.promotions, st.rollbacks, st.keeps)
	}
	if len(st.sums) != 0 {
		t.Fatalf("summary window not reset after promotion: %d", len(st.sums))
	}
	if st.maxVersion != 2 {
		t.Fatalf("maxVersion = %d, want 2", st.maxVersion)
	}
	if len(st.events) != 5 {
		t.Fatalf("events = %q", st.events)
	}
}

func TestReplayStateMidCycle(t *testing.T) {
	meta := testMeta()
	recs := []runlog.Record{
		rec(t, recMeta, meta),
		rec(t, recServing, recordServing{Day: 9, Version: 1}),
		rec(t, recDay, recordDay{Day: 10, Sum: Summary{Day: 10}}),
		rec(t, recDrift, recordDrift{Day: 10, Trigger: TriggerDivergence, Stat: 0.3, Window: 1}),
		rec(t, recCandidate, recordCandidate{Day: 10, Version: 2, TrainedThrough: 7}),
	}
	st, err := replayState(recs, meta)
	if err != nil {
		t.Fatal(err)
	}
	if st.cycle == nil || st.cycle.day != 10 || st.cycle.candidateVersion != 2 || st.cycle.verdict != nil {
		t.Fatalf("mid-cycle state = %+v", st.cycle)
	}
}

func TestReplayStateKeepVerdictClosesCycle(t *testing.T) {
	meta := testMeta()
	recs := []runlog.Record{
		rec(t, recMeta, meta),
		rec(t, recServing, recordServing{Day: 9, Version: 1}),
		rec(t, recDay, recordDay{Day: 10, Sum: Summary{Day: 10}}),
		rec(t, recDrift, recordDrift{Day: 10, Trigger: TriggerChangePoint, Stat: 3, Window: 1}),
		rec(t, recVerdict, recordVerdict{Day: 10, Decision: DecisionKeep, Reason: "candidate training failed"}),
	}
	st, err := replayState(recs, meta)
	if err != nil {
		t.Fatal(err)
	}
	if st.cycle != nil || st.keeps != 1 || st.serving != 1 {
		t.Fatalf("keep state = cycle %v, keeps %d, serving %d", st.cycle, st.keeps, st.serving)
	}
}

func TestReplayStateRollback(t *testing.T) {
	meta := testMeta()
	recs := []runlog.Record{
		rec(t, recMeta, meta),
		rec(t, recServing, recordServing{Day: 9, Version: 1}),
		rec(t, recDay, recordDay{Day: 10, Sum: Summary{Day: 10}}),
		rec(t, recDrift, recordDrift{Day: 10, Trigger: TriggerChangePoint, Stat: 3, Window: 1}),
		rec(t, recCandidate, recordCandidate{Day: 10, Version: 2, TrainedThrough: 7}),
		rec(t, recVerdict, recordVerdict{Day: 10, Decision: DecisionRollback, Reason: "loses", CandidateVersion: 2}),
		rec(t, recRolledBack, recordRolledBack{Day: 10, Serving: 1, Candidate: 2}),
	}
	st, err := replayState(recs, meta)
	if err != nil {
		t.Fatal(err)
	}
	if st.serving != 1 || st.rollbacks != 1 || st.cycle != nil {
		t.Fatalf("rollback state = serving %d, rollbacks %d, cycle %v", st.serving, st.rollbacks, st.cycle)
	}
	// The rejected candidate still counts toward maxVersion: the
	// adopt-or-train logic must not mistake it for an unjournaled save.
	if st.maxVersion != 2 {
		t.Fatalf("maxVersion = %d, want 2", st.maxVersion)
	}
}

func TestReplayStateMismatch(t *testing.T) {
	meta := testMeta()
	other := meta
	other.End = 60
	_, err := replayState([]runlog.Record{rec(t, recMeta, other)}, meta)
	if !errors.Is(err, ErrJournalMismatch) {
		t.Fatalf("err = %v, want ErrJournalMismatch", err)
	}
}

func TestReplayStateCorruptSequences(t *testing.T) {
	meta := testMeta()
	cases := []struct {
		name string
		recs []runlog.Record
	}{
		{"first record not meta", []runlog.Record{rec(t, recDay, recordDay{Day: 10})}},
		{"day before bootstrap", []runlog.Record{
			rec(t, recMeta, meta),
			rec(t, recDay, recordDay{Day: 10}),
		}},
		{"day out of order", []runlog.Record{
			rec(t, recMeta, meta),
			rec(t, recServing, recordServing{Day: 9, Version: 1}),
			rec(t, recDay, recordDay{Day: 12}),
		}},
		{"drift without serving", []runlog.Record{
			rec(t, recMeta, meta),
			rec(t, recDrift, recordDrift{Day: 10}),
		}},
		{"candidate without cycle", []runlog.Record{
			rec(t, recMeta, meta),
			rec(t, recServing, recordServing{Day: 9, Version: 1}),
			rec(t, recCandidate, recordCandidate{Day: 10, Version: 2}),
		}},
		{"promoted without verdict", []runlog.Record{
			rec(t, recMeta, meta),
			rec(t, recServing, recordServing{Day: 9, Version: 1}),
			rec(t, recDay, recordDay{Day: 10}),
			rec(t, recDrift, recordDrift{Day: 10}),
			rec(t, recPromoted, recordPromoted{Day: 10, Version: 2}),
		}},
		{"duplicate meta", []runlog.Record{
			rec(t, recMeta, meta),
			rec(t, recMeta, meta),
		}},
		{"unknown type", []runlog.Record{
			rec(t, recMeta, meta),
			{Type: "mystery"},
		}},
	}
	for _, tc := range cases {
		if _, err := replayState(tc.recs, meta); !errors.Is(err, ErrJournalCorrupt) {
			t.Errorf("%s: err = %v, want ErrJournalCorrupt", tc.name, err)
		}
	}
}

// testSource builds a small single-model fleet for live-run tests.
func testSource(t *testing.T) dataset.Source {
	t.Helper()
	fleet, err := simulate.New(simulate.Config{
		TotalDrives: 150, Days: 120, Seed: 7, AFRScale: 8,
		Models: []smart.ModelID{smart.MC1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return dataset.FleetSource{Fleet: fleet}
}

func testConfig(dir string) Config {
	return Config{
		Model:    smart.MC1,
		Selector: pipeline.NoSelection{},
		Engine: engine.Config{
			Forest: forest.Config{NumTrees: 3, MaxDepth: 4, Seed: 7},
			Seed:   7,
		},
		Start: 100, End: 110,
		// MinWindow 30 > the 11 controlled days: drift is never
		// consulted, keeping the run to bootstrap + day summaries.
		CanaryDays: 5, MinWindow: 30,
		Dir: dir,
	}
}

func TestRunBootstrapOnly(t *testing.T) {
	dir := t.TempDir()
	src := testSource(t)
	res, err := Run(src, testConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	if res.ServingVersion != 1 || res.Refreshes != 0 || res.Promotions != 0 {
		t.Fatalf("result = %+v", res)
	}
	if len(res.Events) != 1 {
		t.Fatalf("events = %q", res.Events)
	}
	out := res.String()
	if out == "" || out[len(out)-1] != '\n' {
		t.Fatalf("report rendering: %q", out)
	}

	// A second run over the same directory without Resume must refuse.
	if _, err := Run(src, testConfig(dir)); !errors.Is(err, ErrJournalExists) {
		t.Fatalf("rerun err = %v, want ErrJournalExists", err)
	}

	// Resume replays to the identical result without retraining.
	cfg := testConfig(dir)
	cfg.Resume = true
	res2, err := Run(src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res2.String() != res.String() {
		t.Fatalf("resumed report differs:\n%s\nvs\n%s", res2.String(), res.String())
	}

	// Resuming with a different training config is a mismatch.
	cfg = testConfig(dir)
	cfg.Resume = true
	cfg.Engine.Forest.NumTrees = 4
	if _, err := Run(src, cfg); !errors.Is(err, ErrJournalMismatch) {
		t.Fatalf("mismatched resume err = %v, want ErrJournalMismatch", err)
	}
}

func TestConfigValidate(t *testing.T) {
	base := func() Config {
		c := testConfig("dir")
		return c.withDefaults()
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"empty dir", func(c *Config) { c.Dir = "" }},
		{"nil selector", func(c *Config) { c.Selector = nil }},
		{"robust config", func(c *Config) { c.Engine.Robust = &engine.RobustOpts{} }},
		{"start too early", func(c *Config) { c.Start = 1 }},
		{"end before start", func(c *Config) { c.End = c.Start - 1 }},
		{"end beyond horizon", func(c *Config) { c.End = 120 }},
		{"zero canary", func(c *Config) { c.CanaryDays = -1 }},
		{"window not above canary", func(c *Config) { c.MinWindow = c.CanaryDays }},
	}
	for _, tc := range cases {
		c := base()
		tc.mutate(&c)
		if err := c.validate(120); err == nil {
			t.Errorf("%s: validate passed", tc.name)
		}
	}
	c := base()
	if err := c.validate(120); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

package pipeline

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/dataset"
	"repro/internal/forest"
	"repro/internal/frame"
	"repro/internal/gbdt"
	"repro/internal/hist"
	"repro/internal/metrics"
	"repro/internal/smart"
	"repro/internal/survival"
)

// Errors returned by the pipeline.
var (
	// ErrBadPhase indicates an invalid phase layout.
	ErrBadPhase = errors.New("pipeline: bad phase")
	// ErrNoTrainingSignal indicates a training period without both
	// classes.
	ErrNoTrainingSignal = errors.New("pipeline: no positive samples in training period")
)

// Config parameterizes the prediction pipeline. The zero value uses
// the paper's settings via withDefaults.
type Config struct {
	// Forest configures the prediction model; zero NumTrees means the
	// paper's 100 trees with maximum depth 13.
	Forest forest.Config
	// NegEvery is the negative-sample day stride in training and
	// validation frames; 0 means 7.
	NegEvery int
	// TargetRecall is the drive-level recall the alarm threshold is
	// calibrated to on the validation period, making methods
	// comparable at fixed recall as in Table VI; 0 means 0.3.
	TargetRecall float64
	// ValFraction is the fraction of the training period reserved for
	// validation (the paper's 8:2 split); 0 means 0.2.
	ValFraction float64
	// Windows are the feature-generation windows; nil means 3 and 7
	// days.
	Windows []int
	// Predictor selects the prediction-model family; 0 means the
	// paper's Random Forest.
	Predictor Predictor
	// GBDT configures the boosted-tree predictor when Predictor is
	// PredictorGBDT; zero NumRounds means gbdt.DefaultConfig.
	GBDT gbdt.Config
	// SplitMethod selects the tree learners' split search: exact
	// presorted (the zero value, bit-identical to earlier releases) or
	// histogram-binned (see internal/hist). Applied to the Forest and
	// GBDT configs unless they set their own.
	SplitMethod hist.SplitMethod
	// MaxBins caps per-feature histogram bins on the hist path; 0
	// means hist.DefaultMaxBins.
	MaxBins int
	// Workers bounds the pipeline's parallelism — frame extraction
	// across drives, forest fitting, and batch scoring; 0 means
	// GOMAXPROCS. Results are bit-identical for any value (set 1 to
	// force serial execution). An explicit Forest.Workers takes
	// precedence for the forest itself.
	Workers int
	// Seed drives the prediction model's randomness.
	Seed int64
	// Robust, when non-nil, hardens the run against dirty data (see
	// RobustOpts). Nil reproduces the legacy pipeline exactly.
	Robust *RobustOpts
}

func (c Config) predictor() Predictor {
	if c.Predictor == 0 {
		return PredictorForest
	}
	return c.Predictor
}

func (c Config) withDefaults() Config {
	if c.Forest.NumTrees == 0 {
		c.Forest = forest.DefaultConfig()
	}
	if c.Forest.Seed == 0 {
		c.Forest.Seed = c.Seed + 7919
	}
	if c.Forest.Workers == 0 {
		c.Forest.Workers = c.Workers
	}
	if c.Forest.SplitMethod == hist.SplitExact {
		c.Forest.SplitMethod = c.SplitMethod
	}
	if c.Forest.MaxBins == 0 {
		c.Forest.MaxBins = c.MaxBins
	}
	if c.GBDT.SplitMethod == hist.SplitExact {
		c.GBDT.SplitMethod = c.SplitMethod
	}
	if c.GBDT.MaxBins == 0 {
		c.GBDT.MaxBins = c.MaxBins
	}
	if c.NegEvery <= 0 {
		c.NegEvery = 7
	}
	if c.TargetRecall <= 0 {
		c.TargetRecall = 0.3
	}
	if c.ValFraction <= 0 || c.ValFraction >= 1 {
		c.ValFraction = 0.2
	}
	return c
}

// Phase is one train/test layout: the model trains on [TrainLo,
// TrainHi] (the tail of which is the validation period) and predicts
// daily over [TestLo, TestHi].
type Phase struct {
	TrainLo, TrainHi int
	TestLo, TestHi   int
}

func (p Phase) validate(days int) error {
	if p.TrainLo < 0 || p.TrainHi >= days || p.TrainLo >= p.TrainHi {
		return fmt.Errorf("%w: train [%d, %d] in %d days", ErrBadPhase, p.TrainLo, p.TrainHi, days)
	}
	if p.TestLo <= p.TrainHi || p.TestHi >= days || p.TestLo > p.TestHi {
		return fmt.Errorf("%w: test [%d, %d] after train end %d in %d days", ErrBadPhase, p.TestLo, p.TestHi, p.TrainHi, days)
	}
	return nil
}

// StandardPhases returns the paper's evaluation layout: the last three
// 30-day months are three non-overlapping testing phases, each trained
// on all preceding days.
func StandardPhases(days int) []Phase {
	const month = 30
	var out []Phase
	for k := 3; k >= 1; k-- {
		testLo := days - k*month
		testHi := testLo + month - 1
		out = append(out, Phase{
			TrainLo: 0, TrainHi: testLo - 1,
			TestLo: testLo, TestHi: testHi,
		})
	}
	return out
}

// DriveOutcome is one drive's result in a testing phase, extended with
// the wear level used for per-group reporting (Exp#3).
type DriveOutcome struct {
	// Pred is the drive-level prediction record.
	Pred metrics.DrivePrediction
	// MWI is the drive's MWI_N at its first alarm, or at its last
	// observed test day when no alarm fired.
	MWI float64
	// MaxProb is the drive's highest predicted failure probability in
	// the phase, for threshold-free analyses (ROC/AUC).
	MaxProb float64
}

// PhaseResult is the evaluation of one selector on one phase.
type PhaseResult struct {
	// Selector is the strategy name.
	Selector string
	// Model is the drive model evaluated.
	Model smart.ModelID
	// Selection records the chosen features.
	Selection SelectorResult
	// Thresholds are the calibrated per-group alarm thresholds (one
	// entry when there is no wear split).
	Thresholds []float64
	// Outcomes holds one entry per drive observed in the test phase.
	Outcomes []DriveOutcome
	// Confusion is the drive-level confusion over Outcomes.
	Confusion metrics.Confusion
}

// group is an internal training/scoring unit: a feature set plus an
// optional MWI filter.
type group struct {
	feats      []smart.Feature
	names      []string
	mwiBelow   float64
	mwiAtLeast float64
	model      probModel
}

// PhaseData is the selector-independent state of one (model, phase)
// evaluation: the selection frame, the survival curve as of the end of
// training, and the fit/validation day spans. Preparing it once and
// evaluating many selectors against it (Exp#1's percentage sweeps)
// avoids rebuilding the frame and curve per selector.
type PhaseData struct {
	// SelFrame is the original-feature training frame selectors rank.
	SelFrame *frame.Frame
	// Curve is the survival curve computed from training data only.
	Curve survival.Curve

	src   dataset.Source
	model smart.ModelID
	ph    Phase
	cfg   Config
	fitHi int
	valLo int
}

// PreparePhase builds the selector-independent phase state.
func PreparePhase(src dataset.Source, model smart.ModelID, ph Phase, cfg Config) (*PhaseData, error) {
	cfg = cfg.withDefaults()
	if err := ph.validate(src.Days()); err != nil {
		return nil, err
	}
	trainLen := ph.TrainHi - ph.TrainLo + 1
	valLen := int(float64(trainLen) * cfg.ValFraction)
	if valLen < dataset.PredictionWindow {
		valLen = min(dataset.PredictionWindow, trainLen/2)
	}
	valLo := ph.TrainHi - valLen + 1
	fitHi := valLo - 1

	selFrame, err := dataset.Frame(src, dataset.FrameOpts{
		Model: model, DayLo: ph.TrainLo, DayHi: fitHi, NegEvery: cfg.NegEvery,
		Workers: cfg.Workers, Sanitize: cfg.sanitizeOpts(false),
	})
	if err != nil {
		return nil, fmt.Errorf("pipeline: selection frame: %w", err)
	}
	if selFrame.Positives() == 0 {
		return nil, ErrNoTrainingSignal
	}
	curve, err := survival.ComputeAsOf(src, model, 0, ph.TrainHi)
	if err != nil {
		return nil, fmt.Errorf("pipeline: survival curve: %w", err)
	}
	return &PhaseData{
		SelFrame: selFrame,
		Curve:    curve,
		src:      src,
		model:    model,
		ph:       ph,
		cfg:      cfg,
		fitHi:    fitHi,
		valLo:    valLo,
	}, nil
}

// RunSelector selects features with sel and evaluates them.
func (pd *PhaseData) RunSelector(sel Selector) (PhaseResult, error) {
	selRes, err := sel.Select(pd.SelFrame, pd.Curve)
	if err != nil {
		return PhaseResult{}, err
	}
	if rep := pd.cfg.report(); rep != nil {
		ctx := fmt.Sprintf("model %v test [%d, %d]", pd.model, pd.ph.TestLo, pd.ph.TestHi)
		for _, entry := range selRes.Dropped {
			rep.NoteRankerDropped(ctx, entry)
		}
		for _, note := range selRes.Notes {
			rep.NoteFallback(ctx + ": " + note)
		}
	}
	return pd.RunSelection(sel.Name(), selRes)
}

// RunSelection trains per-wear-group forests for an already-chosen
// feature assignment, calibrates the alarm threshold on the validation
// period, and evaluates drive-level first alarms on the test phase.
func (pd *PhaseData) RunSelection(name string, selRes SelectorResult) (PhaseResult, error) {
	src, model, ph, cfg := pd.src, pd.model, pd.ph, pd.cfg
	groups, err := buildGroups(selRes)
	if err != nil {
		return PhaseResult{}, err
	}

	// Train a forest per group on the fit period; groups without
	// signal fall back to the all-drives feature set and population.
	for gi := range groups {
		g := &groups[gi]
		// Wear groups are subsets with inherently higher positive
		// density; denser negative sampling keeps the class ratio (and
		// with it the forest's probability scale) closer to the full
		// population's.
		groupNegEvery := cfg.NegEvery
		if len(groups) > 1 {
			groupNegEvery = maxInt(1, cfg.NegEvery/5)
		}
		trainFr, err := dataset.Frame(src, dataset.FrameOpts{
			Model: model, DayLo: ph.TrainLo, DayHi: pd.fitHi,
			NegEvery: groupNegEvery, Features: g.feats, Expand: true,
			Windows: cfg.Windows, MWIBelow: g.mwiBelow, MWIAtLeast: g.mwiAtLeast,
			Workers: cfg.Workers, Sanitize: cfg.sanitizeOpts(true),
		})
		if err != nil && !errors.Is(err, dataset.ErrNoSamples) {
			return PhaseResult{}, fmt.Errorf("pipeline: training frame: %w", err)
		}
		if err != nil || trainFr.Positives() == 0 {
			// Degenerate group: train on the whole population with the
			// group's features instead.
			trainFr, err = dataset.Frame(src, dataset.FrameOpts{
				Model: model, DayLo: ph.TrainLo, DayHi: pd.fitHi,
				NegEvery: cfg.NegEvery, Features: g.feats, Expand: true,
				Windows: cfg.Windows, Workers: cfg.Workers,
				Sanitize: cfg.sanitizeOpts(true),
			})
			if err != nil {
				return PhaseResult{}, fmt.Errorf("pipeline: fallback training frame: %w", err)
			}
			if trainFr.Positives() == 0 {
				return PhaseResult{}, ErrNoTrainingSignal
			}
		}
		g.model, err = fitModel(trainFr, cfg)
		if err != nil {
			return PhaseResult{}, fmt.Errorf("pipeline: fit group model: %w", err)
		}
	}

	// Calibrate the alarm threshold to the target recall on the
	// validation period.
	valOutcomes, err := scorePhase(src, model, groups, pd.valLo, ph.TrainHi, cfg)
	if err != nil {
		return PhaseResult{}, fmt.Errorf("pipeline: validation scoring: %w", err)
	}
	thresholds := calibrateThresholds(valOutcomes, len(groups), cfg.TargetRecall)

	// Evaluate the test phase.
	testOutcomes, err := scorePhase(src, model, groups, ph.TestLo, ph.TestHi, cfg)
	if err != nil {
		return PhaseResult{}, fmt.Errorf("pipeline: test scoring: %w", err)
	}
	outcomes := finalizeOutcomes(testOutcomes, thresholds, ph.TestHi)
	cfg.report().NotePhase(true)
	return PhaseResult{
		Selector:   name,
		Model:      model,
		Selection:  selRes,
		Thresholds: thresholds,
		Outcomes:   outcomes,
		Confusion:  EvaluateOutcomes(outcomes),
	}, nil
}

// RunPhase executes the full workflow for one selector, model, and
// phase: select on the training period, train per wear group, calibrate
// the threshold on validation, and evaluate drive-level first alarms on
// the test phase. It is PreparePhase followed by RunSelector.
func RunPhase(src dataset.Source, model smart.ModelID, sel Selector, ph Phase, cfg Config) (PhaseResult, error) {
	pd, err := PreparePhase(src, model, ph, cfg)
	if err != nil {
		return PhaseResult{}, err
	}
	return pd.RunSelector(sel)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// buildGroups converts a SelectorResult into training/scoring groups.
func buildGroups(selRes SelectorResult) ([]group, error) {
	mk := func(names []string, below, atLeast float64) (group, error) {
		feats := make([]smart.Feature, len(names))
		for i, n := range names {
			ft, err := smart.ParseFeature(n)
			if err != nil {
				return group{}, fmt.Errorf("pipeline: selected feature %q: %w", n, err)
			}
			feats[i] = ft
		}
		return group{feats: feats, names: names, mwiBelow: below, mwiAtLeast: atLeast}, nil
	}
	if selRes.Split == nil {
		g, err := mk(selRes.All, 0, 0)
		if err != nil {
			return nil, err
		}
		return []group{g}, nil
	}
	low, err := mk(selRes.Split.Low, selRes.Split.ThresholdMWI, 0)
	if err != nil {
		return nil, err
	}
	high, err := mk(selRes.Split.High, 0, selRes.Split.ThresholdMWI)
	if err != nil {
		return nil, err
	}
	return []group{low, high}, nil
}

// driveScore accumulates one drive's scored days within a window.
type driveScore struct {
	ref     dataset.DriveRef
	days    []int
	probs   []float64
	mwis    []float64
	group   []int // which group's model scored each day
	lastMWI float64
	lastDay int
}

// maxProbIn returns the drive's maximum probability among days scored
// by the given group, and whether it had any such day.
func (ds *driveScore) maxProbIn(g int) (float64, bool) {
	best, any := 0.0, false
	for k, gi := range ds.group {
		if gi != g {
			continue
		}
		any = true
		if ds.probs[k] > best {
			best = ds.probs[k]
		}
	}
	return best, any
}

// scorePhase scores every drive-day of [lo, hi] with the per-group
// models and groups the probabilities by drive (days ascending).
func scorePhase(src dataset.Source, model smart.ModelID, groups []group, lo, hi int, cfg Config) (map[int]*driveScore, error) {
	out := make(map[int]*driveScore)
	for gi, g := range groups {
		fr, err := dataset.Frame(src, dataset.FrameOpts{
			Model: model, DayLo: lo, DayHi: hi, NegEvery: 1,
			Features: g.feats, Expand: true, Windows: cfg.Windows,
			MWIBelow: g.mwiBelow, MWIAtLeast: g.mwiAtLeast,
			Workers: cfg.Workers, Sanitize: cfg.sanitizeOpts(true),
		})
		if errors.Is(err, dataset.ErrNoSamples) {
			continue
		}
		if err != nil {
			return nil, err
		}
		cols := make([][]float64, fr.NumFeatures())
		for i := range cols {
			cols[i] = fr.Col(i)
		}
		probs, err := g.model.predictAll(cols)
		if err != nil {
			return nil, err
		}
		refs := refIndex(src, model)
		for i := 0; i < fr.NumRows(); i++ {
			m := fr.Meta(i)
			ds, ok := out[m.DriveID]
			if !ok {
				ds = &driveScore{ref: refs[m.DriveID], lastDay: -1}
				out[m.DriveID] = ds
			}
			ds.days = append(ds.days, m.Day)
			ds.probs = append(ds.probs, probs[i])
			ds.mwis = append(ds.mwis, m.MWI)
			ds.group = append(ds.group, gi)
			if m.Day > ds.lastDay {
				ds.lastDay = m.Day
				ds.lastMWI = m.MWI
			}
		}
	}
	// Within-drive days arrive ascending per group but groups can
	// interleave (a drive can cross the MWI threshold mid-phase).
	for _, ds := range out {
		sortDriveScore(ds)
	}
	return out, nil
}

// refIndex maps drive IDs to refs for one model.
func refIndex(src dataset.Source, model smart.ModelID) map[int]dataset.DriveRef {
	refs := src.DrivesOf(model)
	out := make(map[int]dataset.DriveRef, len(refs))
	for _, r := range refs {
		out[r.ID] = r
	}
	return out
}

func sortDriveScore(ds *driveScore) {
	idx := make([]int, len(ds.days))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return ds.days[idx[a]] < ds.days[idx[b]] })
	days := make([]int, len(idx))
	probs := make([]float64, len(idx))
	mwis := make([]float64, len(idx))
	grp := make([]int, len(idx))
	for k, i := range idx {
		days[k] = ds.days[i]
		probs[k] = ds.probs[i]
		mwis[k] = ds.mwis[i]
		grp[k] = ds.group[i]
	}
	ds.days, ds.probs, ds.mwis, ds.group = days, probs, mwis, grp
}

// minGroupCalibration is the minimum number of failing validation
// drives a group needs for its own threshold; below it the group
// inherits the pooled threshold.
const minGroupCalibration = 3

// calibrateThresholds picks one alarm threshold per group: the largest
// threshold whose drive-level recall on that group's validation
// outcomes is at least targetRecall. Wear groups train on populations
// with very different base rates, so their forests' probability scales
// differ; a shared threshold would flood the denser group with false
// alarms. Groups with too few failing validation drives inherit the
// pooled threshold (0.5 when no failing drives exist at all).
func calibrateThresholds(scores map[int]*driveScore, numGroups int, targetRecall float64) []float64 {
	pick := func(failingMax []float64) (float64, bool) {
		if len(failingMax) == 0 {
			return 0.5, false
		}
		// Recall at threshold t = fraction of failing drives with max
		// prob >= t. Covering the top `need` drives requires the
		// ceiling: flooring would cover one drive too few and land
		// strictly below the target (1 of 4 drives is recall 0.25,
		// not 0.3).
		sort.Sort(sort.Reverse(sort.Float64Slice(failingMax)))
		need := int(math.Ceil(float64(len(failingMax)) * targetRecall))
		if need < 1 {
			need = 1
		}
		if need > len(failingMax) {
			need = len(failingMax)
		}
		t := failingMax[need-1]
		// Any threshold in (failingMax[need], failingMax[need-1]]
		// meets the target on validation; the interval midpoint
		// maximizes the margin in both directions instead of sitting
		// exactly on one validation drive's score, which generalizes
		// to unseen drives scoring slightly lower.
		if need < len(failingMax) && failingMax[need] < t {
			t = (t + failingMax[need]) / 2
		}
		if t <= 0 {
			t = 0.05
		}
		return t, len(failingMax) >= minGroupCalibration
	}

	var pooled []float64
	perGroup := make([][]float64, numGroups)
	for _, ds := range scores {
		if !ds.ref.Failed() || ds.ref.FailDay < ds.days[0] {
			continue
		}
		var best float64
		for _, p := range ds.probs {
			if p > best {
				best = p
			}
		}
		pooled = append(pooled, best)
		for g := 0; g < numGroups; g++ {
			if m, ok := ds.maxProbIn(g); ok {
				perGroup[g] = append(perGroup[g], m)
			}
		}
	}
	pooledT, _ := pick(pooled)
	out := make([]float64, numGroups)
	for g := 0; g < numGroups; g++ {
		if t, enough := pick(perGroup[g]); enough {
			out[g] = t
		} else {
			out[g] = pooledT
		}
	}
	return out
}

// finalizeOutcomes converts scored drives into drive-level outcomes,
// alarming on the first day whose probability clears its group's
// threshold. Failures more than PredictionWindow days past the phase
// end belong to later phases and are treated as healthy here.
func finalizeOutcomes(scores map[int]*driveScore, thresholds []float64, testHi int) []DriveOutcome {
	ids := make([]int, 0, len(scores))
	for id := range scores {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]DriveOutcome, 0, len(ids))
	for _, id := range ids {
		ds := scores[id]
		first := -1
		mwi := ds.lastMWI
		maxProb := 0.0
		for k, p := range ds.probs {
			if p > maxProb {
				maxProb = p
			}
			if first < 0 && p >= thresholds[ds.group[k]] {
				first = ds.days[k]
				mwi = ds.mwis[k]
			}
		}
		failDay := ds.ref.FailDay
		if failDay > testHi+dataset.PredictionWindow {
			failDay = -1
		}
		out = append(out, DriveOutcome{
			Pred:    metrics.DrivePrediction{DriveID: id, FirstAlarmDay: first, FailDay: failDay},
			MWI:     mwi,
			MaxProb: maxProb,
		})
	}
	return out
}

// EvaluateOutcomes computes the drive-level confusion matrix of a set
// of outcomes.
func EvaluateOutcomes(outcomes []DriveOutcome) metrics.Confusion {
	preds := make([]metrics.DrivePrediction, len(outcomes))
	for i, o := range outcomes {
		preds[i] = o.Pred
	}
	return metrics.EvaluateDrives(preds, dataset.PredictionWindow)
}

// AUC computes the threshold-free ranking quality of a phase: the
// area under the ROC curve of per-drive maximum probabilities against
// actual failure. It errs when the phase has a single class.
func AUC(outcomes []DriveOutcome) (float64, error) {
	scores := make([]float64, len(outcomes))
	labels := make([]int, len(outcomes))
	for i, o := range outcomes {
		scores[i] = o.MaxProb
		if o.Pred.FailDay >= 0 {
			labels[i] = 1
		}
	}
	return metrics.AUC(scores, labels)
}

// EvaluateLowMWI computes the confusion restricted to drives whose
// wear level is below the threshold — the "Low" columns of Table VII.
func EvaluateLowMWI(outcomes []DriveOutcome, threshold float64) metrics.Confusion {
	var preds []metrics.DrivePrediction
	for _, o := range outcomes {
		if o.MWI < threshold {
			preds = append(preds, o.Pred)
		}
	}
	return metrics.EvaluateDrives(preds, dataset.PredictionWindow)
}

// Run executes RunPhase over several phases and merges the drive-level
// confusions (summing counts, as the paper aggregates its three
// testing phases).
//
// With a robust config, a phase whose selection fails retries with the
// previous phase's feature selection before the phase is skipped
// entirely, and every degradation is recorded in the run report; the
// run errs only when no phase completes. Without one, the first phase
// error aborts the run (the legacy behavior).
func Run(src dataset.Source, model smart.ModelID, sel Selector, phases []Phase, cfg Config) ([]PhaseResult, metrics.Confusion, error) {
	var results []PhaseResult
	var total metrics.Confusion
	rep := cfg.report()
	var prevSel *SelectorResult
	var firstErr error
	for _, ph := range phases {
		res, err := runPhaseWithFallback(src, model, sel, ph, cfg, prevSel)
		if err != nil {
			if cfg.Robust == nil {
				return nil, metrics.Confusion{}, fmt.Errorf("pipeline: model %v phase test [%d, %d]: %w", model, ph.TestLo, ph.TestHi, err)
			}
			if firstErr == nil {
				firstErr = err
			}
			rep.NoteFallback(fmt.Sprintf("model %v test [%d, %d]: phase skipped: %v", model, ph.TestLo, ph.TestHi, err))
			rep.NotePhase(false)
			continue
		}
		results = append(results, res)
		total.Merge(res.Confusion)
		selCopy := res.Selection
		prevSel = &selCopy
	}
	if len(results) == 0 {
		if firstErr == nil {
			firstErr = errors.New("no phases")
		}
		return nil, metrics.Confusion{}, fmt.Errorf("pipeline: model %v: every phase failed: %w", model, firstErr)
	}
	return results, total, nil
}

// runPhaseWithFallback runs one phase; in robust mode a selection
// failure retries with the previous phase's selection (recorded as a
// fallback) before giving up on the phase.
func runPhaseWithFallback(src dataset.Source, model smart.ModelID, sel Selector, ph Phase, cfg Config, prevSel *SelectorResult) (PhaseResult, error) {
	pd, err := PreparePhase(src, model, ph, cfg)
	if err != nil {
		return PhaseResult{}, err
	}
	res, err := pd.RunSelector(sel)
	if err != nil && cfg.Robust != nil && prevSel != nil {
		cfg.report().NoteFallback(fmt.Sprintf(
			"model %v test [%d, %d]: selection failed (%v); reusing previous phase's selection", model, ph.TestLo, ph.TestHi, err))
		return pd.RunSelection(sel.Name(), *prevSel)
	}
	return res, err
}

// Package pipeline implements the offline SSD failure-prediction
// workflow of Section V-A of the WEFR paper: training/validation/test
// phases split by time, feature selection on the training period,
// statistical feature generation for the selected features, a Random
// Forest prediction model (100 trees, depth 13 in the paper), an alarm
// threshold calibrated on the validation period to a fixed target
// recall (the paper compares methods "subject to a fixed recall"), and
// drive-level first-alarm evaluation over a testing phase.
//
// The implementation lives in internal/engine (a staged engine over
// the append-only fleet store of internal/store); this package
// re-exports the engine API unchanged and contributes the concrete
// feature-selection strategies (NoSelection, SingleRanker, WEFR).
package pipeline

import (
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/smart"
)

// Core workflow types, re-exported from internal/engine.
type (
	// Config parameterizes the prediction pipeline.
	Config = engine.Config
	// Phase is one train/test layout.
	Phase = engine.Phase
	// PhaseData is the selector-independent state of one (model,
	// phase) evaluation.
	PhaseData = engine.PhaseData
	// PhaseResult is the evaluation of one selector on one phase.
	PhaseResult = engine.PhaseResult
	// DriveOutcome is one drive's result in a testing phase.
	DriveOutcome = engine.DriveOutcome
	// Predictor selects the prediction-model family.
	Predictor = engine.Predictor
	// Engine runs phases over one append-only fleet store.
	Engine = engine.Engine
)

// Selection types, re-exported from internal/engine.
type (
	// Selector abstracts a feature-selection strategy.
	Selector = engine.Selector
	// SelectorResult is a selection strategy's output.
	SelectorResult = engine.SelectorResult
	// GroupFeatures is a wear-split feature assignment.
	GroupFeatures = engine.GroupFeatures
)

// Robustness types, re-exported from internal/engine.
type (
	// RobustOpts hardens the pipeline against dirty data.
	RobustOpts = engine.RobustOpts
	// RunReport accumulates what a robust run did about bad data.
	RunReport = engine.RunReport
	// ReportSnapshot is the serializable form of a RunReport.
	ReportSnapshot = engine.ReportSnapshot
)

// Stage-report types, re-exported from internal/engine.
type (
	// StageStat is one stage execution's accounting.
	StageStat = engine.StageStat
	// StageReport accumulates stage stats across phases.
	StageReport = engine.StageReport
	// StageTotal is one stage's aggregate across a run.
	StageTotal = engine.StageTotal
)

// Model-snapshot types, re-exported from internal/engine.
type (
	// ModelSnapshot is the versioned artifact of a trained phase.
	ModelSnapshot = engine.ModelSnapshot
	// GroupSnapshot is one trained wear group inside a ModelSnapshot.
	GroupSnapshot = engine.GroupSnapshot
	// ScoreOpts configures snapshot scoring.
	ScoreOpts = engine.ScoreOpts
)

// Crash-recovery types, re-exported from internal/engine.
type (
	// JournalOpts configures a journaled run (RunJournaled).
	JournalOpts = engine.JournalOpts
)

// Prediction model families.
const (
	// PredictorForest trains the paper's Random Forest (default).
	PredictorForest = engine.PredictorForest
	// PredictorGBDT trains the XGBoost-style boosted trees instead.
	PredictorGBDT = engine.PredictorGBDT
)

// SnapshotFormat is the current ModelSnapshot serialization format.
const SnapshotFormat = engine.SnapshotFormat

// Errors returned by the pipeline.
var (
	// ErrBadPhase indicates an invalid phase layout.
	ErrBadPhase = engine.ErrBadPhase
	// ErrNoTrainingSignal indicates a training period without both
	// classes.
	ErrNoTrainingSignal = engine.ErrNoTrainingSignal
	// ErrUnknownPredictor indicates an unsupported Predictor value.
	ErrUnknownPredictor = engine.ErrUnknownPredictor
	// ErrNotSnapshotable indicates a phase result that cannot be
	// captured as a ModelSnapshot.
	ErrNotSnapshotable = engine.ErrNotSnapshotable
	// ErrSnapshotFormat indicates a snapshot with an incompatible
	// format.
	ErrSnapshotFormat = engine.ErrSnapshotFormat
	// ErrSnapshotCorrupt indicates snapshot bytes that do not decode.
	ErrSnapshotCorrupt = engine.ErrSnapshotCorrupt
	// ErrJournalExists indicates an existing run journal without
	// -resume.
	ErrJournalExists = engine.ErrJournalExists
	// ErrJournalMismatch indicates a journal from a different run.
	ErrJournalMismatch = engine.ErrJournalMismatch
)

// NewEngine builds an engine over the given source; see engine.New.
func NewEngine(src dataset.Source, cfg Config) *Engine { return engine.New(src, cfg) }

// StandardPhases returns the paper's evaluation layout: the last three
// 30-day months as three testing phases.
func StandardPhases(days int) []Phase { return engine.StandardPhases(days) }

// PreparePhase builds the selector-independent phase state.
func PreparePhase(src dataset.Source, model smart.ModelID, ph Phase, cfg Config) (*PhaseData, error) {
	return engine.PreparePhase(src, model, ph, cfg)
}

// RunPhase executes the full staged workflow for one selector, model,
// and phase.
func RunPhase(src dataset.Source, model smart.ModelID, sel Selector, ph Phase, cfg Config) (PhaseResult, error) {
	return engine.RunPhase(src, model, sel, ph, cfg)
}

// Run executes the staged workflow over several phases on one shared
// store and merges the drive-level confusions.
func Run(src dataset.Source, model smart.ModelID, sel Selector, phases []Phase, cfg Config) ([]PhaseResult, metrics.Confusion, error) {
	return engine.Run(src, model, sel, phases, cfg)
}

// RunJournaled is Run with crash recovery: completed phases are
// checkpointed to a journal directory, and a rerun with Resume reloads
// them instead of retraining; see engine.RunJournaled.
func RunJournaled(src dataset.Source, model smart.ModelID, sel Selector, phases []Phase, cfg Config, jo JournalOpts) ([]PhaseResult, metrics.Confusion, error) {
	return engine.RunJournaled(src, model, sel, phases, cfg, jo)
}

// DecodeSnapshot decodes serialized snapshot bytes; see
// engine.DecodeSnapshot.
func DecodeSnapshot(data []byte) (*ModelSnapshot, error) { return engine.DecodeSnapshot(data) }

// EvaluateOutcomes computes the drive-level confusion matrix of a set
// of outcomes.
func EvaluateOutcomes(outcomes []DriveOutcome) metrics.Confusion {
	return engine.EvaluateOutcomes(outcomes)
}

// AUC computes the threshold-free ranking quality of a phase.
func AUC(outcomes []DriveOutcome) (float64, error) { return engine.AUC(outcomes) }

// EvaluateLowMWI computes the confusion restricted to drives whose
// wear level is below the threshold.
func EvaluateLowMWI(outcomes []DriveOutcome, threshold float64) metrics.Confusion {
	return engine.EvaluateLowMWI(outcomes, threshold)
}

// ScoreSnapshot scores days [lo, hi] of src with a loaded snapshot's
// trained models and calibrated thresholds — no retraining.
func ScoreSnapshot(src dataset.Source, snap *ModelSnapshot, lo, hi int, opts ScoreOpts) ([]DriveOutcome, error) {
	return engine.ScoreSnapshot(src, snap, lo, hi, opts)
}

// SaveSnapshot serializes the snapshot into the registry under name
// and returns the assigned version.
func SaveSnapshot(reg *core.Registry, name string, snap *ModelSnapshot) (int, error) {
	return engine.SaveSnapshot(reg, name, snap)
}

// LoadSnapshot loads a snapshot version from the registry; version <= 0
// loads the latest.
func LoadSnapshot(reg *core.Registry, name string, version int) (*ModelSnapshot, error) {
	return engine.LoadSnapshot(reg, name, version)
}

package pipeline

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/forest"
	"repro/internal/gbdt"
	"repro/internal/hist"
	"repro/internal/metrics"
	"repro/internal/selection"
	"repro/internal/simulate"
	"repro/internal/smart"
	"repro/internal/survival"
)

// smallCfg keeps pipeline tests fast: a modest forest and sparse
// negative sampling. NegEvery 15 (rather than sparser strides) keeps
// the training class ratio close enough to the scoring population's
// that forest probabilities do not saturate near 1, which a
// drive-level max-over-days alarm needs to separate failing drives
// from healthy ones.
func smallCfg() Config {
	return Config{
		Forest:   forest.Config{NumTrees: 20, MaxDepth: 8, Seed: 1},
		NegEvery: 15,
		Seed:     1,
	}
}

var (
	sharedSrc  dataset.FleetSource
	sharedInit bool
)

// smallSource returns a shared fleet: pipeline tests are read-only
// with respect to the source, and fleet construction plus series
// generation dominate test time.
func smallSource(t *testing.T) dataset.FleetSource {
	t.Helper()
	if !sharedInit {
		f, err := simulate.New(simulate.Config{TotalDrives: 1600, Seed: 21, AFRScale: 3})
		if err != nil {
			t.Fatal(err)
		}
		sharedSrc = dataset.FleetSource{Fleet: f}
		sharedInit = true
	}
	return sharedSrc
}

func TestRunPhaseNoSelection(t *testing.T) {
	src := smallSource(t)
	ph := StandardPhases(src.Days())[2]
	res, err := RunPhase(src, smart.MC1, NoSelection{}, ph, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Selector != "No feature selection" {
		t.Errorf("selector = %q", res.Selector)
	}
	spec := smart.MustSpec(smart.MC1)
	if len(res.Selection.All) != 2*len(spec.Attrs) {
		t.Errorf("no-selection kept %d features, want all %d", len(res.Selection.All), 2*len(spec.Attrs))
	}
	if len(res.Outcomes) == 0 {
		t.Fatal("no outcomes")
	}
	if len(res.Thresholds) == 0 {
		t.Fatal("no thresholds")
	}
	for _, thr := range res.Thresholds {
		if thr <= 0 || thr > 1 {
			t.Errorf("threshold = %v", thr)
		}
	}
	c := res.Confusion
	if c.TP+c.FP+c.TN+c.FN != len(res.Outcomes) {
		t.Errorf("confusion total %d != outcomes %d", c.TP+c.FP+c.TN+c.FN, len(res.Outcomes))
	}
	// The model must catch at least one failure at AFRScale 3.
	if c.TP == 0 {
		t.Errorf("no true positives: %+v", c)
	}
}

func TestWorkersInvariance(t *testing.T) {
	// The Workers knob bounds parallelism only: frame chunks
	// concatenate in inventory order, forest bootstraps and seeds are
	// pre-drawn, and batch scoring accumulates per row in tree order,
	// so a phase's entire result must be bit-identical serial vs
	// parallel.
	f, err := simulate.New(simulate.Config{TotalDrives: 700, Seed: 5, AFRScale: 4})
	if err != nil {
		t.Fatal(err)
	}
	src := dataset.FleetSource{Fleet: f}
	ph := StandardPhases(src.Days())[2]
	run := func(workers int) PhaseResult {
		cfg := Config{
			Forest:   forest.Config{NumTrees: 10, MaxDepth: 6, Seed: 1},
			NegEvery: 20,
			Workers:  workers,
			Seed:     1,
		}
		res, err := RunPhase(src, smart.MC1, NoSelection{}, ph, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial, parallel := run(1), run(6)
	if !reflect.DeepEqual(serial.Thresholds, parallel.Thresholds) {
		t.Errorf("thresholds: serial %v != parallel %v", serial.Thresholds, parallel.Thresholds)
	}
	if serial.Confusion != parallel.Confusion {
		t.Errorf("confusion: serial %+v != parallel %+v", serial.Confusion, parallel.Confusion)
	}
	if !reflect.DeepEqual(serial.Outcomes, parallel.Outcomes) {
		t.Error("per-drive outcomes differ between worker counts")
	}
}

func TestRunPhaseWEFR(t *testing.T) {
	src := smallSource(t)
	ph := StandardPhases(src.Days())[2]
	res, err := RunPhase(src, smart.MC1, WEFR{}, ph, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	spec := smart.MustSpec(smart.MC1)
	if len(res.Selection.All) >= 2*len(spec.Attrs) {
		t.Errorf("WEFR kept all %d features; should prune", len(res.Selection.All))
	}
	// MC1 has wear failures: the wear split should engage.
	if res.Selection.Split == nil {
		t.Error("WEFR on MC1 should produce a wear split")
	} else {
		thr := res.Selection.Split.ThresholdMWI
		if thr < 5 || thr > 60 {
			t.Errorf("split threshold = %v", thr)
		}
	}
	if res.Confusion.TP == 0 {
		t.Errorf("WEFR found no failures: %+v", res.Confusion)
	}
}

func TestRunPhaseSingleRanker(t *testing.T) {
	src := smallSource(t)
	ph := StandardPhases(src.Days())[2]
	res, err := RunPhase(src, smart.MB1, SingleRanker{Ranker: selection.Pearson{}, Percent: 0.3}, ph, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	spec := smart.MustSpec(smart.MB1)
	want := int(float64(2*len(spec.Attrs)) * 0.3)
	if len(res.Selection.All) != want {
		t.Errorf("kept %d features, want %d", len(res.Selection.All), want)
	}
	if res.Selection.Split != nil {
		t.Error("single ranker should not split")
	}
}

func TestSelectorNames(t *testing.T) {
	if (WEFR{}).Name() != "WEFR" {
		t.Error("WEFR name")
	}
	if (WEFR{NoUpdate: true}).Name() != "WEFR (No update)" {
		t.Error("WEFR no-update name")
	}
	if (SingleRanker{Ranker: selection.JIndex{}}).Name() != "J-index" {
		t.Error("single ranker name")
	}
}

func TestRunMergesPhases(t *testing.T) {
	src := smallSource(t)
	phases := StandardPhases(src.Days())[1:]
	results, total, err := Run(src, smart.MC1, NoSelection{}, phases, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	var want metrics.Confusion
	for _, r := range results {
		want.Merge(r.Confusion)
	}
	if total != want {
		t.Errorf("total %+v != merged %+v", total, want)
	}
}

func TestEvaluateLowMWI(t *testing.T) {
	outcomes := []DriveOutcome{
		{Pred: metrics.DrivePrediction{DriveID: 1, FirstAlarmDay: 5, FailDay: 20}, MWI: 20},
		{Pred: metrics.DrivePrediction{DriveID: 2, FirstAlarmDay: -1, FailDay: -1}, MWI: 80},
	}
	low := EvaluateLowMWI(outcomes, 50)
	if low.TP != 1 || low.TN != 0 {
		t.Errorf("low confusion = %+v", low)
	}
	all := EvaluateOutcomes(outcomes)
	if all.TP != 1 || all.TN != 1 {
		t.Errorf("all confusion = %+v", all)
	}
}

func TestWEFRNoUpdateIgnoresCurve(t *testing.T) {
	src := smallSource(t)
	fr, err := dataset.Frame(src, dataset.FrameOpts{Model: smart.MC1, DayHi: 500, NegEvery: 15})
	if err != nil {
		t.Fatal(err)
	}
	curve, err := survival.Compute(src, smart.MC1, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := WEFR{NoUpdate: true}.Select(fr, curve)
	if err != nil {
		t.Fatal(err)
	}
	if res.Split != nil {
		t.Error("WEFR (No update) must not split")
	}
}

func TestRunPhaseGBDTPredictor(t *testing.T) {
	src := smallSource(t)
	ph := StandardPhases(src.Days())[2]
	cfg := smallCfg()
	cfg.Predictor = PredictorGBDT
	cfg.GBDT = gbdt.Config{NumRounds: 15, MaxDepth: 3, Eta: 0.3, Lambda: 1}
	res, err := RunPhase(src, smart.MC1, WEFR{NoUpdate: true}, ph, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) == 0 {
		t.Fatal("no outcomes")
	}
	// GBDT probabilities are continuous; the calibrated threshold must
	// be a valid probability.
	for _, thr := range res.Thresholds {
		if thr <= 0 || thr > 1 {
			t.Errorf("gbdt threshold = %v", thr)
		}
	}
}

func TestPredictorString(t *testing.T) {
	if PredictorForest.String() != "random-forest" || PredictorGBDT.String() != "gbdt" {
		t.Error("predictor names")
	}
	if Predictor(9).String() != "Predictor(9)" {
		t.Error("unknown predictor name")
	}
}

func TestUnknownPredictor(t *testing.T) {
	src := smallSource(t)
	ph := StandardPhases(src.Days())[2]
	cfg := smallCfg()
	cfg.Predictor = Predictor(99)
	if _, err := RunPhase(src, smart.MB1, NoSelection{}, ph, cfg); !errors.Is(err, ErrUnknownPredictor) {
		t.Errorf("error = %v, want ErrUnknownPredictor", err)
	}
}

func TestRunPropagatesPhaseErrors(t *testing.T) {
	src := smallSource(t)
	bad := []Phase{{TrainLo: 0, TrainHi: 10, TestLo: 5, TestHi: 20}}
	if _, _, err := Run(src, smart.MC1, NoSelection{}, bad, smallCfg()); !errors.Is(err, ErrBadPhase) {
		t.Errorf("error = %v, want ErrBadPhase", err)
	}
}

func TestPreparePhaseNoSignal(t *testing.T) {
	// A training window before any failures has no positive samples.
	src := smallSource(t)
	ph := Phase{TrainLo: 0, TrainHi: 40, TestLo: 41, TestHi: 50}
	_, err := PreparePhase(src, smart.MB2, ph, smallCfg())
	if err != nil && !errors.Is(err, ErrNoTrainingSignal) {
		// Depending on the seed a failure may exist this early; only
		// the error identity is under test when it fires.
		t.Errorf("error = %v, want ErrNoTrainingSignal or nil", err)
	}
}

func TestAUCFromOutcomes(t *testing.T) {
	outcomes := []DriveOutcome{
		{Pred: metrics.DrivePrediction{DriveID: 1, FailDay: 10}, MaxProb: 0.9},
		{Pred: metrics.DrivePrediction{DriveID: 2, FailDay: 12}, MaxProb: 0.8},
		{Pred: metrics.DrivePrediction{DriveID: 3, FailDay: -1}, MaxProb: 0.2},
		{Pred: metrics.DrivePrediction{DriveID: 4, FailDay: -1}, MaxProb: 0.1},
	}
	auc, err := AUC(outcomes)
	if err != nil {
		t.Fatal(err)
	}
	if auc != 1 {
		t.Errorf("AUC = %v, want 1 (perfect ranking)", auc)
	}
	// Single class errs.
	if _, err := AUC(outcomes[:2]); err == nil {
		t.Error("single-class AUC should fail")
	}
}

// TestHistExactEquivalence pins the accuracy contract of the binned
// split path at pipeline level: running the full WEFR phase with
// histogram splits must select nearly the same features (top-k overlap
// >= 0.9) and reach the same drive-level ranking quality (AUC within
// 0.01) as the exact path.
func TestHistExactEquivalence(t *testing.T) {
	src := smallSource(t)
	ph := StandardPhases(src.Days())[2]

	run := func(m hist.SplitMethod) PhaseResult {
		cfg := smallCfg()
		cfg.SplitMethod = m
		sel := WEFR{Config: core.Config{SplitMethod: m}}
		res, err := RunPhase(src, smart.MC1, sel, ph, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	exact, binned := run(hist.SplitExact), run(hist.SplitHist)

	inter := 0
	in := make(map[string]bool, len(exact.Selection.All))
	for _, f := range exact.Selection.All {
		in[f] = true
	}
	for _, f := range binned.Selection.All {
		if in[f] {
			inter++
		}
	}
	denom := len(exact.Selection.All)
	if len(binned.Selection.All) > denom {
		denom = len(binned.Selection.All)
	}
	if overlap := float64(inter) / float64(denom); overlap < 0.9 {
		t.Errorf("selection overlap = %v (%d of %d), want >= 0.9\nexact:  %v\nbinned: %v",
			overlap, inter, denom, exact.Selection.All, binned.Selection.All)
	}

	aucE, err := AUC(exact.Outcomes)
	if err != nil {
		t.Fatal(err)
	}
	aucB, err := AUC(binned.Outcomes)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(aucE - aucB); d > 0.01 {
		t.Errorf("AUC diverged: exact %v, hist %v (|delta| = %v, want <= 0.01)", aucE, aucB, d)
	}
}

package pipeline

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/faults"
	"repro/internal/frame"
	"repro/internal/selection"
	"repro/internal/smart"
)

// robustCfg is smallCfg plus robust mode with masks and a report.
func robustCfg(rep *RunReport) Config {
	cfg := smallCfg()
	cfg.Robust = &RobustOpts{
		Sanitize: dataset.SanitizeOpts{MissMask: true},
		Report:   rep,
	}
	return cfg
}

// cheapWEFR is a WEFR selector with the three statistical rankers,
// keeping the fault matrix fast while exercising the full ensemble
// (outlier removal, aggregation, cutoff, wear split).
func cheapWEFR(robust bool) WEFR {
	cfg := core.Config{
		Rankers: []selection.Ranker{selection.Pearson{}, selection.Spearman{}, selection.JIndex{}},
	}
	if robust {
		cfg.Robust = &core.RobustConfig{}
	}
	return WEFR{Config: cfg}
}

// overlap is |a ∩ b| / |a|.
func overlap(a, b []string) float64 {
	if len(a) == 0 {
		return 0
	}
	set := make(map[string]bool, len(b))
	for _, n := range b {
		set[n] = true
	}
	hit := 0
	for _, n := range a {
		if set[n] {
			hit++
		}
	}
	return float64(hit) / float64(len(a))
}

// TestPipelineFaultMatrix is the degradation matrix: the pipeline must
// complete under every fault configuration, the run report must
// account for each injected defect class, and quality must degrade
// gracefully — mild (paper-realistic) corruption keeps the selection
// close to clean while pathological corruption still terminates.
func TestPipelineFaultMatrix(t *testing.T) {
	base := smallSource(t)
	phases := StandardPhases(base.Days())[2:]
	model := smart.MC1

	type caseResult struct {
		selAll []string
		auc    float64
		snap   ReportSnapshot
	}
	run := func(t *testing.T, fc faults.Config) caseResult {
		t.Helper()
		inj := faults.New(base, fc)
		src := dataset.NewCachedSource(inj)
		rep := &RunReport{}
		results, _, err := Run(src, model, cheapWEFR(true), phases, robustCfg(rep))
		if err != nil {
			t.Fatalf("pipeline did not complete: %v", err)
		}
		if len(results) != 1 {
			t.Fatalf("got %d phase results, want 1", len(results))
		}
		auc, err := AUC(results[0].Outcomes)
		if err != nil {
			auc = 0.5 // constant scores: no ranking power
		}
		return caseResult{
			selAll: results[0].Selection.All,
			auc:    auc,
			snap:   rep.Snapshot(inj.Stats().Classes()),
		}
	}

	clean := run(t, faults.Config{})
	if len(clean.snap.Injected) != 0 {
		t.Errorf("clean run reports injected defects: %v", clean.snap.Injected)
	}
	if clean.snap.PhasesRun != 1 || clean.snap.PhasesSkipped != 0 {
		t.Errorf("clean run phases: %+v", clean.snap)
	}
	if clean.auc < 0.7 {
		t.Errorf("clean AUC = %v, want >= 0.7", clean.auc)
	}

	t.Run("gaps-only", func(t *testing.T) {
		res := run(t, faults.Config{Seed: 5, GapRate: 0.02})
		if res.snap.Injected["gap_days"] == 0 {
			t.Errorf("injected gap days not reported: %v", res.snap.Injected)
		}
		if res.snap.Detected.ImputedCells == 0 {
			t.Errorf("sanitizer imputed nothing despite gaps: %+v", res.snap.Detected)
		}
	})

	t.Run("dropout-only", func(t *testing.T) {
		res := run(t, faults.Config{
			Seed:    5,
			Dropout: []faults.Dropout{{Model: model, Attr: smart.RER, Rate: 0.5}},
		})
		if res.snap.Injected["dropout_columns"] == 0 {
			t.Errorf("injected dropout not reported: %v", res.snap.Injected)
		}
		// Whole-column dropout exceeds any imputation horizon.
		if res.snap.Detected.ResidualCells == 0 {
			t.Errorf("dropout left no residual missing cells: %+v", res.snap.Detected)
		}
	})

	var combined caseResult
	t.Run("combined-paper-realistic", func(t *testing.T) {
		fc, err := faults.ParseSpec("seed=5,gaps=0.02,dropout=MC1:RER:0.5,nan=0.01,tickets-delay=3d")
		if err != nil {
			t.Fatal(err)
		}
		combined = run(t, fc)
		for _, class := range []string{"gap_days", "dropout_columns", "nan_cells", "tickets_delayed"} {
			if combined.snap.Injected[class] == 0 {
				t.Errorf("injected class %s not accounted: %v", class, combined.snap.Injected)
			}
		}
		if combined.snap.Detected.ImputedCells == 0 || combined.snap.Detected.ResidualCells == 0 {
			t.Errorf("detection incomplete: %+v", combined.snap.Detected)
		}
		// Acceptance: paper-realistic faults keep the selection close
		// to the clean one.
		if ov := overlap(clean.selAll, combined.selAll); ov < 0.8 {
			t.Errorf("selection overlap vs clean = %.2f (%v vs %v), want >= 0.8",
				ov, clean.selAll, combined.selAll)
		}
	})

	t.Run("pathological-all-nan", func(t *testing.T) {
		res := run(t, faults.Config{Seed: 5, NaNRate: 1})
		if res.snap.Injected["nan_cells"] == 0 {
			t.Errorf("injected NaN cells not reported: %v", res.snap.Injected)
		}
		if res.snap.Detected.ResidualCells == 0 {
			t.Errorf("all-NaN input left no residual cells: %+v", res.snap.Detected)
		}
		// Quality degrades monotonically: clean >= mild combined >=
		// pathological, with pathological at chance level.
		if clean.auc+1e-9 < combined.auc-0.15 {
			t.Errorf("mild faults improved AUC implausibly: clean %v vs combined %v", clean.auc, combined.auc)
		}
		if combined.auc < res.auc-1e-9 {
			t.Errorf("AUC not monotone: combined %v < pathological %v", combined.auc, res.auc)
		}
		if res.auc > 0.6 {
			t.Errorf("pathological AUC = %v, want chance level", res.auc)
		}
	})
}

// TestRobustCleanSelectionMatchesLegacy: on clean data, robust mode's
// sanitization must not move the selection — the selection frame has
// no mask columns and imputation never fires.
func TestRobustCleanSelectionMatchesLegacy(t *testing.T) {
	src := smallSource(t)
	ph := StandardPhases(src.Days())[2]

	legacy, err := PreparePhase(src, smart.MC1, ph, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	legacySel, err := cheapWEFR(false).Select(legacy.SelFrame, legacy.Curve)
	if err != nil {
		t.Fatal(err)
	}

	rep := &RunReport{}
	robust, err := PreparePhase(src, smart.MC1, ph, robustCfg(rep))
	if err != nil {
		t.Fatal(err)
	}
	robustSel, err := cheapWEFR(true).Select(robust.SelFrame, robust.Curve)
	if err != nil {
		t.Fatal(err)
	}
	if len(legacySel.All) != len(robustSel.All) {
		t.Fatalf("selection sizes differ: %d vs %d", len(legacySel.All), len(robustSel.All))
	}
	for i := range legacySel.All {
		if legacySel.All[i] != robustSel.All[i] {
			t.Errorf("selection diverged at %d: %q vs %q", i, legacySel.All[i], robustSel.All[i])
		}
	}
	if len(robustSel.Dropped) != 0 {
		t.Errorf("clean data dropped rankers: %v", robustSel.Dropped)
	}
	if st := rep.Counter().Snapshot(); st.ImputedCells != 0 || st.SentinelCells != 0 || st.ResidualCells != 0 {
		t.Errorf("sanitizer claims defects on clean data: %+v", st)
	}
}

// panicRanker always panics, standing in for a ranker brought down by
// pathological input.
type panicRanker struct{}

func (panicRanker) Name() string { return "Panicky" }
func (panicRanker) Rank(fr *frame.Frame) (selection.Result, error) {
	panic("synthetic ranker crash")
}

// TestRunReportRankerDrop: a panicking ranker must be dropped from the
// ensemble like an outlier and surface in the run report, not crash
// the run.
func TestRunReportRankerDrop(t *testing.T) {
	src := smallSource(t)
	phases := StandardPhases(src.Days())[2:]
	sel := WEFR{Config: core.Config{
		Rankers: []selection.Ranker{
			selection.Pearson{}, selection.Spearman{}, selection.JIndex{}, panicRanker{},
		},
		Robust: &core.RobustConfig{},
	}}
	rep := &RunReport{}
	results, _, err := Run(src, smart.MC1, sel, phases, robustCfg(rep))
	if err != nil {
		t.Fatalf("run failed despite robust mode: %v", err)
	}
	if len(results) != 1 {
		t.Fatalf("got %d results", len(results))
	}
	snap := rep.Snapshot(nil)
	if len(snap.RankersDropped) == 0 {
		t.Fatal("report does not record the dropped ranker")
	}
	found := false
	for _, d := range snap.RankersDropped {
		if strings.Contains(d, "Panicky") && strings.Contains(d, "synthetic ranker crash") {
			found = true
		}
	}
	if !found {
		t.Errorf("dropped entries lack the panicking ranker: %v", snap.RankersDropped)
	}
	// Without robust mode the same panic propagates. (Serial keeps the
	// panic on this goroutine so the test can observe it.)
	defer func() {
		if recover() == nil {
			t.Error("strict mode swallowed the ranker panic")
		}
	}()
	strict := WEFR{Config: core.Config{
		Rankers: []selection.Ranker{selection.Pearson{}, panicRanker{}},
		Serial:  true,
	}}
	_, _, _ = Run(src, smart.MC1, strict, phases, smallCfg())
}

package pipeline

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/selection"
	"repro/internal/survival"
)

// NoSelection uses every learning feature — the paper's "no feature
// selection" baseline.
type NoSelection struct{}

var _ Selector = NoSelection{}

// Name implements Selector.
func (NoSelection) Name() string { return "No feature selection" }

// Select implements Selector.
func (NoSelection) Select(fr *frame.Frame, _ survival.Curve) (SelectorResult, error) {
	names := make([]string, fr.NumFeatures())
	copy(names, fr.Names())
	return SelectorResult{All: names}, nil
}

// SingleRanker applies one preliminary approach and keeps a fixed
// percentage of the top-ranked features — the baselines of Exp#1/#2.
type SingleRanker struct {
	// Ranker is the approach.
	Ranker selection.Ranker
	// Percent is the kept fraction in (0, 1]; 0 means 0.3.
	Percent float64
}

var _ Selector = SingleRanker{}

// Name implements Selector.
func (s SingleRanker) Name() string { return s.Ranker.Name() }

// Select implements Selector.
func (s SingleRanker) Select(fr *frame.Frame, _ survival.Curve) (SelectorResult, error) {
	pct := s.Percent
	if pct <= 0 {
		pct = 0.3
	}
	res, err := s.Ranker.Rank(fr)
	if err != nil {
		return SelectorResult{}, fmt.Errorf("pipeline: %s: %w", s.Ranker.Name(), err)
	}
	idx := res.TopPercent(pct)
	names := make([]string, len(idx))
	for i, f := range idx {
		names[i] = fr.Names()[f]
	}
	return SelectorResult{All: names}, nil
}

// WEFR applies the full ensemble algorithm of internal/core.
type WEFR struct {
	// Config is the WEFR configuration (zero value = paper settings).
	Config core.Config
	// NoUpdate disables the wear-out-updating step (lines 9-15 of
	// Algorithm 1) — the "WEFR (No update)" baseline of Exp#3.
	NoUpdate bool
}

var _ Selector = WEFR{}

// Name implements Selector.
func (w WEFR) Name() string {
	if w.NoUpdate {
		return "WEFR (No update)"
	}
	return "WEFR"
}

// Select implements Selector.
func (w WEFR) Select(fr *frame.Frame, curve survival.Curve) (SelectorResult, error) {
	if w.NoUpdate {
		curve = survival.Curve{}
	}
	res, err := core.Select(fr, curve, w.Config)
	if err != nil {
		return SelectorResult{}, fmt.Errorf("pipeline: wefr: %w", err)
	}
	out := SelectorResult{All: res.Global.Features, Notes: res.Notes}
	collectDropped := func(scope string, sel core.Selection) {
		for _, rr := range sel.Rankers {
			if rr.Failed {
				out.Dropped = append(out.Dropped, fmt.Sprintf("%s%s: %s", scope, rr.Name, rr.Err))
			}
		}
	}
	collectDropped("", res.Global)
	if res.Split != nil {
		out.Split = &GroupFeatures{
			ThresholdMWI: res.Split.ThresholdMWI,
			Low:          res.Split.Low.Features,
			High:         res.Split.High.Features,
		}
		if res.Split.LowRefit {
			collectDropped("low group: ", res.Split.Low)
		}
		if res.Split.HighRefit {
			collectDropped("high group: ", res.Split.High)
		}
	}
	return out, nil
}

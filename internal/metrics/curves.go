package metrics

import (
	"errors"
	"sort"
)

// Errors returned by curve construction.
var (
	// ErrNoScores indicates empty score/label input.
	ErrNoScores = errors.New("metrics: no scores")
	// ErrCurveSingleClass indicates scores whose labels contain only
	// one class, for which ROC is undefined.
	ErrCurveSingleClass = errors.New("metrics: need both classes for a curve")
)

// ROCPoint is one operating point of a ROC curve.
type ROCPoint struct {
	Threshold float64
	TPR       float64 // true-positive rate (recall)
	FPR       float64 // false-positive rate
}

// ROC computes the ROC curve of probability scores against binary
// labels: one point per distinct threshold, ordered from the most
// permissive (threshold below every score) to the strictest. The first
// point is (1, 1) and the last (0, 0).
func ROC(scores []float64, labels []int) ([]ROCPoint, error) {
	n := len(scores)
	if n == 0 || n != len(labels) {
		return nil, ErrNoScores
	}
	pos, neg := 0, 0
	for _, y := range labels {
		if y == 1 {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return nil, ErrCurveSingleClass
	}

	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })

	out := []ROCPoint{{Threshold: scores[idx[0]] + 1, TPR: 0, FPR: 0}}
	tp, fp := 0, 0
	for k := 0; k < n; k++ {
		i := idx[k]
		if labels[i] == 1 {
			tp++
		} else {
			fp++
		}
		// Emit a point only at threshold boundaries (distinct scores).
		if k+1 < n && scores[idx[k+1]] == scores[i] {
			continue
		}
		out = append(out, ROCPoint{
			Threshold: scores[i],
			TPR:       float64(tp) / float64(pos),
			FPR:       float64(fp) / float64(neg),
		})
	}
	return out, nil
}

// AUC computes the area under the ROC curve by trapezoidal
// integration. 0.5 is chance level, 1.0 perfect ranking.
func AUC(scores []float64, labels []int) (float64, error) {
	curve, err := ROC(scores, labels)
	if err != nil {
		return 0, err
	}
	area := 0.0
	for i := 1; i < len(curve); i++ {
		dx := curve[i].FPR - curve[i-1].FPR
		area += dx * (curve[i].TPR + curve[i-1].TPR) / 2
	}
	return area, nil
}

// PRPoint is one operating point of a precision-recall curve.
type PRPoint struct {
	Threshold float64
	Precision float64
	Recall    float64
}

// PrecisionRecall computes the PR curve, one point per distinct
// threshold, from the strictest threshold (highest score) down.
func PrecisionRecall(scores []float64, labels []int) ([]PRPoint, error) {
	n := len(scores)
	if n == 0 || n != len(labels) {
		return nil, ErrNoScores
	}
	pos := 0
	for _, y := range labels {
		pos += y
	}
	if pos == 0 || pos == n {
		return nil, ErrCurveSingleClass
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })

	var out []PRPoint
	tp, fp := 0, 0
	for k := 0; k < n; k++ {
		i := idx[k]
		if labels[i] == 1 {
			tp++
		} else {
			fp++
		}
		if k+1 < n && scores[idx[k+1]] == scores[i] {
			continue
		}
		out = append(out, PRPoint{
			Threshold: scores[i],
			Precision: float64(tp) / float64(tp+fp),
			Recall:    float64(tp) / float64(pos),
		})
	}
	return out, nil
}

// BestF05Threshold scans the PR curve for the threshold maximizing the
// F0.5-score and returns (threshold, F0.5).
func BestF05Threshold(scores []float64, labels []int) (float64, float64, error) {
	curve, err := PrecisionRecall(scores, labels)
	if err != nil {
		return 0, 0, err
	}
	bestT, bestF := 0.0, -1.0
	for _, p := range curve {
		if p.Precision == 0 && p.Recall == 0 {
			continue
		}
		f := 1.25 * p.Precision * p.Recall / (0.25*p.Precision + p.Recall)
		if f > bestF {
			bestF = f
			bestT = p.Threshold
		}
	}
	return bestT, bestF, nil
}

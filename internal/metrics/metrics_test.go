package metrics

import (
	"errors"
	"math"
	"testing"
)

func TestConfusionAdd(t *testing.T) {
	var c Confusion
	c.Add(true, true)   // TP
	c.Add(true, false)  // FP
	c.Add(false, true)  // FN
	c.Add(false, false) // TN
	if c.TP != 1 || c.FP != 1 || c.FN != 1 || c.TN != 1 {
		t.Errorf("confusion = %+v", c)
	}
}

func TestMerge(t *testing.T) {
	a := Confusion{TP: 1, FP: 2, TN: 3, FN: 4}
	b := Confusion{TP: 10, FP: 20, TN: 30, FN: 40}
	a.Merge(b)
	if a.TP != 11 || a.FP != 22 || a.TN != 33 || a.FN != 44 {
		t.Errorf("merged = %+v", a)
	}
}

func TestPrecisionRecall(t *testing.T) {
	c := Confusion{TP: 6, FP: 2, FN: 4}
	if got := c.Precision(); got != 0.75 {
		t.Errorf("precision = %v", got)
	}
	if got := c.Recall(); got != 0.6 {
		t.Errorf("recall = %v", got)
	}
	var zero Confusion
	if zero.Precision() != 0 || zero.Recall() != 0 {
		t.Error("empty matrix should report 0")
	}
}

func TestFBeta(t *testing.T) {
	c := Confusion{TP: 6, FP: 2, FN: 4} // P=0.75, R=0.6
	// F0.5 = 1.25*0.75*0.6 / (0.25*0.75 + 0.6) = 0.5625/0.7875.
	want := 0.5625 / 0.7875
	if got := c.F05(); math.Abs(got-want) > 1e-12 {
		t.Errorf("F0.5 = %v, want %v", got, want)
	}
	// F1 = 2PR/(P+R).
	wantF1 := 2 * 0.75 * 0.6 / 1.35
	if got := c.F1(); math.Abs(got-wantF1) > 1e-12 {
		t.Errorf("F1 = %v, want %v", got, wantF1)
	}
	if _, err := c.FBeta(0); !errors.Is(err, ErrBadBeta) {
		t.Errorf("FBeta(0) error = %v", err)
	}
	if _, err := c.FBeta(-1); !errors.Is(err, ErrBadBeta) {
		t.Errorf("FBeta(-1) error = %v", err)
	}
	var zero Confusion
	if zero.F05() != 0 {
		t.Error("zero matrix F0.5 should be 0")
	}
}

func TestF05WeighsPrecision(t *testing.T) {
	// Same F1, different P/R balance: high precision must win F0.5.
	highP := Confusion{TP: 30, FP: 10, FN: 70} // P=0.75, R=0.3
	highR := Confusion{TP: 30, FP: 70, FN: 10} // P=0.3, R=0.75
	if highP.F05() <= highR.F05() {
		t.Errorf("F0.5: high-precision %v should beat high-recall %v", highP.F05(), highR.F05())
	}
}

func TestEvaluateDrives(t *testing.T) {
	preds := []DrivePrediction{
		{DriveID: 1, FirstAlarmDay: 10, FailDay: 25}, // TP: fails 15 days after alarm
		{DriveID: 2, FirstAlarmDay: 10, FailDay: 60}, // FP: fails too late (window 30)
		{DriveID: 3, FirstAlarmDay: 10, FailDay: -1}, // FP: healthy
		{DriveID: 4, FirstAlarmDay: -1, FailDay: 40}, // FN: missed failure
		{DriveID: 5, FirstAlarmDay: -1, FailDay: -1}, // TN
		{DriveID: 6, FirstAlarmDay: 50, FailDay: 40}, // FN: alarm after failure
		{DriveID: 7, FirstAlarmDay: 40, FailDay: 40}, // TP: alarm on the day
	}
	c := EvaluateDrives(preds, 30)
	if c.TP != 2 || c.FP != 2 || c.FN != 2 || c.TN != 1 {
		t.Errorf("confusion = %+v", c)
	}
}

func TestEvaluateDrivesWindowBoundary(t *testing.T) {
	preds := []DrivePrediction{
		{DriveID: 1, FirstAlarmDay: 0, FailDay: 30}, // exactly window
		{DriveID: 2, FirstAlarmDay: 0, FailDay: 31}, // one past window
	}
	c := EvaluateDrives(preds, 30)
	if c.TP != 1 || c.FP != 1 {
		t.Errorf("boundary confusion = %+v", c)
	}
}

func TestAFR(t *testing.T) {
	// 10 failures over 1000 drives running a full year.
	got := AFR(10, 365*1000)
	if math.Abs(got-0.01) > 1e-12 {
		t.Errorf("AFR = %v, want 0.01", got)
	}
	if AFR(5, 0) != 0 {
		t.Error("AFR with no drive-days should be 0")
	}
}

func TestConfusionString(t *testing.T) {
	s := Confusion{TP: 1}.String()
	if s == "" {
		t.Error("String should not be empty")
	}
}

package metrics

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestROCPerfectClassifier(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []int{1, 1, 0, 0}
	auc, err := AUC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if auc != 1 {
		t.Errorf("perfect AUC = %v, want 1", auc)
	}
}

func TestROCInvertedClassifier(t *testing.T) {
	scores := []float64{0.1, 0.2, 0.8, 0.9}
	labels := []int{1, 1, 0, 0}
	auc, err := AUC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if auc != 0 {
		t.Errorf("inverted AUC = %v, want 0", auc)
	}
}

func TestROCRandomScoresNearHalf(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 4000
	scores := make([]float64, n)
	labels := make([]int, n)
	for i := range scores {
		scores[i] = rng.Float64()
		if rng.Float64() < 0.3 {
			labels[i] = 1
		}
	}
	auc, err := AUC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(auc-0.5) > 0.03 {
		t.Errorf("random AUC = %v, want ~0.5", auc)
	}
}

func TestROCEndpoints(t *testing.T) {
	curve, err := ROC([]float64{0.3, 0.7, 0.5}, []int{0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	first, last := curve[0], curve[len(curve)-1]
	if first.TPR != 0 || first.FPR != 0 {
		t.Errorf("first point = %+v, want origin", first)
	}
	if last.TPR != 1 || last.FPR != 1 {
		t.Errorf("last point = %+v, want (1, 1)", last)
	}
	// Monotone nondecreasing in both axes.
	for i := 1; i < len(curve); i++ {
		if curve[i].TPR < curve[i-1].TPR || curve[i].FPR < curve[i-1].FPR {
			t.Fatalf("ROC not monotone at %d", i)
		}
	}
}

func TestROCTiedScores(t *testing.T) {
	// All scores tied: single step from (0,0) to (1,1); AUC 0.5.
	auc, err := AUC([]float64{0.5, 0.5, 0.5, 0.5}, []int{1, 0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if auc != 0.5 {
		t.Errorf("tied AUC = %v, want 0.5", auc)
	}
}

func TestROCErrors(t *testing.T) {
	if _, err := ROC(nil, nil); !errors.Is(err, ErrNoScores) {
		t.Errorf("empty error = %v", err)
	}
	if _, err := ROC([]float64{1}, []int{1, 0}); !errors.Is(err, ErrNoScores) {
		t.Errorf("mismatch error = %v", err)
	}
	if _, err := ROC([]float64{1, 2}, []int{1, 1}); !errors.Is(err, ErrCurveSingleClass) {
		t.Errorf("single-class error = %v", err)
	}
	if _, err := AUC([]float64{1, 2}, []int{0, 0}); !errors.Is(err, ErrCurveSingleClass) {
		t.Errorf("AUC single-class error = %v", err)
	}
}

func TestPrecisionRecallCurve(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.7, 0.1}
	labels := []int{1, 0, 1, 0}
	curve, err := PrecisionRecall(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	// At threshold 0.9: P=1, R=0.5. At 0.8: P=0.5, R=0.5. At 0.7:
	// P=2/3, R=1. At 0.1: P=0.5, R=1.
	want := []PRPoint{
		{0.9, 1, 0.5},
		{0.8, 0.5, 0.5},
		{0.7, 2.0 / 3, 1},
		{0.1, 0.5, 1},
	}
	if len(curve) != len(want) {
		t.Fatalf("curve len = %d, want %d", len(curve), len(want))
	}
	for i := range want {
		if math.Abs(curve[i].Precision-want[i].Precision) > 1e-12 ||
			math.Abs(curve[i].Recall-want[i].Recall) > 1e-12 {
			t.Errorf("point %d = %+v, want %+v", i, curve[i], want[i])
		}
	}
}

func TestPrecisionRecallErrors(t *testing.T) {
	if _, err := PrecisionRecall(nil, nil); !errors.Is(err, ErrNoScores) {
		t.Errorf("empty error = %v", err)
	}
	if _, err := PrecisionRecall([]float64{1, 2}, []int{1, 1}); !errors.Is(err, ErrCurveSingleClass) {
		t.Errorf("single-class error = %v", err)
	}
}

func TestBestF05Threshold(t *testing.T) {
	// A perfect classifier peaks at the threshold separating classes.
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []int{1, 1, 0, 0}
	thr, f, err := BestF05Threshold(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if f != 1 {
		t.Errorf("best F0.5 = %v, want 1", f)
	}
	if thr != 0.8 {
		t.Errorf("best threshold = %v, want 0.8", thr)
	}
}

func TestAUCInvariantToMonotoneTransform(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 500
	scores := make([]float64, n)
	squashed := make([]float64, n)
	labels := make([]int, n)
	for i := range scores {
		scores[i] = rng.NormFloat64()
		squashed[i] = 1 / (1 + math.Exp(-scores[i]))
		if rng.Float64() < 0.4 {
			labels[i] = 1
		}
	}
	a, err := AUC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	b, err := AUC(squashed, labels)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-b) > 1e-12 {
		t.Errorf("AUC changed under monotone transform: %v vs %v", a, b)
	}
}

// Package metrics implements the evaluation metrics of Section V-A of
// the WEFR paper: precision, recall, and the F0.5-score (precision
// weighted twice as heavily as recall, reflecting that decommissioning
// a healthy SSD costs more than missing a failure), plus the
// drive-level "first predicted as failed" evaluation used across all
// experiments and the confusion-matrix plumbing beneath them.
package metrics

import (
	"errors"
	"fmt"
)

// ErrBadBeta indicates a non-positive F-measure beta.
var ErrBadBeta = errors.New("metrics: beta must be positive")

// Confusion is a binary confusion matrix.
type Confusion struct {
	TP, FP, TN, FN int
}

// Add accumulates one (prediction, truth) outcome.
func (c *Confusion) Add(predicted, actual bool) {
	switch {
	case predicted && actual:
		c.TP++
	case predicted && !actual:
		c.FP++
	case !predicted && actual:
		c.FN++
	default:
		c.TN++
	}
}

// Merge folds another confusion matrix into this one.
func (c *Confusion) Merge(o Confusion) {
	c.TP += o.TP
	c.FP += o.FP
	c.TN += o.TN
	c.FN += o.FN
}

// Precision returns TP / (TP + FP), or 0 when nothing was predicted
// positive.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP / (TP + FN), or 0 when there were no positives.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// FBeta returns the F-beta score: (1+b^2)PR / (b^2 P + R). It returns
// 0 when both precision and recall are 0.
func (c Confusion) FBeta(beta float64) (float64, error) {
	if beta <= 0 {
		return 0, fmt.Errorf("%w: %v", ErrBadBeta, beta)
	}
	p := c.Precision()
	r := c.Recall()
	if p == 0 && r == 0 {
		return 0, nil
	}
	b2 := beta * beta
	return (1 + b2) * p * r / (b2*p + r), nil
}

// F05 returns the paper's headline F0.5-score.
func (c Confusion) F05() float64 {
	f, _ := c.FBeta(0.5) // beta 0.5 is always valid
	return f
}

// F1 returns the balanced F1-score.
func (c Confusion) F1() float64 {
	f, _ := c.FBeta(1)
	return f
}

// String renders the matrix compactly for logs.
func (c Confusion) String() string {
	return fmt.Sprintf("TP=%d FP=%d TN=%d FN=%d P=%.3f R=%.3f F0.5=%.3f",
		c.TP, c.FP, c.TN, c.FN, c.Precision(), c.Recall(), c.F05())
}

// DrivePrediction is one drive's outcome over a testing phase, under
// the paper's rule that accuracy is evaluated at the first time a
// drive is predicted as failed.
type DrivePrediction struct {
	// DriveID identifies the drive.
	DriveID int
	// FirstAlarmDay is the first day the model predicted failure, or
	// -1 if it never did.
	FirstAlarmDay int
	// FailDay is the drive's actual failure day, or -1 if healthy.
	FailDay int
}

// Alarmed reports whether the drive was ever predicted as failed.
func (p DrivePrediction) Alarmed() bool { return p.FirstAlarmDay >= 0 }

// EvaluateDrives scores drive-level predictions per Section V-A: a
// drive predicted as failed counts as a true positive when it actually
// fails within window days after the first alarm (the alarm was
// actionable), and as a false positive otherwise; an actual failure
// with no alarm (or an alarm after the failure) is a false negative;
// alarm-free healthy drives are true negatives.
func EvaluateDrives(preds []DrivePrediction, window int) Confusion {
	var c Confusion
	for _, p := range preds {
		failed := p.FailDay >= 0
		switch {
		case p.Alarmed() && failed &&
			p.FirstAlarmDay <= p.FailDay && p.FailDay-p.FirstAlarmDay <= window:
			c.TP++
		case p.Alarmed() && failed && p.FirstAlarmDay > p.FailDay:
			// Alarm after the failure was recorded: useless, the
			// failure was missed.
			c.FN++
		case p.Alarmed():
			c.FP++
		case failed:
			c.FN++
		default:
			c.TN++
		}
	}
	return c
}

// AFR returns the annualized failure rate (in fraction, not percent)
// given the total failure count and the summed drive-days of operation,
// per Section II-A: AFR = failures * 365 / driveDays.
func AFR(failures, driveDays int) float64 {
	if driveDays <= 0 {
		return 0
	}
	return float64(failures) * 365 / float64(driveDays)
}

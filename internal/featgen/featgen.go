// Package featgen implements the statistical feature generation of
// Section V-A of the WEFR paper: for each original (selected) SMART
// feature, the maximum, minimum, mean, standard deviation, range
// (difference between maximum and minimum), and recency-weighted moving
// average over trailing 3-day and 7-day windows, producing 12 generated
// features per original feature.
package featgen

import (
	"errors"
	"fmt"

	"repro/internal/stats"
)

// DefaultWindows are the paper's window lengths in days.
var DefaultWindows = []int{3, 7}

// statNames are the per-window statistic suffixes, in output order.
var statNames = [...]string{"max", "min", "mean", "std", "range", "wma"}

// StatsPerWindow is the number of statistics generated per window.
const StatsPerWindow = len(statNames)

// ErrNoWindows indicates an empty window list.
var ErrNoWindows = errors.New("featgen: no windows")

// Names returns the generated feature names for one base feature, in
// the same order Generate emits columns: for each window, the six
// statistics suffixed ".<stat><window>" (e.g. "UCE_R.max3").
func Names(base string, windows []int) []string {
	out := make([]string, 0, len(windows)*StatsPerWindow)
	for _, w := range windows {
		for _, s := range statNames {
			out = append(out, fmt.Sprintf("%s.%s%d", base, s, w))
		}
	}
	return out
}

// Generate computes the generated feature columns for a daily series.
// The result has len(windows)*StatsPerWindow columns, each of the same
// length as the input; early days use the partial window available so
// far, matching stats.Rolling.
func Generate(series []float64, windows []int) ([][]float64, error) {
	if len(windows) == 0 {
		return nil, ErrNoWindows
	}
	if len(series) == 0 {
		out := make([][]float64, len(windows)*StatsPerWindow)
		for i := range out {
			out[i] = []float64{}
		}
		return out, nil
	}
	return GenerateRange(series, windows, 0, len(series)-1)
}

// GenerateRange computes the generated feature columns only for days
// from through to (inclusive): column index t holds day from+t, and
// values are identical to Generate(series, windows) sliced to that day
// range (trailing windows still look back past `from` into the full
// series). Scoring passes over a short day window of a long series use
// this to skip regenerating statistics for the whole history.
func GenerateRange(series []float64, windows []int, from, to int) ([][]float64, error) {
	if len(windows) == 0 {
		return nil, ErrNoWindows
	}
	out := make([][]float64, 0, len(windows)*StatsPerWindow)
	for _, w := range windows {
		rs, err := stats.RollingRange(series, w, from, to)
		if err != nil {
			return nil, fmt.Errorf("featgen: window %d: %w", w, err)
		}
		cols := make([][]float64, StatsPerWindow)
		for i := range cols {
			cols[i] = make([]float64, to-from+1)
		}
		for t, r := range rs {
			cols[0][t] = r.Max
			cols[1][t] = r.Min
			cols[2][t] = r.Mean
			cols[3][t] = r.Std
			cols[4][t] = r.Range
			cols[5][t] = r.WMA
		}
		out = append(out, cols...)
	}
	return out, nil
}

// GenerateRangeInto is GenerateRange writing into caller-provided
// storage: dst must hold NumGenerated(windows) columns, each of length
// to-from+1, and scratch (which may be nil) is a reusable rolling-stats
// buffer that is returned, possibly regrown, for the next call. Other
// than growing scratch on first use, it allocates nothing.
func GenerateRangeInto(dst [][]float64, series []float64, windows []int, from, to int, scratch []stats.RollingStats) ([]stats.RollingStats, error) {
	if len(windows) == 0 {
		return scratch, ErrNoWindows
	}
	width := to - from + 1
	if len(dst) != NumGenerated(windows) {
		return scratch, fmt.Errorf("featgen: %d destination columns, need %d", len(dst), NumGenerated(windows))
	}
	if cap(scratch) < width {
		scratch = make([]stats.RollingStats, width)
	}
	rs := scratch[:width]
	for wi, w := range windows {
		if err := stats.RollingRangeInto(rs, series, w, from, to); err != nil {
			return scratch, fmt.Errorf("featgen: window %d: %w", w, err)
		}
		cols := dst[wi*StatsPerWindow : (wi+1)*StatsPerWindow]
		for t, r := range rs {
			cols[0][t] = r.Max
			cols[1][t] = r.Min
			cols[2][t] = r.Mean
			cols[3][t] = r.Std
			cols[4][t] = r.Range
			cols[5][t] = r.WMA
		}
	}
	return scratch, nil
}

// NumGenerated returns the number of generated features per original
// feature for the given windows.
func NumGenerated(windows []int) int { return len(windows) * StatsPerWindow }

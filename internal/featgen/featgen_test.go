package featgen

import (
	"errors"
	"math"
	"testing"
)

func TestNames(t *testing.T) {
	names := Names("UCE_R", DefaultWindows)
	if len(names) != 12 {
		t.Fatalf("names len = %d, want 12", len(names))
	}
	want := []string{
		"UCE_R.max3", "UCE_R.min3", "UCE_R.mean3", "UCE_R.std3", "UCE_R.range3", "UCE_R.wma3",
		"UCE_R.max7", "UCE_R.min7", "UCE_R.mean7", "UCE_R.std7", "UCE_R.range7", "UCE_R.wma7",
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("names[%d] = %q, want %q", i, names[i], want[i])
		}
	}
}

func TestGenerateShape(t *testing.T) {
	series := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cols, err := Generate(series, DefaultWindows)
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != NumGenerated(DefaultWindows) {
		t.Fatalf("cols = %d, want %d", len(cols), NumGenerated(DefaultWindows))
	}
	for i, c := range cols {
		if len(c) != len(series) {
			t.Errorf("col %d length %d, want %d", i, len(c), len(series))
		}
	}
}

func TestGenerateValues(t *testing.T) {
	series := []float64{4, 2, 6}
	cols, err := Generate(series, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	// Day 2, full window [4, 2, 6].
	if cols[0][2] != 6 { // max
		t.Errorf("max = %v", cols[0][2])
	}
	if cols[1][2] != 2 { // min
		t.Errorf("min = %v", cols[1][2])
	}
	if cols[2][2] != 4 { // mean
		t.Errorf("mean = %v", cols[2][2])
	}
	if cols[4][2] != 4 { // range
		t.Errorf("range = %v", cols[4][2])
	}
	// WMA weights 1,2,3: (4 + 4 + 18)/6.
	if math.Abs(cols[5][2]-26.0/6) > 1e-12 {
		t.Errorf("wma = %v, want %v", cols[5][2], 26.0/6)
	}
	// Day 0: degenerate partial window.
	if cols[0][0] != 4 || cols[1][0] != 4 || cols[3][0] != 0 {
		t.Errorf("day 0 stats = max %v min %v std %v", cols[0][0], cols[1][0], cols[3][0])
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate([]float64{1}, nil); !errors.Is(err, ErrNoWindows) {
		t.Errorf("no windows error = %v", err)
	}
	if _, err := Generate([]float64{1}, []int{0}); err == nil {
		t.Error("zero window should fail")
	}
}

func TestNamesMatchColumns(t *testing.T) {
	windows := []int{2, 5, 9}
	names := Names("X", windows)
	cols, err := Generate([]float64{1, 2, 3}, windows)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != len(cols) {
		t.Errorf("names %d != cols %d", len(names), len(cols))
	}
}

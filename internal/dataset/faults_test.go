package dataset

import (
	"errors"
	"testing"

	"repro/internal/smart"
)

// faultySource injects errors and malformed series into consumers to
// verify propagation rather than silent misbehaviour.
type faultySource struct {
	days   int
	refs   []DriveRef
	series func(ref DriveRef) (map[smart.Feature][]float64, int, error)
}

var _ Source = faultySource{}

func (f faultySource) Days() int { return f.days }

func (f faultySource) DrivesOf(m smart.ModelID) []DriveRef {
	var out []DriveRef
	for _, r := range f.refs {
		if r.Model == m {
			out = append(out, r)
		}
	}
	return out
}

func (f faultySource) Series(ref DriveRef) (map[smart.Feature][]float64, int, error) {
	return f.series(ref)
}

var errInjected = errors.New("injected failure")

func TestFrameSeriesErrorPropagates(t *testing.T) {
	src := faultySource{
		days: 100,
		refs: []DriveRef{{ID: 1, Model: smart.MC1, FailDay: -1}},
		series: func(DriveRef) (map[smart.Feature][]float64, int, error) {
			return nil, 0, errInjected
		},
	}
	if _, err := Frame(src, FrameOpts{Model: smart.MC1}); !errors.Is(err, errInjected) {
		t.Errorf("error = %v, want injected", err)
	}
}

func TestFrameMissingFeature(t *testing.T) {
	// A series lacking a feature the model spec promises must be
	// rejected, not zero-filled.
	src := faultySource{
		days: 100,
		refs: []DriveRef{{ID: 1, Model: smart.MC1, FailDay: -1}},
		series: func(DriveRef) (map[smart.Feature][]float64, int, error) {
			cols := map[smart.Feature][]float64{
				{Attr: smart.MWI, Kind: smart.Normalized}: make([]float64, 100),
			}
			return cols, 99, nil
		},
	}
	_, err := Frame(src, FrameOpts{Model: smart.MC1, NegEvery: 1})
	if err == nil {
		t.Fatal("missing feature should fail")
	}
}

func TestCachedSourcePropagatesAndRecovers(t *testing.T) {
	calls := 0
	src := faultySource{
		days: 10,
		refs: []DriveRef{{ID: 1, Model: smart.MC1, FailDay: -1}},
		series: func(DriveRef) (map[smart.Feature][]float64, int, error) {
			calls++
			if calls == 1 {
				return nil, 0, errInjected
			}
			return map[smart.Feature][]float64{
				{Attr: smart.MWI, Kind: smart.Normalized}: {1, 2, 3},
			}, 2, nil
		},
	}
	cached := NewCachedSource(src)
	ref := DriveRef{ID: 1, Model: smart.MC1, FailDay: -1}
	if _, _, err := cached.Series(ref); !errors.Is(err, errInjected) {
		t.Fatalf("first call error = %v", err)
	}
	// An error must not be cached: the second call succeeds.
	cols, last, err := cached.Series(ref)
	if err != nil || last != 2 || cols == nil {
		t.Fatalf("second call = (%v, %d, %v)", cols, last, err)
	}
	// Third call comes from cache (no new inner call).
	if _, _, err := cached.Series(ref); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Errorf("inner calls = %d, want 2 (error not cached, success cached)", calls)
	}
	cached.Drop()
	if _, _, err := cached.Series(ref); err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Errorf("calls after Drop = %d, want 3", calls)
	}
}

package dataset

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"

	"repro/internal/smart"
)

// ReadOptions controls the lenient CSV reader for real-world SMART
// logs, implementing the "data preprocessing" stage of the paper's
// workflow (Section II-B): daily logs from production fleets have
// missing days (collector outages) and missing cells (attributes a
// firmware revision stopped reporting), which the strict reader
// rejects.
type ReadOptions struct {
	// FillGaps forward-fills missing days with the last observation:
	// a drive logged on days 3 and 6 gets days 4 and 5 copied from
	// day 3. Without it, a gap is an error.
	FillGaps bool
	// MaxGap bounds the forward-fill span in days; a larger gap is an
	// error even with FillGaps. 0 means 14.
	MaxGap int
	// FillMissingCells replaces empty cells with the previous day's
	// value for that feature (or 0 on the first day). Without it, an
	// empty cell is an error.
	FillMissingCells bool
	// DedupeDays keeps the last of duplicate (drive, day) rows rather
	// than erroring.
	DedupeDays bool
}

func (o ReadOptions) maxGap() int {
	if o.MaxGap <= 0 {
		return 14
	}
	return o.MaxGap
}

// ReadModelCSVWith parses a SMART log file with preprocessing per the
// options. ReadModelCSV is equivalent to ReadModelCSVWith with the
// zero options (strict).
func ReadModelCSVWith(r io.Reader, opts ReadOptions) (*Logs, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrBadCSV, err)
	}
	if len(header) < 4 || header[0] != "day" || header[1] != "model" || header[2] != "drive_id" {
		return nil, fmt.Errorf("%w: unexpected header %v", ErrBadCSV, header)
	}
	feats := make([]smart.Feature, len(header)-3)
	for i, name := range header[3:] {
		ft, err := smart.ParseFeature(name)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadCSV, err)
		}
		feats[i] = ft
	}

	l := &Logs{
		feats:  feats,
		series: make(map[int]map[smart.Feature][]float64),
		last:   make(map[int]int),
		fail:   make(map[int]int),
	}
	line := 1
	for {
		row, err := cr.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrBadCSV, line+1, err)
		}
		line++
		if len(row) != len(header) {
			return nil, fmt.Errorf("%w: line %d has %d fields, want %d", ErrBadCSV, line, len(row), len(header))
		}
		day, err := strconv.Atoi(row[0])
		if err != nil {
			return nil, fmt.Errorf("%w: line %d day: %v", ErrBadCSV, line, err)
		}
		model, err := smart.ParseModel(row[1])
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrBadCSV, line, err)
		}
		if l.model == 0 {
			l.model = model
		} else if model != l.model {
			return nil, fmt.Errorf("%w: line %d: mixed models %v and %v", ErrBadCSV, line, l.model, model)
		}
		id, err := strconv.Atoi(row[2])
		if err != nil {
			return nil, fmt.Errorf("%w: line %d drive: %v", ErrBadCSV, line, err)
		}
		s, ok := l.series[id]
		if !ok {
			s = make(map[smart.Feature][]float64, len(feats))
			for _, ft := range feats {
				s[ft] = []float64{}
			}
			l.series[id] = s
			l.last[id] = -1
		}

		switch {
		case day == l.last[id]+1:
			// Consecutive: normal append below.
		case day <= l.last[id]:
			if !opts.DedupeDays {
				return nil, fmt.Errorf("%w: line %d: drive %d day %d repeats or precedes day %d", ErrBadCSV, line, id, day, l.last[id])
			}
			if day < l.last[id] {
				return nil, fmt.Errorf("%w: line %d: drive %d day %d out of order", ErrBadCSV, line, id, day)
			}
			// Duplicate of the current day: overwrite in place.
			for i, ft := range feats {
				v, err := parseCell(row[3+i], s[ft], opts)
				if err != nil {
					return nil, fmt.Errorf("%w: line %d field %s: %v", ErrBadCSV, line, ft, err)
				}
				s[ft][len(s[ft])-1] = v
			}
			continue
		default: // gap
			gap := day - l.last[id] - 1
			if !opts.FillGaps {
				return nil, fmt.Errorf("%w: line %d: drive %d day %d not consecutive after %d", ErrBadCSV, line, id, day, l.last[id])
			}
			if gap > opts.maxGap() {
				return nil, fmt.Errorf("%w: line %d: drive %d gap of %d days exceeds limit %d", ErrBadCSV, line, id, gap, opts.maxGap())
			}
			if l.last[id] < 0 {
				return nil, fmt.Errorf("%w: line %d: drive %d starts at day %d, want 0", ErrBadCSV, line, id, day)
			}
			for g := 0; g < gap; g++ {
				for _, ft := range feats {
					col := s[ft]
					s[ft] = append(col, col[len(col)-1])
				}
			}
			l.last[id] = day - 1
		}

		for i, ft := range feats {
			v, err := parseCell(row[3+i], s[ft], opts)
			if err != nil {
				return nil, fmt.Errorf("%w: line %d field %s: %v", ErrBadCSV, line, ft, err)
			}
			s[ft] = append(s[ft], v)
		}
		l.last[id] = day
		if day+1 > l.days {
			l.days = day + 1
		}
	}
	if len(l.series) == 0 {
		return nil, fmt.Errorf("%w: no data rows", ErrBadCSV)
	}
	return l, nil
}

// parseCell parses one value cell, filling empty cells from the
// previous observation when allowed.
func parseCell(cell string, col []float64, opts ReadOptions) (float64, error) {
	if cell == "" {
		if !opts.FillMissingCells {
			return 0, errors.New("empty cell")
		}
		if len(col) == 0 {
			return 0, nil
		}
		return col[len(col)-1], nil
	}
	return strconv.ParseFloat(cell, 64)
}

package dataset

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/simulate"
	"repro/internal/smart"
)

func lenientRead(t *testing.T, in string, opts ReadOptions) (*Logs, error) {
	t.Helper()
	return ReadModelCSVWith(bytes.NewReader([]byte(in)), opts)
}

const header = "day,model,drive_id,UCE_R,UCE_N\n"

func TestFillGaps(t *testing.T) {
	in := header +
		"0,MC1,1,1,100\n" +
		"1,MC1,1,2,99\n" +
		"4,MC1,1,5,95\n" // gap: days 2 and 3 missing
	logs, err := lenientRead(t, in, ReadOptions{FillGaps: true})
	if err != nil {
		t.Fatal(err)
	}
	cols, last, err := logs.Series(DriveRef{ID: 1, Model: smart.MC1, FailDay: -1})
	if err != nil {
		t.Fatal(err)
	}
	if last != 4 {
		t.Fatalf("last day = %d", last)
	}
	uce := cols[smart.Feature{Attr: smart.UCE, Kind: smart.Raw}]
	want := []float64{1, 2, 2, 2, 5} // days 2-3 forward-filled from day 1
	for i := range want {
		if uce[i] != want[i] {
			t.Errorf("uce[%d] = %v, want %v", i, uce[i], want[i])
		}
	}
}

func TestGapWithoutOptionFails(t *testing.T) {
	in := header + "0,MC1,1,1,100\n2,MC1,1,2,99\n"
	if _, err := lenientRead(t, in, ReadOptions{}); !errors.Is(err, ErrBadCSV) {
		t.Errorf("error = %v, want ErrBadCSV", err)
	}
}

func TestGapExceedsMaxGap(t *testing.T) {
	in := header + "0,MC1,1,1,100\n20,MC1,1,2,99\n"
	if _, err := lenientRead(t, in, ReadOptions{FillGaps: true, MaxGap: 5}); !errors.Is(err, ErrBadCSV) {
		t.Errorf("error = %v, want ErrBadCSV", err)
	}
	// Generous limit accepts it.
	if _, err := lenientRead(t, in, ReadOptions{FillGaps: true, MaxGap: 30}); err != nil {
		t.Errorf("large MaxGap should accept: %v", err)
	}
}

func TestGapAtSeriesStartFails(t *testing.T) {
	// A drive starting at day 3 has no observation to fill from.
	in := header + "3,MC1,1,1,100\n"
	if _, err := lenientRead(t, in, ReadOptions{FillGaps: true}); !errors.Is(err, ErrBadCSV) {
		t.Errorf("error = %v, want ErrBadCSV", err)
	}
}

func TestFillMissingCells(t *testing.T) {
	in := header +
		"0,MC1,1,1,100\n" +
		"1,MC1,1,,99\n" + // UCE_R missing: filled from day 0
		"2,MC1,1,3,\n" // UCE_N missing: filled from day 1
	logs, err := lenientRead(t, in, ReadOptions{FillMissingCells: true})
	if err != nil {
		t.Fatal(err)
	}
	cols, _, err := logs.Series(DriveRef{ID: 1, Model: smart.MC1, FailDay: -1})
	if err != nil {
		t.Fatal(err)
	}
	uceR := cols[smart.Feature{Attr: smart.UCE, Kind: smart.Raw}]
	uceN := cols[smart.Feature{Attr: smart.UCE, Kind: smart.Normalized}]
	if uceR[1] != 1 {
		t.Errorf("filled cell = %v, want 1", uceR[1])
	}
	if uceN[2] != 99 {
		t.Errorf("filled cell = %v, want 99", uceN[2])
	}
}

func TestMissingCellOnFirstDayZeroFilled(t *testing.T) {
	in := header + ",MC1,1,1,100\n"
	_ = in // malformed day; separate case below uses a valid day
	in = header + "0,MC1,1,,100\n1,MC1,1,2,99\n"
	logs, err := lenientRead(t, in, ReadOptions{FillMissingCells: true})
	if err != nil {
		t.Fatal(err)
	}
	cols, _, _ := logs.Series(DriveRef{ID: 1, Model: smart.MC1, FailDay: -1})
	if got := cols[smart.Feature{Attr: smart.UCE, Kind: smart.Raw}][0]; got != 0 {
		t.Errorf("first-day missing cell = %v, want 0", got)
	}
}

func TestMissingCellWithoutOptionFails(t *testing.T) {
	in := header + "0,MC1,1,,100\n"
	if _, err := lenientRead(t, in, ReadOptions{}); !errors.Is(err, ErrBadCSV) {
		t.Errorf("error = %v, want ErrBadCSV", err)
	}
}

func TestDedupeDays(t *testing.T) {
	in := header +
		"0,MC1,1,1,100\n" +
		"1,MC1,1,2,99\n" +
		"1,MC1,1,7,98\n" // duplicate day: last wins
	logs, err := lenientRead(t, in, ReadOptions{DedupeDays: true})
	if err != nil {
		t.Fatal(err)
	}
	cols, last, _ := logs.Series(DriveRef{ID: 1, Model: smart.MC1, FailDay: -1})
	if last != 1 {
		t.Fatalf("last = %d", last)
	}
	if got := cols[smart.Feature{Attr: smart.UCE, Kind: smart.Raw}][1]; got != 7 {
		t.Errorf("deduped value = %v, want 7", got)
	}
}

func TestDuplicateWithoutOptionFails(t *testing.T) {
	in := header + "0,MC1,1,1,100\n0,MC1,1,2,99\n"
	if _, err := lenientRead(t, in, ReadOptions{}); !errors.Is(err, ErrBadCSV) {
		t.Errorf("error = %v, want ErrBadCSV", err)
	}
}

func TestOutOfOrderAlwaysFails(t *testing.T) {
	in := header + "0,MC1,1,1,100\n2,MC1,1,2,99\n1,MC1,1,3,98\n"
	opts := ReadOptions{FillGaps: true, DedupeDays: true, FillMissingCells: true}
	if _, err := lenientRead(t, in, opts); !errors.Is(err, ErrBadCSV) {
		t.Errorf("error = %v, want ErrBadCSV", err)
	}
}

func TestLenientMatchesStrictOnCleanData(t *testing.T) {
	in := header + "0,MC1,1,1,100\n1,MC1,1,2,99\n2,MC1,1,3,98\n"
	strict, err := ReadModelCSV(bytes.NewReader([]byte(in)))
	if err != nil {
		t.Fatal(err)
	}
	lenient, err := lenientRead(t, in, ReadOptions{FillGaps: true, FillMissingCells: true, DedupeDays: true})
	if err != nil {
		t.Fatal(err)
	}
	sa, _, _ := strict.Series(DriveRef{ID: 1, Model: smart.MC1, FailDay: -1})
	sb, _, _ := lenient.Series(DriveRef{ID: 1, Model: smart.MC1, FailDay: -1})
	for ft, ca := range sa {
		cb := sb[ft]
		for i := range ca {
			if ca[i] != cb[i] {
				t.Fatalf("feature %v day %d: strict %v vs lenient %v", ft, i, ca[i], cb[i])
			}
		}
	}
}

// TestCorruptedCSVEndToEnd injects drop/blank defects into an export
// and verifies the lenient reader reconstructs a usable dataset: same
// drive population, full day coverage, and frames that still contain
// both classes.
func TestCorruptedCSVEndToEnd(t *testing.T) {
	f, err := simulate.New(simulate.Config{TotalDrives: 300, Days: 150, Seed: 9, AFRScale: 6})
	if err != nil {
		t.Fatal(err)
	}
	src := FleetSource{Fleet: f}

	var buf bytes.Buffer
	if err := WriteModelCSVCorrupted(&buf, src, smart.MC1, CorruptOptions{
		DropDayRate: 0.05, BlankCellRate: 0.02, Seed: 9,
	}); err != nil {
		t.Fatal(err)
	}
	logs, err := ReadModelCSVWith(bytes.NewReader(buf.Bytes()), ReadOptions{
		FillGaps: true, MaxGap: 30, FillMissingCells: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantDrives := src.DrivesOf(smart.MC1)
	gotDrives := logs.DrivesOf(smart.MC1)
	if len(gotDrives) != len(wantDrives) {
		t.Fatalf("drives = %d, want %d", len(gotDrives), len(wantDrives))
	}
	// Every drive's reconstructed series covers its true span.
	for _, ref := range gotDrives {
		_, gotLast, err := logs.Series(ref)
		if err != nil {
			t.Fatal(err)
		}
		_, wantLast, err := src.Series(ref)
		if err != nil {
			t.Fatal(err)
		}
		if gotLast != wantLast {
			t.Fatalf("drive %d last day %d, want %d", ref.ID, gotLast, wantLast)
		}
	}
	// A frame built from the reconstruction is usable for selection.
	var tickets bytes.Buffer
	if err := WriteTicketsCSV(&tickets, src, []smart.ModelID{smart.MC1}); err != nil {
		t.Fatal(err)
	}
	tk, err := ReadTicketsCSV(bytes.NewReader(tickets.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	logs.ApplyTickets(tk)
	fr, err := Frame(logs, FrameOpts{Model: smart.MC1, NegEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	if fr.Positives() == 0 || fr.Positives() == fr.NumRows() {
		t.Errorf("reconstructed frame classes: %d of %d positive", fr.Positives(), fr.NumRows())
	}
}

package dataset

import (
	"math"
	"testing"

	"repro/internal/simulate"
	"repro/internal/smart"
)

// TestFrameDeterminismPooled re-extracts the same frame repeatedly with
// parallel workers and requires bit-identical columns: extraction runs
// on recycled slabs (slabPool), so any cell not fully overwritten shows
// up as run-to-run nondeterminism here.
func TestFrameDeterminismPooled(t *testing.T) {
	f, err := simulate.New(simulate.Config{TotalDrives: 700, Seed: 5, AFRScale: 4})
	if err != nil {
		t.Fatal(err)
	}
	src := FleetSource{Fleet: f}
	cols0, _, err := src.Series(src.DrivesOf(smart.MC1)[0])
	if err != nil {
		t.Fatal(err)
	}
	var feats []smart.Feature
	for ft := range cols0 {
		feats = append(feats, ft)
		if len(feats) == 6 {
			break
		}
	}
	opts := FrameOpts{Model: smart.MC1, DayLo: 500, DayHi: 560, NegEvery: 1, Features: feats, Expand: true, Workers: 8}
	a, err := Frame(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 5; rep++ {
		b, err := Frame(src, opts)
		if err != nil {
			t.Fatal(err)
		}
		if a.NumRows() != b.NumRows() || a.NumFeatures() != b.NumFeatures() {
			t.Fatalf("rep %d: shape %dx%d vs %dx%d", rep, a.NumFeatures(), a.NumRows(), b.NumFeatures(), b.NumRows())
		}
		for c := 0; c < a.NumFeatures(); c++ {
			ca, cb := a.Col(c), b.Col(c)
			for i := range ca {
				if math.Float64bits(ca[i]) != math.Float64bits(cb[i]) {
					t.Fatalf("rep %d col %d row %d: %v vs %v", rep, c, i, ca[i], cb[i])
				}
			}
		}
	}
}

package dataset

import (
	"math"
	"sync/atomic"

	"repro/internal/smart"
)

// DefaultMaxGap bounds last-observation-carried-forward imputation: a
// missing run longer than this many days past the last finite reading
// stays missing (masked) rather than being filled with stale data.
const DefaultMaxGap = 14

// SanitizeOpts configures per-drive series cleaning, applied before
// labeling, filtering, and feature expansion. The zero value scrubs
// nothing but still imputes with the default gap bound.
type SanitizeOpts struct {
	// MaxGap bounds forward-fill imputation in days; 0 means
	// DefaultMaxGap. Leading missing runs are back-filled from the
	// first finite reading under the same bound.
	MaxGap int
	// Sentinels lists bogus reading values (firmware error codes,
	// unsigned-overflow artifacts) scrubbed to missing before
	// imputation. Values are matched exactly.
	Sentinels []float64
	// MissMask appends one "<feature>.miss" indicator column per
	// original frame feature: 1 where the cell was missing or a
	// sentinel before imputation, 0 otherwise. The mask lets the model
	// distinguish imputed from observed readings.
	MissMask bool
	// Counter, when non-nil, accumulates detected-defect counts across
	// extractions. Safe for concurrent use.
	Counter *DefectCounter
}

func (s *SanitizeOpts) maxGap() int {
	if s.MaxGap <= 0 {
		return DefaultMaxGap
	}
	return s.MaxGap
}

// DefectCounter tallies the dirty-data conditions the sanitizer
// detected and what it did about them. Counts are per extracted cell:
// building several frames over the same drives counts the same
// underlying defect once per extraction.
type DefectCounter struct {
	sentinelCells atomic.Int64
	imputedCells  atomic.Int64
	residualCells atomic.Int64
}

// DefectStats is a point-in-time snapshot of a DefectCounter.
type DefectStats struct {
	// SentinelCells counts readings scrubbed for matching a sentinel.
	SentinelCells int64 `json:"sentinel_cells"`
	// ImputedCells counts missing readings filled by bounded LOCF.
	ImputedCells int64 `json:"imputed_cells"`
	// ResidualCells counts readings still missing after imputation
	// (gaps longer than MaxGap, or all-missing columns); downstream
	// learners see these as NaN and rely on missing-aware splits.
	ResidualCells int64 `json:"residual_cells"`
}

// Snapshot returns the current counts.
func (c *DefectCounter) Snapshot() DefectStats {
	if c == nil {
		return DefectStats{}
	}
	return DefectStats{
		SentinelCells: c.sentinelCells.Load(),
		ImputedCells:  c.imputedCells.Load(),
		ResidualCells: c.residualCells.Load(),
	}
}

// sanitizeSeries returns a cleaned copy of the columns extractDrive
// will read (the frame features plus MWI_N, which drives filters and
// metadata), together with each feature's pre-imputation missingness.
// Unused columns pass through untouched; the input map and its slices
// are never modified, so sources that share backing arrays (the cache)
// stay intact.
func sanitizeSeries(series map[smart.Feature][]float64, opts FrameOpts) (map[smart.Feature][]float64, map[smart.Feature][]bool) {
	san := opts.Sanitize
	used := make(map[smart.Feature]bool, len(opts.Features)+1)
	for _, ft := range opts.Features {
		used[ft] = true
	}
	used[smart.Feature{Attr: smart.MWI, Kind: smart.Normalized}] = true

	out := make(map[smart.Feature][]float64, len(series))
	miss := make(map[smart.Feature][]bool, len(used))
	var sentinels, imputed, residual int64
	for ft, col := range series {
		if !used[ft] {
			out[ft] = col
			continue
		}
		clean := make([]float64, len(col))
		copy(clean, col)
		m := make([]bool, len(col))
		s, i, r := sanitizeColumn(clean, m, san)
		sentinels += s
		imputed += i
		residual += r
		out[ft] = clean
		miss[ft] = m
	}
	if san.Counter != nil {
		san.Counter.sentinelCells.Add(sentinels)
		san.Counter.imputedCells.Add(imputed)
		san.Counter.residualCells.Add(residual)
	}
	return out, miss
}

// sanitizeColumn cleans one series in place: sentinel scrub, then
// bounded LOCF imputation with leading backfill. miss records
// pre-imputation missingness (non-finite or sentinel).
func sanitizeColumn(col []float64, miss []bool, san *SanitizeOpts) (sentinels, imputed, residual int64) {
	for day, v := range col {
		for _, s := range san.Sentinels {
			if v == s {
				col[day] = math.NaN()
				sentinels++
				break
			}
		}
		// Non-finite readings (NaN from gaps/dropout, ±Inf from
		// overflow) are all treated as missing.
		if v := col[day]; v-v != 0 {
			col[day] = math.NaN()
			miss[day] = true
		}
	}
	maxGap := san.maxGap()
	lastFinite := -1
	for day, v := range col {
		if v == v {
			lastFinite = day
			continue
		}
		if lastFinite >= 0 && day-lastFinite <= maxGap {
			col[day] = col[lastFinite]
			imputed++
		}
	}
	// Leading backfill: a series that starts mid-gap borrows its first
	// finite reading, under the same staleness bound.
	firstFinite := -1
	for day := range col {
		if !miss[day] {
			firstFinite = day
			break
		}
	}
	if firstFinite > 0 && firstFinite <= maxGap {
		for day := 0; day < firstFinite; day++ {
			col[day] = col[firstFinite]
			imputed++
		}
	}
	for _, v := range col {
		if v != v {
			residual++
		}
	}
	return sentinels, imputed, residual
}

package dataset

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/featgen"
	"repro/internal/simulate"
	"repro/internal/smart"
)

func testSource(t *testing.T) FleetSource {
	t.Helper()
	f, err := simulate.New(simulate.Config{TotalDrives: 600, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return FleetSource{Fleet: f}
}

func TestDriveRefLabel(t *testing.T) {
	healthy := DriveRef{ID: 1, FailDay: -1}
	failing := DriveRef{ID: 2, FailDay: 100}
	tests := []struct {
		ref  DriveRef
		day  int
		want int
	}{
		{healthy, 50, 0},
		{failing, 69, 0},  // 31 days before failure
		{failing, 70, 1},  // exactly 30 days before
		{failing, 100, 1}, // failure day itself
		{failing, 101, 0}, // after (not observed anyway)
		{failing, 0, 0},
	}
	for _, tt := range tests {
		if got := tt.ref.Label(tt.day); got != tt.want {
			t.Errorf("Label(fail=%d, day=%d) = %d, want %d", tt.ref.FailDay, tt.day, got, tt.want)
		}
	}
	if healthy.Failed() || !failing.Failed() {
		t.Error("Failed() mismatch")
	}
}

func TestFrameBasic(t *testing.T) {
	src := testSource(t)
	fr, err := Frame(src, FrameOpts{Model: smart.MC1, NegEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	spec := smart.MustSpec(smart.MC1)
	if fr.NumFeatures() != 2*len(spec.Attrs) {
		t.Errorf("features = %d, want %d", fr.NumFeatures(), 2*len(spec.Attrs))
	}
	if fr.NumRows() == 0 {
		t.Fatal("no rows")
	}
	if fr.Positives() == 0 {
		t.Error("expected positive samples")
	}
	if fr.Positives() >= fr.NumRows()/2 {
		t.Error("positives should be the minority class")
	}
	if !fr.HasMeta() {
		t.Fatal("frame should carry metadata")
	}
	// MWI metadata in range.
	for i := 0; i < fr.NumRows(); i += 97 {
		m := fr.Meta(i)
		if m.MWI < 1 || m.MWI > 100 {
			t.Fatalf("meta MWI = %v", m.MWI)
		}
		if m.Day < 0 || m.Day >= src.Days() {
			t.Fatalf("meta Day = %d", m.Day)
		}
	}
}

func TestFrameWorkerCountInvariance(t *testing.T) {
	// Per-drive chunks are concatenated in inventory order, so the
	// frame must be byte-for-byte identical for any worker count.
	src := testSource(t)
	opts := FrameOpts{Model: smart.MC1, NegEvery: 10, Expand: true, DayLo: 500, DayHi: 560}
	opts.Workers = 1
	serial, err := Frame(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 7
	parallel, err := Frame(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	if serial.NumRows() != parallel.NumRows() || serial.NumFeatures() != parallel.NumFeatures() {
		t.Fatalf("shape: serial %dx%d, parallel %dx%d",
			serial.NumRows(), serial.NumFeatures(), parallel.NumRows(), parallel.NumFeatures())
	}
	for c := 0; c < serial.NumFeatures(); c++ {
		cs, cp := serial.Col(c), parallel.Col(c)
		for i := range cs {
			if cs[i] != cp[i] {
				t.Fatalf("col %d row %d: serial %v != parallel %v", c, i, cs[i], cp[i])
			}
		}
	}
	for i := 0; i < serial.NumRows(); i++ {
		if serial.Labels()[i] != parallel.Labels()[i] || serial.Meta(i) != parallel.Meta(i) {
			t.Fatalf("row %d label/meta mismatch", i)
		}
	}
}

func TestFrameAllPositiveDaysKept(t *testing.T) {
	src := testSource(t)
	fr, err := Frame(src, FrameOpts{Model: smart.MC1, NegEvery: 500})
	if err != nil {
		t.Fatal(err)
	}
	// With sparse negatives, positives per failed drive should still
	// be the full pre-failure window (bounded by dataset span).
	perDrive := map[int]int{}
	for i := 0; i < fr.NumRows(); i++ {
		if fr.Labels()[i] == 1 {
			perDrive[fr.Meta(i).DriveID]++
		}
	}
	for _, d := range src.Fleet.Failures(smart.MC1) {
		want := PredictionWindow + 1
		if d.FailDay < PredictionWindow {
			want = d.FailDay + 1
		}
		if got := perDrive[d.ID]; got != want {
			t.Errorf("drive %d (fail %d) has %d positive samples, want %d", d.ID, d.FailDay, got, want)
		}
	}
}

func TestFrameDayRange(t *testing.T) {
	src := testSource(t)
	fr, err := Frame(src, FrameOpts{Model: smart.MA1, DayLo: 100, DayHi: 200, NegEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < fr.NumRows(); i++ {
		d := fr.Meta(i).Day
		if d < 100 || d > 200 {
			t.Fatalf("sample day %d outside [100, 200]", d)
		}
	}
}

func TestFrameExpand(t *testing.T) {
	src := testSource(t)
	feats := []smart.Feature{
		{Attr: smart.UCE, Kind: smart.Raw},
		{Attr: smart.MWI, Kind: smart.Normalized},
	}
	fr, err := Frame(src, FrameOpts{
		Model: smart.MC1, NegEvery: 20, Features: feats, Expand: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * (1 + featgen.NumGenerated(featgen.DefaultWindows))
	if fr.NumFeatures() != want {
		t.Fatalf("expanded features = %d, want %d", fr.NumFeatures(), want)
	}
	// Generated column names present.
	if fr.ColIndex("UCE_R.max7") < 0 || fr.ColIndex("MWI_N.wma3") < 0 {
		t.Errorf("expanded names missing: %v", fr.Names())
	}
	// max over a window >= the raw value that day.
	raw, _ := fr.ColByName("UCE_R")
	mx, _ := fr.ColByName("UCE_R.max7")
	for i := range raw {
		if mx[i] < raw[i] {
			t.Fatalf("max7 %v < raw %v at %d", mx[i], raw[i], i)
		}
	}
}

func TestFrameMWIFilter(t *testing.T) {
	src := testSource(t)
	lo, err := Frame(src, FrameOpts{Model: smart.MC1, NegEvery: 5, MWIBelow: 60})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < lo.NumRows(); i++ {
		if lo.Meta(i).MWI >= 60 {
			t.Fatalf("MWIBelow leaked sample at MWI %v", lo.Meta(i).MWI)
		}
	}
	hi, err := Frame(src, FrameOpts{Model: smart.MC1, NegEvery: 5, MWIAtLeast: 60})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < hi.NumRows(); i++ {
		if hi.Meta(i).MWI < 60 {
			t.Fatalf("MWIAtLeast leaked sample at MWI %v", hi.Meta(i).MWI)
		}
	}
}

func TestFrameOptErrors(t *testing.T) {
	src := testSource(t)
	cases := []FrameOpts{
		{},                            // invalid model
		{Model: smart.MC1, DayLo: -1}, // bad range
		{Model: smart.MC1, DayLo: 100, DayHi: 50},
		{Model: smart.MC1, DayHi: 100000},
		{Model: smart.MC1, MWIBelow: 10, MWIAtLeast: 20},
	}
	for i, opts := range cases {
		if _, err := Frame(src, opts); !errors.Is(err, ErrBadOpts) {
			t.Errorf("case %d error = %v, want ErrBadOpts", i, err)
		}
	}
}

func TestFrameNoSamples(t *testing.T) {
	src := testSource(t)
	// An impossible MWI filter yields no samples.
	_, err := Frame(src, FrameOpts{Model: smart.MC1, MWIBelow: 0.5})
	if !errors.Is(err, ErrNoSamples) {
		t.Errorf("error = %v, want ErrNoSamples", err)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	f, err := simulate.New(simulate.Config{TotalDrives: 300, Days: 120, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	src := FleetSource{Fleet: f}

	var logBuf, ticketBuf bytes.Buffer
	if err := WriteModelCSV(&logBuf, src, smart.MB2); err != nil {
		t.Fatal(err)
	}
	models := []smart.ModelID{smart.MB2}
	if err := WriteTicketsCSV(&ticketBuf, src, models); err != nil {
		t.Fatal(err)
	}

	logs, err := ReadModelCSV(bytes.NewReader(logBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	tickets, err := ReadTicketsCSV(bytes.NewReader(ticketBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	logs.ApplyTickets(tickets)

	if logs.Model() != smart.MB2 {
		t.Errorf("model = %v", logs.Model())
	}
	if logs.Days() != 120 {
		t.Errorf("days = %d, want 120", logs.Days())
	}

	wantDrives := src.DrivesOf(smart.MB2)
	gotDrives := logs.DrivesOf(smart.MB2)
	if len(gotDrives) != len(wantDrives) {
		t.Fatalf("drives = %d, want %d", len(gotDrives), len(wantDrives))
	}
	// Fail days survive the round trip via tickets.
	wantFail := map[int]int{}
	for _, d := range wantDrives {
		wantFail[d.ID] = d.FailDay
	}
	for _, d := range gotDrives {
		if wantFail[d.ID] != d.FailDay {
			t.Errorf("drive %d fail day = %d, want %d", d.ID, d.FailDay, wantFail[d.ID])
		}
	}

	// Series data identical.
	ref := gotDrives[0]
	gotSeries, gotLast, err := logs.Series(ref)
	if err != nil {
		t.Fatal(err)
	}
	wantSeries, wantLast, err := src.Series(ref)
	if err != nil {
		t.Fatal(err)
	}
	if gotLast != wantLast {
		t.Fatalf("lastDay = %d, want %d", gotLast, wantLast)
	}
	for ft, wcol := range wantSeries {
		gcol, ok := gotSeries[ft]
		if !ok {
			t.Fatalf("missing feature %v after round trip", ft)
		}
		for i := range wcol {
			if gcol[i] != wcol[i] {
				t.Fatalf("feature %v day %d: %v != %v", ft, i, gcol[i], wcol[i])
			}
		}
	}

	// Frames built from both sources agree.
	opts := FrameOpts{Model: smart.MB2, NegEvery: 9}
	fa, err := Frame(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := Frame(logs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if fa.NumRows() != fb.NumRows() || fa.Positives() != fb.Positives() {
		t.Errorf("frame mismatch: (%d, %d) vs (%d, %d)", fa.NumRows(), fa.Positives(), fb.NumRows(), fb.Positives())
	}
}

func TestReadModelCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"bad header":   "a,b,c\n",
		"bad feature":  "day,model,drive_id,BOGUS_R\n",
		"no rows":      "day,model,drive_id,UCE_R\n",
		"bad day":      "day,model,drive_id,UCE_R\nx,MC1,1,0\n",
		"bad model":    "day,model,drive_id,UCE_R\n0,NOPE,1,0\n",
		"bad value":    "day,model,drive_id,UCE_R\n0,MC1,1,zzz\n",
		"gap in days":  "day,model,drive_id,UCE_R\n0,MC1,1,0\n2,MC1,1,0\n",
		"mixed models": "day,model,drive_id,UCE_R\n0,MC1,1,0\n0,MC2,2,0\n",
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadModelCSV(bytes.NewReader([]byte(in))); !errors.Is(err, ErrBadCSV) {
				t.Errorf("error = %v, want ErrBadCSV", err)
			}
		})
	}
}

func TestReadTicketsCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":     "",
		"bad day":   "day,model,drive_id\nx,MC1,1\n",
		"bad model": "day,model,drive_id\n0,NOPE,1\n",
		"bad drive": "day,model,drive_id\n0,MC1,x\n",
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadTicketsCSV(bytes.NewReader([]byte(in))); !errors.Is(err, ErrBadCSV) {
				t.Errorf("error = %v, want ErrBadCSV", err)
			}
		})
	}
}

func TestLogsDrivesOfOtherModel(t *testing.T) {
	in := "day,model,drive_id,UCE_R\n0,MC1,1,0\n1,MC1,1,2\n2,MC1,1,3\n"
	logs, err := ReadModelCSV(bytes.NewReader([]byte(in)))
	if err != nil {
		t.Fatal(err)
	}
	if got := logs.DrivesOf(smart.MA1); got != nil {
		t.Errorf("DrivesOf(other model) = %v, want nil", got)
	}
	refs := logs.DrivesOf(smart.MC1)
	if len(refs) != 1 || refs[0].FailDay != -1 {
		t.Errorf("refs = %v", refs)
	}
	// Ticket for an unknown drive is ignored.
	logs.ApplyTickets([]Ticket{{DriveID: 99, Model: smart.MC1, Day: 1}})
	if logs.DrivesOf(smart.MC1)[0].FailDay != -1 {
		t.Error("ticket for unknown drive should be ignored")
	}
}

package dataset

import (
	"math"
	"strings"
	"testing"

	"repro/internal/smart"
)

// dirtySource serves a two-drive model with injected defects: drive 1
// has a short gap (days 10-11), a sentinel at day 20, and a long gap
// (days 30-47); drive 2 is clean. Columns are MWI_R/MWI_N/RSC_R/RSC_N.
type dirtySource struct{ days int }

func (d dirtySource) Days() int { return d.days }

func (d dirtySource) DrivesOf(m smart.ModelID) []DriveRef {
	if m != smart.MA1 {
		return nil
	}
	return []DriveRef{
		{ID: 1, Model: smart.MA1, FailDay: -1},
		{ID: 2, Model: smart.MA1, FailDay: d.days - 5},
	}
}

func (d dirtySource) Series(ref DriveRef) (map[smart.Feature][]float64, int, error) {
	cols := make(map[smart.Feature][]float64)
	for _, ft := range []smart.Feature{
		{Attr: smart.MWI, Kind: smart.Raw},
		{Attr: smart.MWI, Kind: smart.Normalized},
		{Attr: smart.RSC, Kind: smart.Raw},
		{Attr: smart.RSC, Kind: smart.Normalized},
	} {
		col := make([]float64, d.days)
		for day := range col {
			col[day] = float64(100 + day)
		}
		if ref.ID == 1 {
			col[10], col[11] = math.NaN(), math.NaN()
			col[20] = 65535
			for day := 30; day < 48 && day < d.days; day++ {
				col[day] = math.NaN()
			}
		}
		cols[ft] = col
	}
	return cols, d.days - 1, nil
}

func dirtyFrameOpts(san *SanitizeOpts) FrameOpts {
	return FrameOpts{
		Model: smart.MA1, NegEvery: 1, Sanitize: san,
		Features: []smart.Feature{
			{Attr: smart.MWI, Kind: smart.Normalized},
			{Attr: smart.RSC, Kind: smart.Raw},
		},
	}
}

func TestSanitizeImputesShortGapsMasksLong(t *testing.T) {
	src := dirtySource{days: 60}
	ctr := &DefectCounter{}
	fr, err := Frame(src, dirtyFrameOpts(&SanitizeOpts{
		MaxGap:    5,
		Sentinels: []float64{65535},
		Counter:   ctr,
	}))
	if err != nil {
		t.Fatal(err)
	}
	col := fr.Col(0) // MWI_N, one row per drive-day, drive 1 first
	// Day 10-11 (short gap) imputed from day 9's value 109.
	if col[10] != 109 || col[11] != 109 {
		t.Errorf("short gap imputed to %v, %v, want 109", col[10], col[11])
	}
	// Sentinel at day 20 scrubbed then imputed from day 19.
	if col[20] != 119 {
		t.Errorf("sentinel cell = %v, want imputed 119", col[20])
	}
	// Long gap: first MaxGap days imputed, the rest stays missing.
	if col[34] != 129 {
		t.Errorf("day 34 = %v, want imputed 129 (within MaxGap of day 29)", col[34])
	}
	if !math.IsNaN(col[40]) {
		t.Errorf("day 40 = %v, want NaN (beyond MaxGap)", col[40])
	}
	st := ctr.Snapshot()
	if st.SentinelCells == 0 || st.ImputedCells == 0 || st.ResidualCells == 0 {
		t.Errorf("counter did not see all defect classes: %+v", st)
	}
}

func TestSanitizeMissMaskColumns(t *testing.T) {
	src := dirtySource{days: 60}
	fr, err := Frame(src, dirtyFrameOpts(&SanitizeOpts{MaxGap: 5, MissMask: true}))
	if err != nil {
		t.Fatal(err)
	}
	names := fr.Names()
	nMask := 0
	for _, n := range names {
		if strings.HasSuffix(n, ".miss") {
			nMask++
		}
	}
	if nMask != 2 {
		t.Fatalf("frame has %d mask columns (%v), want 2", nMask, names)
	}
	if names[len(names)-2] != "MWI_N.miss" || names[len(names)-1] != "RSC_R.miss" {
		t.Errorf("mask columns misnamed or misplaced: %v", names[len(names)-2:])
	}
	maskCol := fr.Col(len(names) - 2)
	valCol := fr.Col(0)
	// Row for drive 1 day 10: value imputed, mask set. Day 9: observed.
	if maskCol[10] != 1 || valCol[10] != 109 {
		t.Errorf("day 10: mask %v value %v, want 1 / 109", maskCol[10], valCol[10])
	}
	if maskCol[9] != 0 {
		t.Errorf("day 9: mask %v, want 0", maskCol[9])
	}
	// Drive 2 (clean) rows: all masks zero.
	for i := 60; i < fr.NumRows(); i++ {
		if maskCol[i] != 0 {
			t.Fatalf("clean drive has mask bit set at row %d", i)
		}
	}
}

func TestSanitizeNilIsExactLegacyPath(t *testing.T) {
	src := dirtySource{days: 60}
	a, err := Frame(src, dirtyFrameOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Frame(src, dirtyFrameOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	if a.NumFeatures() != 2 {
		t.Fatalf("legacy frame gained columns: %v", a.Names())
	}
	for c := 0; c < a.NumFeatures(); c++ {
		ca, cb := a.Col(c), b.Col(c)
		for i := range ca {
			same := ca[i] == cb[i] || (ca[i] != ca[i] && cb[i] != cb[i])
			if !same {
				t.Fatalf("legacy path not deterministic at col %d row %d", c, i)
			}
		}
	}
	// NaNs flow through untouched on the legacy path.
	if v := a.Col(0)[10]; !math.IsNaN(v) {
		t.Errorf("legacy path altered missing cell: %v", v)
	}
}

func TestSanitizeAllMissingColumnStaysMissing(t *testing.T) {
	col := []float64{math.NaN(), math.NaN(), math.NaN()}
	miss := make([]bool, 3)
	s, i, r := sanitizeColumn(col, miss, &SanitizeOpts{})
	if s != 0 || i != 0 || r != 3 {
		t.Errorf("all-missing column: sentinels %d imputed %d residual %d", s, i, r)
	}
	for _, v := range col {
		if !math.IsNaN(v) {
			t.Error("all-missing column was fabricated")
		}
	}
}

func TestSanitizeLeadingBackfill(t *testing.T) {
	col := []float64{math.NaN(), math.NaN(), 5, 6}
	miss := make([]bool, 4)
	_, imputed, residual := sanitizeColumn(col, miss, &SanitizeOpts{MaxGap: 3})
	if col[0] != 5 || col[1] != 5 {
		t.Errorf("leading gap = %v, want backfill from 5", col[:2])
	}
	if imputed != 2 || residual != 0 {
		t.Errorf("imputed %d residual %d, want 2 / 0", imputed, residual)
	}
	// Inf counts as missing.
	col2 := []float64{1, math.Inf(1), 3}
	miss2 := make([]bool, 3)
	sanitizeColumn(col2, miss2, &SanitizeOpts{})
	if col2[1] != 1 || !miss2[1] {
		t.Errorf("Inf cell: value %v mask %v, want imputed 1 / true", col2[1], miss2[1])
	}
}

package dataset

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"

	"repro/internal/smart"
)

// Ticket is one failure report from the maintenance system: the drive
// and the day the failure was detected (Section II-A).
type Ticket struct {
	DriveID int
	Model   smart.ModelID
	Day     int
}

// ErrBadCSV indicates a malformed CSV input.
var ErrBadCSV = errors.New("dataset: bad csv")

// WriteModelCSV writes the daily SMART logs of one model in the layout
// of the released ssd_smart_logs dataset: a header of
// day,model,drive_id followed by one column per learning feature, then
// one row per drive-day. Failed drives stop at their fail day.
func WriteModelCSV(w io.Writer, src Source, model smart.ModelID) error {
	if !model.Valid() {
		return fmt.Errorf("dataset: invalid model %v", model)
	}
	feats := smart.MustSpec(model).Features()
	cw := csv.NewWriter(w)
	header := []string{"day", "model", "drive_id"}
	for _, ft := range feats {
		header = append(header, ft.String())
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataset: write header: %w", err)
	}

	drives := src.DrivesOf(model)
	sort.Slice(drives, func(i, j int) bool { return drives[i].ID < drives[j].ID })
	row := make([]string, len(header))
	for _, ref := range drives {
		series, lastDay, err := src.Series(ref)
		if err != nil {
			return err
		}
		for day := 0; day <= lastDay; day++ {
			row[0] = strconv.Itoa(day)
			row[1] = model.String()
			row[2] = strconv.Itoa(ref.ID)
			for i, ft := range feats {
				col, ok := series[ft]
				if !ok {
					return fmt.Errorf("dataset: model %v drive %d missing %v", model, ref.ID, ft)
				}
				row[3+i] = strconv.FormatFloat(col[day], 'g', -1, 64)
			}
			if err := cw.Write(row); err != nil {
				return fmt.Errorf("dataset: write row: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTicketsCSV writes the failure tickets of every model in the
// source: day,model,drive_id per failure.
func WriteTicketsCSV(w io.Writer, src Source, models []smart.ModelID) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"day", "model", "drive_id"}); err != nil {
		return fmt.Errorf("dataset: write header: %w", err)
	}
	for _, m := range models {
		for _, ref := range src.DrivesOf(m) {
			if !ref.Failed() {
				continue
			}
			err := cw.Write([]string{strconv.Itoa(ref.FailDay), m.String(), strconv.Itoa(ref.ID)})
			if err != nil {
				return fmt.Errorf("dataset: write ticket: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadTicketsCSV parses a tickets file written by WriteTicketsCSV.
func ReadTicketsCSV(r io.Reader) ([]Ticket, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCSV, err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("%w: empty tickets file", ErrBadCSV)
	}
	var out []Ticket
	for i, row := range rows[1:] {
		if len(row) != 3 {
			return nil, fmt.Errorf("%w: ticket row %d has %d fields", ErrBadCSV, i+2, len(row))
		}
		day, err := strconv.Atoi(row[0])
		if err != nil {
			return nil, fmt.Errorf("%w: ticket row %d day: %v", ErrBadCSV, i+2, err)
		}
		model, err := smart.ParseModel(row[1])
		if err != nil {
			return nil, fmt.Errorf("%w: ticket row %d: %v", ErrBadCSV, i+2, err)
		}
		id, err := strconv.Atoi(row[2])
		if err != nil {
			return nil, fmt.Errorf("%w: ticket row %d drive: %v", ErrBadCSV, i+2, err)
		}
		out = append(out, Ticket{DriveID: id, Model: model, Day: day})
	}
	return out, nil
}

// Logs is an in-memory SMART log collection for one drive model,
// typically parsed from CSV. It implements Source, so frames can be
// built from real released data exactly as from the simulator.
type Logs struct {
	model  smart.ModelID
	days   int
	feats  []smart.Feature
	series map[int]map[smart.Feature][]float64
	last   map[int]int
	fail   map[int]int
}

var _ Source = (*Logs)(nil)

// Model returns the drive model the logs belong to.
func (l *Logs) Model() smart.ModelID { return l.model }

// Days implements Source.
func (l *Logs) Days() int { return l.days }

// DrivesOf implements Source. It returns no drives for models other
// than the one the logs were parsed for.
func (l *Logs) DrivesOf(m smart.ModelID) []DriveRef {
	if m != l.model {
		return nil
	}
	ids := make([]int, 0, len(l.series))
	for id := range l.series {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]DriveRef, len(ids))
	for i, id := range ids {
		failDay := -1
		if fd, ok := l.fail[id]; ok {
			failDay = fd
		}
		out[i] = DriveRef{ID: id, Model: l.model, FailDay: failDay}
	}
	return out
}

// Series implements Source.
func (l *Logs) Series(ref DriveRef) (map[smart.Feature][]float64, int, error) {
	s, ok := l.series[ref.ID]
	if !ok {
		return nil, 0, fmt.Errorf("dataset: no logs for drive %d", ref.ID)
	}
	return s, l.last[ref.ID], nil
}

// ApplyTickets marks failure days from a ticket list. Tickets for
// other models are ignored.
func (l *Logs) ApplyTickets(tickets []Ticket) {
	for _, t := range tickets {
		if t.Model != l.model {
			continue
		}
		if _, ok := l.series[t.DriveID]; ok {
			l.fail[t.DriveID] = t.Day
		}
	}
}

// ReadModelCSV parses a SMART log file written by WriteModelCSV (or
// adapted from the released dataset) into Logs. Every drive's rows
// must cover consecutive days starting at 0.
func ReadModelCSV(r io.Reader) (*Logs, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrBadCSV, err)
	}
	if len(header) < 4 || header[0] != "day" || header[1] != "model" || header[2] != "drive_id" {
		return nil, fmt.Errorf("%w: unexpected header %v", ErrBadCSV, header)
	}
	feats := make([]smart.Feature, len(header)-3)
	for i, name := range header[3:] {
		ft, err := smart.ParseFeature(name)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadCSV, err)
		}
		feats[i] = ft
	}

	l := &Logs{
		feats:  feats,
		series: make(map[int]map[smart.Feature][]float64),
		last:   make(map[int]int),
		fail:   make(map[int]int),
	}
	line := 1
	for {
		row, err := cr.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrBadCSV, line+1, err)
		}
		line++
		if len(row) != len(header) {
			return nil, fmt.Errorf("%w: line %d has %d fields, want %d", ErrBadCSV, line, len(row), len(header))
		}
		day, err := strconv.Atoi(row[0])
		if err != nil {
			return nil, fmt.Errorf("%w: line %d day: %v", ErrBadCSV, line, err)
		}
		model, err := smart.ParseModel(row[1])
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrBadCSV, line, err)
		}
		if l.model == 0 {
			l.model = model
		} else if model != l.model {
			return nil, fmt.Errorf("%w: line %d: mixed models %v and %v", ErrBadCSV, line, l.model, model)
		}
		id, err := strconv.Atoi(row[2])
		if err != nil {
			return nil, fmt.Errorf("%w: line %d drive: %v", ErrBadCSV, line, err)
		}
		s, ok := l.series[id]
		if !ok {
			s = make(map[smart.Feature][]float64, len(feats))
			for _, ft := range feats {
				s[ft] = []float64{}
			}
			l.series[id] = s
			l.last[id] = -1
		}
		if day != l.last[id]+1 {
			return nil, fmt.Errorf("%w: line %d: drive %d day %d not consecutive after %d", ErrBadCSV, line, id, day, l.last[id])
		}
		for i, ft := range feats {
			v, err := strconv.ParseFloat(row[3+i], 64)
			if err != nil {
				return nil, fmt.Errorf("%w: line %d field %s: %v", ErrBadCSV, line, ft, err)
			}
			s[ft] = append(s[ft], v)
		}
		l.last[id] = day
		if day+1 > l.days {
			l.days = day + 1
		}
	}
	if len(l.series) == 0 {
		return nil, fmt.Errorf("%w: no data rows", ErrBadCSV)
	}
	return l, nil
}

// CorruptOptions injects the defects of real-world log collection into
// a CSV export: dropped days and blanked cells. Together with
// ReadModelCSVWith it lets the preprocessing path be exercised end to
// end against ground truth.
type CorruptOptions struct {
	// DropDayRate is the probability each non-final drive-day row is
	// omitted entirely.
	DropDayRate float64
	// BlankCellRate is the probability each value cell is written
	// empty.
	BlankCellRate float64
	// Seed drives the corruption deterministically.
	Seed int64
}

// WriteModelCSVCorrupted writes the daily SMART logs of one model with
// injected collection defects. Day 0 and each drive's final day are
// never dropped (the lenient reader requires day 0, and dropping the
// final day would change the observation span).
func WriteModelCSVCorrupted(w io.Writer, src Source, model smart.ModelID, opts CorruptOptions) error {
	if !model.Valid() {
		return fmt.Errorf("dataset: invalid model %v", model)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	feats := smart.MustSpec(model).Features()
	cw := csv.NewWriter(w)
	header := []string{"day", "model", "drive_id"}
	for _, ft := range feats {
		header = append(header, ft.String())
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataset: write header: %w", err)
	}

	drives := src.DrivesOf(model)
	sort.Slice(drives, func(i, j int) bool { return drives[i].ID < drives[j].ID })
	row := make([]string, len(header))
	for _, ref := range drives {
		series, lastDay, err := src.Series(ref)
		if err != nil {
			return err
		}
		for day := 0; day <= lastDay; day++ {
			if day != 0 && day != lastDay && rng.Float64() < opts.DropDayRate {
				continue
			}
			row[0] = strconv.Itoa(day)
			row[1] = model.String()
			row[2] = strconv.Itoa(ref.ID)
			for i, ft := range feats {
				col, ok := series[ft]
				if !ok {
					return fmt.Errorf("dataset: model %v drive %d missing %v", model, ref.ID, ft)
				}
				if rng.Float64() < opts.BlankCellRate {
					row[3+i] = ""
					continue
				}
				row[3+i] = strconv.FormatFloat(col[day], 'g', -1, 64)
			}
			if err := cw.Write(row); err != nil {
				return fmt.Errorf("dataset: write row: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

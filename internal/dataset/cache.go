package dataset

import (
	"sync"

	"repro/internal/smart"
)

// CachedSource memoizes another Source's per-drive series. The
// experiments harness builds many frames over the same fleet
// (selection frames, per-group training frames, validation and test
// frames, for several selectors and phases); without caching, lazily
// generated simulator series would be recomputed for each. Safe for
// concurrent use.
type CachedSource struct {
	// Inner is the wrapped source.
	Inner Source

	mu    sync.Mutex
	cache map[int]cachedSeries
}

type cachedSeries struct {
	cols    map[smart.Feature][]float64
	lastDay int
}

var _ Source = (*CachedSource)(nil)

// NewCachedSource wraps src with a series cache.
func NewCachedSource(src Source) *CachedSource {
	return &CachedSource{Inner: src, cache: make(map[int]cachedSeries)}
}

// Days implements Source.
func (c *CachedSource) Days() int { return c.Inner.Days() }

// DrivesOf implements Source.
func (c *CachedSource) DrivesOf(m smart.ModelID) []DriveRef { return c.Inner.DrivesOf(m) }

// Series implements Source, serving repeated requests from memory.
func (c *CachedSource) Series(ref DriveRef) (map[smart.Feature][]float64, int, error) {
	c.mu.Lock()
	s, ok := c.cache[ref.ID]
	c.mu.Unlock()
	if ok {
		return s.cols, s.lastDay, nil
	}
	cols, lastDay, err := c.Inner.Series(ref)
	if err != nil {
		return nil, 0, err
	}
	c.mu.Lock()
	c.cache[ref.ID] = cachedSeries{cols: cols, lastDay: lastDay}
	c.mu.Unlock()
	return cols, lastDay, nil
}

// Drop clears the cache, releasing memory between per-model passes.
func (c *CachedSource) Drop() {
	c.mu.Lock()
	c.cache = make(map[int]cachedSeries)
	c.mu.Unlock()
}

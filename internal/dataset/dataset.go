// Package dataset turns raw SMART logs into learning sets: it labels
// drive-days with the paper's 30-day look-ahead rule, materializes
// column-major frames for feature selection and training (optionally
// expanding selected features with the generated statistics of
// internal/featgen), and reads/writes the CSV layout of the released
// Alibaba ssd_smart_logs dataset so real logs can replace the simulator.
//
// The package is source-agnostic: anything implementing Source — the
// simulator adapter FleetSource or CSV-parsed Logs — can feed the same
// pipeline.
package dataset

import (
	"errors"
	"fmt"

	"repro/internal/featgen"
	"repro/internal/frame"
	"repro/internal/simulate"
	"repro/internal/smart"
)

// Errors returned by dataset operations.
var (
	// ErrBadOpts indicates invalid frame options.
	ErrBadOpts = errors.New("dataset: bad options")
	// ErrNoSamples indicates a frame request that matched no drive-days.
	ErrNoSamples = errors.New("dataset: no samples in range")
)

// PredictionWindow is the look-ahead labeling horizon in days: a
// drive-day is positive when the drive fails within this many days
// (Section II-B of the paper).
const PredictionWindow = simulate.PredictionWindow

// DriveRef identifies one drive in a Source.
type DriveRef struct {
	// ID is unique within the source.
	ID int
	// Model is the drive model.
	Model smart.ModelID
	// FailDay is the failure day, or -1 for healthy drives.
	FailDay int
}

// Failed reports whether the drive fails within the dataset.
func (r DriveRef) Failed() bool { return r.FailDay >= 0 }

// Label returns 1 when the drive fails within PredictionWindow days of
// the given day (inclusive), 0 otherwise.
func (r DriveRef) Label(day int) int {
	if r.Failed() && day >= r.FailDay-PredictionWindow && day <= r.FailDay {
		return 1
	}
	return 0
}

// Source abstracts a SMART dataset: per-model drive inventories and
// per-drive daily series.
type Source interface {
	// Days returns the dataset span in days.
	Days() int
	// DrivesOf returns the drives of one model.
	DrivesOf(m smart.ModelID) []DriveRef
	// Series returns the drive's feature columns and its last observed
	// day (inclusive). Columns must all have length lastDay+1.
	Series(ref DriveRef) (cols map[smart.Feature][]float64, lastDay int, err error)
}

// FleetSource adapts a simulated fleet to Source.
type FleetSource struct {
	// Fleet is the wrapped simulator fleet.
	Fleet *simulate.Fleet
}

var _ Source = FleetSource{}

// Days implements Source.
func (s FleetSource) Days() int { return s.Fleet.Days() }

// DrivesOf implements Source.
func (s FleetSource) DrivesOf(m smart.ModelID) []DriveRef {
	drives := s.Fleet.DrivesOf(m)
	out := make([]DriveRef, len(drives))
	for i, d := range drives {
		out[i] = DriveRef{ID: d.ID, Model: d.Model, FailDay: d.FailDay}
	}
	return out
}

// Series implements Source.
func (s FleetSource) Series(ref DriveRef) (map[smart.Feature][]float64, int, error) {
	d, err := s.Fleet.Drive(ref.ID)
	if err != nil {
		return nil, 0, fmt.Errorf("dataset: %w", err)
	}
	ser := s.Fleet.Series(d)
	cols := make(map[smart.Feature][]float64)
	for _, ft := range ser.Features() {
		cols[ft] = ser.Col(ft)
	}
	return cols, ser.LastDay, nil
}

// FrameOpts selects which drive-days of a model are materialized into a
// learning frame and which features each sample carries.
type FrameOpts struct {
	// Model is the drive model to extract.
	Model smart.ModelID
	// DayLo and DayHi bound the sample days (inclusive). DayHi 0 means
	// the dataset end.
	DayLo, DayHi int
	// NegEvery keeps every k-th negative drive-day per drive (all
	// positive days are always kept); 0 means 7. Use 1 to keep every
	// day.
	NegEvery int
	// Features restricts the original features; nil means every
	// feature the model reports.
	Features []smart.Feature
	// Expand additionally generates the 12 statistical features of
	// featgen for every original feature in the frame.
	Expand bool
	// Windows overrides the expansion windows; nil means
	// featgen.DefaultWindows.
	Windows []int
	// MWIBelow, when > 0, keeps only samples whose MWI_N that day is
	// strictly below the threshold; MWIAtLeast keeps only samples at
	// or above it. At most one may be set.
	MWIBelow   float64
	MWIAtLeast float64
}

func (o FrameOpts) normalize(days int) (FrameOpts, error) {
	if !o.Model.Valid() {
		return o, fmt.Errorf("%w: invalid model %v", ErrBadOpts, o.Model)
	}
	if o.DayHi == 0 {
		o.DayHi = days - 1
	}
	if o.DayLo < 0 || o.DayHi >= days || o.DayLo > o.DayHi {
		return o, fmt.Errorf("%w: day range [%d, %d] outside dataset of %d days", ErrBadOpts, o.DayLo, o.DayHi, days)
	}
	if o.NegEvery <= 0 {
		o.NegEvery = 7
	}
	if o.Windows == nil {
		o.Windows = featgen.DefaultWindows
	}
	if o.MWIBelow > 0 && o.MWIAtLeast > 0 {
		return o, fmt.Errorf("%w: MWIBelow and MWIAtLeast are mutually exclusive", ErrBadOpts)
	}
	if o.Features == nil {
		o.Features = smart.MustSpec(o.Model).Features()
	}
	return o, nil
}

// Frame materializes a learning frame per the options. Columns are the
// original features in the given order, followed (if Expand) by the
// generated statistics of each original feature, grouped per feature.
// Sample metadata records the drive, day, and that day's MWI_N.
func Frame(src Source, opts FrameOpts) (*frame.Frame, error) {
	opts, err := opts.normalize(src.Days())
	if err != nil {
		return nil, err
	}

	names := make([]string, 0, len(opts.Features)*(1+featgen.NumGenerated(opts.Windows)))
	for _, ft := range opts.Features {
		names = append(names, ft.String())
	}
	if opts.Expand {
		for _, ft := range opts.Features {
			names = append(names, featgen.Names(ft.String(), opts.Windows)...)
		}
	}

	cols := make([][]float64, len(names))
	for i := range cols {
		cols[i] = []float64{}
	}
	var labels []int
	var meta []frame.Meta

	mwiFeat := smart.Feature{Attr: smart.MWI, Kind: smart.Normalized}
	for _, ref := range src.DrivesOf(opts.Model) {
		series, lastDay, err := src.Series(ref)
		if err != nil {
			return nil, err
		}
		hi := opts.DayHi
		if hi > lastDay {
			hi = lastDay
		}
		if opts.DayLo > hi {
			continue
		}

		// Expanded columns are generated lazily, only when some sample
		// day of this drive survives the filters.
		var expanded [][]float64
		haveExpanded := false

		for day := opts.DayLo; day <= hi; day++ {
			label := ref.Label(day)
			if label == 0 && (day-ref.ID)%opts.NegEvery != 0 {
				continue
			}
			mwi := 0.0
			if mcol, ok := series[mwiFeat]; ok {
				mwi = mcol[day]
			}
			if opts.MWIBelow > 0 && mwi >= opts.MWIBelow {
				continue
			}
			if opts.MWIAtLeast > 0 && mwi < opts.MWIAtLeast {
				continue
			}
			if opts.Expand && !haveExpanded {
				expanded, err = expandSeries(series, opts.Features, opts.Windows)
				if err != nil {
					return nil, err
				}
				haveExpanded = true
			}

			c := 0
			for _, ft := range opts.Features {
				col, ok := series[ft]
				if !ok {
					return nil, fmt.Errorf("dataset: model %v missing feature %v", opts.Model, ft)
				}
				cols[c] = append(cols[c], col[day])
				c++
			}
			if opts.Expand {
				for _, ecol := range expanded {
					cols[c] = append(cols[c], ecol[day])
					c++
				}
			}
			labels = append(labels, label)
			meta = append(meta, frame.Meta{DriveID: ref.ID, Day: day, MWI: mwi})
		}
	}
	if len(labels) == 0 {
		return nil, fmt.Errorf("%w: model %v days [%d, %d]", ErrNoSamples, opts.Model, opts.DayLo, opts.DayHi)
	}
	return frame.New(names, cols, labels, meta)
}

// expandSeries generates the statistical columns for each original
// feature of one drive, ordered per feature then per generated stat.
func expandSeries(series map[smart.Feature][]float64, feats []smart.Feature, windows []int) ([][]float64, error) {
	var out [][]float64
	for _, ft := range feats {
		col, ok := series[ft]
		if !ok {
			return nil, fmt.Errorf("dataset: missing feature %v for expansion", ft)
		}
		gen, err := featgen.Generate(col, windows)
		if err != nil {
			return nil, fmt.Errorf("dataset: expand %v: %w", ft, err)
		}
		out = append(out, gen...)
	}
	return out, nil
}

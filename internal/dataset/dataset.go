// Package dataset turns raw SMART logs into learning sets: it labels
// drive-days with the paper's 30-day look-ahead rule, materializes
// column-major frames for feature selection and training (optionally
// expanding selected features with the generated statistics of
// internal/featgen), and reads/writes the CSV layout of the released
// Alibaba ssd_smart_logs dataset so real logs can replace the simulator.
//
// The package is source-agnostic: anything implementing Source — the
// simulator adapter FleetSource or CSV-parsed Logs — can feed the same
// pipeline.
package dataset

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/featgen"
	"repro/internal/frame"
	"repro/internal/simulate"
	"repro/internal/smart"
	"repro/internal/stats"
)

// Errors returned by dataset operations.
var (
	// ErrBadOpts indicates invalid frame options.
	ErrBadOpts = errors.New("dataset: bad options")
	// ErrNoSamples indicates a frame request that matched no drive-days.
	ErrNoSamples = errors.New("dataset: no samples in range")
)

// PredictionWindow is the look-ahead labeling horizon in days: a
// drive-day is positive when the drive fails within this many days
// (Section II-B of the paper).
const PredictionWindow = simulate.PredictionWindow

// DriveRef identifies one drive in a Source.
type DriveRef struct {
	// ID is unique within the source.
	ID int
	// Model is the drive model.
	Model smart.ModelID
	// FailDay is the failure day, or -1 for healthy drives.
	FailDay int
}

// Failed reports whether the drive fails within the dataset.
func (r DriveRef) Failed() bool { return r.FailDay >= 0 }

// Label returns 1 when the drive fails within PredictionWindow days of
// the given day (inclusive), 0 otherwise.
func (r DriveRef) Label(day int) int {
	if r.Failed() && day >= r.FailDay-PredictionWindow && day <= r.FailDay {
		return 1
	}
	return 0
}

// Source abstracts a SMART dataset: per-model drive inventories and
// per-drive daily series.
type Source interface {
	// Days returns the dataset span in days.
	Days() int
	// DrivesOf returns the drives of one model.
	DrivesOf(m smart.ModelID) []DriveRef
	// Series returns the drive's feature columns and its last observed
	// day (inclusive). Columns must all have length lastDay+1.
	Series(ref DriveRef) (cols map[smart.Feature][]float64, lastDay int, err error)
}

// FleetSource adapts a simulated fleet to Source.
type FleetSource struct {
	// Fleet is the wrapped simulator fleet.
	Fleet *simulate.Fleet
}

var _ Source = FleetSource{}

// Days implements Source.
func (s FleetSource) Days() int { return s.Fleet.Days() }

// DrivesOf implements Source.
func (s FleetSource) DrivesOf(m smart.ModelID) []DriveRef {
	drives := s.Fleet.DrivesOf(m)
	out := make([]DriveRef, len(drives))
	for i, d := range drives {
		out[i] = DriveRef{ID: d.ID, Model: d.Model, FailDay: d.FailDay}
	}
	return out
}

// Series implements Source.
func (s FleetSource) Series(ref DriveRef) (map[smart.Feature][]float64, int, error) {
	d, err := s.Fleet.Drive(ref.ID)
	if err != nil {
		return nil, 0, fmt.Errorf("dataset: %w", err)
	}
	ser := s.Fleet.Series(d)
	cols := make(map[smart.Feature][]float64)
	for _, ft := range ser.Features() {
		cols[ft] = ser.Col(ft)
	}
	return cols, ser.LastDay, nil
}

// FrameOpts selects which drive-days of a model are materialized into a
// learning frame and which features each sample carries.
type FrameOpts struct {
	// Model is the drive model to extract.
	Model smart.ModelID
	// DayLo and DayHi bound the sample days (inclusive). DayHi 0 means
	// the dataset end.
	DayLo, DayHi int
	// NegEvery keeps every k-th negative drive-day per drive (all
	// positive days are always kept); 0 means 7. Use 1 to keep every
	// day.
	NegEvery int
	// Features restricts the original features; nil means every
	// feature the model reports.
	Features []smart.Feature
	// Expand additionally generates the 12 statistical features of
	// featgen for every original feature in the frame.
	Expand bool
	// Windows overrides the expansion windows; nil means
	// featgen.DefaultWindows.
	Windows []int
	// MWIBelow, when > 0, keeps only samples whose MWI_N that day is
	// strictly below the threshold; MWIAtLeast keeps only samples at
	// or above it. At most one may be set.
	MWIBelow   float64
	MWIAtLeast float64
	// Workers bounds per-drive extraction parallelism; 0 means
	// GOMAXPROCS. The Source's Series method must be safe for
	// concurrent calls when more than one worker runs (every Source in
	// this repository is). Results are identical for any worker count:
	// drives are always concatenated in inventory order.
	Workers int
	// Sanitize, when non-nil, cleans each drive's series before
	// labeling, filtering, and expansion: sentinel scrubbing, bounded
	// forward-fill imputation, and optional per-feature missingness
	// mask columns. Nil preserves the exact legacy path, bit for bit.
	Sanitize *SanitizeOpts
	// Reuse, when non-nil, recycles the frame's concatenated column
	// storage across calls: the returned frame's columns alias the
	// buffer, so the frame is only valid until the next Frame call with
	// the same buffer. Repeated scoring passes (the serving daemon, the
	// continuous-operation controller) use this to keep the per-call
	// allocation volume independent of the fleet size.
	Reuse *FrameBuf
}

// FrameBuf is reusable frame storage for FrameOpts.Reuse. The zero
// value is ready to use; it grows to the largest frame it has carried.
type FrameBuf struct {
	slab []float64
}

func (o FrameOpts) normalize(days int) (FrameOpts, error) {
	if !o.Model.Valid() {
		return o, fmt.Errorf("%w: invalid model %v", ErrBadOpts, o.Model)
	}
	if o.DayHi == 0 {
		o.DayHi = days - 1
	}
	if o.DayLo < 0 || o.DayHi >= days || o.DayLo > o.DayHi {
		return o, fmt.Errorf("%w: day range [%d, %d] outside dataset of %d days", ErrBadOpts, o.DayLo, o.DayHi, days)
	}
	if o.NegEvery <= 0 {
		o.NegEvery = 7
	}
	if o.Windows == nil {
		o.Windows = featgen.DefaultWindows
	}
	if o.MWIBelow > 0 && o.MWIAtLeast > 0 {
		return o, fmt.Errorf("%w: MWIBelow and MWIAtLeast are mutually exclusive", ErrBadOpts)
	}
	if o.Features == nil {
		o.Features = smart.MustSpec(o.Model).Features()
	}
	return o, nil
}

// Frame materializes a learning frame per the options. Columns are the
// original features in the given order, followed (if Expand) by the
// generated statistics of each original feature, grouped per feature.
// Sample metadata records the drive, day, and that day's MWI_N.
func Frame(src Source, opts FrameOpts) (*frame.Frame, error) {
	opts, err := opts.normalize(src.Days())
	if err != nil {
		return nil, err
	}

	names := make([]string, 0, len(opts.Features)*(1+featgen.NumGenerated(opts.Windows)))
	for _, ft := range opts.Features {
		names = append(names, ft.String())
	}
	if opts.Expand {
		for _, ft := range opts.Features {
			names = append(names, featgen.Names(ft.String(), opts.Windows)...)
		}
	}
	if opts.Sanitize != nil && opts.Sanitize.MissMask {
		for _, ft := range opts.Features {
			names = append(names, ft.String()+".miss")
		}
	}

	drives := src.DrivesOf(opts.Model)
	chunks := make([]*driveChunk, len(drives))
	errs := make([]error, len(drives))

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(drives) {
		workers = len(drives)
	}
	if workers <= 1 {
		for d, ref := range drives {
			chunks[d], errs[d] = extractDrive(src, ref, opts)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					d := int(next.Add(1)) - 1
					if d >= len(drives) {
						return
					}
					chunks[d], errs[d] = extractDrive(src, drives[d], opts)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Concatenate per-drive chunks in inventory order, so the frame is
	// identical no matter how many workers extracted it.
	total := 0
	for _, ch := range chunks {
		if ch != nil {
			total += len(ch.labels)
		}
	}
	if total == 0 {
		return nil, fmt.Errorf("%w: model %v days [%d, %d]", ErrNoSamples, opts.Model, opts.DayLo, opts.DayHi)
	}
	// One slab for every concatenated column: the chunk lengths are
	// known, so per-column growth reallocation is pure waste.
	cols := make([][]float64, len(names))
	need := len(names) * total
	var slab []float64
	if opts.Reuse != nil && cap(opts.Reuse.slab) >= need {
		slab = opts.Reuse.slab[:need]
	} else {
		slab = make([]float64, need)
		if opts.Reuse != nil {
			opts.Reuse.slab = slab
		}
	}
	for i := range cols {
		cols[i] = slab[i*total : i*total : (i+1)*total]
	}
	labels := make([]int, 0, total)
	meta := make([]frame.Meta, 0, total)
	for _, ch := range chunks {
		if ch == nil {
			continue
		}
		for c := range cols {
			cols[c] = append(cols[c], ch.cols[c]...)
		}
		labels = append(labels, ch.labels...)
		meta = append(meta, ch.meta...)
		putSlab(ch.slab)
	}
	return frame.New(names, cols, labels, meta)
}

// driveChunk is one drive's worth of frame rows. slab backs cols and
// returns to slabPool once the chunk is concatenated into the frame.
type driveChunk struct {
	cols   [][]float64
	labels []int
	meta   []frame.Meta
	slab   []float64
}

// slabPool recycles the transient float64 slabs of frame extraction:
// each drive's column chunk and expansion matrix die as soon as the
// frame is concatenated, and a phase-score pass extracts thousands of
// drives, so without reuse these short-lived slabs dominate the pass's
// allocation volume. Every pooled slab is fully overwritten before use.
var slabPool sync.Pool

func getSlab(n int) []float64 {
	if v := slabPool.Get(); v != nil {
		if s := v.([]float64); cap(s) >= n {
			return s[:n]
		}
	}
	return make([]float64, n)
}

func putSlab(s []float64) {
	if s != nil {
		slabPool.Put(s)
	}
}

// extractDrive materializes one drive's surviving sample days. It
// returns nil (no error) when no day of the drive is in range or
// survives the filters.
func extractDrive(src Source, ref DriveRef, opts FrameOpts) (*driveChunk, error) {
	series, lastDay, err := src.Series(ref)
	if err != nil {
		return nil, err
	}
	hi := opts.DayHi
	if hi > lastDay {
		hi = lastDay
	}
	if opts.DayLo > hi {
		return nil, nil
	}

	var missing map[smart.Feature][]bool
	if opts.Sanitize != nil {
		series, missing = sanitizeSeries(series, opts)
	}

	// Pass 1: find the surviving sample days. Knowing the row count up
	// front lets pass 2 fill one exact-size column-major slab instead of
	// growing every column by per-day appends — previously the dominant
	// allocation cost of extraction.
	mwiFeat := smart.Feature{Attr: smart.MWI, Kind: smart.Normalized}
	mwiCol := series[mwiFeat]
	var days []int
	for day := opts.DayLo; day <= hi; day++ {
		if ref.Label(day) == 0 && (day-ref.ID)%opts.NegEvery != 0 {
			continue
		}
		mwi := 0.0
		if mwiCol != nil {
			mwi = mwiCol[day]
		}
		if opts.MWIBelow > 0 && mwi >= opts.MWIBelow {
			continue
		}
		// Written as !(>=) rather than (<) so a NaN wear reading — an
		// unknown wear level — is excluded from the high-wear group
		// (and, failing the >= test above, lands in the low-wear group
		// only) instead of leaking into both. Identical on finite MWI.
		if opts.MWIAtLeast > 0 && !(mwi >= opts.MWIAtLeast) {
			continue
		}
		days = append(days, day)
	}
	if len(days) == 0 {
		return nil, nil
	}

	// Expanded columns are generated only when some sample day of this
	// drive survived the filters — and only for the requested day range,
	// not the drive's whole history: a 30-day scoring pass over a
	// two-year series skips ~96% of the rolling-window work.
	var expanded [][]float64
	var expSlab []float64
	if opts.Expand {
		expanded, expSlab, err = expandSeriesRange(series, opts.Features, opts.Windows, opts.DayLo, hi)
		defer putSlab(expSlab)
		if err != nil {
			return nil, err
		}
	}

	nCols := len(opts.Features)
	if opts.Expand {
		nCols += len(opts.Features) * featgen.NumGenerated(opts.Windows)
	}
	maskCols := opts.Sanitize != nil && opts.Sanitize.MissMask
	if maskCols {
		nCols += len(opts.Features)
	}
	rows := len(days)
	slab := getSlab(nCols * rows)
	ch := &driveChunk{
		cols:   make([][]float64, nCols),
		labels: make([]int, rows),
		meta:   make([]frame.Meta, rows),
		slab:   slab,
	}
	for c := range ch.cols {
		ch.cols[c] = slab[c*rows : (c+1)*rows : (c+1)*rows]
	}

	// Pass 2: column-major fill.
	c := 0
	for _, ft := range opts.Features {
		col, ok := series[ft]
		if !ok {
			return nil, fmt.Errorf("dataset: model %v missing feature %v", opts.Model, ft)
		}
		dst := ch.cols[c]
		for k, day := range days {
			dst[k] = col[day]
		}
		c++
	}
	for _, ecol := range expanded {
		dst := ch.cols[c]
		for k, day := range days {
			dst[k] = ecol[day-opts.DayLo]
		}
		c++
	}
	if maskCols {
		for _, ft := range opts.Features {
			dst := ch.cols[c]
			m := missing[ft]
			for k, day := range days {
				// Unconditional store: the slab is pooled, so stale
				// values must be overwritten, not assumed zero.
				v := 0.0
				if day < len(m) && m[day] {
					v = 1
				}
				dst[k] = v
			}
			c++
		}
	}
	for k, day := range days {
		mwi := 0.0
		if mwiCol != nil {
			mwi = mwiCol[day]
		}
		ch.labels[k] = ref.Label(day)
		ch.meta[k] = frame.Meta{DriveID: ref.ID, Day: day, MWI: mwi}
	}
	return ch, nil
}

// expandSeriesRange generates the statistical columns for each original
// feature of one drive, restricted to days from..to (column index t is
// day from+t), ordered per feature then per generated stat. All columns
// are carved from one pooled slab (returned for release via putSlab
// once the caller has copied the values out) and the rolling-stats
// buffer is shared across features, so the per-drive allocation count
// is constant in the feature count.
func expandSeriesRange(series map[smart.Feature][]float64, feats []smart.Feature, windows []int, from, to int) ([][]float64, []float64, error) {
	nGen := featgen.NumGenerated(windows)
	width := to - from + 1
	slab := getSlab(len(feats) * nGen * width)
	out := make([][]float64, len(feats)*nGen)
	for i := range out {
		out[i] = slab[i*width : (i+1)*width : (i+1)*width]
	}
	var scratch []stats.RollingStats
	for fi, ft := range feats {
		col, ok := series[ft]
		if !ok {
			return nil, slab, fmt.Errorf("dataset: missing feature %v for expansion", ft)
		}
		var err error
		scratch, err = featgen.GenerateRangeInto(out[fi*nGen:(fi+1)*nGen], col, windows, from, to, scratch)
		if err != nil {
			return nil, slab, fmt.Errorf("dataset: expand %v: %w", ft, err)
		}
	}
	return out, slab, nil
}

package survival

import (
	"errors"
	"testing"

	"repro/internal/changepoint"
	"repro/internal/dataset"
	"repro/internal/simulate"
	"repro/internal/smart"
)

func bigSource(t *testing.T) dataset.FleetSource {
	t.Helper()
	f, err := simulate.New(simulate.Config{TotalDrives: 5000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	return dataset.FleetSource{Fleet: f}
}

func TestComputeBasicInvariants(t *testing.T) {
	src := bigSource(t)
	for _, m := range smart.AllModels() {
		c, err := Compute(src, m, 0)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if c.Len() == 0 {
			t.Fatalf("%v: empty curve", m)
		}
		for i := 0; i < c.Len(); i++ {
			if c.Rates[i] < 0 || c.Rates[i] > 1 {
				t.Fatalf("%v: rate %v out of range", m, c.Rates[i])
			}
			if c.Counts[i] < DefaultMinDrives {
				t.Fatalf("%v: count %d below threshold", m, c.Counts[i])
			}
			if i > 0 && c.Values[i] >= c.Values[i-1] {
				t.Fatalf("%v: values not strictly decreasing", m)
			}
		}
	}
}

func TestMBCurvesNarrow(t *testing.T) {
	src := bigSource(t)
	for _, m := range []smart.ModelID{smart.MB1, smart.MB2} {
		c, err := Compute(src, m, 0)
		if err != nil {
			t.Fatal(err)
		}
		if c.Len() > 20 {
			t.Errorf("%v curve spans %d MWI levels; should be narrow", m, c.Len())
		}
	}
}

func TestWideModelsCoverLowMWI(t *testing.T) {
	src := bigSource(t)
	for _, m := range []smart.ModelID{smart.MA1, smart.MC1} {
		c, err := Compute(src, m, 0)
		if err != nil {
			t.Fatal(err)
		}
		minV := c.Values[c.Len()-1]
		if minV > 45 {
			t.Errorf("%v curve bottoms at MWI %v; want coverage below the change point", m, minV)
		}
	}
}

func TestChangePointDetectedForWearModels(t *testing.T) {
	src := bigSource(t)
	// Models with wear-driven failures must show a significant change
	// point; the simulator targets cpMWI of 30 (MA1) and 25 (MC1).
	tests := []struct {
		model  smart.ModelID
		lo, hi float64
	}{
		{smart.MA1, 10, 50},
		{smart.MC1, 10, 45},
	}
	for _, tt := range tests {
		c, err := Compute(src, tt.model, 0)
		if err != nil {
			t.Fatal(err)
		}
		cp, found, err := c.DetectChangePoint(changepoint.DefaultConfig(), changepoint.DefaultZThreshold)
		if err != nil {
			t.Fatal(err)
		}
		if !found {
			t.Errorf("%v: no change point found", tt.model)
			continue
		}
		if cp.MWI < tt.lo || cp.MWI > tt.hi {
			t.Errorf("%v: change point at MWI %v, want in [%v, %v]", tt.model, cp.MWI, tt.lo, tt.hi)
		}
	}
}

func TestNoChangePointForMBModels(t *testing.T) {
	src := bigSource(t)
	for _, m := range []smart.ModelID{smart.MB1, smart.MB2} {
		c, err := Compute(src, m, 0)
		if err != nil {
			t.Fatal(err)
		}
		_, found, err := c.DetectChangePoint(changepoint.DefaultConfig(), changepoint.DefaultZThreshold)
		if err != nil {
			t.Fatal(err)
		}
		if found {
			t.Errorf("%v: unexpected change point on a narrow MWI range", m)
		}
	}
}

func TestSurvivalDropsBelowChangePoint(t *testing.T) {
	src := bigSource(t)
	c, err := Compute(src, smart.MA1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Average survival above MWI 50 should exceed average below 25
	// (wear failures concentrate at low MWI).
	var hiSum, loSum float64
	var hiN, loN int
	for i := 0; i < c.Len(); i++ {
		switch {
		case c.Values[i] >= 50:
			hiSum += c.Rates[i]
			hiN++
		case c.Values[i] <= 25:
			loSum += c.Rates[i]
			loN++
		}
	}
	if hiN == 0 || loN == 0 {
		t.Fatal("curve does not span both regions")
	}
	if hiSum/float64(hiN) <= loSum/float64(loN) {
		t.Errorf("survival above 50 (%.3f) should exceed below 25 (%.3f)", hiSum/float64(hiN), loSum/float64(loN))
	}
}

func TestMC2FirmwareBump(t *testing.T) {
	src := bigSource(t)
	c, err := Compute(src, smart.MC2, 0)
	if err != nil {
		t.Fatal(err)
	}
	// MC2's early-firmware failures happen at high MWI: the survival
	// rate near the top of the range should be *lower* than in the
	// mid-range (the curve "increases" as MWI decreases, Fig 1).
	var topSum, midSum float64
	var topN, midN int
	for i := 0; i < c.Len(); i++ {
		switch {
		case c.Values[i] >= 93:
			topSum += c.Rates[i]
			topN++
		case c.Values[i] >= 72 && c.Values[i] < 88:
			midSum += c.Rates[i]
			midN++
		}
	}
	if topN == 0 || midN == 0 {
		t.Fatal("curve does not cover firmware region")
	}
	if topSum/float64(topN) >= midSum/float64(midN) {
		t.Errorf("survival at MWI>=93 (%.3f) should be below mid-range (%.3f) due to firmware failures",
			topSum/float64(topN), midSum/float64(midN))
	}
}

func TestComputeErrors(t *testing.T) {
	f, err := simulate.New(simulate.Config{TotalDrives: 300, Seed: 12, Models: []smart.ModelID{smart.MC1}})
	if err != nil {
		t.Fatal(err)
	}
	src := dataset.FleetSource{Fleet: f}
	if _, err := Compute(src, smart.MA1, 0); !errors.Is(err, ErrNoDrives) {
		t.Errorf("error = %v, want ErrNoDrives", err)
	}
}

func TestDetectChangePointShortCurve(t *testing.T) {
	c := Curve{Values: []float64{100, 99}, Rates: []float64{1, 0.9}, Counts: []int{10, 10}}
	_, found, err := c.DetectChangePoint(changepoint.DefaultConfig(), 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Error("short curve should not yield a change point")
	}
}

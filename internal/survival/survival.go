// Package survival builds the survival-rate-versus-wear-out curves of
// Section III-C (Figure 1 of the paper): for each value of MWI_N, the
// fraction of the SSDs that ever operated at that wear level and were
// still healthy at the end of the dataset. It locates the most
// significant change point of the curve with the Bayesian detector of
// internal/changepoint, yielding the MWI_N threshold WEFR uses to split
// the fleet into wear-out groups.
package survival

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/changepoint"
	"repro/internal/dataset"
	"repro/internal/smart"
)

// Errors returned by curve construction.
var (
	// ErrNoDrives indicates a model with no drives in the source.
	ErrNoDrives = errors.New("survival: no drives")
	// ErrNoMWI indicates a drive series without MWI_N.
	ErrNoMWI = errors.New("survival: series lacks MWI_N")
)

// DefaultMinDrives is the minimum number of drives that must have
// operated at an MWI_N value for the value to enter the curve; sparser
// values carry too much estimation noise.
const DefaultMinDrives = 8

// Curve is a survival-rate curve over MWI_N values, ordered by
// decreasing MWI_N — i.e. in the direction wear progresses, which is
// the sequence order the change-point detector consumes.
type Curve struct {
	// Values are the integer MWI_N levels, strictly decreasing.
	Values []float64
	// Rates are the survival rates per level, in [0, 1].
	Rates []float64
	// Counts are the number of drives observed at each level.
	Counts []int
}

// Len returns the number of curve points.
func (c Curve) Len() int { return len(c.Values) }

// Compute builds the survival curve of one model over the full dataset.
// minDrives filters out sparsely observed MWI_N levels; pass 0 for
// DefaultMinDrives.
//
// A drive "operated at" level v when its MWI_N series covered v: since
// MWI_N declines monotonically (up to quantization noise), that is
// every integer between its minimum and maximum recorded values.
func Compute(src dataset.Source, model smart.ModelID, minDrives int) (Curve, error) {
	return ComputeAsOf(src, model, minDrives, src.Days()-1)
}

// ComputeAsOf builds the survival curve using only information
// available through the given day: drives count as failed only if they
// failed by asOfDay, and only MWI_N observations up to asOfDay are
// considered. The prediction pipeline uses this to keep the wear-out
// split free of future knowledge during training.
func ComputeAsOf(src dataset.Source, model smart.ModelID, minDrives, asOfDay int) (Curve, error) {
	if minDrives <= 0 {
		minDrives = DefaultMinDrives
	}
	drives := src.DrivesOf(model)
	if len(drives) == 0 {
		return Curve{}, fmt.Errorf("%w: model %v", ErrNoDrives, model)
	}
	mwiFeat := smart.Feature{Attr: smart.MWI, Kind: smart.Normalized}

	const levels = 101 // MWI_N is an integer percentage 0..100
	total := make([]int, levels)
	healthy := make([]int, levels)

	for _, ref := range drives {
		series, lastDay, err := src.Series(ref)
		if err != nil {
			return Curve{}, err
		}
		col, ok := series[mwiFeat]
		if !ok || len(col) == 0 {
			return Curve{}, fmt.Errorf("%w: model %v drive %d", ErrNoMWI, model, ref.ID)
		}
		if lastDay > asOfDay {
			col = col[:asOfDay+1]
		}
		failed := ref.Failed() && ref.FailDay <= asOfDay
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range col {
			if v-v != 0 { // missing (non-finite) observation
				continue
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi < lo {
			// No finite MWI observation through asOfDay; the drive
			// contributes nothing to the curve.
			continue
		}
		lov := int(math.Max(0, math.Floor(lo)))
		hiv := int(math.Min(levels-1, math.Floor(hi)))
		for v := lov; v <= hiv; v++ {
			total[v]++
			if !failed {
				healthy[v]++
			}
		}
	}

	var c Curve
	for v := levels - 1; v >= 0; v-- {
		if total[v] < minDrives {
			continue
		}
		c.Values = append(c.Values, float64(v))
		c.Rates = append(c.Rates, float64(healthy[v])/float64(total[v]))
		c.Counts = append(c.Counts, total[v])
	}
	return c, nil
}

// ChangePoint is the most significant survival-rate change on a curve.
type ChangePoint struct {
	// MWI is the MWI_N level the change occurs at — the threshold
	// splitting low- and high-wear groups.
	MWI float64
	// Index is the position within the curve.
	Index int
	// Z is the z-score of the change probability.
	Z float64
}

// DetectChangePoint locates the most significant change point of the
// curve per the paper's rule: Bayesian change probabilities, a z-score
// threshold (pass changepoint.DefaultZThreshold for ±2.5), and the
// single largest z among significant points. found is false when the
// curve is too short or no point clears the threshold — as the paper
// reports for MB1 and MB2, whose MWI_N range is too small.
func (c Curve) DetectChangePoint(cfg changepoint.Config, zThreshold float64) (ChangePoint, bool, error) {
	if c.Len() < 8 {
		// A narrow MWI range (MB models) cannot support detection.
		return ChangePoint{}, false, nil
	}
	points, err := changepoint.Detect(c.Rates, cfg, zThreshold)
	if err != nil {
		if errors.Is(err, changepoint.ErrTooShort) {
			return ChangePoint{}, false, nil
		}
		return ChangePoint{}, false, err
	}
	best, ok := changepoint.MostSignificant(points)
	if !ok {
		return ChangePoint{}, false, nil
	}
	return ChangePoint{MWI: c.Values[best.Index], Index: best.Index, Z: best.Z}, true, nil
}

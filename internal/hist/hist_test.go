package hist

import (
	"math"
	"testing"
)

func TestParseSplitMethod(t *testing.T) {
	cases := []struct {
		in      string
		want    SplitMethod
		wantErr bool
	}{
		{"exact", SplitExact, false},
		{"", SplitExact, false},
		{"hist", SplitHist, false},
		{"histogram", SplitExact, true},
		{"EXACT", SplitExact, true},
	}
	for _, c := range cases {
		got, err := ParseSplitMethod(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("ParseSplitMethod(%q): err = %v, wantErr %v", c.in, err, c.wantErr)
		}
		if err == nil && got != c.want {
			t.Errorf("ParseSplitMethod(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	if SplitExact.String() != "exact" || SplitHist.String() != "hist" {
		t.Errorf("String: got %q, %q", SplitExact, SplitHist)
	}
}

func TestBinConstantColumn(t *testing.T) {
	col := []float64{4, 4, 4, 4, 4}
	m := Bin([][]float64{col}, 0)
	if got := m.FiniteBins(0); got != 1 {
		t.Fatalf("FiniteBins = %d, want 1", got)
	}
	if thr := m.Threshold(0, 0); thr != 4 {
		t.Errorf("Threshold = %v, want 4", thr)
	}
	for i := range col {
		if b := m.Bins(0)[i]; b != 0 {
			t.Errorf("row %d in bin %d, want 0", i, b)
		}
	}
}

func TestBinAllMissing(t *testing.T) {
	nan := math.NaN()
	col := []float64{nan, nan, nan}
	m := Bin([][]float64{col}, 0)
	if got := m.FiniteBins(0); got != 0 {
		t.Fatalf("FiniteBins = %d, want 0 for all-missing column", got)
	}
	for i := range col {
		if b := int(m.Bins(0)[i]); b != m.MissingBin(0) {
			t.Errorf("row %d in bin %d, want missing bin %d", i, b, m.MissingBin(0))
		}
	}
}

func TestBinFewerDistinctThanBins(t *testing.T) {
	// 6 distinct values, plenty of bin budget: one bin per distinct.
	col := []float64{0, 1, 2, 3, 4, 5, 5, 4, 3, 2, 1, 0, math.NaN()}
	m := Bin([][]float64{col}, 0)
	if got := m.FiniteBins(0); got != 6 {
		t.Fatalf("FiniteBins = %d, want 6", got)
	}
	for i, v := range col {
		want := int(v)
		if v != v {
			want = m.MissingBin(0)
		}
		if got := int(m.Bins(0)[i]); got != want {
			t.Errorf("value %v in bin %d, want %d", v, got, want)
		}
	}
	// The last threshold is the maximum finite value.
	if thr := m.Threshold(0, 5); thr != 5 {
		t.Errorf("last threshold = %v, want 5", thr)
	}
}

func TestBinInfiniteValues(t *testing.T) {
	col := []float64{math.Inf(-1), -1, 0, 1, math.Inf(1), math.NaN()}
	m := Bin([][]float64{col}, 0)
	if got := m.FiniteBins(0); got != 5 {
		t.Fatalf("FiniteBins = %d, want 5", got)
	}
	checkMonotoneThresholds(t, m, 0)
	checkQuantization(t, m, 0, col)
	// +Inf must land strictly above every finite value's bin.
	if bInf, b1 := m.BinOf(0, math.Inf(1)), m.BinOf(0, 1.0); bInf <= b1 {
		t.Errorf("BinOf(+Inf) = %d, not above BinOf(1) = %d", bInf, b1)
	}
	if b := m.BinOf(0, math.Inf(-1)); b != 0 {
		t.Errorf("BinOf(-Inf) = %d, want 0", b)
	}
}

func TestBinQuantileCuts(t *testing.T) {
	// More distinct values than bins: greedy quantile cuts.
	n := 1000
	col := make([]float64, n)
	for i := range col {
		col[i] = float64(i) * 0.25
	}
	m := Bin([][]float64{col}, 16)
	if got := m.FiniteBins(0); got != 15 {
		t.Fatalf("FiniteBins = %d, want 15 (maxBins-1)", got)
	}
	checkMonotoneThresholds(t, m, 0)
	checkQuantization(t, m, 0, col)
	// Roughly even bin occupancy (greedy rank cuts): no bin may be
	// empty, and none should hold more than twice the even share.
	counts := make([]int, m.FiniteBins(0))
	for _, b := range m.Bins(0) {
		counts[b]++
	}
	even := n / m.FiniteBins(0)
	for b, c := range counts {
		if c == 0 {
			t.Errorf("bin %d empty", b)
		}
		if c > 2*even {
			t.Errorf("bin %d holds %d rows, even share is %d", b, c, even)
		}
	}
}

func TestBinClampsUnseenValues(t *testing.T) {
	col := []float64{1, 2, 3}
	m := Bin([][]float64{col}, 0)
	if b := m.BinOf(0, 99); b != m.FiniteBins(0)-1 {
		t.Errorf("BinOf(above max) = %d, want last finite bin %d", b, m.FiniteBins(0)-1)
	}
	if b := m.BinOf(0, -99); b != 0 {
		t.Errorf("BinOf(below min) = %d, want 0", b)
	}
}

func TestBinMaxBinsClamped(t *testing.T) {
	col := []float64{1, 2, 3, 4}
	for _, maxBins := range []int{-1, 0, 1, 257} {
		m := Bin([][]float64{col}, maxBins)
		if got := m.FiniteBins(0); got != 4 {
			t.Errorf("maxBins %d: FiniteBins = %d, want 4 (DefaultMaxBins in effect)", maxBins, got)
		}
	}
}

// checkMonotoneThresholds asserts feature f's thresholds strictly
// increase (the invariant that makes bin routing and value routing
// agree).
func checkMonotoneThresholds(t *testing.T, m *Matrix, f int) {
	t.Helper()
	for b := 1; b < m.FiniteBins(f); b++ {
		if !(m.Threshold(f, b-1) < m.Threshold(f, b)) {
			t.Fatalf("thresholds not strictly increasing at %d: %v >= %v",
				b, m.Threshold(f, b-1), m.Threshold(f, b))
		}
	}
}

// checkQuantization asserts the stored bins match BinOf and the
// threshold semantics: value <= Threshold(f, b) exactly when the
// value's bin is <= b.
func checkQuantization(t *testing.T, m *Matrix, f int, col []float64) {
	t.Helper()
	for i, v := range col {
		got := int(m.Bins(f)[i])
		if want := m.BinOf(f, v); got != want {
			t.Fatalf("row %d (value %v): stored bin %d, BinOf %d", i, v, got, want)
		}
		if v != v {
			if got != m.MissingBin(f) {
				t.Fatalf("NaN row %d in bin %d, want missing bin %d", i, got, m.MissingBin(f))
			}
			continue
		}
		for b := 0; b < m.FiniteBins(f); b++ {
			if (v <= m.Threshold(f, b)) != (got <= b) {
				t.Fatalf("row %d (value %v, bin %d): threshold %d (%v) routing disagrees",
					i, v, got, b, m.Threshold(f, b))
			}
		}
	}
}

package hist

import (
	"encoding/binary"
	"math"
	"testing"
)

// bytesToFloats decodes a fuzz payload into a float64 column, keeping
// whatever bit patterns the fuzzer produces — including NaNs (quiet and
// signaling), ±Inf, and negative zero.
func bytesToFloats(data []byte) []float64 {
	out := make([]float64, len(data)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
	}
	return out
}

func floatsToBytes(vals []float64) []byte {
	out := make([]byte, len(vals)*8)
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(v))
	}
	return out
}

// FuzzBin checks the quantile-cut builder's invariants on arbitrary bit
// patterns: thresholds strictly increase and end at the column maximum,
// every row's stored bin matches BinOf, NaNs land in the missing bin,
// finite rows land in finite bins, and bin order agrees with value
// order.
func FuzzBin(f *testing.F) {
	f.Add(floatsToBytes([]float64{3, 1, 2}), 256)
	f.Add(floatsToBytes([]float64{math.NaN(), 0, math.Inf(1), math.Inf(-1), math.NaN()}), 4)
	f.Add(floatsToBytes([]float64{math.Copysign(0, -1), 0, -0.5, math.MaxFloat64}), 2)
	f.Add(floatsToBytes(make([]float64, 300)), 16) // all-constant
	f.Add(floatsToBytes([]float64{1, math.Nextafter(1, 2), math.Nextafter(1, 0)}), 256)
	f.Fuzz(func(t *testing.T, data []byte, maxBins int) {
		col := bytesToFloats(data)
		m := Bin([][]float64{col}, maxBins)

		nb := m.FiniteBins(0)
		maxFinite := math.Inf(-1)
		nFinite := 0
		for _, v := range col {
			if v == v {
				nFinite++
				if v > maxFinite {
					maxFinite = v
				}
			}
		}
		if nFinite == 0 {
			if nb != 0 {
				t.Fatalf("FiniteBins = %d for all-missing column", nb)
			}
		} else {
			if nb == 0 {
				t.Fatalf("FiniteBins = 0 with %d finite rows", nFinite)
			}
			if last := m.Threshold(0, nb-1); last != maxFinite {
				t.Fatalf("last threshold %v, want column max %v", last, maxFinite)
			}
		}
		for b := 1; b < nb; b++ {
			if !(m.Threshold(0, b-1) < m.Threshold(0, b)) {
				t.Fatalf("thresholds not strictly increasing at %d: %v >= %v",
					b, m.Threshold(0, b-1), m.Threshold(0, b))
			}
		}

		bins := m.Bins(0)
		for i, v := range col {
			got := int(bins[i])
			if want := m.BinOf(0, v); got != want {
				t.Fatalf("row %d (%v): stored bin %d, BinOf %d", i, v, got, want)
			}
			if v != v {
				if got != m.MissingBin(0) {
					t.Fatalf("NaN row %d in bin %d, want missing %d", i, got, m.MissingBin(0))
				}
				continue
			}
			if got >= nb {
				t.Fatalf("finite row %d (%v) in bin %d, finite bins %d", i, v, got, nb)
			}
			// Threshold semantics: v <= thr[b] exactly when bin(v) <= b.
			for b := 0; b < nb; b++ {
				if (v <= m.Threshold(0, b)) != (got <= b) {
					t.Fatalf("row %d (%v, bin %d): threshold %d (%v) routing disagrees",
						i, v, got, b, m.Threshold(0, b))
				}
			}
		}

		// Bin order must agree with value order on finite rows.
		for i, u := range col {
			if u != u {
				continue
			}
			for j, v := range col {
				if v != v {
					continue
				}
				if u < v && bins[i] > bins[j] {
					t.Fatalf("order violated: %v (bin %d) < %v (bin %d)", u, bins[i], v, bins[j])
				}
			}
		}
	})
}

// Package hist implements histogram binning for the tree learners: each
// feature column is quantized once per dataset into at most 256 bins
// (including a dedicated missing bin), after which split search scans
// per-node bin histograms instead of presorted rows.
//
// Cut points are quantile-based: when a column has fewer distinct finite
// values than bins, every distinct value gets its own bin (SMART
// counters are low-cardinality integers, so this is the common case and
// makes binned split search exactly as expressive as the presorted exact
// scan); otherwise cuts are placed at evenly spaced ranks of the sorted
// finite values. Missing (NaN) values always map to a dedicated bin one
// past the finite bins, so the learners' sparsity-aware default-direction
// logic carries over unchanged.
//
// Thresholds are chosen so that routing by bin index and routing raw
// values through the fitted tree agree: the threshold after bin b is a
// midpoint strictly below the smallest value of bin b+1 (with the same
// adjacent-float fallback as the exact path), and the last threshold is
// the column's largest finite value (the finite/missing boundary cut).
package hist

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/presort"
)

// SplitMethod selects the split-search implementation of the tree
// learners. The zero value is SplitExact, so existing configurations
// keep the exact presorted path bit-for-bit.
type SplitMethod int

const (
	// SplitExact scans presorted rows for the exact best split.
	SplitExact SplitMethod = iota
	// SplitHist scans per-node bin histograms over a quantized matrix.
	SplitHist
)

// String returns the flag spelling of the method.
func (m SplitMethod) String() string {
	switch m {
	case SplitExact:
		return "exact"
	case SplitHist:
		return "hist"
	default:
		return fmt.Sprintf("SplitMethod(%d)", int(m))
	}
}

// ParseSplitMethod parses a -split-method flag value.
func ParseSplitMethod(s string) (SplitMethod, error) {
	switch s {
	case "exact", "":
		return SplitExact, nil
	case "hist":
		return SplitHist, nil
	default:
		return SplitExact, fmt.Errorf("hist: unknown split method %q (want exact or hist)", s)
	}
}

// DefaultMaxBins is the per-feature bin budget (including the missing
// bin) used when a config leaves MaxBins at zero.
const DefaultMaxBins = 256

// Matrix is a column-major dataset quantized to bin indices. Feature f
// has FiniteBins(f) finite bins numbered 0..FiniteBins(f)-1 in
// increasing value order, plus the missing bin MissingBin(f) holding
// NaN rows. It is immutable after Bin and safe for concurrent readers.
type Matrix struct {
	bins [][]uint8
	thr  [][]float64 // thr[f][b]: rows with value <= thr[f][b] land in bins 0..b
	rows int
}

// Bin quantizes every column into at most maxBins bins (maxBins-1
// finite plus the missing bin; values outside [2, 256] mean
// DefaultMaxBins). Columns must share one length.
func Bin(cols [][]float64, maxBins int) *Matrix {
	if maxBins < 2 || maxBins > 256 {
		maxBins = DefaultMaxBins
	}
	m := &Matrix{
		bins: make([][]uint8, len(cols)),
		thr:  make([][]float64, len(cols)),
	}
	if len(cols) > 0 {
		m.rows = len(cols[0])
	}
	ord := make([]int32, m.rows)
	for f, col := range cols {
		presort.ArgsortInto(ord, col)
		m.thr[f] = buildCuts(col, ord, maxBins-1)
		m.bins[f] = quantizeSorted(col, ord, m.thr[f])
	}
	return m
}

// NumFeatures returns the feature count.
func (m *Matrix) NumFeatures() int { return len(m.bins) }

// NumRows returns the row count.
func (m *Matrix) NumRows() int { return m.rows }

// FiniteBins returns feature f's finite bin count. Zero means the
// column had no finite values and can never be split on.
func (m *Matrix) FiniteBins(f int) int { return len(m.thr[f]) }

// MissingBin returns the bin index holding feature f's missing rows.
func (m *Matrix) MissingBin(f int) int { return len(m.thr[f]) }

// Bins returns feature f's per-row bin indices. Read-only.
func (m *Matrix) Bins(f int) []uint8 { return m.bins[f] }

// Threshold returns the split value after finite bin b of feature f:
// rows with value <= Threshold(f, b) occupy bins 0..b.
func (m *Matrix) Threshold(f, b int) float64 { return m.thr[f][b] }

// BinOf quantizes one value of feature f, for tests and diagnostics.
func (m *Matrix) BinOf(f int, v float64) int { return binOf(m.thr[f], v) }

// buildCuts derives the per-bin upper thresholds of one column from its
// presorted order. The result has one entry per finite bin; entry b is
// the largest value routed into bins 0..b, strictly below the smallest
// value of bin b+1. The final entry is the column's largest finite
// value.
func buildCuts(col []float64, ord []int32, maxFinite int) []float64 {
	// Group the sorted finite values into distinct values with counts.
	// NaNs are skipped wherever they sort: quiet NaNs form the tail,
	// but sign-bit-set NaN payloads order before every finite value.
	vals := make([]float64, 0, min(len(ord), 2*maxFinite))
	cnts := make([]int, 0, cap(vals))
	fin := 0
	for _, i := range ord {
		v := col[i]
		if v != v {
			continue
		}
		fin++
		if len(vals) > 0 && v == vals[len(vals)-1] {
			cnts[len(cnts)-1]++
		} else {
			vals = append(vals, v)
			cnts = append(cnts, 1)
		}
	}
	if fin == 0 {
		return nil
	}

	d := len(vals)
	thr := make([]float64, 0, min(d, maxFinite))
	if d <= maxFinite {
		// One bin per distinct value: binned search is exactly as
		// expressive as the exact presorted scan on this column.
		for g := 0; g < d-1; g++ {
			thr = append(thr, cutBetween(vals[g], vals[g+1]))
		}
		return append(thr, vals[d-1])
	}

	// Greedy quantile cuts: close a bin whenever the cumulative row
	// count reaches the next evenly spaced rank. Every bin is nonempty
	// and value groups are never split across bins.
	cum := 0
	for g := 0; g < d; g++ {
		cum += cnts[g]
		if g == d-1 {
			thr = append(thr, vals[g])
			break
		}
		if float64(cum) >= float64(len(thr)+1)*float64(fin)/float64(maxFinite) {
			thr = append(thr, cutBetween(vals[g], vals[g+1]))
		}
	}
	return thr
}

// cutBetween returns a threshold separating adjacent distinct values
// a < b: their midpoint, or a itself when the midpoint does not land
// strictly below b (adjacent floats, ±Inf endpoints whose midpoint
// overflows or degenerates). Mirrors the exact path's fallback so both
// paths route unseen values identically.
func cutBetween(a, b float64) float64 {
	mid := a/2 + b/2
	if !(mid < b) || math.IsNaN(mid) {
		return a
	}
	return mid
}

// quantizeSorted maps every row to its bin by walking the presorted
// order with a monotone bin cursor — O(rows + bins) rather than a
// binary search per row. Produces exactly binOf(thr, col[i]) for every
// row (NaNs, forming the sorted tail, land in the missing bin).
func quantizeSorted(col []float64, ord []int32, thr []float64) []uint8 {
	bins := make([]uint8, len(col))
	miss := uint8(len(thr))
	b := 0
	last := len(thr) - 1
	for _, i := range ord {
		v := col[i]
		if v != v {
			bins[i] = miss
			continue
		}
		for b < last && thr[b] < v {
			b++
		}
		bins[i] = uint8(b)
	}
	return bins
}

// binOf returns the bin of one value: the first bin whose threshold is
// >= v, the last finite bin for values above every threshold (unseen
// data beyond the training maximum), or the missing bin for NaN.
func binOf(thr []float64, v float64) int {
	if v != v || len(thr) == 0 {
		return len(thr)
	}
	b := sort.SearchFloat64s(thr, v)
	if b == len(thr) {
		b = len(thr) - 1
	}
	return b
}

// Package frame provides the column-major learning-set container shared
// by the feature-selection approaches, the tree learners, and the
// prediction pipeline. A Frame holds a feature matrix, feature names,
// binary labels, and optional per-sample metadata (drive, day, wear-out
// level) used by the drive-level evaluation and wear-out grouping.
//
// Frames are column-major because every consumer in this repository —
// correlation ranking, split finding in trees, complexity measures —
// iterates feature-wise over all samples. Row access is provided for
// model prediction via Row.
package frame

import (
	"errors"
	"fmt"
)

// Errors returned by Frame constructors and accessors.
var (
	// ErrShapeMismatch indicates columns (or labels/meta) of unequal length.
	ErrShapeMismatch = errors.New("frame: shape mismatch")
	// ErrNoSuchColumn indicates an unknown feature name or index.
	ErrNoSuchColumn = errors.New("frame: no such column")
	// ErrEmpty indicates an operation that requires at least one row.
	ErrEmpty = errors.New("frame: empty frame")
)

// Meta carries the per-sample bookkeeping the pipeline needs beyond the
// feature values: which drive the sample came from, which (dataset) day
// it was observed, and the drive's wear-out level (MWI_N) on that day.
type Meta struct {
	DriveID int
	Day     int
	MWI     float64
}

// Frame is an immutable-by-convention learning set. Construct with New
// and derive filtered/projected views with the Select/Filter methods,
// which copy the necessary data so the derived frame does not alias the
// parent's label or column slices unless documented.
type Frame struct {
	names []string
	index map[string]int
	cols  [][]float64
	label []int
	meta  []Meta
}

// New builds a Frame from feature names, column data (cols[f][i] is the
// value of feature f for sample i), binary labels, and optional metadata
// (may be nil; otherwise must match the row count).
func New(names []string, cols [][]float64, label []int, meta []Meta) (*Frame, error) {
	if len(names) != len(cols) {
		return nil, fmt.Errorf("%w: %d names vs %d columns", ErrShapeMismatch, len(names), len(cols))
	}
	rows := len(label)
	for i, c := range cols {
		if len(c) != rows {
			return nil, fmt.Errorf("%w: column %q has %d rows, labels have %d", ErrShapeMismatch, names[i], len(c), rows)
		}
	}
	if meta != nil && len(meta) != rows {
		return nil, fmt.Errorf("%w: %d meta vs %d rows", ErrShapeMismatch, len(meta), rows)
	}
	idx := make(map[string]int, len(names))
	for i, n := range names {
		if _, dup := idx[n]; dup {
			return nil, fmt.Errorf("frame: duplicate column name %q", n)
		}
		idx[n] = i
	}
	return &Frame{names: names, index: idx, cols: cols, label: label, meta: meta}, nil
}

// NumRows returns the number of samples.
func (f *Frame) NumRows() int { return len(f.label) }

// NumFeatures returns the number of feature columns.
func (f *Frame) NumFeatures() int { return len(f.cols) }

// Names returns the feature names. The returned slice is shared; treat
// it as read-only.
func (f *Frame) Names() []string { return f.names }

// Col returns the column at index i. The returned slice is shared;
// treat it as read-only.
func (f *Frame) Col(i int) []float64 { return f.cols[i] }

// ColByName returns the column with the given feature name.
func (f *Frame) ColByName(name string) ([]float64, error) {
	i, ok := f.index[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchColumn, name)
	}
	return f.cols[i], nil
}

// ColIndex returns the index of the named column, or -1 if absent.
func (f *Frame) ColIndex(name string) int {
	i, ok := f.index[name]
	if !ok {
		return -1
	}
	return i
}

// Labels returns the binary label vector. Shared; treat as read-only.
func (f *Frame) Labels() []int { return f.label }

// LabelsFloat returns the labels as float64 (needed by correlation-based
// rankers). The returned slice is freshly allocated.
func (f *Frame) LabelsFloat() []float64 {
	out := make([]float64, len(f.label))
	for i, y := range f.label {
		out[i] = float64(y)
	}
	return out
}

// Meta returns the metadata for sample i. It returns the zero Meta when
// the frame carries no metadata.
func (f *Frame) Meta(i int) Meta {
	if f.meta == nil {
		return Meta{}
	}
	return f.meta[i]
}

// HasMeta reports whether the frame carries per-sample metadata.
func (f *Frame) HasMeta() bool { return f.meta != nil }

// Row copies the feature values of sample i into dst, which must have
// length NumFeatures, and returns dst. Passing a reusable buffer avoids
// per-row allocation in prediction loops.
func (f *Frame) Row(i int, dst []float64) []float64 {
	for j, c := range f.cols {
		dst[j] = c[i]
	}
	return dst
}

// Positives returns the number of positive (label 1) samples.
func (f *Frame) Positives() int {
	n := 0
	for _, y := range f.label {
		if y == 1 {
			n++
		}
	}
	return n
}

// SelectColumns returns a derived frame containing only the columns at
// the given indices, in the given order. Column data is shared with the
// parent (columns are read-only by convention); labels and meta are
// shared too.
func (f *Frame) SelectColumns(indices []int) (*Frame, error) {
	names := make([]string, len(indices))
	cols := make([][]float64, len(indices))
	for k, i := range indices {
		if i < 0 || i >= len(f.cols) {
			return nil, fmt.Errorf("%w: index %d", ErrNoSuchColumn, i)
		}
		names[k] = f.names[i]
		cols[k] = f.cols[i]
	}
	return New(names, cols, f.label, f.meta)
}

// SelectNames returns a derived frame containing only the named columns,
// in the given order.
func (f *Frame) SelectNames(names []string) (*Frame, error) {
	indices := make([]int, len(names))
	for k, n := range names {
		i, ok := f.index[n]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrNoSuchColumn, n)
		}
		indices[k] = i
	}
	return f.SelectColumns(indices)
}

// FilterRows returns a derived frame containing only the rows for which
// keep returns true. All data is copied.
func (f *Frame) FilterRows(keep func(i int) bool) *Frame {
	var rows []int
	for i := range f.label {
		if keep(i) {
			rows = append(rows, i)
		}
	}
	return f.subsetRows(rows)
}

// SubsetRows returns a derived frame containing the given rows, in
// order. All data is copied. Row indices must be valid.
func (f *Frame) SubsetRows(rows []int) *Frame { return f.subsetRows(rows) }

func (f *Frame) subsetRows(rows []int) *Frame {
	cols := make([][]float64, len(f.cols))
	for j, c := range f.cols {
		nc := make([]float64, len(rows))
		for k, i := range rows {
			nc[k] = c[i]
		}
		cols[j] = nc
	}
	label := make([]int, len(rows))
	for k, i := range rows {
		label[k] = f.label[i]
	}
	var meta []Meta
	if f.meta != nil {
		meta = make([]Meta, len(rows))
		for k, i := range rows {
			meta[k] = f.meta[i]
		}
	}
	nf, err := New(f.names, cols, label, meta)
	if err != nil {
		// Unreachable: the subset preserves the parent's valid shape.
		panic(err)
	}
	return nf
}

// SplitByDay partitions the frame into two frames: rows whose Meta.Day
// is strictly less than day, and the rest. It requires metadata.
func (f *Frame) SplitByDay(day int) (before, after *Frame, err error) {
	if f.meta == nil {
		return nil, nil, errors.New("frame: SplitByDay requires metadata")
	}
	var lo, hi []int
	for i := range f.label {
		if f.meta[i].Day < day {
			lo = append(lo, i)
		} else {
			hi = append(hi, i)
		}
	}
	return f.subsetRows(lo), f.subsetRows(hi), nil
}

// Clone returns a deep copy of the frame.
func (f *Frame) Clone() *Frame {
	cols := make([][]float64, len(f.cols))
	for i, c := range f.cols {
		cols[i] = append([]float64(nil), c...)
	}
	label := append([]int(nil), f.label...)
	var meta []Meta
	if f.meta != nil {
		meta = append([]Meta(nil), f.meta...)
	}
	names := append([]string(nil), f.names...)
	nf, err := New(names, cols, label, meta)
	if err != nil {
		panic(err) // unreachable: clone of a valid frame is valid
	}
	return nf
}

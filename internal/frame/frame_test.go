package frame

import (
	"errors"
	"math/rand"
	"testing"
)

func mustFrame(t *testing.T) *Frame {
	t.Helper()
	f, err := New(
		[]string{"a", "b", "c"},
		[][]float64{
			{1, 2, 3, 4},
			{10, 20, 30, 40},
			{100, 200, 300, 400},
		},
		[]int{0, 1, 0, 1},
		[]Meta{
			{DriveID: 1, Day: 0, MWI: 90},
			{DriveID: 1, Day: 1, MWI: 80},
			{DriveID: 2, Day: 0, MWI: 50},
			{DriveID: 2, Day: 1, MWI: 40},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name  string
		names []string
		cols  [][]float64
		label []int
		meta  []Meta
	}{
		{"name count", []string{"a"}, [][]float64{{1}, {2}}, []int{0}, nil},
		{"ragged columns", []string{"a", "b"}, [][]float64{{1, 2}, {3}}, []int{0, 1}, nil},
		{"label mismatch", []string{"a"}, [][]float64{{1, 2}}, []int{0}, nil},
		{"meta mismatch", []string{"a"}, [][]float64{{1}}, []int{0}, []Meta{{}, {}}},
		{"duplicate names", []string{"a", "a"}, [][]float64{{1}, {2}}, []int{0}, nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(tt.names, tt.cols, tt.label, tt.meta); err == nil {
				t.Error("New should fail")
			}
		})
	}
}

func TestBasicAccessors(t *testing.T) {
	f := mustFrame(t)
	if f.NumRows() != 4 || f.NumFeatures() != 3 {
		t.Fatalf("shape = (%d, %d), want (4, 3)", f.NumRows(), f.NumFeatures())
	}
	if f.Positives() != 2 {
		t.Errorf("Positives = %d, want 2", f.Positives())
	}
	col, err := f.ColByName("b")
	if err != nil || col[2] != 30 {
		t.Errorf("ColByName(b)[2] = %v, %v", col, err)
	}
	if _, err := f.ColByName("z"); !errors.Is(err, ErrNoSuchColumn) {
		t.Errorf("ColByName(z) error = %v", err)
	}
	if f.ColIndex("c") != 2 || f.ColIndex("zzz") != -1 {
		t.Error("ColIndex mismatch")
	}
	lf := f.LabelsFloat()
	if lf[1] != 1 || lf[0] != 0 {
		t.Errorf("LabelsFloat = %v", lf)
	}
	if !f.HasMeta() {
		t.Error("HasMeta should be true")
	}
	if f.Meta(2).DriveID != 2 {
		t.Errorf("Meta(2) = %+v", f.Meta(2))
	}
}

func TestMetaAbsent(t *testing.T) {
	f, err := New([]string{"a"}, [][]float64{{1, 2}}, []int{0, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.HasMeta() {
		t.Error("HasMeta should be false")
	}
	if f.Meta(0) != (Meta{}) {
		t.Error("Meta on meta-less frame should be zero")
	}
}

func TestRow(t *testing.T) {
	f := mustFrame(t)
	buf := make([]float64, f.NumFeatures())
	row := f.Row(1, buf)
	want := []float64{2, 20, 200}
	for i := range want {
		if row[i] != want[i] {
			t.Errorf("Row(1)[%d] = %v, want %v", i, row[i], want[i])
		}
	}
}

func TestSelectColumns(t *testing.T) {
	f := mustFrame(t)
	sub, err := f.SelectColumns([]int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumFeatures() != 2 || sub.Names()[0] != "c" || sub.Names()[1] != "a" {
		t.Errorf("SelectColumns names = %v", sub.Names())
	}
	if sub.Col(0)[3] != 400 {
		t.Errorf("SelectColumns data = %v", sub.Col(0))
	}
	// Labels carry over.
	if sub.NumRows() != 4 || sub.Positives() != 2 {
		t.Error("SelectColumns should preserve rows/labels")
	}
	if _, err := f.SelectColumns([]int{7}); !errors.Is(err, ErrNoSuchColumn) {
		t.Errorf("out-of-range error = %v", err)
	}
}

func TestSelectNames(t *testing.T) {
	f := mustFrame(t)
	sub, err := f.SelectNames([]string{"b"})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumFeatures() != 1 || sub.Col(0)[0] != 10 {
		t.Error("SelectNames data mismatch")
	}
	if _, err := f.SelectNames([]string{"nope"}); !errors.Is(err, ErrNoSuchColumn) {
		t.Errorf("SelectNames(nope) error = %v", err)
	}
}

func TestFilterRows(t *testing.T) {
	f := mustFrame(t)
	sub := f.FilterRows(func(i int) bool { return f.Meta(i).DriveID == 1 })
	if sub.NumRows() != 2 {
		t.Fatalf("FilterRows rows = %d, want 2", sub.NumRows())
	}
	if sub.Col(0)[1] != 2 || sub.Labels()[1] != 1 {
		t.Error("FilterRows data mismatch")
	}
	// Filtered frame must not alias parent columns.
	sub.Col(0)[0] = -99
	if f.Col(0)[0] == -99 {
		t.Error("FilterRows should copy column data")
	}
}

func TestFilterRowsEmptyResult(t *testing.T) {
	f := mustFrame(t)
	sub := f.FilterRows(func(int) bool { return false })
	if sub.NumRows() != 0 {
		t.Errorf("empty filter rows = %d", sub.NumRows())
	}
	if sub.NumFeatures() != 3 {
		t.Errorf("empty filter should keep columns, got %d", sub.NumFeatures())
	}
}

func TestSubsetRowsOrder(t *testing.T) {
	f := mustFrame(t)
	sub := f.SubsetRows([]int{3, 0})
	if sub.Col(0)[0] != 4 || sub.Col(0)[1] != 1 {
		t.Errorf("SubsetRows order mismatch: %v", sub.Col(0))
	}
	if sub.Meta(0).Day != 1 {
		t.Errorf("SubsetRows meta mismatch: %+v", sub.Meta(0))
	}
}

func TestSplitByDay(t *testing.T) {
	f := mustFrame(t)
	before, after, err := f.SplitByDay(1)
	if err != nil {
		t.Fatal(err)
	}
	if before.NumRows() != 2 || after.NumRows() != 2 {
		t.Fatalf("split sizes = (%d, %d)", before.NumRows(), after.NumRows())
	}
	for i := 0; i < before.NumRows(); i++ {
		if before.Meta(i).Day >= 1 {
			t.Error("before contains day >= 1")
		}
	}
	for i := 0; i < after.NumRows(); i++ {
		if after.Meta(i).Day < 1 {
			t.Error("after contains day < 1")
		}
	}
}

func TestSplitByDayRequiresMeta(t *testing.T) {
	f, _ := New([]string{"a"}, [][]float64{{1}}, []int{0}, nil)
	if _, _, err := f.SplitByDay(1); err == nil {
		t.Error("SplitByDay without meta should fail")
	}
}

func TestClone(t *testing.T) {
	f := mustFrame(t)
	c := f.Clone()
	c.Col(0)[0] = -1
	c.Labels()[0] = 1
	if f.Col(0)[0] == -1 || f.Labels()[0] == 1 {
		t.Error("Clone should not alias parent data")
	}
	if c.NumRows() != f.NumRows() || c.NumFeatures() != f.NumFeatures() {
		t.Error("Clone shape mismatch")
	}
}

func TestFilterSubsetConsistencyProperty(t *testing.T) {
	// Property: FilterRows(pred) equals SubsetRows of the indices where
	// pred holds, for arbitrary data and predicates.
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(60)
		nf := 1 + rng.Intn(5)
		names := make([]string, nf)
		cols := make([][]float64, nf)
		for j := range cols {
			names[j] = string(rune('a' + j))
			cols[j] = make([]float64, n)
			for i := range cols[j] {
				cols[j][i] = rng.NormFloat64()
			}
		}
		label := make([]int, n)
		for i := range label {
			label[i] = rng.Intn(2)
		}
		f, err := New(names, cols, label, nil)
		if err != nil {
			t.Fatal(err)
		}
		threshold := rng.NormFloat64()
		pred := func(i int) bool { return f.Col(0)[i] > threshold }
		var idx []int
		for i := 0; i < n; i++ {
			if pred(i) {
				idx = append(idx, i)
			}
		}
		a := f.FilterRows(pred)
		b := f.SubsetRows(idx)
		if a.NumRows() != b.NumRows() {
			t.Fatalf("row counts differ: %d vs %d", a.NumRows(), b.NumRows())
		}
		for j := 0; j < nf; j++ {
			for i := 0; i < a.NumRows(); i++ {
				if a.Col(j)[i] != b.Col(j)[i] {
					t.Fatalf("data mismatch at (%d, %d)", j, i)
				}
			}
		}
		for i := 0; i < a.NumRows(); i++ {
			if a.Labels()[i] != b.Labels()[i] {
				t.Fatalf("label mismatch at %d", i)
			}
		}
	}
}

func TestPositivesMatchesManualCount(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	n := 500
	label := make([]int, n)
	want := 0
	for i := range label {
		label[i] = rng.Intn(2)
		want += label[i]
	}
	col := make([]float64, n)
	f, err := New([]string{"x"}, [][]float64{col}, label, nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.Positives() != want {
		t.Errorf("Positives = %d, want %d", f.Positives(), want)
	}
}

package tree

import (
	"fmt"
	"math/rand"

	"repro/internal/hist"
)

// HistScratch holds the reusable working memory of one binned tree fit:
// the single shared row list (binned growth needs no per-feature
// orders), the partition buffer, the packed per-row weights, and the
// fixed-size bin accumulators. A HistScratch must not be used by two
// fits concurrently.
type HistScratch struct {
	rows []int32
	buf  []int32
	// pk[i] packs row i's bootstrap weight and positive weight as
	// weight<<32 | weight*y, so one histogram add accumulates both.
	// Sums stay below 2^32 because total weight is bounded by the row
	// count, so the fields can never carry into each other.
	pk   []uint64
	pseg []uint64 // pk gathered per node, aligned with the row segment
	feat []int
	// Per-bin packed totals of the node being scanned. 256 cells cover
	// the largest possible bin index (255 = missing bin of a
	// 255-finite-bin feature).
	cnt [256]uint64
}

// NewHistScratch returns an empty HistScratch; buffers are sized on
// first use.
func NewHistScratch() *HistScratch { return &HistScratch{} }

func (s *HistScratch) ensure(features, rows int) {
	if cap(s.rows) < rows {
		s.rows = make([]int32, rows)
	}
	s.rows = s.rows[:0]
	if cap(s.buf) < rows {
		s.buf = make([]int32, rows)
	}
	s.buf = s.buf[:rows]
	if cap(s.pk) < rows {
		s.pk = make([]uint64, rows)
	}
	s.pk = s.pk[:rows]
	if cap(s.pseg) < rows {
		s.pseg = make([]uint64, rows)
	}
	s.pseg = s.pseg[:rows]
	if cap(s.feat) < features {
		s.feat = make([]int, features)
	}
	s.feat = s.feat[:features]
}

// FitClassifierBinned grows a classification tree over a histogram-
// binned matrix (see internal/hist), with bootstrap replication
// expressed as integer per-row sample weights exactly as in
// FitClassifierPresorted. Split search at a node accumulates one
// (weight, positive-weight) histogram per candidate feature and scans
// bins instead of sorted rows; the node's rows are then partitioned by
// bin index. Because every feature shares one row list, the per-node
// partition cost is a single pass regardless of feature count — the
// structural advantage over the presorted path, which must maintain one
// order per feature.
//
// Candidate cuts lie on the matrix's global bin boundaries, so deep in
// the tree the split thresholds can differ from the exact path's
// node-local midpoints, but on columns with fewer distinct values than
// bins the candidate set — and therefore the grown tree's routing of
// the in-bag (weight > 0) rows — is identical.
//
// sc may be nil; passing a reused HistScratch eliminates per-fit
// allocation of the row list.
func FitClassifierBinned(bm *hist.Matrix, y []int, weights []int, cfg Config, sc *HistScratch) (*Classifier, error) {
	if bm == nil || bm.NumFeatures() == 0 {
		return nil, fmt.Errorf("%w: no feature columns", ErrNoData)
	}
	n := len(y)
	if bm.NumRows() != n {
		return nil, fmt.Errorf("%w: binned matrix has %d rows, labels have %d", ErrShapeMismatch, bm.NumRows(), n)
	}
	if len(weights) != n {
		return nil, fmt.Errorf("%w: %d weights, %d labels", ErrShapeMismatch, len(weights), n)
	}
	if sc == nil {
		sc = NewHistScratch()
	}
	sc.ensure(bm.NumFeatures(), n)

	wTotal, wPos := 0, 0
	for i, wi := range weights {
		if wi > 0 {
			wTotal += wi
			wPos += wi * y[i]
			sc.rows = append(sc.rows, int32(i))
		}
		sc.pk[i] = uint64(wi)<<32 | uint64(wi*y[i])
	}
	if wTotal == 0 {
		return nil, ErrNoData
	}

	t := &Classifier{
		nFeatures:  bm.NumFeatures(),
		importance: make([]float64, bm.NumFeatures()),
	}
	b := &binnedBuilder{
		bm:   bm,
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		t:    t,
		feat: sc.feat,
		rows: sc.rows,
		buf:  sc.buf,
		pk:   sc.pk,
		sc:   sc,
	}
	for i := range b.feat {
		b.feat[i] = i
	}
	b.grow(0, len(b.rows), wTotal, wPos, 0)
	return t, nil
}

// binnedBuilder carries the shared state of one binned tree induction.
type binnedBuilder struct {
	bm   *hist.Matrix
	cfg  Config
	rng  *rand.Rand
	t    *Classifier
	feat []int    // feature index pool for subsampling
	rows []int32  // shared working row list, segment-aligned
	buf  []int32  // scratch for partitioning
	pk   []uint64 // per-row packed weight<<32 | weight*y
	sc   *HistScratch
}

// grow recursively grows the subtree over the row segment [lo, hi) and
// returns its node index. Mirrors builder.grow with one row list in
// place of per-feature orders.
func (b *binnedBuilder) grow(lo, hi, wTotal, wPos, depth int) int {
	nodeIdx := len(b.t.nodes)
	b.t.nodes = append(b.t.nodes, node{
		feature: -1,
		prob:    float64(wPos) / float64(wTotal),
		samples: wTotal,
	})
	if depth > b.t.depth {
		b.t.depth = depth
	}

	if leafStop(b.cfg, wTotal, wPos, depth) {
		return nodeIdx
	}

	feature, splitBin, threshold, gain, wLeft, wPosLeft, defaultLeft := b.bestSplit(lo, hi, wTotal, wPos)
	if feature < 0 {
		return nodeIdx
	}

	wRight, wPosRight := wTotal-wLeft, wPos-wPosLeft
	nlRows := 0
	// As in the exact path, when both children are guaranteed leaves no
	// descendant reads the row list, so the partition is skipped.
	if !(leafStop(b.cfg, wLeft, wPosLeft, depth+1) && leafStop(b.cfg, wRight, wPosRight, depth+1)) {
		bins := b.bm.Bins(feature)
		missBin := uint8(b.bm.MissingBin(feature))
		sb := uint8(splitBin)
		w, r := lo, 0
		for k := lo; k < hi; k++ {
			i := b.rows[k]
			bb := bins[i]
			if bb <= sb || (bb == missBin && defaultLeft) {
				b.rows[w] = i
				w++
			} else {
				b.buf[r] = i
				r++
			}
		}
		copy(b.rows[w:hi], b.buf[:r])
		nlRows = w - lo
	}

	b.t.importance[feature] += gain * float64(wTotal)

	l := b.grow(lo, lo+nlRows, wLeft, wPosLeft, depth+1)
	r := b.grow(lo+nlRows, hi, wRight, wPosRight, depth+1)
	b.t.nodes[nodeIdx].feature = feature
	b.t.nodes[nodeIdx].threshold = threshold
	b.t.nodes[nodeIdx].left = l
	b.t.nodes[nodeIdx].right = r
	b.t.nodes[nodeIdx].defaultLeft = defaultLeft
	return nodeIdx
}

// bestSplit searches the (possibly subsampled) features for the
// bin-boundary cut maximizing Gini-impurity decrease. For each
// candidate it accumulates the node's per-bin weighted totals in one
// pass over the segment, then scans the bins cumulatively — evaluating
// every nonempty boundary with missing routed right and (when the node
// has missing rows) left, plus the finite/missing boundary itself,
// exactly the candidate set of the presorted scan restricted to global
// bin boundaries.
func (b *binnedBuilder) bestSplit(lo, hi, wTotal, wPos int) (feature, splitBin int, threshold, gain float64, wLeft, wPosLeft int, defaultLeft bool) {
	parentImpurity := gini(wPos, wTotal)
	if parentImpurity == 0 {
		return -1, 0, 0, 0, 0, 0, false
	}

	nCand := b.cfg.MaxFeatures
	if nCand <= 0 || nCand > len(b.feat) {
		nCand = len(b.feat)
	}
	for i := 0; i < nCand; i++ {
		j := i + b.rng.Intn(len(b.feat)-i)
		b.feat[i], b.feat[j] = b.feat[j], b.feat[i]
	}

	feature = -1
	bestGain := 1e-12
	minLeaf := b.cfg.minLeaf()

	consider := func(f, bin int, nl, posL int, missLeft bool) {
		nr := wTotal - nl
		if nl < minLeaf || nr < minLeaf {
			return
		}
		g := parentImpurity -
			(float64(nl)*gini(posL, nl)+float64(nr)*gini(wPos-posL, nr))/float64(wTotal)
		if g > bestGain {
			bestGain = g
			feature = f
			splitBin = bin
			wLeft = nl
			wPosLeft = posL
			defaultLeft = missLeft
		}
	}

	// Gather the segment's packed weights once: every candidate feature
	// then reads them sequentially, leaving the bin lookup as the only
	// gather in the accumulation loop.
	seg := b.rows[lo:hi]
	pseg := b.sc.pseg[:len(seg)]
	for k, i := range seg {
		pseg[k] = b.pk[i]
	}

	cnt := &b.sc.cnt
	for c := 0; c < nCand; c++ {
		f := b.feat[c]
		nb := b.bm.FiniteBins(f)
		if nb == 0 {
			continue // every value missing: nothing to split on
		}
		bins := b.bm.Bins(f)
		for i := 0; i <= nb; i++ {
			cnt[i] = 0
		}
		for k, i := range seg {
			cnt[bins[i]] += pseg[k]
		}
		missW, missPos := int(cnt[nb]>>32), int(uint32(cnt[nb]))
		finW := wTotal - missW
		if finW == 0 {
			continue
		}

		leftW, leftPos := 0, 0
		for bb := 0; bb < nb; bb++ {
			cv := cnt[bb]
			if cv == 0 {
				continue // empty bin: same row split as the previous boundary
			}
			leftW += int(cv >> 32)
			leftPos += int(uint32(cv))
			if leftW == finW {
				// Boundary after the last nonempty finite bin: only
				// meaningful as the finite/missing cut.
				if missW > 0 {
					consider(f, bb, leftW, leftPos, false)
				}
				break
			}
			consider(f, bb, leftW, leftPos, false)
			if missW > 0 {
				consider(f, bb, leftW+missW, leftPos+missPos, true)
			}
		}
	}
	if feature < 0 {
		return -1, 0, 0, 0, 0, 0, false
	}
	return feature, splitBin, b.bm.Threshold(feature, splitBin), bestGain, wLeft, wPosLeft, defaultLeft
}

// Package tree implements CART-style binary decision trees from scratch:
// a Gini-impurity classifier used by the Random Forest, with exact split
// search, depth and leaf-size limits, and per-feature random subsampling.
// The gradient-boosted (Newton) regression tree lives in internal/gbdt,
// which reuses this package's node layout.
//
// Trees operate on column-major data (cols[f][i] is feature f of sample
// i) because split search iterates feature-wise; prediction takes a
// row-major feature vector.
package tree

import (
	"errors"
	"fmt"
	"math/rand"
)

// Errors returned by tree fitting.
var (
	// ErrNoData indicates a fit over zero samples.
	ErrNoData = errors.New("tree: no training samples")
	// ErrShapeMismatch indicates columns and labels of unequal length.
	ErrShapeMismatch = errors.New("tree: shape mismatch")
)

// Config controls tree induction. The zero value is usable: it grows an
// unlimited-depth tree considering every feature at every split with
// minimum leaf size 1.
type Config struct {
	// MaxDepth limits tree depth; 0 means unlimited.
	MaxDepth int
	// MinLeafSamples is the minimum number of samples in a leaf;
	// values below 1 are treated as 1.
	MinLeafSamples int
	// MinSplitSamples is the minimum number of samples required to
	// attempt a split; values below 2 are treated as 2.
	MinSplitSamples int
	// MaxFeatures is the number of features sampled (without
	// replacement) as split candidates at each node; 0 means all.
	MaxFeatures int
	// Seed seeds the per-node feature subsampling. Two fits with the
	// same data, config, and seed produce identical trees.
	Seed int64
}

func (c Config) minLeaf() int {
	if c.MinLeafSamples < 1 {
		return 1
	}
	return c.MinLeafSamples
}

func (c Config) minSplit() int {
	if c.MinSplitSamples < 2 {
		return 2
	}
	return c.MinSplitSamples
}

// node is one tree node. Leaves have feature == -1.
type node struct {
	feature   int     // split feature index, or -1 for a leaf
	threshold float64 // go left when x[feature] <= threshold
	left      int     // index of left child in nodes
	right     int     // index of right child in nodes
	prob      float64 // leaf: fraction of positive samples
	samples   int     // training samples that reached this node
}

// Classifier is a fitted binary classification tree. It predicts the
// positive-class probability as the positive fraction of the training
// samples in the reached leaf.
type Classifier struct {
	nodes      []node
	nFeatures  int
	importance []float64 // impurity-decrease per feature, unnormalized
	depth      int
}

// FitClassifier grows a classification tree on the given column-major
// data. idx selects the training rows (pass nil to use every row); the
// same row may appear multiple times (bootstrap replicates).
func FitClassifier(cols [][]float64, y []int, idx []int, cfg Config) (*Classifier, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("%w: no feature columns", ErrNoData)
	}
	n := len(y)
	for f, c := range cols {
		if len(c) != n {
			return nil, fmt.Errorf("%w: column %d has %d rows, labels have %d", ErrShapeMismatch, f, len(c), n)
		}
	}
	if idx == nil {
		idx = make([]int, n)
		for i := range idx {
			idx[i] = i
		}
	}
	if len(idx) == 0 {
		return nil, ErrNoData
	}

	t := &Classifier{
		nFeatures:  len(cols),
		importance: make([]float64, len(cols)),
	}
	b := &builder{
		cols: cols,
		y:    y,
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		t:    t,
		feat: make([]int, len(cols)),
		buf:  make([]int, len(idx)),
	}
	for i := range b.feat {
		b.feat[i] = i
	}
	work := append([]int(nil), idx...) // builder reorders indices in place
	b.grow(work, 0)
	return t, nil
}

// builder carries the shared state of one tree induction.
type builder struct {
	cols [][]float64
	y    []int
	cfg  Config
	rng  *rand.Rand
	t    *Classifier
	feat []int // feature index pool for subsampling
	buf  []int // scratch for partitioning
}

// grow recursively grows the subtree over idx and returns its node
// index. It reorders idx in place when splitting.
func (b *builder) grow(idx []int, depth int) int {
	pos := 0
	for _, i := range idx {
		pos += b.y[i]
	}
	n := len(idx)
	nodeIdx := len(b.t.nodes)
	b.t.nodes = append(b.t.nodes, node{
		feature: -1,
		prob:    float64(pos) / float64(n),
		samples: n,
	})
	if depth > b.t.depth {
		b.t.depth = depth
	}

	if pos == 0 || pos == n { // pure
		return nodeIdx
	}
	if n < b.cfg.minSplit() || (b.cfg.MaxDepth > 0 && depth >= b.cfg.MaxDepth) {
		return nodeIdx
	}

	feature, threshold, gain := b.bestSplit(idx, pos)
	if feature < 0 {
		return nodeIdx
	}

	// Partition idx into left (<= threshold) and right.
	left := b.buf[:0]
	right := make([]int, 0, n/2)
	for _, i := range idx {
		if b.cols[feature][i] <= threshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < b.cfg.minLeaf() || len(right) < b.cfg.minLeaf() {
		return nodeIdx
	}
	copy(idx, left)
	copy(idx[len(left):], right)

	b.t.importance[feature] += gain * float64(n)

	// Children are grown on disjoint halves of idx; buf is reused per
	// node, so copy the halves out before recursing.
	leftIdx := idx[:len(left)]
	rightIdx := idx[len(left):]
	l := b.grow(leftIdx, depth+1)
	r := b.grow(rightIdx, depth+1)
	b.t.nodes[nodeIdx].feature = feature
	b.t.nodes[nodeIdx].threshold = threshold
	b.t.nodes[nodeIdx].left = l
	b.t.nodes[nodeIdx].right = r
	return nodeIdx
}

// bestSplit searches the (possibly subsampled) features for the split
// that maximizes Gini-impurity decrease. It returns feature -1 when no
// split improves impurity.
func (b *builder) bestSplit(idx []int, pos int) (feature int, threshold, gain float64) {
	n := len(idx)
	parentImpurity := gini(pos, n)
	if parentImpurity == 0 {
		return -1, 0, 0
	}

	nCand := b.cfg.MaxFeatures
	if nCand <= 0 || nCand > len(b.feat) {
		nCand = len(b.feat)
	}
	// Partial Fisher-Yates to draw nCand distinct features.
	for i := 0; i < nCand; i++ {
		j := i + b.rng.Intn(len(b.feat)-i)
		b.feat[i], b.feat[j] = b.feat[j], b.feat[i]
	}

	feature = -1
	bestGain := 1e-12 // require strictly positive improvement
	minLeaf := b.cfg.minLeaf()

	// Scratch: sort idx copies per feature.
	sorted := make([]int, n)
	for c := 0; c < nCand; c++ {
		f := b.feat[c]
		col := b.cols[f]
		copy(sorted, idx)
		sortByCol(sorted, col)

		// Prefix scan: at boundary k, left = sorted[:k+1].
		leftPos := 0
		for k := 0; k < n-1; k++ {
			leftPos += b.y[sorted[k]]
			if col[sorted[k]] == col[sorted[k+1]] {
				continue // can't split between equal values
			}
			nl := k + 1
			nr := n - nl
			if nl < minLeaf || nr < minLeaf {
				continue
			}
			g := parentImpurity -
				(float64(nl)*gini(leftPos, nl)+float64(nr)*gini(pos-leftPos, nr))/float64(n)
			if g > bestGain {
				bestGain = g
				feature = f
				// Midpoint threshold is robust to unseen values
				// between the two training points.
				threshold = (col[sorted[k]] + col[sorted[k+1]]) / 2
			}
		}
	}
	if feature < 0 {
		return -1, 0, 0
	}
	return feature, threshold, bestGain
}

// gini returns the Gini impurity of a node with pos positives among n.
func gini(pos, n int) float64 {
	if n == 0 {
		return 0
	}
	p := float64(pos) / float64(n)
	return 2 * p * (1 - p)
}

// sortByCol sorts idx ascending by col value using insertion sort for
// tiny inputs and a bottom-up quicksort otherwise.
func sortByCol(idx []int, col []float64) {
	if len(idx) < 24 {
		for i := 1; i < len(idx); i++ {
			for j := i; j > 0 && col[idx[j]] < col[idx[j-1]]; j-- {
				idx[j], idx[j-1] = idx[j-1], idx[j]
			}
		}
		return
	}
	// Median-of-three quicksort on the index slice.
	lo, hi := 0, len(idx)-1
	mid := (lo + hi) / 2
	if col[idx[mid]] < col[idx[lo]] {
		idx[mid], idx[lo] = idx[lo], idx[mid]
	}
	if col[idx[hi]] < col[idx[lo]] {
		idx[hi], idx[lo] = idx[lo], idx[hi]
	}
	if col[idx[hi]] < col[idx[mid]] {
		idx[hi], idx[mid] = idx[mid], idx[hi]
	}
	pivot := col[idx[mid]]
	i, j := lo, hi
	for i <= j {
		for col[idx[i]] < pivot {
			i++
		}
		for col[idx[j]] > pivot {
			j--
		}
		if i <= j {
			idx[i], idx[j] = idx[j], idx[i]
			i++
			j--
		}
	}
	sortByCol(idx[:j+1], col)
	sortByCol(idx[i:], col)
}

// PredictProba returns the positive-class probability for one sample
// given as a row-major feature vector of length NumFeatures.
func (t *Classifier) PredictProba(x []float64) float64 {
	i := 0
	for {
		nd := &t.nodes[i]
		if nd.feature < 0 {
			return nd.prob
		}
		if x[nd.feature] <= nd.threshold {
			i = nd.left
		} else {
			i = nd.right
		}
	}
}

// NumFeatures returns the feature count the tree was fitted with.
func (t *Classifier) NumFeatures() int { return t.nFeatures }

// NumNodes returns the total node count (internal + leaves).
func (t *Classifier) NumNodes() int { return len(t.nodes) }

// Depth returns the depth of the deepest node (root = 0).
func (t *Classifier) Depth() int { return t.depth }

// Importance returns the per-feature total impurity decrease
// (sample-weighted, unnormalized). The caller owns the returned slice.
func (t *Classifier) Importance() []float64 {
	return append([]float64(nil), t.importance...)
}

// Package tree implements CART-style binary decision trees from scratch:
// a Gini-impurity classifier used by the Random Forest, with exact split
// search, depth and leaf-size limits, and per-feature random subsampling.
// The gradient-boosted (Newton) regression tree lives in internal/gbdt,
// which reuses this package's node layout.
//
// Trees operate on column-major data (cols[f][i] is feature f of sample
// i) because split search iterates feature-wise; prediction takes a
// row-major feature vector or, for batches, the column-major data
// directly.
//
// Training is sort-once, partition-thereafter: each feature's row order
// is argsorted exactly once per fit (internal/presort) and maintained
// down the tree by stable in-place partitioning, so split search at a
// node is a linear scan instead of a per-node re-sort. Bootstrap
// replicates are expressed as integer per-row sample weights, which
// lets a Random Forest share one fleet-wide presort across all of its
// trees (see Presort / FitClassifierPresorted).
package tree

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/presort"
)

// Errors returned by tree fitting.
var (
	// ErrNoData indicates a fit over zero samples.
	ErrNoData = errors.New("tree: no training samples")
	// ErrShapeMismatch indicates columns and labels of unequal length.
	ErrShapeMismatch = errors.New("tree: shape mismatch")
)

// Config controls tree induction. The zero value is usable: it grows an
// unlimited-depth tree considering every feature at every split with
// minimum leaf size 1.
type Config struct {
	// MaxDepth limits tree depth; 0 means unlimited.
	MaxDepth int
	// MinLeafSamples is the minimum number of samples in a leaf;
	// values below 1 are treated as 1.
	MinLeafSamples int
	// MinSplitSamples is the minimum number of samples required to
	// attempt a split; values below 2 are treated as 2.
	MinSplitSamples int
	// MaxFeatures is the number of features sampled (without
	// replacement) as split candidates at each node; 0 means all.
	MaxFeatures int
	// Seed seeds the per-node feature subsampling. Two fits with the
	// same data, config, and seed produce identical trees.
	Seed int64
}

func (c Config) minLeaf() int {
	if c.MinLeafSamples < 1 {
		return 1
	}
	return c.MinLeafSamples
}

func (c Config) minSplit() int {
	if c.MinSplitSamples < 2 {
		return 2
	}
	return c.MinSplitSamples
}

// node is one tree node. Leaves have feature == -1.
type node struct {
	feature     int     // split feature index, or -1 for a leaf
	threshold   float64 // go left when x[feature] <= threshold
	left        int     // index of left child in nodes
	right       int     // index of right child in nodes
	prob        float64 // leaf: fraction of positive samples
	samples     int     // training samples that reached this node
	defaultLeft bool    // where rows with a missing (NaN) value go
}

// Classifier is a fitted binary classification tree. It predicts the
// positive-class probability as the positive fraction of the training
// samples in the reached leaf.
type Classifier struct {
	nodes      []node
	nFeatures  int
	importance []float64 // impurity-decrease per feature, unnormalized
	depth      int
}

// Presorted holds the per-feature argsorted row orders of one
// column-major dataset. Computing it once and passing it to
// FitClassifierPresorted amortizes the O(features x n log n) sort
// across many fits — a Random Forest presorts its training data once
// and shares the result across every tree.
type Presorted struct {
	cols  [][]float64
	order [][]int32
}

// Presort argsorts every column of the dataset. The returned value
// references cols; neither may be mutated while fits are in flight.
func Presort(cols [][]float64) *Presorted {
	return &Presorted{cols: cols, order: presort.All(cols)}
}

// NumFeatures returns the presorted feature count.
func (p *Presorted) NumFeatures() int { return len(p.cols) }

// NumRows returns the presorted row count.
func (p *Presorted) NumRows() int {
	if len(p.cols) == 0 {
		return 0
	}
	return len(p.cols[0])
}

// Scratch holds the reusable working memory of one tree fit: the
// per-feature working orders and the partition buffer. A worker fitting
// many trees (as the forest does) allocates one Scratch and reuses it
// across fits, eliminating per-tree allocation of the order arrays.
// A Scratch must not be used by two fits concurrently.
type Scratch struct {
	ord  [][]int32
	buf  []int32
	side []byte
	wy   []int32
	feat []int
}

// NewScratch returns an empty Scratch; buffers are sized on first use.
func NewScratch() *Scratch { return &Scratch{} }

func (s *Scratch) ensure(features, rows int) {
	if cap(s.ord) < features {
		s.ord = make([][]int32, features)
	}
	s.ord = s.ord[:features]
	for f := range s.ord {
		if cap(s.ord[f]) < rows {
			s.ord[f] = make([]int32, 0, rows)
		}
	}
	if cap(s.buf) < rows {
		s.buf = make([]int32, rows)
	}
	s.buf = s.buf[:rows]
	if cap(s.side) < rows {
		s.side = make([]byte, rows)
	}
	s.side = s.side[:rows]
	if cap(s.wy) < rows {
		s.wy = make([]int32, rows)
	}
	s.wy = s.wy[:rows]
	if cap(s.feat) < features {
		s.feat = make([]int, features)
	}
	s.feat = s.feat[:features]
}

// FitClassifier grows a classification tree on the given column-major
// data. idx selects the training rows (pass nil to use every row); the
// same row may appear multiple times (bootstrap replicates).
//
// This entry point presorts the data itself. Callers fitting many trees
// on the same data should call Presort once and use
// FitClassifierPresorted with per-row weights instead.
func FitClassifier(cols [][]float64, y []int, idx []int, cfg Config) (*Classifier, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("%w: no feature columns", ErrNoData)
	}
	n := len(y)
	for f, c := range cols {
		if len(c) != n {
			return nil, fmt.Errorf("%w: column %d has %d rows, labels have %d", ErrShapeMismatch, f, len(c), n)
		}
	}
	if idx != nil && len(idx) == 0 {
		return nil, ErrNoData
	}
	weights := make([]int, n)
	if idx == nil {
		for i := range weights {
			weights[i] = 1
		}
	} else {
		for _, i := range idx {
			weights[i]++
		}
	}
	return FitClassifierPresorted(Presort(cols), y, weights, cfg, NewScratch())
}

// FitClassifierPresorted grows a classification tree from an existing
// presort, with bootstrap replication expressed as integer per-row
// sample weights (weight 0 excludes a row; weight k counts it k times).
// It is equivalent to FitClassifier over an index list holding each row
// weights[i] times, but performs no sorting: the shared presorted
// orders are filtered to in-bag rows and maintained by stable
// partitioning down the tree.
//
// sc may be nil; passing a reused Scratch eliminates the per-fit
// allocation of working orders.
func FitClassifierPresorted(ps *Presorted, y []int, weights []int, cfg Config, sc *Scratch) (*Classifier, error) {
	if ps == nil || ps.NumFeatures() == 0 {
		return nil, fmt.Errorf("%w: no feature columns", ErrNoData)
	}
	n := len(y)
	if ps.NumRows() != n {
		return nil, fmt.Errorf("%w: presort has %d rows, labels have %d", ErrShapeMismatch, ps.NumRows(), n)
	}
	if len(weights) != n {
		return nil, fmt.Errorf("%w: %d weights, %d labels", ErrShapeMismatch, len(weights), n)
	}
	if sc == nil {
		sc = NewScratch()
	}
	sc.ensure(len(ps.cols), n)

	// Filter the shared orders down to in-bag rows (weight > 0),
	// preserving sortedness. Weighted totals replace duplicated indices.
	wTotal, wPos := 0, 0
	for i, wi := range weights {
		if wi > 0 {
			wTotal += wi
			wPos += wi * y[i]
		}
	}
	if wTotal == 0 {
		return nil, ErrNoData
	}
	// A byte in-bag mask keeps the filter loop's random accesses inside
	// L1 instead of striding the full weight slice per feature, and the
	// filter itself is branchless (cursor advances by the mask value).
	for i, wi := range weights {
		if wi > 0 {
			sc.side[i] = 1
		} else {
			sc.side[i] = 0
		}
		// Weight and label packed into one int32 so the split scan's
		// random per-row access touches a single L1-resident array.
		sc.wy[i] = int32(wi<<1) | int32(y[i])
	}
	rows := 0
	for f, full := range ps.order {
		dst := sc.ord[f][:n]
		w := 0
		for _, i := range full {
			dst[w] = i
			w += int(sc.side[i])
		}
		sc.ord[f] = dst[:w]
		rows = w
	}

	t := &Classifier{
		nFeatures:  len(ps.cols),
		importance: make([]float64, len(ps.cols)),
	}
	b := &builder{
		cols: ps.cols,
		y:    y,
		w:    weights,
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		t:    t,
		feat: sc.feat,
		ord:  sc.ord,
		buf:  sc.buf,
		side: sc.side,
		wy:   sc.wy,
	}
	for i := range b.feat {
		b.feat[i] = i
	}
	b.grow(0, rows, wTotal, wPos, 0)
	return t, nil
}

// builder carries the shared state of one tree induction.
type builder struct {
	cols [][]float64
	y    []int
	w    []int // per-row sample weights (bootstrap multiplicities)
	cfg  Config
	rng  *rand.Rand
	t    *Classifier
	feat []int     // feature index pool for subsampling
	ord  [][]int32 // per-feature working orders, segment-aligned
	buf  []int32   // scratch for partitioning
	side []byte    // per-row left/right mask of the current split
	wy   []int32   // per-row packed weight<<1 | label
}

// grow recursively grows the subtree over the row segment [lo, hi) of
// every working order and returns its node index. wTotal and wPos are
// the segment's total and positive sample weights.
func (b *builder) grow(lo, hi, wTotal, wPos, depth int) int {
	nodeIdx := len(b.t.nodes)
	b.t.nodes = append(b.t.nodes, node{
		feature: -1,
		prob:    float64(wPos) / float64(wTotal),
		samples: wTotal,
	})
	if depth > b.t.depth {
		b.t.depth = depth
	}

	if b.isLeaf(wTotal, wPos, depth) {
		return nodeIdx
	}

	feature, threshold, gain, wLeft, wPosLeft, defaultLeft := b.bestSplit(lo, hi, wTotal, wPos)
	if feature < 0 {
		return nodeIdx
	}

	// Maintain every feature's order across the split: stable
	// partitioning keeps both halves sorted, so descendants never sort.
	// The split feature's own segment is sorted by the split column, so
	// its left half is exactly the prefix of rows <= threshold — found
	// by binary search, no data movement. That prefix fills a byte side
	// mask, and every other feature partitions against the mask (one L1
	// byte load per row instead of a random float64 column load).
	//
	// Rows whose split-feature value is missing (NaN) occupy a
	// contiguous tail of the segment (floatKey sorts NaN above +Inf);
	// they follow the node's learned default direction, so the binary
	// search runs over the finite prefix only and the tail's side mask
	// is set wholesale. When the default is right, the split feature's
	// left half is still exactly its prefix and its own partition can be
	// skipped as in the all-finite case.
	//
	// When both children are guaranteed leaves (pure, under the split
	// minimum, or at the depth limit) no descendant ever reads the
	// orders, so the partition is skipped outright — for depth-capped
	// forests this eliminates the entire bottom level's data movement.
	wRight, wPosRight := wTotal-wLeft, wPos-wPosLeft
	col := b.cols[feature]
	fo := b.ord[feature]
	missRows := 0
	for hi-missRows > lo {
		v := col[fo[hi-missRows-1]]
		if v == v {
			break
		}
		missRows++
	}
	fhi := hi - missRows
	nlRows := sort.Search(fhi-lo, func(k int) bool { return col[fo[lo+k]] > threshold })
	if defaultLeft {
		nlRows += missRows
	}
	if !(b.isLeaf(wLeft, wPosLeft, depth+1) && b.isLeaf(wRight, wPosRight, depth+1)) {
		nlFinite := nlRows
		if defaultLeft {
			nlFinite -= missRows
		}
		for k := lo; k < lo+nlFinite; k++ {
			b.side[fo[k]] = 1
		}
		for k := lo + nlFinite; k < fhi; k++ {
			b.side[fo[k]] = 0
		}
		if missRows > 0 {
			var sv byte
			if defaultLeft {
				sv = 1
			}
			for k := fhi; k < hi; k++ {
				b.side[fo[k]] = sv
			}
		}
		for f := range b.ord {
			if f == feature && !(defaultLeft && missRows > 0) {
				continue // the left half is already this order's prefix
			}
			presort.PartitionBySide(b.ord[f], lo, hi, b.side, b.buf)
		}
	}

	b.t.importance[feature] += gain * float64(wTotal)

	l := b.grow(lo, lo+nlRows, wLeft, wPosLeft, depth+1)
	r := b.grow(lo+nlRows, hi, wRight, wPosRight, depth+1)
	b.t.nodes[nodeIdx].feature = feature
	b.t.nodes[nodeIdx].threshold = threshold
	b.t.nodes[nodeIdx].left = l
	b.t.nodes[nodeIdx].right = r
	b.t.nodes[nodeIdx].defaultLeft = defaultLeft
	return nodeIdx
}

// isLeaf reports whether a segment with the given weighted totals
// terminates immediately: pure, under the split minimum, or at the
// depth limit. grow's early return and the partition-skip for
// guaranteed-leaf children must agree on this exact predicate.
func (b *builder) isLeaf(wTotal, wPos, depth int) bool {
	return leafStop(b.cfg, wTotal, wPos, depth)
}

// leafStop is the leaf predicate shared by the exact and binned
// builders, so both paths terminate on identical conditions.
func leafStop(cfg Config, wTotal, wPos, depth int) bool {
	return wPos == 0 || wPos == wTotal ||
		wTotal < cfg.minSplit() ||
		(cfg.MaxDepth > 0 && depth >= cfg.MaxDepth)
}

// bestSplit searches the (possibly subsampled) features for the split
// that maximizes Gini-impurity decrease, scanning each candidate's
// presorted segment once. It returns feature -1 when no split improves
// impurity, otherwise the split plus the left half's weighted totals
// and the default direction for missing values.
//
// Features with missing (NaN) values get XGBoost-style sparsity-aware
// routing: the missing rows sit in a contiguous tail of the presorted
// segment, and every candidate cut over the finite prefix is evaluated
// twice — missing routed left and missing routed right — keeping
// whichever direction yields the larger impurity decrease. A feature
// with no finite values in the segment is never split on.
func (b *builder) bestSplit(lo, hi, wTotal, wPos int) (feature int, threshold, gain float64, wLeft, wPosLeft int, defaultLeft bool) {
	parentImpurity := gini(wPos, wTotal)
	if parentImpurity == 0 {
		return -1, 0, 0, 0, 0, false
	}

	nCand := b.cfg.MaxFeatures
	if nCand <= 0 || nCand > len(b.feat) {
		nCand = len(b.feat)
	}
	// Partial Fisher-Yates to draw nCand distinct features.
	for i := 0; i < nCand; i++ {
		j := i + b.rng.Intn(len(b.feat)-i)
		b.feat[i], b.feat[j] = b.feat[j], b.feat[i]
	}

	feature = -1
	bestGain := 1e-12 // require strictly positive improvement
	minLeaf := b.cfg.minLeaf()

	// consider records a candidate cut with the given left totals and
	// missing-value direction. Shared by the missing-aware scan only;
	// the all-finite fast path keeps its branch-free inline form.
	consider := func(f int, thr float64, nl, posL int, missLeft bool) {
		nr := wTotal - nl
		if nl < minLeaf || nr < minLeaf {
			return
		}
		g := parentImpurity -
			(float64(nl)*gini(posL, nl)+float64(nr)*gini(wPos-posL, nr))/float64(wTotal)
		if g > bestGain {
			bestGain = g
			feature = f
			threshold = thr
			wLeft = nl
			wPosLeft = posL
			defaultLeft = missLeft
		}
	}

	for c := 0; c < nCand; c++ {
		f := b.feat[c]
		col := b.cols[f]
		o := b.ord[f]

		// Weighted totals of the missing (NaN) tail, if any.
		missW, missPos := 0, 0
		fhi := hi
		for fhi > lo {
			i := o[fhi-1]
			if col[i] == col[i] {
				break
			}
			wyv := b.wy[i]
			wi := int(wyv >> 1)
			missW += wi
			missPos += wi * int(wyv&1)
			fhi--
		}

		if missW == 0 {
			// All-finite fast path: identical to the pre-missing-value
			// scan, so clean data costs (and produces) exactly the same.
			leftW, leftPos := 0, 0
			for k := lo; k < hi-1; k++ {
				i := o[k]
				wyv := b.wy[i]
				wi := int(wyv >> 1)
				leftW += wi
				leftPos += wi * int(wyv&1)
				v := col[i]
				next := col[o[k+1]]
				if v == next {
					continue // can't split between equal values
				}
				nl := leftW
				nr := wTotal - leftW
				if nl < minLeaf || nr < minLeaf {
					continue
				}
				g := parentImpurity -
					(float64(nl)*gini(leftPos, nl)+float64(nr)*gini(wPos-leftPos, nr))/float64(wTotal)
				if g > bestGain {
					bestGain = g
					feature = f
					// Midpoint threshold is robust to unseen values
					// between the two training points. For adjacent
					// floats the midpoint rounds up to next itself, which
					// would route next-valued rows left while the scan
					// counted them right; fall back to v so the cut
					// always lands strictly left of next.
					threshold = (v + next) / 2
					if threshold >= next {
						threshold = v
					}
					wLeft = leftW
					wPosLeft = leftPos
					defaultLeft = false
				}
			}
			continue
		}

		if fhi == lo {
			continue // every value missing: nothing to split on
		}

		// Cuts between finite values, trying both default directions.
		leftW, leftPos := 0, 0
		for k := lo; k < fhi-1; k++ {
			i := o[k]
			wyv := b.wy[i]
			wi := int(wyv >> 1)
			leftW += wi
			leftPos += wi * int(wyv&1)
			v := col[i]
			next := col[o[k+1]]
			if v == next {
				continue
			}
			thr := (v + next) / 2
			if thr >= next {
				thr = v
			}
			consider(f, thr, leftW, leftPos, false)
			consider(f, thr, leftW+missW, leftPos+missPos, true)
		}
		// The finite/missing boundary itself: every finite value left,
		// missing right, cut at the largest finite value.
		consider(f, col[o[fhi-1]], wTotal-missW, wPos-missPos, false)
	}
	if feature < 0 {
		return -1, 0, 0, 0, 0, false
	}
	return feature, threshold, bestGain, wLeft, wPosLeft, defaultLeft
}

// gini returns the Gini impurity of a node with pos positives among n.
func gini(pos, n int) float64 {
	if n == 0 {
		return 0
	}
	p := float64(pos) / float64(n)
	return 2 * p * (1 - p)
}

// PredictProba returns the positive-class probability for one sample
// given as a row-major feature vector of length NumFeatures. Missing
// (NaN) feature values follow each node's learned default direction.
func (t *Classifier) PredictProba(x []float64) float64 {
	i := 0
	for {
		nd := &t.nodes[i]
		if nd.feature < 0 {
			return nd.prob
		}
		v := x[nd.feature]
		if v <= nd.threshold || (v != v && nd.defaultLeft) {
			i = nd.left
		} else {
			i = nd.right
		}
	}
}

// PredictProbaBatch scores every row of column-major data (cols[f][i]
// is feature f of row i), writing row i's positive-class probability
// into out[i]. cols must have NumFeatures columns, each at least
// len(out) long. Reading feature columns directly avoids gathering a
// row vector per sample.
//
// The (cols, out) error shape is shared with forest.Forest and
// gbdt.Model (and their flat-compiled forms), so ensemble-agnostic
// callers need no per-family adapters.
func (t *Classifier) PredictProbaBatch(cols [][]float64, out []float64) error {
	if len(cols) != t.nFeatures {
		return fmt.Errorf("%w: %d columns, fitted with %d", ErrShapeMismatch, len(cols), t.nFeatures)
	}
	for f, c := range cols {
		if len(c) < len(out) {
			return fmt.Errorf("%w: column %d has %d rows, out has %d", ErrShapeMismatch, f, len(c), len(out))
		}
	}
	for i := range out {
		out[i] = 0
	}
	t.PredictProbaBatchAdd(cols, out)
	return nil
}

// PredictProbaBatchAdd adds each row's positive-class probability into
// out[i] (without zeroing), letting ensemble callers accumulate the sum
// over many trees in a single output buffer.
func (t *Classifier) PredictProbaBatchAdd(cols [][]float64, out []float64) {
	nodes := t.nodes
	for i := range out {
		k := 0
		for {
			nd := &nodes[k]
			if nd.feature < 0 {
				out[i] += nd.prob
				break
			}
			v := cols[nd.feature][i]
			if v <= nd.threshold || (v != v && nd.defaultLeft) {
				k = nd.left
			} else {
				k = nd.right
			}
		}
	}
}

// NumFeatures returns the feature count the tree was fitted with.
func (t *Classifier) NumFeatures() int { return t.nFeatures }

// NumNodes returns the total node count (internal + leaves).
func (t *Classifier) NumNodes() int { return len(t.nodes) }

// Depth returns the depth of the deepest node (root = 0).
func (t *Classifier) Depth() int { return t.depth }

// Importance returns the per-feature total impurity decrease
// (sample-weighted, unnormalized). The caller owns the returned slice.
func (t *Classifier) Importance() []float64 {
	return append([]float64(nil), t.importance...)
}

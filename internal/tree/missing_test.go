package tree

import (
	"math"
	"reflect"
	"testing"
)

// missingInformative builds a dataset where missingness itself carries
// the label: positives have a NaN value in feature 0, negatives are
// finite. Feature 1 is uninformative noise.
func missingInformative(n int) (cols [][]float64, y []int) {
	cols = [][]float64{make([]float64, n), make([]float64, n)}
	y = make([]int, n)
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			y[i] = 1
			cols[0][i] = math.NaN()
		} else {
			cols[0][i] = float64(i % 17)
		}
		cols[1][i] = float64((i * 7) % 13)
	}
	return cols, y
}

func TestFitLearnsDefaultDirection(t *testing.T) {
	cols, y := missingInformative(200)
	c, err := FitClassifier(cols, y, nil, Config{MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	pMissing := c.PredictProba([]float64{math.NaN(), 5})
	pPresent := c.PredictProba([]float64{3, 5})
	if pMissing < 0.9 {
		t.Errorf("P(pos | feature missing) = %v, want >= 0.9", pMissing)
	}
	if pPresent > 0.1 {
		t.Errorf("P(pos | feature present) = %v, want <= 0.1", pPresent)
	}
}

func TestFitMissingOppositeDirection(t *testing.T) {
	// Same construction, labels flipped: NaN now marks negatives, so the
	// learned default direction must route missing to the negative leaf.
	cols, y := missingInformative(200)
	for i := range y {
		y[i] = 1 - y[i]
	}
	c, err := FitClassifier(cols, y, nil, Config{MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	if p := c.PredictProba([]float64{math.NaN(), 5}); p > 0.1 {
		t.Errorf("P(pos | feature missing) = %v, want <= 0.1", p)
	}
}

func TestFitAllMissingColumnNeverSplit(t *testing.T) {
	n := 100
	cols := [][]float64{make([]float64, n), make([]float64, n)}
	y := make([]int, n)
	for i := 0; i < n; i++ {
		cols[0][i] = math.NaN()
		cols[1][i] = float64(i)
		if i >= n/2 {
			y[i] = 1
		}
	}
	c, err := FitClassifier(cols, y, nil, Config{MaxDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if imp := c.Importance(); imp[0] != 0 {
		t.Errorf("all-NaN column importance = %v, want 0", imp[0])
	}
	if c.NumNodes() < 3 {
		t.Errorf("tree did not split on the informative column at all")
	}
}

func TestFitMissingDeterministic(t *testing.T) {
	cols, y := missingInformative(300)
	// Sprinkle partial missingness into the second feature too.
	for i := 0; i < 300; i += 7 {
		cols[1][i] = math.NaN()
	}
	cfg := Config{MaxDepth: 5, MaxFeatures: 1, Seed: 42}
	a, err := FitClassifier(cols, y, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FitClassifier(cols, y, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Export(), b.Export()) {
		t.Error("two fits with identical data, config, and seed differ")
	}
}

func TestExportImportPreservesDefaultDirection(t *testing.T) {
	// Positives sit at low values with a third of them missing;
	// negatives at high values. The best split joins the missing mass to
	// the LEFT (low/positive) side, forcing a missing-left default.
	n := 200
	cols := [][]float64{make([]float64, n), make([]float64, n)}
	y := make([]int, n)
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			y[i] = 1
			cols[0][i] = float64(i % 9)
			if i%6 == 0 {
				cols[0][i] = math.NaN()
			}
		} else {
			cols[0][i] = 20 + float64(i%9)
		}
		cols[1][i] = float64((i * 7) % 13)
	}
	c, err := FitClassifier(cols, y, nil, Config{MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	if p := c.PredictProba([]float64{math.NaN(), 5}); p < 0.9 {
		t.Errorf("P(pos | missing) = %v, want >= 0.9 via missing-left routing", p)
	}
	enc := c.Export()
	anyLeft := false
	for _, dl := range enc.DefaultLeft {
		anyLeft = anyLeft || dl
	}
	got, err := Import(enc)
	if err != nil {
		t.Fatal(err)
	}
	probes := [][]float64{
		{math.NaN(), 5},
		{3, math.NaN()},
		{math.NaN(), math.NaN()},
		{8, 2},
	}
	for _, x := range probes {
		if a, b := c.PredictProba(x), got.PredictProba(x); a != b {
			t.Errorf("prediction drift after roundtrip on %v: %v vs %v", x, a, b)
		}
	}
	// The informative-missing construction must have produced at least
	// one missing-left node for this roundtrip test to mean anything.
	if !anyLeft {
		t.Error("no node learned a missing-left default; construction is broken")
	}
}

func TestImportLegacyEncodingRoutesMissingRight(t *testing.T) {
	// A hand-built single-split encoding without DefaultLeft must keep
	// the historical behaviour: NaN fails v <= threshold and goes right.
	enc := Encoded{
		Feature:   []int{0, -1, -1},
		Threshold: []float64{5, 0, 0},
		Left:      []int{1, 0, 0},
		Right:     []int{2, 0, 0},
		Prob:      []float64{0.5, 0.1, 0.9},
		NFeatures: 1,
	}
	c, err := Import(enc)
	if err != nil {
		t.Fatal(err)
	}
	if p := c.PredictProba([]float64{math.NaN()}); p != 0.9 {
		t.Errorf("legacy encoding routed NaN to prob %v, want right leaf 0.9", p)
	}
}

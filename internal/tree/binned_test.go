package tree

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/hist"
)

// lowCardData builds SMART-like low-cardinality columns (integer
// counters, a sprinkling of NaNs) with a planted signal.
func lowCardData(n, features int, seed int64) (cols [][]float64, y []int) {
	rng := rand.New(rand.NewSource(seed))
	y = make([]int, n)
	cols = make([][]float64, features)
	for f := range cols {
		cols[f] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.2 {
			y[i] = 1
		}
		for f := range cols {
			v := float64(rng.Intn(8))
			if y[i] == 1 && f%2 == 0 {
				v += float64(rng.Intn(3))
			}
			if rng.Float64() < 0.05 {
				v = math.NaN()
			}
			cols[f][i] = v
		}
	}
	return cols, y
}

// TestBinnedMatchesExactOnLowCardinality pins the equivalence the
// binned path is designed around: on columns with fewer distinct values
// than bins, every bin boundary present in a node is an exact-path
// candidate with the same weighted partition, so the grown trees route
// every in-bag (weight > 0) row identically and accumulate identical
// importances. Out-of-bag rows may diverge: a value absent from a
// node's in-bag rows can fall between the exact path's node-local
// midpoint and the binned path's global boundary for the same split.
func TestBinnedMatchesExactOnLowCardinality(t *testing.T) {
	cols, y := lowCardData(600, 7, 11)
	weights := make([]int, len(y))
	rng := rand.New(rand.NewSource(3))
	for i := range weights {
		weights[i] = rng.Intn(3)
	}
	cfg := Config{MaxDepth: 6, MaxFeatures: 3, Seed: 5}

	exact, err := FitClassifierPresorted(Presort(cols), y, weights, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	binned, err := FitClassifierBinned(hist.Bin(cols, 0), y, weights, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}

	row := make([]float64, len(cols))
	for i := range y {
		if weights[i] == 0 {
			continue
		}
		for f := range cols {
			row[f] = cols[f][i]
		}
		pe, pb := exact.PredictProba(row), binned.PredictProba(row)
		if pe != pb {
			t.Fatalf("in-bag row %d: exact %v, binned %v", i, pe, pb)
		}
	}
	for f := range cols {
		ie, ib := exact.Importance()[f], binned.Importance()[f]
		if math.Abs(ie-ib) > 1e-9*(1+math.Abs(ie)) {
			t.Errorf("importance[%d]: exact %v, binned %v", f, ie, ib)
		}
	}
}

// TestBinnedDeterministic asserts two identically configured binned
// fits (with and without a reused scratch) produce identical trees.
func TestBinnedDeterministic(t *testing.T) {
	cols, y := lowCardData(400, 5, 2)
	weights := make([]int, len(y))
	for i := range weights {
		weights[i] = 1 + i%2
	}
	bm := hist.Bin(cols, 0)
	cfg := Config{MaxDepth: 8, MaxFeatures: 2, Seed: 9}

	a, err := FitClassifierBinned(bm, y, weights, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	sc := NewHistScratch()
	b1, err := FitClassifierBinned(bm, y, weights, cfg, sc)
	if err != nil {
		t.Fatal(err)
	}
	// Reuse the scratch once more to catch stale-state bugs.
	b2, err := FitClassifierBinned(bm, y, weights, cfg, sc)
	if err != nil {
		t.Fatal(err)
	}

	row := make([]float64, len(cols))
	for i := range y {
		for f := range cols {
			row[f] = cols[f][i]
		}
		pa, p1, p2 := a.PredictProba(row), b1.PredictProba(row), b2.PredictProba(row)
		if pa != p1 || pa != p2 {
			t.Fatalf("row %d: fits disagree: %v %v %v", i, pa, p1, p2)
		}
	}
}

// TestBinnedAllMissingFeature asserts a column with no finite values is
// never split on and does not break the fit.
func TestBinnedAllMissingFeature(t *testing.T) {
	n := 100
	nan := math.NaN()
	allMiss := make([]float64, n)
	signal := make([]float64, n)
	y := make([]int, n)
	weights := make([]int, n)
	for i := range signal {
		allMiss[i] = nan
		signal[i] = float64(i % 5)
		if i%5 >= 3 {
			y[i] = 1
		}
		weights[i] = 1
	}
	bm := hist.Bin([][]float64{allMiss, signal}, 0)
	c, err := FitClassifierBinned(bm, y, weights, Config{MaxDepth: 4, Seed: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.Importance()[0] != 0 {
		t.Errorf("all-missing feature has importance %v", c.Importance()[0])
	}
	if c.Importance()[1] == 0 {
		t.Errorf("signal feature unused")
	}
}

package tree

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// xorData builds a 2-feature XOR-like dataset that a depth-1 stump
// cannot solve but a depth-2 tree can.
func xorData(n int, seed int64) (cols [][]float64, y []int) {
	rng := rand.New(rand.NewSource(seed))
	a := make([]float64, n)
	b := make([]float64, n)
	y = make([]int, n)
	for i := 0; i < n; i++ {
		a[i] = rng.Float64()
		b[i] = rng.Float64()
		if (a[i] > 0.5) != (b[i] > 0.5) {
			y[i] = 1
		}
	}
	return [][]float64{a, b}, y
}

func TestFitClassifierSimpleSplit(t *testing.T) {
	// One perfectly separating feature.
	cols := [][]float64{{1, 2, 3, 10, 11, 12}}
	y := []int{0, 0, 0, 1, 1, 1}
	c, err := FitClassifier(cols, y, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if p := c.PredictProba([]float64{2}); p != 0 {
		t.Errorf("PredictProba(2) = %v, want 0", p)
	}
	if p := c.PredictProba([]float64{11}); p != 1 {
		t.Errorf("PredictProba(11) = %v, want 1", p)
	}
	// Threshold between 3 and 10: midpoint semantics.
	if p := c.PredictProba([]float64{6}); p != 0 {
		t.Errorf("PredictProba(6) = %v, want 0 (midpoint 6.5)", p)
	}
	if p := c.PredictProba([]float64{7}); p != 1 {
		t.Errorf("PredictProba(7) = %v, want 1", p)
	}
}

func TestFitClassifierXOR(t *testing.T) {
	// An unlimited-depth tree memorizes any dataset with distinct
	// points, including XOR, which greedy shallow trees cannot solve.
	cols, y := xorData(400, 1)
	c, err := FitClassifier(cols, y, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	x := make([]float64, 2)
	for i := range y {
		x[0], x[1] = cols[0][i], cols[1][i]
		pred := 0
		if c.PredictProba(x) >= 0.5 {
			pred = 1
		}
		if pred == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(y)); acc < 0.99 {
		t.Errorf("XOR training accuracy = %v, want >= 0.99", acc)
	}
}

func TestMaxDepthRespected(t *testing.T) {
	cols, y := xorData(500, 2)
	for _, depth := range []int{1, 2, 3, 5} {
		c, err := FitClassifier(cols, y, nil, Config{MaxDepth: depth})
		if err != nil {
			t.Fatal(err)
		}
		if c.Depth() > depth {
			t.Errorf("depth = %d, want <= %d", c.Depth(), depth)
		}
	}
}

func TestMinLeafRespected(t *testing.T) {
	cols, y := xorData(300, 3)
	c, err := FitClassifier(cols, y, nil, Config{MinLeafSamples: 30})
	if err != nil {
		t.Fatal(err)
	}
	for _, nd := range c.nodes {
		if nd.feature < 0 && nd.samples < 30 {
			t.Errorf("leaf with %d samples, want >= 30", nd.samples)
		}
	}
}

func TestPureNodeIsLeaf(t *testing.T) {
	cols := [][]float64{{1, 2, 3}}
	y := []int{1, 1, 1}
	c, err := FitClassifier(cols, y, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if c.NumNodes() != 1 {
		t.Errorf("pure data should produce a single leaf, got %d nodes", c.NumNodes())
	}
	if p := c.PredictProba([]float64{99}); p != 1 {
		t.Errorf("pure-positive leaf prob = %v", p)
	}
}

func TestConstantFeatureNoSplit(t *testing.T) {
	cols := [][]float64{{5, 5, 5, 5}}
	y := []int{0, 1, 0, 1}
	c, err := FitClassifier(cols, y, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if c.NumNodes() != 1 {
		t.Errorf("constant feature should not split, got %d nodes", c.NumNodes())
	}
	if p := c.PredictProba([]float64{5}); p != 0.5 {
		t.Errorf("prob = %v, want 0.5", p)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := FitClassifier(nil, []int{0}, nil, Config{}); !errors.Is(err, ErrNoData) {
		t.Errorf("no columns error = %v", err)
	}
	if _, err := FitClassifier([][]float64{{1, 2}}, []int{0}, nil, Config{}); !errors.Is(err, ErrShapeMismatch) {
		t.Errorf("shape error = %v", err)
	}
	if _, err := FitClassifier([][]float64{{1}}, []int{0}, []int{}, Config{}); !errors.Is(err, ErrNoData) {
		t.Errorf("empty idx error = %v", err)
	}
}

func TestBootstrapIndices(t *testing.T) {
	// Fit on a bootstrap that only contains positive rows.
	cols := [][]float64{{1, 2, 3, 4}}
	y := []int{0, 0, 1, 1}
	c, err := FitClassifier(cols, y, []int{2, 3, 2, 3}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if p := c.PredictProba([]float64{1}); p != 1 {
		t.Errorf("bootstrap-of-positives prob = %v, want 1", p)
	}
}

func TestImportanceIdentifiesSignal(t *testing.T) {
	// Feature 0 is pure signal; feature 1 is noise.
	rng := rand.New(rand.NewSource(4))
	n := 500
	signal := make([]float64, n)
	noise := make([]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		signal[i] = rng.Float64()
		noise[i] = rng.Float64()
		if signal[i] > 0.5 {
			y[i] = 1
		}
	}
	c, err := FitClassifier([][]float64{signal, noise}, y, nil, Config{MaxDepth: 5})
	if err != nil {
		t.Fatal(err)
	}
	imp := c.Importance()
	if imp[0] <= imp[1] {
		t.Errorf("importance(signal)=%v should exceed importance(noise)=%v", imp[0], imp[1])
	}
	// Importance must be a copy.
	imp[0] = -1
	if c.Importance()[0] == -1 {
		t.Error("Importance should return a copy")
	}
}

func TestDeterminism(t *testing.T) {
	cols, y := xorData(300, 5)
	cfg := Config{MaxDepth: 6, MaxFeatures: 1, Seed: 42}
	a, err := FitClassifier(cols, y, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FitClassifier(cols, y, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumNodes() != b.NumNodes() {
		t.Fatalf("node counts differ: %d vs %d", a.NumNodes(), b.NumNodes())
	}
	x := make([]float64, 2)
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 100; trial++ {
		x[0], x[1] = rng.Float64(), rng.Float64()
		if a.PredictProba(x) != b.PredictProba(x) {
			t.Fatal("same seed should produce identical trees")
		}
	}
}

func TestPredictionsAreValidProbabilities(t *testing.T) {
	cols, y := xorData(300, 7)
	c, err := FitClassifier(cols, y, nil, Config{MaxDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	x := make([]float64, 2)
	for trial := 0; trial < 200; trial++ {
		x[0], x[1] = rng.Float64()*2-0.5, rng.Float64()*2-0.5
		p := c.PredictProba(x)
		if p < 0 || p > 1 {
			t.Fatalf("probability out of range: %v", p)
		}
	}
}

func TestAdjacentFloatThresholds(t *testing.T) {
	// Columns whose sorted neighbors are adjacent floats force the
	// midpoint (v+next)/2 to round to next itself; the fit must then
	// cut at v so the partition routes rows exactly as the split scan
	// counted them. Before that fallback, descendant weight totals
	// drifted from the rows actually present, and leaf "probabilities"
	// escaped [0, 1].
	rng := rand.New(rand.NewSource(5))
	const n = 600
	base := []float64{0.1, 1.0 / 3.0, 0.7}
	cols := make([][]float64, 4)
	for f := range cols {
		c := make([]float64, n)
		for i := range c {
			v := base[rng.Intn(len(base))]
			for k := rng.Intn(3); k > 0; k-- {
				v = math.Nextafter(v, 2)
			}
			c[i] = v
		}
		cols[f] = c
	}
	y := make([]int, n)
	for i := range y {
		if rng.Float64() < 0.4 {
			y[i] = 1
		}
	}
	// Bootstrap duplicates exercise the weighted path too.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = rng.Intn(n)
	}
	c, err := FitClassifier(cols, y, idx, Config{MaxDepth: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if c.NumNodes() < 3 {
		t.Fatalf("no splits on adjacent-float data: %d nodes", c.NumNodes())
	}
	probs := make([]float64, n)
	c.PredictProbaBatch(cols, probs)
	for i, p := range probs {
		if p < 0 || p > 1 {
			t.Fatalf("row %d probability out of range: %v", i, p)
		}
	}
}

func TestPresortedFitMatchesLegacy(t *testing.T) {
	// A shared presort + weighted bootstrap must produce the same tree
	// as the index-list entry point, including across reuses of one
	// Scratch (the forest's per-worker pattern).
	cols, y := xorData(300, 9)
	ps := Presort(cols)
	sc := NewScratch()
	rng := rand.New(rand.NewSource(10))
	probe := make([]float64, 2)
	for trial := 0; trial < 5; trial++ {
		idx := make([]int, len(y))
		w := make([]int, len(y))
		for i := range idx {
			idx[i] = rng.Intn(len(y))
			w[idx[i]]++
		}
		cfg := Config{MaxDepth: 7, MaxFeatures: 1, Seed: int64(trial)}
		a, err := FitClassifier(cols, y, idx, cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := FitClassifierPresorted(ps, y, w, cfg, sc)
		if err != nil {
			t.Fatal(err)
		}
		if a.NumNodes() != b.NumNodes() || a.Depth() != b.Depth() {
			t.Fatalf("trial %d: structure differs: %d/%d nodes, %d/%d depth",
				trial, a.NumNodes(), b.NumNodes(), a.Depth(), b.Depth())
		}
		for i := range a.nodes {
			if a.nodes[i] != b.nodes[i] {
				t.Fatalf("trial %d: node %d differs: %+v vs %+v", trial, i, a.nodes[i], b.nodes[i])
			}
		}
		for probeTrial := 0; probeTrial < 50; probeTrial++ {
			probe[0], probe[1] = rng.Float64(), rng.Float64()
			if a.PredictProba(probe) != b.PredictProba(probe) {
				t.Fatalf("trial %d: predictions differ", trial)
			}
		}
	}
}

func TestPredictProbaBatchMatchesSingle(t *testing.T) {
	cols, y := xorData(400, 12)
	c, err := FitClassifier(cols, y, nil, Config{MaxDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, len(y))
	c.PredictProbaBatch(cols, out)
	x := make([]float64, 2)
	for i := range out {
		x[0], x[1] = cols[0][i], cols[1][i]
		if want := c.PredictProba(x); out[i] != want {
			t.Fatalf("row %d: batch %v != single %v", i, out[i], want)
		}
	}

	// The additive variant accumulates on top of existing content.
	acc := make([]float64, len(y))
	c.PredictProbaBatchAdd(cols, acc)
	c.PredictProbaBatchAdd(cols, acc)
	for i := range acc {
		if acc[i] != 2*out[i] {
			t.Fatalf("row %d: accumulated %v != 2*%v", i, acc[i], out[i])
		}
	}
}

func TestGini(t *testing.T) {
	tests := []struct {
		pos, n int
		want   float64
	}{
		{0, 10, 0}, {10, 10, 0}, {5, 10, 0.5}, {0, 0, 0},
	}
	for _, tt := range tests {
		if got := gini(tt.pos, tt.n); got != tt.want {
			t.Errorf("gini(%d, %d) = %v, want %v", tt.pos, tt.n, got, tt.want)
		}
	}
}

func BenchmarkFitClassifier(b *testing.B) {
	cols, y := xorData(2000, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitClassifier(cols, y, nil, Config{MaxDepth: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredictProba(b *testing.B) {
	cols, y := xorData(2000, 11)
	c, err := FitClassifier(cols, y, nil, Config{MaxDepth: 10})
	if err != nil {
		b.Fatal(err)
	}
	x := []float64{0.3, 0.7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.PredictProba(x)
	}
}

package tree

import (
	"errors"
	"fmt"
)

// Encoded is the serializable form of a fitted classification tree:
// parallel arrays over nodes, suitable for JSON or gob. Leaves have
// Feature[i] == -1.
type Encoded struct {
	Feature   []int
	Threshold []float64
	Left      []int
	Right     []int
	Prob      []float64
	// DefaultLeft records, per internal node, where rows with a missing
	// (NaN) split-feature value are routed. Omitted (nil) in encodings
	// predating missing-value support, which routed missing right.
	DefaultLeft []bool
	NFeatures   int
}

// ErrBadEncoding indicates an Encoded value that does not describe a
// valid tree.
var ErrBadEncoding = errors.New("tree: bad encoding")

// Export returns the serializable form of the tree. Importances and
// training-only state are not exported; a re-imported tree predicts
// identically but cannot report importance.
func (t *Classifier) Export() Encoded {
	n := len(t.nodes)
	e := Encoded{
		Feature:     make([]int, n),
		Threshold:   make([]float64, n),
		Left:        make([]int, n),
		Right:       make([]int, n),
		Prob:        make([]float64, n),
		DefaultLeft: make([]bool, n),
		NFeatures:   t.nFeatures,
	}
	for i, nd := range t.nodes {
		e.Feature[i] = nd.feature
		e.Threshold[i] = nd.threshold
		e.Left[i] = nd.left
		e.Right[i] = nd.right
		e.Prob[i] = nd.prob
		e.DefaultLeft[i] = nd.defaultLeft
	}
	return e
}

// Import reconstructs a prediction-ready classifier from its encoded
// form, validating structural invariants (array alignment, child
// indices in range, no self-links).
func Import(e Encoded) (*Classifier, error) {
	n := len(e.Feature)
	if n == 0 {
		return nil, fmt.Errorf("%w: no nodes", ErrBadEncoding)
	}
	if len(e.Threshold) != n || len(e.Left) != n || len(e.Right) != n || len(e.Prob) != n {
		return nil, fmt.Errorf("%w: misaligned arrays", ErrBadEncoding)
	}
	if e.DefaultLeft != nil && len(e.DefaultLeft) != n {
		return nil, fmt.Errorf("%w: misaligned arrays", ErrBadEncoding)
	}
	if e.NFeatures <= 0 {
		return nil, fmt.Errorf("%w: NFeatures = %d", ErrBadEncoding, e.NFeatures)
	}
	t := &Classifier{nFeatures: e.NFeatures, nodes: make([]node, n)}
	for i := 0; i < n; i++ {
		f := e.Feature[i]
		if f >= e.NFeatures {
			return nil, fmt.Errorf("%w: node %d splits feature %d of %d", ErrBadEncoding, i, f, e.NFeatures)
		}
		if f >= 0 {
			l, r := e.Left[i], e.Right[i]
			if l <= i || r <= i || l >= n || r >= n {
				// Children always follow parents in the builder's
				// append order; anything else cannot terminate.
				return nil, fmt.Errorf("%w: node %d has children %d/%d", ErrBadEncoding, i, l, r)
			}
		}
		if e.Prob[i] < 0 || e.Prob[i] > 1 {
			return nil, fmt.Errorf("%w: node %d prob %v", ErrBadEncoding, i, e.Prob[i])
		}
		t.nodes[i] = node{
			feature:   f,
			threshold: e.Threshold[i],
			left:      e.Left[i],
			right:     e.Right[i],
			prob:      e.Prob[i],
		}
		if e.DefaultLeft != nil {
			t.nodes[i].defaultLeft = e.DefaultLeft[i]
		}
	}
	return t, nil
}

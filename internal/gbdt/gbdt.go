// Package gbdt implements an XGBoost-style gradient-boosted decision
// tree binary classifier from scratch: second-order (Newton) boosting
// with logistic loss, L2 leaf regularization (lambda), a minimum split
// gain (gamma), shrinkage (eta), and minimum child hessian weight. It
// exposes the two feature-importance evaluations the paper attributes
// to XGBoost: total split gain per feature and split count ("weight").
package gbdt

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/hist"
	"repro/internal/presort"
)

// Errors returned by GBDT fitting.
var (
	// ErrNoData indicates a fit over zero samples or zero features.
	ErrNoData = errors.New("gbdt: no training data")
	// ErrNotFitted indicates use of an unfitted model.
	ErrNotFitted = errors.New("gbdt: not fitted")
	// ErrNoTrainingState indicates an importance query on a model
	// without training-side state (e.g. one deserialized for
	// deployment).
	ErrNoTrainingState = errors.New("gbdt: no training state")
	// ErrShapeMismatch indicates prediction input whose shape does not
	// match the fitted model.
	ErrShapeMismatch = errors.New("gbdt: shape mismatch")
)

// Config controls boosting. DefaultConfig mirrors common XGBoost
// defaults scaled for this repository's workloads.
type Config struct {
	// NumRounds is the number of boosted trees (paper: 100).
	NumRounds int
	// MaxDepth limits each tree's depth; 0 means 6 (XGBoost default).
	MaxDepth int
	// Eta is the shrinkage (learning rate); 0 means 0.3.
	Eta float64
	// Lambda is the L2 regularization on leaf weights; 0 means 1.
	Lambda float64
	// Gamma is the minimum gain required to split; negative is treated
	// as 0.
	Gamma float64
	// MinChildWeight is the minimum hessian sum per child; 0 means 1.
	MinChildWeight float64
	// SplitMethod selects exact presorted split search (the zero value,
	// bit-identical to earlier releases) or the histogram-binned path
	// (see internal/hist), which quantizes the data once and reuses the
	// binning across every boosting round.
	SplitMethod hist.SplitMethod
	// MaxBins caps per-feature histogram bins (including the missing
	// bin) on the hist path; 0 means hist.DefaultMaxBins.
	MaxBins int
}

// DefaultConfig returns 100 rounds of depth-6 trees with eta 0.3,
// lambda 1.
func DefaultConfig() Config {
	return Config{NumRounds: 100, MaxDepth: 6, Eta: 0.3, Lambda: 1}
}

func (c Config) withDefaults() Config {
	if c.MaxDepth <= 0 {
		c.MaxDepth = 6
	}
	if c.Eta <= 0 {
		c.Eta = 0.3
	}
	if c.Lambda <= 0 {
		c.Lambda = 1
	}
	if c.Gamma < 0 {
		c.Gamma = 0
	}
	if c.MinChildWeight <= 0 {
		c.MinChildWeight = 1
	}
	return c
}

// regNode is one node of a Newton regression tree. Leaves have
// feature == -1 and carry the leaf weight.
type regNode struct {
	feature     int
	threshold   float64
	left        int
	right       int
	weight      float64
	defaultLeft bool // where rows with a missing (NaN) value go
}

// regTree is one fitted booster stage.
type regTree struct {
	nodes []regNode
}

func (t *regTree) predict(x []float64) float64 {
	i := 0
	for {
		nd := &t.nodes[i]
		if nd.feature < 0 {
			return nd.weight
		}
		v := x[nd.feature]
		if v <= nd.threshold || (v != v && nd.defaultLeft) {
			i = nd.left
		} else {
			i = nd.right
		}
	}
}

// Model is a fitted gradient-boosted classifier.
type Model struct {
	trees     []*regTree
	base      float64 // initial log-odds
	cfg       Config
	nFeatures int
	gain      []float64 // total split gain per feature
	splits    []int     // split count per feature
}

// Fit trains a boosted model on column-major data with binary labels.
func Fit(cols [][]float64, y []int, cfg Config) (*Model, error) {
	if len(cols) == 0 || len(y) == 0 {
		return nil, ErrNoData
	}
	for f, c := range cols {
		if len(c) != len(y) {
			return nil, fmt.Errorf("gbdt: column %d has %d rows, labels have %d", f, len(c), len(y))
		}
	}
	if cfg.NumRounds <= 0 {
		return nil, fmt.Errorf("gbdt: NumRounds must be positive, got %d", cfg.NumRounds)
	}
	cfg = cfg.withDefaults()

	n := len(y)
	pos := 0
	for _, v := range y {
		pos += v
	}
	// Initial prediction: log-odds of the base rate, clamped away from
	// the degenerate single-class case.
	p0 := (float64(pos) + 0.5) / (float64(n) + 1)
	base := math.Log(p0 / (1 - p0))

	m := &Model{
		base:      base,
		cfg:       cfg,
		nFeatures: len(cols),
		gain:      make([]float64, len(cols)),
		splits:    make([]int, len(cols)),
	}

	if cfg.SplitMethod == hist.SplitHist {
		m.fitHist(cols, y)
		return m, nil
	}

	// Presort row indices per feature once (shared sort machinery with
	// internal/tree); every tree reuses the ordering through the nodeOf
	// partition masks.
	order := presort.All(cols)

	margin := make([]float64, n)
	for i := range margin {
		margin[i] = base
	}
	grad := make([]float64, n)
	hess := make([]float64, n)
	nodeOf := make([]int32, n) // which leaf each sample currently sits in

	for round := 0; round < cfg.NumRounds; round++ {
		for i := 0; i < n; i++ {
			p := sigmoid(margin[i])
			grad[i] = p - float64(y[i])
			hess[i] = p * (1 - p)
		}
		t := m.growTree(cols, order, grad, hess, nodeOf)
		m.trees = append(m.trees, t)
		// Margin update walks the columns directly; no per-row gather.
		t.predictBatchAdd(cols, cfg.Eta, margin)
	}
	return m, nil
}

// growTree grows one Newton regression tree level by level.
func (m *Model) growTree(cols [][]float64, order [][]int32, grad, hess []float64, nodeOf []int32) *regTree {
	cfg := m.cfg
	n := len(grad)
	t := &regTree{}

	var sumG, sumH float64
	for i := 0; i < n; i++ {
		sumG += grad[i]
		sumH += hess[i]
		nodeOf[i] = 0
	}
	t.nodes = append(t.nodes, regNode{feature: -1, weight: leafWeight(sumG, sumH, cfg.Lambda)})

	type nodeStat struct {
		id   int
		g, h float64
		size int
	}
	frontier := []nodeStat{{id: 0, g: sumG, h: sumH, size: n}}

	for depth := 0; depth < cfg.MaxDepth && len(frontier) > 0; depth++ {
		// Best split per frontier node, found by one pass per feature
		// over the presorted order. All per-node state lives in dense
		// slices indexed by frontier slot — the sample loop runs
		// n x features times per level, so a map lookup per sample
		// would dominate the whole fit.
		type split struct {
			feature     int
			threshold   float64
			gain        float64
			gl, hl      float64
			sizeL       int
			defaultLeft bool
		}
		// slotOf maps a node id to its frontier slot + 1 (0 = not in
		// the frontier).
		slotOf := make([]int32, len(t.nodes))
		for s, fs := range frontier {
			slotOf[fs.id] = int32(s + 1)
		}
		best := make([]split, len(frontier))
		for s := range best {
			best[s].feature = -1
		}
		// Per-node running left sums for the current feature.
		type acc struct {
			g, h  float64
			cnt   int
			lastV float64
			has   bool
		}
		accs := make([]acc, len(frontier))
		// Per-node grad/hess/count of the rows whose current feature is
		// missing (NaN). Missing rows sit in a contiguous tail of each
		// presorted order, so they are summed in one pass before the
		// finite scan and each candidate cut is tried with the missing
		// mass routed to either child (XGBoost's sparsity-aware split).
		missG := make([]float64, len(frontier))
		missH := make([]float64, len(frontier))
		missCnt := make([]int, len(frontier))
		for f := range cols {
			col := cols[f]
			ord := order[f]
			fin := len(ord)
			for fin > 0 {
				v := col[ord[fin-1]]
				if v == v {
					break
				}
				fin--
			}
			for s := range accs {
				accs[s] = acc{}
			}
			if fin == len(ord) {
				// All-finite fast path: identical to the scan that
				// predates missing-value support, bit for bit.
				for _, i := range ord {
					s := slotOf[nodeOf[i]] - 1
					if s < 0 {
						continue // sample not in a frontier node
					}
					a := &accs[s]
					fs := &frontier[s]
					v := col[i]
					// A split boundary exists before i when the value
					// changes and both sides are non-empty.
					if a.has && v != a.lastV && a.cnt > 0 && a.cnt < fs.size {
						gl, hl := a.g, a.h
						gr, hr := fs.g-gl, fs.h-hl
						if hl >= cfg.MinChildWeight && hr >= cfg.MinChildWeight {
							gain := splitGain(gl, hl, gr, hr, cfg.Lambda) - cfg.Gamma
							if gain > 0 {
								if cur := &best[s]; cur.feature < 0 || gain > cur.gain {
									// For adjacent floats the midpoint
									// rounds up to v itself, which would
									// route v-valued rows left while their
									// grad/hess were summed right; fall
									// back to lastV so the cut stays
									// strictly left of v.
									thr := (a.lastV + v) / 2
									if thr >= v {
										thr = a.lastV
									}
									*cur = split{
										feature:   f,
										threshold: thr,
										gain:      gain,
										gl:        gl, hl: hl,
										sizeL: a.cnt,
									}
								}
							}
						}
					}
					a.g += grad[i]
					a.h += hess[i]
					a.cnt++
					a.lastV = v
					a.has = true
				}
				continue
			}

			// Missing-aware path. Sum the NaN tail per frontier node…
			for s := range missG {
				missG[s], missH[s], missCnt[s] = 0, 0, 0
			}
			for _, i := range ord[fin:] {
				s := slotOf[nodeOf[i]] - 1
				if s < 0 {
					continue
				}
				missG[s] += grad[i]
				missH[s] += hess[i]
				missCnt[s]++
			}
			// tryCut records a candidate with the given left-child mass
			// and missing direction.
			tryCut := func(s int32, f int, thr, gl, hl float64, sizeL int, missLeft bool) {
				fs := &frontier[s]
				gr, hr := fs.g-gl, fs.h-hl
				if hl < cfg.MinChildWeight || hr < cfg.MinChildWeight {
					return
				}
				gain := splitGain(gl, hl, gr, hr, cfg.Lambda) - cfg.Gamma
				if gain <= 0 {
					return
				}
				if cur := &best[s]; cur.feature < 0 || gain > cur.gain {
					*cur = split{
						feature:   f,
						threshold: thr,
						gain:      gain,
						gl:        gl, hl: hl,
						sizeL:       sizeL,
						defaultLeft: missLeft,
					}
				}
			}
			// …then scan the finite prefix, trying each boundary with
			// the missing mass on the right (default) and on the left.
			for _, i := range ord[:fin] {
				s := slotOf[nodeOf[i]] - 1
				if s < 0 {
					continue
				}
				a := &accs[s]
				fs := &frontier[s]
				v := col[i]
				if a.has && v != a.lastV && a.cnt > 0 && a.cnt+missCnt[s] < fs.size {
					thr := (a.lastV + v) / 2
					if thr >= v {
						thr = a.lastV
					}
					tryCut(s, f, thr, a.g, a.h, a.cnt, false)
					if missCnt[s] > 0 {
						tryCut(s, f, thr, a.g+missG[s], a.h+missH[s], a.cnt+missCnt[s], true)
					}
				}
				a.g += grad[i]
				a.h += hess[i]
				a.cnt++
				a.lastV = v
				a.has = true
			}
			// The finite/missing boundary: every finite value left,
			// missing right, cut at the node's largest finite value.
			for s := range accs {
				a := &accs[s]
				if !a.has || missCnt[s] == 0 {
					continue
				}
				tryCut(int32(s), f, a.lastV, a.g, a.h, a.cnt, false)
			}
		}

		// Apply the chosen splits and build the next frontier.
		// childOf is indexed by parent node id; child ids are always
		// positive, so a zero entry means "no split".
		var next []nodeStat
		childOf := make([][2]int32, len(t.nodes))
		split2 := 0
		for s, fs := range frontier {
			sp := best[s]
			if sp.feature < 0 {
				continue
			}
			l := len(t.nodes)
			t.nodes = append(t.nodes,
				regNode{feature: -1, weight: leafWeight(sp.gl, sp.hl, cfg.Lambda)},
				regNode{feature: -1, weight: leafWeight(fs.g-sp.gl, fs.h-sp.hl, cfg.Lambda)},
			)
			nd := &t.nodes[fs.id]
			nd.feature = sp.feature
			nd.threshold = sp.threshold
			nd.left = l
			nd.right = l + 1
			nd.defaultLeft = sp.defaultLeft
			childOf[fs.id] = [2]int32{int32(l), int32(l + 1)}
			split2++
			m.gain[sp.feature] += sp.gain
			m.splits[sp.feature]++
			next = append(next,
				nodeStat{id: l, g: sp.gl, h: sp.hl, size: sp.sizeL},
				nodeStat{id: l + 1, g: fs.g - sp.gl, h: fs.h - sp.hl, size: fs.size - sp.sizeL},
			)
		}
		if split2 == 0 {
			break
		}
		// Reassign samples to children.
		for i := 0; i < n; i++ {
			id := nodeOf[i]
			ch := childOf[id]
			if ch[0] == 0 {
				continue
			}
			nd := &t.nodes[id]
			v := cols[nd.feature][i]
			if v <= nd.threshold || (v != v && nd.defaultLeft) {
				nodeOf[i] = ch[0]
			} else {
				nodeOf[i] = ch[1]
			}
		}
		frontier = next
	}
	return t
}

// leafWeight is the Newton-optimal leaf value -G/(H+lambda).
func leafWeight(g, h, lambda float64) float64 { return -g / (h + lambda) }

// splitGain is the XGBoost structure-score gain of a split.
func splitGain(gl, hl, gr, hr, lambda float64) float64 {
	score := func(g, h float64) float64 { return g * g / (h + lambda) }
	return 0.5 * (score(gl, hl) + score(gr, hr) - score(gl+gr, hl+hr))
}

func sigmoid(z float64) float64 { return 1 / (1 + math.Exp(-z)) }

// PredictMargin returns the raw additive margin (log-odds) for one
// sample.
func (m *Model) PredictMargin(x []float64) float64 {
	out := m.base
	for _, t := range m.trees {
		out += m.cfg.Eta * t.predict(x)
	}
	return out
}

// PredictProba returns the positive-class probability for one sample.
func (m *Model) PredictProba(x []float64) float64 {
	return sigmoid(m.PredictMargin(x))
}

// NumTrees returns the number of boosted stages.
func (m *Model) NumTrees() int { return len(m.trees) }

// NumFeatures returns the feature count the model was fitted with.
func (m *Model) NumFeatures() int { return m.nFeatures }

// GainImportance returns the per-feature total split gain, normalized
// to sum to 1 (all-zero if no split was made).
func (m *Model) GainImportance() ([]float64, error) {
	if len(m.trees) == 0 {
		return nil, ErrNotFitted
	}
	if m.gain == nil {
		return nil, ErrNoTrainingState
	}
	out := append([]float64(nil), m.gain...)
	sum := 0.0
	for _, v := range out {
		sum += v
	}
	if sum > 0 {
		for i := range out {
			out[i] /= sum
		}
	}
	return out, nil
}

// WeightImportance returns the per-feature split counts ("weight" in
// XGBoost terminology). The caller owns the returned slice.
func (m *Model) WeightImportance() ([]int, error) {
	if len(m.trees) == 0 {
		return nil, ErrNotFitted
	}
	if m.splits == nil {
		return nil, ErrNoTrainingState
	}
	return append([]int(nil), m.splits...), nil
}

// predictBatchAdd adds scale times each row's leaf weight into out[i],
// reading the column-major data directly.
func (t *regTree) predictBatchAdd(cols [][]float64, scale float64, out []float64) {
	nodes := t.nodes
	for i := range out {
		k := 0
		for {
			nd := &nodes[k]
			if nd.feature < 0 {
				out[i] += scale * nd.weight
				break
			}
			v := cols[nd.feature][i]
			if v <= nd.threshold || (v != v && nd.defaultLeft) {
				k = int(nd.left)
			} else {
				k = int(nd.right)
			}
		}
	}
}

// PredictMarginBatch writes the raw additive margin (log-odds) of every
// row of column-major data into out[i]. cols must have NumFeatures
// columns, each at least len(out) long.
func (m *Model) PredictMarginBatch(cols [][]float64, out []float64) error {
	if len(m.trees) == 0 {
		return ErrNotFitted
	}
	if len(cols) != m.nFeatures {
		return fmt.Errorf("%w: %d columns, fitted with %d", ErrShapeMismatch, len(cols), m.nFeatures)
	}
	for f, c := range cols {
		if len(c) < len(out) {
			return fmt.Errorf("%w: column %d has %d rows, out has %d", ErrShapeMismatch, f, len(c), len(out))
		}
	}
	for i := range out {
		out[i] = m.base
	}
	for _, t := range m.trees {
		t.predictBatchAdd(cols, m.cfg.Eta, out)
	}
	return nil
}

// PredictProbaBatch writes the positive-class probability of every row
// of column-major data into out[i]. The (cols, out) error shape is
// shared with tree.Classifier and forest.Forest (and the flat-compiled
// forms), so ensemble-agnostic callers need no per-family adapters.
func (m *Model) PredictProbaBatch(cols [][]float64, out []float64) error {
	if err := m.PredictMarginBatch(cols, out); err != nil {
		return err
	}
	for i, v := range out {
		out[i] = sigmoid(v)
	}
	return nil
}

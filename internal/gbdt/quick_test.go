package gbdt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestPredictProbaBoundedProperty: boosted probabilities are valid for
// arbitrary query points, including far outside the training range.
func TestPredictProbaBoundedProperty(t *testing.T) {
	cols, y := blobs(250, 2, 71)
	m, err := Fit(cols, y, Config{NumRounds: 10, MaxDepth: 3, Eta: 0.3, Lambda: 1})
	if err != nil {
		t.Fatal(err)
	}
	check := func(a, b, c float64) bool {
		for _, v := range []float64{a, b, c} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		p := m.PredictProba([]float64{a, b, c})
		return p >= 0 && p <= 1 && !math.IsNaN(p)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

// TestMoreRoundsImproveTrainingFit: training log-loss decreases (or at
// worst stagnates) as rounds increase — the core boosting property.
func TestMoreRoundsImproveTrainingFit(t *testing.T) {
	cols, y := blobs(400, 2, 72)
	logLoss := func(m *Model) float64 {
		x := make([]float64, len(cols))
		total := 0.0
		for i := range y {
			for f := range cols {
				x[f] = cols[f][i]
			}
			p := m.PredictProba(x)
			p = math.Min(math.Max(p, 1e-9), 1-1e-9)
			if y[i] == 1 {
				total -= math.Log(p)
			} else {
				total -= math.Log(1 - p)
			}
		}
		return total / float64(len(y))
	}
	var prev float64
	for i, rounds := range []int{2, 8, 32} {
		m, err := Fit(cols, y, Config{NumRounds: rounds, MaxDepth: 3, Eta: 0.3, Lambda: 1})
		if err != nil {
			t.Fatal(err)
		}
		ll := logLoss(m)
		if i > 0 && ll > prev+1e-9 {
			t.Errorf("log-loss rose from %v to %v at %d rounds", prev, ll, rounds)
		}
		prev = ll
	}
}

// TestWeightCountsMatchTreeSplits: the weight importance sums to the
// total number of internal nodes across all trees.
func TestWeightCountsMatchTreeSplits(t *testing.T) {
	cols, y := blobs(300, 3, 73)
	m, err := Fit(cols, y, Config{NumRounds: 8, MaxDepth: 3, Eta: 0.3, Lambda: 1})
	if err != nil {
		t.Fatal(err)
	}
	w, err := m.WeightImportance()
	if err != nil {
		t.Fatal(err)
	}
	sumW := 0
	for _, v := range w {
		sumW += v
	}
	internal := 0
	for _, tr := range m.trees {
		for _, nd := range tr.nodes {
			if nd.feature >= 0 {
				internal++
			}
		}
	}
	if sumW != internal {
		t.Errorf("weight sum %d != internal nodes %d", sumW, internal)
	}
}

// TestEtaScalesContribution: halving eta roughly halves each tree's
// contribution to the margin for a single round.
func TestEtaScalesContribution(t *testing.T) {
	cols, y := blobs(200, 1, 74)
	mA, err := Fit(cols, y, Config{NumRounds: 1, MaxDepth: 2, Eta: 0.3, Lambda: 1})
	if err != nil {
		t.Fatal(err)
	}
	mB, err := Fit(cols, y, Config{NumRounds: 1, MaxDepth: 2, Eta: 0.15, Lambda: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(75))
	for trial := 0; trial < 50; trial++ {
		x := []float64{rng.NormFloat64() * 2, rng.NormFloat64()}
		dA := mA.PredictMargin(x) - mA.base
		dB := mB.PredictMargin(x) - mB.base
		// Identical first-round tree (gradients depend only on the
		// base), so margin deltas scale exactly with eta.
		if math.Abs(dA-2*dB) > 1e-9 {
			t.Fatalf("margin deltas %v vs %v not in 2:1 ratio", dA, dB)
		}
	}
}

package gbdt

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
)

// Encoded is the serializable form of a fitted boosted model: the gob
// wire struct of MarshalBinary, also consumed directly by compilers
// (internal/flat) that need the tree structure without reaching into
// unexported state. Gob identifies struct fields by name, so the
// exported rename of the historical wire types decodes old payloads
// unchanged.
type Encoded struct {
	Trees     []EncodedTree
	Base      float64
	Eta       float64
	NFeatures int
}

// EncodedTree is one regression tree as parallel arrays over nodes.
// Leaves have Feature[i] == -1; Weight carries the leaf value.
type EncodedTree struct {
	Feature   []int
	Threshold []float64
	Left      []int
	Right     []int
	Weight    []float64
	// DefaultLeft records each internal node's missing-value routing.
	// Nil in encodings predating missing-value support, which routed
	// missing right.
	DefaultLeft []bool
}

// ErrBadEncoding indicates serialized bytes that do not decode into a
// valid model.
var ErrBadEncoding = errors.New("gbdt: bad encoding")

// Export returns the serializable form of the model. Importance
// accumulators and other training-only state are not exported; a
// re-imported model predicts identically but cannot report importance.
func (m *Model) Export() (Encoded, error) {
	if len(m.trees) == 0 {
		return Encoded{}, ErrNotFitted
	}
	enc := Encoded{Base: m.base, Eta: m.cfg.Eta, NFeatures: m.nFeatures}
	for _, t := range m.trees {
		et := EncodedTree{}
		for _, nd := range t.nodes {
			et.Feature = append(et.Feature, nd.feature)
			et.Threshold = append(et.Threshold, nd.threshold)
			et.Left = append(et.Left, nd.left)
			et.Right = append(et.Right, nd.right)
			et.Weight = append(et.Weight, nd.weight)
			et.DefaultLeft = append(et.DefaultLeft, nd.defaultLeft)
		}
		enc.Trees = append(enc.Trees, et)
	}
	return enc, nil
}

// MarshalBinary serializes the model for deployment: tree structures,
// base margin, and shrinkage.
func (m *Model) MarshalBinary() ([]byte, error) {
	enc, err := m.Export()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(enc); err != nil {
		return nil, fmt.Errorf("gbdt: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalModel reconstructs a prediction-ready model from bytes
// produced by MarshalBinary, validating tree structure.
func UnmarshalModel(data []byte) (*Model, error) {
	var enc Encoded
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&enc); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadEncoding, err)
	}
	if len(enc.Trees) == 0 {
		return nil, fmt.Errorf("%w: no trees", ErrBadEncoding)
	}
	if enc.NFeatures <= 0 || enc.Eta <= 0 {
		return nil, fmt.Errorf("%w: nfeatures %d, eta %v", ErrBadEncoding, enc.NFeatures, enc.Eta)
	}
	m := &Model{base: enc.Base, nFeatures: enc.NFeatures}
	m.cfg.Eta = enc.Eta
	for ti, et := range enc.Trees {
		n := len(et.Feature)
		if n == 0 || len(et.Threshold) != n || len(et.Left) != n || len(et.Right) != n || len(et.Weight) != n {
			return nil, fmt.Errorf("%w: tree %d misaligned", ErrBadEncoding, ti)
		}
		if et.DefaultLeft != nil && len(et.DefaultLeft) != n {
			return nil, fmt.Errorf("%w: tree %d misaligned", ErrBadEncoding, ti)
		}
		t := &regTree{nodes: make([]regNode, n)}
		for i := 0; i < n; i++ {
			f := et.Feature[i]
			if f >= enc.NFeatures {
				return nil, fmt.Errorf("%w: tree %d node %d feature %d", ErrBadEncoding, ti, i, f)
			}
			if f >= 0 {
				l, r := et.Left[i], et.Right[i]
				if l <= i || r <= i || l >= n || r >= n {
					return nil, fmt.Errorf("%w: tree %d node %d children %d/%d", ErrBadEncoding, ti, i, l, r)
				}
			}
			t.nodes[i] = regNode{
				feature:   f,
				threshold: et.Threshold[i],
				left:      et.Left[i],
				right:     et.Right[i],
				weight:    et.Weight[i],
			}
			if et.DefaultLeft != nil {
				t.nodes[i].defaultLeft = et.DefaultLeft[i]
			}
		}
		m.trees = append(m.trees, t)
	}
	return m, nil
}

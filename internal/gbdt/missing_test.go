package gbdt

import (
	"math"
	"testing"
)

// missingInformative builds data where a NaN in feature 0 marks the
// positive class and feature 1 is noise.
func missingInformative(n int) (cols [][]float64, y []int) {
	cols = [][]float64{make([]float64, n), make([]float64, n)}
	y = make([]int, n)
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			y[i] = 1
			cols[0][i] = math.NaN()
		} else {
			cols[0][i] = float64(i % 17)
		}
		cols[1][i] = float64((i * 7) % 13)
	}
	return cols, y
}

func TestFitLearnsDefaultDirection(t *testing.T) {
	cols, y := missingInformative(200)
	m, err := Fit(cols, y, Config{NumRounds: 20, MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	pMissing := m.PredictProba([]float64{math.NaN(), 5})
	pPresent := m.PredictProba([]float64{3, 5})
	if pMissing < 0.9 {
		t.Errorf("P(pos | feature missing) = %v, want >= 0.9", pMissing)
	}
	if pPresent > 0.1 {
		t.Errorf("P(pos | feature present) = %v, want <= 0.1", pPresent)
	}
}

func TestFitAllMissingColumnNeverSplit(t *testing.T) {
	n := 100
	cols := [][]float64{make([]float64, n), make([]float64, n)}
	y := make([]int, n)
	for i := 0; i < n; i++ {
		cols[0][i] = math.NaN()
		cols[1][i] = float64(i)
		if i >= n/2 {
			y[i] = 1
		}
	}
	m, err := Fit(cols, y, Config{NumRounds: 10, MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	gain, err := m.GainImportance()
	if err != nil {
		t.Fatal(err)
	}
	if gain[0] != 0 {
		t.Errorf("all-NaN column gain importance = %v, want 0", gain[0])
	}
	if gain[1] == 0 {
		t.Error("informative column was never split on")
	}
	// Margins must stay finite in the presence of the NaN column.
	out := make([]float64, n)
	m.PredictMarginBatch(cols, out)
	for i, v := range out {
		if v-v != 0 {
			t.Fatalf("margin[%d] = %v, want finite", i, v)
		}
	}
}

func TestSerializePreservesDefaultDirection(t *testing.T) {
	cols, y := missingInformative(200)
	m, err := Fit(cols, y, Config{NumRounds: 15, MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	data, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalModel(data)
	if err != nil {
		t.Fatal(err)
	}
	probes := [][]float64{
		{math.NaN(), 5},
		{3, math.NaN()},
		{math.NaN(), math.NaN()},
		{8, 2},
	}
	for _, x := range probes {
		if a, b := m.PredictMargin(x), got.PredictMargin(x); a != b {
			t.Errorf("margin drift after roundtrip on %v: %v vs %v", x, a, b)
		}
	}
}

func TestFitPartialMissingBeatsBaseline(t *testing.T) {
	// A feature whose finite values separate the classes perfectly but
	// with 20% of cells missing at random must still dominate training,
	// with missing rows routed to whichever side fits them best.
	n := 300
	cols := [][]float64{make([]float64, n), make([]float64, n)}
	y := make([]int, n)
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			y[i] = 1
			cols[0][i] = 10 + float64(i%9)
		} else {
			cols[0][i] = float64(i % 9)
		}
		if i%5 == 0 {
			cols[0][i] = math.NaN()
		}
		cols[1][i] = float64((i * 11) % 23)
	}
	m, err := Fit(cols, y, Config{NumRounds: 20, MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := 0; i < n; i++ {
		p := m.PredictProba([]float64{cols[0][i], cols[1][i]})
		if (p >= 0.5) == (y[i] == 1) {
			correct++
		}
	}
	if acc := float64(correct) / float64(n); acc < 0.9 {
		t.Errorf("accuracy with 20%% missing = %v, want >= 0.9", acc)
	}
}

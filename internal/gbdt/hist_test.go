package gbdt

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/hist"
)

// histData builds low-cardinality counter columns with NaN holes and a
// planted signal, SMART-like.
func histData(n int, seed int64) (cols [][]float64, y []int) {
	rng := rand.New(rand.NewSource(seed))
	y = make([]int, n)
	cols = make([][]float64, 6)
	for f := range cols {
		cols[f] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.25 {
			y[i] = 1
		}
		for f := range cols {
			v := float64(rng.Intn(6))
			if y[i] == 1 && f < 3 {
				v += float64(rng.Intn(4))
			}
			if rng.Float64() < 0.04 {
				v = math.NaN()
			}
			cols[f][i] = v
		}
	}
	return cols, y
}

// TestHistDeterministic asserts two identically configured hist fits
// produce identical models.
func TestHistDeterministic(t *testing.T) {
	cols, y := histData(500, 1)
	cfg := Config{NumRounds: 10, MaxDepth: 4, Eta: 0.3, Lambda: 1, SplitMethod: hist.SplitHist}
	a, err := Fit(cols, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fit(cols, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range y {
		row := make([]float64, len(cols))
		for f := range cols {
			row[f] = cols[f][i]
		}
		if pa, pb := a.PredictProba(row), b.PredictProba(row); pa != pb {
			t.Fatalf("row %d: %v != %v", i, pa, pb)
		}
	}
}

// TestHistMatchesExactPredictions asserts the hist path trains a model
// whose training-set probabilities track the exact path closely on
// low-cardinality data: both paths consider the same candidate row
// partitions there, so only threshold placement (and therefore rare
// boundary routing) can differ.
func TestHistMatchesExactPredictions(t *testing.T) {
	cols, y := histData(800, 2)
	base := Config{NumRounds: 15, MaxDepth: 4, Eta: 0.3, Lambda: 1}
	exact, err := Fit(cols, y, base)
	if err != nil {
		t.Fatal(err)
	}
	histCfg := base
	histCfg.SplitMethod = hist.SplitHist
	binned, err := Fit(cols, y, histCfg)
	if err != nil {
		t.Fatal(err)
	}

	row := make([]float64, len(cols))
	var sumAbs, maxAbs float64
	for i := range y {
		for f := range cols {
			row[f] = cols[f][i]
		}
		d := math.Abs(exact.PredictProba(row) - binned.PredictProba(row))
		sumAbs += d
		if d > maxAbs {
			maxAbs = d
		}
	}
	if mean := sumAbs / float64(len(y)); mean > 0.01 {
		t.Errorf("mean |exact - hist| = %v, want <= 0.01 (max %v)", mean, maxAbs)
	}
}

// TestHistLearnsSignal asserts hist training reaches the same training
// accuracy regime as the exact path on separable data.
func TestHistLearnsSignal(t *testing.T) {
	cols, y := histData(600, 3)
	m, err := Fit(cols, y, Config{NumRounds: 20, MaxDepth: 4, Eta: 0.3, Lambda: 1, SplitMethod: hist.SplitHist})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	row := make([]float64, len(cols))
	for i := range y {
		for f := range cols {
			row[f] = cols[f][i]
		}
		pred := 0
		if m.PredictProba(row) >= 0.5 {
			pred = 1
		}
		if pred == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(y)); acc < 0.8 {
		t.Errorf("training accuracy %v, want >= 0.8", acc)
	}
}

// TestHistGainImportanceFindsSignal asserts the hist path's gain
// accounting still ranks the informative features first.
func TestHistGainImportanceFindsSignal(t *testing.T) {
	cols, y := histData(800, 4)
	m, err := Fit(cols, y, Config{NumRounds: 15, MaxDepth: 4, Eta: 0.3, Lambda: 1, SplitMethod: hist.SplitHist})
	if err != nil {
		t.Fatal(err)
	}
	imp, err := m.GainImportance()
	if err != nil {
		t.Fatal(err)
	}
	var signal, noise float64
	for f, v := range imp {
		if f < 3 {
			signal += v
		} else {
			noise += v
		}
	}
	if signal <= noise {
		t.Errorf("signal importance %v not above noise %v", signal, noise)
	}
}

package gbdt

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func blobs(n, noiseFeatures int, seed int64) (cols [][]float64, y []int) {
	rng := rand.New(rand.NewSource(seed))
	signal := make([]float64, n)
	y = make([]int, n)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.5 {
			y[i] = 1
			signal[i] = 1.5 + rng.NormFloat64()
		} else {
			signal[i] = -1.5 + rng.NormFloat64()
		}
	}
	cols = [][]float64{signal}
	for f := 0; f < noiseFeatures; f++ {
		noise := make([]float64, n)
		for i := range noise {
			noise[i] = rng.NormFloat64()
		}
		cols = append(cols, noise)
	}
	return cols, y
}

func TestFitAndPredict(t *testing.T) {
	cols, y := blobs(500, 2, 1)
	m, err := Fit(cols, y, Config{NumRounds: 30, MaxDepth: 3, Eta: 0.3, Lambda: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumTrees() != 30 || m.NumFeatures() != 3 {
		t.Fatalf("shape = (%d, %d)", m.NumTrees(), m.NumFeatures())
	}
	if p := m.PredictProba([]float64{2.5, 0, 0}); p < 0.85 {
		t.Errorf("prob(positive) = %v, want > 0.85", p)
	}
	if p := m.PredictProba([]float64{-2.5, 0, 0}); p > 0.15 {
		t.Errorf("prob(negative) = %v, want < 0.15", p)
	}
}

func TestTrainingAccuracy(t *testing.T) {
	cols, y := blobs(400, 3, 2)
	m, err := Fit(cols, y, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 4)
	correct := 0
	for i := range y {
		for f := range cols {
			x[f] = cols[f][i]
		}
		pred := 0
		if m.PredictProba(x) >= 0.5 {
			pred = 1
		}
		if pred == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(y)); acc < 0.9 {
		t.Errorf("training accuracy = %v, want >= 0.9", acc)
	}
}

func TestXORWithDepth2(t *testing.T) {
	// Boosting with depth-2 trees solves XOR, which a single greedy
	// shallow tree cannot — a sanity check that the gain machinery and
	// margin updates interact correctly.
	rng := rand.New(rand.NewSource(3))
	n := 600
	a := make([]float64, n)
	b := make([]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		a[i] = rng.Float64()*2 - 1
		b[i] = rng.Float64()*2 - 1
		if (a[i] > 0) != (b[i] > 0) {
			y[i] = 1
		}
	}
	m, err := Fit([][]float64{a, b}, y, Config{NumRounds: 120, MaxDepth: 2, Eta: 0.3, Lambda: 1})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	x := make([]float64, 2)
	for i := 0; i < n; i++ {
		x[0], x[1] = a[i], b[i]
		pred := 0
		if m.PredictProba(x) >= 0.5 {
			pred = 1
		}
		if pred == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(n); acc < 0.9 {
		t.Errorf("XOR accuracy = %v, want >= 0.9", acc)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, nil, DefaultConfig()); !errors.Is(err, ErrNoData) {
		t.Errorf("empty error = %v", err)
	}
	if _, err := Fit([][]float64{{1, 2}}, []int{0}, DefaultConfig()); err == nil {
		t.Error("shape mismatch should fail")
	}
	if _, err := Fit([][]float64{{1}}, []int{0}, Config{NumRounds: 0}); err == nil {
		t.Error("NumRounds=0 should fail")
	}
}

func TestGainImportanceFindsSignal(t *testing.T) {
	cols, y := blobs(500, 4, 4)
	m, err := Fit(cols, y, Config{NumRounds: 25, MaxDepth: 3, Eta: 0.3, Lambda: 1})
	if err != nil {
		t.Fatal(err)
	}
	gain, err := m.GainImportance()
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range gain {
		if v < 0 {
			t.Errorf("negative gain %v", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("gain sum = %v, want 1", sum)
	}
	for j := 1; j < len(gain); j++ {
		if gain[0] <= gain[j] {
			t.Errorf("signal gain %v should exceed noise[%d] %v", gain[0], j, gain[j])
		}
	}
	w, err := m.WeightImportance()
	if err != nil {
		t.Fatal(err)
	}
	for j := 1; j < len(w); j++ {
		if w[0] < w[j] {
			t.Errorf("signal splits %d should be >= noise[%d] %d", w[0], j, w[j])
		}
	}
}

func TestNotFitted(t *testing.T) {
	var m Model
	if _, err := m.GainImportance(); !errors.Is(err, ErrNotFitted) {
		t.Errorf("GainImportance error = %v", err)
	}
	if _, err := m.WeightImportance(); !errors.Is(err, ErrNotFitted) {
		t.Errorf("WeightImportance error = %v", err)
	}
}

func TestSingleClassBase(t *testing.T) {
	cols := [][]float64{{1, 2, 3, 4}}
	y := []int{0, 0, 0, 0}
	m, err := Fit(cols, y, Config{NumRounds: 5, MaxDepth: 2, Eta: 0.3, Lambda: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p := m.PredictProba([]float64{2}); p > 0.2 {
		t.Errorf("all-negative prob = %v, want small", p)
	}
}

func TestGammaSuppressesWeakSplits(t *testing.T) {
	// Pure-noise data: with a large gamma, no split should clear the
	// bar, so all trees are single leaves and importance is zero.
	rng := rand.New(rand.NewSource(5))
	n := 200
	noise := make([]float64, n)
	y := make([]int, n)
	for i := range noise {
		noise[i] = rng.NormFloat64()
		if rng.Float64() < 0.5 {
			y[i] = 1
		}
	}
	m, err := Fit([][]float64{noise}, y, Config{NumRounds: 10, MaxDepth: 3, Eta: 0.3, Lambda: 1, Gamma: 50})
	if err != nil {
		t.Fatal(err)
	}
	w, _ := m.WeightImportance()
	if w[0] != 0 {
		t.Errorf("gamma=50 should prevent noise splits, got %d", w[0])
	}
}

func TestMinChildWeight(t *testing.T) {
	// With an enormous MinChildWeight no split is feasible.
	cols, y := blobs(100, 0, 6)
	m, err := Fit(cols, y, Config{NumRounds: 5, MaxDepth: 3, Eta: 0.3, Lambda: 1, MinChildWeight: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	w, _ := m.WeightImportance()
	if w[0] != 0 {
		t.Errorf("huge MinChildWeight should prevent splits, got %d", w[0])
	}
}

func TestSplitGainProperties(t *testing.T) {
	// A perfectly balanced split of opposite gradients has high gain;
	// splitting identical halves has zero gain.
	if g := splitGain(-5, 2, 5, 2, 1); g <= 0 {
		t.Errorf("opposite-gradient split gain = %v, want > 0", g)
	}
	if g := splitGain(3, 2, 3, 2, 1); g > 1e-9 {
		t.Errorf("identical-half split gain = %v, want ~0", g)
	}
}

func TestDeterminism(t *testing.T) {
	cols, y := blobs(300, 2, 7)
	cfg := Config{NumRounds: 10, MaxDepth: 3, Eta: 0.3, Lambda: 1}
	a, err := Fit(cols, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fit(cols, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.5, -0.2, 0.1}
	if a.PredictProba(x) != b.PredictProba(x) {
		t.Error("GBDT fit should be deterministic")
	}
}

func BenchmarkFit(b *testing.B) {
	cols, y := blobs(1000, 9, 8)
	cfg := Config{NumRounds: 50, MaxDepth: 4, Eta: 0.3, Lambda: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(cols, y, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func TestModelSerializationRoundTrip(t *testing.T) {
	cols, y := blobs(300, 2, 61)
	m, err := Fit(cols, y, Config{NumRounds: 12, MaxDepth: 3, Eta: 0.3, Lambda: 1})
	if err != nil {
		t.Fatal(err)
	}
	data, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	g, err := UnmarshalModel(data)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTrees() != m.NumTrees() || g.NumFeatures() != m.NumFeatures() {
		t.Fatal("shape changed after round trip")
	}
	rng := rand.New(rand.NewSource(62))
	x := make([]float64, 3)
	for trial := 0; trial < 200; trial++ {
		for j := range x {
			x[j] = rng.NormFloat64() * 2
		}
		if m.PredictProba(x) != g.PredictProba(x) {
			t.Fatal("prediction changed after round trip")
		}
	}
	// Importance is training-side state and must be gone, loudly.
	if _, err := g.GainImportance(); err == nil {
		t.Error("deserialized model should not report importance")
	}
}

func TestUnmarshalModelErrors(t *testing.T) {
	if _, err := UnmarshalModel([]byte("nope")); !errors.Is(err, ErrBadEncoding) {
		t.Errorf("garbage error = %v", err)
	}
	var empty Model
	if _, err := empty.MarshalBinary(); !errors.Is(err, ErrNotFitted) {
		t.Errorf("unfitted marshal error = %v", err)
	}
}

package gbdt

import "repro/internal/hist"

// fitHist is the histogram-binned training path: every feature is
// quantized once (internal/hist), and each boosting round grows its
// tree depth-first over contiguous row segments, accumulating
// per-node (gradient, hessian, count) histograms over the concatenated
// feature bins. A node scans rows once to build its histogram; after a
// split only the smaller child is ever scanned — the larger child's
// histogram is derived in place by parent − smaller-child subtraction.
// Leaf margins are applied directly to the leaf's row segment, so no
// per-round tree walk over the full dataset remains.
//
// The path is fully deterministic (single-threaded per fit, no maps)
// and shares leafWeight/splitGain with the exact path, so the two
// differ only in the candidate thresholds considered (global bin
// boundaries instead of node-local midpoints).
func (m *Model) fitHist(cols [][]float64, y []int) {
	cfg := m.cfg
	n := len(y)
	bm := hist.Bin(cols, cfg.MaxBins)

	// Per-feature base offsets into the concatenated histogram layout;
	// feature f occupies [off[f], off[f]+FiniteBins(f)] with the missing
	// bin last.
	off := make([]int, bm.NumFeatures())
	total := 0
	for f := range off {
		off[f] = total
		total += bm.FiniteBins(f) + 1
	}

	margin := make([]float64, n)
	for i := range margin {
		margin[i] = m.base
	}
	g := &histGrower{
		bm:     bm,
		off:    off,
		total:  total,
		cfg:    cfg,
		m:      m,
		gh:     make([]float64, 2*n),
		ghs:    make([]float64, 2*n),
		rows:   make([]int32, n),
		ident:  make([]int32, n),
		buf:    make([]int32, n),
		margin: margin,
	}
	for i := range g.ident {
		g.ident[i] = int32(i)
	}

	for round := 0; round < cfg.NumRounds; round++ {
		var sumG, sumH float64
		for i := 0; i < n; i++ {
			p := sigmoid(margin[i])
			gr := p - float64(y[i])
			hs := p * (1 - p)
			g.gh[2*i] = gr
			g.gh[2*i+1] = hs
			sumG += gr
			sumH += hs
		}
		copy(g.rows, g.ident)
		g.t = &regTree{}
		root := g.acquire()
		g.accumulate(0, n, root)
		g.grow(0, n, root, sumG, sumH, 0)
		m.trees = append(m.trees, g.t)
	}
}

// histCell is one bin of a node histogram: gradient sum, hessian sum,
// row count. Keeping the three together puts a bin's whole state on one
// cache line, so accumulation touches one line per row instead of
// three.
type histCell struct {
	g, h float64
	c    int32
	_    int32 // explicit padding; keeps the cell size obvious (24 B)
}

// histBuf is one node's histogram over the concatenated feature bins.
type histBuf struct {
	cells []histCell
}

// histGrower carries the shared state of the binned boosting fit.
type histGrower struct {
	bm     *hist.Matrix
	off    []int
	total  int
	cfg    Config
	m      *Model
	t      *regTree
	gh     []float64 // per-row interleaved (gradient, hessian)
	ghs    []float64 // gh gathered per node, aligned with the row segment
	rows   []int32   // working row list, segment-aligned down the tree
	ident  []int32   // identity permutation, copied at each round start
	buf    []int32   // scratch for partitioning
	margin []float64
	pool   []*histBuf // free histogram buffers; live count is O(depth)
}

func (g *histGrower) acquire() *histBuf {
	if k := len(g.pool); k > 0 {
		hb := g.pool[k-1]
		g.pool = g.pool[:k-1]
		clear(hb.cells)
		return hb
	}
	return &histBuf{cells: make([]histCell, g.total)}
}

func (g *histGrower) release(hb *histBuf) { g.pool = append(g.pool, hb) }

// accumulate adds the row segment [lo, hi) into hb. The segment's
// (gradient, hessian) pairs are gathered once up front; every feature
// then reads them sequentially, leaving the bin lookup as the only
// gather in the inner loop.
func (g *histGrower) accumulate(lo, hi int, hb *histBuf) {
	seg := g.rows[lo:hi]
	ghs := g.ghs[: 2*len(seg) : 2*len(seg)]
	for k, i := range seg {
		ghs[2*k] = g.gh[2*i]
		ghs[2*k+1] = g.gh[2*i+1]
	}
	cells := hb.cells
	for f := range g.off {
		base := g.off[f]
		bins := g.bm.Bins(f)
		for k, i := range seg {
			cell := &cells[base+int(bins[i])]
			cell.g += ghs[2*k]
			cell.h += ghs[2*k+1]
			cell.c++
		}
	}
}

// histSplit is the best cut found for one node.
type histSplit struct {
	feature     int
	bin         int
	gain        float64
	gl, hl      float64
	defaultLeft bool
}

// grow grows the subtree over rows[lo:hi), consuming hb (it is either
// released or mutated into the larger child's histogram) and returns
// the node index.
func (g *histGrower) grow(lo, hi int, hb *histBuf, sumG, sumH float64, depth int) int {
	nodeIdx := len(g.t.nodes)
	g.t.nodes = append(g.t.nodes, regNode{feature: -1, weight: leafWeight(sumG, sumH, g.cfg.Lambda)})

	sp := histSplit{feature: -1}
	if depth < g.cfg.MaxDepth && hi-lo >= 2 {
		sp = g.bestSplit(lo, hi, hb, sumG, sumH)
	}
	if sp.feature < 0 {
		w := g.cfg.Eta * g.t.nodes[nodeIdx].weight
		for _, i := range g.rows[lo:hi] {
			g.margin[i] += w
		}
		g.release(hb)
		return nodeIdx
	}

	// Stable partition by bin index: left gets bins <= sp.bin plus the
	// missing bin when the default direction is left.
	bins := g.bm.Bins(sp.feature)
	missBin := uint8(g.bm.MissingBin(sp.feature))
	sb := uint8(sp.bin)
	w, r := lo, 0
	for k := lo; k < hi; k++ {
		i := g.rows[k]
		bb := bins[i]
		if bb <= sb || (bb == missBin && sp.defaultLeft) {
			g.rows[w] = i
			w++
		} else {
			g.buf[r] = i
			r++
		}
	}
	copy(g.rows[w:hi], g.buf[:r])
	nl := w - lo
	nr := hi - w

	// Scan only the smaller child; the larger child's histogram is the
	// parent's minus the smaller's, computed in place so hb's ownership
	// transfers to the larger child.
	small := g.acquire()
	if nl <= nr {
		g.accumulate(lo, lo+nl, small)
	} else {
		g.accumulate(lo+nl, hi, small)
	}
	for b, sc := range small.cells {
		hb.cells[b].g -= sc.g
		hb.cells[b].h -= sc.h
		hb.cells[b].c -= sc.c
	}
	leftBuf, rightBuf := small, hb
	if nl > nr {
		leftBuf, rightBuf = hb, small
	}

	g.m.gain[sp.feature] += sp.gain
	g.m.splits[sp.feature]++

	l := g.grow(lo, lo+nl, leftBuf, sp.gl, sp.hl, depth+1)
	rIdx := g.grow(lo+nl, hi, rightBuf, sumG-sp.gl, sumH-sp.hl, depth+1)
	nd := &g.t.nodes[nodeIdx]
	nd.feature = sp.feature
	nd.threshold = g.bm.Threshold(sp.feature, sp.bin)
	nd.left = l
	nd.right = rIdx
	nd.defaultLeft = sp.defaultLeft
	return nodeIdx
}

// bestSplit scans the node's histogram for the bin boundary maximizing
// the Newton structure-score gain, trying each candidate with the
// node's missing mass routed right and (when present) left, plus the
// finite/missing boundary itself — the same candidate policy as the
// exact path restricted to global bin boundaries.
func (g *histGrower) bestSplit(lo, hi int, hb *histBuf, sumG, sumH float64) histSplit {
	cfg := g.cfg
	best := histSplit{feature: -1}
	size := int32(hi - lo)

	tryCut := func(f, bin int, gl, hl float64, missLeft bool) {
		gr, hr := sumG-gl, sumH-hl
		if hl < cfg.MinChildWeight || hr < cfg.MinChildWeight {
			return
		}
		gain := splitGain(gl, hl, gr, hr, cfg.Lambda) - cfg.Gamma
		if gain <= 0 {
			return
		}
		if best.feature < 0 || gain > best.gain {
			best = histSplit{feature: f, bin: bin, gain: gain, gl: gl, hl: hl, defaultLeft: missLeft}
		}
	}

	cells := hb.cells
	for f := range g.off {
		nb := g.bm.FiniteBins(f)
		if nb == 0 {
			continue // every value missing: nothing to split on
		}
		base := g.off[f]
		miss := cells[base+nb]
		finC := size - miss.c
		if finC == 0 {
			continue
		}
		var gl, hl float64
		var cl int32
		for bb := 0; bb < nb; bb++ {
			cell := cells[base+bb]
			if cell.c == 0 {
				continue // empty bin: same row split as the previous boundary
			}
			gl += cell.g
			hl += cell.h
			cl += cell.c
			if cl == finC {
				// Boundary after the last nonempty finite bin: only
				// meaningful as the finite/missing cut.
				if miss.c > 0 {
					tryCut(f, bb, gl, hl, false)
				}
				break
			}
			tryCut(f, bb, gl, hl, false)
			if miss.c > 0 {
				tryCut(f, bb, gl+miss.g, hl+miss.h, true)
			}
		}
	}
	return best
}

package flat

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// encodedEnsemble is the gob wire form shared by the compiled types.
// Trees are stored with logical feature indices (not block offsets) so
// the kernel's block geometry can change without breaking payloads.
type encodedEnsemble struct {
	Cuts      [][]float64
	NFeatures int
	Trees     []encodedFlatTree
}

type encodedFlatTree struct {
	Feature []int32 // -1 for leaves
	Bin     []uint8
	MissL   []uint8
	Left    []int32
	Value   []float64
}

type encodedFlatForest struct {
	E encodedEnsemble
}

type encodedFlatModel struct {
	E    encodedEnsemble
	Base float64
	Eta  float64
}

func (e *ensemble) encode() encodedEnsemble {
	out := encodedEnsemble{Cuts: e.q.cuts, NFeatures: e.nFeatures}
	for i := range e.trees {
		t := &e.trees[i]
		et := encodedFlatTree{
			Feature: make([]int32, len(t.featOff)),
			Bin:     t.bin,
			MissL:   t.missL,
			Left:    t.left,
			Value:   t.value,
		}
		for j, fo := range t.featOff {
			if fo < 0 {
				et.Feature[j] = -1
			} else {
				et.Feature[j] = fo >> blockShift
			}
		}
		out.Trees = append(out.Trees, et)
	}
	return out
}

func decodeEnsemble(enc encodedEnsemble) (ensemble, error) {
	if enc.NFeatures <= 0 || enc.NFeatures > maxFeatures || len(enc.Cuts) != enc.NFeatures {
		return ensemble{}, fmt.Errorf("%w: %d features, %d cut sets", ErrBadEncoding, enc.NFeatures, len(enc.Cuts))
	}
	if len(enc.Trees) == 0 {
		return ensemble{}, fmt.Errorf("%w: no trees", ErrBadEncoding)
	}
	q := newQuantizer(enc.NFeatures)
	for f, cs := range enc.Cuts {
		if len(cs) == 0 {
			continue
		}
		if len(cs) > maxCuts {
			return ensemble{}, fmt.Errorf("%w: feature %d has %d cuts", ErrBadEncoding, f, len(cs))
		}
		if cs[0] != cs[0] {
			return ensemble{}, fmt.Errorf("%w: feature %d has NaN cut", ErrBadEncoding, f)
		}
		for i := 1; i < len(cs); i++ {
			// Also rejects NaN anywhere past index 0.
			if !(cs[i-1] < cs[i]) {
				return ensemble{}, fmt.Errorf("%w: feature %d cuts not ascending", ErrBadEncoding, f)
			}
		}
		q.setFeature(f, cs)
	}
	e := ensemble{q: q, nFeatures: enc.NFeatures}
	for ti, et := range enc.Trees {
		n := len(et.Feature)
		if n == 0 || len(et.Bin) != n || len(et.MissL) != n || len(et.Left) != n || len(et.Value) != n {
			return ensemble{}, fmt.Errorf("%w: tree %d misaligned", ErrBadEncoding, ti)
		}
		ft := flatTree{
			featOff: make([]int32, n),
			bin:     et.Bin,
			missL:   et.MissL,
			left:    et.Left,
			value:   et.Value,
		}
		for i := 0; i < n; i++ {
			f := et.Feature[i]
			if f < 0 {
				ft.featOff[i] = -1
				continue
			}
			if int(f) >= enc.NFeatures || int(et.Bin[i]) >= len(q.cuts[f]) {
				return ensemble{}, fmt.Errorf("%w: tree %d node %d splits feature %d bin %d", ErrBadEncoding, ti, i, f, et.Bin[i])
			}
			l := et.Left[i]
			// Children always follow their parent (BFS compile order)
			// and siblings are adjacent, so traversal terminates.
			if l <= int32(i) || l+1 >= int32(n) {
				return ensemble{}, fmt.Errorf("%w: tree %d node %d child %d", ErrBadEncoding, ti, i, l)
			}
			ft.featOff[i] = f << blockShift
		}
		e.trees = append(e.trees, ft)
	}
	return e, nil
}

// MarshalBinary serializes the compiled forest. Workers is runtime
// configuration and is not persisted.
func (f *Forest) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(encodedFlatForest{E: f.e.encode()}); err != nil {
		return nil, fmt.Errorf("flat: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalForest reconstructs a compiled forest; predictions are
// bit-identical to the forest that was marshalled.
func UnmarshalForest(data []byte) (*Forest, error) {
	var enc encodedFlatForest
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&enc); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadEncoding, err)
	}
	e, err := decodeEnsemble(enc.E)
	if err != nil {
		return nil, err
	}
	return &Forest{e: e}, nil
}

// MarshalBinary serializes the compiled boosted model. Workers is
// runtime configuration and is not persisted.
func (m *Model) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	enc := encodedFlatModel{E: m.e.encode(), Base: m.base, Eta: m.eta}
	if err := gob.NewEncoder(&buf).Encode(enc); err != nil {
		return nil, fmt.Errorf("flat: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalModel reconstructs a compiled boosted model; predictions are
// bit-identical to the model that was marshalled.
func UnmarshalModel(data []byte) (*Model, error) {
	var enc encodedFlatModel
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&enc); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadEncoding, err)
	}
	e, err := decodeEnsemble(enc.E)
	if err != nil {
		return nil, err
	}
	return &Model{e: e, base: enc.Base, eta: enc.Eta}, nil
}

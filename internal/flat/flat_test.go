package flat

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/forest"
	"repro/internal/gbdt"
	"repro/internal/hist"
	"repro/internal/tree"
)

// synth builds column-major training data with mixed continuous and
// low-cardinality columns plus a label correlated with column 0.
func synth(n, features int, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	cols := make([][]float64, features)
	for f := range cols {
		cols[f] = make([]float64, n)
	}
	y := make([]int, n)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.2 {
			y[i] = 1
		}
		for f := 0; f < features; f++ {
			switch {
			case f == 0:
				cols[f][i] = float64(y[i]) + rng.NormFloat64()
			case f%3 == 0:
				cols[f][i] = float64(rng.Intn(6))
			default:
				cols[f][i] = rng.NormFloat64() * 10
			}
			if f%4 == 1 && rng.Float64() < 0.1 {
				cols[f][i] = math.NaN()
			}
		}
	}
	return cols, y
}

// scoreInputs builds scoring data exercising every quantizer edge:
// random values, NaN, +/-Inf, +/-0, huge magnitudes, and exact
// training values (which hit thresholds exactly).
func scoreInputs(train [][]float64, n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	cols := make([][]float64, len(train))
	specials := []float64{
		math.NaN(), math.Inf(1), math.Inf(-1), 0.0, math.Copysign(0, -1),
		1e300, -1e300, 5e-324, math.MaxFloat64, -math.MaxFloat64,
	}
	for f := range cols {
		cols[f] = make([]float64, n)
		for i := 0; i < n; i++ {
			switch r := rng.Float64(); {
			case r < 0.10:
				cols[f][i] = specials[rng.Intn(len(specials))]
			case r < 0.35:
				cols[f][i] = train[f][rng.Intn(len(train[f]))]
			default:
				cols[f][i] = rng.NormFloat64() * 12
			}
		}
	}
	return cols
}

func requireBitEqual(t *testing.T, want, got []float64, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: length %d vs %d", label, len(want), len(got))
	}
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("%s: row %d: %v (%016x) vs %v (%016x)",
				label, i, want[i], math.Float64bits(want[i]), got[i], math.Float64bits(got[i]))
		}
	}
}

// rows spans multiple kernel blocks so block edges are exercised.
const testRows = blockRows*2 + 777

func TestForestFlatBitExact(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  forest.Config
	}{
		{"exact", forest.Config{NumTrees: 8, MaxDepth: 5, Seed: 1}},
		{"hist", forest.Config{NumTrees: 10, MaxDepth: 8, Seed: 2, SplitMethod: hist.SplitHist, MaxBins: 32}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cols, y := synth(900, 9, 11)
			f, err := forest.Fit(cols, y, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			fl, err := CompileForest(f)
			if err != nil {
				t.Fatal(err)
			}
			in := scoreInputs(cols, testRows, 101)
			want := make([]float64, testRows)
			if err := f.PredictProbaBatch(in, want); err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2, 3} {
				fl.Workers = workers
				got := make([]float64, testRows)
				if err := fl.PredictProbaBatch(in, got); err != nil {
					t.Fatal(err)
				}
				requireBitEqual(t, want, got, tc.name)
			}
		})
	}
}

func TestGBDTFlatBitExact(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  gbdt.Config
	}{
		{"exact", gbdt.Config{NumRounds: 12, MaxDepth: 4, Eta: 0.3}},
		{"hist", gbdt.Config{NumRounds: 15, MaxDepth: 5, Eta: 0.3, SplitMethod: hist.SplitHist, MaxBins: 32}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cols, y := synth(900, 9, 21)
			m, err := gbdt.Fit(cols, y, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			fl, err := CompileModel(m)
			if err != nil {
				t.Fatal(err)
			}
			in := scoreInputs(cols, testRows, 202)
			wantP := make([]float64, testRows)
			if err := m.PredictProbaBatch(in, wantP); err != nil {
				t.Fatal(err)
			}
			wantM := make([]float64, testRows)
			if err := m.PredictMarginBatch(in, wantM); err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2, 3} {
				fl.Workers = workers
				got := make([]float64, testRows)
				if err := fl.PredictProbaBatch(in, got); err != nil {
					t.Fatal(err)
				}
				requireBitEqual(t, wantP, got, "proba")
				if err := fl.PredictMarginBatch(in, got); err != nil {
					t.Fatal(err)
				}
				requireBitEqual(t, wantM, got, "margin")
			}
		})
	}
}

func TestTreeFlatBitExact(t *testing.T) {
	cols, y := synth(700, 7, 31)
	cl, err := tree.FitClassifier(cols, y, nil, tree.Config{MaxDepth: 7})
	if err != nil {
		t.Fatal(err)
	}
	fl, err := CompileTree(cl)
	if err != nil {
		t.Fatal(err)
	}
	in := scoreInputs(cols, testRows, 303)
	want := make([]float64, testRows)
	if err := cl.PredictProbaBatch(in, want); err != nil {
		t.Fatal(err)
	}
	got := make([]float64, testRows)
	if err := fl.PredictProbaBatch(in, got); err != nil {
		t.Fatal(err)
	}
	requireBitEqual(t, want, got, "tree")
}

func TestSerializeRoundTrip(t *testing.T) {
	cols, y := synth(800, 8, 41)
	in := scoreInputs(cols, 3000, 404)

	f, err := forest.Fit(cols, y, forest.Config{NumTrees: 6, MaxDepth: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	fl, err := CompileForest(f)
	if err != nil {
		t.Fatal(err)
	}
	data, err := fl.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	fl2, err := UnmarshalForest(data)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, 3000)
	got := make([]float64, 3000)
	if err := fl.PredictProbaBatch(in, want); err != nil {
		t.Fatal(err)
	}
	if err := fl2.PredictProbaBatch(in, got); err != nil {
		t.Fatal(err)
	}
	requireBitEqual(t, want, got, "forest round-trip")

	m, err := gbdt.Fit(cols, y, gbdt.Config{NumRounds: 8, MaxDepth: 4, Eta: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	ml, err := CompileModel(m)
	if err != nil {
		t.Fatal(err)
	}
	data, err = ml.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	ml2, err := UnmarshalModel(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := ml.PredictProbaBatch(in, want); err != nil {
		t.Fatal(err)
	}
	if err := ml2.PredictProbaBatch(in, got); err != nil {
		t.Fatal(err)
	}
	requireBitEqual(t, want, got, "gbdt round-trip")

	if _, err := UnmarshalForest([]byte("junk")); !errors.Is(err, ErrBadEncoding) {
		t.Fatalf("junk decode: %v", err)
	}
}

// TestTooManyCuts compiles a right-leaning chain splitting one feature
// at 255 distinct thresholds, which cannot be expressed in uint8 codes.
func TestTooManyCuts(t *testing.T) {
	const splits = 255
	n := 2*splits + 1
	e := tree.Encoded{
		Feature:   make([]int, n),
		Threshold: make([]float64, n),
		Left:      make([]int, n),
		Right:     make([]int, n),
		Prob:      make([]float64, n),
		NFeatures: 1,
	}
	for i := 0; i < n; i++ {
		e.Feature[i] = -1
		e.Prob[i] = 0.5
	}
	for i := 0; i < splits; i++ {
		at := 2 * i
		e.Feature[at] = 0
		e.Threshold[at] = float64(i)
		e.Left[at] = at + 1
		e.Right[at] = at + 2
	}
	cl, err := tree.Import(e)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CompileTree(cl); !errors.Is(err, ErrTooManyCuts) {
		t.Fatalf("want ErrTooManyCuts, got %v", err)
	}
}

// TestZeroRouting pins the -0.0/+0.0 edge: a split at 0.0 must route
// -0.0 (equal to 0.0 under float compares) left, and the next
// representable negative value left as well.
func TestZeroRouting(t *testing.T) {
	e := tree.Encoded{
		Feature:     []int{0, -1, -1},
		Threshold:   []float64{0.0, 0, 0},
		Left:        []int{1, 0, 0},
		Right:       []int{2, 0, 0},
		Prob:        []float64{0.5, 0.25, 0.75},
		DefaultLeft: []bool{true, false, false},
		NFeatures:   1,
	}
	cl, err := tree.Import(e)
	if err != nil {
		t.Fatal(err)
	}
	fl, err := CompileTree(cl)
	if err != nil {
		t.Fatal(err)
	}
	in := [][]float64{{math.Copysign(0, -1), 0.0, 5e-324, -5e-324, math.NaN(), math.Inf(1), math.Inf(-1)}}
	want := make([]float64, len(in[0]))
	if err := cl.PredictProbaBatch(in, want); err != nil {
		t.Fatal(err)
	}
	got := make([]float64, len(in[0]))
	if err := fl.PredictProbaBatch(in, got); err != nil {
		t.Fatal(err)
	}
	requireBitEqual(t, want, got, "zero routing")
}

func TestShapeErrors(t *testing.T) {
	cols, y := synth(300, 5, 51)
	f, err := forest.Fit(cols, y, forest.Config{NumTrees: 3, MaxDepth: 4, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	fl, err := CompileForest(f)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, 10)
	if err := fl.PredictProbaBatch(make([][]float64, 3), out); !errors.Is(err, ErrShapeMismatch) {
		t.Fatalf("column count: %v", err)
	}
	short := make([][]float64, 5)
	for i := range short {
		short[i] = make([]float64, 4)
	}
	if err := fl.PredictProbaBatch(short, out); !errors.Is(err, ErrShapeMismatch) {
		t.Fatalf("short column: %v", err)
	}
}

package flat

import (
	"testing"

	"repro/internal/forest"
	"repro/internal/hist"
)

// benchSetup mirrors cmd/bench forest-predict-batch: 30 trees, depth
// 12, trained on 4000 rows. Feature count and bins parameterize the
// fleet-deployment shape.
func benchSetup(b *testing.B, features, rows, maxBins int) (*forest.Forest, *Forest, [][]float64) {
	return benchSetupDepth(b, features, rows, maxBins, 12, 1)
}

func benchSetupDepth(b *testing.B, features, rows, maxBins, depth, minLeaf int) (*forest.Forest, *Forest, [][]float64) {
	b.Helper()
	cols, y := synth(4000, features, 7)
	cfg := forest.Config{NumTrees: 30, MaxDepth: depth, MinLeafSamples: minLeaf, Seed: 7, Workers: 1}
	if maxBins > 0 {
		cfg.SplitMethod = hist.SplitHist
		cfg.MaxBins = maxBins
	}
	f, err := forest.Fit(cols, y, cfg)
	if err != nil {
		b.Fatal(err)
	}
	fl, err := CompileForest(f)
	if err != nil {
		b.Fatal(err)
	}
	fl.Workers = 1
	in := scoreInputs(cols, rows, 99)
	return f, fl, in
}

func BenchmarkPointerForest12f(b *testing.B) {
	f, _, in := benchSetup(b, 12, 20000, 64)
	out := make([]float64, 20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.PredictProbaBatch(in, out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFlatForest12f(b *testing.B) {
	_, fl, in := benchSetup(b, 12, 20000, 64)
	out := make([]float64, 20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fl.PredictProbaBatch(in, out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFlatForestFleet12f uses the deployment-regularized model
// shape of cmd/bench fleet-score (depth 8, 64-sample leaves).
func BenchmarkFlatForestFleet12f(b *testing.B) {
	_, fl, in := benchSetupDepth(b, 12, 20000, 64, 8, 64)
	out := make([]float64, 20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fl.PredictProbaBatch(in, out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFlatForest60f(b *testing.B) {
	_, fl, in := benchSetup(b, 60, 20000, 0)
	out := make([]float64, 20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fl.PredictProbaBatch(in, out); err != nil {
			b.Fatal(err)
		}
	}
}

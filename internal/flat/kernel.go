package flat

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// Rows are scored in blocks of blockRows: the block's code matrix
// (nFeatures x blockRows uint8) stays L2-resident while every tree
// walks it, and feature offsets become simple shifted indices. The
// fixed-size array types below exist so masked indexing provably stays
// in bounds and the hot loops carry no bounds checks.
const (
	blockShift = 12
	blockRows  = 1 << blockShift
	rowMask    = blockRows - 1
)

// seg is one pending node of the per-tree block traversal: the rows of
// the block sitting at node, stored at [lo, hi) of the rows buffer for
// its depth (the read-only identity buffer at depth 0).
type seg struct {
	node   int32
	lo, hi int32
	depth  int32
}

// scratch is the per-worker scoring state, pooled across calls.
type scratch struct {
	codes []uint8               // nFeatures * blockRows quantized values
	ident *[blockRows]uint32    // 0..blockRows-1, the root's row segment
	rows  [2]*[blockRows]uint32 // ping-pong partition buffers
	acc   *[blockRows]float64   // block accumulator, copied to out
	stack []seg
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

func getScratch(nFeatures int) *scratch {
	sc := scratchPool.Get().(*scratch)
	if need := nFeatures << blockShift; cap(sc.codes) < need {
		sc.codes = make([]uint8, need)
	} else {
		sc.codes = sc.codes[:nFeatures<<blockShift]
	}
	if sc.ident == nil {
		sc.ident = new([blockRows]uint32)
		for i := range sc.ident {
			sc.ident[i] = uint32(i)
		}
		sc.rows[0] = new([blockRows]uint32)
		sc.rows[1] = new([blockRows]uint32)
		sc.acc = new([blockRows]float64)
	}
	return sc
}

// scoreAll is the shared batch driver. Each block of rows is quantized
// and pushed through every tree, accumulating init + scale*leaf into
// out; post (optional) then finishes the block elementwise. Blocks are
// claimed by workers off a shared counter; per-row results do not
// depend on worker count or claim order, because blocks are disjoint
// and each is computed fully by one worker.
func (e *ensemble) scoreAll(cols [][]float64, out []float64, workers int, init, scale float64, post func([]float64)) error {
	if len(e.trees) == 0 {
		return fmt.Errorf("%w: no trees", ErrNotCompilable)
	}
	if len(cols) != e.nFeatures {
		return fmt.Errorf("%w: %d columns, compiled with %d", ErrShapeMismatch, len(cols), e.nFeatures)
	}
	n := len(out)
	for f, c := range cols {
		// Columns no tree splits on are never read; they may be short
		// or nil.
		if len(c) < n && e.q.cuts[f] != nil {
			return fmt.Errorf("%w: column %d has %d rows, out has %d", ErrShapeMismatch, f, len(c), n)
		}
	}
	if n == 0 {
		return nil
	}
	nBlocks := (n + blockRows - 1) >> blockShift
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nBlocks {
		workers = nBlocks
	}
	if workers <= 1 {
		sc := getScratch(e.nFeatures)
		for b := 0; b < nBlocks; b++ {
			e.scoreBlock(cols, out, b, init, scale, post, sc)
		}
		scratchPool.Put(sc)
		return nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := getScratch(e.nFeatures)
			for {
				b := int(next.Add(1)) - 1
				if b >= nBlocks {
					break
				}
				e.scoreBlock(cols, out, b, init, scale, post, sc)
			}
			scratchPool.Put(sc)
		}()
	}
	wg.Wait()
	return nil
}

// scoreBlock scores block b, rows [b<<blockShift, ...+bn).
func (e *ensemble) scoreBlock(cols [][]float64, out []float64, b int, init, scale float64, post func([]float64), sc *scratch) {
	lo := b << blockShift
	bn := len(out) - lo
	if bn > blockRows {
		bn = blockRows
	}
	e.q.quantizeBlock(cols, lo, bn, sc.codes)
	acc := sc.acc[:bn]
	for i := range acc {
		acc[i] = init
	}
	for ti := range e.trees {
		e.trees[ti].scoreBlockAdd(sc, bn, scale)
	}
	if post != nil {
		post(acc)
	}
	copy(out[lo:lo+bn], acc)
}

// quantizeBlock fills codes with the cut indices of rows [lo, lo+bn)
// for every feature that has cuts. The search counts cuts < v over the
// +Inf-padded key array. The `d = 1` select compiles to a flag
// materialization (SETcc) rather than a branch, so the search carries
// no data-dependent branches (binary-search branches are inherently
// ~50% mispredicted); it is four-way interleaved because one value's
// loop is a serial chain of dependent loads, and four independent
// chains in flight hide most of that latency. NaN compares false
// against every key, lands on 0, and is overwritten with missingCode.
func (q *quantizer) quantizeBlock(cols [][]float64, lo, bn int, codes []uint8) {
	for f, keys := range q.keys {
		if keys == nil {
			continue
		}
		col := cols[f][lo : lo+bn]
		dst := (*[blockRows]uint8)(codes[f<<blockShift : f<<blockShift+blockRows])
		searchColumn(keys, q.startStep[f], col, dst)
		fixupMissing(col, dst)
	}
}

// searchColumn runs the count-of-smaller search for one feature's
// column. NaN compares false against every key and lands on code 0;
// fixupMissing rewrites it afterwards, keeping this loop free of the
// extra live values. Lives in its own function so every chain stays in
// registers (see partition).
func searchColumn(keys *[256]float64, start int32, col []float64, dst *[blockRows]uint8) {
	bn := len(col)
	i := 0
	for ; i+4 <= bn; i += 4 {
		v0, v1, v2, v3 := col[i], col[i+1], col[i+2], col[i+3]
		var x0, x1, x2, x3 int32
		for step := start; step > 0; step >>= 1 {
			s1 := step - 1
			var d0, d1, d2, d3 int32
			if keys[(x0+s1)&255] < v0 {
				d0 = 1
			}
			if keys[(x1+s1)&255] < v1 {
				d1 = 1
			}
			if keys[(x2+s1)&255] < v2 {
				d2 = 1
			}
			if keys[(x3+s1)&255] < v3 {
				d3 = 1
			}
			x0 += step & -d0
			x1 += step & -d1
			x2 += step & -d2
			x3 += step & -d3
		}
		dst[i&rowMask] = uint8(x0)
		dst[(i+1)&rowMask] = uint8(x1)
		dst[(i+2)&rowMask] = uint8(x2)
		dst[(i+3)&rowMask] = uint8(x3)
	}
	for ; i < bn; i++ {
		v := col[i]
		idx := int32(0)
		for step := start; step > 0; step >>= 1 {
			var d int32
			if keys[(idx+step-1)&255] < v {
				d = 1
			}
			idx += step & -d
		}
		dst[i&rowMask] = uint8(idx)
	}
}

// fixupMissing rewrites NaN rows' codes to missingCode. The branch is
// almost always not-taken and predicts well, unlike a compare folded
// into the search chains.
func fixupMissing(col []float64, dst *[blockRows]uint8) {
	for i, v := range col {
		if v != v {
			dst[i&rowMask] = missingCode
		}
	}
}

// scoreBlockAdd adds scale*leafValue to sc.acc[r] for each of the
// block's bn rows by partitioning the row set down the tree: every
// node's constants load once per block, each row costs a handful of
// integer ops per level, and rows stop paying as soon as their segment
// reaches a leaf. The two-cursor partition writes every row to both
// cursors and advances exactly one, so the loop is branch-free; the
// right half ends up reversed, which is irrelevant because row order
// within a segment never affects results (each row's accumulation
// order across trees is fixed by the outer tree loop).
func (t *flatTree) scoreBlockAdd(sc *scratch, bn int, scale float64) {
	stack := sc.stack[:0]
	stack = append(stack, seg{node: 0, lo: 0, hi: int32(bn)})
	codes := sc.codes
	acc := sc.acc
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		src := sc.ident
		if s.depth > 0 {
			src = sc.rows[(s.depth-1)&1]
		}
		nd := s.node
		fo := t.featOff[nd]
		if fo < 0 {
			accumulate(acc, src, s.lo, s.hi, scale*t.value[nd])
			continue
		}
		colCodes := (*[blockRows]uint8)(codes[fo : fo+blockRows])
		sb1 := uint32(t.bin[nd]) + 1
		l := t.left[nd]
		ml := t.missL[nd]
		// Nodes whose children are both leaves — where most rows end up —
		// skip the write-out/re-read round trip and add straight into the
		// accumulator.
		if t.featOff[l] < 0 && t.featOff[l+1] < 0 {
			vl := scale * t.value[l]
			vr := scale * t.value[l+1]
			if ml == 0 {
				partitionLeafLeaf(src, colCodes, acc, s.lo, s.hi, sb1, vl, vr)
			} else {
				partitionLeafLeafMissL(src, colCodes, acc, s.lo, s.hi, sb1, vl, vr)
			}
			continue
		}
		dst := sc.rows[s.depth&1]
		var wl int32
		switch {
		case s.depth == 0:
			// The root's source is the identity permutation; rows are
			// their own indices and the src load disappears.
			if ml == 0 {
				wl = partitionRoot(dst, colCodes, s.lo, s.hi, sb1)
			} else {
				wl = partitionRootMissL(dst, colCodes, s.lo, s.hi, sb1)
			}
		case ml == 0:
			wl = partition(src, dst, colCodes, s.lo, s.hi, sb1)
		default:
			wl = partitionMissL(src, dst, colCodes, s.lo, s.hi, sb1)
		}
		d := s.depth + 1
		if wl < s.hi {
			stack = append(stack, seg{node: l + 1, lo: wl, hi: s.hi, depth: d})
		}
		if wl > s.lo {
			stack = append(stack, seg{node: l, lo: s.lo, hi: wl, depth: d})
		}
	}
	sc.stack = stack
}

// partition splits src[lo:hi] into dst: rows whose code on this node's
// feature is <= bin (sb1 = bin+1) go to the front in order, the rest
// fill from the back (reversed — harmless, segment order never affects
// results). Each row is written exactly once, to the left cursor or
// the top-down right cursor, chosen by conditional move; exactly one
// cursor then advances, so the loop is branch-free. These loops live
// in their own functions so the register allocator isn't fighting the
// traversal state in scoreBlockAdd; they are deliberately small enough
// to keep every live value in registers.
func partition(src, dst *[blockRows]uint32, colCodes *[blockRows]uint8, lo, hi int32, sb1 uint32) int32 {
	// Touch each array once so the nil checks run here instead of every
	// iteration.
	_, _, _ = src[0], dst[0], colCodes[0]
	wl, wr1 := lo, hi-1
	k := lo
	for ; k+2 <= hi; k += 2 {
		r0 := src[k&rowMask]
		c0 := uint32(colCodes[r0&rowMask])
		gl0 := (c0 - sb1) >> 31 // 1 iff code <= bin
		idx0 := wr1
		if gl0 != 0 {
			idx0 = wl
		}
		r1 := src[(k+1)&rowMask]
		dst[idx0&rowMask] = r0
		wl += int32(gl0)
		wr1 += int32(gl0) - 1
		c1 := uint32(colCodes[r1&rowMask])
		gl1 := (c1 - sb1) >> 31
		idx1 := wr1
		if gl1 != 0 {
			idx1 = wl
		}
		dst[idx1&rowMask] = r1
		wl += int32(gl1)
		wr1 += int32(gl1) - 1
	}
	if k < hi {
		r := src[k&rowMask]
		c := uint32(colCodes[r&rowMask])
		gl := (c - sb1) >> 31
		idx := wr1
		if gl != 0 {
			idx = wl
		}
		dst[idx&rowMask] = r
		wl += int32(gl)
	}
	return wl
}

// accumulate adds v to acc[r] for every row r in src[lo:hi] (a leaf's
// segment).
func accumulate(acc *[blockRows]float64, src *[blockRows]uint32, lo, hi int32, v float64) {
	for k := lo; k < hi; k++ {
		acc[src[k&rowMask]&rowMask] += v
	}
}

// partitionMissL is partition for nodes routing missing (code 255)
// left.
func partitionMissL(src, dst *[blockRows]uint32, colCodes *[blockRows]uint8, lo, hi int32, sb1 uint32) int32 {
	wl, wr1 := lo, hi-1
	for k := lo; k < hi; k++ {
		r := src[k&rowMask]
		c := uint32(colCodes[r&rowMask])
		// 1 iff code <= bin or code == 255.
		gl := ((c - sb1) >> 31) | (((c ^ missingCode) - 1) >> 31)
		idx := wr1
		if gl != 0 {
			idx = wl
		}
		dst[idx&rowMask] = r
		wl += int32(gl)
		wr1 += int32(gl) - 1
	}
	return wl
}

// partitionRoot is partition at depth 0, where the source permutation
// is the identity and rows are their own indices.
func partitionRoot(dst *[blockRows]uint32, colCodes *[blockRows]uint8, lo, hi int32, sb1 uint32) int32 {
	wl, wr1 := lo, hi-1
	for k := lo; k < hi; k++ {
		c := uint32(colCodes[k&rowMask])
		gl := (c - sb1) >> 31
		idx := wr1
		if gl != 0 {
			idx = wl
		}
		dst[idx&rowMask] = uint32(k)
		wl += int32(gl)
		wr1 += int32(gl) - 1
	}
	return wl
}

// partitionRootMissL is partitionRoot for nodes routing missing left.
func partitionRootMissL(dst *[blockRows]uint32, colCodes *[blockRows]uint8, lo, hi int32, sb1 uint32) int32 {
	wl, wr1 := lo, hi-1
	for k := lo; k < hi; k++ {
		c := uint32(colCodes[k&rowMask])
		gl := ((c - sb1) >> 31) | (((c ^ missingCode) - 1) >> 31)
		idx := wr1
		if gl != 0 {
			idx = wl
		}
		dst[idx&rowMask] = uint32(k)
		wl += int32(gl)
		wr1 += int32(gl) - 1
	}
	return wl
}

// partitionLeafLeaf resolves a node whose children are both leaves:
// instead of materializing the two child segments it adds the chosen
// leaf's value directly into the accumulator. The select runs on the
// value's bits because integer conditional moves compile branch-free
// while float selects do not.
func partitionLeafLeaf(src *[blockRows]uint32, colCodes *[blockRows]uint8, acc *[blockRows]float64, lo, hi int32, sb1 uint32, vl, vr float64) {
	bl, br := math.Float64bits(vl), math.Float64bits(vr)
	for k := lo; k < hi; k++ {
		r := src[k&rowMask]
		c := uint32(colCodes[r&rowMask])
		gl := (c - sb1) >> 31
		b := br
		if gl != 0 {
			b = bl
		}
		acc[r&rowMask] += math.Float64frombits(b)
	}
}

// partitionLeafLeafMissL is partitionLeafLeaf for nodes routing missing
// left.
func partitionLeafLeafMissL(src *[blockRows]uint32, colCodes *[blockRows]uint8, acc *[blockRows]float64, lo, hi int32, sb1 uint32, vl, vr float64) {
	bl, br := math.Float64bits(vl), math.Float64bits(vr)
	for k := lo; k < hi; k++ {
		r := src[k&rowMask]
		c := uint32(colCodes[r&rowMask])
		gl := ((c - sb1) >> 31) | (((c ^ missingCode) - 1) >> 31)
		b := br
		if gl != 0 {
			b = bl
		}
		acc[r&rowMask] += math.Float64frombits(b)
	}
}

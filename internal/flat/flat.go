// Package flat compiles fitted tree ensembles (tree.Classifier,
// forest.Forest, gbdt.Model) into flat, cache-friendly node arrays
// scored over uint8 histogram codes instead of float64 columns.
//
// Compilation derives a per-feature cut set from the ensemble itself:
// the sorted distinct split thresholds actually used by its nodes (at
// most 254 per feature — ensembles beyond that fail with ErrTooManyCuts
// and callers fall back to the pointer path). Each input value is then
// quantized once per batch to the index of the first cut >= value
// (NaN -> 255, above-all-cuts -> len(cuts)), after which every split
// decision in every tree is a single integer compare:
//
//	code(v) <= splitBin  <=>  v <= threshold
//
// holds for all float64 values by construction, so flat predictions are
// bit-identical to the exact pointer-tree paths, including NaN routing
// via each node's missing-direction bit and the ordering of float
// accumulation across trees.
//
// Scoring is row-blocked: a block of rows is quantized into an
// L2-resident code matrix, then each tree partitions the block's row
// indices down its nodes with a branchless two-cursor split, so every
// node's constants load once per block and each row pays only for the
// depth of the leaf it actually reaches.
package flat

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/forest"
	"repro/internal/gbdt"
	"repro/internal/tree"
)

// Compilation limits. maxCuts is 254 because code 255 is reserved for
// missing (NaN) and a split on the largest cut must still route
// above-all-cuts values (code == len(cuts)) right.
const (
	maxCuts     = 254
	missingCode = 255
	maxFeatures = 1 << 15
)

// Errors returned by compilation and decoding.
var (
	// ErrTooManyCuts indicates an ensemble using more than 254 distinct
	// split thresholds on one feature; it cannot be expressed in uint8
	// codes and the caller should keep the pointer path.
	ErrTooManyCuts = errors.New("flat: more than 254 distinct cuts on a feature")
	// ErrNotCompilable indicates an ensemble outside the flat layout's
	// structural limits (feature or node counts).
	ErrNotCompilable = errors.New("flat: not compilable")
	// ErrBadEncoding indicates serialized bytes that do not decode into
	// a valid compiled ensemble.
	ErrBadEncoding = errors.New("flat: bad encoding")
	// ErrShapeMismatch indicates prediction input whose shape does not
	// match the compiled ensemble.
	ErrShapeMismatch = errors.New("flat: shape mismatch")
)

// quantizer maps raw float64 feature values to uint8 cut indices.
type quantizer struct {
	// cuts[f] is feature f's ascending distinct thresholds; nil when no
	// node splits on f (such columns are never read when scoring).
	cuts [][]float64
	// keys[f] is cuts[f] padded with +Inf. Cuts are finite (tree
	// thresholds always are), so padding slots are never counted by the
	// strict "cut < v" compare, and NaN compares false everywhere (its
	// search result is discarded for missingCode anyway). The fixed
	// 256-slot array type lets masked indexing drop every bounds check
	// in the per-value count-of-smaller loop, and startStep[f] (half
	// the padded power of two, which must exceed the cut count) sets
	// its trip count.
	keys      []*[256]float64
	startStep []int32
}

// buildQuantizer collects the distinct thresholds of every internal
// node across trees, given as parallel (feature, threshold) arrays with
// feature < 0 marking leaves.
func buildQuantizer(nFeatures int, features [][]int, thresholds [][]float64) (*quantizer, error) {
	perFeat := make([][]float64, nFeatures)
	for ti, fs := range features {
		for i, f := range fs {
			if f < 0 {
				continue
			}
			// +0.0 canonicalizes any -0.0 threshold; routing at the cut
			// is identical since -0.0 == 0.0 under float compares.
			perFeat[f] = append(perFeat[f], thresholds[ti][i]+0.0)
		}
	}
	q := newQuantizer(nFeatures)
	for f, cs := range perFeat {
		if len(cs) == 0 {
			continue
		}
		sort.Float64s(cs)
		w := 1
		for i := 1; i < len(cs); i++ {
			if cs[i] != cs[w-1] {
				cs[w] = cs[i]
				w++
			}
		}
		cs = cs[:w]
		if w > maxCuts {
			return nil, fmt.Errorf("%w: feature %d has %d", ErrTooManyCuts, f, w)
		}
		q.setFeature(f, cs)
	}
	return q, nil
}

func newQuantizer(nFeatures int) *quantizer {
	return &quantizer{
		cuts:      make([][]float64, nFeatures),
		keys:      make([]*[256]float64, nFeatures),
		startStep: make([]int32, nFeatures),
	}
}

// setFeature installs feature f's ascending distinct cut set
// (1 <= len <= maxCuts).
func (q *quantizer) setFeature(f int, cs []float64) {
	// Pad strictly beyond len(cs): the count-of-smaller loop over a
	// power-of-two region can only produce values < p, and a value
	// above every cut must yield count == len(cs).
	p := 1
	for p <= len(cs) {
		p <<= 1
	}
	keys := new([256]float64)
	for i := range keys {
		keys[i] = math.Inf(1)
	}
	for i, c := range cs {
		// +0.0 collapses a -0.0 cut into +0.0; identical routing since
		// the two zeros are equal under float compares.
		keys[i] = c + 0.0
	}
	q.cuts[f] = cs
	q.keys[f] = keys
	q.startStep[f] = int32(p >> 1)
}

// codeOf returns the scoring code of value v on feature f: the index of
// the first cut >= v, or missingCode for NaN. Used by compilation and
// tests; batch scoring uses the inlined loop in quantizeBlock.
func (q *quantizer) codeOf(f int, v float64) uint8 {
	if v != v {
		return missingCode
	}
	keys := q.keys[f]
	idx := int32(0)
	for step := q.startStep[f]; step > 0; step >>= 1 {
		if keys[(idx+step-1)&255] < v {
			idx += step
		}
	}
	return uint8(idx)
}

// cutIndex returns the code of an exact threshold present in the cut
// set (every compiled node threshold is, by construction).
func (q *quantizer) cutIndex(f int, thr float64) (uint8, error) {
	cs := q.cuts[f]
	i := sort.SearchFloat64s(cs, thr+0.0)
	if i >= len(cs) || cs[i] != thr {
		return 0, fmt.Errorf("%w: threshold %v not in feature %d cut set", ErrNotCompilable, thr, f)
	}
	return uint8(i), nil
}

// flatTree is one compiled tree in SoA layout, BFS-ordered so children
// sit after parents and siblings are adjacent (right = left+1).
type flatTree struct {
	// featOff is the node's feature index pre-shifted by blockShift
	// (the offset of its code column in a block's code matrix), or -1
	// for leaves.
	featOff []int32
	bin     []uint8   // split code: route left iff code <= bin
	missL   []uint8   // 1 when missing (code 255) routes left
	left    []int32   // left child; right child is left+1
	value   []float64 // leaf payload (prob or weight); 0 on internal nodes
}

// ensemble is the shared compiled form behind Tree, Forest, and Model.
type ensemble struct {
	q         *quantizer
	trees     []flatTree
	nFeatures int
}

// compileTree renumbers one tree's nodes into BFS order with adjacent
// siblings and translates thresholds to codes. Inputs are the parallel
// arrays of the source encodings; defaultLeft may be nil (missing
// routes right, matching pre-missing-support encodings).
func compileTree(q *quantizer, feature []int, threshold []float64, left, right []int, value []float64, defaultLeft []bool) (flatTree, error) {
	n := len(feature)
	if n == 0 || n > math.MaxInt32/2 {
		return flatTree{}, fmt.Errorf("%w: %d nodes", ErrNotCompilable, n)
	}
	ft := flatTree{
		featOff: make([]int32, 0, n),
		bin:     make([]uint8, 0, n),
		missL:   make([]uint8, 0, n),
		left:    make([]int32, 0, n),
		value:   make([]float64, 0, n),
	}
	// BFS from the root: emit the node, then append both children to
	// the frontier together so they land adjacent in the new order.
	order := make([]int, 0, n)
	order = append(order, 0)
	for at := 0; at < len(order); at++ {
		src := order[at]
		if src < 0 || src >= n {
			return flatTree{}, fmt.Errorf("%w: child index %d of %d nodes", ErrNotCompilable, src, n)
		}
		f := feature[src]
		if f < 0 {
			ft.featOff = append(ft.featOff, -1)
			ft.bin = append(ft.bin, missingCode)
			ft.missL = append(ft.missL, 0)
			ft.left = append(ft.left, int32(at)) // self-link; never followed
			ft.value = append(ft.value, value[src])
			continue
		}
		if f >= len(q.cuts) {
			return flatTree{}, fmt.Errorf("%w: feature %d of %d", ErrNotCompilable, f, len(q.cuts))
		}
		sb, err := q.cutIndex(f, threshold[src])
		if err != nil {
			return flatTree{}, err
		}
		var ml uint8
		if defaultLeft != nil && defaultLeft[src] {
			ml = 1
		}
		ft.featOff = append(ft.featOff, int32(f)<<blockShift)
		ft.bin = append(ft.bin, sb)
		ft.missL = append(ft.missL, ml)
		ft.left = append(ft.left, int32(len(order))) // next frontier slot
		ft.value = append(ft.value, 0)
		order = append(order, left[src], right[src])
	}
	if len(order) != n {
		return flatTree{}, fmt.Errorf("%w: %d reachable of %d nodes", ErrNotCompilable, len(order), n)
	}
	return ft, nil
}

// Tree is a compiled tree.Classifier.
type Tree struct {
	e ensemble
	// Workers bounds scoring concurrency; <= 0 means GOMAXPROCS.
	// Results are bit-identical for any value.
	Workers int
}

// Forest is a compiled forest.Forest.
type Forest struct {
	e ensemble
	// Workers bounds scoring concurrency; <= 0 means GOMAXPROCS.
	// Results are bit-identical for any value.
	Workers int
}

// Model is a compiled gbdt.Model.
type Model struct {
	e    ensemble
	base float64
	eta  float64
	// Workers bounds scoring concurrency; <= 0 means GOMAXPROCS.
	// Results are bit-identical for any value.
	Workers int
}

// CompileTree compiles a fitted classification tree. Fails with
// ErrTooManyCuts when the tree splits one feature on more than 254
// distinct thresholds.
func CompileTree(t *tree.Classifier) (*Tree, error) {
	e := t.Export()
	return compileTreeEncoded(e)
}

func compileTreeEncoded(e tree.Encoded) (*Tree, error) {
	if e.NFeatures <= 0 || e.NFeatures > maxFeatures {
		return nil, fmt.Errorf("%w: %d features", ErrNotCompilable, e.NFeatures)
	}
	q, err := buildQuantizer(e.NFeatures, [][]int{e.Feature}, [][]float64{e.Threshold})
	if err != nil {
		return nil, err
	}
	ft, err := compileTree(q, e.Feature, e.Threshold, e.Left, e.Right, e.Prob, e.DefaultLeft)
	if err != nil {
		return nil, err
	}
	return &Tree{e: ensemble{q: q, trees: []flatTree{ft}, nFeatures: e.NFeatures}}, nil
}

// CompileForest compiles a fitted forest; all trees share one cut set.
func CompileForest(f *forest.Forest) (*Forest, error) {
	trees := f.Trees()
	if len(trees) == 0 {
		return nil, fmt.Errorf("%w: no trees", ErrNotCompilable)
	}
	encs := make([]tree.Encoded, len(trees))
	features := make([][]int, len(trees))
	thresholds := make([][]float64, len(trees))
	for i, t := range trees {
		encs[i] = t.Export()
		features[i] = encs[i].Feature
		thresholds[i] = encs[i].Threshold
	}
	nf := f.NumFeatures()
	if nf <= 0 || nf > maxFeatures {
		return nil, fmt.Errorf("%w: %d features", ErrNotCompilable, nf)
	}
	q, err := buildQuantizer(nf, features, thresholds)
	if err != nil {
		return nil, err
	}
	out := &Forest{e: ensemble{q: q, nFeatures: nf}}
	for i, e := range encs {
		if e.NFeatures != nf {
			return nil, fmt.Errorf("%w: tree %d has %d features, forest %d", ErrNotCompilable, i, e.NFeatures, nf)
		}
		ft, err := compileTree(q, e.Feature, e.Threshold, e.Left, e.Right, e.Prob, e.DefaultLeft)
		if err != nil {
			return nil, err
		}
		out.e.trees = append(out.e.trees, ft)
	}
	return out, nil
}

// CompileModel compiles a fitted boosted model; all trees share one cut
// set.
func CompileModel(m *gbdt.Model) (*Model, error) {
	enc, err := m.Export()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotCompilable, err)
	}
	return compileModelEncoded(enc)
}

func compileModelEncoded(enc gbdt.Encoded) (*Model, error) {
	if enc.NFeatures <= 0 || enc.NFeatures > maxFeatures {
		return nil, fmt.Errorf("%w: %d features", ErrNotCompilable, enc.NFeatures)
	}
	features := make([][]int, len(enc.Trees))
	thresholds := make([][]float64, len(enc.Trees))
	for i := range enc.Trees {
		features[i] = enc.Trees[i].Feature
		thresholds[i] = enc.Trees[i].Threshold
	}
	q, err := buildQuantizer(enc.NFeatures, features, thresholds)
	if err != nil {
		return nil, err
	}
	out := &Model{
		e:    ensemble{q: q, nFeatures: enc.NFeatures},
		base: enc.Base,
		eta:  enc.Eta,
	}
	for _, et := range enc.Trees {
		ft, err := compileTree(q, et.Feature, et.Threshold, et.Left, et.Right, et.Weight, et.DefaultLeft)
		if err != nil {
			return nil, err
		}
		out.e.trees = append(out.e.trees, ft)
	}
	return out, nil
}

// NumFeatures returns the feature count the source ensemble was fitted
// with.
func (t *Tree) NumFeatures() int   { return t.e.nFeatures }
func (f *Forest) NumFeatures() int { return f.e.nFeatures }
func (m *Model) NumFeatures() int  { return m.e.nFeatures }

// NumTrees returns the compiled tree count.
func (f *Forest) NumTrees() int { return len(f.e.trees) }
func (m *Model) NumTrees() int  { return len(m.e.trees) }

// PredictProbaBatch scores every row of column-major data, writing row
// i's positive-class probability into out[i]. Bit-identical to
// tree.Classifier.PredictProbaBatch on the source tree.
func (t *Tree) PredictProbaBatch(cols [][]float64, out []float64) error {
	return t.e.scoreAll(cols, out, t.Workers, 0, 1, nil)
}

// PredictProbaBatch scores every row of column-major data, writing row
// i's probability into out[i]. Bit-identical to
// forest.Forest.PredictProbaBatch on the source forest for any worker
// count on either side.
func (f *Forest) PredictProbaBatch(cols [][]float64, out []float64) error {
	nt := float64(len(f.e.trees))
	return f.e.scoreAll(cols, out, f.Workers, 0, 1, func(blk []float64) {
		// Divide (not multiply-by-reciprocal) exactly as the pointer
		// forest does, keeping results bit-identical.
		for i := range blk {
			blk[i] /= nt
		}
	})
}

// PredictMarginBatch writes each row's raw additive margin (log-odds)
// into out[i]. Bit-identical to gbdt.Model.PredictMarginBatch.
func (m *Model) PredictMarginBatch(cols [][]float64, out []float64) error {
	return m.e.scoreAll(cols, out, m.Workers, m.base, m.eta, nil)
}

// PredictProbaBatch writes each row's positive-class probability into
// out[i]. Bit-identical to gbdt.Model.PredictProbaBatch.
func (m *Model) PredictProbaBatch(cols [][]float64, out []float64) error {
	return m.e.scoreAll(cols, out, m.Workers, m.base, m.eta, func(blk []float64) {
		for i, v := range blk {
			blk[i] = 1 / (1 + math.Exp(-v))
		}
	})
}

package faults

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
)

// Process-level fault injection: deterministic degrade points.
//
// A degrade point is a named site (registered with RegisterDegradeSite)
// where a component can be made to produce a deliberately degenerate —
// but well-formed — artifact, e.g. a candidate model whose alarm
// thresholds are scrambled so it must lose a canary evaluation. Unlike
// a crash point, the process keeps running; the degradation is baked
// into whatever the site produces, so downstream verification (and any
// artifacts saved) see a consistent, resumable view of the fault.
//
// Setting the WEFR_DEGRADE environment variable to a site name makes
// every execution of that site report degraded; with the variable
// unset, Degraded is a cheap no-op returning false.

// DegradeEnv is the environment variable that arms a degrade point.
const DegradeEnv = "WEFR_DEGRADE"

var (
	degradeMu    sync.Mutex
	degradeSites = make(map[string]bool)

	// degradeArmed caches the DegradeEnv value; empty means disarmed.
	degradeArmed atomic.Pointer[string]
	degradeInit  sync.Once
)

// RegisterDegradeSite declares a named degrade point and returns the
// name for use at the site. Registering the same name twice panics:
// site names are global and a collision would make a fault matrix
// silently ambiguous.
func RegisterDegradeSite(name string) string {
	degradeMu.Lock()
	defer degradeMu.Unlock()
	if name == "" {
		panic("faults: empty degrade site name")
	}
	if degradeSites[name] {
		panic(fmt.Sprintf("faults: degrade site %q registered twice", name))
	}
	degradeSites[name] = true
	return name
}

// DegradeSites returns every registered degrade point name, sorted.
func DegradeSites() []string {
	degradeMu.Lock()
	defer degradeMu.Unlock()
	out := make([]string, 0, len(degradeSites))
	for name := range degradeSites {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// armDegradeFromEnv reads DegradeEnv once per process.
func armDegradeFromEnv() {
	degradeInit.Do(func() {
		val := os.Getenv(DegradeEnv)
		if val == "" {
			return
		}
		degradeArmed.Store(&val)
	})
}

// Degraded reports whether the named site is armed via WEFR_DEGRADE.
// Sites must be registered (RegisterDegradeSite); querying an
// unregistered site panics so the registry and the call sites cannot
// drift apart.
func Degraded(site string) bool {
	armDegradeFromEnv()
	degradeMu.Lock()
	known := degradeSites[site]
	degradeMu.Unlock()
	if !known {
		panic(fmt.Sprintf("faults: degrade point at unregistered site %q", site))
	}
	armed := degradeArmed.Load()
	return armed != nil && *armed == site
}

package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/smart"
)

// ErrTransient is the error a Flaky source returns for injected
// transient fetch failures, wrapped with drive context. Stores retry
// it like any other fetch error; it exists so tests can assert the
// failure they provoked is the one they observed.
var ErrTransient = errors.New("faults: transient source error")

// FlakyConfig parameterizes process-level source faults: transient
// errors and slow or hung fetches, the failure modes a remote
// telemetry backend exhibits in production. All injections are
// deterministic per (Seed, drive, attempt), independent of fetch order
// and concurrency.
type FlakyConfig struct {
	// Seed drives the FailRate stream.
	Seed int64
	// FailFirst makes the first N Series fetches of every drive fail
	// with ErrTransient — the canonical "retry succeeds" shape.
	FailFirst int
	// FailRate additionally fails each attempt with this probability,
	// drawn from a per-(drive, attempt) stream.
	FailRate float64
	// Delay slows every Series fetch by this much — a degraded but
	// live backend.
	Delay time.Duration
	// HangFirst makes the first N Series fetches of every drive block
	// until ReleaseHung is called (or forever) — a hung backend that
	// only a per-attempt deadline can step around.
	HangFirst int
	// HangRate additionally hangs each attempt with this probability,
	// drawn from a per-(drive, attempt) stream independent of
	// FailRate's — a backend that wedges intermittently under load
	// rather than on a fixed schedule.
	HangRate float64
}

// opFlakyHang seeds the per-attempt hang stream, a distinct op plane
// from opFlaky so FailRate and HangRate draw independently.
const opFlakyHang uint64 = 1 << 33

// Flaky wraps a dataset.Source with transient fetch errors, added
// latency, and hangs per FlakyConfig. The inventory (DrivesOf) and day
// span pass through untouched; only Series misbehaves. Safe for
// concurrent use.
type Flaky struct {
	inner dataset.Source
	cfg   FlakyConfig

	mu       sync.Mutex
	attempts map[int]int
	released bool
	releaseC chan struct{}
}

var _ dataset.Source = (*Flaky)(nil)

// NewFlaky wraps src with the given process-fault configuration.
func NewFlaky(src dataset.Source, cfg FlakyConfig) *Flaky {
	return &Flaky{
		inner:    src,
		cfg:      cfg,
		attempts: make(map[int]int),
		releaseC: make(chan struct{}),
	}
}

// ReleaseHung unblocks every fetch currently (or subsequently) hung by
// HangFirst. Idempotent.
func (f *Flaky) ReleaseHung() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.released {
		f.released = true
		close(f.releaseC)
	}
}

// Attempts returns the number of Series fetches seen for the drive.
func (f *Flaky) Attempts(driveID int) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.attempts[driveID]
}

// Days implements dataset.Source.
func (f *Flaky) Days() int { return f.inner.Days() }

// DrivesOf implements dataset.Source.
func (f *Flaky) DrivesOf(m smart.ModelID) []dataset.DriveRef { return f.inner.DrivesOf(m) }

// Series implements dataset.Source, injecting the configured process
// faults before delegating to the wrapped source.
func (f *Flaky) Series(ref dataset.DriveRef) (map[smart.Feature][]float64, int, error) {
	f.mu.Lock()
	f.attempts[ref.ID]++
	attempt := f.attempts[ref.ID]
	f.mu.Unlock()

	hang := attempt <= f.cfg.HangFirst
	if !hang && f.cfg.HangRate > 0 {
		rng := rand.New(rand.NewSource(mixSeed(f.cfg.Seed, ref.ID, opFlakyHang+uint64(attempt))))
		hang = rng.Float64() < f.cfg.HangRate
	}
	if hang {
		<-f.releaseC
	}
	if f.cfg.Delay > 0 {
		time.Sleep(f.cfg.Delay)
	}
	if attempt <= f.cfg.FailFirst {
		return nil, 0, fmt.Errorf("%w: drive %d attempt %d", ErrTransient, ref.ID, attempt)
	}
	if f.cfg.FailRate > 0 {
		rng := rand.New(rand.NewSource(mixSeed(f.cfg.Seed, ref.ID, opFlaky+uint64(attempt))))
		if rng.Float64() < f.cfg.FailRate {
			return nil, 0, fmt.Errorf("%w: drive %d attempt %d", ErrTransient, ref.ID, attempt)
		}
	}
	return f.inner.Series(ref)
}

package faults

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/smart"
)

// fakeSource serves deterministic synthetic series: cell (drive, feat,
// day) = id*1000 + day + kind/10, regenerated fresh on every call.
type fakeSource struct {
	days   int
	drives []dataset.DriveRef
	feats  []smart.Feature
}

func newFakeSource() *fakeSource {
	return &fakeSource{
		days: 60,
		drives: []dataset.DriveRef{
			{ID: 1, Model: smart.MA1, FailDay: -1},
			{ID: 2, Model: smart.MA1, FailDay: 40},
			{ID: 3, Model: smart.MC1, FailDay: 55},
			{ID: 4, Model: smart.MC1, FailDay: -1},
		},
		feats: []smart.Feature{
			{Attr: smart.MWI, Kind: smart.Raw},
			{Attr: smart.MWI, Kind: smart.Normalized},
			{Attr: smart.RSC, Kind: smart.Raw},
			{Attr: smart.RSC, Kind: smart.Normalized},
		},
	}
}

func (f *fakeSource) Days() int { return f.days }

func (f *fakeSource) DrivesOf(m smart.ModelID) []dataset.DriveRef {
	var out []dataset.DriveRef
	for _, d := range f.drives {
		if d.Model == m {
			out = append(out, d)
		}
	}
	return out
}

func (f *fakeSource) Series(ref dataset.DriveRef) (map[smart.Feature][]float64, int, error) {
	cols := make(map[smart.Feature][]float64, len(f.feats))
	for _, ft := range f.feats {
		col := make([]float64, f.days)
		for day := range col {
			col[day] = float64(ref.ID*1000+day) + float64(ft.Kind)/10
		}
		cols[ft] = col
	}
	return cols, f.days - 1, nil
}

func TestDisabledPassthrough(t *testing.T) {
	src := newFakeSource()
	inj := New(src, Config{})
	ref := src.drives[0]
	want, _, _ := src.Series(ref)
	got, lastDay, err := inj.Series(ref)
	if err != nil {
		t.Fatal(err)
	}
	if lastDay != src.days-1 {
		t.Errorf("lastDay = %d, want %d", lastDay, src.days-1)
	}
	for ft, col := range want {
		for day, v := range col {
			if got[ft][day] != v {
				t.Fatalf("disabled injector altered %v day %d", ft, day)
			}
		}
	}
	refs := inj.DrivesOf(smart.MA1)
	for i, r := range refs {
		if r != src.DrivesOf(smart.MA1)[i] {
			t.Errorf("disabled injector altered DriveRef %v", r)
		}
	}
	if s := inj.Stats(); s != (Stats{}) {
		t.Errorf("disabled injector reported stats %+v", s)
	}
}

func TestDeterministicAcrossOrder(t *testing.T) {
	cfg := Config{
		Seed: 7, GapRate: 0.05, NaNRate: 0.02, SentinelRate: 0.01,
		StuckRate: 0.5, DupRate: 0.05, SwapRate: 0.05,
	}
	a := New(newFakeSource(), cfg)
	b := New(newFakeSource(), cfg)
	drives := newFakeSource().drives
	// Query a front-to-back, b back-to-front (and twice).
	seriesA := make(map[int]map[smart.Feature][]float64)
	for _, d := range drives {
		s, _, err := a.Series(d)
		if err != nil {
			t.Fatal(err)
		}
		seriesA[d.ID] = s
	}
	for i := len(drives) - 1; i >= 0; i-- {
		for pass := 0; pass < 2; pass++ {
			s, _, err := b.Series(drives[i])
			if err != nil {
				t.Fatal(err)
			}
			for ft, col := range seriesA[drives[i].ID] {
				for day, v := range col {
					w := s[ft][day]
					if v != w && !(v != v && w != w) {
						t.Fatalf("drive %d %v day %d: %v vs %v (order-dependent injection)",
							drives[i].ID, ft, day, v, w)
					}
				}
			}
		}
	}
	if sa, sb := a.Stats(), b.Stats(); sa != sb {
		t.Errorf("stats differ across query order: %+v vs %+v", sa, sb)
	}
}

func TestOperatorCountsMatchOutput(t *testing.T) {
	src := newFakeSource()
	cfg := Config{Seed: 3, GapRate: 0.1, NaNRate: 0.05}
	inj := New(src, cfg)
	nanCells := 0
	for _, d := range src.drives {
		s, _, err := inj.Series(d)
		if err != nil {
			t.Fatal(err)
		}
		for _, col := range s {
			for _, v := range col {
				if v != v {
					nanCells++
				}
			}
		}
	}
	st := inj.Stats()
	if st.GapDays == 0 || st.NaNCells == 0 {
		t.Fatalf("expected nonzero gap and nan counts, got %+v", st)
	}
	// Every NaN in the output is accounted for: gap days blank all 4
	// features; NaN cells are counted only when they newly corrupt.
	if want := st.GapDays*4 + st.NaNCells; nanCells != want {
		t.Errorf("output has %d NaN cells, stats account for %d (%+v)", nanCells, want, st)
	}
	if st.DrivesTouched == 0 || st.DrivesTouched > len(src.drives) {
		t.Errorf("DrivesTouched = %d, want in (0, %d]", st.DrivesTouched, len(src.drives))
	}
	// Re-querying must not double count.
	if _, _, err := inj.Series(src.drives[0]); err != nil {
		t.Fatal(err)
	}
	if again := inj.Stats(); again != st {
		t.Errorf("stats drifted on repeat query: %+v vs %+v", again, st)
	}
}

func TestDropoutBlanksModelAttribute(t *testing.T) {
	src := newFakeSource()
	inj := New(src, Config{Seed: 1, Dropout: []Dropout{{Model: smart.MA1, Attr: smart.MWI, Rate: 1}}})
	for _, d := range src.drives {
		s, _, err := inj.Series(d)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []smart.Kind{smart.Raw, smart.Normalized} {
			col := s[smart.Feature{Attr: smart.MWI, Kind: k}]
			gotNaN := col[0] != col[0]
			wantNaN := d.Model == smart.MA1
			if gotNaN != wantNaN {
				t.Errorf("drive %d (%v) MWI_%v NaN = %v, want %v", d.ID, d.Model, k, gotNaN, wantNaN)
			}
		}
		// RSC untouched for everyone.
		if col := s[smart.Feature{Attr: smart.RSC, Kind: smart.Raw}]; col[5] != col[5] {
			t.Errorf("drive %d: dropout leaked into RSC", d.ID)
		}
	}
	if st := inj.Stats(); st.DropoutColumns != 4 { // 2 MA1 drives x 2 kinds
		t.Errorf("DropoutColumns = %d, want 4", st.DropoutColumns)
	}
}

func TestStuckFreezesTail(t *testing.T) {
	src := newFakeSource()
	inj := New(src, Config{Seed: 5, StuckRate: 1})
	s, _, err := inj.Series(src.drives[0])
	if err != nil {
		t.Fatal(err)
	}
	frozen := false
	for _, col := range s {
		if col[len(col)-1] == col[len(col)-2] {
			frozen = true
		}
	}
	if !frozen {
		t.Error("StuckRate=1 froze no feature tail")
	}
	if st := inj.Stats(); st.StuckRuns != 1 {
		t.Errorf("StuckRuns = %d, want 1", st.StuckRuns)
	}
}

func TestTicketDelayAndDrop(t *testing.T) {
	src := newFakeSource()
	delay := New(src, Config{Seed: 2, TicketDelayDays: 3})
	for _, m := range []smart.ModelID{smart.MA1, smart.MC1} {
		for _, r := range delay.DrivesOf(m) {
			var orig dataset.DriveRef
			for _, o := range src.drives {
				if o.ID == r.ID {
					orig = o
				}
			}
			if !orig.Failed() {
				if r.FailDay != -1 {
					t.Errorf("healthy drive %d gained FailDay %d", r.ID, r.FailDay)
				}
			} else if r.FailDay != orig.FailDay+3 {
				t.Errorf("drive %d FailDay = %d, want %d", r.ID, r.FailDay, orig.FailDay+3)
			}
		}
	}
	if st := delay.Stats(); st.TicketsDelayed != 2 {
		t.Errorf("TicketsDelayed = %d, want 2", st.TicketsDelayed)
	}

	drop := New(src, Config{Seed: 2, TicketDropRate: 1})
	for _, m := range []smart.ModelID{smart.MA1, smart.MC1} {
		drop.DrivesOf(m)
		drop.DrivesOf(m) // repeat must not double count
		for _, r := range drop.DrivesOf(m) {
			if r.Failed() {
				t.Errorf("drive %d still has a ticket under TicketDropRate=1", r.ID)
			}
		}
	}
	if st := drop.Stats(); st.TicketsDropped != 2 {
		t.Errorf("TicketsDropped = %d, want 2", st.TicketsDropped)
	}
	// Series content is never affected by ticket faults.
	s, _, err := drop.Series(src.drives[1])
	if err != nil {
		t.Fatal(err)
	}
	want, _, _ := src.Series(src.drives[1])
	for ft, col := range want {
		for day, v := range col {
			if s[ft][day] != v {
				t.Fatalf("ticket fault altered series at %v day %d", ft, day)
			}
		}
	}
}

func TestSentinelInjectsKnownValues(t *testing.T) {
	src := newFakeSource()
	inj := New(src, Config{Seed: 9, SentinelRate: 0.1})
	s, _, err := inj.Series(src.drives[0])
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, col := range s {
		for _, v := range col {
			for _, sv := range sentinelValues {
				if v == sv {
					found++
				}
			}
		}
	}
	st := inj.Stats()
	if st.SentinelCells == 0 || found < st.SentinelCells {
		t.Errorf("found %d sentinel cells in output, stats say %d", found, st.SentinelCells)
	}
}

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("gaps=0.02,dropout=MA1:wear,nan=0.01,tickets-delay=3d,seed=11")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.GapRate != 0.02 || cfg.NaNRate != 0.01 || cfg.TicketDelayDays != 3 || cfg.Seed != 11 {
		t.Errorf("parsed %+v", cfg)
	}
	if len(cfg.Dropout) != 1 || cfg.Dropout[0].Model != smart.MA1 ||
		cfg.Dropout[0].Attr != smart.MWI || cfg.Dropout[0].Rate != 1 {
		t.Errorf("dropout parsed as %+v", cfg.Dropout)
	}
	if !cfg.Enabled() {
		t.Error("parsed config not Enabled")
	}

	if cfg, err := ParseSpec(""); err != nil || cfg.Enabled() {
		t.Errorf("empty spec: cfg %+v err %v", cfg, err)
	}
	if cfg, err := ParseSpec("dropout=MC2:RER:0.25,tickets-drop=0.5"); err != nil {
		t.Fatal(err)
	} else if cfg.Dropout[0].Rate != 0.25 || cfg.TicketDropRate != 0.5 {
		t.Errorf("parsed %+v", cfg)
	}

	bad := []string{
		"gaps=2",          // rate out of range
		"gaps=",           // empty value
		"bogus=1",         // unknown operator
		"nan=abc",         // not a number
		"gaps=NaN",        // non-finite rate
		"dropout=MA1",     // missing attr
		"dropout=MX9:MWI", // unknown model
		"dropout=MA1:ZZZ", // unknown attr
		"tickets-delay=x",
		"tickets-delay=-1d",
	}
	for _, s := range bad {
		if _, err := ParseSpec(s); err == nil {
			t.Errorf("ParseSpec(%q) accepted bad input", s)
		}
	}
}

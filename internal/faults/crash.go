package faults

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Process-level fault injection: deterministic crash points.
//
// A crash point is a named site in the pipeline (registered with
// RegisterCrashSite) where the process can be made to die abruptly.
// Setting the WEFR_CRASHPOINT environment variable to "<site>" or
// "<site>:<n>" makes the n-th execution of that site (1-based,
// default 1) call os.Exit(CrashExitCode) — no deferred functions, no
// flushing, the closest portable approximation of a kill -9 at that
// instant. With the variable unset every CrashPoint call is a cheap
// no-op, so the sites stay compiled into the production path.

// CrashEnv is the environment variable that arms a crash point.
const CrashEnv = "WEFR_CRASHPOINT"

// CrashExitCode is the exit status of a process killed by a crash
// point, distinct from ordinary CLI failures (which exit 1) so
// harnesses can tell a deliberate crash from a real error.
const CrashExitCode = 3

var (
	crashMu    sync.Mutex
	crashSites = make(map[string]bool)

	// crashArmed caches the parsed CrashEnv spec; nil means disarmed.
	crashArmed atomic.Pointer[crashSpec]
	crashInit  sync.Once
)

type crashSpec struct {
	site string
	hit  int64 // fire on the hit-th execution of site (1-based)
	seen atomic.Int64
}

// RegisterCrashSite declares a named crash point and returns the name
// for use at the site, so registration and the CrashPoint call can
// share one declaration:
//
//	var crashAfterTrain = faults.RegisterCrashSite("train")
//	...
//	faults.CrashPoint(crashAfterTrain)
//
// Registering the same name twice panics: site names are global and a
// collision would make a crash matrix silently ambiguous.
func RegisterCrashSite(name string) string {
	crashMu.Lock()
	defer crashMu.Unlock()
	if name == "" {
		panic("faults: empty crash site name")
	}
	if crashSites[name] {
		panic(fmt.Sprintf("faults: crash site %q registered twice", name))
	}
	crashSites[name] = true
	return name
}

// CrashSites returns every registered crash point name, sorted, for
// harnesses that iterate the crash matrix.
func CrashSites() []string {
	crashMu.Lock()
	defer crashMu.Unlock()
	out := make([]string, 0, len(crashSites))
	for name := range crashSites {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// parseCrashSpec parses "<site>" or "<site>:<n>".
func parseCrashSpec(s string) (*crashSpec, error) {
	site, hitStr, hasHit := strings.Cut(s, ":")
	site = strings.TrimSpace(site)
	if site == "" {
		return nil, fmt.Errorf("faults: empty %s site", CrashEnv)
	}
	spec := &crashSpec{site: site, hit: 1}
	if hasHit {
		n, err := strconv.Atoi(strings.TrimSpace(hitStr))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("faults: bad %s hit count %q (want a positive integer)", CrashEnv, hitStr)
		}
		spec.hit = int64(n)
	}
	return spec, nil
}

// armCrashFromEnv parses CrashEnv once per process. An unparsable
// value aborts immediately — a misspelled crash spec silently running
// the pipeline to completion would defeat the harness.
func armCrashFromEnv() {
	crashInit.Do(func() {
		val := os.Getenv(CrashEnv)
		if val == "" {
			return
		}
		spec, err := parseCrashSpec(val)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(2)
		}
		crashArmed.Store(spec)
	})
}

// CrashPoint marks the named site: if WEFR_CRASHPOINT armed this site
// and this is the configured hit, the process exits immediately with
// CrashExitCode. Sites must be registered (RegisterCrashSite); hitting
// an unregistered site panics so the registry and the call sites
// cannot drift apart.
func CrashPoint(site string) {
	armCrashFromEnv()
	spec := crashArmed.Load()
	if spec == nil {
		return
	}
	crashMu.Lock()
	known := crashSites[site]
	crashMu.Unlock()
	if !known {
		panic(fmt.Sprintf("faults: crash point at unregistered site %q", site))
	}
	if spec.site != site {
		return
	}
	if spec.seen.Add(1) == spec.hit {
		fmt.Fprintf(os.Stderr, "faults: crash point %s (hit %d) firing\n", site, spec.hit)
		os.Exit(CrashExitCode)
	}
}

package faults

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/smart"
)

// attrAliases maps informal attribute names accepted in -faults specs
// to catalog attributes, beyond the canonical short names of Table I.
var attrAliases = map[string]smart.AttrID{
	"WEAR":    smart.MWI,
	"WEAROUT": smart.MWI,
	"TEMP":    smart.ET,
}

// ParseSpec parses the -faults flag syntax: a comma-separated list of
// key=value operators, e.g.
//
//	gaps=0.02,dropout=MA1:MWI,nan=0.01,tickets-delay=3d
//
// Keys: seed=<int>, gaps=<rate>, nan=<rate>, sentinel=<rate>,
// stuck=<rate>, dup=<rate>, swap=<rate>, tickets-drop=<rate>,
// tickets-delay=<N>d, and dropout=<MODEL>:<ATTR>[:<rate>] (repeatable;
// rate defaults to 1, dropping the attribute from the whole model, as
// in Table I; "wear" is accepted as an alias for MWI). Rates must lie
// in [0, 1]. An empty spec returns a zero (disabled) Config.
func ParseSpec(s string) (Config, error) {
	var cfg Config
	s = strings.TrimSpace(s)
	if s == "" {
		return cfg, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok || val == "" {
			return Config{}, fmt.Errorf("faults: malformed operator %q, want key=value", part)
		}
		switch key {
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Config{}, fmt.Errorf("faults: bad seed %q: %v", val, err)
			}
			cfg.Seed = n
		case "gaps":
			if err := parseRate(key, val, &cfg.GapRate); err != nil {
				return Config{}, err
			}
		case "nan":
			if err := parseRate(key, val, &cfg.NaNRate); err != nil {
				return Config{}, err
			}
		case "sentinel":
			if err := parseRate(key, val, &cfg.SentinelRate); err != nil {
				return Config{}, err
			}
		case "stuck":
			if err := parseRate(key, val, &cfg.StuckRate); err != nil {
				return Config{}, err
			}
		case "dup":
			if err := parseRate(key, val, &cfg.DupRate); err != nil {
				return Config{}, err
			}
		case "swap":
			if err := parseRate(key, val, &cfg.SwapRate); err != nil {
				return Config{}, err
			}
		case "tickets-drop":
			if err := parseRate(key, val, &cfg.TicketDropRate); err != nil {
				return Config{}, err
			}
		case "tickets-delay":
			days, err := parseDays(val)
			if err != nil {
				return Config{}, err
			}
			cfg.TicketDelayDays = days
		case "dropout":
			d, err := parseDropout(val)
			if err != nil {
				return Config{}, err
			}
			cfg.Dropout = append(cfg.Dropout, d)
		default:
			return Config{}, fmt.Errorf("faults: unknown operator %q", key)
		}
	}
	return cfg, nil
}

func parseRate(key, val string, dst *float64) error {
	r, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return fmt.Errorf("faults: bad %s rate %q: %v", key, val, err)
	}
	if !(r >= 0 && r <= 1) { // rejects NaN too
		return fmt.Errorf("faults: %s rate %v out of [0, 1]", key, r)
	}
	*dst = r
	return nil
}

// parseDays accepts "3d" or a bare integer day count.
func parseDays(val string) (int, error) {
	v := strings.TrimSuffix(val, "d")
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("faults: bad tickets-delay %q, want e.g. \"3d\"", val)
	}
	return n, nil
}

// parseDropout parses "<MODEL>:<ATTR>[:<rate>]".
func parseDropout(val string) (Dropout, error) {
	parts := strings.Split(val, ":")
	if len(parts) < 2 || len(parts) > 3 {
		return Dropout{}, fmt.Errorf("faults: bad dropout %q, want MODEL:ATTR[:rate]", val)
	}
	model, err := smart.ParseModel(strings.ToUpper(strings.TrimSpace(parts[0])))
	if err != nil {
		return Dropout{}, fmt.Errorf("faults: dropout %q: %v", val, err)
	}
	attrName := strings.ToUpper(strings.TrimSpace(parts[1]))
	attr, err := smart.ParseAttr(attrName)
	if err != nil {
		alias, ok := attrAliases[attrName]
		if !ok {
			return Dropout{}, fmt.Errorf("faults: dropout %q: %v", val, err)
		}
		attr = alias
	}
	d := Dropout{Model: model, Attr: attr, Rate: 1}
	if len(parts) == 3 {
		if err := parseRate("dropout", parts[2], &d.Rate); err != nil {
			return Dropout{}, err
		}
	}
	return d, nil
}

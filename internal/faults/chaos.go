package faults

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Serve-layer fault injection: op sites.
//
// An op site is a named injection point on a long-running service's
// request path (registered with RegisterOpSite) that a chaos harness
// arms at runtime with an arbitrary fault function — transient
// errors, delays, or hangs — without restarting the process. Unlike
// crash and degrade points, op sites are armed programmatically
// (ArmOp/DisarmOp), not via the environment: chaos tests flip faults
// on and off mid-traffic and must observe the service degrade and
// recover within one process lifetime.
//
// The armed function receives the request's context, so an injected
// hang is bounded by the caller's deadline exactly like a hung
// dependency would be, and a 1-based hit counter, so deterministic
// "every n-th request" schedules need no shared state in the test.
//
// With no site armed anywhere in the process, Op is a single atomic
// load — cheap enough to leave compiled into response hot paths. The
// unregistered-site panic is therefore only enforced while at least
// one site is armed; the chaos suites that arm sites are what keeps
// the registry and the call sites from drifting apart.

var (
	opMu    sync.Mutex
	opSites = make(map[string]*opSite)

	// opArmedCount gates the Op fast path: zero means no site in the
	// process is armed and every Op call is a no-op.
	opArmedCount atomic.Int32
)

type opSite struct {
	fn   func(ctx context.Context, hit int) error
	hits int
}

// RegisterOpSite declares a named op site and returns the name for
// use at the site. Registering the same name twice panics: site names
// are global and a collision would make a chaos matrix silently
// ambiguous.
func RegisterOpSite(name string) string {
	opMu.Lock()
	defer opMu.Unlock()
	if name == "" {
		panic("faults: empty op site name")
	}
	if _, dup := opSites[name]; dup {
		panic(fmt.Sprintf("faults: op site %q registered twice", name))
	}
	opSites[name] = &opSite{}
	return name
}

// OpSites returns every registered op site name, sorted.
func OpSites() []string {
	opMu.Lock()
	defer opMu.Unlock()
	out := make([]string, 0, len(opSites))
	for name := range opSites {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ArmOp arms the named site with a fault function, replacing any
// previous arming. The function runs on every subsequent Op call at
// the site with the caller's context and the site's 1-based hit
// count; a non-nil return is surfaced to the site's caller as the
// dependency's failure. Panics on unregistered sites.
func ArmOp(site string, fn func(ctx context.Context, hit int) error) {
	if fn == nil {
		panic("faults: ArmOp with nil function (use DisarmOp)")
	}
	opMu.Lock()
	defer opMu.Unlock()
	st, ok := opSites[site]
	if !ok {
		panic(fmt.Sprintf("faults: arming unregistered op site %q", site))
	}
	if st.fn == nil {
		opArmedCount.Add(1)
	}
	st.fn = fn
}

// DisarmOp disarms the named site; subsequent Op calls there are
// no-ops again. The hit counter keeps its value so a later re-arm
// observes total traffic through the site. Panics on unregistered
// sites; disarming an unarmed site is a no-op.
func DisarmOp(site string) {
	opMu.Lock()
	defer opMu.Unlock()
	st, ok := opSites[site]
	if !ok {
		panic(fmt.Sprintf("faults: disarming unregistered op site %q", site))
	}
	if st.fn != nil {
		opArmedCount.Add(-1)
		st.fn = nil
	}
}

// OpHits returns how many Op calls reached the named site while it
// was armed. Panics on unregistered sites.
func OpHits(site string) int {
	opMu.Lock()
	defer opMu.Unlock()
	st, ok := opSites[site]
	if !ok {
		panic(fmt.Sprintf("faults: querying unregistered op site %q", site))
	}
	return st.hits
}

// Op marks the named site: with the site armed, its fault function
// runs and its error (if any) is returned for the caller to treat as
// the dependency's failure. With no site armed in the process the
// call is a single atomic load.
func Op(ctx context.Context, site string) error {
	if opArmedCount.Load() == 0 {
		return nil
	}
	opMu.Lock()
	st, ok := opSites[site]
	if !ok {
		opMu.Unlock()
		panic(fmt.Sprintf("faults: op point at unregistered site %q", site))
	}
	fn := st.fn
	if fn == nil {
		opMu.Unlock()
		return nil
	}
	st.hits++
	hit := st.hits
	opMu.Unlock()
	return fn(ctx, hit)
}

// OpFailEveryN returns an arm function that fails every n-th hit with
// ErrTransient and passes the rest — a deterministic flaky dependency.
func OpFailEveryN(n int) func(ctx context.Context, hit int) error {
	return func(ctx context.Context, hit int) error {
		if n > 0 && hit%n == 0 {
			return fmt.Errorf("%w: injected at hit %d", ErrTransient, hit)
		}
		return nil
	}
}

// OpHang returns an arm function that blocks until the release
// channel closes or the caller's context expires — a hung dependency
// that only a deadline can step around. Pass nil to hang until the
// context alone releases it.
func OpHang(release <-chan struct{}) func(ctx context.Context, hit int) error {
	return func(ctx context.Context, hit int) error {
		select {
		case <-release:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// OpDelay returns an arm function that sleeps for d (bounded by the
// caller's context) and then succeeds — a slow but live dependency,
// or a slow consumer holding its admission slot.
func OpDelay(d time.Duration) func(ctx context.Context, hit int) error {
	return func(ctx context.Context, hit int) error {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

package faults

import (
	"sort"
	"testing"
)

// Arming via WEFR_DEGRADE is read once per process, so the armed path
// is exercised by the controller's subprocess fault matrix
// (cmd/controller); these tests pin the in-process registry semantics.

func TestDegradeSiteRegistry(t *testing.T) {
	name := RegisterDegradeSite("degrade-test-site")
	if name != "degrade-test-site" {
		t.Fatalf("RegisterDegradeSite returned %q", name)
	}
	sites := DegradeSites()
	if !sort.StringsAreSorted(sites) {
		t.Errorf("DegradeSites not sorted: %v", sites)
	}
	found := false
	for _, s := range sites {
		found = found || s == name
	}
	if !found {
		t.Errorf("registered site missing from DegradeSites: %v", sites)
	}

	// Disarmed (no WEFR_DEGRADE in the test process): never degraded.
	if Degraded(name) {
		t.Error("site degraded without arming")
	}
}

func TestDegradeSiteDuplicatePanics(t *testing.T) {
	RegisterDegradeSite("degrade-test-dup")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	RegisterDegradeSite("degrade-test-dup")
}

func TestDegradeSiteEmptyNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty site name did not panic")
		}
	}()
	RegisterDegradeSite("")
}

func TestDegradedUnregisteredPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("query of unregistered site did not panic")
		}
	}()
	Degraded("degrade-test-never-registered")
}

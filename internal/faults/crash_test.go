package faults

import (
	"errors"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/simulate"
	"repro/internal/smart"
)

func TestParseCrashSpec(t *testing.T) {
	cases := []struct {
		in      string
		site    string
		hit     int64
		wantErr bool
	}{
		{in: "train", site: "train", hit: 1},
		{in: "snapshot-save:3", site: "snapshot-save", hit: 3},
		{in: " ingest : 2 ", site: "ingest", hit: 2},
		{in: "", wantErr: true},
		{in: ":2", wantErr: true},
		{in: "train:0", wantErr: true},
		{in: "train:-1", wantErr: true},
		{in: "train:x", wantErr: true},
	}
	for _, c := range cases {
		spec, err := parseCrashSpec(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("parseCrashSpec(%q): want error", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseCrashSpec(%q): %v", c.in, err)
			continue
		}
		if spec.site != c.site || spec.hit != c.hit {
			t.Errorf("parseCrashSpec(%q) = {%s %d}, want {%s %d}", c.in, spec.site, spec.hit, c.site, c.hit)
		}
	}
}

func TestCrashSiteRegistry(t *testing.T) {
	name := RegisterCrashSite("test-site-registry")
	if name != "test-site-registry" {
		t.Fatalf("RegisterCrashSite returned %q", name)
	}
	found := false
	for _, s := range CrashSites() {
		if s == name {
			found = true
		}
	}
	if !found {
		t.Error("registered site missing from CrashSites")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate registration should panic")
			}
		}()
		RegisterCrashSite("test-site-registry")
	}()
	// Disarmed (no env in the test process): a registered site is a
	// no-op, an unregistered one is indistinguishable because the spec
	// check short-circuits first.
	CrashPoint(name)
}

func testFlakyFleet(t *testing.T) dataset.Source {
	t.Helper()
	f, err := simulate.New(simulate.Config{TotalDrives: 60, Days: 100, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return dataset.FleetSource{Fleet: f}
}

// TestFlakyFailFirst verifies the deterministic transient-error shape:
// the first N fetches of every drive fail with ErrTransient, the next
// succeeds with data identical to the clean source.
func TestFlakyFailFirst(t *testing.T) {
	src := testFlakyFleet(t)
	fl := NewFlaky(src, FlakyConfig{FailFirst: 2})
	ref := src.DrivesOf(smart.MC1)[0]
	for i := 0; i < 2; i++ {
		if _, _, err := fl.Series(ref); !errors.Is(err, ErrTransient) {
			t.Fatalf("attempt %d error = %v, want ErrTransient", i+1, err)
		}
	}
	cols, last, err := fl.Series(ref)
	if err != nil {
		t.Fatalf("attempt 3: %v", err)
	}
	wantCols, wantLast, err := src.Series(ref)
	if err != nil {
		t.Fatal(err)
	}
	if last != wantLast || len(cols) != len(wantCols) {
		t.Errorf("recovered fetch differs: last %d vs %d, %d vs %d cols", last, wantLast, len(cols), len(wantCols))
	}
	if fl.Attempts(ref.ID) != 3 {
		t.Errorf("attempts = %d, want 3", fl.Attempts(ref.ID))
	}
}

// TestFlakyFailRateDeterministic verifies the seeded per-attempt
// stream: two identically configured wrappers fail the same attempts.
func TestFlakyFailRateDeterministic(t *testing.T) {
	src := testFlakyFleet(t)
	refs := src.DrivesOf(smart.MC1)[:10]
	outcomes := func() []bool {
		fl := NewFlaky(src, FlakyConfig{Seed: 9, FailRate: 0.5})
		var out []bool
		for _, ref := range refs {
			for i := 0; i < 4; i++ {
				_, _, err := fl.Series(ref)
				out = append(out, err != nil)
			}
		}
		return out
	}
	a, b := outcomes(), outcomes()
	failed := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("attempt %d nondeterministic", i)
		}
		if a[i] {
			failed++
		}
	}
	if failed == 0 || failed == len(a) {
		t.Errorf("FailRate 0.5 failed %d of %d attempts", failed, len(a))
	}
}

// TestFlakyHangRelease verifies a hung fetch blocks until released.
func TestFlakyHangRelease(t *testing.T) {
	src := testFlakyFleet(t)
	fl := NewFlaky(src, FlakyConfig{HangFirst: 1})
	ref := src.DrivesOf(smart.MC1)[0]
	done := make(chan error, 1)
	go func() {
		_, _, err := fl.Series(ref)
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("hung fetch returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	fl.ReleaseHung()
	fl.ReleaseHung() // idempotent
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("released fetch failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("fetch still hung after release")
	}
}

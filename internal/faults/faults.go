// Package faults is a deterministic fault-injection layer for the WEFR
// pipeline. An Injector wraps any dataset.Source and corrupts the
// series it serves with composable operators modeled on the defect
// classes observed in large-scale SSD telemetry: whole-day collection
// gaps, per-model attribute dropout (Table I style), NaN and sentinel
// cell noise, stuck-at sensor readings, duplicated and out-of-order
// records, and delayed or dropped failure tickets.
//
// Corruption is a pure function of (Config.Seed, drive ID): every
// operator draws from its own RNG stream derived from those two
// values, so the injected defects are identical regardless of the
// order or concurrency in which drives are extracted, and independent
// of which other operators are enabled. A zero Config is a strict
// passthrough — the wrapped source's output is returned untouched,
// bit for bit.
package faults

import (
	"math"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/dataset"
	"repro/internal/smart"
)

// Dropout removes one SMART attribute from (a fraction of) one drive
// model's fleet, mimicking the per-model availability holes of
// Table I: affected drives report NaN for both the raw and normalized
// feature of the attribute, every day.
type Dropout struct {
	Model smart.ModelID
	Attr  smart.AttrID
	// Rate is the fraction of the model's drives affected, in [0, 1].
	Rate float64
}

// Config enables and parameterizes the corruption operators. All rates
// are per-unit probabilities in [0, 1]; zero disables the operator.
type Config struct {
	// Seed drives every operator's RNG. Two injectors with equal
	// configs produce identical corruption.
	Seed int64

	// GapRate is the per-drive-day probability that the day's record is
	// lost entirely (all features NaN) — a collection gap.
	GapRate float64
	// NaNRate is the per-cell probability of a missing value.
	NaNRate float64
	// SentinelRate is the per-cell probability of the value being
	// replaced by a bogus sentinel (-1, 255, 65535, 2^32-1).
	SentinelRate float64
	// StuckRate is the per-drive probability that one feature freezes
	// at its current value from a random day to the end of the series.
	StuckRate float64
	// DupRate is the per-drive-day probability that the previous day's
	// record is reported again in place of the real one.
	DupRate float64
	// SwapRate is the per-drive-day probability that the day's record
	// and the previous day's arrive out of order (adjacent swap).
	SwapRate float64

	// Dropout lists per-model attribute dropouts.
	Dropout []Dropout

	// TicketDelayDays shifts every failed drive's recorded failure day
	// this many days later, modeling ticket-processing latency.
	TicketDelayDays int
	// TicketDropRate is the per-failed-drive probability that the
	// failure ticket is lost entirely (the drive appears healthy).
	TicketDropRate float64
}

// Enabled reports whether any operator is active.
func (c Config) Enabled() bool {
	return c.seriesEnabled() || c.ticketsEnabled()
}

func (c Config) seriesEnabled() bool {
	return c.GapRate > 0 || c.NaNRate > 0 || c.SentinelRate > 0 ||
		c.StuckRate > 0 || c.DupRate > 0 || c.SwapRate > 0 || len(c.Dropout) > 0
}

func (c Config) ticketsEnabled() bool {
	return c.TicketDelayDays > 0 || c.TicketDropRate > 0
}

// Stats counts injected defects by class. Counters accumulate once per
// drive no matter how many times its series is requested.
type Stats struct {
	GapDays        int `json:"gap_days"`
	DropoutColumns int `json:"dropout_columns"`
	StuckRuns      int `json:"stuck_runs"`
	DupDays        int `json:"dup_days"`
	SwapPairs      int `json:"swap_pairs"`
	NaNCells       int `json:"nan_cells"`
	SentinelCells  int `json:"sentinel_cells"`
	TicketsDelayed int `json:"tickets_delayed"`
	TicketsDropped int `json:"tickets_dropped"`
	DrivesTouched  int `json:"drives_touched"`
}

// Classes returns the nonzero defect classes by name, for reporting.
func (s Stats) Classes() map[string]int {
	out := make(map[string]int)
	add := func(name string, n int) {
		if n > 0 {
			out[name] = n
		}
	}
	add("gap_days", s.GapDays)
	add("dropout_columns", s.DropoutColumns)
	add("stuck_runs", s.StuckRuns)
	add("dup_days", s.DupDays)
	add("swap_pairs", s.SwapPairs)
	add("nan_cells", s.NaNCells)
	add("sentinel_cells", s.SentinelCells)
	add("tickets_delayed", s.TicketsDelayed)
	add("tickets_dropped", s.TicketsDropped)
	return out
}

func (s *Stats) add(o Stats) {
	s.GapDays += o.GapDays
	s.DropoutColumns += o.DropoutColumns
	s.StuckRuns += o.StuckRuns
	s.DupDays += o.DupDays
	s.SwapPairs += o.SwapPairs
	s.NaNCells += o.NaNCells
	s.SentinelCells += o.SentinelCells
	s.TicketsDelayed += o.TicketsDelayed
	s.TicketsDropped += o.TicketsDropped
	s.DrivesTouched += o.DrivesTouched
}

// Operator stream tags. Each operator mixes its tag into the per-drive
// seed so enabling one operator never perturbs another's draws.
const (
	opTicket uint64 = iota + 1
	opStuck
	opDup
	opSwap
	opGap
	opNaN
	opSentinel
	opDropoutBase // + dropout entry index

	// opFlaky seeds the Flaky source's per-attempt failure stream; the
	// attempt number is added so retries draw independently. Kept well
	// clear of opDropoutBase's entry-index range.
	opFlaky uint64 = 1 << 32
)

// mixSeed derives an operator's RNG seed from the injector seed and
// drive ID via a splitmix64-style finalizer.
func mixSeed(seed int64, id int, op uint64) int64 {
	z := uint64(seed)
	z ^= uint64(int64(id))*0x9E3779B97F4A7C15 + op*0xD1B54A32D192ED03
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z >> 1)
}

// sentinelValues are the bogus readings injected by the sentinel
// operator: firmware error codes and unsigned-overflow artifacts seen
// in real SMART dumps.
var sentinelValues = [...]float64{-1, 255, 65535, 4294967295}

// Injector implements dataset.Source, corrupting the wrapped source's
// output. Safe for concurrent use.
type Injector struct {
	inner dataset.Source
	cfg   Config

	mu         sync.Mutex
	stats      Stats
	seriesSeen map[int]bool
	ticketSeen map[int]bool
}

var _ dataset.Source = (*Injector)(nil)

// New wraps src with the given fault configuration. Wrap the raw
// source, then cache: dataset.NewCachedSource(faults.New(src, cfg)),
// so corruption happens once per drive.
func New(src dataset.Source, cfg Config) *Injector {
	return &Injector{
		inner:      src,
		cfg:        cfg,
		seriesSeen: make(map[int]bool),
		ticketSeen: make(map[int]bool),
	}
}

// Stats returns a snapshot of the injected-defect counters.
func (inj *Injector) Stats() Stats {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.stats
}

// Days implements dataset.Source.
func (inj *Injector) Days() int { return inj.inner.Days() }

// DrivesOf implements dataset.Source, applying ticket faults: a failed
// drive's FailDay may be shifted later (delayed ticket) or reset to -1
// (lost ticket). Series content is untouched — the drive still dies on
// schedule; only the label bookkeeping degrades, as in production.
func (inj *Injector) DrivesOf(m smart.ModelID) []dataset.DriveRef {
	refs := inj.inner.DrivesOf(m)
	if !inj.cfg.ticketsEnabled() {
		return refs
	}
	out := make([]dataset.DriveRef, len(refs))
	copy(out, refs)
	for i := range out {
		if !out[i].Failed() {
			continue
		}
		id := out[i].ID
		rng := rand.New(rand.NewSource(mixSeed(inj.cfg.Seed, id, opTicket)))
		dropped := inj.cfg.TicketDropRate > 0 && rng.Float64() < inj.cfg.TicketDropRate
		delayed := !dropped && inj.cfg.TicketDelayDays > 0
		if dropped {
			out[i].FailDay = -1
		} else if delayed {
			out[i].FailDay += inj.cfg.TicketDelayDays
		}
		if !dropped && !delayed {
			continue
		}
		inj.mu.Lock()
		if !inj.ticketSeen[id] {
			inj.ticketSeen[id] = true
			if dropped {
				inj.stats.TicketsDropped++
			} else {
				inj.stats.TicketsDelayed++
			}
		}
		inj.mu.Unlock()
	}
	return out
}

// Series implements dataset.Source, returning a corrupted copy of the
// wrapped series. With no series operators enabled the inner result is
// passed through unmodified (same backing arrays).
func (inj *Injector) Series(ref dataset.DriveRef) (map[smart.Feature][]float64, int, error) {
	cols, lastDay, err := inj.inner.Series(ref)
	if err != nil || !inj.cfg.seriesEnabled() {
		return cols, lastDay, err
	}

	feats := make([]smart.Feature, 0, len(cols))
	for f := range cols {
		feats = append(feats, f)
	}
	sort.Slice(feats, func(i, j int) bool {
		if feats[i].Attr != feats[j].Attr {
			return feats[i].Attr < feats[j].Attr
		}
		return feats[i].Kind < feats[j].Kind
	})

	out := make(map[smart.Feature][]float64, len(cols))
	n := lastDay + 1
	for _, f := range feats {
		src := cols[f]
		dst := make([]float64, len(src))
		copy(dst, src)
		out[f] = dst
		if len(src) < n {
			n = len(src)
		}
	}

	var d Stats
	nan := math.NaN()
	id := ref.ID
	seed := inj.cfg.Seed

	// 1. Attribute dropout: affected drives never report the attribute.
	for i, dr := range inj.cfg.Dropout {
		if dr.Model != ref.Model {
			continue
		}
		rng := rand.New(rand.NewSource(mixSeed(seed, id, opDropoutBase+uint64(i))))
		if rng.Float64() >= dr.Rate {
			continue
		}
		for _, k := range []smart.Kind{smart.Raw, smart.Normalized} {
			col, ok := out[smart.Feature{Attr: dr.Attr, Kind: k}]
			if !ok {
				continue
			}
			for day := range col {
				col[day] = nan
			}
			d.DropoutColumns++
		}
	}

	// 2. Stuck-at: one feature freezes from a random day onward.
	if inj.cfg.StuckRate > 0 && n > 0 {
		rng := rand.New(rand.NewSource(mixSeed(seed, id, opStuck)))
		if rng.Float64() < inj.cfg.StuckRate {
			col := out[feats[rng.Intn(len(feats))]]
			start := rng.Intn(n)
			v := col[start]
			for day := start + 1; day < n; day++ {
				col[day] = v
			}
			d.StuckRuns++
		}
	}

	// 3. Duplicated records: a day re-reports the previous day's row.
	if inj.cfg.DupRate > 0 {
		rng := rand.New(rand.NewSource(mixSeed(seed, id, opDup)))
		for day := 1; day < n; day++ {
			if rng.Float64() < inj.cfg.DupRate {
				for _, f := range feats {
					out[f][day] = out[f][day-1]
				}
				d.DupDays++
			}
		}
	}

	// 4. Out-of-order records: adjacent days swap arrival order.
	if inj.cfg.SwapRate > 0 {
		rng := rand.New(rand.NewSource(mixSeed(seed, id, opSwap)))
		for day := 1; day < n; day++ {
			if rng.Float64() < inj.cfg.SwapRate {
				for _, f := range feats {
					col := out[f]
					col[day-1], col[day] = col[day], col[day-1]
				}
				d.SwapPairs++
			}
		}
	}

	// 5. Collection gaps: whole days vanish.
	if inj.cfg.GapRate > 0 {
		rng := rand.New(rand.NewSource(mixSeed(seed, id, opGap)))
		for day := 0; day < n; day++ {
			if rng.Float64() < inj.cfg.GapRate {
				for _, f := range feats {
					out[f][day] = nan
				}
				d.GapDays++
			}
		}
	}

	// 6. NaN cells: isolated missing values.
	if inj.cfg.NaNRate > 0 {
		rng := rand.New(rand.NewSource(mixSeed(seed, id, opNaN)))
		for _, f := range feats {
			col := out[f]
			for day := 0; day < n; day++ {
				if rng.Float64() < inj.cfg.NaNRate {
					if col[day] == col[day] {
						d.NaNCells++
					}
					col[day] = nan
				}
			}
		}
	}

	// 7. Sentinel cells: bogus firmware readings.
	if inj.cfg.SentinelRate > 0 {
		rng := rand.New(rand.NewSource(mixSeed(seed, id, opSentinel)))
		for _, f := range feats {
			col := out[f]
			for day := 0; day < n; day++ {
				if rng.Float64() < inj.cfg.SentinelRate {
					col[day] = sentinelValues[rng.Intn(len(sentinelValues))]
					d.SentinelCells++
				}
			}
		}
	}

	if d != (Stats{}) {
		d.DrivesTouched = 1
	}
	inj.mu.Lock()
	if !inj.seriesSeen[id] {
		inj.seriesSeen[id] = true
		inj.stats.add(d)
	}
	inj.mu.Unlock()
	return out, lastDay, nil
}

// Package forest implements a Random Forest binary classifier on top of
// internal/tree: bootstrap bagging, per-node random feature subsampling,
// parallel tree induction, probability averaging, and the two feature-
// importance evaluations the WEFR paper relies on — mean decrease in
// impurity and out-of-bag permutation importance (Breiman 2001).
package forest

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/hist"
	"repro/internal/tree"
)

// Errors returned by forest fitting and importance evaluation.
var (
	// ErrNoData indicates a fit over zero samples or zero features.
	ErrNoData = errors.New("forest: no training data")
	// ErrNotFitted indicates prediction or importance on an unfitted forest.
	ErrNotFitted = errors.New("forest: not fitted")
	// ErrNoTrainingState indicates an out-of-bag operation on a forest
	// without training-side state (e.g. one deserialized for
	// deployment).
	ErrNoTrainingState = errors.New("forest: no training state")
)

// Config controls forest induction. The zero value is unusable for
// NumTrees; use DefaultConfig for the paper's settings.
type Config struct {
	// NumTrees is the number of bagged trees (paper: 100).
	NumTrees int
	// MaxDepth limits each tree's depth (paper: 13); 0 = unlimited.
	MaxDepth int
	// MinLeafSamples is the per-leaf minimum (default 1).
	MinLeafSamples int
	// MaxFeatures is the number of split candidates per node; 0 means
	// floor(sqrt(#features)), the Random Forest default.
	MaxFeatures int
	// Workers bounds fitting parallelism; 0 means GOMAXPROCS.
	Workers int
	// Seed makes the fit deterministic.
	Seed int64
	// SplitMethod selects exact presorted split search (the zero value,
	// bit-identical to earlier releases) or the histogram-binned path
	// (see internal/hist), which quantizes the data once and is
	// typically several times faster at fleet scale.
	SplitMethod hist.SplitMethod
	// MaxBins caps per-feature histogram bins (including the missing
	// bin) on the hist path; 0 means hist.DefaultMaxBins.
	MaxBins int
}

// DefaultConfig returns the paper's prediction-model settings: 100
// trees of maximum depth 13.
func DefaultConfig() Config {
	return Config{NumTrees: 100, MaxDepth: 13}
}

// Forest is a fitted Random Forest.
type Forest struct {
	trees     []*tree.Classifier
	oob       [][]int // per-tree out-of-bag row indices
	nFeatures int
	cfg       Config
	cols      [][]float64 // training columns, retained for OOB importance
	y         []int
}

// Fit trains a forest on column-major data (cols[f][i] is feature f of
// sample i) with binary labels y.
func Fit(cols [][]float64, y []int, cfg Config) (*Forest, error) {
	if len(cols) == 0 || len(y) == 0 {
		return nil, ErrNoData
	}
	for f, c := range cols {
		if len(c) != len(y) {
			return nil, fmt.Errorf("forest: column %d has %d rows, labels have %d", f, len(c), len(y))
		}
	}
	if cfg.NumTrees <= 0 {
		return nil, fmt.Errorf("forest: NumTrees must be positive, got %d", cfg.NumTrees)
	}
	maxFeat := cfg.MaxFeatures
	if maxFeat <= 0 {
		maxFeat = int(math.Sqrt(float64(len(cols))))
		if maxFeat < 1 {
			maxFeat = 1
		}
	}

	n := len(y)
	f := &Forest{
		trees:     make([]*tree.Classifier, cfg.NumTrees),
		oob:       make([][]int, cfg.NumTrees),
		nFeatures: len(cols),
		cfg:       cfg,
		cols:      cols,
		y:         y,
	}

	// Draw all bootstrap samples up-front from a single seeded source so
	// the fit is deterministic regardless of worker scheduling. Each
	// bootstrap is a per-row draw-count vector rather than a duplicated
	// index list, which is what lets every tree share one presort.
	boots := make([][]int, cfg.NumTrees)
	seeds := make([]int64, cfg.NumTrees)
	rng := rand.New(rand.NewSource(cfg.Seed))
	for t := 0; t < cfg.NumTrees; t++ {
		w := make([]int, n)
		for i := 0; i < n; i++ {
			w[rng.Intn(n)]++
		}
		boots[t] = w
		var oob []int
		for i, wi := range w {
			if wi == 0 {
				oob = append(oob, i)
			}
		}
		f.oob[t] = oob
		seeds[t] = rng.Int63()
	}

	// Shared per-fit training structure: the exact path sorts every
	// feature once and all trees partition that order; the hist path
	// quantizes every feature once and all trees share the binned
	// matrix. Either way the O(features x n log n) preprocessing is
	// amortized across the whole forest.
	var (
		ps *tree.Presorted
		bm *hist.Matrix
	)
	if cfg.SplitMethod == hist.SplitHist {
		bm = hist.Bin(cols, cfg.MaxBins)
	} else {
		ps = tree.Presort(cols)
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.NumTrees {
		workers = cfg.NumTrees
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One scratch arena per worker, reused across its trees, so
			// per-tree working memory is allocated workers times total
			// instead of NumTrees times. Trees depend only on their
			// pre-drawn bootstrap and seed, so results are bit-identical
			// at any worker count on both paths.
			var (
				sc  *tree.Scratch
				hsc *tree.HistScratch
			)
			if bm != nil {
				hsc = tree.NewHistScratch()
			} else {
				sc = tree.NewScratch()
			}
			for t := range work {
				tc := tree.Config{
					MaxDepth:       cfg.MaxDepth,
					MinLeafSamples: cfg.MinLeafSamples,
					MaxFeatures:    maxFeat,
					Seed:           seeds[t],
				}
				var (
					tr  *tree.Classifier
					err error
				)
				if bm != nil {
					tr, err = tree.FitClassifierBinned(bm, y, boots[t], tc, hsc)
				} else {
					tr, err = tree.FitClassifierPresorted(ps, y, boots[t], tc, sc)
				}
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("forest: tree %d: %w", t, err)
					}
					mu.Unlock()
					continue
				}
				f.trees[t] = tr
			}
		}()
	}
	for t := 0; t < cfg.NumTrees; t++ {
		work <- t
	}
	close(work)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return f, nil
}

// PredictProba returns the positive-class probability for one sample:
// the mean of the per-tree leaf probabilities.
func (f *Forest) PredictProba(x []float64) float64 {
	sum := 0.0
	for _, t := range f.trees {
		sum += t.PredictProba(x)
	}
	return sum / float64(len(f.trees))
}

// Predict returns the hard 0/1 prediction at the given probability
// threshold.
func (f *Forest) Predict(x []float64, threshold float64) int {
	if f.PredictProba(x) >= threshold {
		return 1
	}
	return 0
}

// PredictProbaAll scores every row of column-major data and returns the
// probabilities. Thin wrapper over PredictProbaBatch that allocates the
// output.
func (f *Forest) PredictProbaAll(cols [][]float64) ([]float64, error) {
	if len(cols) == 0 {
		return nil, ErrNoData
	}
	out := make([]float64, len(cols[0]))
	if err := f.PredictProbaBatch(cols, out); err != nil {
		return nil, err
	}
	return out, nil
}

// PredictProbaBatch scores every row of column-major data, writing row
// i's probability into out[i]. cols must have the training feature
// count, each column at least len(out) long. The (cols, out) error
// shape is shared with tree.Classifier and gbdt.Model (and the
// flat-compiled forms), so ensemble-agnostic callers need no per-family
// adapters.
//
// Rows are chunked across workers (Config.Workers if set, else
// GOMAXPROCS); within a chunk each tree walks the columns directly, so
// no per-row feature vector is ever gathered. Results are bit-identical
// for any worker count: every row's probability is the same tree-order
// sum regardless of which chunk computes it.
func (f *Forest) PredictProbaBatch(cols [][]float64, out []float64) error {
	if len(cols) != f.nFeatures {
		return fmt.Errorf("forest: %d columns, fitted with %d", len(cols), f.nFeatures)
	}
	if len(cols) == 0 {
		return ErrNoData
	}
	n := len(out)
	for j, c := range cols {
		if len(c) < n {
			return fmt.Errorf("forest: column %d has %d rows, out has %d", j, len(c), n)
		}
	}
	workers := f.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			sub := make([][]float64, len(cols))
			for j := range cols {
				sub[j] = cols[j][lo:hi]
			}
			dst := out[lo:hi]
			// out is an accumulator for the tree sum and may be a
			// recycled buffer: initialize it, never assume zeroes.
			for i := range dst {
				dst[i] = 0
			}
			for _, t := range f.trees {
				t.PredictProbaBatchAdd(sub, dst)
			}
			// Divide (not multiply-by-reciprocal) so batch results are
			// bit-identical to the per-row PredictProba sum/divide.
			nt := float64(len(f.trees))
			for i := range dst {
				dst[i] /= nt
			}
		}(lo, hi)
	}
	wg.Wait()
	return nil
}

// NumTrees returns the number of fitted trees.
func (f *Forest) NumTrees() int { return len(f.trees) }

// Trees exposes the fitted trees for compilers (internal/flat) that
// re-encode the ensemble. The slice and the trees are owned by the
// forest and must be treated as read-only.
func (f *Forest) Trees() []*tree.Classifier { return f.trees }

// NumFeatures returns the feature count the forest was fitted with.
func (f *Forest) NumFeatures() int { return f.nFeatures }

// ImpurityImportance returns the mean-decrease-in-impurity feature
// importance, averaged over trees and normalized to sum to 1 (all-zero
// if no split was ever made).
func (f *Forest) ImpurityImportance() ([]float64, error) {
	if len(f.trees) == 0 {
		return nil, ErrNotFitted
	}
	if f.cols == nil {
		// Deserialized forests carry no importance accumulators.
		return nil, ErrNoTrainingState
	}
	total := make([]float64, f.nFeatures)
	for _, t := range f.trees {
		for i, v := range t.Importance() {
			total[i] += v
		}
	}
	sum := 0.0
	for _, v := range total {
		sum += v
	}
	if sum > 0 {
		for i := range total {
			total[i] /= sum
		}
	}
	return total, nil
}

// PermutationImportance returns Breiman-style out-of-bag permutation
// importance: for each feature, the mean decrease in OOB accuracy after
// permuting that feature's values, averaged over trees. Negative values
// are reported as-is (they indicate pure-noise features). The rng seed
// controls the permutations.
func (f *Forest) PermutationImportance(seed int64) ([]float64, error) {
	if len(f.trees) == 0 {
		return nil, ErrNotFitted
	}
	if f.cols == nil || len(f.oob) != len(f.trees) {
		return nil, ErrNoTrainingState
	}
	rng := rand.New(rand.NewSource(seed))
	imp := make([]float64, f.nFeatures)
	counted := make([]int, f.nFeatures)

	x := make([]float64, f.nFeatures)
	for ti, t := range f.trees {
		oob := f.oob[ti]
		if len(oob) == 0 {
			continue
		}
		// Baseline OOB accuracy of this tree.
		base := 0
		for _, i := range oob {
			for j := range f.cols {
				x[j] = f.cols[j][i]
			}
			pred := 0
			if t.PredictProba(x) >= 0.5 {
				pred = 1
			}
			if pred == f.y[i] {
				base++
			}
		}
		baseAcc := float64(base) / float64(len(oob))

		perm := make([]int, len(oob))
		for feat := 0; feat < f.nFeatures; feat++ {
			copy(perm, oob)
			rng.Shuffle(len(perm), func(a, b int) { perm[a], perm[b] = perm[b], perm[a] })
			correct := 0
			for k, i := range oob {
				for j := range f.cols {
					x[j] = f.cols[j][i]
				}
				x[feat] = f.cols[feat][perm[k]] // permuted value
				pred := 0
				if t.PredictProba(x) >= 0.5 {
					pred = 1
				}
				if pred == f.y[i] {
					correct++
				}
			}
			imp[feat] += baseAcc - float64(correct)/float64(len(oob))
			counted[feat]++
		}
	}
	for i := range imp {
		if counted[i] > 0 {
			imp[i] /= float64(counted[i])
		}
	}
	return imp, nil
}

// OOBAccuracy returns the out-of-bag accuracy estimate: each sample is
// scored only by trees that did not see it in their bootstrap.
func (f *Forest) OOBAccuracy() (float64, error) {
	if len(f.trees) == 0 {
		return 0, ErrNotFitted
	}
	if f.cols == nil || len(f.oob) != len(f.trees) {
		return 0, ErrNoTrainingState
	}
	n := len(f.y)
	votes := make([]float64, n)
	counts := make([]int, n)
	x := make([]float64, f.nFeatures)
	for ti, t := range f.trees {
		for _, i := range f.oob[ti] {
			for j := range f.cols {
				x[j] = f.cols[j][i]
			}
			votes[i] += t.PredictProba(x)
			counts[i]++
		}
	}
	correct, scored := 0, 0
	for i := 0; i < n; i++ {
		if counts[i] == 0 {
			continue
		}
		scored++
		pred := 0
		if votes[i]/float64(counts[i]) >= 0.5 {
			pred = 1
		}
		if pred == f.y[i] {
			correct++
		}
	}
	if scored == 0 {
		return 0, errors.New("forest: no out-of-bag samples")
	}
	return float64(correct) / float64(scored), nil
}

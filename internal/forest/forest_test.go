package forest

import (
	"errors"
	"math/rand"
	"testing"
)

// blobs builds a linearly separable two-cluster dataset with one
// informative feature and optional noise features.
func blobs(n, noiseFeatures int, seed int64) (cols [][]float64, y []int) {
	rng := rand.New(rand.NewSource(seed))
	signal := make([]float64, n)
	y = make([]int, n)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.5 {
			y[i] = 1
			signal[i] = 2 + rng.NormFloat64()
		} else {
			signal[i] = -2 + rng.NormFloat64()
		}
	}
	cols = [][]float64{signal}
	for f := 0; f < noiseFeatures; f++ {
		noise := make([]float64, n)
		for i := range noise {
			noise[i] = rng.NormFloat64()
		}
		cols = append(cols, noise)
	}
	return cols, y
}

func TestFitAndPredict(t *testing.T) {
	cols, y := blobs(400, 2, 1)
	f, err := Fit(cols, y, Config{NumTrees: 20, MaxDepth: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if f.NumTrees() != 20 || f.NumFeatures() != 3 {
		t.Fatalf("shape = (%d trees, %d features)", f.NumTrees(), f.NumFeatures())
	}
	if p := f.PredictProba([]float64{3, 0, 0}); p < 0.8 {
		t.Errorf("PredictProba(positive cluster) = %v, want > 0.8", p)
	}
	if p := f.PredictProba([]float64{-3, 0, 0}); p > 0.2 {
		t.Errorf("PredictProba(negative cluster) = %v, want < 0.2", p)
	}
	if f.Predict([]float64{3, 0, 0}, 0.5) != 1 {
		t.Error("Predict should be 1 in positive cluster")
	}
	if f.Predict([]float64{-3, 0, 0}, 0.5) != 0 {
		t.Error("Predict should be 0 in negative cluster")
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, nil, Config{NumTrees: 5}); !errors.Is(err, ErrNoData) {
		t.Errorf("empty fit error = %v", err)
	}
	if _, err := Fit([][]float64{{1, 2}}, []int{0}, Config{NumTrees: 5}); err == nil {
		t.Error("shape mismatch should fail")
	}
	if _, err := Fit([][]float64{{1}}, []int{0}, Config{NumTrees: 0}); err == nil {
		t.Error("NumTrees=0 should fail")
	}
}

func TestDeterminism(t *testing.T) {
	cols, y := blobs(300, 3, 2)
	cfg := Config{NumTrees: 10, MaxDepth: 5, Seed: 99, Workers: 4}
	a, err := Fit(cols, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fit(cols, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	x := make([]float64, 4)
	for trial := 0; trial < 50; trial++ {
		for j := range x {
			x[j] = rng.NormFloat64() * 3
		}
		if a.PredictProba(x) != b.PredictProba(x) {
			t.Fatal("same seed should give identical forests regardless of worker count")
		}
	}
}

func TestWorkerCountInvariance(t *testing.T) {
	// Serial and parallel fits must be bit-identical: bootstraps and
	// tree seeds are drawn up front from one RNG, and scoring chunks
	// accumulate in tree order regardless of which worker owns a row.
	cols, y := blobs(300, 3, 6)
	serial, err := Fit(cols, y, Config{NumTrees: 12, MaxDepth: 6, Seed: 11, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Fit(cols, y, Config{NumTrees: 12, MaxDepth: 6, Seed: 11, Workers: 5})
	if err != nil {
		t.Fatal(err)
	}
	impS, err := serial.ImpurityImportance()
	if err != nil {
		t.Fatal(err)
	}
	impP, err := parallel.ImpurityImportance()
	if err != nil {
		t.Fatal(err)
	}
	for f := range impS {
		if impS[f] != impP[f] {
			t.Fatalf("importance[%d]: serial %v != parallel %v", f, impS[f], impP[f])
		}
	}
	probS, err := serial.PredictProbaAll(cols)
	if err != nil {
		t.Fatal(err)
	}
	probP, err := parallel.PredictProbaAll(cols)
	if err != nil {
		t.Fatal(err)
	}
	for i := range probS {
		if probS[i] != probP[i] {
			t.Fatalf("prob[%d]: serial %v != parallel %v", i, probS[i], probP[i])
		}
	}
}

func TestPredictProbaAll(t *testing.T) {
	cols, y := blobs(200, 1, 4)
	f, err := Fit(cols, y, Config{NumTrees: 10, MaxDepth: 5, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	probs, err := f.PredictProbaAll(cols)
	if err != nil {
		t.Fatal(err)
	}
	if len(probs) != 200 {
		t.Fatalf("probs len = %d", len(probs))
	}
	// Batch prediction must match per-row prediction.
	x := make([]float64, 2)
	for i := 0; i < 20; i++ {
		x[0], x[1] = cols[0][i], cols[1][i]
		if probs[i] != f.PredictProba(x) {
			t.Fatalf("batch prob[%d] = %v, row prob = %v", i, probs[i], f.PredictProba(x))
		}
	}
	if _, err := f.PredictProbaAll([][]float64{{1}}); err == nil {
		t.Error("wrong column count should fail")
	}
}

func TestImpurityImportanceFindsSignal(t *testing.T) {
	cols, y := blobs(500, 4, 5)
	f, err := Fit(cols, y, Config{NumTrees: 30, MaxDepth: 6, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	imp, err := f.ImpurityImportance()
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range imp {
		if v < 0 {
			t.Errorf("negative impurity importance %v", v)
		}
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("importance sum = %v, want 1", sum)
	}
	for j := 1; j < len(imp); j++ {
		if imp[0] <= imp[j] {
			t.Errorf("signal importance %v should exceed noise[%d] %v", imp[0], j, imp[j])
		}
	}
}

func TestPermutationImportanceFindsSignal(t *testing.T) {
	cols, y := blobs(500, 3, 6)
	f, err := Fit(cols, y, Config{NumTrees: 25, MaxDepth: 6, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	imp, err := f.PermutationImportance(7)
	if err != nil {
		t.Fatal(err)
	}
	for j := 1; j < len(imp); j++ {
		if imp[0] <= imp[j] {
			t.Errorf("signal perm importance %v should exceed noise[%d] %v", imp[0], j, imp[j])
		}
	}
	if imp[0] < 0.1 {
		t.Errorf("signal perm importance = %v, want substantial", imp[0])
	}
}

func TestOOBAccuracy(t *testing.T) {
	cols, y := blobs(400, 2, 7)
	f, err := Fit(cols, y, Config{NumTrees: 30, MaxDepth: 8, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := f.OOBAccuracy()
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Errorf("OOB accuracy on separable blobs = %v, want >= 0.9", acc)
	}
}

func TestNotFitted(t *testing.T) {
	var f Forest
	if _, err := f.ImpurityImportance(); !errors.Is(err, ErrNotFitted) {
		t.Errorf("ImpurityImportance error = %v", err)
	}
	if _, err := f.PermutationImportance(1); !errors.Is(err, ErrNotFitted) {
		t.Errorf("PermutationImportance error = %v", err)
	}
	if _, err := f.OOBAccuracy(); !errors.Is(err, ErrNotFitted) {
		t.Errorf("OOBAccuracy error = %v", err)
	}
}

func TestSingleClassData(t *testing.T) {
	// All-negative labels: forest must fit and predict ~0 everywhere.
	cols := [][]float64{{1, 2, 3, 4, 5, 6}}
	y := []int{0, 0, 0, 0, 0, 0}
	f, err := Fit(cols, y, Config{NumTrees: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if p := f.PredictProba([]float64{3}); p != 0 {
		t.Errorf("all-negative forest prob = %v, want 0", p)
	}
}

func BenchmarkFit100Trees(b *testing.B) {
	cols, y := blobs(1000, 9, 10)
	cfg := Config{NumTrees: 100, MaxDepth: 13, Seed: 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(cols, y, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

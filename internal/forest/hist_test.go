package forest

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/hist"
)

// histBlobs adds NaN holes and a low-cardinality counter column to the
// blobs data, so the binned path's missing bin and tied values are
// exercised.
func histBlobs(n int, seed int64) (cols [][]float64, y []int) {
	cols, y = blobs(n, 3, seed)
	rng := rand.New(rand.NewSource(seed + 100))
	counter := make([]float64, n)
	for i := range counter {
		counter[i] = float64(rng.Intn(5))
		if rng.Float64() < 0.05 {
			cols[1][i] = math.NaN()
		}
	}
	cols = append(cols, counter)
	return cols, y
}

// TestHistWorkerCountInvariance asserts the binned path is bit-identical
// at any worker count, exactly like the exact path: bootstraps and tree
// seeds are pre-drawn, and each worker only reads the shared binned
// matrix.
func TestHistWorkerCountInvariance(t *testing.T) {
	cols, y := histBlobs(300, 6)
	var ref []float64
	var refImp []float64
	for _, workers := range []int{1, 4, 8} {
		f, err := Fit(cols, y, Config{
			NumTrees: 12, MaxDepth: 6, Seed: 11, Workers: workers,
			SplitMethod: hist.SplitHist,
		})
		if err != nil {
			t.Fatal(err)
		}
		probs, err := f.PredictProbaAll(cols)
		if err != nil {
			t.Fatal(err)
		}
		imp, err := f.ImpurityImportance()
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref, refImp = probs, imp
			continue
		}
		for i := range probs {
			if probs[i] != ref[i] {
				t.Fatalf("workers=%d: prob[%d] = %v, want %v", workers, i, probs[i], ref[i])
			}
		}
		for j := range imp {
			if imp[j] != refImp[j] {
				t.Fatalf("workers=%d: importance[%d] = %v, want %v", workers, j, imp[j], refImp[j])
			}
		}
	}
}

// TestHistLearnsSignal asserts the binned forest still separates the
// clusters — the split-search change must not cost accuracy on clean
// separable data.
func TestHistLearnsSignal(t *testing.T) {
	cols, y := histBlobs(400, 1)
	f, err := Fit(cols, y, Config{NumTrees: 20, MaxDepth: 6, Seed: 1, SplitMethod: hist.SplitHist})
	if err != nil {
		t.Fatal(err)
	}
	if p := f.PredictProba([]float64{3, 0, 0, 0, 2}); p < 0.8 {
		t.Errorf("PredictProba(positive cluster) = %v, want > 0.8", p)
	}
	if p := f.PredictProba([]float64{-3, 0, 0, 0, 2}); p > 0.2 {
		t.Errorf("PredictProba(negative cluster) = %v, want < 0.2", p)
	}
}

// TestHistExactDefault asserts the zero-value config still runs the
// exact path: a hist-path regression must never silently change the
// default's bit-exact behavior.
func TestHistExactDefault(t *testing.T) {
	cols, y := blobs(200, 2, 3)
	cfg := Config{NumTrees: 8, MaxDepth: 5, Seed: 7}
	if cfg.SplitMethod != hist.SplitExact {
		t.Fatalf("zero-value SplitMethod = %v, want exact", cfg.SplitMethod)
	}
	a, err := Fit(cols, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fit(cols, y, Config{NumTrees: 8, MaxDepth: 5, Seed: 7, SplitMethod: hist.SplitExact})
	if err != nil {
		t.Fatal(err)
	}
	pa, err := a.PredictProbaAll(cols)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := b.PredictProbaAll(cols)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("prob[%d]: %v != %v", i, pa[i], pb[i])
		}
	}
}

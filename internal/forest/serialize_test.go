package forest

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/tree"
)

func TestForestSerializationRoundTrip(t *testing.T) {
	cols, y := blobs(400, 3, 51)
	f, err := Fit(cols, y, Config{NumTrees: 12, MaxDepth: 7, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	data, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	g, err := UnmarshalForest(data)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTrees() != f.NumTrees() || g.NumFeatures() != f.NumFeatures() {
		t.Fatalf("shape changed: (%d, %d) vs (%d, %d)", g.NumTrees(), g.NumFeatures(), f.NumTrees(), f.NumFeatures())
	}
	rng := rand.New(rand.NewSource(52))
	x := make([]float64, 4)
	for trial := 0; trial < 200; trial++ {
		for j := range x {
			x[j] = rng.NormFloat64() * 3
		}
		if f.PredictProba(x) != g.PredictProba(x) {
			t.Fatal("prediction changed after round trip")
		}
	}
	// Training-only capabilities are gone, loudly.
	if _, err := g.OOBAccuracy(); err == nil {
		t.Error("deserialized forest should not report OOB accuracy")
	}
}

func TestUnmarshalForestErrors(t *testing.T) {
	if _, err := UnmarshalForest([]byte("garbage")); !errors.Is(err, ErrBadEncoding) {
		t.Errorf("garbage error = %v", err)
	}
	var empty Forest
	if _, err := empty.MarshalBinary(); !errors.Is(err, ErrNotFitted) {
		t.Errorf("unfitted marshal error = %v", err)
	}
}

func TestTreeImportValidation(t *testing.T) {
	cols, y := blobs(150, 1, 53)
	f, err := Fit(cols, y, Config{NumTrees: 1, MaxDepth: 4, Seed: 53})
	if err != nil {
		t.Fatal(err)
	}
	good := f.trees[0].Export()

	cases := map[string]func(e tree.Encoded) tree.Encoded{
		"no nodes": func(e tree.Encoded) tree.Encoded {
			e.Feature = nil
			e.Threshold, e.Left, e.Right, e.Prob = nil, nil, nil, nil
			return e
		},
		"misaligned": func(e tree.Encoded) tree.Encoded {
			e.Prob = e.Prob[:len(e.Prob)-1]
			return e
		},
		"bad nfeatures": func(e tree.Encoded) tree.Encoded {
			e.NFeatures = 0
			return e
		},
		"feature out of range": func(e tree.Encoded) tree.Encoded {
			e = cloneEncoded(e)
			e.Feature[0] = 99
			return e
		},
		"self child": func(e tree.Encoded) tree.Encoded {
			e = cloneEncoded(e)
			if e.Feature[0] >= 0 {
				e.Left[0] = 0
			} else {
				e.Feature[0] = 0
				e.Left[0] = 0
				e.Right[0] = 0
			}
			return e
		},
		"bad prob": func(e tree.Encoded) tree.Encoded {
			e = cloneEncoded(e)
			e.Prob[len(e.Prob)-1] = 1.5
			return e
		},
	}
	for name, mutate := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := tree.Import(mutate(good)); !errors.Is(err, tree.ErrBadEncoding) {
				t.Errorf("error = %v, want ErrBadEncoding", err)
			}
		})
	}
	// The unmutated encoding imports cleanly.
	if _, err := tree.Import(good); err != nil {
		t.Fatalf("good encoding rejected: %v", err)
	}
}

func cloneEncoded(e tree.Encoded) tree.Encoded {
	return tree.Encoded{
		Feature:   append([]int(nil), e.Feature...),
		Threshold: append([]float64(nil), e.Threshold...),
		Left:      append([]int(nil), e.Left...),
		Right:     append([]int(nil), e.Right...),
		Prob:      append([]float64(nil), e.Prob...),
		NFeatures: e.NFeatures,
	}
}

package forest

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"

	"repro/internal/tree"
)

// encodedForest is the gob wire form of a fitted forest.
type encodedForest struct {
	Trees     []tree.Encoded
	NFeatures int
}

// ErrBadEncoding indicates serialized bytes that do not decode into a
// valid forest.
var ErrBadEncoding = errors.New("forest: bad encoding")

// MarshalBinary serializes the forest for deployment: tree structures
// and feature count only. Training-side state (bootstrap indices,
// out-of-bag bookkeeping, training data references) is deliberately
// dropped — a deserialized forest predicts identically but cannot
// compute importances or OOB estimates.
func (f *Forest) MarshalBinary() ([]byte, error) {
	if len(f.trees) == 0 {
		return nil, ErrNotFitted
	}
	enc := encodedForest{NFeatures: f.nFeatures}
	for _, t := range f.trees {
		enc.Trees = append(enc.Trees, t.Export())
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(enc); err != nil {
		return nil, fmt.Errorf("forest: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalForest reconstructs a prediction-ready forest from bytes
// produced by MarshalBinary.
func UnmarshalForest(data []byte) (*Forest, error) {
	var enc encodedForest
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&enc); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadEncoding, err)
	}
	if len(enc.Trees) == 0 {
		return nil, fmt.Errorf("%w: no trees", ErrBadEncoding)
	}
	f := &Forest{nFeatures: enc.NFeatures}
	for i, et := range enc.Trees {
		t, err := tree.Import(et)
		if err != nil {
			return nil, fmt.Errorf("%w: tree %d: %v", ErrBadEncoding, i, err)
		}
		if t.NumFeatures() != enc.NFeatures {
			return nil, fmt.Errorf("%w: tree %d has %d features, forest %d", ErrBadEncoding, i, t.NumFeatures(), enc.NFeatures)
		}
		f.trees = append(f.trees, t)
	}
	return f, nil
}

package forest

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestPredictProbaBoundedProperty: forest probabilities stay in [0, 1]
// for arbitrary query points, including far outside the training range.
func TestPredictProbaBoundedProperty(t *testing.T) {
	cols, y := blobs(300, 2, 31)
	f, err := Fit(cols, y, Config{NumTrees: 10, MaxDepth: 6, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	check := func(a, b, c float64) bool {
		p := f.PredictProba([]float64{a, b, c})
		return p >= 0 && p <= 1
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

// TestImportanceSumProperty: impurity importance is a probability
// vector (or all zeros) regardless of data shape.
func TestImportanceSumProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(200)
		nf := 1 + rng.Intn(6)
		cols := make([][]float64, nf)
		for j := range cols {
			cols[j] = make([]float64, n)
			for i := range cols[j] {
				cols[j][i] = rng.NormFloat64()
			}
		}
		y := make([]int, n)
		for i := range y {
			if rng.Float64() < 0.4 {
				y[i] = 1
			}
		}
		fst, err := Fit(cols, y, Config{NumTrees: 5, MaxDepth: 4, Seed: seed})
		if err != nil {
			return false
		}
		imp, err := fst.ImpurityImportance()
		if err != nil {
			return false
		}
		sum := 0.0
		for _, v := range imp {
			if v < 0 {
				return false
			}
			sum += v
		}
		return sum == 0 || (sum > 0.999 && sum < 1.001)
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

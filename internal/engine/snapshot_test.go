package engine

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/forest"
	"repro/internal/frame"
	"repro/internal/simulate"
	"repro/internal/smart"
	"repro/internal/survival"
)

// allFeats is a minimal no-selection strategy for engine tests (the
// real selectors live in internal/pipeline, which imports this
// package).
type allFeats struct{}

func (allFeats) Name() string { return "all" }

func (allFeats) Select(fr *frame.Frame, _ survival.Curve) (SelectorResult, error) {
	names := make([]string, fr.NumFeatures())
	copy(names, fr.Names())
	return SelectorResult{All: names}, nil
}

func testSource(t *testing.T) dataset.Source {
	t.Helper()
	f, err := simulate.New(simulate.Config{TotalDrives: 700, Seed: 5, AFRScale: 4})
	if err != nil {
		t.Fatal(err)
	}
	return dataset.FleetSource{Fleet: f}
}

func testCfg() Config {
	return Config{
		Forest:   forest.Config{NumTrees: 10, MaxDepth: 6, Seed: 1},
		NegEvery: 20,
		Seed:     1,
	}
}

// TestSnapshotRoundTrip is the held-out-window bit-identity check:
// train a phase, capture its ModelSnapshot, persist it through the
// registry, reload it (as a fresh process would), and score the test
// window — the outcomes must equal the in-memory run's exactly.
func TestSnapshotRoundTrip(t *testing.T) {
	src := testSource(t)
	ph := StandardPhases(src.Days())[2]
	res, err := RunPhase(src, smart.MC1, allFeats{}, ph, testCfg())
	if err != nil {
		t.Fatal(err)
	}

	snap, err := res.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.TrainedThrough != ph.TrainHi || snap.Model != smart.MC1 || snap.Selector != "all" {
		t.Fatalf("snapshot header: %+v", snap)
	}
	if snap.ConfigHash != testCfg().Hash() {
		t.Errorf("config hash %q != %q", snap.ConfigHash, testCfg().Hash())
	}

	reg := &core.Registry{Dir: t.TempDir()}
	version, err := SaveSnapshot(reg, "mc1-all", snap)
	if err != nil {
		t.Fatal(err)
	}
	if version != 1 {
		t.Errorf("first save version = %d", version)
	}

	// Reload from disk — nothing shared with the in-memory snapshot —
	// and score the same held-out window from a fresh source.
	loaded, err := LoadSnapshot(reg, "mc1-all", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loaded.Thresholds, res.Thresholds) {
		t.Errorf("thresholds: loaded %v != trained %v", loaded.Thresholds, res.Thresholds)
	}
	outcomes, err := ScoreSnapshot(testSource(t), loaded, ph.TestLo, ph.TestHi, ScoreOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(outcomes, res.Outcomes) {
		t.Fatal("snapshot-scored outcomes differ from the in-memory run")
	}

	// Scoring with a different worker count stays bit-identical.
	parallel, err := ScoreSnapshot(testSource(t), loaded, ph.TestLo, ph.TestHi, ScoreOpts{Workers: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(parallel, outcomes) {
		t.Fatal("snapshot scoring differs between worker counts")
	}
}

func TestSnapshotRejectsRobust(t *testing.T) {
	src := testSource(t)
	ph := StandardPhases(src.Days())[2]
	cfg := testCfg()
	cfg.Robust = &RobustOpts{}
	res, err := RunPhase(src, smart.MC1, allFeats{}, ph, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Snapshot(); !errors.Is(err, ErrNotSnapshotable) {
		t.Errorf("robust snapshot error = %v, want ErrNotSnapshotable", err)
	}
	// A zero result is not snapshotable either.
	var zero PhaseResult
	if _, err := zero.Snapshot(); !errors.Is(err, ErrNotSnapshotable) {
		t.Errorf("zero-result snapshot error = %v, want ErrNotSnapshotable", err)
	}
}

func TestLoadSnapshotRejectsBadFormat(t *testing.T) {
	reg := &core.Registry{Dir: t.TempDir()}
	if _, err := reg.Save("bad", []byte(`{"format": 99}`)); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshot(reg, "bad", 0); !errors.Is(err, ErrSnapshotFormat) {
		t.Errorf("error = %v, want ErrSnapshotFormat", err)
	}
}

// TestPhaseAdvanceReusesIngestedDays is the append-only acceptance
// check: running successive phases on one engine must not re-extract
// already-ingested days — upstream series fetches stay flat after the
// first phase, and later phases ingest only their new days.
func TestPhaseAdvanceReusesIngestedDays(t *testing.T) {
	src := testSource(t)
	phases := StandardPhases(src.Days())
	e := New(src, testCfg())

	pd0, err := e.PreparePhase(smart.MC1, phases[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pd0.RunSelector(allFeats{}); err != nil {
		t.Fatal(err)
	}
	c0 := e.Store().Counters()
	if c0.SeriesFetches == 0 || c0.DaysIngested == 0 {
		t.Fatalf("phase 0 ingested nothing: %+v", c0)
	}

	pd1, err := e.PreparePhase(smart.MC1, phases[1])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pd1.RunSelector(allFeats{}); err != nil {
		t.Fatal(err)
	}
	c1 := e.Store().Counters()
	if c1.SeriesFetches != c0.SeriesFetches {
		t.Errorf("phase advance re-fetched upstream series: %d -> %d", c0.SeriesFetches, c1.SeriesFetches)
	}
	if got, want := c1.DaysIngested-c0.DaysIngested, int64(0); got <= want {
		t.Errorf("phase advance ingested %d new days, want > 0", got)
	}
	// The advance ingests at most the horizon delta per drive (drives
	// that died earlier contribute fewer days).
	drives := int64(len(src.DrivesOf(smart.MC1)))
	maxNew := drives * int64(phases[1].TestHi-phases[0].TestHi)
	if got := c1.DaysIngested - c0.DaysIngested; got > maxNew {
		t.Errorf("phase advance ingested %d days, more than the %d-day horizon delta allows", got, maxNew)
	}

	// The ingest stage of each result reports the store's delta.
	var ingest0 int
	for _, st := range pd0.prep {
		if st.Stage == StageIngest {
			ingest0 = st.Rows
		}
	}
	if int64(ingest0) != c0.DaysIngested {
		t.Errorf("phase 0 ingest stage rows = %d, store ingested %d", ingest0, c0.DaysIngested)
	}
}

// TestStageStatsOnResult verifies a phase result carries the full
// stage sequence with plausible row counts.
func TestStageStatsOnResult(t *testing.T) {
	src := testSource(t)
	ph := StandardPhases(src.Days())[2]
	rep := &StageReport{}
	cfg := testCfg()
	cfg.Stages = rep
	res, err := RunPhase(src, smart.MC1, allFeats{}, ph, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{StageIngest, StageFeaturize, StageSelect, StageTrain, StageCalibrate, StageScore, StageEvaluate}
	if len(res.StageStats) != len(want) {
		t.Fatalf("stage stats = %+v", res.StageStats)
	}
	for i, st := range res.StageStats {
		if st.Stage != want[i] {
			t.Errorf("stage %d = %s, want %s", i, st.Stage, want[i])
		}
	}
	// Evaluate's rows are the scored drives; Score's are drive-days.
	last := res.StageStats[len(res.StageStats)-1]
	if last.Rows != len(res.Outcomes) {
		t.Errorf("evaluate rows = %d, outcomes = %d", last.Rows, len(res.Outcomes))
	}
	totals := rep.Totals()
	if len(totals) != len(want) {
		t.Errorf("shared report totals = %+v", totals)
	}
}

// TestFlatScoringParity pins the engine-level guarantee behind the
// compiled scoring path: a phase scored through the flat models is
// bit-identical, probability by probability, to the pointer walkers.
func TestFlatScoringParity(t *testing.T) {
	src := testSource(t)
	ph := StandardPhases(src.Days())[2]
	res, err := RunPhase(src, smart.MC1, allFeats{}, ph, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	snap, err := res.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range snap.Groups {
		if len(g.FlatData) == 0 {
			t.Fatalf("group %d snapshot carries no compiled flat payload", i)
		}
	}
	flatGroups, err := snap.buildGroups(1)
	if err != nil {
		t.Fatal(err)
	}
	ptrGroups := make([]group, len(flatGroups))
	copy(ptrGroups, flatGroups)
	for i := range ptrGroups {
		switch m := ptrGroups[i].model.(type) {
		case forestModel:
			ptrGroups[i].model = forestModel{f: m.f}
		case gbdtModel:
			ptrGroups[i].model = gbdtModel{m: m.m}
		default:
			t.Fatalf("group %d: unexpected model %T", i, m)
		}
	}
	cfg := Config{Windows: append([]int(nil), snap.Windows...)}
	flatScores, _, err := scorePhase(src, snap.Model, flatGroups, ph.TestLo, ph.TestHi, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ptrScores, _, err := scorePhase(src, snap.Model, ptrGroups, ph.TestLo, ph.TestHi, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(flatScores) == 0 || len(flatScores) != len(ptrScores) {
		t.Fatalf("scored %d drives flat, %d pointer", len(flatScores), len(ptrScores))
	}
	for id, fd := range flatScores {
		pd, ok := ptrScores[id]
		if !ok {
			t.Fatalf("drive %d missing from pointer scores", id)
		}
		if !reflect.DeepEqual(fd.days, pd.days) {
			t.Fatalf("drive %d scored days differ", id)
		}
		for k := range fd.probs {
			if math.Float64bits(fd.probs[k]) != math.Float64bits(pd.probs[k]) {
				t.Fatalf("drive %d day %d: flat %v != pointer %v", id, fd.days[k], fd.probs[k], pd.probs[k])
			}
		}
	}
}

package engine

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/runlog"
	"repro/internal/smart"
	"repro/internal/survival"
)

// countingSelector wraps a Selector and counts Select calls — resumed
// phases must not re-select (and therefore not retrain).
type countingSelector struct {
	inner Selector
	calls int
}

func (c *countingSelector) Name() string { return c.inner.Name() }

func (c *countingSelector) Select(fr *frame.Frame, cv survival.Curve) (SelectorResult, error) {
	c.calls++
	return c.inner.Select(fr, cv)
}

// comparable projection of a result list: everything a caller can
// observe, minus stage timings (wall-clock is never reproducible).
func projectResults(results []PhaseResult) []PhaseResult {
	out := make([]PhaseResult, len(results))
	for i, r := range results {
		r.StageStats = nil
		r.groups = nil
		r.cfg = Config{}
		r.trainHi = 0
		out[i] = r
	}
	return out
}

func journalPhases(src interface{ Days() int }) []Phase {
	return StandardPhases(src.Days())[1:]
}

// TestRunJournaledMatchesRun verifies the clean journaled path is
// bit-identical to the plain engine: same outcomes, thresholds, and
// confusion per phase, same merged total.
func TestRunJournaledMatchesRun(t *testing.T) {
	src := testSource(t)
	phases := journalPhases(src)
	cfg := testCfg()

	want, wantTotal, err := Run(testSource(t), smart.MC1, allFeats{}, phases, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, gotTotal, err := RunJournaled(src, smart.MC1, allFeats{}, phases, cfg, JournalOpts{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(projectResults(got), projectResults(want)) {
		t.Error("journaled results differ from plain Run")
	}
	if gotTotal != wantTotal {
		t.Errorf("total confusion %+v != %+v", gotTotal, wantTotal)
	}
}

// TestResumeSkipsCompletedPhases is the core recovery property: after
// a run that completed only a prefix of the phases, resuming with the
// full phase list reloads the prefix from its artifacts (no selection,
// no retraining) and the combined results are bit-identical to an
// uninterrupted run.
func TestResumeSkipsCompletedPhases(t *testing.T) {
	src := testSource(t)
	phases := journalPhases(src)
	cfg := testCfg()
	dir := t.TempDir()

	// "Crashed" run: completes only the first phase.
	if _, _, err := RunJournaled(testSource(t), smart.MC1, allFeats{}, phases[:1], cfg, JournalOpts{Dir: dir}); err != nil {
		t.Fatal(err)
	}

	sel := &countingSelector{inner: allFeats{}}
	var resumeLines int
	got, gotTotal, err := RunJournaled(src, smart.MC1, sel, phases, cfg, JournalOpts{
		Dir: dir, Resume: true,
		Log: func(string, ...any) { resumeLines++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if sel.calls != len(phases)-1 {
		t.Errorf("resume ran selection %d times, want %d (phase 0 must reload)", sel.calls, len(phases)-1)
	}
	if resumeLines != 1 {
		t.Errorf("resume logged %d lines, want 1", resumeLines)
	}

	want, wantTotal, err := Run(testSource(t), smart.MC1, allFeats{}, phases, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(projectResults(got), projectResults(want)) {
		t.Error("resumed results differ from uninterrupted run")
	}
	if gotTotal != wantTotal {
		t.Errorf("total confusion %+v != %+v", gotTotal, wantTotal)
	}

	// A resumed result stays a first-class PhaseResult: snapshotable.
	if _, err := got[0].Snapshot(); err != nil {
		t.Errorf("snapshot of reloaded phase: %v", err)
	}
}

// TestResumeAdoptsUnjournaledArtifact covers the crash window between
// artifact save and journal append: the artifact exists (published
// atomically, hence complete) but no phase-done record points at it.
// Resume must adopt it — no duplicate artifact version — and still
// reproduce the uninterrupted results.
func TestResumeAdoptsUnjournaledArtifact(t *testing.T) {
	src := testSource(t)
	phases := journalPhases(src)[:1]
	cfg := testCfg()
	dir := t.TempDir()

	want, _, err := RunJournaled(testSource(t), smart.MC1, allFeats{}, phases, cfg, JournalOpts{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}

	// Rewrite the journal as if the process died right after the save:
	// meta record only, artifact left behind.
	path := filepath.Join(dir, journalFile)
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	j, _, err := runlog.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	meta := journalMeta{ConfigHash: cfg.Hash(), Model: smart.MC1, Selector: "all"}
	if err := j.Append(recMeta, meta); err != nil {
		t.Fatal(err)
	}
	j.Close()

	sel := &countingSelector{inner: allFeats{}}
	adopted := false
	got, _, err := RunJournaled(src, smart.MC1, sel, phases, cfg, JournalOpts{
		Dir: dir, Resume: true,
		Log: func(format string, _ ...any) {
			if len(format) >= 15 && format[:15] == "resume: adopted" {
				adopted = true
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sel.calls != 0 {
		t.Errorf("adoption ran selection %d times, want 0", sel.calls)
	}
	if !adopted {
		t.Error("no adoption logged")
	}
	if !reflect.DeepEqual(projectResults(got), projectResults(want)) {
		t.Error("adopted results differ from original run")
	}
	reg := &core.Registry{Dir: filepath.Join(dir, "artifacts")}
	vs, err := reg.Versions(phaseArtifact(0))
	if err != nil || len(vs) != 1 {
		t.Errorf("artifact versions = %v, %v; adoption must not save a duplicate", vs, err)
	}
}

// TestJournalRefusesMismatches locks the journal's safety rails: an
// existing journal without Resume, a resumed journal from a different
// config, and a journaled phase whose bounds changed are all refused.
func TestJournalRefusesMismatches(t *testing.T) {
	src := testSource(t)
	phases := journalPhases(src)[:1]
	cfg := testCfg()
	dir := t.TempDir()
	if _, _, err := RunJournaled(src, smart.MC1, allFeats{}, phases, cfg, JournalOpts{Dir: dir}); err != nil {
		t.Fatal(err)
	}

	_, _, err := RunJournaled(testSource(t), smart.MC1, allFeats{}, phases, cfg, JournalOpts{Dir: dir})
	if !errors.Is(err, ErrJournalExists) {
		t.Errorf("re-run without Resume: %v, want ErrJournalExists", err)
	}

	other := cfg
	other.Seed = 999
	other.Forest.Seed = 999 // keep the derived seed from masking the change
	_, _, err = RunJournaled(testSource(t), smart.MC1, allFeats{}, phases, other, JournalOpts{Dir: dir, Resume: true})
	if !errors.Is(err, ErrJournalMismatch) {
		t.Errorf("resume with different config: %v, want ErrJournalMismatch", err)
	}

	moved := []Phase{{TrainLo: phases[0].TrainLo, TrainHi: phases[0].TrainHi - 1, TestLo: phases[0].TestLo, TestHi: phases[0].TestHi}}
	_, _, err = RunJournaled(testSource(t), smart.MC1, allFeats{}, moved, cfg, JournalOpts{Dir: dir, Resume: true})
	if !errors.Is(err, ErrJournalMismatch) {
		t.Errorf("resume with shifted phase bounds: %v, want ErrJournalMismatch", err)
	}

	robust := cfg
	robust.Robust = &RobustOpts{}
	_, _, err = RunJournaled(testSource(t), smart.MC1, allFeats{}, phases, robust, JournalOpts{Dir: t.TempDir()})
	if !errors.Is(err, ErrNotSnapshotable) {
		t.Errorf("journaled robust run: %v, want ErrNotSnapshotable", err)
	}
}

package engine

import (
	"fmt"
	"sync"

	"repro/internal/dataset"
)

// RobustOpts hardens the pipeline against dirty data. With a non-nil
// Robust config, every frame the pipeline builds is sanitized
// (sentinel scrub, bounded imputation, missingness masks on training
// and scoring frames), a phase whose selection fails falls back to the
// previous phase's selection before being skipped, and all degradation
// events are accounted in the Report. A nil Robust config reproduces
// the legacy pipeline exactly, bit for bit.
type RobustOpts struct {
	// Sanitize configures series cleaning. Counter is overwritten to
	// feed the Report when one is set; MissMask applies to training and
	// scoring frames only (the selection frame keeps pure feature
	// columns, which selectors rank and parse by name).
	Sanitize dataset.SanitizeOpts
	// Report, when non-nil, accumulates degradation events and detected
	// defects across the run.
	Report *RunReport
}

// sanitizeOpts builds the per-frame sanitization options; mask selects
// whether missingness-mask columns are appended (training/scoring
// frames only).
func (c Config) sanitizeOpts(mask bool) *dataset.SanitizeOpts {
	if c.Robust == nil {
		return nil
	}
	s := c.Robust.Sanitize
	s.MissMask = s.MissMask && mask
	if c.Robust.Report != nil {
		s.Counter = c.Robust.Report.Counter()
	}
	return &s
}

// report returns the run report, or nil.
func (c Config) report() *RunReport {
	if c.Robust == nil {
		return nil
	}
	return c.Robust.Report
}

// RunReport accumulates what a robust run did about bad data: defects
// the sanitizer detected, preliminary rankers dropped from the
// ensemble, fallbacks and skips taken per phase. Safe for concurrent
// use; serialize with Snapshot.
type RunReport struct {
	mu             sync.Mutex
	counter        dataset.DefectCounter
	rankersDropped []string
	fallbacks      []string
	phasesRun      int
	phasesSkipped  int
}

// Counter exposes the detected-defect counter the sanitizer feeds.
func (r *RunReport) Counter() *dataset.DefectCounter {
	if r == nil {
		return nil
	}
	return &r.counter
}

// NoteRankerDropped records a preliminary approach dropped during one
// selection; entry is "<ranker>: <reason>".
func (r *RunReport) NoteRankerDropped(ctx, entry string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.rankersDropped = append(r.rankersDropped, fmt.Sprintf("%s: %s", ctx, entry))
	r.mu.Unlock()
}

// NoteFallback records a degradation decision (inherited selection,
// skipped change point, skipped phase).
func (r *RunReport) NoteFallback(desc string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.fallbacks = append(r.fallbacks, desc)
	r.mu.Unlock()
}

// NotePhase records a phase completing (ok) or being skipped.
func (r *RunReport) NotePhase(ok bool) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if ok {
		r.phasesRun++
	} else {
		r.phasesSkipped++
	}
	r.mu.Unlock()
}

// ReportSnapshot is the serializable form of a RunReport. Injected
// carries the fault injector's per-class counts when the caller ran
// one (nil on organic dirty data).
type ReportSnapshot struct {
	Injected       map[string]int      `json:"injected,omitempty"`
	Detected       dataset.DefectStats `json:"detected"`
	RankersDropped []string            `json:"rankers_dropped,omitempty"`
	Fallbacks      []string            `json:"fallbacks,omitempty"`
	PhasesRun      int                 `json:"phases_run"`
	PhasesSkipped  int                 `json:"phases_skipped"`
}

// Snapshot captures the report for serialization, attaching the given
// injected-defect counts (may be nil).
func (r *RunReport) Snapshot(injected map[string]int) ReportSnapshot {
	if r == nil {
		return ReportSnapshot{Injected: injected}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return ReportSnapshot{
		Injected:       injected,
		Detected:       r.counter.Snapshot(),
		RankersDropped: append([]string(nil), r.rankersDropped...),
		Fallbacks:      append([]string(nil), r.fallbacks...),
		PhasesRun:      r.phasesRun,
		PhasesSkipped:  r.phasesSkipped,
	}
}

package engine

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/runlog"
	"repro/internal/smart"
)

// Journaling errors.
var (
	// ErrJournalExists indicates a journal directory that already holds
	// a run journal while Resume was not requested.
	ErrJournalExists = errors.New("pipeline: journal exists (resume not requested)")
	// ErrJournalMismatch indicates a journal written by a run with a
	// different configuration, model, selector, or phase layout.
	ErrJournalMismatch = errors.New("pipeline: journal does not match this run")
)

// JournalOpts configures a journaled run (RunJournaled).
type JournalOpts struct {
	// Dir is the journal directory: it holds the run journal
	// ("run.journal") and the per-phase model artifacts
	// ("artifacts/phase-NNNN/vNNNN.json"). Created if missing.
	Dir string
	// Resume allows continuing an existing journal: phases it records
	// as complete are reloaded from their saved artifacts instead of
	// retrained. Without Resume, an existing journal is an error —
	// silently appending to a stale journal would mix two runs.
	Resume bool
	// Log, when non-nil, receives one human-readable line per resume
	// decision (phases reloaded or adopted). Never written on the
	// clean path, so stdout stays bit-identical; CLIs pass stderr.
	Log func(format string, args ...any)
}

func (jo JournalOpts) logf(format string, args ...any) {
	if jo.Log != nil {
		jo.Log(format, args...)
	}
}

// journalFile is the run journal's file name inside JournalOpts.Dir.
const journalFile = "run.journal"

// Journal record types.
const (
	recMeta      = "meta"       // run identity, first record
	recPhaseDone = "phase-done" // one completed phase
)

// journalMeta is the journal's first record: the identity of the run
// that owns it. A resume with a different identity is refused — its
// artifacts would be meaningless for the new run.
type journalMeta struct {
	ConfigHash string        `json:"config_hash"`
	Model      smart.ModelID `json:"model"`
	Selector   string        `json:"selector"`
}

// journalPhaseDone records one completed phase: its index and bounds,
// and the registry artifact holding its trained ModelSnapshot.
type journalPhaseDone struct {
	Index    int    `json:"index"`
	Phase    Phase  `json:"phase"`
	Artifact string `json:"artifact"`
	Version  int    `json:"version"`
}

// phaseArtifact names the registry artifact of the i-th phase.
func phaseArtifact(i int) string { return fmt.Sprintf("phase-%04d", i) }

// RunJournaled is Run with crash recovery: each completed phase's
// trained artifact is saved to a registry under jo.Dir and recorded in
// an fsync'd, checksummed run journal. If the process dies mid-run,
// rerunning with Resume reloads every journaled phase from its
// artifact — retraining only the interrupted one — and produces
// results bit-identical to an uninterrupted run.
//
// Robust-mode configs are rejected: their trained state is not
// snapshotable (ErrNotSnapshotable), so a crashed robust run cannot be
// resumed faithfully.
func RunJournaled(src dataset.Source, model smart.ModelID, sel Selector, phases []Phase, cfg Config, jo JournalOpts) ([]PhaseResult, metrics.Confusion, error) {
	if cfg.Robust != nil {
		return nil, metrics.Confusion{}, fmt.Errorf("%w: robust-mode runs cannot be journaled", ErrNotSnapshotable)
	}
	if jo.Dir == "" {
		return nil, metrics.Confusion{}, errors.New("pipeline: empty journal directory")
	}
	if err := os.MkdirAll(jo.Dir, 0o755); err != nil {
		return nil, metrics.Confusion{}, fmt.Errorf("pipeline: journal dir: %w", err)
	}
	path := filepath.Join(jo.Dir, journalFile)
	if !jo.Resume {
		if _, err := os.Stat(path); err == nil {
			return nil, metrics.Confusion{}, fmt.Errorf("%w: %s", ErrJournalExists, path)
		} else if !errors.Is(err, os.ErrNotExist) {
			return nil, metrics.Confusion{}, err
		}
	}
	j, recs, err := runlog.Open(path)
	if err != nil {
		return nil, metrics.Confusion{}, fmt.Errorf("pipeline: open journal: %w", err)
	}
	defer j.Close()

	meta := journalMeta{ConfigHash: cfg.Hash(), Model: model, Selector: sel.Name()}
	done, err := replayJournal(recs, meta, phases)
	if err != nil {
		return nil, metrics.Confusion{}, err
	}
	if len(recs) == 0 {
		if err := j.Append(recMeta, meta); err != nil {
			return nil, metrics.Confusion{}, fmt.Errorf("pipeline: journal meta: %w", err)
		}
	}
	reg := &core.Registry{Dir: filepath.Join(jo.Dir, "artifacts")}

	e := New(src, cfg)
	var results []PhaseResult
	var total metrics.Confusion
	for i, ph := range phases {
		rec, ok := done[i]
		if !ok {
			// A crash between artifact save and journal append leaves a
			// complete artifact with no record; adopt it rather than
			// training a duplicate version.
			if adopted, found := adoptArtifact(reg, phaseArtifact(i), meta, ph); found {
				rec = journalPhaseDone{Index: i, Phase: ph, Artifact: phaseArtifact(i), Version: adopted}
				if err := j.Append(recPhaseDone, rec); err != nil {
					return nil, metrics.Confusion{}, fmt.Errorf("pipeline: journal phase %d: %w", i, err)
				}
				jo.logf("resume: adopted unjournaled artifact %s v%d for phase %d", rec.Artifact, rec.Version, i)
				ok = true
			}
		}
		var res PhaseResult
		if ok {
			res, err = e.reloadPhase(reg, rec, model)
			if err != nil {
				return nil, metrics.Confusion{}, fmt.Errorf("pipeline: model %v phase test [%d, %d]: resume: %w", model, ph.TestLo, ph.TestHi, err)
			}
			jo.logf("resume: phase %d reloaded from %s v%d (no retraining)", i, rec.Artifact, rec.Version)
		} else {
			res, err = e.runJournaledPhase(j, reg, model, sel, ph, i)
			if err != nil {
				return nil, metrics.Confusion{}, fmt.Errorf("pipeline: model %v phase test [%d, %d]: %w", model, ph.TestLo, ph.TestHi, err)
			}
		}
		results = append(results, res)
		total.Merge(res.Confusion)
	}
	return results, total, nil
}

// replayJournal validates the journal's records against this run and
// returns the completed phases by index.
func replayJournal(recs []runlog.Record, meta journalMeta, phases []Phase) (map[int]journalPhaseDone, error) {
	done := make(map[int]journalPhaseDone)
	for i, rec := range recs {
		switch rec.Type {
		case recMeta:
			if i != 0 {
				return nil, fmt.Errorf("%w: meta record at position %d", ErrJournalMismatch, i)
			}
			var m journalMeta
			if err := rec.Decode(&m); err != nil {
				return nil, fmt.Errorf("pipeline: journal meta: %w", err)
			}
			if m != meta {
				return nil, fmt.Errorf("%w: journal is for config %s model %v selector %q, this run is config %s model %v selector %q",
					ErrJournalMismatch, m.ConfigHash, m.Model, m.Selector, meta.ConfigHash, meta.Model, meta.Selector)
			}
		case recPhaseDone:
			if i == 0 {
				return nil, fmt.Errorf("%w: journal has no meta record", ErrJournalMismatch)
			}
			var pd journalPhaseDone
			if err := rec.Decode(&pd); err != nil {
				return nil, fmt.Errorf("pipeline: journal phase record: %w", err)
			}
			if pd.Index < 0 || pd.Index >= len(phases) {
				return nil, fmt.Errorf("%w: journaled phase %d outside this run's %d phases", ErrJournalMismatch, pd.Index, len(phases))
			}
			if pd.Phase != phases[pd.Index] {
				return nil, fmt.Errorf("%w: journaled phase %d bounds %+v, this run has %+v", ErrJournalMismatch, pd.Index, pd.Phase, phases[pd.Index])
			}
			done[pd.Index] = pd
		default:
			return nil, fmt.Errorf("%w: unknown journal record type %q", ErrJournalMismatch, rec.Type)
		}
	}
	if len(recs) > 0 && recs[0].Type != recMeta {
		return nil, fmt.Errorf("%w: journal does not start with a meta record", ErrJournalMismatch)
	}
	return done, nil
}

// adoptArtifact checks whether the artifact's latest version is a
// snapshot this run could have saved for the phase, returning its
// version. Artifacts are published atomically, so an existing version
// is complete; matching identity and training horizon makes it
// exactly what rerunning the phase would reproduce.
func adoptArtifact(reg *core.Registry, name string, meta journalMeta, ph Phase) (int, bool) {
	data, version, err := reg.Load(name, 0)
	if err != nil {
		return 0, false
	}
	snap, err := DecodeSnapshot(data)
	if err != nil {
		return 0, false
	}
	if snap.ConfigHash != meta.ConfigHash || snap.Model != meta.Model ||
		snap.Selector != meta.Selector || snap.TrainedThrough != ph.TrainHi {
		return 0, false
	}
	return version, true
}

// runJournaledPhase trains one phase live and checkpoints it: the
// trained snapshot is saved to the registry, then the completion is
// journaled. The crash window between the two is covered by artifact
// adoption on resume.
func (e *Engine) runJournaledPhase(j *runlog.Journal, reg *core.Registry, model smart.ModelID, sel Selector, ph Phase, idx int) (PhaseResult, error) {
	pd, err := e.PreparePhase(model, ph)
	if err != nil {
		return PhaseResult{}, err
	}
	res, err := pd.RunSelector(sel)
	if err != nil {
		return PhaseResult{}, err
	}
	snap, err := res.Snapshot()
	if err != nil {
		return PhaseResult{}, err
	}
	version, err := SaveSnapshot(reg, phaseArtifact(idx), snap)
	if err != nil {
		return PhaseResult{}, fmt.Errorf("checkpoint: %w", err)
	}
	faults.CrashPoint(crashAfterSave)
	rec := journalPhaseDone{Index: idx, Phase: ph, Artifact: phaseArtifact(idx), Version: version}
	if err := j.Append(recPhaseDone, rec); err != nil {
		return PhaseResult{}, fmt.Errorf("checkpoint: %w", err)
	}
	return res, nil
}

// reloadPhase reconstructs a completed phase's result from its saved
// snapshot: ingest through the phase's test end (reusing every
// already-ingested day), rebuild the trained groups, and re-score the
// test window. Scoring a snapshot is bit-identical to the in-memory
// result that produced it, so a reloaded PhaseResult matches the
// original's outcomes, thresholds, and confusion exactly.
func (e *Engine) reloadPhase(reg *core.Registry, rec journalPhaseDone, model smart.ModelID) (PhaseResult, error) {
	snap, err := LoadSnapshot(reg, rec.Artifact, rec.Version)
	if err != nil {
		return PhaseResult{}, err
	}
	ph := rec.Phase
	switch {
	case snap.Model != model:
		return PhaseResult{}, fmt.Errorf("%w: artifact trained for model %v", ErrJournalMismatch, snap.Model)
	case snap.ConfigHash != e.cfg.Hash():
		return PhaseResult{}, fmt.Errorf("%w: artifact config %s, run config %s", ErrJournalMismatch, snap.ConfigHash, e.cfg.Hash())
	case snap.TrainedThrough != ph.TrainHi:
		return PhaseResult{}, fmt.Errorf("%w: artifact trained through day %d, phase trains through %d", ErrJournalMismatch, snap.TrainedThrough, ph.TrainHi)
	}
	groups, err := snap.buildGroups(e.cfg.Workers)
	if err != nil {
		return PhaseResult{}, err
	}
	if err := e.st.Track(model); err != nil {
		return PhaseResult{}, err
	}
	if err := e.st.AppendThrough(ph.TestHi); err != nil {
		return PhaseResult{}, err
	}
	src := e.st.Snapshot()
	scoreCfg := Config{Windows: append([]int(nil), snap.Windows...), Workers: e.cfg.Workers}
	scores, _, err := scorePhase(src, model, groups, ph.TestLo, ph.TestHi, scoreCfg)
	if err != nil {
		return PhaseResult{}, fmt.Errorf("rescore: %w", err)
	}
	outcomes := finalizeOutcomes(scores, snap.Thresholds, ph.TestHi)
	return PhaseResult{
		Selector:   snap.Selector,
		Model:      model,
		Selection:  snap.Selection,
		Thresholds: append([]float64(nil), snap.Thresholds...),
		Outcomes:   outcomes,
		Confusion:  EvaluateOutcomes(outcomes),
		groups:     groups,
		cfg:        e.cfg,
		trainHi:    ph.TrainHi,
	}, nil
}

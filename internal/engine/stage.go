package engine

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Stage names, in canonical execution order.
const (
	StageIngest    = "ingest"
	StageFeaturize = "featurize"
	StageSelect    = "select"
	StageTrain     = "train"
	StageCalibrate = "calibrate"
	StageScore     = "score"
	StageEvaluate  = "evaluate"
)

// stageOrder fixes the display order of merged stage reports.
var stageOrder = []string{
	StageIngest, StageFeaturize, StageSelect,
	StageTrain, StageCalibrate, StageScore, StageEvaluate,
}

// StageStat is one stage execution's accounting: wall-clock duration
// and the number of rows it processed (ingested days for Ingest, frame
// rows for Featurize/Train/Calibrate/Score, selected features for
// Select, drives for Evaluate). Retries counts fault recoveries inside
// the stage (today: upstream fetch retries during Ingest; 0 elsewhere).
type StageStat struct {
	Stage    string
	Duration time.Duration
	Rows     int
	Retries  int
}

// timeStage runs fn as the named stage, recording its duration and row
// count into stats and the config's shared StageReport (when set). fn
// runs — and its error propagates — regardless of whether anything
// collects the stat.
func timeStage(cfg Config, stats *[]StageStat, name string, fn func() (int, error)) error {
	start := time.Now()
	rows, err := fn()
	st := StageStat{Stage: name, Duration: time.Since(start), Rows: rows}
	*stats = append(*stats, st)
	cfg.Stages.add(st)
	return err
}

// StageReport accumulates stage stats across every phase run with a
// config that references it. Safe for concurrent use.
type StageReport struct {
	mu    sync.Mutex
	runs  int
	bySta map[string]*stageAgg
}

type stageAgg struct {
	count    int
	duration time.Duration
	rows     int
	retries  int
}

func (r *StageReport) add(st StageStat) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	a := r.agg(st.Stage)
	a.count++
	a.duration += st.Duration
	a.rows += st.Rows
	a.retries += st.Retries
}

// addRetries credits fault recoveries to a stage after its StageStat
// was recorded — retry counts are read from store counters once the
// stage closure has returned.
func (r *StageReport) addRetries(stage string, n int) {
	if r == nil || n == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.agg(stage).retries += n
}

// agg returns the stage's aggregate, creating it if needed. Callers
// hold r.mu.
func (r *StageReport) agg(stage string) *stageAgg {
	if r.bySta == nil {
		r.bySta = make(map[string]*stageAgg)
	}
	a := r.bySta[stage]
	if a == nil {
		a = &stageAgg{}
		r.bySta[stage] = a
	}
	return a
}

// StageTotal is one stage's aggregate across a run.
type StageTotal struct {
	Stage    string
	Count    int
	Duration time.Duration
	Rows     int
	Retries  int
}

// Totals returns per-stage aggregates in canonical stage order (any
// unknown stages follow, alphabetically).
func (r *StageReport) Totals() []StageTotal {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	rank := make(map[string]int, len(stageOrder))
	for i, s := range stageOrder {
		rank[s] = i
	}
	out := make([]StageTotal, 0, len(r.bySta))
	for name, a := range r.bySta {
		out = append(out, StageTotal{Stage: name, Count: a.count, Duration: a.duration, Rows: a.rows, Retries: a.retries})
	}
	sort.Slice(out, func(i, j int) bool {
		ri, iKnown := rank[out[i].Stage]
		rj, jKnown := rank[out[j].Stage]
		switch {
		case iKnown && jKnown:
			return ri < rj
		case iKnown:
			return true
		case jKnown:
			return false
		default:
			return out[i].Stage < out[j].Stage
		}
	})
	return out
}

// String renders the report as an aligned table for CLI output.
func (r *StageReport) String() string {
	totals := r.Totals()
	if len(totals) == 0 {
		return "stage report: no stages recorded\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %6s %12s %8s %12s\n", "stage", "runs", "rows", "retries", "time")
	var sum time.Duration
	for _, t := range totals {
		fmt.Fprintf(&b, "%-10s %6d %12d %8d %12s\n", t.Stage, t.Count, t.Rows, t.Retries, t.Duration.Round(time.Millisecond))
		sum += t.Duration
	}
	fmt.Fprintf(&b, "%-10s %6s %12s %8s %12s\n", "total", "", "", "", sum.Round(time.Millisecond))
	return b.String()
}

package engine

import (
	"errors"
	"math"
	"sort"
	"sync"

	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/smart"
)

// probsPool recycles per-group score buffers across groups and phases.
// A phase scores every group of every window through here, so without
// the pool each call transiently allocates rows×8 bytes that die young.
var probsPool sync.Pool

func getProbs(n int) []float64 {
	if v := probsPool.Get(); v != nil {
		if buf := v.([]float64); cap(buf) >= n {
			return buf[:n]
		}
	}
	return make([]float64, n)
}

func putProbs(buf []float64) { probsPool.Put(buf) }

// driveScore accumulates one drive's scored days within a window.
type driveScore struct {
	ref     dataset.DriveRef
	days    []int
	probs   []float64
	mwis    []float64
	group   []int // which group's model scored each day
	lastMWI float64
	lastDay int
}

// maxProbIn returns the drive's maximum probability among days scored
// by the given group, and whether it had any such day.
func (ds *driveScore) maxProbIn(g int) (float64, bool) {
	best, any := 0.0, false
	for k, gi := range ds.group {
		if gi != g {
			continue
		}
		any = true
		if ds.probs[k] > best {
			best = ds.probs[k]
		}
	}
	return best, any
}

// refIndexer is satisfied by sources that cache the drive-ID-to-ref
// map (store snapshots); other sources fall back to building it once
// per scoring pass.
type refIndexer interface {
	RefIndex(m smart.ModelID) map[int]dataset.DriveRef
}

// refIndex returns the model's drive-ID-to-ref map, served from the
// source's cache when it has one.
func refIndex(src dataset.Source, model smart.ModelID) map[int]dataset.DriveRef {
	if ri, ok := src.(refIndexer); ok {
		if m := ri.RefIndex(model); m != nil {
			return m
		}
	}
	refs := src.DrivesOf(model)
	out := make(map[int]dataset.DriveRef, len(refs))
	for _, r := range refs {
		out[r.ID] = r
	}
	return out
}

// ScoreBuf recycles the per-call working state of repeated scoring
// passes — the per-drive score accumulators, the frame column storage,
// and the outcome slice — so callers that score the fleet over and
// over (the serving daemon's bulk endpoint, the continuous-operation
// controller's daily summaries) do not re-allocate them every call.
// The zero value is ready to use. Outcomes returned by ScoreInto alias
// the buffer and are valid only until its next use; a ScoreBuf must
// not be used concurrently.
type ScoreBuf struct {
	scores   map[int]*driveScore
	free     []*driveScore
	frame    dataset.FrameBuf
	cols     [][]float64
	ids      []int
	outcomes []DriveOutcome
}

// reset clears the buffer for the next pass, recycling every
// driveScore (slices kept, lengths zeroed) through the free list.
func (b *ScoreBuf) reset() {
	if b.scores == nil {
		b.scores = make(map[int]*driveScore)
		return
	}
	for id, ds := range b.scores {
		ds.days = ds.days[:0]
		ds.probs = ds.probs[:0]
		ds.mwis = ds.mwis[:0]
		ds.group = ds.group[:0]
		b.free = append(b.free, ds)
		delete(b.scores, id)
	}
}

// get returns a cleared driveScore, recycled when one is available.
func (b *ScoreBuf) get() *driveScore {
	if n := len(b.free); n > 0 {
		ds := b.free[n-1]
		b.free = b.free[:n-1]
		*ds = driveScore{days: ds.days, probs: ds.probs, mwis: ds.mwis, group: ds.group, lastDay: -1}
		return ds
	}
	return &driveScore{lastDay: -1}
}

// scorePhase scores every drive-day of [lo, hi] with the per-group
// models and groups the probabilities by drive (days ascending). The
// second return is the total number of drive-day rows scored.
func scorePhase(src dataset.Source, model smart.ModelID, groups []group, lo, hi int, cfg Config) (map[int]*driveScore, int, error) {
	return scorePhaseInto(src, model, groups, lo, hi, cfg, nil)
}

// scorePhaseInto is scorePhase drawing its working state from buf when
// one is provided; results are bit-identical either way.
func scorePhaseInto(src dataset.Source, model smart.ModelID, groups []group, lo, hi int, cfg Config, buf *ScoreBuf) (map[int]*driveScore, int, error) {
	var out map[int]*driveScore
	var frameBuf *dataset.FrameBuf
	if buf != nil {
		buf.reset()
		out = buf.scores
		frameBuf = &buf.frame
	} else {
		out = make(map[int]*driveScore)
	}
	rows := 0
	// One ref index per pass (cached on store snapshots), not one per
	// group.
	refs := refIndex(src, model)
	for gi, g := range groups {
		fr, err := dataset.Frame(src, dataset.FrameOpts{
			Model: model, DayLo: lo, DayHi: hi, NegEvery: 1,
			Features: g.feats, Expand: true, Windows: cfg.Windows,
			MWIBelow: g.mwiBelow, MWIAtLeast: g.mwiAtLeast,
			Workers: cfg.Workers, Sanitize: cfg.sanitizeOpts(true),
			Reuse: frameBuf,
		})
		if errors.Is(err, dataset.ErrNoSamples) {
			continue
		}
		if err != nil {
			return nil, rows, err
		}
		var cols [][]float64
		if buf != nil {
			cols = buf.cols[:0]
			for i := 0; i < fr.NumFeatures(); i++ {
				cols = append(cols, fr.Col(i))
			}
			buf.cols = cols[:0]
		} else {
			cols = make([][]float64, fr.NumFeatures())
			for i := range cols {
				cols[i] = fr.Col(i)
			}
		}
		probs := getProbs(fr.NumRows())
		if err := g.model.predictInto(cols, probs); err != nil {
			putProbs(probs)
			return nil, rows, err
		}
		rows += fr.NumRows()
		for i := 0; i < fr.NumRows(); i++ {
			m := fr.Meta(i)
			ds, ok := out[m.DriveID]
			if !ok {
				if buf != nil {
					ds = buf.get()
				} else {
					ds = &driveScore{lastDay: -1}
				}
				ds.ref = refs[m.DriveID]
				out[m.DriveID] = ds
			}
			ds.days = append(ds.days, m.Day)
			ds.probs = append(ds.probs, probs[i])
			ds.mwis = append(ds.mwis, m.MWI)
			ds.group = append(ds.group, gi)
			if m.Day > ds.lastDay {
				ds.lastDay = m.Day
				ds.lastMWI = m.MWI
			}
		}
		putProbs(probs)
	}
	// Within-drive days arrive ascending per group but groups can
	// interleave (a drive can cross the MWI threshold mid-phase).
	for _, ds := range out {
		sortDriveScore(ds)
	}
	return out, rows, nil
}

// sortDriveScore orders a drive's scored days ascending, in place. The
// rows are a merge of at most numGroups already-ascending runs — and
// within a drive each day is scored by exactly one group, so days are
// unique — which makes insertion sort nearly linear here and, unlike
// an index sort, allocation-free.
func sortDriveScore(ds *driveScore) {
	for i := 1; i < len(ds.days); i++ {
		for j := i; j > 0 && ds.days[j] < ds.days[j-1]; j-- {
			ds.days[j], ds.days[j-1] = ds.days[j-1], ds.days[j]
			ds.probs[j], ds.probs[j-1] = ds.probs[j-1], ds.probs[j]
			ds.mwis[j], ds.mwis[j-1] = ds.mwis[j-1], ds.mwis[j]
			ds.group[j], ds.group[j-1] = ds.group[j-1], ds.group[j]
		}
	}
}

// minGroupCalibration is the minimum number of failing validation
// drives a group needs for its own threshold; below it the group
// inherits the pooled threshold.
const minGroupCalibration = 3

// calibrateThresholds picks one alarm threshold per group: the largest
// threshold whose drive-level recall on that group's validation
// outcomes is at least targetRecall. Wear groups train on populations
// with very different base rates, so their forests' probability scales
// differ; a shared threshold would flood the denser group with false
// alarms. Groups with too few failing validation drives inherit the
// pooled threshold (0.5 when no failing drives exist at all).
func calibrateThresholds(scores map[int]*driveScore, numGroups int, targetRecall float64) []float64 {
	pick := func(failingMax []float64) (float64, bool) {
		if len(failingMax) == 0 {
			return 0.5, false
		}
		// Recall at threshold t = fraction of failing drives with max
		// prob >= t. Covering the top `need` drives requires the
		// ceiling: flooring would cover one drive too few and land
		// strictly below the target (1 of 4 drives is recall 0.25,
		// not 0.3).
		sort.Sort(sort.Reverse(sort.Float64Slice(failingMax)))
		need := int(math.Ceil(float64(len(failingMax)) * targetRecall))
		if need < 1 {
			need = 1
		}
		if need > len(failingMax) {
			need = len(failingMax)
		}
		t := failingMax[need-1]
		// Any threshold in (failingMax[need], failingMax[need-1]]
		// meets the target on validation; the interval midpoint
		// maximizes the margin in both directions instead of sitting
		// exactly on one validation drive's score, which generalizes
		// to unseen drives scoring slightly lower.
		if need < len(failingMax) && failingMax[need] < t {
			t = (t + failingMax[need]) / 2
		}
		if t <= 0 {
			t = 0.05
		}
		return t, len(failingMax) >= minGroupCalibration
	}

	var pooled []float64
	perGroup := make([][]float64, numGroups)
	for _, ds := range scores {
		if !ds.ref.Failed() || ds.ref.FailDay < ds.days[0] {
			continue
		}
		var best float64
		for _, p := range ds.probs {
			if p > best {
				best = p
			}
		}
		pooled = append(pooled, best)
		for g := 0; g < numGroups; g++ {
			if m, ok := ds.maxProbIn(g); ok {
				perGroup[g] = append(perGroup[g], m)
			}
		}
	}
	pooledT, _ := pick(pooled)
	out := make([]float64, numGroups)
	for g := 0; g < numGroups; g++ {
		if t, enough := pick(perGroup[g]); enough {
			out[g] = t
		} else {
			out[g] = pooledT
		}
	}
	return out
}

// finalizeOutcomes converts scored drives into drive-level outcomes,
// alarming on the first day whose probability clears its group's
// threshold. Failures more than PredictionWindow days past the phase
// end belong to later phases and are treated as healthy here.
func finalizeOutcomes(scores map[int]*driveScore, thresholds []float64, testHi int) []DriveOutcome {
	return finalizeOutcomesInto(scores, thresholds, testHi, nil)
}

// finalizeOutcomesInto is finalizeOutcomes appending into buf's
// recycled slices when a buffer is provided; the returned outcomes
// then alias the buffer and are valid only until its next use.
func finalizeOutcomesInto(scores map[int]*driveScore, thresholds []float64, testHi int, buf *ScoreBuf) []DriveOutcome {
	var ids []int
	var out []DriveOutcome
	if buf != nil {
		ids = buf.ids[:0]
		out = buf.outcomes[:0]
	} else {
		ids = make([]int, 0, len(scores))
		out = make([]DriveOutcome, 0, len(scores))
	}
	for id := range scores {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		ds := scores[id]
		first := -1
		mwi := ds.lastMWI
		maxProb := 0.0
		for k, p := range ds.probs {
			if p > maxProb {
				maxProb = p
			}
			if first < 0 && p >= thresholds[ds.group[k]] {
				first = ds.days[k]
				mwi = ds.mwis[k]
			}
		}
		failDay := ds.ref.FailDay
		if failDay > testHi+dataset.PredictionWindow {
			failDay = -1
		}
		out = append(out, DriveOutcome{
			Pred:    metrics.DrivePrediction{DriveID: id, FirstAlarmDay: first, FailDay: failDay},
			MWI:     mwi,
			MaxProb: maxProb,
		})
	}
	if buf != nil {
		buf.ids = ids[:0]
		buf.outcomes = out
	}
	return out
}

package engine

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/featgen"
	"repro/internal/smart"
)

// This file is the Scorer surface the serving daemon builds on: a
// pooled-scratch scoring pass (ScoreInto) plus read-only accessors for
// the snapshot's group structure, so a server can route a drive to its
// wear group, assemble that group's model-input columns itself, and
// push micro-batches straight through the group's compiled model.

// ScoreInto scores days [lo, hi] exactly like Score but draws all of
// its working state — per-drive accumulators, frame column storage,
// the outcome slice — from buf, so repeated passes (a serving daemon's
// fleet endpoint, the controller's daily summaries) allocate nothing
// proportional to the fleet after the first call. The returned
// outcomes alias buf and are valid only until its next use; results
// are bit-identical to Score.
func (s *Scorer) ScoreInto(src dataset.Source, lo, hi int, buf *ScoreBuf) ([]DriveOutcome, error) {
	if buf == nil {
		return s.Score(src, lo, hi)
	}
	if lo < 0 || hi < lo {
		return nil, fmt.Errorf("pipeline: bad scoring window [%d, %d]", lo, hi)
	}
	scores, _, err := scorePhaseInto(src, s.snap.Model, s.groups, lo, hi, s.cfg, buf)
	if err != nil {
		return nil, fmt.Errorf("pipeline: snapshot scoring: %w", err)
	}
	return finalizeOutcomesInto(scores, s.snap.Thresholds, hi, buf), nil
}

// NumGroups returns the number of trained wear groups.
func (s *Scorer) NumGroups() int { return len(s.groups) }

// GroupFeatures returns a copy of group g's selected original features
// in model-input order. The model's input columns are these features
// followed by each feature's generated window statistics (featgen
// order): [f0..fk, f0.stats(w0)..f0.stats(wn), f1.stats(w0)..].
func (s *Scorer) GroupFeatures(g int) []smart.Feature {
	return append([]smart.Feature(nil), s.groups[g].feats...)
}

// GroupMWIBounds returns group g's wear filter (0 = unbounded on that
// side), with the same semantics the engine applies when routing
// drive-days: a day belongs to the group when (below == 0 or
// mwi < below) and (atLeast == 0 or mwi >= atLeast). A NaN wear index
// fails every >= comparison, so it lands in the low-wear group only.
func (s *Scorer) GroupMWIBounds(g int) (below, atLeast float64) {
	return s.groups[g].mwiBelow, s.groups[g].mwiAtLeast
}

// GroupThreshold returns group g's calibrated alarm threshold.
func (s *Scorer) GroupThreshold(g int) float64 { return s.snap.Thresholds[g] }

// PickGroup returns the index of the wear group that scores a day with
// the given wear index, or -1 when no group admits it. The comparison
// logic mirrors the engine's frame-extraction routing bit for bit,
// including the NaN behavior documented on GroupMWIBounds.
func (s *Scorer) PickGroup(mwi float64) int {
	for g := range s.groups {
		gr := &s.groups[g]
		if gr.mwiBelow > 0 && mwi >= gr.mwiBelow {
			continue
		}
		if gr.mwiAtLeast > 0 && !(mwi >= gr.mwiAtLeast) {
			continue
		}
		return g
	}
	return -1
}

// GroupInputWidth returns the number of model-input columns group g
// expects: the selected features plus their generated window
// statistics.
func (s *Scorer) GroupInputWidth(g int) int {
	n := len(s.groups[g].feats)
	return n + n*featgen.NumGenerated(s.Windows())
}

// ScoreBatch scores a pre-assembled batch through group g's trained
// model: cols must hold GroupInputWidth(g) equal-length model-input
// columns, and out must have that common length. Probabilities are
// row-local — batch composition does not affect them — so a
// micro-batched server produces bit-identical probabilities to
// one-at-a-time scoring.
func (s *Scorer) ScoreBatch(g int, cols [][]float64, out []float64) error {
	if g < 0 || g >= len(s.groups) {
		return fmt.Errorf("pipeline: group %d out of range [0, %d)", g, len(s.groups))
	}
	if want := s.GroupInputWidth(g); len(cols) != want {
		return fmt.Errorf("pipeline: group %d expects %d input columns, got %d", g, want, len(cols))
	}
	for i := range cols {
		if len(cols[i]) != len(out) {
			return fmt.Errorf("pipeline: column %d has %d rows, want %d", i, len(cols[i]), len(out))
		}
	}
	return s.groups[g].model.predictInto(cols, out)
}

// Windows returns the feature-generation windows scoring must use,
// with the dataset defaults applied when the snapshot recorded none.
func (s *Scorer) Windows() []int {
	if len(s.cfg.Windows) > 0 {
		return s.cfg.Windows
	}
	return featgen.DefaultWindows
}

// MaxWindow returns the largest feature-generation window — the
// series history a caller must supply before the scored day for
// generated statistics to match the engine's bit for bit.
func (s *Scorer) MaxWindow() int {
	max := 0
	for _, w := range s.Windows() {
		if w > max {
			max = w
		}
	}
	return max
}

// MWIFeature is the normalized media-wearout-indicator column the
// engine reads the routing wear index from.
var MWIFeature = smart.Feature{Attr: smart.MWI, Kind: smart.Normalized}

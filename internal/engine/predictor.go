package engine

import (
	"errors"
	"fmt"

	"repro/internal/flat"
	"repro/internal/forest"
	"repro/internal/frame"
	"repro/internal/gbdt"
)

// Predictor selects the prediction-model family the engine trains on
// the selected features. The paper uses Random Forest (as do the prior
// studies it follows); the gradient-boosted alternative is provided as
// an extension and exercised by the ablation benchmarks.
type Predictor int

// Prediction model families.
const (
	// PredictorForest trains the paper's Random Forest (default).
	PredictorForest Predictor = iota + 1
	// PredictorGBDT trains the XGBoost-style boosted trees instead.
	PredictorGBDT
)

// String names the predictor for reports.
func (p Predictor) String() string {
	switch p {
	case PredictorForest:
		return "random-forest"
	case PredictorGBDT:
		return "gbdt"
	default:
		return fmt.Sprintf("Predictor(%d)", int(p))
	}
}

// ErrUnknownPredictor indicates an unsupported Predictor value.
var ErrUnknownPredictor = errors.New("pipeline: unknown predictor")

// probModel scores batches of samples with positive-class
// probabilities. Both model families satisfy it through the adapters
// below, each preferring its compiled flat form (bit-identical to the
// pointer walker) when the model compiled.
type probModel interface {
	// predictInto scores the column-major batch into out, whose length
	// must equal the row count.
	predictInto(cols [][]float64, out []float64) error
	// marshal serializes the trained model for a ModelSnapshot,
	// returning the family that unmarshal dispatches on, the exact
	// model payload, and the compiled flat payload (nil when the model
	// did not compile).
	marshal() (family Predictor, data, flatData []byte, err error)
}

// forestModel adapts *forest.Forest to probModel.
type forestModel struct {
	f  *forest.Forest
	fl *flat.Forest
}

func (m forestModel) predictInto(cols [][]float64, out []float64) error {
	if m.fl != nil {
		return m.fl.PredictProbaBatch(cols, out)
	}
	return m.f.PredictProbaBatch(cols, out)
}

func (m forestModel) marshal() (Predictor, []byte, []byte, error) {
	data, err := m.f.MarshalBinary()
	if err != nil {
		return PredictorForest, nil, nil, err
	}
	var fd []byte
	if m.fl != nil {
		if fd, err = m.fl.MarshalBinary(); err != nil {
			return PredictorForest, nil, nil, err
		}
	}
	return PredictorForest, data, fd, nil
}

// gbdtModel adapts *gbdt.Model to probModel.
type gbdtModel struct {
	m  *gbdt.Model
	fl *flat.Model
}

func (g gbdtModel) predictInto(cols [][]float64, out []float64) error {
	if g.fl != nil {
		return g.fl.PredictProbaBatch(cols, out)
	}
	return g.m.PredictProbaBatch(cols, out)
}

func (g gbdtModel) marshal() (Predictor, []byte, []byte, error) {
	data, err := g.m.MarshalBinary()
	if err != nil {
		return PredictorGBDT, nil, nil, err
	}
	var fd []byte
	if g.fl != nil {
		if fd, err = g.fl.MarshalBinary(); err != nil {
			return PredictorGBDT, nil, nil, err
		}
	}
	return PredictorGBDT, data, fd, nil
}

// compiledForest compiles the forest's flat form, or returns nil when
// it is not compilable (a feature with more than 254 distinct cuts);
// the pointer walker then keeps serving, so compilation never fails a
// training run.
func compiledForest(f *forest.Forest, workers int) *flat.Forest {
	fl, err := flat.CompileForest(f)
	if err != nil {
		return nil
	}
	fl.Workers = workers
	return fl
}

// compiledGBDT is compiledForest for boosted models.
func compiledGBDT(m *gbdt.Model, workers int) *flat.Model {
	fl, err := flat.CompileModel(m)
	if err != nil {
		return nil
	}
	fl.Workers = workers
	return fl
}

// unmarshalModel reconstructs a probModel from its snapshot bytes. A
// snapshot carrying a compiled flat payload is used as-is (no
// recompilation); older snapshots without one are compiled on load.
func unmarshalModel(family Predictor, data, flatData []byte, workers int) (probModel, error) {
	switch family {
	case PredictorForest:
		f, err := forest.UnmarshalForest(data)
		if err != nil {
			return nil, err
		}
		var fl *flat.Forest
		if len(flatData) > 0 {
			if fl, err = flat.UnmarshalForest(flatData); err != nil {
				return nil, err
			}
			fl.Workers = workers
		} else {
			fl = compiledForest(f, workers)
		}
		return forestModel{f: f, fl: fl}, nil
	case PredictorGBDT:
		m, err := gbdt.UnmarshalModel(data)
		if err != nil {
			return nil, err
		}
		var fl *flat.Model
		if len(flatData) > 0 {
			if fl, err = flat.UnmarshalModel(flatData); err != nil {
				return nil, err
			}
			fl.Workers = workers
		} else {
			fl = compiledGBDT(m, workers)
		}
		return gbdtModel{m: m, fl: fl}, nil
	default:
		return nil, fmt.Errorf("%w: %v", ErrUnknownPredictor, family)
	}
}

// fitModel trains the configured prediction model on an expanded frame
// and compiles it for flat scoring.
func fitModel(fr *frame.Frame, cfg Config) (probModel, error) {
	cols := make([][]float64, fr.NumFeatures())
	for i := range cols {
		cols[i] = fr.Col(i)
	}
	switch cfg.predictor() {
	case PredictorForest:
		f, err := forest.Fit(cols, fr.Labels(), cfg.Forest)
		if err != nil {
			return nil, err
		}
		return forestModel{f: f, fl: compiledForest(f, cfg.Workers)}, nil
	case PredictorGBDT:
		g := cfg.GBDT
		if g.NumRounds == 0 {
			d := gbdt.DefaultConfig()
			d.SplitMethod = g.SplitMethod
			d.MaxBins = g.MaxBins
			g = d
		}
		m, err := gbdt.Fit(cols, fr.Labels(), g)
		if err != nil {
			return nil, err
		}
		return gbdtModel{m: m, fl: compiledGBDT(m, cfg.Workers)}, nil
	default:
		return nil, fmt.Errorf("%w: %v", ErrUnknownPredictor, cfg.Predictor)
	}
}

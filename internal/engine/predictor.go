package engine

import (
	"errors"
	"fmt"

	"repro/internal/forest"
	"repro/internal/frame"
	"repro/internal/gbdt"
)

// Predictor selects the prediction-model family the engine trains on
// the selected features. The paper uses Random Forest (as do the prior
// studies it follows); the gradient-boosted alternative is provided as
// an extension and exercised by the ablation benchmarks.
type Predictor int

// Prediction model families.
const (
	// PredictorForest trains the paper's Random Forest (default).
	PredictorForest Predictor = iota + 1
	// PredictorGBDT trains the XGBoost-style boosted trees instead.
	PredictorGBDT
)

// String names the predictor for reports.
func (p Predictor) String() string {
	switch p {
	case PredictorForest:
		return "random-forest"
	case PredictorGBDT:
		return "gbdt"
	default:
		return fmt.Sprintf("Predictor(%d)", int(p))
	}
}

// ErrUnknownPredictor indicates an unsupported Predictor value.
var ErrUnknownPredictor = errors.New("pipeline: unknown predictor")

// probModel scores batches of samples with positive-class
// probabilities. Both model families satisfy it through the adapters
// below.
type probModel interface {
	predictAll(cols [][]float64) ([]float64, error)
	// marshal serializes the trained model for a ModelSnapshot,
	// returning the family that unmarshal dispatches on.
	marshal() (family Predictor, data []byte, err error)
}

// forestModel adapts *forest.Forest to probModel.
type forestModel struct{ f *forest.Forest }

func (m forestModel) predictAll(cols [][]float64) ([]float64, error) {
	return m.f.PredictProbaAll(cols)
}

func (m forestModel) marshal() (Predictor, []byte, error) {
	data, err := m.f.MarshalBinary()
	return PredictorForest, data, err
}

// gbdtModel adapts *gbdt.Model to probModel.
type gbdtModel struct{ m *gbdt.Model }

func (g gbdtModel) predictAll(cols [][]float64) ([]float64, error) {
	if len(cols) != g.m.NumFeatures() {
		return nil, fmt.Errorf("pipeline: gbdt got %d columns, fitted with %d", len(cols), g.m.NumFeatures())
	}
	if len(cols) == 0 {
		return nil, errors.New("pipeline: gbdt predict with no columns")
	}
	out := make([]float64, len(cols[0]))
	g.m.PredictProbaBatch(cols, out)
	return out, nil
}

func (g gbdtModel) marshal() (Predictor, []byte, error) {
	data, err := g.m.MarshalBinary()
	return PredictorGBDT, data, err
}

// unmarshalModel reconstructs a probModel from its snapshot bytes.
func unmarshalModel(family Predictor, data []byte) (probModel, error) {
	switch family {
	case PredictorForest:
		f, err := forest.UnmarshalForest(data)
		if err != nil {
			return nil, err
		}
		return forestModel{f: f}, nil
	case PredictorGBDT:
		m, err := gbdt.UnmarshalModel(data)
		if err != nil {
			return nil, err
		}
		return gbdtModel{m: m}, nil
	default:
		return nil, fmt.Errorf("%w: %v", ErrUnknownPredictor, family)
	}
}

// fitModel trains the configured prediction model on an expanded frame.
func fitModel(fr *frame.Frame, cfg Config) (probModel, error) {
	cols := make([][]float64, fr.NumFeatures())
	for i := range cols {
		cols[i] = fr.Col(i)
	}
	switch cfg.predictor() {
	case PredictorForest:
		f, err := forest.Fit(cols, fr.Labels(), cfg.Forest)
		if err != nil {
			return nil, err
		}
		return forestModel{f: f}, nil
	case PredictorGBDT:
		g := cfg.GBDT
		if g.NumRounds == 0 {
			d := gbdt.DefaultConfig()
			d.SplitMethod = g.SplitMethod
			d.MaxBins = g.MaxBins
			g = d
		}
		m, err := gbdt.Fit(cols, fr.Labels(), g)
		if err != nil {
			return nil, err
		}
		return gbdtModel{m: m}, nil
	default:
		return nil, fmt.Errorf("%w: %v", ErrUnknownPredictor, cfg.Predictor)
	}
}

package engine

import (
	"repro/internal/frame"
	"repro/internal/survival"
)

// GroupFeatures is a wear-split feature assignment: drives below the
// MWI threshold use Low, the rest High.
type GroupFeatures struct {
	ThresholdMWI float64
	Low, High    []string
}

// SelectorResult is a selection strategy's output: the feature set for
// all drives, and optionally a wear-out split.
type SelectorResult struct {
	// All is the selected original-feature list (used for every drive
	// when Split is nil, and as a fallback).
	All []string
	// Split, when non-nil, assigns per-wear-group feature sets.
	Split *GroupFeatures
	// Dropped lists preliminary approaches discarded for failure in
	// robust mode, each as "<ranker>: <reason>". Empty on clean runs.
	Dropped []string
	// Notes lists degradation decisions taken during selection.
	Notes []string
}

// Selector abstracts a feature-selection strategy so Exp#1 can compare
// WEFR against no-selection and the five single-approach baselines
// under one engine. The concrete strategies live in internal/pipeline.
type Selector interface {
	// Name identifies the strategy in result tables.
	Name() string
	// Select chooses features from a training frame of original
	// features. The survival curve (computed from training data only)
	// is provided for wear-aware strategies; others ignore it.
	Select(fr *frame.Frame, curve survival.Curve) (SelectorResult, error)
}

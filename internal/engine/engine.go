// Package engine is the staged implementation of the offline SSD
// failure-prediction workflow (Section V-A of the WEFR paper). It
// re-expresses the former pipeline monolith as composable stages —
//
//	Ingest → Featurize → Select → Train → Calibrate → Score → Evaluate
//
// — running over the append-only fleet store of internal/store: each
// phase ingests only the days not yet in the store, builds its frames
// from an immutable Snapshot view, and reports per-stage timing and
// row counts. The trained artifact of a phase (feature selection,
// per-group models, calibrated thresholds, config hash) is capturable
// as a versioned, JSON-serializable ModelSnapshot that scores new days
// without retraining.
//
// internal/pipeline re-exports this package's API unchanged; existing
// callers keep compiling and the clean path stays bit-identical to the
// pre-engine pipeline.
package engine

import (
	"errors"
	"fmt"

	"repro/internal/dataset"
	"repro/internal/faults"
	"repro/internal/forest"
	"repro/internal/frame"
	"repro/internal/gbdt"
	"repro/internal/hist"
	"repro/internal/metrics"
	"repro/internal/smart"
	"repro/internal/store"
	"repro/internal/survival"
)

// Crash points for the process-level fault harness (internal/faults):
// inert unless armed via WEFR_CRASHPOINT, each marks the instant just
// after a stage whose work the journal must make recoverable.
var (
	crashAfterIngest    = faults.RegisterCrashSite("ingest")
	crashAfterTrain     = faults.RegisterCrashSite("train")
	crashAfterCalibrate = faults.RegisterCrashSite("calibrate")
	crashAfterSave      = faults.RegisterCrashSite("snapshot-save")
)

// Errors returned by the engine.
var (
	// ErrBadPhase indicates an invalid phase layout.
	ErrBadPhase = errors.New("pipeline: bad phase")
	// ErrNoTrainingSignal indicates a training period without both
	// classes.
	ErrNoTrainingSignal = errors.New("pipeline: no positive samples in training period")
)

// Config parameterizes the prediction engine. The zero value uses the
// paper's settings via withDefaults.
type Config struct {
	// Forest configures the prediction model; zero NumTrees means the
	// paper's 100 trees with maximum depth 13.
	Forest forest.Config
	// NegEvery is the negative-sample day stride in training and
	// validation frames; 0 means 7.
	NegEvery int
	// TargetRecall is the drive-level recall the alarm threshold is
	// calibrated to on the validation period, making methods
	// comparable at fixed recall as in Table VI; 0 means 0.3.
	TargetRecall float64
	// ValFraction is the fraction of the training period reserved for
	// validation (the paper's 8:2 split); 0 means 0.2.
	ValFraction float64
	// Windows are the feature-generation windows; nil means 3 and 7
	// days.
	Windows []int
	// Predictor selects the prediction-model family; 0 means the
	// paper's Random Forest.
	Predictor Predictor
	// GBDT configures the boosted-tree predictor when Predictor is
	// PredictorGBDT; zero NumRounds means gbdt.DefaultConfig.
	GBDT gbdt.Config
	// SplitMethod selects the tree learners' split search: exact
	// presorted (the zero value, bit-identical to earlier releases) or
	// histogram-binned (see internal/hist). Applied to the Forest and
	// GBDT configs unless they set their own.
	SplitMethod hist.SplitMethod
	// MaxBins caps per-feature histogram bins on the hist path; 0
	// means hist.DefaultMaxBins.
	MaxBins int
	// Workers bounds the engine's parallelism — store ingest, frame
	// extraction across drives, forest fitting, and batch scoring; 0
	// means GOMAXPROCS. Results are bit-identical for any value (set 1
	// to force serial execution). An explicit Forest.Workers takes
	// precedence for the forest itself.
	Workers int
	// Seed drives the prediction model's randomness.
	Seed int64
	// Robust, when non-nil, hardens the run against dirty data (see
	// RobustOpts). Nil reproduces the legacy pipeline exactly.
	Robust *RobustOpts
	// Stages, when non-nil, accumulates per-stage timing and row
	// counts across every phase the engine runs with this config. Per
	// -phase stats are also attached to each PhaseResult.
	Stages *StageReport
}

func (c Config) predictor() Predictor {
	if c.Predictor == 0 {
		return PredictorForest
	}
	return c.Predictor
}

func (c Config) withDefaults() Config {
	if c.Forest.NumTrees == 0 {
		c.Forest = forest.DefaultConfig()
	}
	if c.Forest.Seed == 0 {
		c.Forest.Seed = c.Seed + 7919
	}
	if c.Forest.Workers == 0 {
		c.Forest.Workers = c.Workers
	}
	if c.Forest.SplitMethod == hist.SplitExact {
		c.Forest.SplitMethod = c.SplitMethod
	}
	if c.Forest.MaxBins == 0 {
		c.Forest.MaxBins = c.MaxBins
	}
	if c.GBDT.SplitMethod == hist.SplitExact {
		c.GBDT.SplitMethod = c.SplitMethod
	}
	if c.GBDT.MaxBins == 0 {
		c.GBDT.MaxBins = c.MaxBins
	}
	if c.NegEvery <= 0 {
		c.NegEvery = 7
	}
	if c.TargetRecall <= 0 {
		c.TargetRecall = 0.3
	}
	if c.ValFraction <= 0 || c.ValFraction >= 1 {
		c.ValFraction = 0.2
	}
	return c
}

// Phase is one train/test layout: the model trains on [TrainLo,
// TrainHi] (the tail of which is the validation period) and predicts
// daily over [TestLo, TestHi].
type Phase struct {
	TrainLo, TrainHi int
	TestLo, TestHi   int
}

func (p Phase) validate(days int) error {
	if p.TrainLo < 0 || p.TrainHi >= days || p.TrainLo >= p.TrainHi {
		return fmt.Errorf("%w: train [%d, %d] in %d days", ErrBadPhase, p.TrainLo, p.TrainHi, days)
	}
	if p.TestLo <= p.TrainHi || p.TestHi >= days || p.TestLo > p.TestHi {
		return fmt.Errorf("%w: test [%d, %d] after train end %d in %d days", ErrBadPhase, p.TestLo, p.TestHi, p.TrainHi, days)
	}
	return nil
}

// StandardPhases returns the paper's evaluation layout: the last three
// 30-day months are three non-overlapping testing phases, each trained
// on all preceding days.
func StandardPhases(days int) []Phase {
	const month = 30
	var out []Phase
	for k := 3; k >= 1; k-- {
		testLo := days - k*month
		testHi := testLo + month - 1
		out = append(out, Phase{
			TrainLo: 0, TrainHi: testLo - 1,
			TestLo: testLo, TestHi: testHi,
		})
	}
	return out
}

// DriveOutcome is one drive's result in a testing phase, extended with
// the wear level used for per-group reporting (Exp#3).
type DriveOutcome struct {
	// Pred is the drive-level prediction record.
	Pred metrics.DrivePrediction
	// MWI is the drive's MWI_N at its first alarm, or at its last
	// observed test day when no alarm fired.
	MWI float64
	// MaxProb is the drive's highest predicted failure probability in
	// the phase, for threshold-free analyses (ROC/AUC).
	MaxProb float64
}

// PhaseResult is the evaluation of one selector on one phase.
type PhaseResult struct {
	// Selector is the strategy name.
	Selector string
	// Model is the drive model evaluated.
	Model smart.ModelID
	// Selection records the chosen features.
	Selection SelectorResult
	// Thresholds are the calibrated per-group alarm thresholds (one
	// entry when there is no wear split).
	Thresholds []float64
	// Outcomes holds one entry per drive observed in the test phase.
	Outcomes []DriveOutcome
	// Confusion is the drive-level confusion over Outcomes.
	Confusion metrics.Confusion
	// StageStats reports per-stage timing and row counts for the run
	// that produced this result, in execution order.
	StageStats []StageStat

	// Retained for Snapshot: the trained groups, the config that
	// trained them, and the last training day.
	groups  []group
	cfg     Config
	trainHi int
}

// group is an internal training/scoring unit: a feature set plus an
// optional MWI filter.
type group struct {
	feats      []smart.Feature
	names      []string
	mwiBelow   float64
	mwiAtLeast float64
	model      probModel
}

// Engine runs phases over one append-only fleet store. Create with
// New; the zero value is unusable. Successive phases on the same
// engine reuse every already-ingested day (see store.Counters).
type Engine struct {
	st  *store.Store
	cfg Config
}

// New builds an engine over the given source. When src is already a
// store.Snapshot, its owning store is reused — including all ingested
// data — instead of being re-wrapped; any other source is wrapped in a
// fresh empty store.
func New(src dataset.Source, cfg Config) *Engine {
	cfg = cfg.withDefaults()
	var st *store.Store
	if snap, ok := src.(*store.Snapshot); ok {
		st = snap.Store()
	} else {
		st = store.Open(src, store.Options{Workers: cfg.Workers})
	}
	return &Engine{st: st, cfg: cfg}
}

// Store exposes the engine's fleet store (for ingest-counter
// assertions and snapshot access).
func (e *Engine) Store() *store.Store { return e.st }

// PhaseData is the selector-independent state of one (model, phase)
// evaluation: the selection frame, the survival curve as of the end of
// training, and the fit/validation day spans. Preparing it once and
// evaluating many selectors against it (Exp#1's percentage sweeps)
// avoids rebuilding the frame and curve per selector.
type PhaseData struct {
	// SelFrame is the original-feature training frame selectors rank.
	SelFrame *frame.Frame
	// Curve is the survival curve computed from training data only.
	Curve survival.Curve

	src   dataset.Source
	model smart.ModelID
	ph    Phase
	cfg   Config
	fitHi int
	valLo int
	prep  []StageStat // Ingest + Featurize stats, copied into results
}

// PreparePhase builds the selector-independent phase state: the
// Ingest stage (advance the store horizon through the phase's test
// end, reusing already-ingested days) and the Featurize stage (the
// selection frame and the as-of-training survival curve).
func (e *Engine) PreparePhase(model smart.ModelID, ph Phase) (*PhaseData, error) {
	cfg := e.cfg
	if err := ph.validate(e.st.SourceDays()); err != nil {
		return nil, err
	}
	trainLen := ph.TrainHi - ph.TrainLo + 1
	valLen := int(float64(trainLen) * cfg.ValFraction)
	if valLen < dataset.PredictionWindow {
		valLen = min(dataset.PredictionWindow, trainLen/2)
	}
	valLo := ph.TrainHi - valLen + 1
	fitHi := valLo - 1

	pd := &PhaseData{model: model, ph: ph, cfg: cfg, fitHi: fitHi, valLo: valLo}

	before := e.st.Counters()
	err := timeStage(cfg, &pd.prep, StageIngest, func() (int, error) {
		if err := e.st.Track(model); err != nil {
			return 0, fmt.Errorf("pipeline: ingest: %w", err)
		}
		if err := e.st.AppendThrough(ph.TestHi); err != nil {
			return 0, fmt.Errorf("pipeline: ingest: %w", err)
		}
		pd.src = e.st.Snapshot()
		return int(e.st.Counters().DaysIngested - before.DaysIngested), nil
	})
	if err != nil {
		return nil, err
	}
	if n := int(e.st.Counters().FetchRetries - before.FetchRetries); n > 0 {
		pd.prep[len(pd.prep)-1].Retries = n
		cfg.Stages.addRetries(StageIngest, n)
	}
	faults.CrashPoint(crashAfterIngest)

	err = timeStage(cfg, &pd.prep, StageFeaturize, func() (int, error) {
		selFrame, err := dataset.Frame(pd.src, dataset.FrameOpts{
			Model: model, DayLo: ph.TrainLo, DayHi: fitHi, NegEvery: cfg.NegEvery,
			Workers: cfg.Workers, Sanitize: cfg.sanitizeOpts(false),
		})
		if err != nil {
			return 0, fmt.Errorf("pipeline: selection frame: %w", err)
		}
		if selFrame.Positives() == 0 {
			return 0, ErrNoTrainingSignal
		}
		curve, err := survival.ComputeAsOf(pd.src, model, 0, ph.TrainHi)
		if err != nil {
			return 0, fmt.Errorf("pipeline: survival curve: %w", err)
		}
		pd.SelFrame = selFrame
		pd.Curve = curve
		return selFrame.NumRows(), nil
	})
	if err != nil {
		return nil, err
	}
	return pd, nil
}

// PreparePhase builds the selector-independent phase state over a
// one-off engine for src.
func PreparePhase(src dataset.Source, model smart.ModelID, ph Phase, cfg Config) (*PhaseData, error) {
	return New(src, cfg).PreparePhase(model, ph)
}

// RunSelector selects features with sel (the Select stage) and
// evaluates them.
func (pd *PhaseData) RunSelector(sel Selector) (PhaseResult, error) {
	stats := append([]StageStat(nil), pd.prep...)
	var selRes SelectorResult
	err := timeStage(pd.cfg, &stats, StageSelect, func() (int, error) {
		var err error
		selRes, err = sel.Select(pd.SelFrame, pd.Curve)
		return len(selRes.All), err
	})
	if err != nil {
		return PhaseResult{}, err
	}
	if rep := pd.cfg.report(); rep != nil {
		ctx := fmt.Sprintf("model %v test [%d, %d]", pd.model, pd.ph.TestLo, pd.ph.TestHi)
		for _, entry := range selRes.Dropped {
			rep.NoteRankerDropped(ctx, entry)
		}
		for _, note := range selRes.Notes {
			rep.NoteFallback(ctx + ": " + note)
		}
	}
	return pd.runSelection(sel.Name(), selRes, stats)
}

// RunSelection trains per-wear-group models for an already-chosen
// feature assignment, calibrates the alarm threshold on the validation
// period, and evaluates drive-level first alarms on the test phase.
func (pd *PhaseData) RunSelection(name string, selRes SelectorResult) (PhaseResult, error) {
	return pd.runSelection(name, selRes, append([]StageStat(nil), pd.prep...))
}

// runSelection is the Train → Calibrate → Score → Evaluate stage
// sequence.
func (pd *PhaseData) runSelection(name string, selRes SelectorResult, stats []StageStat) (PhaseResult, error) {
	src, model, ph, cfg := pd.src, pd.model, pd.ph, pd.cfg
	groups, err := buildGroups(selRes)
	if err != nil {
		return PhaseResult{}, err
	}

	// Train a model per group on the fit period; groups without
	// signal fall back to the all-drives feature set and population.
	err = timeStage(cfg, &stats, StageTrain, func() (int, error) {
		rows := 0
		for gi := range groups {
			g := &groups[gi]
			// Wear groups are subsets with inherently higher positive
			// density; denser negative sampling keeps the class ratio
			// (and with it the forest's probability scale) closer to
			// the full population's.
			groupNegEvery := cfg.NegEvery
			if len(groups) > 1 {
				groupNegEvery = max(1, cfg.NegEvery/5)
			}
			trainFr, err := dataset.Frame(src, dataset.FrameOpts{
				Model: model, DayLo: ph.TrainLo, DayHi: pd.fitHi,
				NegEvery: groupNegEvery, Features: g.feats, Expand: true,
				Windows: cfg.Windows, MWIBelow: g.mwiBelow, MWIAtLeast: g.mwiAtLeast,
				Workers: cfg.Workers, Sanitize: cfg.sanitizeOpts(true),
			})
			if err != nil && !errors.Is(err, dataset.ErrNoSamples) {
				return rows, fmt.Errorf("pipeline: training frame: %w", err)
			}
			if err != nil || trainFr.Positives() == 0 {
				// Degenerate group: train on the whole population with
				// the group's features instead.
				trainFr, err = dataset.Frame(src, dataset.FrameOpts{
					Model: model, DayLo: ph.TrainLo, DayHi: pd.fitHi,
					NegEvery: cfg.NegEvery, Features: g.feats, Expand: true,
					Windows: cfg.Windows, Workers: cfg.Workers,
					Sanitize: cfg.sanitizeOpts(true),
				})
				if err != nil {
					return rows, fmt.Errorf("pipeline: fallback training frame: %w", err)
				}
				if trainFr.Positives() == 0 {
					return rows, ErrNoTrainingSignal
				}
			}
			rows += trainFr.NumRows()
			g.model, err = fitModel(trainFr, cfg)
			if err != nil {
				return rows, fmt.Errorf("pipeline: fit group model: %w", err)
			}
		}
		return rows, nil
	})
	if err != nil {
		return PhaseResult{}, err
	}
	faults.CrashPoint(crashAfterTrain)

	// Calibrate the alarm threshold to the target recall on the
	// validation period.
	var thresholds []float64
	err = timeStage(cfg, &stats, StageCalibrate, func() (int, error) {
		valOutcomes, rows, err := scorePhase(src, model, groups, pd.valLo, ph.TrainHi, cfg)
		if err != nil {
			return rows, fmt.Errorf("pipeline: validation scoring: %w", err)
		}
		thresholds = calibrateThresholds(valOutcomes, len(groups), cfg.TargetRecall)
		return rows, nil
	})
	if err != nil {
		return PhaseResult{}, err
	}
	faults.CrashPoint(crashAfterCalibrate)

	// Score the test phase.
	var testOutcomes map[int]*driveScore
	err = timeStage(cfg, &stats, StageScore, func() (int, error) {
		var rows int
		var err error
		testOutcomes, rows, err = scorePhase(src, model, groups, ph.TestLo, ph.TestHi, cfg)
		if err != nil {
			return rows, fmt.Errorf("pipeline: test scoring: %w", err)
		}
		return rows, nil
	})
	if err != nil {
		return PhaseResult{}, err
	}

	// Evaluate drive-level first alarms.
	var outcomes []DriveOutcome
	var confusion metrics.Confusion
	_ = timeStage(cfg, &stats, StageEvaluate, func() (int, error) {
		outcomes = finalizeOutcomes(testOutcomes, thresholds, ph.TestHi)
		confusion = EvaluateOutcomes(outcomes)
		return len(outcomes), nil
	})
	cfg.report().NotePhase(true)
	return PhaseResult{
		Selector:   name,
		Model:      model,
		Selection:  selRes,
		Thresholds: thresholds,
		Outcomes:   outcomes,
		Confusion:  confusion,
		StageStats: stats,
		groups:     groups,
		cfg:        cfg,
		trainHi:    ph.TrainHi,
	}, nil
}

// RunPhase executes the full staged workflow for one selector, model,
// and phase: Ingest and Featurize (PreparePhase), Select, then Train,
// Calibrate, Score, and Evaluate.
func RunPhase(src dataset.Source, model smart.ModelID, sel Selector, ph Phase, cfg Config) (PhaseResult, error) {
	pd, err := PreparePhase(src, model, ph, cfg)
	if err != nil {
		return PhaseResult{}, err
	}
	return pd.RunSelector(sel)
}

// buildGroups converts a SelectorResult into training/scoring groups.
func buildGroups(selRes SelectorResult) ([]group, error) {
	mk := func(names []string, below, atLeast float64) (group, error) {
		feats := make([]smart.Feature, len(names))
		for i, n := range names {
			ft, err := smart.ParseFeature(n)
			if err != nil {
				return group{}, fmt.Errorf("pipeline: selected feature %q: %w", n, err)
			}
			feats[i] = ft
		}
		return group{feats: feats, names: names, mwiBelow: below, mwiAtLeast: atLeast}, nil
	}
	if selRes.Split == nil {
		g, err := mk(selRes.All, 0, 0)
		if err != nil {
			return nil, err
		}
		return []group{g}, nil
	}
	low, err := mk(selRes.Split.Low, selRes.Split.ThresholdMWI, 0)
	if err != nil {
		return nil, err
	}
	high, err := mk(selRes.Split.High, 0, selRes.Split.ThresholdMWI)
	if err != nil {
		return nil, err
	}
	return []group{low, high}, nil
}

// Run executes the staged workflow over several phases on one shared
// store (so a phase advance reuses already-ingested days) and merges
// the drive-level confusions (summing counts, as the paper aggregates
// its three testing phases).
//
// With a robust config, a phase whose selection fails retries with the
// previous phase's feature selection before the phase is skipped
// entirely, and every degradation is recorded in the run report; the
// run errs only when no phase completes. Without one, the first phase
// error aborts the run (the legacy behavior).
func Run(src dataset.Source, model smart.ModelID, sel Selector, phases []Phase, cfg Config) ([]PhaseResult, metrics.Confusion, error) {
	e := New(src, cfg)
	var results []PhaseResult
	var total metrics.Confusion
	rep := cfg.report()
	var prevSel *SelectorResult
	var firstErr error
	for _, ph := range phases {
		res, err := e.runPhaseWithFallback(model, sel, ph, prevSel)
		if err != nil {
			if cfg.Robust == nil {
				return nil, metrics.Confusion{}, fmt.Errorf("pipeline: model %v phase test [%d, %d]: %w", model, ph.TestLo, ph.TestHi, err)
			}
			if firstErr == nil {
				firstErr = err
			}
			rep.NoteFallback(fmt.Sprintf("model %v test [%d, %d]: phase skipped: %v", model, ph.TestLo, ph.TestHi, err))
			rep.NotePhase(false)
			continue
		}
		results = append(results, res)
		total.Merge(res.Confusion)
		selCopy := res.Selection
		prevSel = &selCopy
	}
	if len(results) == 0 {
		if firstErr == nil {
			firstErr = errors.New("no phases")
		}
		return nil, metrics.Confusion{}, fmt.Errorf("pipeline: model %v: every phase failed: %w", model, firstErr)
	}
	return results, total, nil
}

// runPhaseWithFallback runs one phase; in robust mode a selection
// failure retries with the previous phase's selection (recorded as a
// fallback) before giving up on the phase.
func (e *Engine) runPhaseWithFallback(model smart.ModelID, sel Selector, ph Phase, prevSel *SelectorResult) (PhaseResult, error) {
	pd, err := e.PreparePhase(model, ph)
	if err != nil {
		return PhaseResult{}, err
	}
	res, err := pd.RunSelector(sel)
	if err != nil && e.cfg.Robust != nil && prevSel != nil {
		e.cfg.report().NoteFallback(fmt.Sprintf(
			"model %v test [%d, %d]: selection failed (%v); reusing previous phase's selection", model, ph.TestLo, ph.TestHi, err))
		return pd.RunSelection(sel.Name(), *prevSel)
	}
	return res, err
}

// EvaluateOutcomes computes the drive-level confusion matrix of a set
// of outcomes.
func EvaluateOutcomes(outcomes []DriveOutcome) metrics.Confusion {
	preds := make([]metrics.DrivePrediction, len(outcomes))
	for i, o := range outcomes {
		preds[i] = o.Pred
	}
	return metrics.EvaluateDrives(preds, dataset.PredictionWindow)
}

// AUC computes the threshold-free ranking quality of a phase: the
// area under the ROC curve of per-drive maximum probabilities against
// actual failure. It errs when the phase has a single class.
func AUC(outcomes []DriveOutcome) (float64, error) {
	scores := make([]float64, len(outcomes))
	labels := make([]int, len(outcomes))
	for i, o := range outcomes {
		scores[i] = o.MaxProb
		if o.Pred.FailDay >= 0 {
			labels[i] = 1
		}
	}
	return metrics.AUC(scores, labels)
}

// EvaluateLowMWI computes the confusion restricted to drives whose
// wear level is below the threshold — the "Low" columns of Table VII.
func EvaluateLowMWI(outcomes []DriveOutcome, threshold float64) metrics.Confusion {
	var preds []metrics.DrivePrediction
	for _, o := range outcomes {
		if o.MWI < threshold {
			preds = append(preds, o.Pred)
		}
	}
	return metrics.EvaluateDrives(preds, dataset.PredictionWindow)
}

package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/forest"
	"repro/internal/gbdt"
	"repro/internal/hist"
	"repro/internal/smart"
)

// SnapshotFormat is the current ModelSnapshot serialization format.
// Loaders reject snapshots with a different format number.
const SnapshotFormat = 1

// ErrSnapshotFormat indicates a snapshot with an incompatible format.
var ErrSnapshotFormat = errors.New("pipeline: incompatible snapshot format")

// ErrSnapshotCorrupt indicates snapshot bytes that do not decode as a
// ModelSnapshot — a truncated or damaged artifact, as opposed to a
// well-formed snapshot of an incompatible format (ErrSnapshotFormat).
var ErrSnapshotCorrupt = errors.New("pipeline: corrupt snapshot")

// ErrNotSnapshotable indicates a phase result that cannot be captured
// as a ModelSnapshot (robust-mode runs: their miss-mask columns depend
// on scoring-time sanitization state, so the trained model is not a
// self-contained artifact).
var ErrNotSnapshotable = errors.New("pipeline: phase result not snapshotable")

// GroupSnapshot is one trained wear group inside a ModelSnapshot.
type GroupSnapshot struct {
	// Features are the group's selected original features by name.
	Features []string `json:"features"`
	// MWIBelow / MWIAtLeast bound the group's wear filter (0 = none).
	MWIBelow   float64 `json:"mwi_below,omitempty"`
	MWIAtLeast float64 `json:"mwi_at_least,omitempty"`
	// Predictor is the trained model family.
	Predictor Predictor `json:"predictor"`
	// ModelData is the serialized trained model (gob, base64 in JSON).
	ModelData []byte `json:"model_data"`
	// FlatData is the serialized compiled flat model, when the model
	// compiled; loaders score through it without recompiling. Absent in
	// older snapshots, which compile on load instead — predictions are
	// bit-identical either way.
	FlatData []byte `json:"flat_data,omitempty"`
}

// ModelSnapshot is the versioned, self-contained artifact of a trained
// phase: the feature selection, the per-group trained models, the
// calibrated alarm thresholds, and the hash of the config that trained
// them. It is JSON-serializable and can score new days without
// retraining (ScoreSnapshot).
type ModelSnapshot struct {
	// Format is the serialization format number (SnapshotFormat).
	Format int `json:"format"`
	// Model is the drive model the snapshot was trained for.
	Model smart.ModelID `json:"model"`
	// ModelName is Model's human-readable name (informational).
	ModelName string `json:"model_name"`
	// Selector names the selection strategy that chose the features.
	Selector string `json:"selector"`
	// Selection is the full selection result.
	Selection SelectorResult `json:"selection"`
	// TrainedThrough is the last training day the models saw.
	TrainedThrough int `json:"trained_through"`
	// Groups holds one trained model per wear group.
	Groups []GroupSnapshot `json:"groups"`
	// Thresholds are the calibrated per-group alarm thresholds,
	// parallel to Groups.
	Thresholds []float64 `json:"thresholds"`
	// Windows are the feature-generation windows used at training time
	// (nil = the dataset defaults); scoring must use the same.
	Windows []int `json:"windows,omitempty"`
	// ConfigHash fingerprints the training configuration (Config.Hash)
	// so a loaded snapshot can be checked against the config a caller
	// expects.
	ConfigHash string `json:"config_hash"`
}

// Hash fingerprints the semantically relevant training configuration:
// two configs with equal hashes train bit-identical models on the same
// data. Parallelism (Workers) is excluded — results are
// worker-invariant — as are robustness options (robust runs are not
// snapshotable).
func (c Config) Hash() string {
	c = c.withDefaults()
	h := struct {
		Predictor    Predictor
		Forest       forest.Config
		GBDT         gbdt.Config
		NegEvery     int
		TargetRecall float64
		ValFraction  float64
		Windows      []int
		SplitMethod  hist.SplitMethod
		MaxBins      int
		Seed         int64
	}{
		Predictor:    c.predictor(),
		Forest:       c.Forest,
		GBDT:         c.GBDT,
		NegEvery:     c.NegEvery,
		TargetRecall: c.TargetRecall,
		ValFraction:  c.ValFraction,
		Windows:      c.Windows,
		SplitMethod:  c.SplitMethod,
		MaxBins:      c.MaxBins,
		Seed:         c.Seed,
	}
	// Forest workers are parallelism, not semantics.
	h.Forest.Workers = 0
	data, err := json.Marshal(h)
	if err != nil {
		// The struct is all plain values; Marshal cannot fail.
		panic(err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:8])
}

// Snapshot captures the phase's trained artifact as a self-contained
// ModelSnapshot. It errs for robust-mode runs (ErrNotSnapshotable) and
// for results not produced by a run (zero PhaseResult).
func (r *PhaseResult) Snapshot() (*ModelSnapshot, error) {
	if len(r.groups) == 0 {
		return nil, fmt.Errorf("%w: result has no trained groups", ErrNotSnapshotable)
	}
	if r.cfg.Robust != nil {
		return nil, fmt.Errorf("%w: robust-mode run", ErrNotSnapshotable)
	}
	snap := &ModelSnapshot{
		Format:         SnapshotFormat,
		Model:          r.Model,
		ModelName:      r.Model.String(),
		Selector:       r.Selector,
		Selection:      r.Selection,
		TrainedThrough: r.trainHi,
		Thresholds:     append([]float64(nil), r.Thresholds...),
		Windows:        append([]int(nil), r.cfg.Windows...),
		ConfigHash:     r.cfg.Hash(),
	}
	for _, g := range r.groups {
		family, data, flatData, err := g.model.marshal()
		if err != nil {
			return nil, fmt.Errorf("pipeline: marshal group model: %w", err)
		}
		snap.Groups = append(snap.Groups, GroupSnapshot{
			Features:   append([]string(nil), g.names...),
			MWIBelow:   g.mwiBelow,
			MWIAtLeast: g.mwiAtLeast,
			Predictor:  family,
			ModelData:  data,
			FlatData:   flatData,
		})
	}
	return snap, nil
}

// groups reconstructs the trained scoring groups from the snapshot.
func (s *ModelSnapshot) buildGroups(workers int) ([]group, error) {
	if s.Format != SnapshotFormat {
		return nil, fmt.Errorf("%w: format %d, want %d", ErrSnapshotFormat, s.Format, SnapshotFormat)
	}
	if len(s.Groups) == 0 || len(s.Thresholds) != len(s.Groups) {
		return nil, fmt.Errorf("pipeline: malformed snapshot: %d groups, %d thresholds", len(s.Groups), len(s.Thresholds))
	}
	out := make([]group, len(s.Groups))
	for i, gs := range s.Groups {
		feats := make([]smart.Feature, len(gs.Features))
		for j, n := range gs.Features {
			ft, err := smart.ParseFeature(n)
			if err != nil {
				return nil, fmt.Errorf("pipeline: snapshot feature %q: %w", n, err)
			}
			feats[j] = ft
		}
		m, err := unmarshalModel(gs.Predictor, gs.ModelData, gs.FlatData, workers)
		if err != nil {
			return nil, fmt.Errorf("pipeline: snapshot group %d: %w", i, err)
		}
		out[i] = group{
			feats:      feats,
			names:      gs.Features,
			mwiBelow:   gs.MWIBelow,
			mwiAtLeast: gs.MWIAtLeast,
			model:      m,
		}
	}
	return out, nil
}

// ScoreOpts configures snapshot scoring.
type ScoreOpts struct {
	// Workers bounds scoring parallelism; 0 means GOMAXPROCS. Results
	// are bit-identical for any value.
	Workers int
}

// ScoreSnapshot scores days [lo, hi] of src with a loaded snapshot's
// trained models and calibrated thresholds — no retraining. The
// outcomes are bit-identical to what the in-memory PhaseResult that
// produced the snapshot would report for the same window.
func ScoreSnapshot(src dataset.Source, snap *ModelSnapshot, lo, hi int, opts ScoreOpts) ([]DriveOutcome, error) {
	s, err := NewScorer(snap, opts.Workers)
	if err != nil {
		return nil, err
	}
	return s.Score(src, lo, hi)
}

// Scorer is a ModelSnapshot whose trained groups have been decoded
// once for repeated scoring. Callers that score many windows with the
// same snapshot (the continuous-operation controller scores the fleet
// every day) avoid re-decoding the serialized models per call; results
// are bit-identical to ScoreSnapshot.
type Scorer struct {
	snap   *ModelSnapshot
	groups []group
	cfg    Config
}

// NewScorer decodes the snapshot's trained groups for repeated
// scoring. Workers bounds scoring parallelism (0 = GOMAXPROCS);
// results are bit-identical for any value.
func NewScorer(snap *ModelSnapshot, workers int) (*Scorer, error) {
	groups, err := snap.buildGroups(workers)
	if err != nil {
		return nil, err
	}
	return &Scorer{
		snap:   snap,
		groups: groups,
		cfg:    Config{Windows: append([]int(nil), snap.Windows...), Workers: workers},
	}, nil
}

// Snapshot returns the snapshot the scorer was built from.
func (s *Scorer) Snapshot() *ModelSnapshot { return s.snap }

// Score scores days [lo, hi] of src with the snapshot's trained models
// and calibrated thresholds, exactly as ScoreSnapshot would.
func (s *Scorer) Score(src dataset.Source, lo, hi int) ([]DriveOutcome, error) {
	if lo < 0 || hi < lo {
		return nil, fmt.Errorf("pipeline: bad scoring window [%d, %d]", lo, hi)
	}
	scores, _, err := scorePhase(src, s.snap.Model, s.groups, lo, hi, s.cfg)
	if err != nil {
		return nil, fmt.Errorf("pipeline: snapshot scoring: %w", err)
	}
	return finalizeOutcomes(scores, s.snap.Thresholds, hi), nil
}

// SaveSnapshot serializes the snapshot into the registry under name
// and returns the assigned version.
func SaveSnapshot(reg *core.Registry, name string, snap *ModelSnapshot) (int, error) {
	data, err := json.Marshal(snap)
	if err != nil {
		return 0, fmt.Errorf("pipeline: encode snapshot: %w", err)
	}
	return reg.Save(name, data)
}

// DecodeSnapshot decodes serialized snapshot bytes, distinguishing
// undecodable input (ErrSnapshotCorrupt) from an incompatible format
// number (ErrSnapshotFormat). It validates the serialization envelope
// only; the per-group model payloads are checked when the groups are
// built for scoring.
func DecodeSnapshot(data []byte) (*ModelSnapshot, error) {
	var snap ModelSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
	}
	if snap.Format != SnapshotFormat {
		return nil, fmt.Errorf("%w: format %d, want %d", ErrSnapshotFormat, snap.Format, SnapshotFormat)
	}
	return &snap, nil
}

// LoadSnapshot loads a snapshot version from the registry; version <= 0
// loads the latest.
func LoadSnapshot(reg *core.Registry, name string, version int) (*ModelSnapshot, error) {
	data, version, err := reg.Load(name, version)
	if err != nil {
		return nil, err
	}
	snap, err := DecodeSnapshot(data)
	if err != nil {
		return nil, fmt.Errorf("pipeline: snapshot %q v%d: %w", name, version, err)
	}
	return snap, nil
}

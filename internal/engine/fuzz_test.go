package engine

import (
	"encoding/json"
	"errors"
	"testing"
)

// FuzzSnapshotDecode asserts the snapshot loader never panics on
// arbitrary bytes: any input either decodes to a snapshot whose groups
// build (or fail with an error), or is rejected with a wrapped
// ErrSnapshotCorrupt / ErrSnapshotFormat.
func FuzzSnapshotDecode(f *testing.F) {
	f.Add([]byte(``))
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"format": 1}`))
	f.Add([]byte(`{"format": 99, "groups": []}`))
	f.Add([]byte(`{"format": 1, "model": 1, "selector": "wefr",` +
		` "groups": [{"features": ["MWI_N"], "predictor": 1, "model_data": "AAEC"}],` +
		` "thresholds": [0.5], "trained_through": 600, "config_hash": "abcd"}`))
	f.Add([]byte(`{"format": 1, "groups": [{"features": ["not-a-feature"]}], "thresholds": [0.1]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := DecodeSnapshot(data)
		if err != nil {
			if !errors.Is(err, ErrSnapshotCorrupt) && !errors.Is(err, ErrSnapshotFormat) {
				t.Fatalf("unexpected error class: %v", err)
			}
			if json.Valid(data) && errors.Is(err, ErrSnapshotCorrupt) {
				// Valid JSON can still be corrupt (wrong field types),
				// but must never be misreported as a format error and
				// vice versa; nothing further to check here.
				_ = err
			}
			return
		}
		// A decodable snapshot must survive group reconstruction
		// without panicking; errors (bad features, bogus model gobs)
		// are fine.
		_, _ = snap.buildGroups(1)
	})
}

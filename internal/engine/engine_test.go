package engine

import (
	"errors"
	"testing"

	"repro/internal/dataset"
)

func TestStandardPhases(t *testing.T) {
	phases := StandardPhases(730)
	if len(phases) != 3 {
		t.Fatalf("phases = %d", len(phases))
	}
	for i, ph := range phases {
		if err := ph.validate(730); err != nil {
			t.Errorf("phase %d invalid: %v", i, err)
		}
		if ph.TestHi-ph.TestLo != 29 {
			t.Errorf("phase %d test span = %d days", i, ph.TestHi-ph.TestLo+1)
		}
		if ph.TrainHi != ph.TestLo-1 || ph.TrainLo != 0 {
			t.Errorf("phase %d train = [%d, %d]", i, ph.TrainLo, ph.TrainHi)
		}
	}
	// Non-overlapping, consecutive, ending at the dataset end.
	if phases[0].TestLo != 730-90 || phases[2].TestHi != 729 {
		t.Errorf("phase layout: %+v", phases)
	}
	if phases[1].TestLo != phases[0].TestHi+1 {
		t.Error("phases overlap")
	}
}

func TestPhaseValidate(t *testing.T) {
	cases := []Phase{
		{TrainLo: -1, TrainHi: 100, TestLo: 101, TestHi: 110},
		{TrainLo: 0, TrainHi: 0, TestLo: 1, TestHi: 2},
		{TrainLo: 0, TrainHi: 100, TestLo: 90, TestHi: 110},  // test inside train
		{TrainLo: 0, TrainHi: 100, TestLo: 101, TestHi: 800}, // past end
	}
	for i, ph := range cases {
		if err := ph.validate(730); !errors.Is(err, ErrBadPhase) {
			t.Errorf("case %d error = %v", i, err)
		}
	}
}

func TestCalibrateThresholds(t *testing.T) {
	mk := func(failed bool, failDay int, maxProb float64, group int) *driveScore {
		ref := dataset.DriveRef{ID: 1, FailDay: -1}
		if failed {
			ref.FailDay = failDay
		}
		return &driveScore{ref: ref, days: []int{0}, probs: []float64{maxProb}, group: []int{group}}
	}
	scores := map[int]*driveScore{
		1: mk(true, 10, 0.9, 0),
		2: mk(true, 10, 0.6, 0),
		3: mk(true, 10, 0.3, 0),
		4: mk(false, 0, 0.2, 0),
	}
	// Target recall 0.34 over 3 failing drives: 1 of 3 is recall 0.33
	// (short of target), so 2 must be covered; the threshold centers
	// in the feasible interval between the 2nd and 3rd scores.
	if want := (float64(0.6) + 0.3) / 2; calibrateThresholds(scores, 1, 0.34)[0] != want {
		t.Errorf("threshold = %v, want %v", calibrateThresholds(scores, 1, 0.34), want)
	}
	// Target recall 0.67: need 3 of 3 covered -> the lowest failing
	// max, with no lower neighbor to center against.
	if got := calibrateThresholds(scores, 1, 0.67); got[0] != 0.3 {
		t.Errorf("threshold = %v, want 0.3", got)
	}
	// No failing drives: default.
	none := map[int]*driveScore{4: mk(false, 0, 0.2, 0)}
	if got := calibrateThresholds(none, 1, 0.3); got[0] != 0.5 {
		t.Errorf("threshold = %v, want 0.5", got)
	}
}

func TestCalibrateThresholdsPerGroup(t *testing.T) {
	mk := func(id int, failDay int, prob float64, group int) *driveScore {
		return &driveScore{
			ref:  dataset.DriveRef{ID: id, FailDay: failDay},
			days: []int{0}, probs: []float64{prob}, group: []int{group},
		}
	}
	// Group 0: three failing drives with high probabilities. Group 1:
	// three failing drives with low probabilities (a weaker model).
	scores := map[int]*driveScore{
		1: mk(1, 5, 0.9, 0), 2: mk(2, 5, 0.8, 0), 3: mk(3, 5, 0.7, 0),
		4: mk(4, 5, 0.3, 1), 5: mk(5, 5, 0.25, 1), 6: mk(6, 5, 0.2, 1),
	}
	got := calibrateThresholds(scores, 2, 0.5)
	if got[0] <= got[1] {
		t.Errorf("group thresholds = %v; group 0 should calibrate higher", got)
	}
	// A group with too few failing drives inherits the pooled value.
	scores = map[int]*driveScore{
		1: mk(1, 5, 0.9, 0), 2: mk(2, 5, 0.8, 0), 3: mk(3, 5, 0.7, 0),
		4: mk(4, 5, 0.3, 1),
	}
	got = calibrateThresholds(scores, 2, 0.5)
	if got[1] != got[0] && got[1] == 0.3 {
		t.Errorf("sparse group should inherit pooled threshold, got %v", got)
	}
}

// TestCalibrateThresholdsEdgeCases covers the degenerate calibration
// inputs: no scored drives at all, a group that scored no drives, a
// single failing drive, all-tied probabilities, and a non-positive
// best probability.
func TestCalibrateThresholdsEdgeCases(t *testing.T) {
	mk := func(id int, failDay int, prob float64, group int) *driveScore {
		return &driveScore{
			ref:  dataset.DriveRef{ID: id, FailDay: failDay},
			days: []int{0}, probs: []float64{prob}, group: []int{group},
		}
	}

	// Empty validation set: every group gets the 0.5 default.
	got := calibrateThresholds(map[int]*driveScore{}, 2, 0.3)
	if len(got) != 2 || got[0] != 0.5 || got[1] != 0.5 {
		t.Errorf("empty scores: thresholds = %v, want [0.5 0.5]", got)
	}

	// Group 1 scored no drives at all: it inherits the pooled
	// threshold rather than panicking or defaulting separately.
	scores := map[int]*driveScore{
		1: mk(1, 5, 0.9, 0), 2: mk(2, 5, 0.6, 0), 3: mk(3, 5, 0.3, 0),
	}
	got = calibrateThresholds(scores, 2, 0.34)
	if got[1] != got[0] {
		t.Errorf("unscored group: thresholds = %v, want group 1 to inherit pooled", got)
	}

	// A single failing drive: threshold is that drive's max (below the
	// minGroupCalibration count, so per-group inherits pooled — which
	// equals the same single value).
	single := map[int]*driveScore{1: mk(1, 5, 0.7, 0)}
	if got := calibrateThresholds(single, 1, 0.3); got[0] != 0.7 {
		t.Errorf("single drive: threshold = %v, want 0.7", got)
	}

	// All probabilities tied: no feasible midpoint interval, threshold
	// sits on the tied value for any target recall.
	tied := map[int]*driveScore{
		1: mk(1, 5, 0.4, 0), 2: mk(2, 5, 0.4, 0), 3: mk(3, 5, 0.4, 0),
	}
	for _, recall := range []float64{0.1, 0.5, 1.0} {
		if got := calibrateThresholds(tied, 1, recall); got[0] != 0.4 {
			t.Errorf("tied probs at recall %v: threshold = %v, want 0.4", recall, got)
		}
	}

	// All-zero scores (a model that never fires): the floor keeps the
	// threshold strictly positive so healthy all-zero drives do not
	// alarm.
	zeros := map[int]*driveScore{
		1: mk(1, 5, 0, 0), 2: mk(2, 5, 0, 0), 3: mk(3, 5, 0, 0),
	}
	if got := calibrateThresholds(zeros, 1, 0.3); got[0] != 0.05 {
		t.Errorf("all-zero scores: threshold = %v, want 0.05 floor", got)
	}

	// A failing drive whose failure predates its first scored day is
	// excluded from calibration (it failed before the window).
	past := map[int]*driveScore{
		1: {ref: dataset.DriveRef{ID: 1, FailDay: 5}, days: []int{10}, probs: []float64{0.9}, group: []int{0}},
	}
	if got := calibrateThresholds(past, 1, 0.3); got[0] != 0.5 {
		t.Errorf("pre-window failure: threshold = %v, want 0.5 default", got)
	}
}

func TestFinalizeOutcomesWindowing(t *testing.T) {
	scores := map[int]*driveScore{
		// Fails 10 days past the phase end: still in the 30-day window.
		1: {ref: dataset.DriveRef{ID: 1, FailDay: 110}, days: []int{95, 96}, probs: []float64{0.9, 0.1}, mwis: []float64{50, 49}, group: []int{0, 0}, lastDay: 96, lastMWI: 49},
		// Fails 40 days past the end: out of scope for this phase.
		2: {ref: dataset.DriveRef{ID: 2, FailDay: 140}, days: []int{95}, probs: []float64{0.1}, mwis: []float64{70}, group: []int{0}, lastDay: 95, lastMWI: 70},
	}
	out := finalizeOutcomes(scores, []float64{0.5}, 100)
	if len(out) != 2 {
		t.Fatalf("outcomes = %d", len(out))
	}
	if out[0].Pred.FirstAlarmDay != 95 || out[0].Pred.FailDay != 110 {
		t.Errorf("outcome[0] = %+v", out[0].Pred)
	}
	if out[0].MWI != 50 {
		t.Errorf("outcome[0].MWI = %v, want MWI at alarm", out[0].MWI)
	}
	if out[1].Pred.FailDay != -1 {
		t.Errorf("far-future failure should be treated as healthy, got %+v", out[1].Pred)
	}
	if out[1].MWI != 70 {
		t.Errorf("outcome[1].MWI = %v", out[1].MWI)
	}
}

// TestFinalizeOutcomesEdgeCases covers the degenerate finalization
// inputs: no drives, a single never-alarming drive, tied probabilities
// around the threshold, and deterministic ID ordering.
func TestFinalizeOutcomesEdgeCases(t *testing.T) {
	// Empty: no outcomes, no panic.
	if out := finalizeOutcomes(map[int]*driveScore{}, []float64{0.5}, 100); len(out) != 0 {
		t.Errorf("empty scores produced %d outcomes", len(out))
	}

	// Single healthy drive, all scores below threshold: no alarm, MWI
	// reported at last observed day, MaxProb still tracked.
	one := map[int]*driveScore{
		7: {ref: dataset.DriveRef{ID: 7, FailDay: -1}, days: []int{95, 96}, probs: []float64{0.2, 0.3}, mwis: []float64{40, 41}, group: []int{0, 0}, lastDay: 96, lastMWI: 41},
	}
	out := finalizeOutcomes(one, []float64{0.5}, 100)
	if len(out) != 1 || out[0].Pred.FirstAlarmDay != -1 {
		t.Fatalf("healthy drive alarmed: %+v", out)
	}
	if out[0].MWI != 41 || out[0].MaxProb != 0.3 {
		t.Errorf("healthy drive: MWI = %v, MaxProb = %v", out[0].MWI, out[0].MaxProb)
	}

	// A probability exactly at the threshold alarms (>=, not >), and
	// the first such day wins even when a later day ties it.
	tie := map[int]*driveScore{
		1: {ref: dataset.DriveRef{ID: 1, FailDay: 120}, days: []int{95, 96, 97}, probs: []float64{0.4, 0.5, 0.5}, mwis: []float64{10, 11, 12}, group: []int{0, 0, 0}, lastDay: 97, lastMWI: 12},
	}
	out = finalizeOutcomes(tie, []float64{0.5}, 100)
	if out[0].Pred.FirstAlarmDay != 96 || out[0].MWI != 11 {
		t.Errorf("tied threshold: alarm day = %d, MWI = %v, want day 96 MWI 11", out[0].Pred.FirstAlarmDay, out[0].MWI)
	}

	// Outcomes are sorted by drive ID regardless of map order.
	many := map[int]*driveScore{}
	for _, id := range []int{42, 7, 99, 13} {
		many[id] = &driveScore{ref: dataset.DriveRef{ID: id, FailDay: -1}, days: []int{95}, probs: []float64{0.1}, mwis: []float64{5}, group: []int{0}, lastDay: 95, lastMWI: 5}
	}
	out = finalizeOutcomes(many, []float64{0.5}, 100)
	for i := 1; i < len(out); i++ {
		if out[i-1].Pred.DriveID >= out[i].Pred.DriveID {
			t.Fatalf("outcomes not sorted by drive ID: %v", out)
		}
	}

	// Per-group thresholds: day scored by group 1 uses group 1's
	// threshold.
	grouped := map[int]*driveScore{
		1: {ref: dataset.DriveRef{ID: 1, FailDay: 120}, days: []int{95, 96}, probs: []float64{0.3, 0.3}, mwis: []float64{10, 50}, group: []int{0, 1}, lastDay: 96, lastMWI: 50},
	}
	out = finalizeOutcomes(grouped, []float64{0.5, 0.25}, 100)
	if out[0].Pred.FirstAlarmDay != 96 {
		t.Errorf("group threshold: alarm day = %d, want 96 (group 1's lower threshold)", out[0].Pred.FirstAlarmDay)
	}
}

func TestBuildGroups(t *testing.T) {
	res := SelectorResult{All: []string{"UCE_R", "MWI_N"}}
	gs, err := buildGroups(res)
	if err != nil || len(gs) != 1 {
		t.Fatalf("groups = %v, %v", gs, err)
	}
	res.Split = &GroupFeatures{ThresholdMWI: 40, Low: []string{"MWI_N"}, High: []string{"UCE_R"}}
	gs, err = buildGroups(res)
	if err != nil || len(gs) != 2 {
		t.Fatalf("split groups = %v, %v", gs, err)
	}
	if gs[0].mwiBelow != 40 || gs[1].mwiAtLeast != 40 {
		t.Errorf("group filters: %+v", gs)
	}
	if _, err := buildGroups(SelectorResult{All: []string{"NOT_A_FEATURE"}}); err == nil {
		t.Error("bad feature name should fail")
	}
}

func TestConfigHash(t *testing.T) {
	a := Config{Seed: 1}
	b := Config{Seed: 1, Workers: 8} // parallelism is not semantics
	if a.Hash() != b.Hash() {
		t.Error("Workers changed the config hash")
	}
	c := Config{Seed: 2}
	if a.Hash() == c.Hash() {
		t.Error("different seeds hashed equal")
	}
	d := Config{Seed: 1, NegEvery: 7} // explicit default == implied default
	if a.Hash() != d.Hash() {
		t.Error("defaulted and explicit configs hashed differently")
	}
}

func TestStageReport(t *testing.T) {
	rep := &StageReport{}
	cfg := Config{Stages: rep}
	var stats []StageStat
	for _, s := range []string{StageScore, StageIngest, StageTrain} {
		if err := timeStage(cfg, &stats, s, func() (int, error) { return 10, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if len(stats) != 3 || stats[0].Stage != StageScore || stats[0].Rows != 10 {
		t.Fatalf("stats = %+v", stats)
	}
	totals := rep.Totals()
	if len(totals) != 3 {
		t.Fatalf("totals = %+v", totals)
	}
	// Canonical order, not insertion order.
	if totals[0].Stage != StageIngest || totals[1].Stage != StageTrain || totals[2].Stage != StageScore {
		t.Errorf("totals order = %v %v %v", totals[0].Stage, totals[1].Stage, totals[2].Stage)
	}
	if rep.String() == "" || (&StageReport{}).String() == "" {
		t.Error("empty report string")
	}
	// Errors propagate and still record the stage.
	wantErr := errors.New("boom")
	if err := timeStage(cfg, &stats, StageEvaluate, func() (int, error) { return 0, wantErr }); !errors.Is(err, wantErr) {
		t.Errorf("error = %v", err)
	}
	if len(stats) != 4 {
		t.Error("failed stage not recorded")
	}
	// A nil report is a no-op collector.
	var nilRep *StageReport
	nilRep.add(StageStat{Stage: StageScore})
	if nilRep.Totals() != nil {
		t.Error("nil report has totals")
	}
}

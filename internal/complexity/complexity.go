// Package complexity implements the data-complexity measures WEFR uses
// to choose the number of selected features automatically (Section IV-C
// of the paper): the maximum Fisher's discriminant ratio (F1), the
// volume of the overlap region (F2), the maximum individual feature
// efficiency (F3), their ensemble
//
//	F = (1/F1 + F2 + 1/F3) / 3,
//
// and the cumulative-complexity cutoff scan of Seijo-Pardo et al.
// (CAEPIA 2016): e = alpha*F + (1-alpha)*xi, with partial and total
// cumulative sums E_p and E, a warm start of log2(#features) features,
// and a break as soon as E_p >= E.
//
// All three measures are computed per single feature over a binary
// class split. F1 and F3 are "higher is simpler", so they enter the
// ensemble inverted; F2 is "lower is simpler". Uninformative features
// drive 1/F1 and 1/F3 toward infinity, which is exactly what makes the
// cumulative scan terminate at the informative/trivial boundary; both
// inverses are clamped at InverseCap to keep the arithmetic finite.
package complexity

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Errors returned by the complexity measures.
var (
	// ErrEmptyInput indicates zero samples.
	ErrEmptyInput = errors.New("complexity: empty input")
	// ErrLengthMismatch indicates feature and label slices of different
	// lengths.
	ErrLengthMismatch = errors.New("complexity: length mismatch")
	// ErrSingleClass indicates input with fewer than two classes.
	ErrSingleClass = errors.New("complexity: need both classes present")
)

// InverseCap bounds 1/F1 and 1/F3 in the ensemble for degenerate
// features (zero discriminant ratio or zero efficiency).
const InverseCap = 100.0

// errMissingClass indicates that both classes are present in the labels
// but missing (non-finite) feature values left one class with no finite
// samples. Ensemble maps it to MaxEnsemble rather than failing.
var errMissingClass = errors.New("complexity: class has no finite samples")

// splitClasses partitions x by binary label, dropping missing
// (non-finite) values.
func splitClasses(x []float64, y []int) (neg, pos []float64, err error) {
	if len(x) != len(y) {
		return nil, nil, fmt.Errorf("%w: %d values vs %d labels", ErrLengthMismatch, len(x), len(y))
	}
	if len(x) == 0 {
		return nil, nil, ErrEmptyInput
	}
	hadPos, hadNeg := false, false
	for i, v := range x {
		if y[i] == 1 {
			hadPos = true
		} else {
			hadNeg = true
		}
		if v-v != 0 { // non-finite
			continue
		}
		if y[i] == 1 {
			pos = append(pos, v)
		} else {
			neg = append(neg, v)
		}
	}
	if !hadPos || !hadNeg {
		return nil, nil, ErrSingleClass
	}
	if len(pos) == 0 || len(neg) == 0 {
		return nil, nil, errMissingClass
	}
	return neg, pos, nil
}

func meanVar(xs []float64) (mean, variance float64) {
	for _, v := range xs {
		mean += v
	}
	mean /= float64(len(xs))
	for _, v := range xs {
		d := v - mean
		variance += d * d
	}
	variance /= float64(len(xs))
	return mean, variance
}

// RangeTrim is the per-tail trimming fraction used when computing a
// class's value range for F2 and F3. Strict min/max would let a single
// outlier sample inflate the overlap region to the whole axis and cap
// every feature's complexity; trimming to the 5th/95th order statistic
// keeps the measures meaningful on noisy production-scale data. For
// fewer than ~20 samples the trim rounds to zero and the range is the
// exact min/max.
const RangeTrim = 0.05

// classRange returns the trimmed value range of xs: the k-th smallest
// and k-th largest order statistics with k = floor(RangeTrim*(n-1)).
func classRange(xs []float64) (lo, hi float64) {
	n := len(xs)
	k := int(RangeTrim * float64(n-1))
	if k == 0 {
		lo, hi = xs[0], xs[0]
		for _, v := range xs[1:] {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		return lo, hi
	}
	sorted := make([]float64, n)
	copy(sorted, xs)
	sort.Float64s(sorted)
	return sorted[k], sorted[n-1-k]
}

// FisherRatio returns F1 for one feature: (mu0-mu1)^2 / (var0+var1).
// Higher means the classes are better separated (simpler). When both
// variances are zero it returns InverseCap for distinct means (perfect
// separation) and 0 for identical means.
func FisherRatio(x []float64, y []int) (float64, error) {
	neg, pos, err := splitClasses(x, y)
	if err != nil {
		return 0, err
	}
	m0, v0 := meanVar(neg)
	m1, v1 := meanVar(pos)
	num := (m0 - m1) * (m0 - m1)
	den := v0 + v1
	if den == 0 {
		if num == 0 {
			return 0, nil
		}
		return InverseCap, nil
	}
	return num / den, nil
}

// OverlapVolume returns F2 for one feature: the length of the overlap
// of the two class ranges divided by the length of their union. Lower
// means simpler. Point distributions that coincide return 1 (full
// overlap); disjoint ranges return 0.
func OverlapVolume(x []float64, y []int) (float64, error) {
	neg, pos, err := splitClasses(x, y)
	if err != nil {
		return 0, err
	}
	lo0, hi0 := classRange(neg)
	lo1, hi1 := classRange(pos)
	overlap := math.Min(hi0, hi1) - math.Max(lo0, lo1)
	if overlap < 0 {
		overlap = 0
	}
	union := math.Max(hi0, hi1) - math.Min(lo0, lo1)
	if union == 0 {
		// Every value identical in both classes: total overlap.
		return 1, nil
	}
	return overlap / union, nil
}

// FeatureEfficiency returns F3 for one feature: the fraction of samples
// lying outside the class-overlap interval, i.e. separable using this
// feature alone. Higher means simpler.
func FeatureEfficiency(x []float64, y []int) (float64, error) {
	neg, pos, err := splitClasses(x, y)
	if err != nil {
		return 0, err
	}
	lo0, hi0 := classRange(neg)
	lo1, hi1 := classRange(pos)
	oLo := math.Max(lo0, lo1)
	oHi := math.Min(hi0, hi1)
	if oLo > oHi {
		return 1, nil // disjoint ranges: everything separable
	}
	inside := 0
	for _, v := range x {
		if v-v != 0 { // missing values are neither inside nor separable
			continue
		}
		if v >= oLo && v <= oHi {
			inside++
		}
	}
	return 1 - float64(inside)/float64(len(neg)+len(pos)), nil
}

// MaxEnsemble is the Ensemble value assigned to a feature whose finite
// samples do not cover both classes (e.g. an all-missing column): the
// maximum of (1/F1 + F2 + 1/F3)/3 with both inverses at InverseCap and
// total overlap. Such a feature is maximally complex — it carries no
// usable signal — and ranking it as such keeps the cumulative cutoff
// scan well-defined instead of erroring out.
const MaxEnsemble = (InverseCap + 1 + InverseCap) / 3

// Ensemble returns the combined complexity F = (1/F1 + F2 + 1/F3)/3
// for one feature. The inverse terms are clamped at InverseCap. Lower F
// means a simpler (more useful) feature. Missing (non-finite) values
// are ignored; if they leave a class with no finite samples the feature
// is scored MaxEnsemble.
func Ensemble(x []float64, y []int) (float64, error) {
	f1, err := FisherRatio(x, y)
	if errors.Is(err, errMissingClass) {
		return MaxEnsemble, nil
	}
	if err != nil {
		return 0, err
	}
	f2, err := OverlapVolume(x, y)
	if err != nil {
		return 0, err
	}
	f3, err := FeatureEfficiency(x, y)
	if err != nil {
		return 0, err
	}
	return (capInv(f1) + f2 + capInv(f3)) / 3, nil
}

// capInv returns min(1/v, InverseCap), treating non-positive v as fully
// complex.
func capInv(v float64) float64 {
	if v <= 0 {
		return InverseCap
	}
	inv := 1 / v
	if inv > InverseCap {
		return InverseCap
	}
	return inv
}

// CutoffConfig parameterizes the automated feature-count scan.
type CutoffConfig struct {
	// Alpha weights the complexity term against the scanned-percentage
	// term in e = Alpha*F + (1-Alpha)*xi. The paper uses 0.75; values
	// outside (0, 1] fall back to it.
	Alpha float64
	// MinFeatures overrides the warm-start count; 0 means
	// ceil(log2(#features)) per the paper.
	MinFeatures int
	// JumpFactor is the stopping sensitivity: the scan stops at the
	// first feature whose e exceeds JumpFactor times the running mean
	// of the accepted features' e. 0 means DefaultJumpFactor. See
	// AutoCutoff for why this replaces the paper's literal E_p/E
	// recursion.
	JumpFactor float64
}

// DefaultJumpFactor is the default stopping sensitivity of AutoCutoff.
const DefaultJumpFactor = 2.5

// DefaultCutoffConfig returns the paper's settings (alpha = 0.75,
// log2 warm start).
func DefaultCutoffConfig() CutoffConfig { return CutoffConfig{Alpha: 0.75} }

func (c CutoffConfig) alpha() float64 {
	if c.Alpha <= 0 || c.Alpha > 1 {
		return 0.75
	}
	return c.Alpha
}

func (c CutoffConfig) warmStart(nf int) int {
	k := c.MinFeatures
	if k <= 0 {
		k = int(math.Ceil(math.Log2(float64(nf))))
	}
	if k < 1 {
		k = 1
	}
	if k > nf {
		k = nf
	}
	return k
}

// AutoCutoff determines the number of features to select. ensembleF
// must hold the Ensemble complexity of each feature in final-ranking
// order (best feature first). It returns the selected feature count n,
// 1 <= n <= len(ensembleF).
//
// Per Section IV-C, each feature contributes e_i = alpha*F_i +
// (1-alpha)*xi_i, where xi_i = i/#features is the scanned percentage,
// and the top ceil(log2(#features)) features are always accepted (the
// warm start). The paper then describes cumulative sums E_p := E_p + e
// and E := E + E_p with a stop at E_p >= E; taken literally, E grows by
// E_p at every accepted step, so E_p >= E can only trigger within a
// step or two of the warm start (E(i) - E_p(i) = sum of all earlier
// E_p, which grows quadratically while E_p grows linearly), and in
// practice the scan never terminates on real data. This implementation
// keeps the per-feature measure e and warm start but stops at the
// first feature whose e exceeds JumpFactor times the running mean of
// the accepted features' e — the same "stop when the next feature's
// complexity breaks from the accumulated profile" intent, with a rule
// that actually bites at the informative/trivial boundary.
func AutoCutoff(ensembleF []float64, cfg CutoffConfig) (int, error) {
	nf := len(ensembleF)
	if nf == 0 {
		return 0, ErrEmptyInput
	}
	alpha := cfg.alpha()
	warm := cfg.warmStart(nf)
	jump := cfg.JumpFactor
	if jump <= 0 {
		jump = DefaultJumpFactor
	}

	e := func(i int) float64 {
		xi := float64(i+1) / float64(nf)
		return alpha*ensembleF[i] + (1-alpha)*xi
	}

	var sum float64
	for i := 0; i < warm; i++ {
		sum += e(i)
	}
	n := warm
	for i := warm; i < nf; i++ {
		ei := e(i)
		if ei > jump*sum/float64(n) {
			break
		}
		sum += ei
		n = i + 1
	}
	return n, nil
}

// FeatureComplexities computes Ensemble for a set of feature columns in
// the given order. It is a convenience wrapper used by the WEFR core.
func FeatureComplexities(cols [][]float64, y []int) ([]float64, error) {
	out := make([]float64, len(cols))
	for i, col := range cols {
		f, err := Ensemble(col, y)
		if err != nil {
			return nil, fmt.Errorf("complexity: feature %d: %w", i, err)
		}
		out[i] = f
	}
	return out, nil
}

package complexity

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestAutoCutoffBoundsProperty: for any non-degenerate complexity
// profile, the cutoff is within [1, n].
func TestAutoCutoffBoundsProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		fs := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 1
			}
			fs[i] = math.Mod(math.Abs(v), InverseCap)
		}
		n, err := AutoCutoff(fs, DefaultCutoffConfig())
		if err != nil {
			return false
		}
		return n >= 1 && n <= len(fs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestMeasureBoundsProperty: F2 in [0, 1], F3 in [0, 1], F1 >= 0 for
// any two-class sample.
func TestMeasureBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(200)
		x := make([]float64, n)
		y := make([]int, n)
		for i := range x {
			x[i] = rng.NormFloat64() * math.Exp(rng.NormFloat64())
			y[i] = i % 2 // guarantee both classes
		}
		f1, err := FisherRatio(x, y)
		if err != nil || f1 < 0 {
			return false
		}
		f2, err := OverlapVolume(x, y)
		if err != nil || f2 < 0 || f2 > 1 {
			return false
		}
		f3, err := FeatureEfficiency(x, y)
		if err != nil || f3 < 0 || f3 > 1 {
			return false
		}
		e, err := Ensemble(x, y)
		return err == nil && e >= 0 && e <= (2*InverseCap+1)/3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestEnsembleShiftInvariance: adding a constant to every value must
// not change F2/F3 (they are range-based) nor F1 (mean-difference
// based).
func TestEnsembleShiftInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 300
	x := make([]float64, n)
	shifted := make([]float64, n)
	y := make([]int, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		shifted[i] = x[i] + 1234.5
		if rng.Float64() < 0.3 {
			y[i] = 1
			x[i] += 2
			shifted[i] += 2
		}
	}
	a, err := Ensemble(x, y)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Ensemble(shifted, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-b) > 1e-9 {
		t.Errorf("ensemble changed under shift: %v vs %v", a, b)
	}
}

package complexity

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// separated builds a feature where classes are offset by gap (gap 0 =
// indistinguishable, large gap = trivially separable).
func separated(n int, gap float64, seed int64) (x []float64, y []int) {
	rng := rand.New(rand.NewSource(seed))
	x = make([]float64, n)
	y = make([]int, n)
	for i := range x {
		if i%2 == 0 {
			y[i] = 1
			x[i] = gap + rng.NormFloat64()
		} else {
			x[i] = rng.NormFloat64()
		}
	}
	return x, y
}

func TestFisherRatio(t *testing.T) {
	// Exact small case: class0 = {0, 2} (mean 1, var 1),
	// class1 = {4, 6} (mean 5, var 1). F1 = 16/2 = 8.
	x := []float64{0, 2, 4, 6}
	y := []int{0, 0, 1, 1}
	got, err := FisherRatio(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-8) > 1e-12 {
		t.Errorf("FisherRatio = %v, want 8", got)
	}
}

func TestFisherRatioDegenerate(t *testing.T) {
	// Identical constant values in both classes: ratio 0.
	got, err := FisherRatio([]float64{5, 5, 5, 5}, []int{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("constant feature F1 = %v, want 0", got)
	}
	// Distinct constants: perfect separation -> InverseCap.
	got, err = FisherRatio([]float64{1, 1, 9, 9}, []int{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got != InverseCap {
		t.Errorf("perfectly separated constants F1 = %v, want cap", got)
	}
}

func TestFisherRatioOrdering(t *testing.T) {
	// Larger class gap must produce larger F1.
	xWeak, yWeak := separated(400, 0.5, 1)
	xStrong, yStrong := separated(400, 4, 1)
	weak, err := FisherRatio(xWeak, yWeak)
	if err != nil {
		t.Fatal(err)
	}
	strong, err := FisherRatio(xStrong, yStrong)
	if err != nil {
		t.Fatal(err)
	}
	if strong <= weak {
		t.Errorf("F1(strong)=%v should exceed F1(weak)=%v", strong, weak)
	}
}

func TestOverlapVolume(t *testing.T) {
	tests := []struct {
		name string
		x    []float64
		y    []int
		want float64
	}{
		// class0 range [0,10], class1 range [5,15]: overlap 5, union 15.
		{"partial", []float64{0, 10, 5, 15}, []int{0, 0, 1, 1}, 1.0 / 3},
		// Disjoint ranges: no overlap.
		{"disjoint", []float64{0, 1, 5, 6}, []int{0, 0, 1, 1}, 0},
		// Identical ranges: full overlap.
		{"identical", []float64{0, 10, 0, 10}, []int{0, 0, 1, 1}, 1},
		// Coincident points.
		{"points", []float64{3, 3, 3, 3}, []int{0, 0, 1, 1}, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := OverlapVolume(tt.x, tt.y)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("OverlapVolume = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestFeatureEfficiency(t *testing.T) {
	// class0 = {0,1,2,3}, class1 = {2,3,4,5}: overlap [2,3] contains
	// 4 of 8 samples -> efficiency 0.5.
	x := []float64{0, 1, 2, 3, 2, 3, 4, 5}
	y := []int{0, 0, 0, 0, 1, 1, 1, 1}
	got, err := FeatureEfficiency(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.5) > 1e-12 {
		t.Errorf("FeatureEfficiency = %v, want 0.5", got)
	}
	// Disjoint: efficiency 1.
	got, err = FeatureEfficiency([]float64{0, 1, 5, 6}, []int{0, 0, 1, 1})
	if err != nil || got != 1 {
		t.Errorf("disjoint efficiency = (%v, %v), want (1, nil)", got, err)
	}
	// Total overlap of identical constants: efficiency 0.
	got, err = FeatureEfficiency([]float64{2, 2, 2, 2}, []int{0, 0, 1, 1})
	if err != nil || got != 0 {
		t.Errorf("constant efficiency = (%v, %v), want (0, nil)", got, err)
	}
}

func TestMeasureErrors(t *testing.T) {
	type fn func([]float64, []int) (float64, error)
	for name, f := range map[string]fn{
		"F1": FisherRatio, "F2": OverlapVolume, "F3": FeatureEfficiency, "F": Ensemble,
	} {
		if _, err := f(nil, nil); !errors.Is(err, ErrEmptyInput) {
			t.Errorf("%s(empty) error = %v", name, err)
		}
		if _, err := f([]float64{1}, []int{0, 1}); !errors.Is(err, ErrLengthMismatch) {
			t.Errorf("%s(mismatch) error = %v", name, err)
		}
		if _, err := f([]float64{1, 2}, []int{1, 1}); !errors.Is(err, ErrSingleClass) {
			t.Errorf("%s(single class) error = %v", name, err)
		}
	}
}

func TestEnsembleOrdering(t *testing.T) {
	// The ensemble must rate a strongly separating feature simpler
	// (lower F) than noise.
	xGood, yv := separated(600, 5, 2)
	xNoise := make([]float64, len(xGood))
	rng := rand.New(rand.NewSource(3))
	for i := range xNoise {
		xNoise[i] = rng.NormFloat64()
	}
	good, err := Ensemble(xGood, yv)
	if err != nil {
		t.Fatal(err)
	}
	noise, err := Ensemble(xNoise, yv)
	if err != nil {
		t.Fatal(err)
	}
	if good >= noise {
		t.Errorf("Ensemble(good)=%v should be below Ensemble(noise)=%v", good, noise)
	}
}

func TestEnsembleBounded(t *testing.T) {
	// With the inverse cap, F <= (cap + 1 + cap)/3.
	x, y := separated(100, 0, 4)
	f, err := Ensemble(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if f > (2*InverseCap+1)/3 {
		t.Errorf("Ensemble exceeded cap bound: %v", f)
	}
	if f < 0 {
		t.Errorf("Ensemble negative: %v", f)
	}
}

func TestAutoCutoffStopsAtTrivialBoundary(t *testing.T) {
	// 20 features: first 10 simple (F ~ 0.4), last 10 trivial (F ~ 60,
	// the blow-up an uninformative feature produces via 1/F1).
	fs := make([]float64, 20)
	for i := range fs {
		if i < 10 {
			fs[i] = 0.4
		} else {
			fs[i] = 60
		}
	}
	n, err := AutoCutoff(fs, DefaultCutoffConfig())
	if err != nil {
		t.Fatal(err)
	}
	if n < 8 || n > 12 {
		t.Errorf("cutoff = %d, want near the 10-feature boundary", n)
	}
}

func TestAutoCutoffAllSimple(t *testing.T) {
	// Uniformly simple features: the scan should keep most of them.
	fs := make([]float64, 16)
	for i := range fs {
		fs[i] = 0.35
	}
	n, err := AutoCutoff(fs, DefaultCutoffConfig())
	if err != nil {
		t.Fatal(err)
	}
	if n < 12 {
		t.Errorf("cutoff over uniform simple features = %d, want most of 16", n)
	}
}

func TestAutoCutoffWarmStartFloor(t *testing.T) {
	// Even if every feature is terrible, at least the warm-start count
	// is selected.
	fs := []float64{80, 80, 80, 80, 80, 80, 80, 80}
	n, err := AutoCutoff(fs, DefaultCutoffConfig())
	if err != nil {
		t.Fatal(err)
	}
	warm := int(math.Ceil(math.Log2(8)))
	if n < warm {
		t.Errorf("cutoff = %d, want >= warm start %d", n, warm)
	}
}

func TestAutoCutoffBounds(t *testing.T) {
	if _, err := AutoCutoff(nil, DefaultCutoffConfig()); !errors.Is(err, ErrEmptyInput) {
		t.Errorf("empty cutoff error = %v", err)
	}
	n, err := AutoCutoff([]float64{0.2}, DefaultCutoffConfig())
	if err != nil || n != 1 {
		t.Errorf("single-feature cutoff = (%d, %v), want (1, nil)", n, err)
	}
	// MinFeatures override.
	fs := []float64{1, 1, 1, 1, 1, 1}
	n, err = AutoCutoff(fs, CutoffConfig{Alpha: 0.75, MinFeatures: 5})
	if err != nil {
		t.Fatal(err)
	}
	if n < 5 {
		t.Errorf("MinFeatures=5 cutoff = %d", n)
	}
	// MinFeatures above the feature count clamps.
	n, err = AutoCutoff([]float64{1, 1}, CutoffConfig{MinFeatures: 10})
	if err != nil || n != 2 {
		t.Errorf("clamped cutoff = (%d, %v), want (2, nil)", n, err)
	}
}

func TestAutoCutoffMonotoneInComplexity(t *testing.T) {
	// Making the tail more complex must not increase the cutoff.
	base := []float64{0.3, 0.3, 0.3, 0.3, 1, 1, 1, 1, 1, 1, 1, 1}
	harder := append([]float64(nil), base...)
	for i := 4; i < len(harder); i++ {
		harder[i] = 90
	}
	nBase, err := AutoCutoff(base, DefaultCutoffConfig())
	if err != nil {
		t.Fatal(err)
	}
	nHarder, err := AutoCutoff(harder, DefaultCutoffConfig())
	if err != nil {
		t.Fatal(err)
	}
	if nHarder > nBase {
		t.Errorf("harder tail selected more features: %d > %d", nHarder, nBase)
	}
}

func TestFeatureComplexities(t *testing.T) {
	xGood, y := separated(200, 4, 5)
	xBad := make([]float64, len(xGood))
	rng := rand.New(rand.NewSource(6))
	for i := range xBad {
		xBad[i] = rng.NormFloat64()
	}
	fs, err := FeatureComplexities([][]float64{xGood, xBad}, y)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 2 || fs[0] >= fs[1] {
		t.Errorf("FeatureComplexities = %v, want good < bad", fs)
	}
	if _, err := FeatureComplexities([][]float64{{1, 2}}, []int{1, 1}); err == nil {
		t.Error("single-class columns should fail")
	}
}

func TestCapInv(t *testing.T) {
	if capInv(0) != InverseCap || capInv(-1) != InverseCap {
		t.Error("non-positive capInv should hit cap")
	}
	if capInv(1e-9) != InverseCap {
		t.Error("tiny capInv should hit cap")
	}
	if capInv(2) != 0.5 {
		t.Error("capInv(2) should be 0.5")
	}
}

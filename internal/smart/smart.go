// Package smart defines the SMART attribute catalog and the drive-model
// specifications used throughout the repository. It encodes Table I
// (attribute availability per drive model) and the fleet-level statistics
// of Table II of the WEFR paper (DSN 2021), and it establishes the naming
// convention for learning features: each SMART attribute contributes a
// raw value ("<ATTR>_R") and a normalized value ("<ATTR>_N").
package smart

import (
	"errors"
	"fmt"
	"sort"
)

// AttrID identifies one of the 22 SMART attributes in the dataset.
type AttrID int

// The 22 SMART attributes of Table I. Enum values start at 1 so the zero
// value is invalid and accidental zero-initialization is detectable.
const (
	RER  AttrID = iota + 1 // Raw Read Error Rate
	RSC                    // Reallocated Sectors Count
	POH                    // Power-On Hours
	PCC                    // Power Cycle Count
	PFC                    // Program Fail Count
	EFC                    // Erase Fail Count
	MWI                    // Media Wearout Indicator
	PLP                    // Power Loss Protection Failure
	UPL                    // Unexpected Power Loss Count
	ARS                    // Available Reserved Space
	DEC                    // Downshift Error Count
	ETE                    // End-to-End Error
	UCE                    // Reported Uncorrectable Errors
	CMDT                   // Command Timeout
	ET                     // Enclosure Temperature
	AFT                    // Airflow Temperature
	REC                    // Reallocated Event Count
	PSC                    // Current Pending Sector Count
	OCE                    // Offline Scan Uncorrectable Error
	CEC                    // UDMA CRC Error Count
	TLW                    // Total LBAs Written
	TLR                    // Total LBAs Read

	numAttrs = int(TLR)
)

// attrNames maps AttrID to the short names used in the paper.
var attrNames = [...]string{
	RER: "RER", RSC: "RSC", POH: "POH", PCC: "PCC", PFC: "PFC",
	EFC: "EFC", MWI: "MWI", PLP: "PLP", UPL: "UPL", ARS: "ARS",
	DEC: "DEC", ETE: "ETE", UCE: "UCE", CMDT: "CMDT", ET: "ET",
	AFT: "AFT", REC: "REC", PSC: "PSC", OCE: "OCE", CEC: "CEC",
	TLW: "TLW", TLR: "TLR",
}

// attrLongNames maps AttrID to the full SMART attribute names of Table I.
var attrLongNames = [...]string{
	RER: "Raw Read Error Rate", RSC: "Reallocated Sectors Count",
	POH: "Power-On Hours", PCC: "Power Cycle Count",
	PFC: "Program Fail Count", EFC: "Erase Fail Count",
	MWI: "Media Wearout Indicator", PLP: "Power Loss Protection Failure",
	UPL: "Unexpected Power Loss Count", ARS: "Available Reserved Space",
	DEC: "Downshift Error Count", ETE: "End-to-End error",
	UCE: "Reported Uncorrectable Errors", CMDT: "Command Timeout",
	ET: "Enclosure Temperature", AFT: "Airflow Temperature",
	REC: "Reallocated Event Count", PSC: "Current Pending Sector Count",
	OCE: "Offline Scan Uncorrectable Error", CEC: "UDMA CRC Error Count",
	TLW: "Total LBAs Written", TLR: "Total LBAs Read",
}

// String returns the short attribute name (e.g. "MWI").
func (a AttrID) String() string {
	if !a.Valid() {
		return fmt.Sprintf("AttrID(%d)", int(a))
	}
	return attrNames[a]
}

// LongName returns the full attribute name from Table I.
func (a AttrID) LongName() string {
	if !a.Valid() {
		return fmt.Sprintf("AttrID(%d)", int(a))
	}
	return attrLongNames[a]
}

// Valid reports whether a names one of the 22 catalog attributes.
func (a AttrID) Valid() bool { return a >= RER && a <= TLR }

// AllAttrs returns the catalog attribute IDs in declaration order.
func AllAttrs() []AttrID {
	out := make([]AttrID, 0, numAttrs)
	for a := RER; a <= TLR; a++ {
		out = append(out, a)
	}
	return out
}

// ParseAttr resolves a short attribute name (e.g. "MWI") to its AttrID.
func ParseAttr(name string) (AttrID, error) {
	for a := RER; a <= TLR; a++ {
		if attrNames[a] == name {
			return a, nil
		}
	}
	return 0, fmt.Errorf("smart: unknown attribute %q", name)
}

// Kind distinguishes the raw and normalized value of a SMART attribute.
type Kind int

// Feature value kinds. SMART reports every attribute twice: the raw
// counter and a vendor-normalized health value.
const (
	Raw Kind = iota + 1
	Normalized
)

// String returns the suffix convention used in the paper ("R" or "N").
func (k Kind) String() string {
	switch k {
	case Raw:
		return "R"
	case Normalized:
		return "N"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Feature identifies one learning feature: the raw or normalized value
// of one SMART attribute.
type Feature struct {
	Attr AttrID
	Kind Kind
}

// String returns the paper's feature naming convention, e.g. "MWI_N".
func (f Feature) String() string { return f.Attr.String() + "_" + f.Kind.String() }

// ParseFeature parses a feature name of the form "<ATTR>_<R|N>".
func ParseFeature(name string) (Feature, error) {
	if len(name) < 3 || name[len(name)-2] != '_' {
		return Feature{}, fmt.Errorf("smart: malformed feature name %q", name)
	}
	attr, err := ParseAttr(name[:len(name)-2])
	if err != nil {
		return Feature{}, err
	}
	switch name[len(name)-1] {
	case 'R':
		return Feature{Attr: attr, Kind: Raw}, nil
	case 'N':
		return Feature{Attr: attr, Kind: Normalized}, nil
	default:
		return Feature{}, fmt.Errorf("smart: malformed feature kind in %q", name)
	}
}

// ModelID identifies one of the six drive models in the dataset.
type ModelID int

// The six drive models: two each from vendors MA, MB, MC.
const (
	MA1 ModelID = iota + 1
	MA2
	MB1
	MB2
	MC1
	MC2

	numModels = int(MC2)
)

var modelNames = [...]string{
	MA1: "MA1", MA2: "MA2", MB1: "MB1", MB2: "MB2", MC1: "MC1", MC2: "MC2",
}

// String returns the model name used in the paper (e.g. "MC1").
func (m ModelID) String() string {
	if !m.Valid() {
		return fmt.Sprintf("ModelID(%d)", int(m))
	}
	return modelNames[m]
}

// Valid reports whether m names one of the six dataset models.
func (m ModelID) Valid() bool { return m >= MA1 && m <= MC2 }

// Vendor returns the vendor prefix ("MA", "MB", or "MC").
func (m ModelID) Vendor() string {
	if !m.Valid() {
		return "??"
	}
	return modelNames[m][:2]
}

// AllModels returns the six model IDs in declaration order.
func AllModels() []ModelID {
	return []ModelID{MA1, MA2, MB1, MB2, MC1, MC2}
}

// ParseModel resolves a model name (e.g. "MC1") to its ModelID.
func ParseModel(name string) (ModelID, error) {
	for _, m := range AllModels() {
		if modelNames[m] == name {
			return m, nil
		}
	}
	return 0, fmt.Errorf("smart: unknown drive model %q", name)
}

// FlashTech is the NAND flash technology of a drive model.
type FlashTech int

// Flash technologies present in the dataset.
const (
	MLC FlashTech = iota + 1
	TLC
)

// String returns "MLC" or "TLC".
func (f FlashTech) String() string {
	switch f {
	case MLC:
		return "MLC"
	case TLC:
		return "TLC"
	default:
		return fmt.Sprintf("FlashTech(%d)", int(f))
	}
}

// Spec describes one drive model: which SMART attributes it reports
// (Table I) and the fleet-level statistics the paper gives for it
// (Table II). FleetShare and FailureShare are fractions of the whole
// six-model population; TargetAFR is the paper's annualized failure rate
// and is used by the simulator to calibrate failure intensity.
type Spec struct {
	Model        ModelID
	Flash        FlashTech
	Attrs        map[AttrID]bool
	FleetShare   float64 // fraction of the SSD population (Table II "Total%")
	FailureShare float64 // fraction of all failures (Table II "Failures%")
	TargetAFR    float64 // annualized failure rate, fraction (Table II "AFR")
}

// ErrUnknownModel is returned by SpecOf for an invalid ModelID.
var ErrUnknownModel = errors.New("smart: unknown drive model")

// attrSet builds an availability set from a list of present attributes.
func attrSet(present ...AttrID) map[AttrID]bool {
	m := make(map[AttrID]bool, len(present))
	for _, a := range present {
		m[a] = true
	}
	return m
}

// specs encodes Tables I and II. The availability matrix follows Table I
// exactly: a ✓ in the table maps to membership in Attrs.
var specs = map[ModelID]Spec{
	MA1: {
		Model: MA1, Flash: MLC,
		Attrs: attrSet(RSC, POH, PCC, PFC, EFC, MWI, PLP, UPL, ARS, ETE,
			UCE, CMDT, ET, AFT, REC, PSC, OCE, CEC),
		FleetShare: 0.100, FailureShare: 0.209, TargetAFR: 0.0236,
	},
	MA2: {
		Model: MA2, Flash: MLC,
		Attrs: attrSet(RSC, POH, PCC, PFC, EFC, MWI, PLP, UPL, ARS, DEC,
			ETE, UCE, ET, AFT, PSC, CEC, TLW, TLR),
		FleetShare: 0.257, FailureShare: 0.085, TargetAFR: 0.0046,
	},
	MB1: {
		Model: MB1, Flash: MLC,
		Attrs: attrSet(RSC, POH, PCC, PFC, EFC, MWI, ARS, DEC, ETE, UCE,
			ET, AFT, PSC, CEC, TLW, TLR),
		FleetShare: 0.089, FailureShare: 0.157, TargetAFR: 0.0252,
	},
	MB2: {
		Model: MB2, Flash: MLC,
		Attrs: attrSet(RSC, POH, PCC, PFC, EFC, MWI, ARS, DEC, ETE, UCE,
			ET, AFT, PSC, CEC),
		FleetShare: 0.104, FailureShare: 0.060, TargetAFR: 0.0071,
	},
	MC1: {
		Model: MC1, Flash: TLC,
		Attrs: attrSet(RER, RSC, POH, PCC, PFC, EFC, MWI, UPL, ARS, DEC,
			ETE, UCE, CMDT, ET, AFT, REC, PSC, OCE, CEC),
		FleetShare: 0.404, FailureShare: 0.378, TargetAFR: 0.0329,
	},
	MC2: {
		Model: MC2, Flash: TLC,
		Attrs: attrSet(RER, RSC, POH, PCC, PFC, EFC, MWI, UPL, ARS, DEC,
			ETE, UCE, CMDT, ET, AFT, REC, PSC, OCE, CEC),
		FleetShare: 0.046, FailureShare: 0.112, TargetAFR: 0.0392,
	},
}

// SpecOf returns the specification for a drive model. The returned Spec
// shares the internal availability map; callers must treat it as
// read-only (use Features or HasAttr for queries).
func SpecOf(m ModelID) (Spec, error) {
	s, ok := specs[m]
	if !ok {
		return Spec{}, fmt.Errorf("%w: %v", ErrUnknownModel, m)
	}
	return s, nil
}

// MustSpec is SpecOf for callers with a known-valid model; it panics on
// an invalid ID, which indicates a programming error.
func MustSpec(m ModelID) Spec {
	s, err := SpecOf(m)
	if err != nil {
		panic(err)
	}
	return s
}

// HasAttr reports whether the model reports the given attribute.
func (s Spec) HasAttr(a AttrID) bool { return s.Attrs[a] }

// AttrList returns the model's available attributes in catalog order.
func (s Spec) AttrList() []AttrID {
	out := make([]AttrID, 0, len(s.Attrs))
	for a := range s.Attrs {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Features returns the model's learning features — a raw and a
// normalized feature per available attribute — in catalog order.
func (s Spec) Features() []Feature {
	attrs := s.AttrList()
	out := make([]Feature, 0, 2*len(attrs))
	for _, a := range attrs {
		out = append(out, Feature{Attr: a, Kind: Raw}, Feature{Attr: a, Kind: Normalized})
	}
	return out
}

// FeatureNames returns Features rendered as strings ("RSC_R", "RSC_N", ...).
func (s Spec) FeatureNames() []string {
	fs := s.Features()
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = f.String()
	}
	return out
}

package smart

import (
	"errors"
	"testing"
)

func TestAttrNames(t *testing.T) {
	if got := MWI.String(); got != "MWI" {
		t.Errorf("MWI.String() = %q", got)
	}
	if got := MWI.LongName(); got != "Media Wearout Indicator" {
		t.Errorf("MWI.LongName() = %q", got)
	}
	if got := AttrID(0).String(); got != "AttrID(0)" {
		t.Errorf("invalid AttrID String = %q", got)
	}
}

func TestAllAttrsComplete(t *testing.T) {
	attrs := AllAttrs()
	if len(attrs) != 22 {
		t.Fatalf("AllAttrs len = %d, want 22 (Table I)", len(attrs))
	}
	seen := map[string]bool{}
	for _, a := range attrs {
		if !a.Valid() {
			t.Errorf("invalid attr in AllAttrs: %v", a)
		}
		if seen[a.String()] {
			t.Errorf("duplicate attr name %v", a)
		}
		seen[a.String()] = true
		if a.LongName() == "" {
			t.Errorf("attr %v has empty long name", a)
		}
	}
}

func TestParseAttrRoundTrip(t *testing.T) {
	for _, a := range AllAttrs() {
		got, err := ParseAttr(a.String())
		if err != nil {
			t.Fatalf("ParseAttr(%q): %v", a.String(), err)
		}
		if got != a {
			t.Errorf("ParseAttr(%q) = %v, want %v", a.String(), got, a)
		}
	}
	if _, err := ParseAttr("BOGUS"); err == nil {
		t.Error("ParseAttr(BOGUS) should fail")
	}
}

func TestFeatureString(t *testing.T) {
	f := Feature{Attr: UCE, Kind: Raw}
	if f.String() != "UCE_R" {
		t.Errorf("Feature.String() = %q, want UCE_R", f.String())
	}
	f = Feature{Attr: MWI, Kind: Normalized}
	if f.String() != "MWI_N" {
		t.Errorf("Feature.String() = %q, want MWI_N", f.String())
	}
}

func TestParseFeatureRoundTrip(t *testing.T) {
	for _, a := range AllAttrs() {
		for _, k := range []Kind{Raw, Normalized} {
			f := Feature{Attr: a, Kind: k}
			got, err := ParseFeature(f.String())
			if err != nil {
				t.Fatalf("ParseFeature(%q): %v", f.String(), err)
			}
			if got != f {
				t.Errorf("ParseFeature(%q) = %v, want %v", f.String(), got, f)
			}
		}
	}
}

func TestParseFeatureErrors(t *testing.T) {
	for _, bad := range []string{"", "X", "MWI", "MWI_X", "MWI-N", "BOGUS_R"} {
		if _, err := ParseFeature(bad); err == nil {
			t.Errorf("ParseFeature(%q) should fail", bad)
		}
	}
}

func TestAllModels(t *testing.T) {
	models := AllModels()
	if len(models) != 6 {
		t.Fatalf("AllModels len = %d, want 6", len(models))
	}
	wantVendors := map[string]int{"MA": 2, "MB": 2, "MC": 2}
	got := map[string]int{}
	for _, m := range models {
		got[m.Vendor()]++
	}
	for v, n := range wantVendors {
		if got[v] != n {
			t.Errorf("vendor %s count = %d, want %d", v, got[v], n)
		}
	}
}

func TestParseModel(t *testing.T) {
	for _, m := range AllModels() {
		got, err := ParseModel(m.String())
		if err != nil || got != m {
			t.Errorf("ParseModel(%q) = (%v, %v), want (%v, nil)", m.String(), got, err, m)
		}
	}
	if _, err := ParseModel("MZ9"); err == nil {
		t.Error("ParseModel(MZ9) should fail")
	}
}

func TestSpecOfUnknown(t *testing.T) {
	if _, err := SpecOf(ModelID(99)); !errors.Is(err, ErrUnknownModel) {
		t.Errorf("SpecOf(99) error = %v, want ErrUnknownModel", err)
	}
}

func TestMustSpecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustSpec(invalid) should panic")
		}
	}()
	MustSpec(ModelID(0))
}

// TestTableIAvailability spot-checks the availability matrix against
// Table I of the paper.
func TestTableIAvailability(t *testing.T) {
	tests := []struct {
		model ModelID
		attr  AttrID
		want  bool
	}{
		{MA1, RER, false}, // RER ✗ for MA1
		{MC1, RER, true},  // RER ✓ for MC1
		{MA1, PLP, true},  // PLP ✓ for MA vendor only
		{MB1, PLP, false},
		{MC1, PLP, false},
		{MA1, DEC, false}, // DEC ✗ for MA1, ✓ for MA2
		{MA2, DEC, true},
		{MA1, CMDT, true}, // CMDT ✓ MA1, ✗ MA2/MB
		{MA2, CMDT, false},
		{MB2, CMDT, false},
		{MC2, CMDT, true},
		{MA2, TLW, true}, // TLW ✓ only MA2, MB1
		{MB1, TLW, true},
		{MB2, TLW, false},
		{MC1, TLW, false},
		{MA1, UPL, true},
		{MB1, UPL, false},
		{MC1, UPL, true},
		{MA1, REC, true},
		{MA2, REC, false},
		{MC2, REC, true},
		{MA1, OCE, true},
		{MB1, OCE, false},
		{MC1, OCE, true},
	}
	for _, tt := range tests {
		spec := MustSpec(tt.model)
		if got := spec.HasAttr(tt.attr); got != tt.want {
			t.Errorf("%v.HasAttr(%v) = %v, want %v", tt.model, tt.attr, got, tt.want)
		}
	}
}

// TestUniversalAttrs verifies attributes Table I marks present for every
// model.
func TestUniversalAttrs(t *testing.T) {
	universal := []AttrID{RSC, POH, PCC, EFC, MWI, UCE, ET, AFT, PSC, CEC}
	for _, m := range AllModels() {
		spec := MustSpec(m)
		for _, a := range universal {
			if !spec.HasAttr(a) {
				t.Errorf("%v should report %v per Table I", m, a)
			}
		}
	}
}

// TestTableIIStatistics verifies the fleet statistics encode Table II.
func TestTableIIStatistics(t *testing.T) {
	tests := []struct {
		model ModelID
		flash FlashTech
		share float64
		afr   float64
	}{
		{MA1, MLC, 0.100, 0.0236},
		{MA2, MLC, 0.257, 0.0046},
		{MB1, MLC, 0.089, 0.0252},
		{MB2, MLC, 0.104, 0.0071},
		{MC1, TLC, 0.404, 0.0329},
		{MC2, TLC, 0.046, 0.0392},
	}
	for _, tt := range tests {
		spec := MustSpec(tt.model)
		if spec.Flash != tt.flash {
			t.Errorf("%v flash = %v, want %v", tt.model, spec.Flash, tt.flash)
		}
		if spec.FleetShare != tt.share {
			t.Errorf("%v fleet share = %v, want %v", tt.model, spec.FleetShare, tt.share)
		}
		if spec.TargetAFR != tt.afr {
			t.Errorf("%v AFR = %v, want %v", tt.model, spec.TargetAFR, tt.afr)
		}
	}
}

func TestFleetSharesSumToOne(t *testing.T) {
	var total, failures float64
	for _, m := range AllModels() {
		spec := MustSpec(m)
		total += spec.FleetShare
		failures += spec.FailureShare
	}
	if total < 0.99 || total > 1.01 {
		t.Errorf("fleet shares sum = %v, want ~1.0", total)
	}
	if failures < 0.99 || failures > 1.02 {
		t.Errorf("failure shares sum = %v, want ~1.0", failures)
	}
}

func TestTLCHigherAFRThanMLC(t *testing.T) {
	// Paper: "The AFRs of TLC SSDs are higher than that of MLC SSDs."
	var maxMLC, minTLC float64 = 0, 1
	for _, m := range AllModels() {
		spec := MustSpec(m)
		switch spec.Flash {
		case MLC:
			if spec.TargetAFR > maxMLC {
				maxMLC = spec.TargetAFR
			}
		case TLC:
			if spec.TargetAFR < minTLC {
				minTLC = spec.TargetAFR
			}
		}
	}
	if minTLC <= maxMLC {
		t.Errorf("TLC min AFR %v should exceed MLC max AFR %v", minTLC, maxMLC)
	}
}

func TestFeaturesTwicePerAttr(t *testing.T) {
	for _, m := range AllModels() {
		spec := MustSpec(m)
		feats := spec.Features()
		if len(feats) != 2*len(spec.Attrs) {
			t.Errorf("%v: features = %d, want %d", m, len(feats), 2*len(spec.Attrs))
		}
		names := spec.FeatureNames()
		if len(names) != len(feats) {
			t.Fatalf("%v: name count mismatch", m)
		}
		seen := map[string]bool{}
		for _, n := range names {
			if seen[n] {
				t.Errorf("%v: duplicate feature %q", m, n)
			}
			seen[n] = true
		}
	}
}

func TestAttrListSorted(t *testing.T) {
	for _, m := range AllModels() {
		attrs := MustSpec(m).AttrList()
		for i := 1; i < len(attrs); i++ {
			if attrs[i] <= attrs[i-1] {
				t.Errorf("%v AttrList not strictly sorted at %d", m, i)
			}
		}
	}
}

func TestKindString(t *testing.T) {
	if Raw.String() != "R" || Normalized.String() != "N" {
		t.Error("Kind String mismatch")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Error("invalid Kind String mismatch")
	}
}

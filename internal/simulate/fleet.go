// Package simulate generates a synthetic SSD fleet standing in for the
// Alibaba production dataset the WEFR paper evaluates on (nearly 500 K
// SSDs over 24 months; the release is not bundled here). The simulator
// reproduces the dataset's *structures* rather than its bytes: six
// drive models with the attribute availability of Table I, fleet shares
// and annualized failure rates of Table II, per-model failure-signature
// attributes mirroring Table III, wear-out-dependent signal shifts
// (Table V), and the survival-vs-MWI_N curve shapes of Figure 1
// (including MC2's early-firmware failure bump).
//
// Drive trajectories are generated lazily and deterministically: the
// fleet stores only per-drive parameters, and Series regenerates a
// drive's full daily SMART log on demand from a per-drive seed, so a
// large fleet costs O(drives) memory rather than O(drives x days).
package simulate

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/smart"
)

// Errors returned by the simulator.
var (
	// ErrBadConfig indicates an invalid fleet configuration.
	ErrBadConfig = errors.New("simulate: bad config")
)

// DefaultDays is the paper's observation span: 24 months of daily logs.
const DefaultDays = 730

// AgeWearFactor converts a drive's age at day 0 into pre-dataset wear
// days: drives were less busy before entering these data centers.
const AgeWearFactor = 0.25

// SuddenFailFraction is the share of defect failures that die with no
// SMART warning ramp; such failures are unpredictable and bound the
// achievable recall, as the paper's modest recall numbers reflect.
const SuddenFailFraction = 0.2

// ScareFraction is the share of surviving drives that emit one benign
// degradation-like burst episode, pressuring precision.
const ScareFraction = 0.15

// PredictionWindow is the look-ahead horizon in days: a sample is
// positive when the drive fails within this many days (Section II-B).
const PredictionWindow = 30

// Archetype classifies a drive's two-year fate.
type Archetype int

// Drive archetypes. Healthy drives survive the dataset; ScareHealthy
// drives survive but emit one benign error burst (false-positive
// fodder); the three failure archetypes differ in what drives the
// failure and therefore which attributes carry the signal.
const (
	Healthy Archetype = iota + 1
	ScareHealthy
	DefectFail
	WearFail
	FirmwareFail
)

// String returns a human-readable archetype name.
func (a Archetype) String() string {
	switch a {
	case Healthy:
		return "healthy"
	case ScareHealthy:
		return "scare-healthy"
	case DefectFail:
		return "defect-fail"
	case WearFail:
		return "wear-fail"
	case FirmwareFail:
		return "firmware-fail"
	default:
		return fmt.Sprintf("Archetype(%d)", int(a))
	}
}

// Failed reports whether the archetype ends in a failure.
func (a Archetype) Failed() bool {
	return a == DefectFail || a == WearFail || a == FirmwareFail
}

// Drive describes one simulated SSD. All trajectory randomness derives
// from seed, so a Drive value fully determines its SMART series.
type Drive struct {
	// ID is unique across the fleet.
	ID int
	// Model is the drive model.
	Model smart.ModelID
	// Archetype is the drive's fate.
	Archetype Archetype
	// FailDay is the day the failure ticket is filed, or -1 for
	// drives healthy through the end of the dataset.
	FailDay int
	// WearRate is the MWI_N decline in points/day.
	WearRate float64
	// AgeDays is the drive's age at day 0 (affects POH).
	AgeDays int
	// ReadHeavy marks a read-dominated workload (affects TLR).
	ReadHeavy bool
	// Sudden marks a defect failure with no degradation ramp: the
	// drive dies without SMART warning, capping achievable recall as
	// in real deployments.
	Sudden bool
	seed   int64
}

// Failed reports whether the drive fails within the dataset.
func (d Drive) Failed() bool { return d.FailDay >= 0 }

// Config parameterizes fleet construction.
type Config struct {
	// TotalDrives is the fleet size across all six models, allocated
	// per model by the Table II fleet shares (minimum 40 per model).
	// Must be positive.
	TotalDrives int
	// Days is the dataset span in days; 0 means DefaultDays (730).
	Days int
	// Seed makes the fleet (and every drive series) deterministic.
	Seed int64
	// Models restricts the fleet to the given models; empty means all
	// six.
	Models []smart.ModelID
	// AFRScale multiplies every model's target AFR (useful to densify
	// failures in small test fleets); 0 means 1.
	AFRScale float64
}

func (c Config) withDefaults() (Config, error) {
	if c.TotalDrives <= 0 {
		return c, fmt.Errorf("%w: TotalDrives = %d", ErrBadConfig, c.TotalDrives)
	}
	if c.Days == 0 {
		c.Days = DefaultDays
	}
	if c.Days < 90 {
		return c, fmt.Errorf("%w: Days = %d, need >= 90", ErrBadConfig, c.Days)
	}
	if len(c.Models) == 0 {
		c.Models = smart.AllModels()
	}
	for _, m := range c.Models {
		if !m.Valid() {
			return c, fmt.Errorf("%w: invalid model %v", ErrBadConfig, m)
		}
	}
	if c.AFRScale == 0 {
		c.AFRScale = 1
	}
	if c.AFRScale < 0 {
		return c, fmt.Errorf("%w: AFRScale = %v", ErrBadConfig, c.AFRScale)
	}
	return c, nil
}

// Fleet is a constructed drive population. Drive series are generated
// on demand with Series.
type Fleet struct {
	cfg     Config
	drives  []Drive
	byModel map[smart.ModelID][]int
}

// New constructs a fleet: it allocates drives to models by fleet share,
// draws each model's failure count from its target AFR, assigns failure
// archetypes per the model parameters, and derives per-drive seeds.
func New(cfg Config) (*Fleet, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	f := &Fleet{cfg: cfg, byModel: make(map[smart.ModelID][]int)}

	// Normalize shares over the selected models.
	var shareSum float64
	for _, m := range cfg.Models {
		shareSum += smart.MustSpec(m).FleetShare
	}

	id := 0
	for _, m := range cfg.Models {
		spec := smart.MustSpec(m)
		n := int(math.Round(float64(cfg.TotalDrives) * spec.FleetShare / shareSum))
		if n < 40 {
			n = 40
		}
		p := paramsOf[m]

		// Two-year failure count from the annualized failure rate:
		// AFR ~ f / (2n) for a 730-day span.
		years := float64(cfg.Days) / 365
		nFail := int(math.Round(float64(n) * spec.TargetAFR * years * cfg.AFRScale))
		if nFail < 2 {
			nFail = 2
		}
		if nFail > n/3 {
			nFail = n / 3
		}
		nWear := int(math.Round(float64(nFail) * p.wearFailFrac))
		nFirm := int(math.Round(float64(nFail) * p.firmFailFrac))
		nDefect := nFail - nWear - nFirm

		for k := 0; k < n; k++ {
			d := Drive{ID: id, Model: m, FailDay: -1, seed: rng.Int63()}
			// Age is drawn first: the wear trajectory starts from the
			// wear the drive accumulated before the dataset began
			// (AgeWearDays), so wear rates must account for it.
			failed := k < nFail
			d.AgeDays = rng.Intn(250)
			if p.oldAgeFailBias && failed {
				d.AgeDays = 350 + rng.Intn(400)
			}
			ageWear := float64(d.AgeDays) * AgeWearFactor

			// cappedWear caps non-wear-failing drives' wear so they end
			// the dataset above roughly healthyMinMWI; wear failures
			// alone populate the region below, carving the survival
			// drop at the change point.
			cappedWear := func() float64 {
				rate := lognormal(rng, p.wearRateMean, p.wearRateSigma)
				cap := (100 - p.healthyMinMWI) / (float64(cfg.Days-1) + ageWear)
				if rate > cap {
					rate = cap * (0.8 + 0.2*rng.Float64())
				}
				return rate
			}
			switch {
			case k < nDefect:
				d.Archetype = DefectFail
				d.FailDay = 45 + rng.Intn(cfg.Days-45)
				d.WearRate = cappedWear()
				d.Sudden = rng.Float64() < SuddenFailFraction
			case k < nDefect+nWear:
				d.Archetype = WearFail
				// Pick the MWI level the drive fails at (below the
				// model's change point) and a fail day in the second
				// half, then derive the wear rate that gets it there.
				target := p.wearTargetLo + rng.Float64()*(p.wearTargetHi-p.wearTargetLo)
				d.FailDay = cfg.Days/2 + rng.Intn(cfg.Days/2)
				d.WearRate = (100 - target) / (float64(d.FailDay) + ageWear)
			case k < nFail:
				d.Archetype = FirmwareFail
				// Early-life failures on old firmware: first ~10
				// months, at still-high MWI (the Fig 1 MC2 bump).
				d.FailDay = 30 + rng.Intn(270)
				d.WearRate = cappedWear()
			default:
				if rng.Float64() < ScareFraction {
					d.Archetype = ScareHealthy
				} else {
					d.Archetype = Healthy
				}
				d.WearRate = cappedWear()
			}
			if p.readHeavyFailBias && d.Archetype.Failed() {
				d.ReadHeavy = true
			} else {
				d.ReadHeavy = rng.Float64() < 0.2
			}
			f.byModel[m] = append(f.byModel[m], id)
			f.drives = append(f.drives, d)
			id++
		}
		// Shuffle within the model so archetypes are not clustered by ID.
		idxs := f.byModel[m]
		rng.Shuffle(len(idxs), func(a, b int) {
			f.drives[idxs[a]], f.drives[idxs[b]] = f.drives[idxs[b]], f.drives[idxs[a]]
			f.drives[idxs[a]].ID, f.drives[idxs[b]].ID = idxs[a], idxs[b]
		})
	}
	return f, nil
}

// Days returns the dataset span in days.
func (f *Fleet) Days() int { return f.cfg.Days }

// Models returns the models present in the fleet.
func (f *Fleet) Models() []smart.ModelID { return f.cfg.Models }

// NumDrives returns the total drive count.
func (f *Fleet) NumDrives() int { return len(f.drives) }

// Drive returns the drive with the given ID.
func (f *Fleet) Drive(id int) (Drive, error) {
	if id < 0 || id >= len(f.drives) {
		return Drive{}, fmt.Errorf("simulate: drive %d out of range [0, %d)", id, len(f.drives))
	}
	return f.drives[id], nil
}

// DrivesOf returns the drives of one model. The returned slice is
// freshly allocated.
func (f *Fleet) DrivesOf(m smart.ModelID) []Drive {
	idxs := f.byModel[m]
	out := make([]Drive, len(idxs))
	for i, id := range idxs {
		out[i] = f.drives[id]
	}
	return out
}

// Failures returns the failed drives of one model, sorted by fail day.
func (f *Fleet) Failures(m smart.ModelID) []Drive {
	var out []Drive
	for _, id := range f.byModel[m] {
		if f.drives[id].Failed() {
			out = append(out, f.drives[id])
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].FailDay < out[j-1].FailDay; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// AFR computes the realized annualized failure rate of one model:
// failures * 365 / total drive-days, as defined in Section II-A.
func (f *Fleet) AFR(m smart.ModelID) float64 {
	var fails int
	var driveDays int
	for _, id := range f.byModel[m] {
		d := f.drives[id]
		if d.Failed() {
			fails++
			driveDays += d.FailDay + 1
		} else {
			driveDays += f.cfg.Days
		}
	}
	if driveDays == 0 {
		return 0
	}
	return float64(fails) * 365 / float64(driveDays)
}

// lognormal draws a lognormal value with the given median and sigma of
// the underlying normal.
func lognormal(rng *rand.Rand, median, sigma float64) float64 {
	return median * math.Exp(rng.NormFloat64()*sigma)
}

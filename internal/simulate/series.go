package simulate

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/smart"
)

// Series is one drive's daily SMART log from day 0 through LastDay
// (inclusive): the day the drive failed, or the end of the dataset.
// Every feature column has length LastDay+1.
type Series struct {
	// Drive is the drive the series belongs to.
	Drive Drive
	// LastDay is the final observed day (inclusive).
	LastDay int
	cols    map[smart.Feature][]float64
}

// Col returns the daily values of one learning feature, or nil when
// the drive model does not report the attribute. The returned slice is
// shared; treat it as read-only.
func (s *Series) Col(ft smart.Feature) []float64 { return s.cols[ft] }

// Features returns the features present in the series (catalog order).
func (s *Series) Features() []smart.Feature {
	return smart.MustSpec(s.Drive.Model).Features()
}

// MWIAt returns the drive's MWI_N on the given day.
func (s *Series) MWIAt(day int) float64 {
	return s.cols[smart.Feature{Attr: smart.MWI, Kind: smart.Normalized}][day]
}

// counterAttrs are the cumulative error-counter attributes.
var counterAttrs = map[smart.AttrID]bool{
	smart.RER: true, smart.RSC: true, smart.PFC: true, smart.EFC: true,
	smart.UPL: true, smart.DEC: true, smart.ETE: true, smart.UCE: true,
	smart.CMDT: true, smart.REC: true, smart.PSC: true, smart.OCE: true,
	smart.CEC: true, smart.PLP: true,
}

// slabArena hands out column-sized float64 slices carved from large
// shared blocks. A drive's series holds dozens of columns; carving
// them from one slab (or, for batch generation, per-worker multi-drive
// blocks) cuts the live heap object count — and with it GC mark work —
// by more than an order of magnitude versus one allocation per column.
// Blocks are retained: reset makes every block available again, so a
// long-lived arena regenerates a fleet's series with no fresh heap.
type slabArena struct {
	blocks [][]float64 // every block ever allocated, reusable after reset
	next   int         // blocks[next:] are unused since the last reset
	free   []float64   // remaining space of the block being carved
}

// arenaBlock is the batch-generation block size: 256 Ki floats (2 MiB),
// large enough that a worker allocates ~one object per 15 drives.
const arenaBlock = 1 << 18

func (a *slabArena) alloc(n int) []float64 {
	if len(a.free) < n {
		if a.next < len(a.blocks) && len(a.blocks[a.next]) >= n {
			a.free = a.blocks[a.next]
		} else {
			sz := arenaBlock
			if n > sz {
				sz = n
			}
			a.free = make([]float64, sz)
			if a.next < len(a.blocks) {
				a.blocks[a.next] = a.free
			} else {
				a.blocks = append(a.blocks, a.free)
			}
		}
		a.next++
	}
	s := a.free[:n:n]
	a.free = a.free[n:]
	return s
}

// reset makes every retained block available for carving again. Slices
// previously handed out alias those blocks and are overwritten by
// subsequent allocs.
func (a *slabArena) reset() {
	a.next = 0
	a.free = nil
}

// Series generates the drive's full daily trajectory deterministically
// from the drive's seed. Calling it twice returns equal data.
func (f *Fleet) Series(d Drive) *Series {
	return f.series(d, nil, nil)
}

// series is Series with an optional shared arena for column storage
// (nil means a private exact-size slab: every attribute present in the
// model's spec yields a raw and a normalized column) and an optional
// prior Series whose struct and column map are recycled.
func (f *Fleet) series(d Drive, arena *slabArena, recycle *Series) *Series {
	p := paramsOf[d.Model]
	spec := smart.MustSpec(d.Model)

	lastDay := f.cfg.Days - 1
	if d.Failed() {
		lastDay = d.FailDay
	}
	n := lastDay + 1
	rng := rand.New(rand.NewSource(d.seed))

	if arena == nil {
		arena = &slabArena{free: make([]float64, 2*len(spec.AttrList())*n)}
	}
	alloc := func() []float64 { return arena.alloc(n) }

	var s *Series
	if recycle != nil && recycle.cols != nil {
		s = recycle
		s.Drive, s.LastDay = d, lastDay
		clear(s.cols)
	} else {
		s = &Series{Drive: d, LastDay: lastDay, cols: make(map[smart.Feature][]float64, 2*len(spec.Attrs))}
	}
	put := func(a smart.AttrID, k smart.Kind, v []float64) {
		s.cols[smart.Feature{Attr: a, Kind: k}] = v
	}

	// Signature strengths for this drive's fate.
	strength := make(map[smart.AttrID]float64)
	switch d.Archetype {
	case DefectFail:
		if d.Sudden {
			break // no warning ramp: the drive dies silently
		}
		for _, sa := range p.defectSig {
			strength[sa.attr] += sa.strength
		}
	case WearFail:
		for _, sa := range p.wearSig {
			strength[sa.attr] += sa.strength
		}
	case FirmwareFail:
		for _, sa := range p.firmSig {
			strength[sa.attr] += sa.strength
		}
	}
	trivial := make(map[smart.AttrID]bool, len(p.trivial))
	for _, a := range p.trivial {
		trivial[a] = true
	}
	// Scare-healthy drives bump the model's defect-signature attributes
	// at reduced strength — they look like early degradation but never
	// fail, providing false-positive pressure.
	scareStrength := make(map[smart.AttrID]float64)
	if d.Archetype == ScareHealthy {
		for _, sa := range p.defectSig {
			scareStrength[sa.attr] = sa.strength * 0.55
		}
	}

	// Degradation ramp window for failing drives.
	onset := -1
	if d.Failed() {
		// The warning ramp roughly spans the 30-day prediction window
		// (18-40 days); the shortest ramps leave early positive-labeled
		// days without symptoms, as in production SMART data.
		onset = d.FailDay - (18 + rng.Intn(23))
		if onset < 0 {
			onset = 0
		}
	}
	// One benign burst episode for scare-healthy drives.
	scareStart, scareEnd := -1, -1
	if d.Archetype == ScareHealthy && n > 60 {
		scareStart = rng.Intn(n - 45)
		scareEnd = scareStart + 40
	}

	// --- Wear state (MWI) ---
	ageWear := float64(d.AgeDays) * AgeWearFactor
	mwiN := alloc()
	mwiR := alloc()
	cycleBudget := 3000.0
	if spec.Flash == smart.TLC {
		cycleBudget = 1000
	}
	for t := 0; t < n; t++ {
		v := 100 - d.WearRate*(float64(t)+ageWear) + rng.NormFloat64()*0.2
		if v < 1 {
			v = 1
		}
		if v > 100 {
			v = 100
		}
		mwiN[t] = math.Floor(v)
		mwiR[t] = math.Floor((100 - mwiN[t]) * cycleBudget / 100)
	}
	put(smart.MWI, smart.Normalized, mwiN)
	put(smart.MWI, smart.Raw, mwiR)

	// --- Power-on hours / power cycles ---
	if spec.HasAttr(smart.POH) {
		pohR := alloc()
		pohN := alloc()
		for t := 0; t < n; t++ {
			pohR[t] = float64(d.AgeDays+t)*24 + math.Abs(rng.NormFloat64())*2
			nv := 100 - math.Floor(float64(d.AgeDays+t)/150)
			if nv < 1 {
				nv = 1
			}
			pohN[t] = nv
		}
		put(smart.POH, smart.Raw, pohR)
		put(smart.POH, smart.Normalized, pohN)
	}
	if spec.HasAttr(smart.PCC) {
		pccR := alloc()
		// Power cycles depend on the rack's maintenance history, not
		// the drive's age: keeping them age-independent prevents PCC
		// from shadowing POH as an age proxy.
		cnt := 2 + math.Floor(lognormal(rng, 8, 0.7))
		pccN := alloc()
		for t := 0; t < n; t++ {
			if rng.Float64() < 0.01 {
				cnt++
			}
			pccR[t] = math.Floor(cnt)
			pccN[t] = 100
		}
		put(smart.PCC, smart.Raw, pccR)
		put(smart.PCC, smart.Normalized, pccN)
	}

	// --- Temperatures ---
	phase := rng.Float64() * 365
	genTemp := func() ([]float64, []float64) {
		raw := alloc()
		norm := alloc()
		base := 32 + rng.NormFloat64()*1.5
		for t := 0; t < n; t++ {
			v := base + 4*math.Sin(2*math.Pi*(float64(t)+phase)/365) + rng.NormFloat64()*1.2
			if onset >= 0 && t >= onset {
				v += 0.8 * rampProgress(t, onset, d.FailDay)
			}
			raw[t] = math.Floor(v)
			nv := 100 - 1.5*math.Max(0, v-40)
			if nv < 1 {
				nv = 1
			}
			norm[t] = math.Floor(nv)
		}
		return raw, norm
	}
	if spec.HasAttr(smart.ET) {
		r, nv := genTemp()
		put(smart.ET, smart.Raw, r)
		put(smart.ET, smart.Normalized, nv)
	}
	if spec.HasAttr(smart.AFT) {
		r, nv := genTemp()
		put(smart.AFT, smart.Raw, r)
		put(smart.AFT, smart.Normalized, nv)
	}

	// --- Cumulative LBA counters ---
	writeRate := lognormal(rng, 40, 0.6) // GB/day
	readRate := writeRate * 0.8
	if d.ReadHeavy {
		readRate = writeRate * 3
	}
	if spec.HasAttr(smart.TLW) {
		tlw := alloc()
		tlwN := alloc()
		cum := writeRate * float64(d.AgeDays)
		for t := 0; t < n; t++ {
			cum += writeRate * (0.5 + rng.Float64())
			tlw[t] = math.Floor(cum)
			tlwN[t] = 100
		}
		put(smart.TLW, smart.Raw, tlw)
		put(smart.TLW, smart.Normalized, tlwN)
	}
	if spec.HasAttr(smart.TLR) {
		tlr := alloc()
		tlrN := alloc()
		cum := readRate * float64(d.AgeDays)
		for t := 0; t < n; t++ {
			cum += readRate * (0.5 + rng.Float64())
			tlr[t] = math.Floor(cum)
			tlrN[t] = 100
		}
		put(smart.TLR, smart.Raw, tlr)
		put(smart.TLR, smart.Normalized, tlrN)
	}

	// --- Error counters ---
	// Hidden reserve-consumption events drive ARS below.
	var arsConsumed []float64
	for _, a := range spec.AttrList() {
		if !counterAttrs[a] && a != smart.ARS {
			continue
		}
		switch {
		case a == smart.ARS:
			if !trivial[smart.ARS] {
				arsConsumed = make([]float64, n) // transient; not part of the returned columns
				counterSeries(rng, arsConsumed, strength[smart.ARS], scareStrength[smart.ARS], onset, d.FailDay, scareStart, scareEnd, 0)
			}
		case trivial[a]:
			raw, norm := alloc(), alloc()
			trivialCounter(rng, raw, norm, normScale(a))
			put(a, smart.Raw, raw)
			put(a, smart.Normalized, norm)
		default:
			raw := alloc()
			counterSeries(rng, raw, strength[a], scareStrength[a], onset, d.FailDay, scareStart, scareEnd, backgroundRate(a))
			norm := alloc()
			sc := normScale(a)
			for t := 0; t < n; t++ {
				nv := 100 - math.Floor(sc*math.Log1p(raw[t]))
				if nv < 1 {
					nv = 1
				}
				norm[t] = nv
			}
			put(a, smart.Raw, raw)
			put(a, smart.Normalized, norm)
		}
	}

	// --- Available reserved space (derived from consumption events) ---
	if spec.HasAttr(smart.ARS) {
		arsN := alloc()
		arsR := alloc()
		for t := 0; t < n; t++ {
			consumed := 0.0
			if arsConsumed != nil {
				consumed = arsConsumed[t]
			}
			nv := 100 - math.Floor(2.5*consumed)
			if trivial[smart.ARS] && rng.Float64() < 0.05 {
				nv-- // benign measurement jitter on non-predictive ARS
			}
			if nv < 1 {
				nv = 1
			}
			arsN[t] = nv
			arsR[t] = math.Floor(nv * 2.56) // vendor raw: reserve blocks of 256
		}
		put(smart.ARS, smart.Normalized, arsN)
		put(smart.ARS, smart.Raw, arsR)
	}

	return s
}

// SeriesAll generates the series of several drives, fanning the work
// across workers goroutines (0 means GOMAXPROCS). Every drive's
// trajectory derives solely from its own stored seed, so out[i] equals
// f.Series(drives[i]) exactly, for any worker count.
func (f *Fleet) SeriesAll(drives []Drive, workers int) []*Series {
	return f.SeriesAllBuf(drives, workers, nil)
}

// SeriesBuf holds the reusable storage of batch series generation.
// Passing the same buf to successive SeriesAllBuf calls regenerates
// into the prior calls' blocks, Series structs, and column maps instead
// of fresh heap — a whole-fleet regeneration then allocates almost
// nothing. The caller must be done with every Series from prior calls
// through the same buf: structs and columns are recycled in place.
type SeriesBuf struct {
	arenas []*slabArena
	out    []*Series
}

// SeriesAllBuf is SeriesAll with reusable storage. A nil buf behaves
// exactly like SeriesAll; values are identical either way — storage
// reuse never changes a trajectory, which derives solely from the
// drive's seed.
func (f *Fleet) SeriesAllBuf(drives []Drive, workers int, buf *SeriesBuf) []*Series {
	if buf == nil {
		buf = &SeriesBuf{}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(drives) {
		workers = len(drives)
	}
	if workers < 1 {
		workers = 1
	}
	for len(buf.arenas) < workers {
		buf.arenas = append(buf.arenas, &slabArena{})
	}
	for _, a := range buf.arenas[:workers] {
		a.reset()
	}
	if cap(buf.out) < len(drives) {
		buf.out = make([]*Series, len(drives))
	}
	out := buf.out[:len(drives)]

	// Per-worker arenas pack many drives' columns into few large
	// blocks, so a whole-fleet batch stays a handful of heap objects
	// per worker instead of dozens per drive. Values are unchanged:
	// every trajectory still derives solely from its drive's seed.
	if workers == 1 {
		arena := buf.arenas[0]
		for i, d := range drives {
			out[i] = f.series(d, arena, out[i])
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		arena := buf.arenas[w]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(drives) {
					return
				}
				out[i] = f.series(drives[i], arena, out[i])
			}
		}()
	}
	wg.Wait()
	return out
}

// counterSeries fills out with a cumulative event counter: a small
// background rate, a ramp toward the fail day scaled by rampStrength,
// and a benign bump in the scare window scaled by scareStrength.
func counterSeries(rng *rand.Rand, out []float64, rampStrength, scareStrength float64, onset, failDay, scareStart, scareEnd int, bg float64) {
	cum := 0.0
	for t := 0; t < len(out); t++ {
		lambda := bg
		if onset >= 0 && t >= onset && rampStrength > 0 {
			pr := rampProgress(t, onset, failDay)
			lambda += rampStrength * (0.25 + 2.75*pr)
		}
		if t >= scareStart && t < scareEnd && scareStrength > 0 {
			lambda += scareStrength * 0.9
		}
		cum += float64(poisson(rng, lambda))
		out[t] = cum
	}
}

// trivialCounter fills raw/norm with the pure-noise pattern of a
// non-predictive attribute: pending-sector-style values that bump up
// and spontaneously resolve, uncorrelated with failure by construction.
func trivialCounter(rng *rand.Rand, raw, norm []float64, sc float64) {
	cur := 0.0
	// Per-drive noisiness: some drives are simply chattier on their
	// non-predictive counters, giving trees spurious structure to
	// overfit when such features are not filtered out.
	jumpRate := 0.012 * math.Exp(rng.NormFloat64()*0.8)
	for t := 0; t < len(raw); t++ {
		switch {
		case rng.Float64() < jumpRate:
			cur += float64(1 + rng.Intn(3))
		case cur > 0 && rng.Float64() < 0.15:
			cur = 0 // resolved
		}
		raw[t] = cur
		nv := 100 - math.Floor(sc*cur)
		if nv < 1 {
			nv = 1
		}
		norm[t] = nv
	}
}

// rampProgress is the degradation progress in [0, 1] between onset and
// fail day.
func rampProgress(t, onset, failDay int) float64 {
	if failDay <= onset {
		return 1
	}
	pr := float64(t-onset) / float64(failDay-onset)
	if pr > 1 {
		pr = 1
	}
	return pr
}

// backgroundRate is the per-day benign event rate of an error counter.
func backgroundRate(a smart.AttrID) float64 {
	switch a {
	case smart.UPL:
		return 0.008
	case smart.PLP:
		return 0.002
	case smart.CEC, smart.ETE:
		return 0.01
	default:
		return 0.02
	}
}

// normScale returns the normalized-value drop coefficient for an
// attribute.
func normScale(a smart.AttrID) float64 {
	if s, ok := normDropScale[a]; ok {
		return s
	}
	return defaultNormDrop
}

// poisson draws a Poisson variate with mean lambda using Knuth's method
// for small lambda and a normal approximation above 25.
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 25 {
		v := int(math.Round(lambda + math.Sqrt(lambda)*rng.NormFloat64()))
		if v < 0 {
			v = 0
		}
		return v
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1000 {
			return k // unreachable for lambda <= 25; safety bound
		}
	}
}

// String renders a short drive description, useful in logs and examples.
func (s *Series) String() string {
	return fmt.Sprintf("drive %d (%v, %v, last day %d)", s.Drive.ID, s.Drive.Model, s.Drive.Archetype, s.LastDay)
}

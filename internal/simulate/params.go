package simulate

import "repro/internal/smart"

// sigAttr couples a SMART attribute with the strength of its failure
// signal in a failure archetype. Strength scales the error-burst rate a
// degrading drive emits on that attribute.
type sigAttr struct {
	attr     smart.AttrID
	strength float64
}

// modelParams captures the per-drive-model failure physics the
// simulator plants so that the paper's qualitative structures emerge:
// which attributes carry the defect signal (Table III top features),
// which are pure noise (Table III last features), how fast the model
// wears (Fig 1 MWI ranges), where the survival change point falls, and
// how failures split across archetypes (Table V wear-out dependence).
type modelParams struct {
	// wearRateMean/Sigma parameterize the per-drive lognormal MWI_N
	// decline in points/day. MB models barely wear, giving the small
	// MWI range the paper reports (no change point).
	wearRateMean  float64
	wearRateSigma float64
	// cpMWI is the wear-out threshold the survival change point should
	// land near; wear-driven failures target MWI below it.
	cpMWI float64
	// wearTargetLo/Hi bound the MWI level a wear-driven failure occurs
	// at (uniform within the range, below cpMWI).
	wearTargetLo, wearTargetHi float64
	// healthyMinMWI caps how far non-wear-failing drives wear down:
	// their wear rate is clipped so the dataset ends with MWI_N above
	// roughly this level. Below it, the population is dominated by
	// wear failures, which is what carves the survival-curve drop at
	// the change point (Fig 1).
	healthyMinMWI float64
	// defectSig lists the attributes that ramp before a defect failure
	// (mirrors Table III top-3 per model).
	defectSig []sigAttr
	// wearSig lists extra attributes that ramp before a wear failure
	// (beyond MWI/POH, which correlate by construction).
	wearSig []sigAttr
	// firmSig lists attributes that ramp before a firmware failure
	// (MC2 only).
	firmSig []sigAttr
	// trivial lists attributes kept as pure noise so feature selection
	// has something to discard (Table III last-3).
	trivial []smart.AttrID
	// wearFailFrac / firmFailFrac split the model's failures across
	// archetypes; the remainder are defect failures.
	wearFailFrac float64
	firmFailFrac float64
	// oldAgeFailBias, when true, makes failing drives systematically
	// older (higher POH), planting POH_R as a top feature (MA2, MB2).
	oldAgeFailBias bool
	// readHeavyFailBias, when true, gives failing drives a read-heavy
	// workload, planting TLR_R as a signal (MA2).
	readHeavyFailBias bool
}

// paramsOf returns the simulation parameters for each of the six drive
// models. Strengths are tuned so Random-Forest importance reproduces
// the ordering of Table III; see DESIGN.md for the Table I/III REC
// inconsistency on MB2 (REC is unavailable for MB2 per Table I, so UCE
// carries its signal here).
var paramsOf = map[smart.ModelID]modelParams{
	smart.MA1: {
		wearRateMean: 0.085, wearRateSigma: 0.5, cpMWI: 30,
		wearTargetLo: 8, wearTargetHi: 25, healthyMinMWI: 17,
		defectSig: []sigAttr{
			{smart.PLP, 1.3}, {smart.REC, 0.7}, {smart.RSC, 0.55}, {smart.UCE, 0.25},
		},
		wearSig:      []sigAttr{{smart.PLP, 0.55}, {smart.REC, 0.3}},
		trivial:      []smart.AttrID{smart.PSC, smart.CMDT, smart.ETE, smart.CEC},
		wearFailFrac: 0.35,
	},
	smart.MA2: {
		wearRateMean: 0.060, wearRateSigma: 0.5, cpMWI: 40,
		wearTargetLo: 10, wearTargetHi: 35, healthyMinMWI: 28,
		defectSig: []sigAttr{
			{smart.PLP, 1.0}, {smart.UCE, 0.3}, {smart.DEC, 0.2},
		},
		wearSig:           []sigAttr{{smart.PLP, 0.3}},
		trivial:           []smart.AttrID{smart.PSC, smart.RSC, smart.ETE, smart.CEC},
		wearFailFrac:      0.30,
		oldAgeFailBias:    true,
		readHeavyFailBias: true,
	},
	smart.MB1: {
		wearRateMean: 0.004, wearRateSigma: 0.3, cpMWI: 0, healthyMinMWI: 90,
		defectSig: []sigAttr{
			{smart.ARS, 1.0}, {smart.RSC, 0.75}, {smart.DEC, 0.5}, {smart.UCE, 0.25},
		},
		trivial:      []smart.AttrID{smart.CEC, smart.PFC, smart.EFC, smart.PSC},
		wearFailFrac: 0,
	},
	smart.MB2: {
		wearRateMean: 0.003, wearRateSigma: 0.3, cpMWI: 0, healthyMinMWI: 90,
		defectSig: []sigAttr{
			{smart.UCE, 0.95}, {smart.RSC, 0.5}, {smart.ARS, 0.3}, {smart.DEC, 0.2},
		},
		trivial:        []smart.AttrID{smart.EFC, smart.PFC, smart.PSC, smart.CEC},
		wearFailFrac:   0,
		oldAgeFailBias: true,
	},
	smart.MC1: {
		wearRateMean: 0.070, wearRateSigma: 0.5, cpMWI: 25,
		wearTargetLo: 5, wearTargetHi: 20, healthyMinMWI: 10,
		defectSig: []sigAttr{
			{smart.OCE, 1.4}, {smart.UCE, 1.1}, {smart.CMDT, 0.45},
			{smart.RER, 0.3}, {smart.RSC, 0.25}, {smart.ARS, 0.2},
		},
		wearSig:      []sigAttr{{smart.OCE, 0.55}, {smart.UCE, 0.4}},
		trivial:      []smart.AttrID{smart.ETE, smart.PFC, smart.EFC},
		wearFailFrac: 0.20,
	},
	smart.MC2: {
		wearRateMean: 0.050, wearRateSigma: 0.45, cpMWI: 72,
		wearTargetLo: 55, wearTargetHi: 70, healthyMinMWI: 64,
		defectSig: []sigAttr{
			{smart.UCE, 1.4}, {smart.OCE, 0.9}, {smart.CMDT, 0.45}, {smart.RSC, 0.25},
		},
		wearSig:      []sigAttr{{smart.UCE, 0.55}, {smart.OCE, 0.35}},
		firmSig:      []sigAttr{{smart.UCE, 0.8}, {smart.OCE, 0.4}},
		trivial:      []smart.AttrID{smart.ARS, smart.REC, smart.CEC, smart.ETE},
		wearFailFrac: 0.22,
		firmFailFrac: 0.35,
	},
}

// normDropScale maps an attribute to the coefficient with which its
// normalized value steps down as raw errors accumulate:
// N = 100 - scale*log1p(raw), quantized. Attributes absent from the map
// use defaultNormDrop.
var normDropScale = map[smart.AttrID]float64{
	smart.UCE: 14, smart.OCE: 13, smart.RSC: 12, smart.REC: 12,
	smart.PLP: 25, smart.DEC: 10, smart.CMDT: 11, smart.RER: 8,
	smart.PFC: 9, smart.EFC: 9, smart.PSC: 2, smart.ETE: 3, smart.CEC: 3,
	smart.UPL: 4,
}

const defaultNormDrop = 8.0

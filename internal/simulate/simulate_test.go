package simulate

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/smart"
)

func testFleet(t *testing.T) *Fleet {
	t.Helper()
	f, err := New(Config{TotalDrives: 1200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
	}{
		{"zero drives", Config{}},
		{"negative drives", Config{TotalDrives: -5}},
		{"short span", Config{TotalDrives: 100, Days: 30}},
		{"bad model", Config{TotalDrives: 100, Models: []smart.ModelID{99}}},
		{"negative afr scale", Config{TotalDrives: 100, AFRScale: -1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(tt.cfg); !errors.Is(err, ErrBadConfig) {
				t.Errorf("error = %v, want ErrBadConfig", err)
			}
		})
	}
}

func TestFleetComposition(t *testing.T) {
	f := testFleet(t)
	if f.Days() != DefaultDays {
		t.Errorf("Days = %d, want %d", f.Days(), DefaultDays)
	}
	total := 0
	for _, m := range smart.AllModels() {
		n := len(f.DrivesOf(m))
		if n < 40 {
			t.Errorf("%v has %d drives, want >= 40", m, n)
		}
		total += n
	}
	if total != f.NumDrives() {
		t.Errorf("model drives sum %d != fleet %d", total, f.NumDrives())
	}
	// MC1 holds the largest share (Table II: 40.4%).
	if len(f.DrivesOf(smart.MC1)) <= len(f.DrivesOf(smart.MA2)) {
		t.Error("MC1 should be the largest model population")
	}
}

func TestDriveIDsConsistent(t *testing.T) {
	f := testFleet(t)
	for id := 0; id < f.NumDrives(); id++ {
		d, err := f.Drive(id)
		if err != nil {
			t.Fatal(err)
		}
		if d.ID != id {
			t.Fatalf("Drive(%d).ID = %d", id, d.ID)
		}
	}
	if _, err := f.Drive(-1); err == nil {
		t.Error("Drive(-1) should fail")
	}
	if _, err := f.Drive(f.NumDrives()); err == nil {
		t.Error("Drive(out of range) should fail")
	}
}

func TestAFRRoughlyMatchesTableII(t *testing.T) {
	f, err := New(Config{TotalDrives: 6000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range smart.AllModels() {
		spec := smart.MustSpec(m)
		afr := f.AFR(m)
		// Small populations quantize failure counts, so allow a wide
		// band; the ordering check below is the strong assertion.
		if afr < spec.TargetAFR*0.3 || afr > spec.TargetAFR*3 {
			t.Errorf("%v AFR = %.4f, want near %.4f", m, afr, spec.TargetAFR)
		}
	}
	// TLC models must show higher AFR than the MLC average, matching
	// the paper's headline Table II observation.
	mlc := (f.AFR(smart.MA1) + f.AFR(smart.MA2) + f.AFR(smart.MB1) + f.AFR(smart.MB2)) / 4
	tlc := (f.AFR(smart.MC1) + f.AFR(smart.MC2)) / 2
	if tlc <= mlc {
		t.Errorf("TLC AFR %.4f should exceed MLC %.4f", tlc, mlc)
	}
}

func TestFailuresSortedAndLabeled(t *testing.T) {
	f := testFleet(t)
	for _, m := range smart.AllModels() {
		fails := f.Failures(m)
		if len(fails) == 0 {
			t.Errorf("%v has no failures", m)
			continue
		}
		for i, d := range fails {
			if !d.Failed() || !d.Archetype.Failed() {
				t.Errorf("%v failure %d not marked failed: %+v", m, i, d)
			}
			if d.FailDay < 0 || d.FailDay >= f.Days() {
				t.Errorf("%v fail day %d out of range", m, d.FailDay)
			}
			if i > 0 && fails[i].FailDay < fails[i-1].FailDay {
				t.Errorf("%v failures not sorted by day", m)
			}
		}
	}
}

func TestArchetypeMix(t *testing.T) {
	f, err := New(Config{TotalDrives: 6000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// MB models have no wear failures; MC2 has firmware failures.
	for _, m := range []smart.ModelID{smart.MB1, smart.MB2} {
		for _, d := range f.Failures(m) {
			if d.Archetype == WearFail {
				t.Errorf("%v should have no wear failures", m)
			}
		}
	}
	firm := 0
	for _, d := range f.Failures(smart.MC2) {
		if d.Archetype == FirmwareFail {
			firm++
			if d.FailDay > 300 {
				t.Errorf("firmware failure at day %d, want first ~10 months", d.FailDay)
			}
		}
	}
	if firm == 0 {
		t.Error("MC2 should have firmware failures")
	}
	wear := 0
	for _, d := range f.Failures(smart.MA1) {
		if d.Archetype == WearFail {
			wear++
		}
	}
	if wear == 0 {
		t.Error("MA1 should have wear failures")
	}
}

func TestSeriesShape(t *testing.T) {
	f := testFleet(t)
	for _, m := range smart.AllModels() {
		drives := f.DrivesOf(m)
		d := drives[0]
		s := f.Series(d)
		wantLast := f.Days() - 1
		if d.Failed() {
			wantLast = d.FailDay
		}
		if s.LastDay != wantLast {
			t.Errorf("%v LastDay = %d, want %d", m, s.LastDay, wantLast)
		}
		spec := smart.MustSpec(m)
		for _, ft := range spec.Features() {
			col := s.Col(ft)
			if col == nil {
				t.Errorf("%v missing feature %v", m, ft)
				continue
			}
			if len(col) != s.LastDay+1 {
				t.Errorf("%v feature %v length %d, want %d", m, ft, len(col), s.LastDay+1)
			}
			for i, v := range col {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("%v feature %v day %d = %v", m, ft, i, v)
				}
			}
		}
		// Unavailable attributes must be absent.
		for _, a := range smart.AllAttrs() {
			if !spec.HasAttr(a) {
				if s.Col(smart.Feature{Attr: a, Kind: smart.Raw}) != nil {
					t.Errorf("%v should not report %v", m, a)
				}
			}
		}
	}
}

func TestSeriesDeterministic(t *testing.T) {
	f := testFleet(t)
	d := f.DrivesOf(smart.MC1)[3]
	a := f.Series(d)
	b := f.Series(d)
	for _, ft := range a.Features() {
		ca, cb := a.Col(ft), b.Col(ft)
		for i := range ca {
			if ca[i] != cb[i] {
				t.Fatalf("series not deterministic at %v day %d", ft, i)
			}
		}
	}
}

func TestSeriesAllMatchesSeries(t *testing.T) {
	// Parallel generation must be invisible: every drive's trajectory
	// derives only from its own seed, so SeriesAll equals per-drive
	// Series calls in order, for any worker count.
	f := testFleet(t)
	drives := f.DrivesOf(smart.MC1)[:12]
	serial := f.SeriesAll(drives, 1)
	parallel := f.SeriesAll(drives, 8)
	if len(serial) != len(drives) || len(parallel) != len(drives) {
		t.Fatalf("lengths = %d, %d, want %d", len(serial), len(parallel), len(drives))
	}
	for k, d := range drives {
		want := f.Series(d)
		for _, s := range []*Series{serial[k], parallel[k]} {
			if s.LastDay != want.LastDay || s.Drive.ID != d.ID {
				t.Fatalf("drive %d: LastDay %d/%d ID %d", d.ID, s.LastDay, want.LastDay, s.Drive.ID)
			}
			for _, ft := range want.Features() {
				cw, cs := want.Col(ft), s.Col(ft)
				for i := range cw {
					if cw[i] != cs[i] {
						t.Fatalf("drive %d %v day %d: %v != %v", d.ID, ft, i, cs[i], cw[i])
					}
				}
			}
		}
	}
}

func TestSeriesAllBufReuse(t *testing.T) {
	// Regenerating into a reused SeriesBuf must reproduce the exact
	// same values — recycled blocks never leak one batch's data into
	// the next — at both worker counts, including a shrinking batch.
	f := testFleet(t)
	drives := f.DrivesOf(smart.MC1)[:12]
	var buf SeriesBuf
	for _, workers := range []int{1, 4, 1} {
		got := f.SeriesAllBuf(drives, workers, &buf)
		for k, d := range drives {
			want := f.Series(d)
			for _, ft := range want.Features() {
				cw, cg := want.Col(ft), got[k].Col(ft)
				for i := range cw {
					if cw[i] != cg[i] {
						t.Fatalf("workers=%d drive %d %v day %d: %v != %v", workers, d.ID, ft, i, cg[i], cw[i])
					}
				}
			}
		}
		drives = drives[:len(drives)-2]
	}
}

func TestCountersMonotone(t *testing.T) {
	f := testFleet(t)
	for _, m := range []smart.ModelID{smart.MA1, smart.MC1} {
		p := paramsOf[m]
		trivial := map[smart.AttrID]bool{}
		for _, a := range p.trivial {
			trivial[a] = true
		}
		for _, d := range f.DrivesOf(m)[:10] {
			s := f.Series(d)
			for a := range counterAttrs {
				if !smart.MustSpec(m).HasAttr(a) || trivial[a] {
					continue
				}
				col := s.Col(smart.Feature{Attr: a, Kind: smart.Raw})
				for i := 1; i < len(col); i++ {
					if col[i] < col[i-1] {
						t.Fatalf("%v %v raw counter decreased at day %d", m, a, i)
					}
				}
			}
		}
	}
}

func TestMWIDeclines(t *testing.T) {
	f := testFleet(t)
	mwi := smart.Feature{Attr: smart.MWI, Kind: smart.Normalized}
	for _, d := range f.DrivesOf(smart.MA1)[:5] {
		s := f.Series(d)
		col := s.Col(mwi)
		if col[0] < col[len(col)-1]-1 {
			t.Errorf("MWI_N should decline: start %v end %v", col[0], col[len(col)-1])
		}
		for _, v := range col {
			if v < 1 || v > 100 {
				t.Fatalf("MWI_N out of range: %v", v)
			}
		}
	}
}

func TestMBModelsBarelyWear(t *testing.T) {
	f := testFleet(t)
	mwi := smart.Feature{Attr: smart.MWI, Kind: smart.Normalized}
	for _, m := range []smart.ModelID{smart.MB1, smart.MB2} {
		for _, d := range f.DrivesOf(m)[:10] {
			s := f.Series(d)
			col := s.Col(mwi)
			if col[len(col)-1] < 85 {
				t.Errorf("%v MWI fell to %v; MB models should stay high (small range)", m, col[len(col)-1])
			}
		}
	}
}

func TestWearFailDrivesReachLowMWI(t *testing.T) {
	f, err := New(Config{TotalDrives: 6000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, d := range f.Failures(smart.MA1) {
		if d.Archetype != WearFail {
			continue
		}
		s := f.Series(d)
		final := s.MWIAt(s.LastDay)
		if final > paramsOf[smart.MA1].cpMWI+6 {
			t.Errorf("wear failure at MWI %v, want below change point ~%v", final, paramsOf[smart.MA1].cpMWI)
		}
		checked++
		if checked >= 10 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("no wear failures to check")
	}
}

func TestSignatureAttrsRampBeforeFailure(t *testing.T) {
	f, err := New(Config{TotalDrives: 6000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Defect failures on MC1 must show OCE/UCE growth in the last 30
	// days that healthy drives lack.
	var failGrowth, healthyGrowth float64
	var nFail, nHealthy int
	oce := smart.Feature{Attr: smart.OCE, Kind: smart.Raw}
	for _, d := range f.Failures(smart.MC1) {
		if d.Archetype != DefectFail || d.FailDay < 60 {
			continue
		}
		s := f.Series(d)
		col := s.Col(oce)
		failGrowth += col[s.LastDay] - col[s.LastDay-30]
		nFail++
	}
	for _, d := range f.DrivesOf(smart.MC1) {
		if d.Archetype != Healthy {
			continue
		}
		s := f.Series(d)
		col := s.Col(oce)
		healthyGrowth += col[s.LastDay] - col[s.LastDay-30]
		nHealthy++
		if nHealthy >= 50 {
			break
		}
	}
	if nFail == 0 || nHealthy == 0 {
		t.Fatal("insufficient drives for growth comparison")
	}
	fg := failGrowth / float64(nFail)
	hg := healthyGrowth / float64(nHealthy)
	if fg < hg*10+1 {
		t.Errorf("failing OCE growth %.2f should dwarf healthy %.2f", fg, hg)
	}
}

func TestTrivialAttrsUncorrelated(t *testing.T) {
	f, err := New(Config{TotalDrives: 6000, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	// PSC is trivial for MA1: failing drives should show no more PSC
	// than healthy ones near their end.
	psc := smart.Feature{Attr: smart.PSC, Kind: smart.Raw}
	var failSum, healthySum float64
	var nf, nh int
	for _, d := range f.Failures(smart.MA1) {
		s := f.Series(d)
		failSum += s.Col(psc)[s.LastDay]
		nf++
	}
	for _, d := range f.DrivesOf(smart.MA1) {
		if d.Archetype != Healthy {
			continue
		}
		s := f.Series(d)
		failSum += 0
		healthySum += s.Col(psc)[s.LastDay]
		nh++
		if nh >= nf*3 {
			break
		}
	}
	if nf == 0 || nh == 0 {
		t.Fatal("insufficient drives")
	}
	fAvg, hAvg := failSum/float64(nf), healthySum/float64(nh)
	// Both should be small noise of similar magnitude.
	if fAvg > hAvg*4+2 || hAvg > fAvg*4+2 {
		t.Errorf("trivial PSC differs: failing %.2f vs healthy %.2f", fAvg, hAvg)
	}
}

func TestPoisson(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	if poisson(rng, 0) != 0 || poisson(rng, -1) != 0 {
		t.Error("poisson of non-positive lambda should be 0")
	}
	// Sample mean close to lambda for both regimes.
	for _, lambda := range []float64{0.5, 3, 40} {
		sum := 0
		n := 20000
		for i := 0; i < n; i++ {
			sum += poisson(rng, lambda)
		}
		mean := float64(sum) / float64(n)
		if math.Abs(mean-lambda) > lambda*0.1+0.05 {
			t.Errorf("poisson(%v) mean = %v", lambda, mean)
		}
	}
}

func TestAFRScale(t *testing.T) {
	base, err := New(Config{TotalDrives: 2000, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	boosted, err := New(Config{TotalDrives: 2000, Seed: 8, AFRScale: 4})
	if err != nil {
		t.Fatal(err)
	}
	nb, nB := 0, 0
	for _, m := range smart.AllModels() {
		nb += len(base.Failures(m))
		nB += len(boosted.Failures(m))
	}
	if nB <= nb {
		t.Errorf("AFRScale=4 failures %d should exceed baseline %d", nB, nb)
	}
}

func TestModelsSubset(t *testing.T) {
	f, err := New(Config{TotalDrives: 500, Seed: 9, Models: []smart.ModelID{smart.MC1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Models()) != 1 || f.Models()[0] != smart.MC1 {
		t.Errorf("Models = %v", f.Models())
	}
	if len(f.DrivesOf(smart.MA1)) != 0 {
		t.Error("MA1 drives in MC1-only fleet")
	}
	if f.NumDrives() < 400 {
		t.Errorf("single-model fleet size = %d, want ~500", f.NumDrives())
	}
}

func TestArchetypeString(t *testing.T) {
	for _, a := range []Archetype{Healthy, ScareHealthy, DefectFail, WearFail, FirmwareFail} {
		if a.String() == "" || a.String()[0] == 'A' {
			t.Errorf("Archetype %d string = %q", a, a.String())
		}
	}
	if Archetype(42).String() != "Archetype(42)" {
		t.Error("invalid archetype string")
	}
}

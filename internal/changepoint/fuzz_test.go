package changepoint

import (
	"encoding/binary"
	"math"
	"testing"
)

func bytesToFloats(data []byte) []float64 {
	out := make([]float64, len(data)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
	}
	return out
}

func floatsToBytes(vals []float64) []byte {
	out := make([]byte, len(vals)*8)
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(v))
	}
	return out
}

// FuzzDetect feeds arbitrary bit patterns — NaNs, ±Inf, denormals,
// constant runs — through the detector. Non-finite input must come back
// as ErrNonFinite (never a panic or a silent garbage result); finite
// input must yield probabilities in [0, 1] with no NaN, and Detect's
// points must carry finite z-scores at valid indices.
func FuzzDetect(f *testing.F) {
	f.Add(floatsToBytes([]float64{1, 1, 1, 9, 9, 9, 9, 1, 1}))
	f.Add(floatsToBytes([]float64{math.NaN(), 1, 2, 3}))
	f.Add(floatsToBytes([]float64{math.Inf(1), math.Inf(-1), 0, 0}))
	f.Add(floatsToBytes(make([]float64, 64))) // all-constant
	f.Add(floatsToBytes([]float64{1e-308, -1e-308, 1e308, -1e308}))
	f.Fuzz(func(t *testing.T, data []byte) {
		xs := bytesToFloats(data)
		cfg := DefaultConfig()

		probs, err := ChangeProbabilities(xs, cfg)
		finite := true
		for _, v := range xs {
			if v-v != 0 { // NaN or ±Inf
				finite = false
				break
			}
		}
		switch {
		case len(xs) < 3:
			if err == nil {
				t.Fatal("short sequence accepted")
			}
		case !finite:
			if err == nil {
				t.Fatal("non-finite sequence accepted")
			}
		case err == nil:
			if len(probs) != len(xs) {
				t.Fatalf("got %d probabilities for %d observations", len(probs), len(xs))
			}
			for i, p := range probs {
				if !(p >= 0 && p <= 1) {
					t.Fatalf("probability %d = %v out of [0, 1]", i, p)
				}
			}
		}

		points, err := Detect(xs, cfg, DefaultZThreshold)
		if err != nil {
			return
		}
		for _, p := range points {
			if p.Index < 0 || p.Index >= len(xs) {
				t.Fatalf("point index %d out of range", p.Index)
			}
			if math.IsNaN(p.Z) || math.IsInf(p.Z, 0) {
				t.Fatalf("non-finite z-score %v at %d", p.Z, p.Index)
			}
		}
		if _, ok := MostSignificant(points); ok && len(points) == 0 {
			t.Fatal("MostSignificant invented a point")
		}
	})
}

package changepoint

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestChangeProbabilitiesBoundedProperty: for arbitrary finite
// sequences, every change probability is a valid probability and the
// output length matches the input.
func TestChangeProbabilitiesBoundedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(120)
		xs := make([]float64, n)
		scale := math.Exp(rng.NormFloat64() * 3)
		for i := range xs {
			xs[i] = rng.NormFloat64() * scale
			if rng.Float64() < 0.1 {
				xs[i] += scale * 10 // occasional level shifts
			}
		}
		probs, err := ChangeProbabilities(xs, DefaultConfig())
		if err != nil {
			return false
		}
		if len(probs) != n {
			return false
		}
		for _, p := range probs {
			if p < 0 || p > 1 || math.IsNaN(p) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestDetectScaleInvariance: standardization makes detection invariant
// to affine scaling of the sequence.
func TestDetectScaleInvariance(t *testing.T) {
	xs := stepSequence(60, 30, 0, 4, 0.3, 41)
	scaled := make([]float64, len(xs))
	for i, v := range xs {
		scaled[i] = v*1e6 + 777
	}
	a, err := Detect(xs, DefaultConfig(), DefaultZThreshold)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Detect(scaled, DefaultConfig(), DefaultZThreshold)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("detection count changed under scaling: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Index != b[i].Index {
			t.Errorf("point %d index %d vs %d", i, a[i].Index, b[i].Index)
		}
	}
}

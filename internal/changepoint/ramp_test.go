package changepoint

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// The controller feeds Detect real per-day score aggregates, which
// drift gradually (fleet wear-out) rather than stepping cleanly, and
// can carry NaN/±Inf from degenerate day summaries. These tests pin
// the detector's contract on both.

// rampSequence rises linearly from lo to hi over n observations with
// Gaussian noise.
func rampSequence(n int, lo, hi, noise float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	for i := range xs {
		frac := float64(i) / float64(n-1)
		xs[i] = lo + (hi-lo)*frac + rng.NormFloat64()*noise
	}
	return xs
}

// TestDetectGradualRamp: a steep ramp is drift even without a step —
// the Gaussian run-length model keeps resetting as the level leaves
// each run's posterior — and Detect must surface at least one
// significant point rather than treating the ramp as one long regime.
func TestDetectGradualRamp(t *testing.T) {
	xs := rampSequence(80, 0, 8, 0.3, 3)
	points, err := Detect(xs, DefaultConfig(), DefaultZThreshold)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := MostSignificant(points); !ok {
		t.Fatal("steep ramp produced no significant change point")
	}
}

// TestDetectShallowRampQuiet: a ramp buried in its noise must look
// like stationary noise, not like drift. Detect's z is relative to the
// sequence's own change probabilities, so isolated stray points are
// possible (see TestNoChangeOnStationaryNoise) — but the detection
// must stay sparse rather than painting the ramp as a regime change.
func TestDetectShallowRampQuiet(t *testing.T) {
	xs := rampSequence(80, 0, 0.05, 0.5, 4)
	points, err := Detect(xs, DefaultConfig(), DefaultZThreshold)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) > 3 {
		t.Errorf("noise-dominated ramp produced %d significant points", len(points))
	}
}

// TestDetectRampThenPlateau: the controller's typical shape — scores
// ramp while a regime ends, then level off. The detector must place
// its most significant point inside the ramp region, not on the
// plateau.
func TestDetectRampThenPlateau(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs := make([]float64, 90)
	for i := range xs {
		switch {
		case i < 30:
			xs[i] = 1
		case i < 60:
			xs[i] = 1 + 7*float64(i-30)/30
		default:
			xs[i] = 8
		}
		xs[i] += rng.NormFloat64() * 0.3
	}
	points, err := Detect(xs, DefaultConfig(), DefaultZThreshold)
	if err != nil {
		t.Fatal(err)
	}
	best, ok := MostSignificant(points)
	if !ok {
		t.Fatal("ramp-then-plateau produced no change point")
	}
	if best.Index < 28 || best.Index > 62 {
		t.Errorf("most significant index = %d, want inside the ramp [28, 62]", best.Index)
	}
}

// TestDetectNonFinite: NaN and ±Inf observations must be rejected
// loudly (ErrNonFinite) wherever they appear — the Gaussian model
// would otherwise silently absorb them into every posterior.
func TestDetectNonFinite(t *testing.T) {
	base := stepSequence(40, 20, 0, 5, 0.3, 6)
	for _, tc := range []struct {
		name string
		at   int
		v    float64
	}{
		{"NaN head", 0, math.NaN()},
		{"NaN middle", 20, math.NaN()},
		{"NaN tail", 39, math.NaN()},
		{"+Inf", 10, math.Inf(1)},
		{"-Inf", 30, math.Inf(-1)},
	} {
		xs := append([]float64(nil), base...)
		xs[tc.at] = tc.v
		if _, err := Detect(xs, DefaultConfig(), DefaultZThreshold); !errors.Is(err, ErrNonFinite) {
			t.Errorf("%s: err = %v, want ErrNonFinite", tc.name, err)
		}
		if _, err := ChangeProbabilities(xs, DefaultConfig()); !errors.Is(err, ErrNonFinite) {
			t.Errorf("%s: ChangeProbabilities err = %v, want ErrNonFinite", tc.name, err)
		}
	}
}

// TestDetectAllNonFinite: a fully garbage sequence (every observation
// NaN) reports the first offending index, not a crash or a detection.
func TestDetectAllNonFinite(t *testing.T) {
	xs := []float64{math.NaN(), math.NaN(), math.NaN(), math.NaN()}
	_, err := Detect(xs, DefaultConfig(), DefaultZThreshold)
	if !errors.Is(err, ErrNonFinite) {
		t.Fatalf("err = %v, want ErrNonFinite", err)
	}
}

package changepoint

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// stepSequence builds a noisy sequence with a mean shift at shiftAt.
func stepSequence(n, shiftAt int, lo, hi, noise float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	for i := range xs {
		base := lo
		if i >= shiftAt {
			base = hi
		}
		xs[i] = base + rng.NormFloat64()*noise
	}
	return xs
}

func TestChangeProbabilitiesShape(t *testing.T) {
	xs := stepSequence(60, 30, 0, 5, 0.3, 1)
	probs, err := ChangeProbabilities(xs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(probs) != len(xs) {
		t.Fatalf("probs len = %d, want %d", len(probs), len(xs))
	}
	if probs[0] != 0 {
		t.Errorf("probs[0] = %v, want 0", probs[0])
	}
	for i, p := range probs {
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("probs[%d] = %v out of [0,1]", i, p)
		}
	}
}

func TestDetectsSingleShift(t *testing.T) {
	xs := stepSequence(80, 40, 0, 6, 0.4, 2)
	points, err := Detect(xs, DefaultConfig(), DefaultZThreshold)
	if err != nil {
		t.Fatal(err)
	}
	best, ok := MostSignificant(points)
	if !ok {
		t.Fatal("no change point found for an obvious shift")
	}
	if best.Index < 38 || best.Index > 43 {
		t.Errorf("change index = %d, want near 40", best.Index)
	}
	if best.Z < DefaultZThreshold {
		t.Errorf("z = %v, want >= threshold", best.Z)
	}
}

func TestNoChangeOnStationaryNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 0.1
	}
	points, err := Detect(xs, DefaultConfig(), DefaultZThreshold)
	if err != nil {
		t.Fatal(err)
	}
	// Stationary noise may occasionally produce a stray significant
	// point, but an obvious mean shift should not be reported.
	if len(points) > 3 {
		t.Errorf("stationary noise produced %d significant points", len(points))
	}
}

func TestConstantSequenceNoChange(t *testing.T) {
	xs := make([]float64, 50)
	for i := range xs {
		xs[i] = 4.2
	}
	points, err := Detect(xs, DefaultConfig(), DefaultZThreshold)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 0 {
		t.Errorf("constant sequence produced %d points", len(points))
	}
}

func TestTooShort(t *testing.T) {
	if _, err := ChangeProbabilities([]float64{1, 2}, DefaultConfig()); !errors.Is(err, ErrTooShort) {
		t.Errorf("short error = %v", err)
	}
	if _, err := Detect([]float64{1}, DefaultConfig(), 2.5); !errors.Is(err, ErrTooShort) {
		t.Errorf("Detect short error = %v", err)
	}
}

func TestTwoShiftsMostSignificant(t *testing.T) {
	// A big shift at 30 and a small one at 60: the most significant
	// point should land at the big one.
	rng := rand.New(rand.NewSource(4))
	xs := make([]float64, 90)
	for i := range xs {
		base := 0.0
		if i >= 30 {
			base = 8
		}
		if i >= 60 {
			base = 8.8
		}
		xs[i] = base + rng.NormFloat64()*0.3
	}
	points, err := Detect(xs, DefaultConfig(), DefaultZThreshold)
	if err != nil {
		t.Fatal(err)
	}
	best, ok := MostSignificant(points)
	if !ok {
		t.Fatal("no change point found")
	}
	if best.Index < 28 || best.Index > 33 {
		t.Errorf("most significant index = %d, want near 30", best.Index)
	}
}

func TestMostSignificantEmpty(t *testing.T) {
	if _, ok := MostSignificant(nil); ok {
		t.Error("MostSignificant(nil) should report not-found")
	}
}

func TestDeterminism(t *testing.T) {
	xs := stepSequence(70, 35, 1, 4, 0.5, 5)
	a, err := ChangeProbabilities(xs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := ChangeProbabilities(xs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("detector should be deterministic")
		}
	}
}

func TestStandardize(t *testing.T) {
	out := standardize([]float64{2, 4, 6})
	if math.Abs(out[0]+out[2]) > 1e-12 || out[1] != 0 {
		t.Errorf("standardize = %v", out)
	}
	flat := standardize([]float64{3, 3, 3})
	for _, v := range flat {
		if v != 0 {
			t.Errorf("standardize(constant) = %v", flat)
		}
	}
}

func TestStudentTPDF(t *testing.T) {
	// df -> infinity approaches the standard normal density at 0
	// (~0.39894); at df=1 (Cauchy), density at 0 is 1/pi.
	if got := studentTPDF(0, 0, 1, 1); math.Abs(got-1/math.Pi) > 1e-9 {
		t.Errorf("t(df=1) at 0 = %v, want %v", got, 1/math.Pi)
	}
	if got := studentTPDF(0, 0, 1, 1e6); math.Abs(got-0.3989) > 1e-3 {
		t.Errorf("t(df=1e6) at 0 = %v, want ~0.3989", got)
	}
	// Symmetry.
	if studentTPDF(1.3, 0, 1, 5) != studentTPDF(-1.3, 0, 1, 5) {
		t.Error("t pdf should be symmetric")
	}
	// Degenerate parameters.
	if studentTPDF(0, 0, 0, 5) != 0 || studentTPDF(0, 0, 1, 0) != 0 {
		t.Error("degenerate t pdf should be 0")
	}
}

func TestHazardExtremesFallBack(t *testing.T) {
	xs := stepSequence(50, 25, 0, 5, 0.3, 6)
	for _, h := range []float64{-1, 0, 1, 2} {
		cfg := DefaultConfig()
		cfg.Hazard = h
		if _, err := ChangeProbabilities(xs, cfg); err != nil {
			t.Errorf("hazard %v: %v", h, err)
		}
	}
}

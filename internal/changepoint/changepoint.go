// Package changepoint implements Bayesian online change-point detection
// (Adams & MacKay 2007, in the spirit of Fearnhead's exact recursions
// cited by the WEFR paper) for one-dimensional sequences, with the
// z-score significance rule the paper applies on top: a point is a
// significant change when its change probability is at least 2.5
// standard deviations above the mean of all change probabilities
// (confidence 98.76%), and the most significant change point is the one
// with the largest z-score.
//
// The observation model is Gaussian with unknown mean and variance
// under a conjugate Normal-Inverse-Gamma prior, giving a Student-t
// posterior predictive with closed-form updates — no sampling, fully
// deterministic.
package changepoint

import (
	"errors"
	"fmt"
	"math"
)

// Errors returned by the detector.
var (
	// ErrTooShort indicates a sequence with fewer than 3 observations,
	// for which change detection is meaningless.
	ErrTooShort = errors.New("changepoint: sequence too short")
	// ErrNonFinite indicates a sequence containing NaN or ±Inf, for
	// which the Gaussian observation model is undefined. Callers are
	// expected to clean or drop such observations first.
	ErrNonFinite = errors.New("changepoint: non-finite observation")
)

// DefaultZThreshold is the paper's significance threshold in standard
// deviations (±2.5, 98.76% confidence).
const DefaultZThreshold = 2.5

// Config parameterizes the detector. The zero value selects sensible
// defaults via withDefaults.
type Config struct {
	// Hazard is the prior probability that any step is a change point;
	// 0 means 1/50.
	Hazard float64
	// Mu0 is the prior mean (default 0; sequences are standardized
	// internally, so the default is appropriate).
	Mu0 float64
	// Kappa0 is the prior pseudo-count for the mean; 0 means 1.
	Kappa0 float64
	// Alpha0 is the prior shape for the variance; 0 means 1.
	Alpha0 float64
	// Beta0 is the prior scale for the variance; 0 means 1.
	Beta0 float64
	// Standardize controls whether the sequence is z-normalized before
	// detection so the default prior fits any scale. Enabled by
	// DefaultConfig.
	Standardize bool
}

// DefaultConfig returns the detector settings used throughout the
// repository: hazard 1/50, unit NIG prior over standardized data.
func DefaultConfig() Config {
	return Config{Hazard: 1.0 / 50, Kappa0: 1, Alpha0: 1, Beta0: 1, Standardize: true}
}

func (c Config) withDefaults() Config {
	if c.Hazard <= 0 || c.Hazard >= 1 {
		c.Hazard = 1.0 / 50
	}
	if c.Kappa0 <= 0 {
		c.Kappa0 = 1
	}
	if c.Alpha0 <= 0 {
		c.Alpha0 = 1
	}
	if c.Beta0 <= 0 {
		c.Beta0 = 1
	}
	return c
}

// ChangeProbabilities runs the online detector over xs and returns, for
// each position t >= 1, the posterior probability that a change
// occurred at t (the run-length-zero mass after observing xs[t]).
// Position 0 has probability 0 by construction.
func ChangeProbabilities(xs []float64, cfg Config) ([]float64, error) {
	if len(xs) < 3 {
		return nil, fmt.Errorf("%w: %d observations", ErrTooShort, len(xs))
	}
	for i, v := range xs {
		if v-v != 0 {
			return nil, fmt.Errorf("%w: xs[%d] = %v", ErrNonFinite, i, v)
		}
	}
	cfg = cfg.withDefaults()

	data := xs
	if cfg.Standardize {
		data = standardize(xs)
	}

	n := len(data)
	// Run-length posterior; index r is the probability the current run
	// has length r.
	r := make([]float64, 1, n+1)
	r[0] = 1

	// Sufficient statistics per run length hypothesis.
	mu := []float64{cfg.Mu0}
	kappa := []float64{cfg.Kappa0}
	alpha := []float64{cfg.Alpha0}
	beta := []float64{cfg.Beta0}

	probs := make([]float64, n)
	h := cfg.Hazard

	for t := 0; t < n; t++ {
		x := data[t]
		// Predictive probability of x under each run hypothesis.
		pred := make([]float64, len(r))
		for i := range r {
			scale := beta[i] * (kappa[i] + 1) / (alpha[i] * kappa[i])
			pred[i] = studentTPDF(x, mu[i], scale, 2*alpha[i])
		}
		// Predictive of x under a brand-new run, which has seen no data
		// and therefore uses the prior. Using the old-run predictive
		// here would make the run-0 posterior identically equal to the
		// hazard and the detector blind.
		priorScale := cfg.Beta0 * (cfg.Kappa0 + 1) / (cfg.Alpha0 * cfg.Kappa0)
		predPrior := studentTPDF(x, cfg.Mu0, priorScale, 2*cfg.Alpha0)

		// Growth (run continues) and change (run resets) masses.
		grown := make([]float64, len(r)+1)
		var cp float64
		for i := range r {
			grown[i+1] = r[i] * pred[i] * (1 - h)
			cp += r[i] * predPrior * h
		}
		grown[0] = cp

		// Normalize; guard against total numerical underflow.
		var total float64
		for _, v := range grown {
			total += v
		}
		if total <= 0 || math.IsNaN(total) {
			// Restart the filter from the prior at this point.
			grown = make([]float64, 1)
			grown[0] = 1
			mu = []float64{cfg.Mu0}
			kappa = []float64{cfg.Kappa0}
			alpha = []float64{cfg.Alpha0}
			beta = []float64{cfg.Beta0}
			r = grown
			probs[t] = 0
			continue
		}
		for i := range grown {
			grown[i] /= total
		}

		if t > 0 {
			probs[t] = grown[0]
		}

		// Posterior updates: hypothesis i (run length i at time t+1)
		// extends old hypothesis i-1 with x; hypothesis 0 is the prior.
		nmu := make([]float64, len(grown))
		nkappa := make([]float64, len(grown))
		nalpha := make([]float64, len(grown))
		nbeta := make([]float64, len(grown))
		nmu[0] = cfg.Mu0
		nkappa[0] = cfg.Kappa0
		nalpha[0] = cfg.Alpha0
		nbeta[0] = cfg.Beta0
		for i := 1; i < len(grown); i++ {
			j := i - 1
			nmu[i] = (kappa[j]*mu[j] + x) / (kappa[j] + 1)
			nkappa[i] = kappa[j] + 1
			nalpha[i] = alpha[j] + 0.5
			nbeta[i] = beta[j] + kappa[j]*(x-mu[j])*(x-mu[j])/(2*(kappa[j]+1))
		}
		r = grown
		mu, kappa, alpha, beta = nmu, nkappa, nalpha, nbeta
	}
	return probs, nil
}

// standardize returns the z-normalized copy of xs; a constant sequence
// is returned as all zeros.
func standardize(xs []float64) []float64 {
	var mean float64
	for _, v := range xs {
		mean += v
	}
	mean /= float64(len(xs))
	var variance float64
	for _, v := range xs {
		d := v - mean
		variance += d * d
	}
	variance /= float64(len(xs))
	out := make([]float64, len(xs))
	if variance == 0 {
		return out
	}
	sd := math.Sqrt(variance)
	for i, v := range xs {
		out[i] = (v - mean) / sd
	}
	return out
}

// studentTPDF is the density of a location-scale Student-t distribution
// with the given degrees of freedom.
func studentTPDF(x, loc, scale, df float64) float64 {
	if scale <= 0 || df <= 0 {
		return 0
	}
	z := (x - loc) / math.Sqrt(scale)
	lg1, _ := math.Lgamma((df + 1) / 2)
	lg2, _ := math.Lgamma(df / 2)
	logPDF := lg1 - lg2 -
		0.5*math.Log(df*math.Pi*scale) -
		(df+1)/2*math.Log(1+z*z/df)
	return math.Exp(logPDF)
}

// Point is one detected change point.
type Point struct {
	// Index is the position in the input sequence.
	Index int
	// Prob is the posterior change probability at Index.
	Prob float64
	// Z is the z-score of Prob relative to all change probabilities.
	Z float64
}

// Detect runs the detector and returns every point whose change
// probability is at least zThreshold standard deviations above the
// mean change probability (pass DefaultZThreshold for the paper's
// ±2.5). Points are returned in sequence order.
func Detect(xs []float64, cfg Config, zThreshold float64) ([]Point, error) {
	if len(xs) < 3 {
		return nil, fmt.Errorf("%w: %d observations", ErrTooShort, len(xs))
	}
	for i, v := range xs {
		if v-v != 0 {
			return nil, fmt.Errorf("%w: xs[%d] = %v", ErrNonFinite, i, v)
		}
	}
	constant := true
	for _, v := range xs[1:] {
		if v != xs[0] {
			constant = false
			break
		}
	}
	if constant {
		// A constant sequence has no changes; the filter's posterior
		// tightening would otherwise register spurious drift.
		return nil, nil
	}
	probs, err := ChangeProbabilities(xs, cfg)
	if err != nil {
		return nil, err
	}
	mean := 0.0
	for _, p := range probs {
		mean += p
	}
	mean /= float64(len(probs))
	variance := 0.0
	for _, p := range probs {
		d := p - mean
		variance += d * d
	}
	variance /= float64(len(probs))
	if variance == 0 {
		return nil, nil // flat probabilities: no significant change
	}
	sd := math.Sqrt(variance)

	var out []Point
	for i, p := range probs {
		z := (p - mean) / sd
		if z >= zThreshold {
			out = append(out, Point{Index: i, Prob: p, Z: z})
		}
	}
	return out, nil
}

// MostSignificant returns the point with the largest z-score, matching
// the paper's rule of keeping a single most-significant change. The
// boolean is false when points is empty.
func MostSignificant(points []Point) (Point, bool) {
	if len(points) == 0 {
		return Point{}, false
	}
	best := points[0]
	for _, p := range points[1:] {
		if p.Z > best.Z {
			best = p
		}
	}
	return best, true
}

package runlog

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type payload struct {
	Phase int    `json:"phase"`
	Name  string `json:"name"`
}

func openT(t *testing.T, path string) (*Journal, []Record) {
	t.Helper()
	j, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return j, recs
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j, recs := openT(t, path)
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	want := []payload{{0, "phase-0"}, {1, "phase-1"}, {2, "phase-2"}}
	for _, p := range want {
		if err := j.Append("phase-done", p); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Append("run-done", nil); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, recs := openT(t, path)
	defer j2.Close()
	if len(recs) != 4 {
		t.Fatalf("replayed %d records, want 4", len(recs))
	}
	for i, p := range want {
		if recs[i].Type != "phase-done" {
			t.Errorf("record %d type = %q", i, recs[i].Type)
		}
		var got payload
		if err := recs[i].Decode(&got); err != nil {
			t.Fatal(err)
		}
		if got != p {
			t.Errorf("record %d = %+v, want %+v", i, got, p)
		}
	}
	if recs[3].Type != "run-done" || recs[3].Payload != nil {
		t.Errorf("final record = %+v", recs[3])
	}
}

// TestTornTailTruncation simulates a crash mid-append: every proper
// prefix of the file must replay to the records whose bytes are fully
// present, and Open must truncate the torn remainder so subsequent
// appends extend a valid journal.
func TestTornTailTruncation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j, _ := openT(t, path)
	var ends []int64
	for i := 0; i < 3; i++ {
		if err := j.Append("phase-done", payload{Phase: i}); err != nil {
			t.Fatal(err)
		}
		ends = append(ends, j.size)
	}
	j.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	complete := func(cut int64) int {
		n := 0
		for _, e := range ends {
			if e <= cut {
				n++
			}
		}
		return n
	}
	for cut := int64(0); cut <= int64(len(full)); cut++ {
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		j2, recs := openT(t, path)
		if len(recs) != complete(cut) {
			t.Fatalf("cut %d: replayed %d records, want %d", cut, len(recs), complete(cut))
		}
		// The torn tail is gone: appending now must yield exactly the
		// replayed records plus the new one on the next open.
		if err := j2.Append("resumed", nil); err != nil {
			t.Fatal(err)
		}
		j2.Close()
		j3, recs3 := openT(t, path)
		if len(recs3) != complete(cut)+1 || recs3[len(recs3)-1].Type != "resumed" {
			t.Fatalf("cut %d: after truncate+append replay = %d records", cut, len(recs3))
		}
		j3.Close()
	}
}

// TestCorruptRecordEndsReplay flips a payload byte of the middle
// record: replay keeps the records before it and drops it and
// everything after.
func TestCorruptRecordEndsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j, _ := openT(t, path)
	var ends []int64
	for i := 0; i < 3; i++ {
		if err := j.Append("phase-done", payload{Phase: i}); err != nil {
			t.Fatal(err)
		}
		ends = append(ends, j.size)
	}
	j.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[ends[0]+recordHeaderSize] ^= 0xFF // first payload byte of record 1
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	j2, recs := openT(t, path)
	defer j2.Close()
	if len(recs) != 1 {
		t.Fatalf("replayed %d records past corruption, want 1", len(recs))
	}
}

// TestBogusLengthPrefix guards the replay against a corrupted length
// field: a huge or zero length ends replay instead of allocating or
// looping.
func TestBogusLengthPrefix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j, _ := openT(t, path)
	if err := j.Append("phase-done", payload{Phase: 0}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	for _, n := range []uint32{0, MaxRecordSize + 1, ^uint32(0)} {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		header := make([]byte, recordHeaderSize)
		binary.LittleEndian.PutUint32(header[0:4], n)
		if err := os.WriteFile(path, append(data, header...), 0o644); err != nil {
			t.Fatal(err)
		}
		j2, recs := openT(t, path)
		if len(recs) != 1 {
			t.Fatalf("length %d: replayed %d records, want 1", n, len(recs))
		}
		j2.Close()
	}
}

func TestAppendRejectsOversizedPayload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j, _ := openT(t, path)
	defer j.Close()
	big := struct {
		Blob string `json:"blob"`
	}{Blob: strings.Repeat("x", MaxRecordSize)}
	if err := j.Append("huge", big); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized append error = %v, want ErrTooLarge", err)
	}
	// The journal is still usable and the failed append left no bytes.
	if err := j.Append("ok", payload{Phase: 1}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	j2, recs := openT(t, path)
	defer j2.Close()
	if len(recs) != 1 || recs[0].Type != "ok" {
		t.Fatalf("replay after rejected append = %+v", recs)
	}
}

func TestOpenCreatesMissingFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub-does-not-exist", "run.journal")
	if _, _, err := Open(path); err == nil {
		t.Fatal("open in missing directory should fail")
	}
	path = filepath.Join(t.TempDir(), "run.journal")
	j, recs := openT(t, path)
	defer j.Close()
	if len(recs) != 0 {
		t.Fatalf("new journal has %d records", len(recs))
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("journal file not created: %v", err)
	}
}

// Package runlog is a crash-safe, append-only run journal for
// long-running pipeline jobs. A Journal records typed progress records
// (phase completions, artifact pointers) in a single file; each record
// is length-prefixed, CRC32-checksummed, and fsync'd before Append
// returns, so a record that Append acknowledged survives a process
// kill or power loss at any later instant.
//
// On Open the journal is replayed: records are verified in order and
// the first invalid record — a torn tail from a crash mid-append, or
// any later corruption — ends the replay. The file is truncated back
// to the last valid record, so a journal is always left in a state
// where appending can continue.
//
// The journal stores opaque JSON payloads; callers define the record
// vocabulary (see internal/engine's journaled runs).
package runlog

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// MaxRecordSize bounds a single record's payload. Journals hold
// pointers and small metadata, not artifacts; a larger length prefix
// is treated as corruption rather than honored as an allocation.
const MaxRecordSize = 16 << 20

// ErrTooLarge indicates an Append payload above MaxRecordSize.
var ErrTooLarge = errors.New("runlog: record too large")

// Record is one replayed journal entry: a type tag and the opaque
// payload the writer stored with it.
type Record struct {
	Type    string          `json:"type"`
	Payload json.RawMessage `json:"payload,omitempty"`
}

// recordHeaderSize is the on-disk framing overhead per record: a
// uint32 payload length followed by a uint32 CRC32 (IEEE) of the
// payload, both little-endian.
const recordHeaderSize = 8

// Journal is an open run journal. Not safe for concurrent Append; a
// run journal has a single writer by construction.
type Journal struct {
	f    *os.File
	path string
	// size is the validated length of the file: every byte below it
	// belongs to a verified record.
	size int64
}

// Open opens (creating if absent) the journal at path, replays and
// verifies its records, truncates any torn tail, and returns the
// journal positioned for appending along with the replayed records.
func Open(path string) (*Journal, []Record, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("runlog: open %s: %w", path, err)
	}
	recs, valid, err := replay(f)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("runlog: replay %s: %w", path, err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("runlog: stat %s: %w", path, err)
	}
	if fi.Size() > valid {
		// Torn tail: a crash interrupted an append (or later bytes were
		// corrupted). Drop everything past the last verified record so
		// the next append starts from a clean boundary.
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("runlog: truncate torn tail of %s: %w", path, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("runlog: sync %s: %w", path, err)
		}
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("runlog: seek %s: %w", path, err)
	}
	return &Journal{f: f, path: path, size: valid}, recs, nil
}

// replay reads records from the start of f, stopping at the first
// invalid one. It returns the verified records and the byte offset of
// the end of the last valid record.
func replay(f *os.File) ([]Record, int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, err
	}
	var (
		recs   []Record
		offset int64
		header [recordHeaderSize]byte
	)
	for {
		if _, err := io.ReadFull(f, header[:]); err != nil {
			// EOF exactly at a record boundary is the clean case; a
			// partial header is a torn tail. Either way replay ends here.
			return recs, offset, nil
		}
		n := binary.LittleEndian.Uint32(header[0:4])
		sum := binary.LittleEndian.Uint32(header[4:8])
		if n == 0 || n > MaxRecordSize {
			return recs, offset, nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(f, payload); err != nil {
			return recs, offset, nil
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return recs, offset, nil
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			// Checksummed but undecodable: written by something else.
			// Treat as corruption from here on.
			return recs, offset, nil
		}
		recs = append(recs, rec)
		offset += recordHeaderSize + int64(n)
	}
}

// Append marshals payload, frames it with a checksum, writes it, and
// fsyncs before returning: once Append returns nil the record is
// durable and will be replayed by every future Open.
func (j *Journal) Append(typ string, payload any) error {
	var raw json.RawMessage
	if payload != nil {
		data, err := json.Marshal(payload)
		if err != nil {
			return fmt.Errorf("runlog: encode %s payload: %w", typ, err)
		}
		raw = data
	}
	body, err := json.Marshal(Record{Type: typ, Payload: raw})
	if err != nil {
		return fmt.Errorf("runlog: encode %s record: %w", typ, err)
	}
	if len(body) > MaxRecordSize {
		return fmt.Errorf("%w: %s record is %d bytes", ErrTooLarge, typ, len(body))
	}
	buf := make([]byte, recordHeaderSize+len(body))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(body))
	copy(buf[recordHeaderSize:], body)
	if _, err := j.f.WriteAt(buf, j.size); err != nil {
		return fmt.Errorf("runlog: append %s: %w", typ, err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("runlog: sync %s: %w", typ, err)
	}
	j.size += int64(len(buf))
	return nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Close releases the journal's file handle. Records already appended
// remain durable.
func (j *Journal) Close() error { return j.f.Close() }

// Decode unmarshals a record's payload into v, with a typed error on
// mismatch.
func (r Record) Decode(v any) error {
	if err := json.Unmarshal(r.Payload, v); err != nil {
		return fmt.Errorf("runlog: decode %s payload: %w", r.Type, err)
	}
	return nil
}

package stats

import "fmt"

// KendallTauDistance returns the Kendall tau rank distance between two
// rankings over the same item set: the number of item pairs (i, j) whose
// relative order differs between rankA and rankB. rankA[i] is the rank
// of item i under approach A (lower is better). Tied pairs in one ranking
// but not the other count as discordant, matching the indicator-variable
// definition in the WEFR paper (Section IV-B): Θ is 0 only when the order
// of i and j agrees in both rankings.
func KendallTauDistance(rankA, rankB []float64) (int, error) {
	if len(rankA) != len(rankB) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, len(rankA), len(rankB))
	}
	d := 0
	for i := 0; i < len(rankA); i++ {
		for j := i + 1; j < len(rankA); j++ {
			sa := sign(rankA[i] - rankA[j])
			sb := sign(rankB[i] - rankB[j])
			if sa != sb {
				d++
			}
		}
	}
	return d, nil
}

// MaxKendallTauDistance returns the largest possible Kendall tau rank
// distance for n items: the number of distinct pairs, n*(n-1)/2.
func MaxKendallTauDistance(n int) int {
	if n < 2 {
		return 0
	}
	return n * (n - 1) / 2
}

// NormalizedKendallTauDistance returns KendallTauDistance scaled to
// [0, 1] by the number of pairs. For fewer than two items it returns 0.
func NormalizedKendallTauDistance(rankA, rankB []float64) (float64, error) {
	d, err := KendallTauDistance(rankA, rankB)
	if err != nil {
		return 0, err
	}
	pairs := MaxKendallTauDistance(len(rankA))
	if pairs == 0 {
		return 0, nil
	}
	return float64(d) / float64(pairs), nil
}

func sign(x float64) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	default:
		return 0
	}
}

// ScoresToRanks converts importance scores (higher is more important)
// into 1-based fractional ranks where the most important feature has
// rank 1. Tied scores share the average of the ranks they span.
func ScoresToRanks(scores []float64) []float64 {
	neg := make([]float64, len(scores))
	for i, s := range scores {
		neg[i] = -s
	}
	return Ranks(neg)
}

// MeanRanks averages the per-item ranks across multiple rankings. All
// rankings must have the same length. The result is the element-wise
// mean; callers typically re-rank it to obtain a final ordering.
func MeanRanks(rankings [][]float64) ([]float64, error) {
	if len(rankings) == 0 {
		return nil, ErrEmptyInput
	}
	n := len(rankings[0])
	for _, r := range rankings[1:] {
		if len(r) != n {
			return nil, fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, len(r), n)
		}
	}
	out := make([]float64, n)
	for _, r := range rankings {
		for i, v := range r {
			out[i] += v
		}
	}
	for i := range out {
		out[i] /= float64(len(rankings))
	}
	return out, nil
}

// ArgsortAscending returns the item indices ordered by ascending key, so
// that keys[result[0]] is the smallest. Ties preserve original order.
func ArgsortAscending(keys []float64) []int {
	idx := make([]int, len(keys))
	for i := range idx {
		idx[i] = i
	}
	stableSortBy(idx, func(a, b int) bool { return keys[a] < keys[b] })
	return idx
}

// ArgsortDescending returns the item indices ordered by descending key,
// so that keys[result[0]] is the largest. Ties preserve original order.
func ArgsortDescending(keys []float64) []int {
	idx := make([]int, len(keys))
	for i := range idx {
		idx[i] = i
	}
	stableSortBy(idx, func(a, b int) bool { return keys[a] > keys[b] })
	return idx
}

// stableSortBy is a minimal insertion-based stable sort for index slices.
// Index slices here are small (tens of features), so insertion sort is
// both simple and fast enough.
func stableSortBy(idx []int, less func(a, b int) bool) {
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && less(idx[j], idx[j-1]); j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
}

// MedianRanks takes the element-wise median of the per-item ranks
// across multiple rankings — a more outlier-tolerant aggregate than
// MeanRanks. All rankings must have the same length.
func MedianRanks(rankings [][]float64) ([]float64, error) {
	if len(rankings) == 0 {
		return nil, ErrEmptyInput
	}
	n := len(rankings[0])
	for _, r := range rankings[1:] {
		if len(r) != n {
			return nil, fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, len(r), n)
		}
	}
	out := make([]float64, n)
	buf := make([]float64, len(rankings))
	for i := 0; i < n; i++ {
		for j, r := range rankings {
			buf[j] = r[i]
		}
		m, err := Quantile(buf, 0.5)
		if err != nil {
			return nil, err
		}
		out[i] = m
	}
	return out, nil
}

// MinRanks takes the element-wise minimum (best) rank across multiple
// rankings: a feature counts as important if any approach ranks it
// highly. All rankings must have the same length.
func MinRanks(rankings [][]float64) ([]float64, error) {
	if len(rankings) == 0 {
		return nil, ErrEmptyInput
	}
	n := len(rankings[0])
	for _, r := range rankings[1:] {
		if len(r) != n {
			return nil, fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, len(r), n)
		}
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		best := rankings[0][i]
		for _, r := range rankings[1:] {
			if r[i] < best {
				best = r[i]
			}
		}
		out[i] = best
	}
	return out, nil
}

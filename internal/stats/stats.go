// Package stats provides the hand-rolled statistical primitives that the
// rest of the repository builds on: descriptive statistics, correlation
// coefficients, rank transforms, moving averages, and rank-distance
// measures.
//
// Every function is deterministic and allocation-conscious; none of them
// depend on anything outside the standard library. Functions that cannot
// produce a meaningful answer for degenerate input (empty slices, zero
// variance) return an error or a documented sentinel value rather than
// NaN, so callers can make policy decisions explicitly.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Errors returned by the statistical primitives.
var (
	// ErrEmptyInput indicates a computation over zero samples.
	ErrEmptyInput = errors.New("stats: empty input")
	// ErrLengthMismatch indicates paired inputs of different lengths.
	ErrLengthMismatch = errors.New("stats: length mismatch")
	// ErrZeroVariance indicates an input with no dispersion where
	// dispersion is required (e.g. correlation denominators).
	ErrZeroVariance = errors.New("stats: zero variance")
	// ErrInvalidQuantile indicates a quantile outside [0, 1].
	ErrInvalidQuantile = errors.New("stats: quantile outside [0, 1]")
	// ErrInvalidWindow indicates a non-positive moving-average window.
	ErrInvalidWindow = errors.New("stats: window must be positive")
	// ErrInvalidRange indicates a position range outside the input.
	ErrInvalidRange = errors.New("stats: invalid position range")
)

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmptyInput
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// Welford accumulates a running mean and variance using Welford's
// numerically stable online algorithm. The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds x into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// Count returns the number of samples accumulated.
func (w *Welford) Count() int { return w.n }

// Mean returns the running mean, or 0 if no samples were added.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the population variance (dividing by n), or 0 if
// fewer than one sample was added.
func (w *Welford) Variance() float64 {
	if w.n == 0 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// SampleVariance returns the unbiased sample variance (dividing by n-1),
// or 0 if fewer than two samples were added.
func (w *Welford) SampleVariance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// MeanVariance returns the mean and population variance of xs in one pass.
func MeanVariance(xs []float64) (mean, variance float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmptyInput
	}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	return w.Mean(), w.Variance(), nil
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) (float64, error) {
	_, v, err := MeanVariance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// MinMax returns the minimum and maximum of xs.
func MinMax(xs []float64) (minV, maxV float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmptyInput
	}
	minV, maxV = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < minV {
			minV = x
		}
		if x > maxV {
			maxV = x
		}
	}
	return minV, maxV, nil
}

// Quantile returns the q-th quantile of xs (q in [0, 1]) using linear
// interpolation between closest ranks. The input need not be sorted.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmptyInput
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("%w: %v", ErrInvalidQuantile, q)
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// ZScores returns the z-score of every element of xs relative to the
// mean and population standard deviation of xs. If xs has zero variance
// it returns ErrZeroVariance.
func ZScores(xs []float64) ([]float64, error) {
	mean, variance, err := MeanVariance(xs)
	if err != nil {
		return nil, err
	}
	if variance == 0 {
		return nil, ErrZeroVariance
	}
	sd := math.Sqrt(variance)
	zs := make([]float64, len(xs))
	for i, x := range xs {
		zs[i] = (x - mean) / sd
	}
	return zs, nil
}

// Ranks returns 1-based fractional ranks of xs, assigning tied values the
// average of the ranks they span (the convention Spearman correlation
// requires). The smallest value receives rank 1. NaN values sort after
// every finite value (and +Inf) and tie with each other, so they always
// occupy the worst ranks instead of producing an input-order-dependent
// interleaving.
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		xa, xb := xs[idx[a]], xs[idx[b]]
		if xa != xa {
			return false // NaN never sorts before anything
		}
		if xb != xb {
			return true // everything else sorts before NaN
		}
		return xa < xb
	})

	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && sameRankValue(xs[idx[j+1]], xs[idx[i]]) {
			j++
		}
		// Average rank for the tie group spanning positions i..j.
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// sameRankValue reports whether a and b belong to the same tie group for
// ranking purposes: equal, or both NaN.
func sameRankValue(a, b float64) bool {
	return a == b || (a != a && b != b)
}

// Pearson returns the Pearson product-moment correlation between xs and
// ys. It returns ErrZeroVariance when either input is constant.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, len(xs), len(ys))
	}
	if len(xs) == 0 {
		return 0, ErrEmptyInput
	}
	mx, _ := Mean(xs)
	my, _ := Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, ErrZeroVariance
	}
	r := sxy / math.Sqrt(sxx*syy)
	if r != r {
		// Non-finite input poisoned the accumulators; a correlation is
		// undefined, which callers treat exactly like zero dispersion.
		return 0, ErrZeroVariance
	}
	return r, nil
}

// Spearman returns the Spearman rank correlation between xs and ys: the
// Pearson correlation of their fractional ranks. Ties are handled by
// average ranking.
func Spearman(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, len(xs), len(ys))
	}
	if len(xs) == 0 {
		return 0, ErrEmptyInput
	}
	return Pearson(Ranks(xs), Ranks(ys))
}

// WeightedMovingAverage returns the weighted moving average of xs with
// the given window, where the most recent element in each window has the
// highest weight (weights 1..window). The first window-1 outputs use the
// partial window available so far, so the result has the same length as
// the input.
func WeightedMovingAverage(xs []float64, window int) ([]float64, error) {
	if window <= 0 {
		return nil, fmt.Errorf("%w: %d", ErrInvalidWindow, window)
	}
	out := make([]float64, len(xs))
	for i := range xs {
		lo := i - window + 1
		if lo < 0 {
			lo = 0
		}
		var num, den float64
		for j := lo; j <= i; j++ {
			w := float64(j - lo + 1)
			num += xs[j] * w
			den += w
		}
		out[i] = num / den
	}
	return out, nil
}

// RollingStats describes the summary statistics of one rolling window.
type RollingStats struct {
	Max   float64
	Min   float64
	Mean  float64
	Std   float64
	Range float64 // Max - Min
	WMA   float64 // weighted moving average, recency-weighted
}

// Rolling computes RollingStats for every position of xs over a trailing
// window of the given size. Partial windows at the start use the samples
// available so far, so the result has the same length as the input.
func Rolling(xs []float64, window int) ([]RollingStats, error) {
	if window <= 0 {
		return nil, fmt.Errorf("%w: %d", ErrInvalidWindow, window)
	}
	if len(xs) == 0 {
		return []RollingStats{}, nil
	}
	return RollingRange(xs, window, 0, len(xs)-1)
}

// RollingRange computes RollingStats only for positions from through to
// (inclusive) of xs. The values are identical to
// Rolling(xs, window)[from : to+1] — each position's trailing window
// still reaches back before `from` into the full series — but only the
// requested positions are computed, which is what lets a scoring pass
// over a short day range skip re-deriving statistics for the entire
// series history.
//
// Non-finite samples (NaN, ±Inf) are skipped: each window's statistics
// summarize only its finite samples, with weights keyed to the sample's
// position in the window. A window with no finite samples yields
// all-NaN stats, which downstream consumers treat as missing.
func RollingRange(xs []float64, window, from, to int) ([]RollingStats, error) {
	if window <= 0 {
		return nil, fmt.Errorf("%w: %d", ErrInvalidWindow, window)
	}
	if from < 0 || to >= len(xs) || from > to {
		return nil, fmt.Errorf("%w: [%d, %d] in input of length %d", ErrInvalidRange, from, to, len(xs))
	}
	out := make([]RollingStats, to-from+1)
	rollingRangeInto(out, xs, window, from, to)
	return out, nil
}

// RollingRangeInto is RollingRange writing into a caller-provided
// buffer, which must have length to-from+1; it allocates nothing.
// Repeated extraction passes (one per feature per drive) reuse one
// buffer instead of allocating a fresh result slice each call.
func RollingRangeInto(out []RollingStats, xs []float64, window, from, to int) error {
	if window <= 0 {
		return fmt.Errorf("%w: %d", ErrInvalidWindow, window)
	}
	if from < 0 || to >= len(xs) || from > to {
		return fmt.Errorf("%w: [%d, %d] in input of length %d", ErrInvalidRange, from, to, len(xs))
	}
	if len(out) != to-from+1 {
		return fmt.Errorf("%w: buffer length %d for range [%d, %d]", ErrInvalidRange, len(out), from, to)
	}
	rollingRangeInto(out, xs, window, from, to)
	return nil
}

func rollingRangeInto(out []RollingStats, xs []float64, window, from, to int) {
	for i := from; i <= to; i++ {
		lo := i - window + 1
		if lo < 0 {
			lo = 0
		}
		var w Welford
		minV, maxV := math.Inf(1), math.Inf(-1)
		var num, den float64
		for j := lo; j <= i; j++ {
			x := xs[j]
			if x-x != 0 { // non-finite
				continue
			}
			w.Add(x)
			if x < minV {
				minV = x
			}
			if x > maxV {
				maxV = x
			}
			wt := float64(j - lo + 1)
			num += x * wt
			den += wt
		}
		if w.Count() == 0 {
			nan := math.NaN()
			out[i-from] = RollingStats{Max: nan, Min: nan, Mean: nan, Std: nan, Range: nan, WMA: nan}
			continue
		}
		out[i-from] = RollingStats{
			Max:   maxV,
			Min:   minV,
			Mean:  w.Mean(),
			Std:   w.StdDev(),
			Range: maxV - minV,
			WMA:   num / den,
		}
	}
}

// Histogram bins xs into the given number of equal-width bins spanning
// [min, max] and returns the per-bin counts along with the bin edges
// (len(edges) == bins+1). Values equal to max fall into the last bin.
func Histogram(xs []float64, bins int) (counts []int, edges []float64, err error) {
	if len(xs) == 0 {
		return nil, nil, ErrEmptyInput
	}
	if bins <= 0 {
		return nil, nil, fmt.Errorf("stats: bins must be positive, got %d", bins)
	}
	minV, maxV, _ := MinMax(xs)
	counts = make([]int, bins)
	edges = make([]float64, bins+1)
	width := (maxV - minV) / float64(bins)
	for i := range edges {
		edges[i] = minV + float64(i)*width
	}
	edges[bins] = maxV
	if width == 0 {
		// All values identical: everything lands in bin 0.
		counts[0] = len(xs)
		return counts, edges, nil
	}
	for _, x := range xs {
		b := int((x - minV) / width)
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
	}
	return counts, edges, nil
}

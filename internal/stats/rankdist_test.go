package stats

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKendallTauDistance(t *testing.T) {
	tests := []struct {
		name string
		a, b []float64
		want int
	}{
		{"identical", []float64{1, 2, 3}, []float64{1, 2, 3}, 0},
		{"reversed", []float64{1, 2, 3}, []float64{3, 2, 1}, 3},
		{"one swap", []float64{1, 2, 3}, []float64{2, 1, 3}, 1},
		{"empty", nil, nil, 0},
		{"single", []float64{1}, []float64{1}, 0},
		// A tie in one ranking but an order in the other is discordant.
		{"tie vs order", []float64{1, 1}, []float64{1, 2}, 1},
		{"tie vs tie", []float64{1, 1}, []float64{2, 2}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := KendallTauDistance(tt.a, tt.b)
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Errorf("KendallTauDistance = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestKendallTauDistanceMismatch(t *testing.T) {
	if _, err := KendallTauDistance([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrLengthMismatch) {
		t.Errorf("error = %v, want ErrLengthMismatch", err)
	}
}

func TestKendallTauSymmetry(t *testing.T) {
	// Property: D(a, b) == D(b, a), and 0 <= D <= n(n-1)/2.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		a := rng.Perm(n)
		b := rng.Perm(n)
		fa := make([]float64, n)
		fb := make([]float64, n)
		for i := range a {
			fa[i] = float64(a[i])
			fb[i] = float64(b[i])
		}
		dab, _ := KendallTauDistance(fa, fb)
		dba, _ := KendallTauDistance(fb, fa)
		return dab == dba && dab >= 0 && dab <= MaxKendallTauDistance(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKendallTauTriangleInequality(t *testing.T) {
	// Property: D is a metric on permutations: D(a,c) <= D(a,b) + D(b,c).
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(10)
		mk := func() []float64 {
			p := rng.Perm(n)
			f := make([]float64, n)
			for i := range p {
				f[i] = float64(p[i])
			}
			return f
		}
		a, b, c := mk(), mk(), mk()
		dab, _ := KendallTauDistance(a, b)
		dbc, _ := KendallTauDistance(b, c)
		dac, _ := KendallTauDistance(a, c)
		if dac > dab+dbc {
			t.Fatalf("triangle inequality violated: D(a,c)=%d > D(a,b)+D(b,c)=%d", dac, dab+dbc)
		}
	}
}

func TestMaxKendallTauDistance(t *testing.T) {
	tests := []struct{ n, want int }{{0, 0}, {1, 0}, {2, 1}, {3, 3}, {5, 10}}
	for _, tt := range tests {
		if got := MaxKendallTauDistance(tt.n); got != tt.want {
			t.Errorf("MaxKendallTauDistance(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestNormalizedKendallTauDistance(t *testing.T) {
	got, err := NormalizedKendallTauDistance([]float64{1, 2, 3}, []float64{3, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("normalized distance of reversal = %v, want 1", got)
	}
	got, err = NormalizedKendallTauDistance([]float64{1}, []float64{1})
	if err != nil || got != 0 {
		t.Errorf("single item = (%v, %v), want (0, nil)", got, err)
	}
}

func TestScoresToRanks(t *testing.T) {
	// Highest score gets rank 1.
	ranks := ScoresToRanks([]float64{0.1, 0.9, 0.5})
	want := []float64{3, 1, 2}
	for i := range ranks {
		if ranks[i] != want[i] {
			t.Errorf("ScoresToRanks[%d] = %v, want %v", i, ranks[i], want[i])
		}
	}
}

func TestScoresToRanksTies(t *testing.T) {
	ranks := ScoresToRanks([]float64{0.5, 0.5, 0.1})
	if ranks[0] != 1.5 || ranks[1] != 1.5 || ranks[2] != 3 {
		t.Errorf("ScoresToRanks with ties = %v, want [1.5 1.5 3]", ranks)
	}
}

func TestMeanRanks(t *testing.T) {
	got, err := MeanRanks([][]float64{{1, 2, 3}, {3, 2, 1}})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != 2 {
			t.Errorf("MeanRanks[%d] = %v, want 2", i, v)
		}
	}
	if _, err := MeanRanks(nil); !errors.Is(err, ErrEmptyInput) {
		t.Errorf("MeanRanks(nil) error = %v", err)
	}
	if _, err := MeanRanks([][]float64{{1}, {1, 2}}); !errors.Is(err, ErrLengthMismatch) {
		t.Errorf("MeanRanks(mismatch) error = %v", err)
	}
}

func TestArgsort(t *testing.T) {
	keys := []float64{3, 1, 2}
	asc := ArgsortAscending(keys)
	if asc[0] != 1 || asc[1] != 2 || asc[2] != 0 {
		t.Errorf("ArgsortAscending = %v", asc)
	}
	desc := ArgsortDescending(keys)
	if desc[0] != 0 || desc[1] != 2 || desc[2] != 1 {
		t.Errorf("ArgsortDescending = %v", desc)
	}
}

func TestArgsortStability(t *testing.T) {
	keys := []float64{1, 1, 1}
	asc := ArgsortAscending(keys)
	for i, v := range asc {
		if v != i {
			t.Errorf("ArgsortAscending not stable: %v", asc)
			break
		}
	}
}

func TestArgsortIsPermutation(t *testing.T) {
	f := func(raw []float64) bool {
		for i, v := range raw {
			if v != v { // NaN breaks ordering; exclude
				raw[i] = 0
			}
		}
		idx := ArgsortAscending(raw)
		seen := make(map[int]bool, len(idx))
		for _, i := range idx {
			if i < 0 || i >= len(raw) || seen[i] {
				return false
			}
			seen[i] = true
		}
		for i := 1; i < len(idx); i++ {
			if raw[idx[i]] < raw[idx[i-1]] {
				return false
			}
		}
		return len(idx) == len(raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMedianRanks(t *testing.T) {
	got, err := MedianRanks([][]float64{{1, 2, 3}, {3, 2, 1}, {1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("MedianRanks[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if _, err := MedianRanks(nil); !errors.Is(err, ErrEmptyInput) {
		t.Errorf("MedianRanks(nil) error = %v", err)
	}
	if _, err := MedianRanks([][]float64{{1}, {1, 2}}); !errors.Is(err, ErrLengthMismatch) {
		t.Errorf("MedianRanks(mismatch) error = %v", err)
	}
}

func TestMedianRanksRobustToOneOutlier(t *testing.T) {
	// Four agreeing rankings plus one reversed: the median ignores the
	// outlier entirely.
	agree := []float64{1, 2, 3, 4}
	reversed := []float64{4, 3, 2, 1}
	got, err := MedianRanks([][]float64{agree, agree, agree, agree, reversed})
	if err != nil {
		t.Fatal(err)
	}
	for i := range agree {
		if got[i] != agree[i] {
			t.Errorf("median[%d] = %v, want %v", i, got[i], agree[i])
		}
	}
}

func TestMinRanks(t *testing.T) {
	got, err := MinRanks([][]float64{{1, 3, 2}, {2, 1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("MinRanks[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if _, err := MinRanks(nil); !errors.Is(err, ErrEmptyInput) {
		t.Errorf("MinRanks(nil) error = %v", err)
	}
	if _, err := MinRanks([][]float64{{1}, {1, 2}}); !errors.Is(err, ErrLengthMismatch) {
		t.Errorf("MinRanks(mismatch) error = %v", err)
	}
}

package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"single", []float64{4}, 4},
		{"pair", []float64{2, 4}, 3},
		{"negatives", []float64{-1, 1, -3, 3}, 0},
		{"fractions", []float64{0.5, 1.5, 2.5}, 1.5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Mean(tt.in)
			if err != nil {
				t.Fatalf("Mean(%v) error: %v", tt.in, err)
			}
			if !almostEqual(got, tt.want, eps) {
				t.Errorf("Mean(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestMeanEmpty(t *testing.T) {
	if _, err := Mean(nil); !errors.Is(err, ErrEmptyInput) {
		t.Errorf("Mean(nil) error = %v, want ErrEmptyInput", err)
	}
}

func TestWelfordMatchesTwoPass(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.NormFloat64()*7 + 3
	}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	mean, _ := Mean(xs)
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	wantVar := ss / float64(len(xs))
	if !almostEqual(w.Mean(), mean, 1e-9) {
		t.Errorf("Welford mean = %v, want %v", w.Mean(), mean)
	}
	if !almostEqual(w.Variance(), wantVar, 1e-7) {
		t.Errorf("Welford variance = %v, want %v", w.Variance(), wantVar)
	}
	if w.Count() != len(xs) {
		t.Errorf("Welford count = %d, want %d", w.Count(), len(xs))
	}
}

func TestWelfordZeroValue(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.SampleVariance() != 0 {
		t.Error("zero-value Welford should report zeros")
	}
	w.Add(5)
	if w.SampleVariance() != 0 {
		t.Error("single-sample SampleVariance should be 0")
	}
}

func TestMinMax(t *testing.T) {
	minV, maxV, err := MinMax([]float64{3, -2, 8, 0})
	if err != nil {
		t.Fatal(err)
	}
	if minV != -2 || maxV != 8 {
		t.Errorf("MinMax = (%v, %v), want (-2, 8)", minV, maxV)
	}
	if _, _, err := MinMax(nil); !errors.Is(err, ErrEmptyInput) {
		t.Errorf("MinMax(nil) error = %v, want ErrEmptyInput", err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, tt := range tests {
		got, err := Quantile(xs, tt.q)
		if err != nil {
			t.Fatalf("Quantile(%v): %v", tt.q, err)
		}
		if !almostEqual(got, tt.want, eps) {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if _, err := Quantile(xs, 1.5); !errors.Is(err, ErrInvalidQuantile) {
		t.Errorf("Quantile(1.5) error = %v, want ErrInvalidQuantile", err)
	}
	if _, err := Quantile(nil, 0.5); !errors.Is(err, ErrEmptyInput) {
		t.Errorf("Quantile(nil) error = %v, want ErrEmptyInput", err)
	}
	got, err := Quantile([]float64{42}, 0.99)
	if err != nil || got != 42 {
		t.Errorf("Quantile(single, .99) = (%v, %v), want (42, nil)", got, err)
	}
}

func TestQuantileInterpolates(t *testing.T) {
	got, err := Quantile([]float64{0, 10}, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 3, eps) {
		t.Errorf("Quantile = %v, want 3", got)
	}
}

func TestZScores(t *testing.T) {
	zs, err := ZScores([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	// Known example: mean 5, population std 2.
	want := []float64{-1.5, -0.5, -0.5, -0.5, 0, 0, 1, 2}
	for i := range zs {
		if !almostEqual(zs[i], want[i], eps) {
			t.Errorf("ZScores[%d] = %v, want %v", i, zs[i], want[i])
		}
	}
	if _, err := ZScores([]float64{3, 3, 3}); !errors.Is(err, ErrZeroVariance) {
		t.Errorf("ZScores(constant) error = %v, want ErrZeroVariance", err)
	}
}

func TestRanks(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want []float64
	}{
		{"distinct", []float64{30, 10, 20}, []float64{3, 1, 2}},
		{"ties", []float64{1, 2, 2, 3}, []float64{1, 2.5, 2.5, 4}},
		{"all tied", []float64{5, 5, 5}, []float64{2, 2, 2}},
		{"empty", nil, []float64{}},
		{"single", []float64{9}, []float64{1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Ranks(tt.in)
			if len(got) != len(tt.want) {
				t.Fatalf("Ranks len = %d, want %d", len(got), len(tt.want))
			}
			for i := range got {
				if !almostEqual(got[i], tt.want[i], eps) {
					t.Errorf("Ranks[%d] = %v, want %v", i, got[i], tt.want[i])
				}
			}
		})
	}
}

func TestRanksSumInvariant(t *testing.T) {
	// Property: fractional ranks always sum to n(n+1)/2 regardless of ties.
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		// Map values into a small set to force ties.
		xs := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			xs[i] = math.Mod(math.Abs(v), 5)
		}
		ranks := Ranks(xs)
		sum := 0.0
		for _, r := range ranks {
			sum += r
		}
		n := float64(len(xs))
		return almostEqual(sum, n*(n+1)/2, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPearson(t *testing.T) {
	tests := []struct {
		name    string
		xs, ys  []float64
		want    float64
		wantErr error
	}{
		{"perfect positive", []float64{1, 2, 3}, []float64{2, 4, 6}, 1, nil},
		{"perfect negative", []float64{1, 2, 3}, []float64{6, 4, 2}, -1, nil},
		{"constant x", []float64{1, 1, 1}, []float64{1, 2, 3}, 0, ErrZeroVariance},
		{"mismatch", []float64{1}, []float64{1, 2}, 0, ErrLengthMismatch},
		{"empty", nil, nil, 0, ErrEmptyInput},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Pearson(tt.xs, tt.ys)
			if tt.wantErr != nil {
				if !errors.Is(err, tt.wantErr) {
					t.Fatalf("error = %v, want %v", err, tt.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if !almostEqual(got, tt.want, eps) {
				t.Errorf("Pearson = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestPearsonKnownValue(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 1, 4, 3, 5}
	got, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 0.8, 1e-12) {
		t.Errorf("Pearson = %v, want 0.8", got)
	}
}

func TestSpearmanMonotonic(t *testing.T) {
	// Spearman is 1 for any strictly increasing transform, even nonlinear.
	xs := []float64{1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = math.Exp(x)
	}
	got, err := Spearman(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 1, eps) {
		t.Errorf("Spearman(exp) = %v, want 1", got)
	}
}

func TestSpearmanWithTies(t *testing.T) {
	xs := []float64{1, 2, 2, 3}
	ys := []float64{10, 20, 20, 30}
	got, err := Spearman(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 1, eps) {
		t.Errorf("Spearman(tied identical order) = %v, want 1", got)
	}
}

func TestPearsonBounds(t *testing.T) {
	// Property: |r| <= 1 for random non-degenerate input.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(100)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = rng.NormFloat64()
		}
		r, err := Pearson(xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		if r < -1-eps || r > 1+eps {
			t.Fatalf("Pearson out of bounds: %v", r)
		}
	}
}

func TestWeightedMovingAverage(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	got, err := WeightedMovingAverage(xs, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Window 3 weights are 1,2,3 (most recent heaviest).
	want := []float64{
		1,
		(1*1 + 2*2) / 3.0,
		(1*1 + 2*2 + 3*3) / 6.0,
		(2*1 + 3*2 + 4*3) / 6.0,
	}
	for i := range got {
		if !almostEqual(got[i], want[i], eps) {
			t.Errorf("WMA[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if _, err := WeightedMovingAverage(xs, 0); !errors.Is(err, ErrInvalidWindow) {
		t.Errorf("WMA(window=0) error = %v, want ErrInvalidWindow", err)
	}
}

func TestWMAConstantSeries(t *testing.T) {
	// Property: WMA of a constant series is that constant everywhere.
	xs := []float64{7, 7, 7, 7, 7, 7}
	got, err := WeightedMovingAverage(xs, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if !almostEqual(v, 7, eps) {
			t.Errorf("WMA[%d] = %v, want 7", i, v)
		}
	}
}

func TestRolling(t *testing.T) {
	xs := []float64{5, 1, 3}
	got, err := Rolling(xs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Max != 5 || got[0].Min != 5 || got[0].Range != 0 {
		t.Errorf("Rolling[0] = %+v, want degenerate window of 5", got[0])
	}
	if got[1].Max != 5 || got[1].Min != 1 || got[1].Range != 4 {
		t.Errorf("Rolling[1] = %+v", got[1])
	}
	if !almostEqual(got[1].Mean, 3, eps) {
		t.Errorf("Rolling[1].Mean = %v, want 3", got[1].Mean)
	}
	if got[2].Max != 3 || got[2].Min != 1 {
		t.Errorf("Rolling[2] = %+v", got[2])
	}
	// WMA of window [1,3] with weights 1,2 = (1+6)/3.
	if !almostEqual(got[2].WMA, 7.0/3, eps) {
		t.Errorf("Rolling[2].WMA = %v, want %v", got[2].WMA, 7.0/3)
	}
}

func TestRollingInvariants(t *testing.T) {
	// Property: Min <= Mean <= Max and Min <= WMA <= Max in every window.
	rng := rand.New(rand.NewSource(11))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 10
	}
	for _, window := range []int{1, 3, 7, 50} {
		rs, err := Rolling(xs, window)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range rs {
			if r.Mean < r.Min-eps || r.Mean > r.Max+eps {
				t.Fatalf("window %d pos %d: mean %v outside [%v, %v]", window, i, r.Mean, r.Min, r.Max)
			}
			if r.WMA < r.Min-eps || r.WMA > r.Max+eps {
				t.Fatalf("window %d pos %d: wma %v outside [%v, %v]", window, i, r.WMA, r.Min, r.Max)
			}
			if r.Range < -eps {
				t.Fatalf("window %d pos %d: negative range %v", window, i, r.Range)
			}
		}
	}
}

func TestHistogram(t *testing.T) {
	counts, edges, err := Histogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 5)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 11 {
		t.Errorf("histogram total = %d, want 11", total)
	}
	if len(edges) != 6 {
		t.Errorf("edges len = %d, want 6", len(edges))
	}
	if edges[0] != 0 || edges[5] != 10 {
		t.Errorf("edges = %v", edges)
	}
	// Max value must land in the last bin, not overflow.
	if counts[4] < 1 {
		t.Error("max value not in last bin")
	}
}

func TestHistogramConstant(t *testing.T) {
	counts, _, err := Histogram([]float64{2, 2, 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if counts[0] != 3 {
		t.Errorf("constant histogram counts = %v, want all in bin 0", counts)
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, _, err := Histogram(nil, 3); !errors.Is(err, ErrEmptyInput) {
		t.Errorf("Histogram(nil) error = %v", err)
	}
	if _, _, err := Histogram([]float64{1}, 0); err == nil {
		t.Error("Histogram(bins=0) should error")
	}
}

func TestQuantileMonotoneInQ(t *testing.T) {
	// Property: Quantile is nondecreasing in q and bounded by min/max.
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(200)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		minV, maxV, _ := MinMax(xs)
		prev := minV
		for q := 0.0; q <= 1.0001; q += 0.05 {
			qq := math.Min(q, 1)
			v, err := Quantile(xs, qq)
			if err != nil {
				t.Fatal(err)
			}
			if v < prev-eps {
				t.Fatalf("quantile decreased at q=%v: %v < %v", qq, v, prev)
			}
			if v < minV-eps || v > maxV+eps {
				t.Fatalf("quantile %v outside [%v, %v]", v, minV, maxV)
			}
			prev = v
		}
	}
}

func TestSpearmanEqualsPearsonOnRanks(t *testing.T) {
	// Property: Spearman(x, y) == Pearson(rank(x), rank(y)) by
	// definition; cross-check the two public paths.
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(100)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = float64(rng.Intn(10)) // ties included
			ys[i] = rng.NormFloat64()
		}
		s, err1 := Spearman(xs, ys)
		p, err2 := Pearson(Ranks(xs), Ranks(ys))
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("error disagreement: %v vs %v", err1, err2)
		}
		if err1 != nil {
			continue
		}
		if math.Abs(s-p) > 1e-12 {
			t.Fatalf("Spearman %v != Pearson-on-ranks %v", s, p)
		}
	}
}

func TestWelfordMergesIncrementally(t *testing.T) {
	// Adding elements one at a time matches MeanVariance at every
	// prefix.
	xs := []float64{3, -1, 4, 1, -5, 9, 2, 6}
	var w Welford
	for i, x := range xs {
		w.Add(x)
		mean, variance, err := MeanVariance(xs[:i+1])
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(w.Mean(), mean, 1e-12) || !almostEqual(w.Variance(), variance, 1e-12) {
			t.Fatalf("prefix %d: welford (%v, %v) vs two-pass (%v, %v)", i+1, w.Mean(), w.Variance(), mean, variance)
		}
	}
}

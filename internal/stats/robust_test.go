package stats

import (
	"math"
	"testing"
)

// Regression: NaN scores must not poison rank aggregation. A NaN score
// historically received an arbitrary input-order-dependent rank, which
// then flowed NaN-free but wrong into MeanRanks; now NaN always takes
// the worst ranks.
func TestScoresToRanksNaNWorst(t *testing.T) {
	scores := []float64{0.9, math.NaN(), 0.5, math.NaN(), 0.7}
	ranks := ScoresToRanks(scores)
	for i, r := range ranks {
		if r != r {
			t.Fatalf("rank[%d] is NaN; ranks must always be defined", i)
		}
	}
	// Finite scores rank by importance: 0.9 → 1, 0.7 → 2, 0.5 → 3.
	if ranks[0] != 1 || ranks[4] != 2 || ranks[2] != 3 {
		t.Errorf("finite ranks = %v, want [1 _ 3 _ 2]", ranks)
	}
	// The two NaNs tie for the worst ranks (4 and 5 → 4.5 each).
	if ranks[1] != 4.5 || ranks[3] != 4.5 {
		t.Errorf("NaN ranks = %v, %v, want 4.5, 4.5", ranks[1], ranks[3])
	}
}

func TestRanksNaNOrdering(t *testing.T) {
	xs := []float64{math.NaN(), 2, math.Inf(1), 1, math.NaN()}
	ranks := Ranks(xs)
	want := []float64{4.5, 2, 3, 1, 4.5}
	for i := range want {
		if ranks[i] != want[i] {
			t.Fatalf("Ranks(%v) = %v, want %v", xs, ranks, want)
		}
	}
}

func TestPearsonNonFiniteInput(t *testing.T) {
	xs := []float64{1, math.NaN(), 3, 4}
	ys := []float64{0, 1, 0, 1}
	if _, err := Pearson(xs, ys); err != ErrZeroVariance {
		t.Errorf("Pearson with NaN input: err = %v, want ErrZeroVariance", err)
	}
	if _, err := Pearson([]float64{math.Inf(1), 1, 2}, []float64{0, 1, 0}); err != ErrZeroVariance {
		t.Errorf("Pearson with Inf input: err = %v, want ErrZeroVariance", err)
	}
}

func TestRollingRangeSkipsNonFinite(t *testing.T) {
	xs := []float64{1, math.NaN(), 3, math.Inf(1), 5}
	out, err := Rolling(xs, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Window at position 2 is {1, NaN, 3}: stats over {1, 3}.
	if out[2].Mean != 2 || out[2].Min != 1 || out[2].Max != 3 {
		t.Errorf("window stats = %+v, want mean 2, min 1, max 3", out[2])
	}
	// WMA weights keyed to window position: 1*1 + 3*3 over 1+3.
	if out[2].WMA != 10.0/4 {
		t.Errorf("WMA = %v, want 2.5", out[2].WMA)
	}
	// Window at position 3 is {NaN, 3, +Inf}: stats over {3} alone.
	if out[3].Mean != 3 || out[3].Std != 0 || out[3].Range != 0 {
		t.Errorf("window stats = %+v, want degenerate singleton at 3", out[3])
	}
}

func TestRollingRangeAllMissingWindow(t *testing.T) {
	xs := []float64{math.NaN(), math.NaN(), 7}
	out, err := Rolling(xs, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := out[1] // window {NaN, NaN}
	for name, v := range map[string]float64{
		"Max": s.Max, "Min": s.Min, "Mean": s.Mean,
		"Std": s.Std, "Range": s.Range, "WMA": s.WMA,
	} {
		if v == v {
			t.Errorf("all-missing window %s = %v, want NaN", name, v)
		}
	}
	if out[2].Mean != 7 {
		t.Errorf("window {NaN, 7} mean = %v, want 7", out[2].Mean)
	}
}

package selection

import (
	"math"
	"testing"

	"repro/internal/frame"
)

// dirtyFrame builds a frame with one informative feature, one constant
// feature, one all-NaN feature, and one partially missing feature.
func dirtyFrame(t *testing.T) *frame.Frame {
	t.Helper()
	n := 40
	names := []string{"signal", "constant", "allnan", "partial"}
	cols := make([][]float64, len(names))
	for i := range cols {
		cols[i] = make([]float64, n)
	}
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		if i%2 == 1 {
			labels[i] = 1
		}
		signal := float64(i%2)*10 + float64(i%5)
		partial := signal
		if i%4 == 0 {
			partial = math.NaN()
		}
		cols[0][i] = signal
		cols[1][i] = 3.25
		cols[2][i] = math.NaN()
		cols[3][i] = partial
	}
	fr, err := frame.New(names, cols, labels, nil)
	if err != nil {
		t.Fatal(err)
	}
	return fr
}

// Regression for the satellite fix: constant and all-missing columns
// must receive a defined worst rank from every ranker — never a NaN
// rank, which would silently poison the mean-rank aggregation.
func TestRankersTolerateDegenerateColumns(t *testing.T) {
	fr := dirtyFrame(t)
	rankers := append(DefaultRankers(7), MutualInfo{})
	for _, r := range rankers {
		res, err := r.Rank(fr)
		if err != nil {
			t.Fatalf("%s: %v", r.Name(), err)
		}
		if len(res.Ranks) != fr.NumFeatures() {
			t.Fatalf("%s: got %d ranks, want %d", r.Name(), len(res.Ranks), fr.NumFeatures())
		}
		for i, rank := range res.Ranks {
			if rank != rank {
				t.Errorf("%s: rank[%d] is NaN", r.Name(), i)
			}
		}
		for i, s := range res.Scores {
			if s != s && i != 2 {
				// Scores may legitimately be 0 but never NaN; the
				// all-NaN column (index 2) must score exactly 0.
				t.Errorf("%s: score[%d] is NaN", r.Name(), i)
			}
		}
		if res.Scores[2] != 0 {
			t.Errorf("%s: all-NaN column score = %v, want 0", r.Name(), res.Scores[2])
		}
		// The informative feature must outrank both degenerate ones.
		if res.Ranks[0] >= res.Ranks[1] || res.Ranks[0] >= res.Ranks[2] {
			t.Errorf("%s: signal rank %v not better than degenerate ranks %v, %v",
				r.Name(), res.Ranks[0], res.Ranks[1], res.Ranks[2])
		}
	}
}

// Statistical rankers must drop missing rows pairwise rather than let a
// few NaNs zero out an otherwise informative column.
func TestRankersPairwiseDeletion(t *testing.T) {
	fr := dirtyFrame(t)
	for _, r := range []Ranker{Pearson{}, Spearman{}, JIndex{}, MutualInfo{}} {
		res, err := r.Rank(fr)
		if err != nil {
			t.Fatalf("%s: %v", r.Name(), err)
		}
		if res.Scores[3] <= 0 {
			t.Errorf("%s: partially missing informative column score = %v, want > 0",
				r.Name(), res.Scores[3])
		}
	}
}

package selection

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/frame"
)

// syntheticFrame builds a frame with a strong monotone feature, a
// strong nonlinear (quadratic) feature, a weak feature, a noise
// feature, and a constant feature.
func syntheticFrame(t *testing.T, n int, seed int64) *frame.Frame {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	strong := make([]float64, n)
	nonlin := make([]float64, n)
	weak := make([]float64, n)
	noise := make([]float64, n)
	constant := make([]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.3 {
			y[i] = 1
		}
		base := float64(y[i])
		strong[i] = base*3 + rng.NormFloat64()
		// Nonlinear: informative through |x|, not linearly.
		v := rng.NormFloat64()
		if y[i] == 1 {
			v = 2.5 + rng.NormFloat64()*0.3
			if rng.Float64() < 0.5 {
				v = -v
			}
		}
		nonlin[i] = v
		weak[i] = base*0.4 + rng.NormFloat64()
		noise[i] = rng.NormFloat64()
		constant[i] = 7
	}
	fr, err := frame.New(
		[]string{"strong", "nonlin", "weak", "noise", "constant"},
		[][]float64{strong, nonlin, weak, noise, constant},
		y, nil,
	)
	if err != nil {
		t.Fatal(err)
	}
	return fr
}

func allRankers() []Ranker { return DefaultRankers(42) }

func TestRankerNames(t *testing.T) {
	want := []string{"Pearson", "Spearman", "J-index", "Random Forest", "XGBoost"}
	for i, r := range allRankers() {
		if r.Name() != want[i] {
			t.Errorf("ranker %d name = %q, want %q", i, r.Name(), want[i])
		}
	}
}

func TestAllRankersFindStrongFeature(t *testing.T) {
	fr := syntheticFrame(t, 800, 1)
	for _, r := range allRankers() {
		res, err := r.Rank(fr)
		if err != nil {
			t.Fatalf("%s: %v", r.Name(), err)
		}
		if len(res.Scores) != 5 || len(res.Ranks) != 5 {
			t.Fatalf("%s: result shape (%d, %d)", r.Name(), len(res.Scores), len(res.Ranks))
		}
		// The strong feature must out-rank noise and constant for
		// every approach.
		if res.Ranks[0] >= res.Ranks[3] {
			t.Errorf("%s: strong rank %v not better than noise %v", r.Name(), res.Ranks[0], res.Ranks[3])
		}
		if res.Ranks[0] >= res.Ranks[4] {
			t.Errorf("%s: strong rank %v not better than constant %v", r.Name(), res.Ranks[0], res.Ranks[4])
		}
		// Ranks must be a valid fractional ranking: sum = n(n+1)/2.
		sum := 0.0
		for _, v := range res.Ranks {
			sum += v
		}
		if math.Abs(sum-15) > 1e-9 {
			t.Errorf("%s: ranks sum %v, want 15", r.Name(), sum)
		}
	}
}

func TestRankersDisagreeOnNonlinear(t *testing.T) {
	// Pearson (linear) should underrate the symmetric nonlinear
	// feature relative to tree-based approaches — the disagreement the
	// paper's Table IV documents.
	fr := syntheticFrame(t, 1500, 2)
	p, err := Pearson{}.Rank(fr)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := RandomForest{Seed: 3}.Rank(fr)
	if err != nil {
		t.Fatal(err)
	}
	if rf.Ranks[1] >= p.Ranks[1] {
		t.Errorf("RF should rank nonlinear better (%v) than Pearson does (%v)", rf.Ranks[1], p.Ranks[1])
	}
	// Tree models should put nonlinear near the top.
	if rf.Ranks[1] > 2.5 {
		t.Errorf("RF rank of nonlinear = %v, want <= 2.5", rf.Ranks[1])
	}
}

func TestValidationErrors(t *testing.T) {
	single, err := frame.New([]string{"a"}, [][]float64{{1, 2}}, []int{1, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	empty, err := frame.New([]string{"a"}, [][]float64{{}}, []int{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range allRankers() {
		if _, err := r.Rank(single); !errors.Is(err, ErrSingleClass) {
			t.Errorf("%s single-class error = %v", r.Name(), err)
		}
		if _, err := r.Rank(empty); !errors.Is(err, ErrEmptyFrame) {
			t.Errorf("%s empty error = %v", r.Name(), err)
		}
		if _, err := r.Rank(nil); !errors.Is(err, ErrEmptyFrame) {
			t.Errorf("%s nil error = %v", r.Name(), err)
		}
	}
}

func TestJIndexPerfectFeature(t *testing.T) {
	// A perfectly separating feature has Youden index 1.
	fr, err := frame.New(
		[]string{"perfect", "anti"},
		[][]float64{{1, 2, 3, 10, 11, 12}, {12, 11, 10, 3, 2, 1}},
		[]int{0, 0, 0, 1, 1, 1}, nil,
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := JIndex{}.Rank(fr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scores[0] != 1 {
		t.Errorf("J of perfect feature = %v, want 1", res.Scores[0])
	}
	// Direction-agnostic: the inverted feature is equally good.
	if res.Scores[1] != 1 {
		t.Errorf("J of inverted feature = %v, want 1", res.Scores[1])
	}
}

func TestJIndexConstantFeature(t *testing.T) {
	fr, err := frame.New(
		[]string{"const"},
		[][]float64{{5, 5, 5, 5}},
		[]int{0, 1, 0, 1}, nil,
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := JIndex{}.Rank(fr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scores[0] != 0 {
		t.Errorf("J of constant = %v, want 0", res.Scores[0])
	}
}

func TestTopNAndTopPercent(t *testing.T) {
	res := Result{
		Scores: []float64{0.1, 0.9, 0.5, 0.7},
		Ranks:  []float64{4, 1, 3, 2},
	}
	top2 := res.TopN(2)
	if len(top2) != 2 || top2[0] != 1 || top2[1] != 3 {
		t.Errorf("TopN(2) = %v", top2)
	}
	if got := res.TopN(100); len(got) != 4 {
		t.Errorf("TopN(100) = %v", got)
	}
	if got := res.TopN(-1); len(got) != 0 {
		t.Errorf("TopN(-1) = %v", got)
	}
	if got := res.TopPercent(0.5); len(got) != 2 {
		t.Errorf("TopPercent(0.5) = %v", got)
	}
	// Tiny percentage keeps at least one feature.
	if got := res.TopPercent(0.01); len(got) != 1 || got[0] != 1 {
		t.Errorf("TopPercent(0.01) = %v", got)
	}
}

func TestRankDeterminism(t *testing.T) {
	fr := syntheticFrame(t, 500, 4)
	for _, r := range allRankers() {
		a, err := r.Rank(fr)
		if err != nil {
			t.Fatal(err)
		}
		b, err := r.Rank(fr)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a.Ranks {
			if a.Ranks[i] != b.Ranks[i] {
				t.Errorf("%s: nondeterministic rank for feature %d", r.Name(), i)
			}
		}
	}
}

func TestCorrelationRankersIgnoreScale(t *testing.T) {
	// Scaling a feature must not change correlation-based rankings.
	fr := syntheticFrame(t, 400, 5)
	scaled := fr.Clone()
	col := scaled.Col(0)
	for i := range col {
		col[i] *= 1e6
	}
	for _, r := range []Ranker{Pearson{}, Spearman{}, JIndex{}} {
		a, err := r.Rank(fr)
		if err != nil {
			t.Fatal(err)
		}
		b, err := r.Rank(scaled)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a.Ranks {
			if a.Ranks[i] != b.Ranks[i] {
				t.Errorf("%s: rank changed under feature scaling", r.Name())
				break
			}
		}
	}
}

func TestMutualInfoRanker(t *testing.T) {
	fr := syntheticFrame(t, 1500, 9)
	res, err := MutualInfo{}.Rank(fr)
	if err != nil {
		t.Fatal(err)
	}
	if (MutualInfo{}).Name() != "Mutual Information" {
		t.Error("name mismatch")
	}
	// Strong and nonlinear features beat noise and constant; MI sees
	// the symmetric nonlinear feature that Pearson misses.
	if res.Ranks[0] >= res.Ranks[3] || res.Ranks[0] >= res.Ranks[4] {
		t.Errorf("strong feature rank %v should beat noise/constant (%v, %v)", res.Ranks[0], res.Ranks[3], res.Ranks[4])
	}
	if res.Ranks[1] >= res.Ranks[3] {
		t.Errorf("nonlinear rank %v should beat noise %v", res.Ranks[1], res.Ranks[3])
	}
	// Constant feature scores exactly 0 and MI is nonnegative.
	if res.Scores[4] != 0 {
		t.Errorf("constant MI = %v", res.Scores[4])
	}
	for i, s := range res.Scores {
		if s < 0 {
			t.Errorf("negative MI for feature %d: %v", i, s)
		}
	}
}

func TestMutualInfoInEnsemble(t *testing.T) {
	// MutualInfo slots into the Ranker set alongside the paper's five.
	fr := syntheticFrame(t, 600, 10)
	rankers := append(DefaultRankers(10), MutualInfo{Bins: 8})
	for _, r := range rankers {
		if _, err := r.Rank(fr); err != nil {
			t.Fatalf("%s: %v", r.Name(), err)
		}
	}
}

func TestMutualInfoErrors(t *testing.T) {
	single, err := frame.New([]string{"a"}, [][]float64{{1, 2}}, []int{1, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (MutualInfo{}).Rank(single); !errors.Is(err, ErrSingleClass) {
		t.Errorf("single-class error = %v", err)
	}
	if _, err := (MutualInfo{}).Rank(nil); !errors.Is(err, ErrEmptyFrame) {
		t.Errorf("nil error = %v", err)
	}
}

// Package selection implements the preliminary feature-selection
// approaches WEFR ensembles (Section II-C of the paper) — Pearson
// correlation, Spearman correlation, J-index (Youden), Random Forest
// feature importance, and XGBoost feature importance, plus the
// mutual-information and SVM-margin entrants — all behind a common
// Ranker interface, with truncation helpers used by the
// fixed-percentage baselines of Exp#1 and Exp#2.
//
// Rankers are looked up through a string-keyed registry (Register /
// Resolve): every spec-driven surface — core.Config.RankerSpecs, the
// -rankers CLI flags, the rank-eval harness — resolves names through
// it, and third-party rankers plug in by registering a factory.
package selection

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/forest"
	"repro/internal/frame"
	"repro/internal/gbdt"
	"repro/internal/hist"
	"repro/internal/stats"
)

// Errors returned by rankers.
var (
	// ErrEmptyFrame indicates a ranking request over an empty frame.
	ErrEmptyFrame = errors.New("selection: empty frame")
	// ErrSingleClass indicates a frame whose labels contain only one
	// class, for which importance is undefined.
	ErrSingleClass = errors.New("selection: need both classes present")
)

// Result carries one approach's view of feature importance.
type Result struct {
	// Scores holds one importance score per feature column; higher
	// means more important. Scores of different rankers are not
	// comparable to each other — only the induced rankings are.
	Scores []float64
	// Ranks holds the 1-based fractional rank of each feature (1 =
	// most important; ties share the average rank).
	Ranks []float64
}

// TopN returns the indices of the n highest-ranked features, best
// first. n is clamped to the feature count.
func (r Result) TopN(n int) []int {
	order := stats.ArgsortAscending(r.Ranks)
	if n > len(order) {
		n = len(order)
	}
	if n < 0 {
		n = 0
	}
	return order[:n]
}

// TopPercent returns the indices of the top pct (0..1] fraction of
// features, best first, keeping at least one.
func (r Result) TopPercent(pct float64) []int {
	n := int(float64(len(r.Ranks)) * pct)
	if n < 1 {
		n = 1
	}
	return r.TopN(n)
}

// Ranker scores every feature of a learning frame.
type Ranker interface {
	// Name identifies the approach in reports and tables.
	Name() string
	// Rank computes importance scores and ranks for every feature.
	Rank(fr *frame.Frame) (Result, error)
}

func validate(fr *frame.Frame) error {
	if fr == nil || fr.NumRows() == 0 || fr.NumFeatures() == 0 {
		return ErrEmptyFrame
	}
	pos := fr.Positives()
	if pos == 0 || pos == fr.NumRows() {
		return ErrSingleClass
	}
	return nil
}

func resultFromScores(scores []float64) Result {
	return Result{Scores: scores, Ranks: stats.ScoresToRanks(scores)}
}

// finiteRows restricts a feature column and the paired target to the
// rows where the feature value is finite (pairwise deletion). When the
// column is entirely finite it returns the inputs unchanged — the clean
// path allocates nothing and is bit-identical to unfiltered behaviour.
// The buffers are reused across features to avoid per-column allocation.
func finiteRows(col, y []float64, xbuf, ybuf *[]float64) (xs, ys []float64, filtered bool) {
	clean := true
	for _, v := range col {
		if v-v != 0 { // non-finite (NaN or ±Inf)
			clean = false
			break
		}
	}
	if clean {
		return col, y, false
	}
	xs = (*xbuf)[:0]
	ys = (*ybuf)[:0]
	for i, v := range col {
		if v-v != 0 {
			continue
		}
		xs = append(xs, v)
		ys = append(ys, y[i])
	}
	*xbuf, *ybuf = xs, ys
	return xs, ys, true
}

// Pearson ranks features by the absolute Pearson correlation between
// the feature and the target variable.
type Pearson struct{}

var _ Ranker = Pearson{}

// Name implements Ranker.
func (Pearson) Name() string { return "Pearson" }

// Rank implements Ranker. Constant, all-missing, and otherwise
// degenerate features score 0 (the defined worst rank); missing values
// in partially observed features are dropped pairwise.
func (Pearson) Rank(fr *frame.Frame) (Result, error) {
	if err := validate(fr); err != nil {
		return Result{}, err
	}
	y := fr.LabelsFloat()
	scores := make([]float64, fr.NumFeatures())
	var xbuf, ybuf []float64
	for i := range scores {
		xs, ys, _ := finiteRows(fr.Col(i), y, &xbuf, &ybuf)
		if len(xs) == 0 {
			scores[i] = 0
			continue
		}
		r, err := stats.Pearson(xs, ys)
		switch {
		case errors.Is(err, stats.ErrZeroVariance):
			scores[i] = 0
		case err != nil:
			return Result{}, fmt.Errorf("selection: pearson feature %d: %w", i, err)
		default:
			scores[i] = abs(r)
		}
	}
	return resultFromScores(scores), nil
}

// Spearman ranks features by the absolute Spearman rank correlation
// between the feature and the target variable, capturing monotonic
// (not only linear) relationships.
type Spearman struct{}

var _ Ranker = Spearman{}

// Name implements Ranker.
func (Spearman) Name() string { return "Spearman" }

// Rank implements Ranker. Constant, all-missing, and otherwise
// degenerate features score 0 (the defined worst rank); missing values
// in partially observed features are dropped pairwise, with the target
// re-ranked over the surviving rows.
func (Spearman) Rank(fr *frame.Frame) (Result, error) {
	if err := validate(fr); err != nil {
		return Result{}, err
	}
	y := fr.LabelsFloat()
	yRanks := stats.Ranks(y)
	scores := make([]float64, fr.NumFeatures())
	var xbuf, ybuf []float64
	for i := range scores {
		xs, ys, filtered := finiteRows(fr.Col(i), y, &xbuf, &ybuf)
		if len(xs) == 0 {
			scores[i] = 0
			continue
		}
		yr := yRanks
		if filtered {
			yr = stats.Ranks(ys)
		}
		r, err := stats.Pearson(stats.Ranks(xs), yr)
		switch {
		case errors.Is(err, stats.ErrZeroVariance):
			scores[i] = 0
		case err != nil:
			return Result{}, fmt.Errorf("selection: spearman feature %d: %w", i, err)
		default:
			scores[i] = abs(r)
		}
	}
	return resultFromScores(scores), nil
}

// JIndex ranks features by the Youden index: the best achievable
// TPR - FPR over all single-feature threshold classifiers, in either
// direction. It measures how well one feature alone separates failed
// from healthy samples.
type JIndex struct{}

var _ Ranker = JIndex{}

// Name implements Ranker.
func (JIndex) Name() string { return "J-index" }

// Rank implements Ranker. Rows with a missing (non-finite) value are
// excluded from that feature's sweep; a feature whose finite rows are
// single-class or empty scores 0, the defined worst rank.
func (JIndex) Rank(fr *frame.Frame) (Result, error) {
	if err := validate(fr); err != nil {
		return Result{}, err
	}
	labels := fr.Labels()
	scores := make([]float64, fr.NumFeatures())
	idx := make([]int, 0, fr.NumRows())
	for i := range scores {
		col := fr.Col(i)
		idx = idx[:0]
		pos := 0
		for k := range col {
			if col[k]-col[k] != 0 { // non-finite: not comparable to any threshold
				continue
			}
			idx = append(idx, k)
			if labels[k] == 1 {
				pos++
			}
		}
		neg := len(idx) - pos
		if pos == 0 || neg == 0 {
			scores[i] = 0
			continue
		}
		sort.Slice(idx, func(a, b int) bool { return col[idx[a]] < col[idx[b]] })
		// Sweep thresholds between distinct values; at each cut,
		// J = |TPR - FPR| for the "predict positive above cut" rule
		// (the absolute value also covers the inverted rule).
		var tpBelow, fpBelow int
		best := 0.0
		for k := 0; k < len(idx)-1; k++ {
			if labels[idx[k]] == 1 {
				tpBelow++
			} else {
				fpBelow++
			}
			if col[idx[k]] == col[idx[k+1]] {
				continue
			}
			tpr := float64(pos-tpBelow) / float64(pos)
			fpr := float64(neg-fpBelow) / float64(neg)
			if j := abs(tpr - fpr); j > best {
				best = j
			}
		}
		scores[i] = best
	}
	return resultFromScores(scores), nil
}

// RandomForest ranks features by the mean-decrease-in-impurity
// importance of a bagged forest (Breiman 2001), as used for SSD failure
// prediction by Narayanan et al.
type RandomForest struct {
	// Trees is the forest size; 0 means 50 (ranking needs fewer trees
	// than prediction).
	Trees int
	// MaxDepth limits tree depth; 0 means 10.
	MaxDepth int
	// Seed makes ranking deterministic.
	Seed int64
	// SplitMethod selects the forest's split search (exact default,
	// histogram-binned opt-in; see internal/hist).
	SplitMethod hist.SplitMethod
}

var _ Ranker = RandomForest{}

// Name implements Ranker.
func (RandomForest) Name() string { return "Random Forest" }

// Rank implements Ranker.
func (r RandomForest) Rank(fr *frame.Frame) (Result, error) {
	if err := validate(fr); err != nil {
		return Result{}, err
	}
	trees := r.Trees
	if trees <= 0 {
		trees = 50
	}
	depth := r.MaxDepth
	if depth <= 0 {
		depth = 10
	}
	cols := make([][]float64, fr.NumFeatures())
	for i := range cols {
		cols[i] = fr.Col(i)
	}
	f, err := forest.Fit(cols, fr.Labels(), forest.Config{
		NumTrees: trees, MaxDepth: depth, Seed: r.Seed, SplitMethod: r.SplitMethod,
	})
	if err != nil {
		return Result{}, fmt.Errorf("selection: random forest: %w", err)
	}
	imp, err := f.ImpurityImportance()
	if err != nil {
		return Result{}, fmt.Errorf("selection: random forest importance: %w", err)
	}
	return resultFromScores(imp), nil
}

// XGBoost ranks features by the total split gain of a gradient-boosted
// tree ensemble.
type XGBoost struct {
	// Rounds is the boosting round count; 0 means 40.
	Rounds int
	// MaxDepth limits tree depth; 0 means 5.
	MaxDepth int
	// SplitMethod selects the booster's split search (exact default,
	// histogram-binned opt-in; see internal/hist).
	SplitMethod hist.SplitMethod
}

var _ Ranker = XGBoost{}

// Name implements Ranker.
func (XGBoost) Name() string { return "XGBoost" }

// Rank implements Ranker.
func (x XGBoost) Rank(fr *frame.Frame) (Result, error) {
	if err := validate(fr); err != nil {
		return Result{}, err
	}
	rounds := x.Rounds
	if rounds <= 0 {
		rounds = 40
	}
	depth := x.MaxDepth
	if depth <= 0 {
		depth = 5
	}
	cols := make([][]float64, fr.NumFeatures())
	for i := range cols {
		cols[i] = fr.Col(i)
	}
	m, err := gbdt.Fit(cols, fr.Labels(), gbdt.Config{
		NumRounds: rounds, MaxDepth: depth, Eta: 0.3, Lambda: 1, SplitMethod: x.SplitMethod,
	})
	if err != nil {
		return Result{}, fmt.Errorf("selection: xgboost: %w", err)
	}
	gain, err := m.GainImportance()
	if err != nil {
		return Result{}, fmt.Errorf("selection: xgboost importance: %w", err)
	}
	return resultFromScores(gain), nil
}

// DefaultRankers returns the paper's five preliminary approaches with
// deterministic settings derived from seed.
func DefaultRankers(seed int64) []Ranker {
	return DefaultRankersSplit(seed, hist.SplitExact)
}

// DefaultRankersSplit is DefaultRankers with the tree-based approaches
// using the given split search method. The set is DefaultSpecs
// resolved through the registry.
func DefaultRankersSplit(seed int64, m hist.SplitMethod) []Ranker {
	rankers, err := ResolveAll(DefaultSpecs(), seed, m)
	if err != nil {
		// Unreachable: the default specs are registered in this
		// package's init.
		panic(err)
	}
	return rankers
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

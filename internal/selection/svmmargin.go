package selection

import (
	"math"
	"math/rand"

	"repro/internal/frame"
)

// SVMMargin ranks features by the absolute weight a linear soft-margin
// SVM assigns them: the model is trained by Pegasos-style stochastic
// gradient descent on standardized features and each feature is scored
// |w_f| — the margin-based selection criterion of the SVM
// feature-selection literature (weights of a maximum-margin hyperplane
// measure how much each feature moves the decision boundary). It
// complements the paper's five approaches with a sparse multivariate
// criterion: unlike the per-feature filters it scores features in the
// context of the others, and unlike the tree ensembles it is linear.
type SVMMargin struct {
	// Epochs is the number of SGD passes over the frame; 0 means 20.
	Epochs int
	// Lambda is the L2 regularization strength; 0 means 1e-3.
	Lambda float64
	// Seed makes the SGD sample order deterministic.
	Seed int64
}

var _ Ranker = SVMMargin{}

// Name implements Ranker.
func (SVMMargin) Name() string { return "SVM-margin" }

// Rank implements Ranker. Every feature is standardized over its
// finite rows before training, so weights are comparable across
// features regardless of raw scale; missing (non-finite) values map to
// the standardized mean (zero) and therefore do not move the margin.
// Constant and all-missing columns standardize to all-zero, keep a
// zero weight, and score 0 — the defined worst rank.
func (s SVMMargin) Rank(fr *frame.Frame) (Result, error) {
	if err := validate(fr); err != nil {
		return Result{}, err
	}
	epochs := s.Epochs
	if epochs <= 0 {
		epochs = 20
	}
	lambda := s.Lambda
	if lambda <= 0 {
		lambda = 1e-3
	}
	n, d := fr.NumRows(), fr.NumFeatures()

	// Standardized column-major copy of the frame.
	cols := make([][]float64, d)
	for f := 0; f < d; f++ {
		src := fr.Col(f)
		mean, count := 0.0, 0
		for _, v := range src {
			if v-v != 0 { // non-finite
				continue
			}
			mean += v
			count++
		}
		std := make([]float64, n)
		cols[f] = std
		if count == 0 {
			continue // all-missing: stays zero
		}
		mean /= float64(count)
		variance := 0.0
		for _, v := range src {
			if v-v != 0 {
				continue
			}
			variance += (v - mean) * (v - mean)
		}
		variance /= float64(count)
		if variance == 0 {
			continue // constant: stays zero
		}
		inv := 1 / math.Sqrt(variance)
		for i, v := range src {
			if v-v != 0 {
				continue // missing: standardized mean
			}
			std[i] = (v - mean) * inv
		}
	}

	y := make([]float64, n)
	for i, label := range fr.Labels() {
		if label == 1 {
			y[i] = 1
		} else {
			y[i] = -1
		}
	}

	// Pegasos: at step t, eta = 1/(lambda*t); shrink w by (1 -
	// eta*lambda) and, on a margin violation, add eta*y_i*x_i.
	w := make([]float64, d)
	xi := make([]float64, d)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	rng := rand.New(rand.NewSource(s.Seed*0x9E3779B9 + 0x5EED))
	t := 0
	for e := 0; e < epochs; e++ {
		rng.Shuffle(n, func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
		for _, i := range idx {
			t++
			eta := 1 / (lambda * float64(t))
			dot := 0.0
			for f := 0; f < d; f++ {
				xi[f] = cols[f][i]
				dot += w[f] * xi[f]
			}
			shrink := 1 - eta*lambda
			if y[i]*dot < 1 {
				step := eta * y[i]
				for f := range w {
					w[f] = shrink*w[f] + step*xi[f]
				}
			} else {
				for f := range w {
					w[f] *= shrink
				}
			}
		}
	}

	scores := make([]float64, d)
	for f := range scores {
		scores[f] = math.Abs(w[f])
	}
	return resultFromScores(scores), nil
}

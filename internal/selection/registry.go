package selection

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/hist"
)

// ErrUnknownRanker indicates a spec naming no registered ranker.
var ErrUnknownRanker = errors.New("selection: unknown ranker")

// Params carries the deterministic settings a Factory may thread into
// the ranker it builds. Factories of rankers without randomness or tree
// training simply ignore them.
type Params struct {
	// Seed makes randomized rankers deterministic.
	Seed int64
	// SplitMethod selects the split search of tree-based rankers
	// (exact default, histogram-binned opt-in; see internal/hist).
	SplitMethod hist.SplitMethod
}

// Factory builds one ranker instance from deterministic parameters.
type Factory func(p Params) Ranker

// registry is the process-wide ranker registry. Keys are normalized
// spec names; entries keep the canonical display spelling so listings
// stay readable.
var registry = struct {
	sync.RWMutex
	byKey     map[string]Factory
	canonical map[string]string // normalized key -> canonical name
	names     []string          // canonical names, registration order
}{
	byKey:     map[string]Factory{},
	canonical: map[string]string{},
}

// normalizeSpec canonicalizes a ranker spec for lookup: lower-cased
// with spaces, dashes, underscores, and dots removed, so "-rankers
// Random-Forest" and "random forest" resolve the same entry.
func normalizeSpec(spec string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(strings.TrimSpace(spec)) {
		switch r {
		case ' ', '-', '_', '.':
			continue
		}
		b.WriteRune(r)
	}
	return b.String()
}

// Register adds a ranker factory to the registry under a canonical
// name plus optional aliases, making it resolvable by Resolve and by
// every spec-driven surface built on it (core.Config.RankerSpecs, the
// -rankers CLI flags, and the rank-eval harness). It panics on an
// empty or already-taken name — registration is an init-time act and a
// collision is a programming error, mirroring database/sql.Register.
func Register(name string, f Factory, aliases ...string) {
	if f == nil {
		panic("selection: Register with nil factory")
	}
	key := normalizeSpec(name)
	if key == "" {
		panic("selection: Register with empty name")
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.byKey[key]; dup {
		panic(fmt.Sprintf("selection: ranker %q already registered", name))
	}
	registry.byKey[key] = f
	registry.canonical[key] = name
	registry.names = append(registry.names, name)
	for _, alias := range aliases {
		ak := normalizeSpec(alias)
		if ak == "" {
			panic(fmt.Sprintf("selection: ranker %q has empty alias", name))
		}
		if _, dup := registry.byKey[ak]; dup {
			panic(fmt.Sprintf("selection: ranker alias %q already registered", alias))
		}
		registry.byKey[ak] = f
		registry.canonical[ak] = name
	}
}

// Registered returns the canonical names of all registered rankers,
// sorted; aliases are not listed.
func Registered() []string {
	registry.RLock()
	defer registry.RUnlock()
	out := append([]string(nil), registry.names...)
	sort.Strings(out)
	return out
}

// Resolve builds the ranker registered under spec (case- and
// punctuation-insensitive; aliases accepted) with the given
// deterministic parameters. An unknown spec returns ErrUnknownRanker
// carrying the registered names, so CLI surfaces fail fast with the
// full menu.
func Resolve(spec string, seed int64, m hist.SplitMethod) (Ranker, error) {
	registry.RLock()
	f, ok := registry.byKey[normalizeSpec(spec)]
	registry.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w %q (registered: %s)",
			ErrUnknownRanker, spec, strings.Join(Registered(), ", "))
	}
	return f(Params{Seed: seed, SplitMethod: m}), nil
}

// ResolveAll resolves every spec in order; the first unknown name
// fails the whole batch.
func ResolveAll(specs []string, seed int64, m hist.SplitMethod) ([]Ranker, error) {
	out := make([]Ranker, 0, len(specs))
	for _, spec := range specs {
		r, err := Resolve(spec, seed, m)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// DefaultSpecs returns the registry specs of the paper's five
// preliminary approaches, in the paper's order. Resolving them is
// bit-identical to DefaultRankersSplit.
func DefaultSpecs() []string {
	return []string{"pearson", "spearman", "j-index", "random-forest", "xgboost"}
}

func init() {
	Register("pearson", func(Params) Ranker { return Pearson{} })
	Register("spearman", func(Params) Ranker { return Spearman{} })
	Register("j-index", func(Params) Ranker { return JIndex{} }, "youden")
	Register("random-forest", func(p Params) Ranker {
		return RandomForest{Seed: p.Seed, SplitMethod: p.SplitMethod}
	}, "rf")
	Register("xgboost", func(p Params) Ranker {
		return XGBoost{SplitMethod: p.SplitMethod}
	}, "xgb")
	Register("mutual-info", func(Params) Ranker { return MutualInfo{} },
		"mi", "mutual-information")
	Register("svm-margin", func(p Params) Ranker {
		return SVMMargin{Seed: p.Seed}
	}, "svm")
}

package selection

import (
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/frame"
	"repro/internal/hist"
)

func TestResolveKnownNames(t *testing.T) {
	cases := []struct {
		spec string
		want string // Ranker.Name()
	}{
		{"pearson", "Pearson"},
		{"Pearson", "Pearson"},
		{"  SPEARMAN ", "Spearman"},
		{"j-index", "J-index"},
		{"J_Index", "J-index"},
		{"jindex", "J-index"},
		{"youden", "J-index"},
		{"random-forest", "Random Forest"},
		{"Random Forest", "Random Forest"},
		{"rf", "Random Forest"},
		{"xgboost", "XGBoost"},
		{"xgb", "XGBoost"},
		{"mutual-info", "Mutual Information"},
		{"mi", "Mutual Information"},
		{"mutual.information", "Mutual Information"},
		{"svm-margin", "SVM-margin"},
		{"svm", "SVM-margin"},
	}
	for _, c := range cases {
		r, err := Resolve(c.spec, 1, hist.SplitExact)
		if err != nil {
			t.Errorf("Resolve(%q): %v", c.spec, err)
			continue
		}
		if r.Name() != c.want {
			t.Errorf("Resolve(%q).Name() = %q, want %q", c.spec, r.Name(), c.want)
		}
	}
}

func TestResolveUnknown(t *testing.T) {
	_, err := Resolve("bogus", 1, hist.SplitExact)
	if !errors.Is(err, ErrUnknownRanker) {
		t.Fatalf("error = %v, want ErrUnknownRanker", err)
	}
	msg := err.Error()
	if !strings.Contains(msg, `"bogus"`) {
		t.Errorf("error does not quote the bad spec: %s", msg)
	}
	for _, name := range Registered() {
		if !strings.Contains(msg, name) {
			t.Errorf("error does not list registered ranker %q: %s", name, msg)
		}
	}
}

func TestResolveAllFailsFast(t *testing.T) {
	_, err := ResolveAll([]string{"pearson", "nope", "spearman"}, 1, hist.SplitExact)
	if !errors.Is(err, ErrUnknownRanker) {
		t.Fatalf("error = %v, want ErrUnknownRanker", err)
	}
}

func TestRegisteredListsCanonicalNames(t *testing.T) {
	names := Registered()
	for _, want := range []string{
		"pearson", "spearman", "j-index", "random-forest", "xgboost",
		"mutual-info", "svm-margin",
	} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("Registered() = %v missing %q", names, want)
		}
	}
	// Aliases must not appear as separate entries.
	for _, alias := range []string{"rf", "xgb", "mi", "svm", "youden"} {
		for _, n := range names {
			if n == alias {
				t.Errorf("alias %q listed as a canonical name", alias)
			}
		}
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	Register("pearson", func(Params) Ranker { return Pearson{} })
}

func TestRegisterNilFactoryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil-factory Register did not panic")
		}
	}()
	Register("brand-new", nil)
}

// TestDefaultSpecsMatchDefaultRankers pins that resolving DefaultSpecs
// builds exactly the structs the pre-registry DefaultRankers returned,
// for both split methods — the bit-identity contract of the refactor.
func TestDefaultSpecsMatchDefaultRankers(t *testing.T) {
	for _, m := range []hist.SplitMethod{hist.SplitExact, hist.SplitHist} {
		got, err := ResolveAll(DefaultSpecs(), 42, m)
		if err != nil {
			t.Fatal(err)
		}
		want := []Ranker{
			Pearson{},
			Spearman{},
			JIndex{},
			RandomForest{Seed: 42, SplitMethod: m},
			XGBoost{SplitMethod: m},
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("split %v: ResolveAll(DefaultSpecs) = %#v, want %#v", m, got, want)
		}
	}
}

// degenerateFrames builds the edge-case frames every registered ranker
// must survive: for each, the ranker must return either a structured
// error or a valid Result — never panic, never emit NaN ranks.
func degenerateFrames(t *testing.T) map[string]*frame.Frame {
	t.Helper()
	mk := func(names []string, cols [][]float64, labels []int) *frame.Frame {
		fr, err := frame.New(names, cols, labels, nil)
		if err != nil {
			t.Fatal(err)
		}
		return fr
	}
	n := 24
	labels := make([]int, n)
	mixed := make([]float64, n)
	allNaN := make([]float64, n)
	constant := make([]float64, n)
	for i := 0; i < n; i++ {
		if i%3 == 0 {
			labels[i] = 1
		}
		mixed[i] = float64(labels[i])*5 + float64(i%4)
		allNaN[i] = math.NaN()
		constant[i] = 1.5
	}
	ones := make([]int, n)
	for i := range ones {
		ones[i] = 1
	}
	return map[string]*frame.Frame{
		"empty":           mk([]string{"a"}, [][]float64{{}}, []int{}),
		"single-class":    mk([]string{"a"}, [][]float64{mixed}, ones),
		"all-nan-column":  mk([]string{"a", "nan"}, [][]float64{mixed, allNaN}, labels),
		"constant-column": mk([]string{"a", "const"}, [][]float64{mixed, constant}, labels),
	}
}

// TestRegisteredRankersDegenerateFrames drives every registered ranker,
// via the registry, over the degenerate frames. Run under -race in CI
// (rank-eval-smoke) so a panic or data race in any registered ranker —
// including future third-party ones — fails the build.
func TestRegisteredRankersDegenerateFrames(t *testing.T) {
	frames := degenerateFrames(t)
	for _, spec := range Registered() {
		r, err := Resolve(spec, 3, hist.SplitExact)
		if err != nil {
			t.Fatalf("Resolve(%q): %v", spec, err)
		}
		for fname, fr := range frames {
			t.Run(spec+"/"+fname, func(t *testing.T) {
				res, err := r.Rank(fr) // must not panic
				if err != nil {
					return // structured error is a valid outcome
				}
				if len(res.Scores) != fr.NumFeatures() || len(res.Ranks) != fr.NumFeatures() {
					t.Fatalf("result misaligned: %d scores, %d ranks, %d features",
						len(res.Scores), len(res.Ranks), fr.NumFeatures())
				}
				for i, rank := range res.Ranks {
					if rank != rank {
						t.Errorf("rank[%d] is NaN", i)
					}
				}
				for i, s := range res.Scores {
					if s != s {
						t.Errorf("score[%d] is NaN", i)
					}
				}
			})
		}
	}
}

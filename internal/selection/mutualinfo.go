package selection

import (
	"math"

	"repro/internal/frame"
)

// MutualInfo ranks features by the estimated mutual information
// between the (histogram-discretized) feature and the target variable.
// Mutual information captures arbitrary — including non-monotonic —
// dependence, complementing the correlation-based approaches; it is a
// staple of the broader feature-selection literature the paper builds
// on, provided here as a sixth ranker that can be added to the WEFR
// ensemble (core.Config.Rankers).
type MutualInfo struct {
	// Bins is the histogram bin count for discretizing features; 0
	// means 16.
	Bins int
}

var _ Ranker = MutualInfo{}

// Name implements Ranker.
func (MutualInfo) Name() string { return "Mutual Information" }

// Rank implements Ranker. Constant and all-missing features score 0;
// rows whose value is missing (non-finite) are excluded from that
// feature's histogram, with the class prior re-estimated over the
// surviving rows so probabilities stay normalized.
func (mi MutualInfo) Rank(fr *frame.Frame) (Result, error) {
	if err := validate(fr); err != nil {
		return Result{}, err
	}
	bins := mi.Bins
	if bins <= 0 {
		bins = 16
	}
	labels := fr.Labels()

	scores := make([]float64, fr.NumFeatures())
	joint := make([][2]float64, bins)
	for f := range scores {
		col := fr.Col(f)
		minV, maxV := math.Inf(1), math.Inf(-1)
		finite, posFin := 0, 0
		for i, v := range col {
			if v-v != 0 { // non-finite
				continue
			}
			finite++
			if labels[i] == 1 {
				posFin++
			}
			if v < minV {
				minV = v
			}
			if v > maxV {
				maxV = v
			}
		}
		if finite == 0 || maxV == minV {
			// All-missing or constant: no information, worst rank.
			scores[f] = 0
			continue
		}
		pY := [2]float64{float64(finite-posFin) / float64(finite), float64(posFin) / float64(finite)}
		for b := range joint {
			joint[b] = [2]float64{}
		}
		width := (maxV - minV) / float64(bins)
		for i, v := range col {
			if v-v != 0 {
				continue
			}
			b := int((v - minV) / width)
			if b >= bins {
				b = bins - 1
			}
			joint[b][labels[i]]++
		}
		total := float64(finite)
		score := 0.0
		for b := range joint {
			pX := (joint[b][0] + joint[b][1]) / total
			if pX == 0 {
				continue
			}
			for y := 0; y < 2; y++ {
				pXY := joint[b][y] / total
				if pXY == 0 {
					continue
				}
				score += pXY * math.Log2(pXY/(pX*pY[y]))
			}
		}
		if score < 0 {
			score = 0 // numerical guard; MI is nonnegative
		}
		scores[f] = score
	}
	return resultFromScores(scores), nil
}

package selection

import (
	"math"

	"repro/internal/frame"
)

// MutualInfo ranks features by the estimated mutual information
// between the (histogram-discretized) feature and the target variable.
// Mutual information captures arbitrary — including non-monotonic —
// dependence, complementing the correlation-based approaches; it is a
// staple of the broader feature-selection literature the paper builds
// on, provided here as a sixth ranker that can be added to the WEFR
// ensemble (core.Config.Rankers).
type MutualInfo struct {
	// Bins is the histogram bin count for discretizing features; 0
	// means 16.
	Bins int
}

var _ Ranker = MutualInfo{}

// Name implements Ranker.
func (MutualInfo) Name() string { return "Mutual Information" }

// Rank implements Ranker. Constant features score 0.
func (mi MutualInfo) Rank(fr *frame.Frame) (Result, error) {
	if err := validate(fr); err != nil {
		return Result{}, err
	}
	bins := mi.Bins
	if bins <= 0 {
		bins = 16
	}
	labels := fr.Labels()
	n := fr.NumRows()
	pos := fr.Positives()
	pY := [2]float64{float64(n-pos) / float64(n), float64(pos) / float64(n)}

	scores := make([]float64, fr.NumFeatures())
	joint := make([][2]float64, bins)
	for f := range scores {
		col := fr.Col(f)
		minV, maxV := col[0], col[0]
		for _, v := range col[1:] {
			if v < minV {
				minV = v
			}
			if v > maxV {
				maxV = v
			}
		}
		if maxV == minV {
			scores[f] = 0
			continue
		}
		for b := range joint {
			joint[b] = [2]float64{}
		}
		width := (maxV - minV) / float64(bins)
		for i, v := range col {
			b := int((v - minV) / width)
			if b >= bins {
				b = bins - 1
			}
			joint[b][labels[i]]++
		}
		total := float64(n)
		score := 0.0
		for b := range joint {
			pX := (joint[b][0] + joint[b][1]) / total
			if pX == 0 {
				continue
			}
			for y := 0; y < 2; y++ {
				pXY := joint[b][y] / total
				if pXY == 0 {
					continue
				}
				score += pXY * math.Log2(pXY/(pX*pY[y]))
			}
		}
		if score < 0 {
			score = 0 // numerical guard; MI is nonnegative
		}
		scores[f] = score
	}
	return resultFromScores(scores), nil
}

package experiments

import (
	"fmt"

	"repro/internal/pipeline"
	"repro/internal/selection"
	"repro/internal/smart"
	"repro/internal/textplot"
)

// Exp2Model is one model's automated-selection evaluation: the F0.5 of
// each fixed percentage (using the ensemble final ranking truncated at
// that percentage would require bespoke plumbing, so — like the paper's
// comparison — the sweep uses the best-performing single approach
// truncated at each percentage), against WEFR's automatic choice.
type Exp2Model struct {
	Model smart.ModelID
	// Percents and F05 trace the fixed-percentage curve.
	Percents []float64
	F05      []float64
	// WEFRPercent is the fraction of features WEFR selected
	// automatically; WEFRF05 is its accuracy.
	WEFRPercent float64
	WEFRF05     float64
}

// Exp2Result is the automated feature selection evaluation (Fig 2).
type Exp2Result struct {
	Models []Exp2Model
}

// Exp2 runs Figure 2: for each model, the F0.5-score when fixing the
// selected-feature percentage across the sweep grid (Random Forest
// ranking, the approach the paper's prediction model uses) versus
// WEFR's automatically determined count.
func (h *Harness) Exp2() (Exp2Result, error) {
	cfg := h.pipelineConfig()
	phases := h.phases()
	var res Exp2Result
	for _, m := range h.cfg.Models {
		em := Exp2Model{Model: m}
		for _, pct := range h.cfg.SweepPercents {
			sel := pipeline.SingleRanker{
				Ranker:  selection.RandomForest{Seed: h.cfg.Seed},
				Percent: pct,
			}
			_, total, err := pipeline.Run(h.src, m, sel, phases, cfg)
			if err != nil {
				return Exp2Result{}, fmt.Errorf("experiments: exp2 %v at %.0f%%: %w", m, pct*100, err)
			}
			em.Percents = append(em.Percents, pct)
			em.F05 = append(em.F05, total.F05())
		}
		// NoUpdate isolates the automated feature count, which is what
		// Fig 2 evaluates; the wear-out split is Exp#3's subject.
		results, total, err := pipeline.Run(h.src, m, pipeline.WEFR{Config: h.wefrConfig(), NoUpdate: true}, phases, cfg)
		if err != nil {
			return Exp2Result{}, fmt.Errorf("experiments: exp2 %v wefr: %w", m, err)
		}
		em.WEFRF05 = total.F05()
		// Selected percentage: features WEFR kept over all available,
		// averaged across phases.
		spec := smart.MustSpec(m)
		all := float64(2 * len(spec.Attrs))
		var sum float64
		for _, pr := range results {
			sum += float64(len(pr.Selection.All)) / all
		}
		em.WEFRPercent = sum / float64(len(results))
		res.Models = append(res.Models, em)
	}
	return res, nil
}

// Render draws one plot per model: the fixed-percentage curve with
// WEFR's automatic point marked.
func (r Exp2Result) Render() string {
	out := "Figure 2 (Exp#2): F0.5 vs fixed selected-feature percentage; o = WEFR's automatic choice\n"
	for _, em := range r.Models {
		pcts := make([]float64, len(em.Percents))
		for i, p := range em.Percents {
			pcts[i] = p * 100
		}
		series := []textplot.Series{
			{Name: "fixed percentage", X: pcts, Y: em.F05, Marker: '*'},
			{Name: fmt.Sprintf("WEFR (%.0f%%, F0.5=%.2f)", em.WEFRPercent*100, em.WEFRF05),
				X: []float64{em.WEFRPercent * 100}, Y: []float64{em.WEFRF05}, Marker: 'o'},
		}
		plot, err := textplot.Plot(em.Model.String(), series, 64, 10)
		if err != nil {
			plot = fmt.Sprintf("%v: %v\n", em.Model, err)
		}
		out += plot + "\n"
	}
	return out
}

// BestFixedF05 returns the best F0.5 along the fixed-percentage sweep.
func (em Exp2Model) BestFixedF05() float64 {
	best := 0.0
	for _, f := range em.F05 {
		if f > best {
			best = f
		}
	}
	return best
}

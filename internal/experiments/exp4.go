package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/smart"
	"repro/internal/textplot"
)

// Exp4Result is the runtime comparison (Table VIII): the wall-clock
// time of each preliminary approach and of WEFR (which runs them in
// parallel, so its runtime tracks the slowest approach) on the MC1
// frame, averaged over rounds.
type Exp4Result struct {
	Model   smart.ModelID
	Rounds  int
	Names   []string
	Runtime []time.Duration
	// WEFRSerial is WEFR's runtime with parallel ranking disabled, an
	// ablation showing what the parallelism buys.
	WEFRSerial time.Duration
}

// Exp4 runs Table VIII on MC1 (the most populous model). rounds <= 0
// means 5 (the paper uses 20; the shape is stable well before that).
func (h *Harness) Exp4(rounds int) (Exp4Result, error) {
	if rounds <= 0 {
		rounds = 5
	}
	fwm, err := h.selectionFrame(smart.MC1)
	if err != nil {
		return Exp4Result{}, err
	}
	res := Exp4Result{Model: smart.MC1, Rounds: rounds}

	rankers, err := h.rankers()
	if err != nil {
		return Exp4Result{}, err
	}
	for _, rk := range rankers {
		var total time.Duration
		for i := 0; i < rounds; i++ {
			start := time.Now()
			if _, err := rk.Rank(fwm.fr); err != nil {
				return Exp4Result{}, fmt.Errorf("experiments: exp4 %s: %w", rk.Name(), err)
			}
			total += time.Since(start)
		}
		res.Names = append(res.Names, rk.Name())
		res.Runtime = append(res.Runtime, total/time.Duration(rounds))
	}

	// WEFR end to end (parallel rankers), then the serial ablation.
	for _, serial := range []bool{false, true} {
		cfg := core.Config{Seed: h.cfg.Seed, Serial: serial, RankerSpecs: h.cfg.RankerSpecs}
		var total time.Duration
		for i := 0; i < rounds; i++ {
			start := time.Now()
			if _, err := core.SelectFeatures(fwm.fr, cfg); err != nil {
				return Exp4Result{}, fmt.Errorf("experiments: exp4 wefr: %w", err)
			}
			total += time.Since(start)
		}
		avg := total / time.Duration(rounds)
		if serial {
			res.WEFRSerial = avg
		} else {
			res.Names = append(res.Names, "WEFR")
			res.Runtime = append(res.Runtime, avg)
		}
	}
	return res, nil
}

// Render formats Table VIII.
func (r Exp4Result) Render() string {
	header := []string{"Method", "Runtime"}
	var rows [][]string
	for i, name := range r.Names {
		rows = append(rows, []string{name, fmt.Sprintf("%.2fs", r.Runtime[i].Seconds())})
	}
	rows = append(rows, []string{"WEFR (serial ablation)", fmt.Sprintf("%.2fs", r.WEFRSerial.Seconds())})
	return fmt.Sprintf("Table VIII (Exp#4): average feature-selection runtime on %s over %d rounds\n", r.Model, r.Rounds) +
		textplot.Table(header, rows)
}

// RuntimeOf returns the named method's average runtime, or false.
func (r Exp4Result) RuntimeOf(name string) (time.Duration, bool) {
	for i, n := range r.Names {
		if n == name {
			return r.Runtime[i], true
		}
	}
	return 0, false
}

// SlowestRanker returns the largest single-approach runtime.
func (r Exp4Result) SlowestRanker() time.Duration {
	var worst time.Duration
	for i, n := range r.Names {
		if n == "WEFR" {
			continue
		}
		if r.Runtime[i] > worst {
			worst = r.Runtime[i]
		}
	}
	return worst
}

package experiments

import (
	"fmt"

	"repro/internal/rankeval"
)

// RankEval runs the ranker-evaluation harness (internal/rankeval) on
// the harness's fleet: the first configured model, the latest testing
// phase, and the shared pipeline configuration, so rankers are judged
// under exactly the downstream training the experiments use. A nil
// opts.Specs evaluates every registered ranker; opts.Seed 0 inherits
// the harness seed.
func (h *Harness) RankEval(opts rankeval.Options) (rankeval.Result, error) {
	if len(h.cfg.Models) == 0 {
		return rankeval.Result{}, fmt.Errorf("experiments: rank-eval: no models configured")
	}
	model := h.cfg.Models[0]
	phases := h.phases()
	ph := phases[len(phases)-1]
	if opts.Seed == 0 {
		opts.Seed = h.cfg.Seed
	}
	if opts.Specs == nil && h.cfg.RankerSpecs != nil {
		opts.Specs = h.cfg.RankerSpecs
	}
	res, err := rankeval.Run(h.src, model, ph, h.pipelineConfig(), opts)
	if err != nil {
		return rankeval.Result{}, fmt.Errorf("experiments: rank-eval: %w", err)
	}
	return res, nil
}

package experiments

import (
	"fmt"

	"repro/internal/frame"
	"repro/internal/metrics"
	"repro/internal/smart"
	"repro/internal/textplot"
)

// frameWithModel pairs a learning frame with its drive model.
type frameWithModel struct {
	fr    *frame.Frame
	model smart.ModelID
}

// Table1Result is the SMART attribute availability matrix (Table I).
type Table1Result struct {
	// Attrs are the 22 catalog attributes.
	Attrs []smart.AttrID
	// Available[a][m] reports whether attribute a (by index into
	// Attrs) is present on model m (by index into Models).
	Available [][]bool
	// Models are the columns.
	Models []smart.ModelID
}

// Table1 reproduces Table I from the encoded drive-model specs.
func (h *Harness) Table1() Table1Result {
	res := Table1Result{Attrs: smart.AllAttrs(), Models: smart.AllModels()}
	for _, a := range res.Attrs {
		row := make([]bool, len(res.Models))
		for j, m := range res.Models {
			row[j] = smart.MustSpec(m).HasAttr(a)
		}
		res.Available = append(res.Available, row)
	}
	return res
}

// Render formats the availability matrix as the paper lays it out.
func (r Table1Result) Render() string {
	header := []string{"SMART attribute"}
	for _, m := range r.Models {
		header = append(header, m.String())
	}
	var rows [][]string
	for i, a := range r.Attrs {
		row := []string{fmt.Sprintf("%s (%s)", a.LongName(), a)}
		for j := range r.Models {
			mark := "x"
			if r.Available[i][j] {
				mark = "v"
			}
			row = append(row, mark)
		}
		rows = append(rows, row)
	}
	return "Table I: SMART attributes per drive model (v = included)\n" +
		textplot.Table(header, rows)
}

// Table2Row is one drive model's fleet statistics.
type Table2Row struct {
	Model       smart.ModelID
	Flash       smart.FlashTech
	TotalPct    float64 // share of the SSD population
	FailuresPct float64 // share of all failures
	AFR         float64 // realized annualized failure rate (fraction)
	Drives      int
	Failures    int
}

// Table2Result is the fleet summary (Table II) measured on the
// simulated fleet.
type Table2Result struct {
	Rows []Table2Row
}

// Table2 reproduces Table II: population shares, failure shares, and
// AFRs realized by the simulator (the AFRScale multiplier applies).
func (h *Harness) Table2() Table2Result {
	fleet := h.Fleet()
	totalDrives, totalFailures := 0, 0
	type raw struct {
		drives, fails, driveDays int
	}
	perModel := map[smart.ModelID]raw{}
	for _, m := range h.cfg.Models {
		drives := fleet.DrivesOf(m)
		r := raw{drives: len(drives)}
		for _, d := range drives {
			if d.Failed() {
				r.fails++
				r.driveDays += d.FailDay + 1
			} else {
				r.driveDays += fleet.Days()
			}
		}
		perModel[m] = r
		totalDrives += r.drives
		totalFailures += r.fails
	}
	var res Table2Result
	for _, m := range h.cfg.Models {
		r := perModel[m]
		res.Rows = append(res.Rows, Table2Row{
			Model:       m,
			Flash:       smart.MustSpec(m).Flash,
			TotalPct:    float64(r.drives) / float64(totalDrives),
			FailuresPct: float64(r.fails) / float64(max(1, totalFailures)),
			AFR:         metrics.AFR(r.fails, r.driveDays),
			Drives:      r.drives,
			Failures:    r.fails,
		})
	}
	return res
}

// Render formats the fleet summary as Table II.
func (r Table2Result) Render() string {
	header := []string{"Drive model", "Flash", "Total %", "Failures %", "AFR (%)", "Drives", "Failures"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Model.String(),
			row.Flash.String(),
			fmt.Sprintf("%.1f%%", row.TotalPct*100),
			fmt.Sprintf("%.1f%%", row.FailuresPct*100),
			fmt.Sprintf("%.2f%%", row.AFR*100),
			fmt.Sprintf("%d", row.Drives),
			fmt.Sprintf("%d", row.Failures),
		})
	}
	return "Table II: fleet statistics (simulated; AFR includes the harness AFRScale)\n" +
		textplot.Table(header, rows)
}

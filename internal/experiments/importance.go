package experiments

import (
	"fmt"

	"repro/internal/changepoint"
	"repro/internal/selection"
	"repro/internal/smart"
	"repro/internal/survival"
	"repro/internal/textplot"
)

// RankedFeature is a feature name with its importance score.
type RankedFeature struct {
	Name  string
	Score float64
}

// Table3Row holds one model's top and bottom features by Random
// Forest importance.
type Table3Row struct {
	Model smart.ModelID
	Top   []RankedFeature
	Last  []RankedFeature
}

// Table3Result is the feature-importance characterization (Table III).
type Table3Result struct {
	Rows []Table3Row
	K    int // how many top/last features per model
}

// Table3 reproduces Table III: the top-3 and last-3 learning features
// per model under Random Forest importance evaluation.
func (h *Harness) Table3() (Table3Result, error) {
	res := Table3Result{K: 3}
	ranker := selection.RandomForest{Seed: h.cfg.Seed}
	for _, m := range h.cfg.Models {
		fwm, err := h.selectionFrame(m)
		if err != nil {
			return Table3Result{}, err
		}
		r, err := ranker.Rank(fwm.fr)
		if err != nil {
			return Table3Result{}, fmt.Errorf("experiments: table3 %v: %w", m, err)
		}
		order := r.TopN(fwm.fr.NumFeatures())
		row := Table3Row{Model: m}
		for i := 0; i < res.K && i < len(order); i++ {
			f := order[i]
			row.Top = append(row.Top, RankedFeature{Name: fwm.fr.Names()[f], Score: r.Scores[f]})
		}
		for i := 0; i < res.K && i < len(order); i++ {
			f := order[len(order)-1-i]
			row.Last = append(row.Last, RankedFeature{Name: fwm.fr.Names()[f], Score: r.Scores[f]})
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render formats Table III.
func (r Table3Result) Render() string {
	header := []string{"Model"}
	for i := 1; i <= r.K; i++ {
		header = append(header, fmt.Sprintf("Top %d", i))
	}
	for i := 1; i <= r.K; i++ {
		header = append(header, fmt.Sprintf("Last %d", i))
	}
	var rows [][]string
	for _, row := range r.Rows {
		cells := []string{row.Model.String()}
		for _, f := range row.Top {
			cells = append(cells, fmt.Sprintf("%s (%.3f)", f.Name, f.Score))
		}
		for _, f := range row.Last {
			cells = append(cells, fmt.Sprintf("%s (%.3f)", f.Name, f.Score))
		}
		rows = append(rows, cells)
	}
	return "Table III: top/last learning features by Random Forest importance\n" +
		textplot.Table(header, rows)
}

// Table4Result holds the top-K rankings of one model under each of the
// five preliminary approaches (Table IV uses MC1).
type Table4Result struct {
	Model    smart.ModelID
	K        int
	Approach []string
	Top      [][]string // Top[a] = approach a's top-K feature names
}

// Table4 reproduces Table IV: the top-5 features for MC1 under the
// five feature-selection approaches, demonstrating their disagreement.
func (h *Harness) Table4() (Table4Result, error) {
	const k = 5
	model := smart.MC1
	fwm, err := h.selectionFrame(model)
	if err != nil {
		return Table4Result{}, err
	}
	res := Table4Result{Model: model, K: k}
	rankers, err := h.rankers()
	if err != nil {
		return Table4Result{}, err
	}
	for _, ranker := range rankers {
		r, err := ranker.Rank(fwm.fr)
		if err != nil {
			return Table4Result{}, fmt.Errorf("experiments: table4 %s: %w", ranker.Name(), err)
		}
		var top []string
		for _, f := range r.TopN(k) {
			top = append(top, fwm.fr.Names()[f])
		}
		res.Approach = append(res.Approach, ranker.Name())
		res.Top = append(res.Top, top)
	}
	return res, nil
}

// Render formats Table IV.
func (r Table4Result) Render() string {
	header := []string{"Rank"}
	header = append(header, r.Approach...)
	var rows [][]string
	for i := 0; i < r.K; i++ {
		row := []string{fmt.Sprintf("%d", i+1)}
		for a := range r.Approach {
			row = append(row, r.Top[a][i])
		}
		rows = append(rows, row)
	}
	return fmt.Sprintf("Table IV: top-%d features for %s per approach\n", r.K, r.Model) +
		textplot.Table(header, rows)
}

// Fig1Curve is one model's survival curve with its change point.
type Fig1Curve struct {
	Model       smart.ModelID
	Curve       survival.Curve
	ChangePoint *survival.ChangePoint // nil when none is significant
}

// Fig1Result is the survival-rate characterization (Figure 1).
type Fig1Result struct {
	Curves []Fig1Curve
}

// Fig1 reproduces Figure 1: survival rate versus MWI_N per model with
// Bayesian change points.
func (h *Harness) Fig1() (Fig1Result, error) {
	var res Fig1Result
	for _, m := range h.cfg.Models {
		c, err := survival.Compute(h.src, m, 0)
		if err != nil {
			return Fig1Result{}, fmt.Errorf("experiments: fig1 %v: %w", m, err)
		}
		fc := Fig1Curve{Model: m, Curve: c}
		cp, found, err := c.DetectChangePoint(changepoint.DefaultConfig(), changepoint.DefaultZThreshold)
		if err != nil {
			return Fig1Result{}, fmt.Errorf("experiments: fig1 %v: %w", m, err)
		}
		if found {
			fc.ChangePoint = &cp
		}
		res.Curves = append(res.Curves, fc)
	}
	return res, nil
}

// Render draws one ASCII plot per model, marking the change point.
func (r Fig1Result) Render() string {
	out := "Figure 1: survival rate vs MWI_N (o marks the detected change point)\n"
	for _, fc := range r.Curves {
		series := []textplot.Series{{
			Name: fmt.Sprintf("%s survival", fc.Model), X: fc.Curve.Values, Y: fc.Curve.Rates, Marker: '*',
		}}
		title := fc.Model.String()
		if fc.ChangePoint != nil {
			series = append(series, textplot.Series{
				Name:   fmt.Sprintf("change point (MWI_N=%.0f, z=%.1f)", fc.ChangePoint.MWI, fc.ChangePoint.Z),
				X:      []float64{fc.ChangePoint.MWI},
				Y:      []float64{fc.Curve.Rates[fc.ChangePoint.Index]},
				Marker: 'o',
			})
		} else {
			title += " (no change point)"
		}
		plot, err := textplot.Plot(title, series, 72, 12)
		if err != nil {
			plot = fmt.Sprintf("%s: %v\n", fc.Model, err)
		}
		out += plot + "\n"
	}
	return out
}

// Table5Row is one model's top-K features per wear-out group.
type Table5Row struct {
	Model        smart.ModelID
	ThresholdMWI float64
	Low, High    []string
}

// Table5Result is the wear-dependent importance table (Table V).
type Table5Result struct {
	Rows []Table5Row
	K    int
	// Skipped lists models with no change point (MB1/MB2 in the
	// paper).
	Skipped []smart.ModelID
}

// Table5 reproduces Table V: top-5 Random-Forest features per MWI_N
// group for the models whose survival curve has a change point.
func (h *Harness) Table5() (Table5Result, error) {
	const k = 5
	res := Table5Result{K: k}
	ranker := selection.RandomForest{Seed: h.cfg.Seed}
	for _, m := range h.cfg.Models {
		c, err := survival.Compute(h.src, m, 0)
		if err != nil {
			return Table5Result{}, err
		}
		cp, found, err := c.DetectChangePoint(changepoint.DefaultConfig(), changepoint.DefaultZThreshold)
		if err != nil {
			return Table5Result{}, err
		}
		if !found {
			res.Skipped = append(res.Skipped, m)
			continue
		}
		fwm, err := h.selectionFrame(m)
		if err != nil {
			return Table5Result{}, err
		}
		row := Table5Row{Model: m, ThresholdMWI: cp.MWI}
		for _, grp := range []struct {
			dst *[]string
			low bool
		}{{&row.Low, true}, {&row.High, false}} {
			sub := fwm.fr.FilterRows(func(i int) bool {
				if grp.low {
					return fwm.fr.Meta(i).MWI < cp.MWI
				}
				return fwm.fr.Meta(i).MWI >= cp.MWI
			})
			if sub.Positives() == 0 || sub.Positives() == sub.NumRows() {
				*grp.dst = []string{"(insufficient samples)"}
				continue
			}
			r, err := ranker.Rank(sub)
			if err != nil {
				return Table5Result{}, fmt.Errorf("experiments: table5 %v: %w", m, err)
			}
			for _, f := range r.TopN(k) {
				*grp.dst = append(*grp.dst, sub.Names()[f])
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render formats Table V.
func (r Table5Result) Render() string {
	header := []string{"Model", "MWI_N group"}
	for i := 1; i <= r.K; i++ {
		header = append(header, fmt.Sprintf("Rank %d", i))
	}
	var rows [][]string
	for _, row := range r.Rows {
		low := []string{row.Model.String(), fmt.Sprintf("Low (<%.0f)", row.ThresholdMWI)}
		low = append(low, row.Low...)
		high := []string{"", fmt.Sprintf("High (>=%.0f)", row.ThresholdMWI)}
		high = append(high, row.High...)
		rows = append(rows, low, high)
	}
	out := "Table V: top features per wear-out group (Random Forest importance)\n" +
		textplot.Table(header, rows)
	if len(r.Skipped) > 0 {
		out += "No change point (skipped):"
		for _, m := range r.Skipped {
			out += " " + m.String()
		}
		out += "\n"
	}
	return out
}

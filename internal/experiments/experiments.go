// Package experiments regenerates every table and figure of the WEFR
// paper's evaluation (DSN 2021) on the simulated fleet: the dataset
// overview tables (I, II), the feature-importance characterization
// (Table III, Table IV, Fig 1, Table V), and the four experiments
// (Table VI / Exp#1, Fig 2 / Exp#2, Table VII / Exp#3, Table VIII /
// Exp#4). Each experiment returns a structured result with a Render
// method producing an aligned text table or ASCII plot; cmd/experiments
// is the CLI front end and bench_test.go at the repository root wires
// one benchmark per table/figure.
package experiments

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/faults"
	"repro/internal/forest"
	"repro/internal/hist"
	"repro/internal/pipeline"
	"repro/internal/selection"
	"repro/internal/simulate"
	"repro/internal/smart"
	"repro/internal/store"
)

// Config scales the harness. The zero value is unusable; use
// DefaultConfig or TestConfig.
type Config struct {
	// TotalDrives is the simulated fleet size across all models.
	TotalDrives int
	// Days is the dataset span; 0 means the paper's 730.
	Days int
	// Seed fixes all randomness.
	Seed int64
	// AFRScale densifies failures so small fleets retain enough
	// positives per testing phase; 0 means 3.
	AFRScale float64
	// NegEvery is the training-frame negative-sampling stride; 0
	// means 20.
	NegEvery int
	// Forest configures the prediction model; zero NumTrees means the
	// paper's 100x13 setup.
	Forest forest.Config
	// SweepPercents are the fixed selected-feature percentages swept
	// for the Exp#1 baselines and Exp#2 curves; nil means
	// 10%..100% in steps of 10 (the paper's grid).
	SweepPercents []float64
	// Models restricts experiments to a subset; nil means all six.
	Models []smart.ModelID
	// PhaseCount restricts how many of the paper's three testing
	// phases run (taking the latest ones); 0 means all three.
	PhaseCount int
	// SplitMethod selects the tree learners' split search everywhere
	// the harness trains trees — the prediction models and the
	// tree-based rankers (exact default, histogram-binned opt-in; see
	// internal/hist).
	SplitMethod hist.SplitMethod
	// RankerSpecs names the preliminary approaches (selection registry
	// keys) used by the ranker-driven experiments (Exp#1, Exp#4,
	// Table IV) and by WEFR everywhere the harness runs it; nil means
	// the paper's five (selection.DefaultSpecs), bit-identical to
	// earlier releases. Unknown names fail New.
	RankerSpecs []string
	// Workers bounds the parallelism of frame extraction, forest
	// fitting, and scoring; 0 means GOMAXPROCS. Results are identical
	// for any value.
	Workers int
	// Faults, when enabled, interposes a deterministic fault injector
	// between the simulated fleet and the dataset cache, and implies
	// Robust. The zero value injects nothing.
	Faults faults.Config
	// Robust runs every pipeline in robust mode: frames are sanitized,
	// failed rankers are dropped from the ensemble, degenerate phases
	// fall back, and all degradation is accounted in Report(). When
	// false (and Faults is disabled) the harness reproduces the legacy
	// path bit for bit.
	Robust bool
}

// DefaultConfig returns a laptop-scale configuration that preserves
// the paper's qualitative results (thousands of drives rather than the
// production 500 K). The prediction forest and sweep grid are scaled
// for a single-core host; pass the paper-fidelity settings (100x13
// forest, 10-point sweep) through the Config fields or the
// cmd/experiments flags when more hardware is available.
func DefaultConfig() Config {
	return Config{
		TotalDrives:   5000,
		Seed:          1,
		AFRScale:      3,
		NegEvery:      80,
		Forest:        forest.Config{NumTrees: 30, MaxDepth: 10},
		SweepPercents: []float64{0.1, 0.3, 0.5, 0.7, 0.9},
	}
}

// TestConfig returns a reduced configuration for unit tests and
// benchmarks: a small fleet, a light forest, and a coarse sweep.
func TestConfig() Config {
	return Config{
		TotalDrives:   1500,
		Seed:          1,
		AFRScale:      4,
		NegEvery:      40,
		Forest:        forest.Config{NumTrees: 15, MaxDepth: 8},
		SweepPercents: []float64{0.2, 0.5, 0.8},
	}
}

func (c Config) withDefaults() Config {
	if c.Days == 0 {
		c.Days = simulate.DefaultDays
	}
	if c.AFRScale == 0 {
		c.AFRScale = 3
	}
	if c.NegEvery == 0 {
		c.NegEvery = 20
	}
	if c.Forest.NumTrees == 0 {
		c.Forest = forest.DefaultConfig()
	}
	if c.SweepPercents == nil {
		for p := 0.1; p <= 1.0001; p += 0.1 {
			c.SweepPercents = append(c.SweepPercents, p)
		}
	}
	if c.Models == nil {
		c.Models = smart.AllModels()
	}
	if c.Faults.Enabled() {
		c.Robust = true
	}
	return c
}

// Harness owns the simulated fleet and reproduces the paper's tables
// and figures against it. All dataset reads go through one append-only
// fleet store, so every experiment and phase shares a single ingest of
// each drive's series.
type Harness struct {
	cfg      Config
	fleet    *simulate.Fleet
	injector *faults.Injector // nil unless Config.Faults is enabled
	report   *pipeline.RunReport
	stages   *pipeline.StageReport
	store    *store.Store
	src      *store.Snapshot
}

// New builds the fleet and the harness. Unknown RankerSpecs names are
// rejected here, before any fleet simulation, so CLI surfaces fail fast
// with the registered-ranker menu.
func New(cfg Config) (*Harness, error) {
	cfg = cfg.withDefaults()
	if cfg.RankerSpecs != nil {
		if _, err := selection.ResolveAll(cfg.RankerSpecs, cfg.Seed, cfg.SplitMethod); err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
	}
	fleet, err := simulate.New(simulate.Config{
		TotalDrives: cfg.TotalDrives,
		Days:        cfg.Days,
		Seed:        cfg.Seed,
		AFRScale:    cfg.AFRScale,
		Models:      cfg.Models,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	h := &Harness{cfg: cfg, fleet: fleet, stages: &pipeline.StageReport{}}
	var src dataset.Source = dataset.FleetSource{Fleet: fleet}
	if cfg.Faults.Enabled() {
		h.injector = faults.New(src, cfg.Faults)
		src = h.injector
	}
	if cfg.Robust {
		h.report = &pipeline.RunReport{}
	}
	h.store = store.Open(src, store.Options{Workers: cfg.Workers})
	if err := h.store.AppendThrough(cfg.Days - 1); err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	h.src = h.store.Snapshot()
	return h, nil
}

// Source exposes the harness's dataset source (a full-horizon store
// snapshot).
func (h *Harness) Source() dataset.Source { return h.src }

// Store exposes the harness's fleet store (for ingest counters).
func (h *Harness) Store() *store.Store { return h.store }

// StageReport exposes the per-stage timing/row accounting accumulated
// across every pipeline the harness ran.
func (h *Harness) StageReport() *pipeline.StageReport { return h.stages }

// Fleet exposes the underlying simulated fleet.
func (h *Harness) Fleet() *simulate.Fleet { return h.fleet }

// ReportSnapshot serializes the robust-mode run report accumulated so
// far, pairing the fault injector's per-class injected counts with the
// defects the pipeline detected and the degradations it took. On a
// non-robust harness only the injected counts (if any) are populated.
func (h *Harness) ReportSnapshot() pipeline.ReportSnapshot {
	var injected map[string]int
	if h.injector != nil {
		injected = h.injector.Stats().Classes()
	}
	return h.report.Snapshot(injected)
}

// Models returns the models under experiment.
func (h *Harness) Models() []smart.ModelID { return h.cfg.Models }

// pipelineConfig assembles the shared pipeline settings.
func (h *Harness) pipelineConfig() pipeline.Config {
	cfg := pipeline.Config{
		Forest:      h.cfg.Forest,
		NegEvery:    h.cfg.NegEvery,
		SplitMethod: h.cfg.SplitMethod,
		Workers:     h.cfg.Workers,
		Seed:        h.cfg.Seed,
		Stages:      h.stages,
	}
	if h.cfg.Robust {
		cfg.Robust = &pipeline.RobustOpts{
			Sanitize: dataset.SanitizeOpts{MissMask: true},
			Report:   h.report,
		}
	}
	return cfg
}

// phases returns the paper's three testing phases for the configured
// span, trimmed to the configured PhaseCount (latest phases kept).
func (h *Harness) phases() []pipeline.Phase {
	all := pipeline.StandardPhases(h.cfg.Days)
	if h.cfg.PhaseCount > 0 && h.cfg.PhaseCount < len(all) {
		return all[len(all)-h.cfg.PhaseCount:]
	}
	return all
}

// rankers resolves the harness's preliminary approaches through the
// selection registry. A nil RankerSpecs resolves the paper's five with
// exact splits — bit-identical to the pre-registry hardwired set, under
// any SplitMethod (the golden tables pinned that behaviour); explicit
// specs inherit the harness's SplitMethod.
func (h *Harness) rankers() ([]selection.Ranker, error) {
	specs, method := h.cfg.RankerSpecs, h.cfg.SplitMethod
	if specs == nil {
		specs, method = selection.DefaultSpecs(), hist.SplitExact
	}
	rankers, err := selection.ResolveAll(specs, h.cfg.Seed, method)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	return rankers, nil
}

// selectionFrame builds the full-period original-feature frame used by
// the characterization tables (III, IV, V).
func (h *Harness) selectionFrame(m smart.ModelID) (frameWithModel, error) {
	opts := dataset.FrameOpts{
		Model: m, NegEvery: h.cfg.NegEvery, Workers: h.cfg.Workers,
	}
	if h.cfg.Robust {
		// Maskless: characterization works on pure feature columns.
		opts.Sanitize = &dataset.SanitizeOpts{Counter: h.report.Counter()}
	}
	fr, err := dataset.Frame(h.src, opts)
	if err != nil {
		return frameWithModel{}, fmt.Errorf("experiments: frame for %v: %w", m, err)
	}
	return frameWithModel{fr: fr, model: m}, nil
}

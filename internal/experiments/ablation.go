package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/smart"
	"repro/internal/textplot"
)

// AblationVariant is one WEFR configuration variant under ablation.
type AblationVariant struct {
	// Name describes the variant.
	Name string
	// Config is the WEFR configuration.
	Config core.Config
}

// AblationResult compares WEFR design choices — rank aggregation and
// Kendall-tau outlier removal — on prediction accuracy for one model.
// This is the quality-side companion of the runtime ablation
// benchmarks in bench_test.go.
type AblationResult struct {
	Model    smart.ModelID
	Variants []AblationVariant
	Scores   []MethodScore
	Selected []int // features selected by each variant (last phase)
}

// Ablation evaluates the design-choice variants on MC1 over the
// configured phases: the paper's mean aggregation with outlier removal
// (the default), median and best-rank aggregation, and mean
// aggregation with outlier removal disabled.
func (h *Harness) Ablation() (AblationResult, error) {
	model := smart.MC1
	variants := []AblationVariant{
		{Name: "mean + outlier removal (paper)", Config: core.Config{Seed: h.cfg.Seed}},
		{Name: "median aggregation", Config: core.Config{Seed: h.cfg.Seed, Aggregate: core.AggregateMedian}},
		{Name: "best-rank aggregation", Config: core.Config{Seed: h.cfg.Seed, Aggregate: core.AggregateBest}},
		{Name: "no outlier removal", Config: core.Config{Seed: h.cfg.Seed, OutlierZ: 1e9}},
	}
	res := AblationResult{Model: model, Variants: variants}
	cfg := h.pipelineConfig()
	for _, v := range variants {
		var total metrics.Confusion
		selected := 0
		for _, ph := range h.phases() {
			pr, err := pipeline.RunPhase(h.src, model, pipeline.WEFR{Config: v.Config}, ph, cfg)
			if err != nil {
				return AblationResult{}, fmt.Errorf("experiments: ablation %q: %w", v.Name, err)
			}
			total.Merge(pr.Confusion)
			selected = len(pr.Selection.All)
		}
		res.Scores = append(res.Scores, scoreOf(total))
		res.Selected = append(res.Selected, selected)
	}
	return res, nil
}

// Render formats the ablation comparison.
func (r AblationResult) Render() string {
	header := []string{"Variant", "Feats", "P", "R", "F0.5"}
	var rows [][]string
	for i, v := range r.Variants {
		s := r.Scores[i]
		rows = append(rows, []string{
			v.Name,
			fmt.Sprintf("%d", r.Selected[i]),
			textplot.Percent(s.Precision),
			textplot.Percent(s.Recall),
			textplot.Percent(s.F05),
		})
	}
	return fmt.Sprintf("Design-choice ablation on %s (WEFR variants)\n", r.Model) +
		textplot.Table(header, rows)
}

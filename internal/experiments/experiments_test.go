package experiments

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/faults"
	"repro/internal/forest"
	"repro/internal/smart"
)

// Harness construction is the expensive part of these tests; the two
// configurations are shared across test functions (read-only use).
var (
	onceFull    sync.Once
	fullHarness *Harness
	fullErr     error

	onceDuo    sync.Once
	duoHarness *Harness
	duoErr     error
)

// full returns a six-model harness for the characterization tables.
func full(t *testing.T) *Harness {
	t.Helper()
	onceFull.Do(func() {
		fullHarness, fullErr = New(TestConfig())
	})
	if fullErr != nil {
		t.Fatal(fullErr)
	}
	return fullHarness
}

// duo returns a two-model harness with a minimal sweep for the
// pipeline-heavy experiments.
func duo(t *testing.T) *Harness {
	t.Helper()
	onceDuo.Do(func() {
		cfg := Config{
			TotalDrives:   1100,
			Seed:          2,
			AFRScale:      4,
			NegEvery:      45,
			Forest:        forest.Config{NumTrees: 12, MaxDepth: 7},
			SweepPercents: []float64{0.3, 0.7},
			Models:        []smart.ModelID{smart.MA1, smart.MC1},
			PhaseCount:    1,
		}
		duoHarness, duoErr = New(cfg)
	})
	if duoErr != nil {
		t.Fatal(duoErr)
	}
	return duoHarness
}

func TestTable1(t *testing.T) {
	h := full(t)
	r := h.Table1()
	if len(r.Attrs) != 22 || len(r.Models) != 6 {
		t.Fatalf("shape = (%d attrs, %d models)", len(r.Attrs), len(r.Models))
	}
	out := r.Render()
	if !strings.Contains(out, "Media Wearout Indicator") {
		t.Error("render missing attribute names")
	}
	// Spot-check a ✗: RER on MA1 (first attr, first model).
	if r.Attrs[0] != smart.RER || r.Available[0][0] {
		t.Error("RER should be unavailable on MA1")
	}
}

func TestTable2(t *testing.T) {
	h := full(t)
	r := h.Table2()
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	var totalPct float64
	for _, row := range r.Rows {
		totalPct += row.TotalPct
		if row.Drives <= 0 || row.Failures < 0 {
			t.Errorf("%v: drives %d failures %d", row.Model, row.Drives, row.Failures)
		}
	}
	if totalPct < 0.99 || totalPct > 1.01 {
		t.Errorf("total shares = %v", totalPct)
	}
	// TLC AFR above MLC (Table II's headline).
	byModel := map[smart.ModelID]Table2Row{}
	for _, row := range r.Rows {
		byModel[row.Model] = row
	}
	mlc := (byModel[smart.MA1].AFR + byModel[smart.MA2].AFR + byModel[smart.MB1].AFR + byModel[smart.MB2].AFR) / 4
	tlc := (byModel[smart.MC1].AFR + byModel[smart.MC2].AFR) / 2
	if tlc <= mlc {
		t.Errorf("TLC AFR %v should exceed MLC %v", tlc, mlc)
	}
	if !strings.Contains(r.Render(), "MC1") {
		t.Error("render missing models")
	}
}

func TestTable3(t *testing.T) {
	h := full(t)
	r, err := h.Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	find := func(m smart.ModelID) Table3Row {
		for _, row := range r.Rows {
			if row.Model == m {
				return row
			}
		}
		t.Fatalf("missing %v", m)
		return Table3Row{}
	}
	// MC1's planted signature is OCE/UCE: one of them must be ranked
	// first, as in the paper's Table III.
	mc1 := find(smart.MC1)
	top := mc1.Top[0].Name
	if !strings.HasPrefix(top, "OCE") && !strings.HasPrefix(top, "UCE") {
		t.Errorf("MC1 top feature = %s, want OCE_*/UCE_*", top)
	}
	// MA1's signature is PLP.
	ma1 := find(smart.MA1)
	foundPLP := false
	for _, f := range ma1.Top {
		if strings.HasPrefix(f.Name, "PLP") {
			foundPLP = true
		}
	}
	if !foundPLP {
		t.Errorf("MA1 top-3 lacks PLP: %v", ma1.Top)
	}
	// Last features score (near) zero relative to top.
	for _, row := range r.Rows {
		if row.Last[0].Score > row.Top[0].Score/3 {
			t.Errorf("%v last score %v vs top %v: trivial features should score low",
				row.Model, row.Last[0].Score, row.Top[0].Score)
		}
	}
	if !strings.Contains(r.Render(), "Top 1") {
		t.Error("render header missing")
	}
}

func TestTable4(t *testing.T) {
	h := full(t)
	r, err := h.Table4()
	if err != nil {
		t.Fatal(err)
	}
	if r.Model != smart.MC1 || len(r.Approach) != 5 {
		t.Fatalf("model %v, approaches %d", r.Model, len(r.Approach))
	}
	for a, top := range r.Top {
		if len(top) != 5 {
			t.Fatalf("%s top = %d", r.Approach[a], len(top))
		}
	}
	// The approaches must not fully agree (Table IV's point): at least
	// two top-5 lists differ.
	allSame := true
	for a := 1; a < len(r.Top); a++ {
		for i := range r.Top[a] {
			if r.Top[a][i] != r.Top[0][i] {
				allSame = false
			}
		}
	}
	if allSame {
		t.Error("all five approaches produced identical top-5 rankings")
	}
	if !strings.Contains(r.Render(), "Rank") {
		t.Error("render missing")
	}
}

func TestFig1(t *testing.T) {
	h := full(t)
	r, err := h.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Curves) != 6 {
		t.Fatalf("curves = %d", len(r.Curves))
	}
	got := map[smart.ModelID]*Fig1Curve{}
	for i := range r.Curves {
		got[r.Curves[i].Model] = &r.Curves[i]
	}
	// Wear models have change points; MB models do not.
	for _, m := range []smart.ModelID{smart.MA1, smart.MC1} {
		if got[m].ChangePoint == nil {
			t.Errorf("%v: expected a change point", m)
		}
	}
	for _, m := range []smart.ModelID{smart.MB1, smart.MB2} {
		if got[m].ChangePoint != nil {
			t.Errorf("%v: unexpected change point at %v", m, got[m].ChangePoint.MWI)
		}
	}
	out := r.Render()
	if !strings.Contains(out, "survival") || !strings.Contains(out, "no change point") {
		t.Error("render incomplete")
	}
}

func TestTable5(t *testing.T) {
	h := full(t)
	r, err := h.Table5()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) == 0 {
		t.Fatal("no wear-split rows")
	}
	for _, row := range r.Rows {
		if len(row.Low) == 0 || len(row.High) == 0 {
			t.Errorf("%v: empty group rankings", row.Model)
		}
	}
	// MWI/POH should feature in at least one low-MWI top-5 (the
	// paper's key observation for Table V).
	seenWear := false
	for _, row := range r.Rows {
		for _, f := range row.Low {
			if strings.HasPrefix(f, "MWI") || strings.HasPrefix(f, "POH") {
				seenWear = true
			}
		}
	}
	if !seenWear {
		t.Error("no low-MWI group ranks MWI/POH in its top-5")
	}
	skipped := map[smart.ModelID]bool{}
	for _, m := range r.Skipped {
		skipped[m] = true
	}
	if !skipped[smart.MB1] || !skipped[smart.MB2] {
		t.Errorf("MB models should be skipped, got %v", r.Skipped)
	}
	if !strings.Contains(r.Render(), "Low") {
		t.Error("render missing")
	}
}

func TestExp1Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("exp1 is heavy")
	}
	h := duo(t)
	r, err := h.Exp1()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Methods) != 7 {
		t.Fatalf("methods = %v", r.Methods)
	}
	wefr, ok := r.Score("WEFR")
	if !ok {
		t.Fatal("missing WEFR")
	}
	none, ok := r.Score("No feature selection")
	if !ok {
		t.Fatal("missing no-selection")
	}
	// The headline claim at reproduction scale: selection does not
	// hurt, and WEFR's F0.5 is at least competitive overall.
	if wefr.F05 < none.F05-0.02 {
		t.Errorf("WEFR F0.5 %.3f below no-selection %.3f", wefr.F05, none.F05)
	}
	if wefr.F05 <= 0 {
		t.Error("WEFR F0.5 is zero")
	}
	out := r.Render()
	if !strings.Contains(out, "WEFR") || !strings.Contains(out, "All P") {
		t.Error("render incomplete")
	}
	if _, ok := r.ModelScore("WEFR", smart.MC1); !ok {
		t.Error("ModelScore lookup failed")
	}
	if _, ok := r.Score("nope"); ok {
		t.Error("unknown method should not resolve")
	}
}

func TestExp2Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("exp2 is heavy")
	}
	h := duo(t)
	r, err := h.Exp2()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Models) != 2 {
		t.Fatalf("models = %d", len(r.Models))
	}
	for _, em := range r.Models {
		if len(em.F05) != 2 {
			t.Fatalf("%v sweep points = %d", em.Model, len(em.F05))
		}
		if em.WEFRPercent <= 0 || em.WEFRPercent > 1 {
			t.Errorf("%v WEFR percent = %v", em.Model, em.WEFRPercent)
		}
		for _, f := range append(append([]float64(nil), em.F05...), em.WEFRF05) {
			if f < 0 || f > 1 {
				t.Errorf("%v F0.5 out of range: %v", em.Model, f)
			}
		}
	}
	// Fig 2's claim, asserted only where the phase has enough failures
	// for a stable score (MC1, the largest model), with a generous
	// band for the tiny smoke-test fleet.
	for _, em := range r.Models {
		if em.Model != smart.MC1 {
			continue
		}
		if em.WEFRF05 < em.BestFixedF05()-0.35 {
			t.Errorf("MC1 WEFR F0.5 %.3f far below best fixed %.3f",
				em.WEFRF05, em.BestFixedF05())
		}
	}
	if !strings.Contains(r.Render(), "WEFR") {
		t.Error("render incomplete")
	}
}

func TestExp3Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("exp3 is heavy")
	}
	h := duo(t)
	r, err := h.Exp3()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) == 0 {
		t.Fatal("no wear-split models in exp3")
	}
	for _, row := range r.Rows {
		if row.ThresholdMWI <= 0 {
			t.Errorf("%v threshold = %v", row.Model, row.ThresholdMWI)
		}
	}
	if !strings.Contains(r.Render(), "No update") {
		t.Error("render incomplete")
	}
}

func TestExp4(t *testing.T) {
	h := full(t)
	r, err := h.Exp4(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Names) != 6 { // five approaches + WEFR
		t.Fatalf("names = %v", r.Names)
	}
	wefr, ok := r.RuntimeOf("WEFR")
	if !ok {
		t.Fatal("missing WEFR runtime")
	}
	slowest := r.SlowestRanker()
	if slowest <= 0 {
		t.Fatal("no ranker runtimes")
	}
	// Exp#4's claim: parallel WEFR costs close to the slowest single
	// approach, not their sum (allow generous slack for the complexity
	// scan and scheduling).
	if wefr > slowest*3 {
		t.Errorf("WEFR runtime %v should track the slowest ranker %v", wefr, slowest)
	}
	if !strings.Contains(r.Render(), "serial ablation") {
		t.Error("render incomplete")
	}
	if _, ok := r.RuntimeOf("nope"); ok {
		t.Error("unknown runtime lookup should fail")
	}
}

func TestPhaseCountTrim(t *testing.T) {
	h := duo(t)
	if got := len(h.phases()); got != 1 {
		t.Errorf("phases = %d, want 1", got)
	}
	hf := full(t)
	if got := len(hf.phases()); got != 3 {
		t.Errorf("full phases = %d, want 3", got)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("zero config should fail (no drives)")
	}
}

func TestAblationSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation is heavy")
	}
	h := duo(t)
	r, err := h.Ablation()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Variants) != 4 || len(r.Scores) != 4 {
		t.Fatalf("variants = %d, scores = %d", len(r.Variants), len(r.Scores))
	}
	for i, n := range r.Selected {
		if n < 1 {
			t.Errorf("variant %d selected %d features", i, n)
		}
	}
	if !strings.Contains(r.Render(), "outlier removal") {
		t.Error("render incomplete")
	}
}

func TestHarnessAccessors(t *testing.T) {
	h := full(t)
	if h.Source() == nil || h.Fleet() == nil {
		t.Fatal("nil accessors")
	}
	if len(h.Models()) != 6 {
		t.Errorf("models = %v", h.Models())
	}
	if h.Fleet().Days() != h.Source().Days() {
		t.Error("days mismatch between fleet and source")
	}
}

// TestFaultedHarness wires the injector through New and runs one
// pipeline-backed experiment end to end: the snapshot must pair the
// injected classes with detected defects, and Fleet() must keep
// working with the injector interposed.
func TestFaultedHarness(t *testing.T) {
	fc, err := faults.ParseSpec("seed=3,gaps=0.02,nan=0.01,tickets-delay=3d")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		TotalDrives:   1100,
		Seed:          2,
		AFRScale:      4,
		NegEvery:      45,
		Forest:        forest.Config{NumTrees: 12, MaxDepth: 7},
		SweepPercents: []float64{0.5},
		Models:        []smart.ModelID{smart.MC1},
		PhaseCount:    1,
		Faults:        fc,
	}
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !h.cfg.Robust {
		t.Error("faults did not imply robust mode")
	}
	if h.Fleet() == nil || h.Fleet().Days() != h.Source().Days() {
		t.Error("Fleet() broken with injector interposed")
	}
	if _, err := h.Exp3(); err != nil {
		t.Fatalf("faulted Exp3: %v", err)
	}
	snap := h.ReportSnapshot()
	for _, class := range []string{"gap_days", "nan_cells", "tickets_delayed"} {
		if snap.Injected[class] == 0 {
			t.Errorf("injected class %s not accounted: %v", class, snap.Injected)
		}
	}
	if snap.Detected.ImputedCells == 0 {
		t.Errorf("no detected defects despite injection: %+v", snap.Detected)
	}
	if snap.PhasesRun == 0 {
		t.Errorf("no phases recorded: %+v", snap)
	}
}

// TestRobustSnapshotWithoutFaults: -robust alone yields a report with
// no injected classes.
func TestRobustSnapshotWithoutFaults(t *testing.T) {
	cfg := Config{TotalDrives: 100, Robust: true}.withDefaults()
	if !cfg.Robust {
		t.Fatal("robust flag lost in withDefaults")
	}
	h, err := New(Config{
		TotalDrives: 600, Seed: 1, AFRScale: 4,
		Models: []smart.ModelID{smart.MC1}, Robust: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := h.ReportSnapshot()
	if snap.Injected != nil {
		t.Errorf("robust-only harness reports injected defects: %v", snap.Injected)
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{TotalDrives: 100}.withDefaults()
	if cfg.Days != 730 || cfg.AFRScale != 3 || cfg.NegEvery != 20 {
		t.Errorf("defaults = %+v", cfg)
	}
	if cfg.Forest.NumTrees != 100 || cfg.Forest.MaxDepth != 13 {
		t.Errorf("forest defaults = %+v", cfg.Forest)
	}
	if len(cfg.SweepPercents) != 10 {
		t.Errorf("sweep defaults = %v", cfg.SweepPercents)
	}
	if len(cfg.Models) != 6 {
		t.Errorf("model defaults = %v", cfg.Models)
	}
}

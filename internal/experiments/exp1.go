package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/smart"
	"repro/internal/textplot"
)

// MethodScore is one method's accuracy on one model (or overall).
type MethodScore struct {
	Precision float64
	Recall    float64
	F05       float64
	Confusion metrics.Confusion
}

func scoreOf(c metrics.Confusion) MethodScore {
	return MethodScore{Precision: c.Precision(), Recall: c.Recall(), F05: c.F05(), Confusion: c}
}

// Exp1Result is the robust-feature-selection comparison (Table VI):
// prediction accuracy of no selection, the five fixed-percentage
// baselines (each at its best swept percentage, as the paper tunes
// them), and WEFR, per model and overall.
type Exp1Result struct {
	Methods []string
	Models  []smart.ModelID
	// Scores[method][model] is the per-model accuracy; Overall[method]
	// merges the confusions over all models.
	Scores  [][]MethodScore
	Overall []MethodScore
	// BestPercent[method][model] records the swept percentage the
	// baselines peaked at (0 for non-swept methods).
	BestPercent [][]float64
}

// Exp1 runs Table VI. For each of the five preliminary approaches, the
// fixed selected-feature percentage is swept over the configured grid
// and the best F0.5 per model is reported, mirroring the paper's
// tuning; WEFR and no-selection run as-is. Rankings are computed once
// per (model, phase) and truncated per sweep point, so the sweep only
// pays for model training.
func (h *Harness) Exp1() (Exp1Result, error) {
	cfg := h.pipelineConfig()
	phases := h.phases()
	rankers, err := h.rankers()
	if err != nil {
		return Exp1Result{}, err
	}

	methods := []string{"No feature selection"}
	for _, rk := range rankers {
		methods = append(methods, rk.Name())
	}
	methods = append(methods, "WEFR")

	res := Exp1Result{
		Methods:     methods,
		Models:      h.cfg.Models,
		Scores:      make([][]MethodScore, len(methods)),
		BestPercent: make([][]float64, len(methods)),
		Overall:     make([]MethodScore, len(methods)),
	}
	for i := range methods {
		res.Scores[i] = make([]MethodScore, len(h.cfg.Models))
		res.BestPercent[i] = make([]float64, len(h.cfg.Models))
	}
	overall := make([]metrics.Confusion, len(methods))

	for mi, m := range h.cfg.Models {
		// Per-method confusion per swept percentage, merged over phases.
		sweep := make([][]metrics.Confusion, len(rankers))
		for i := range sweep {
			sweep[i] = make([]metrics.Confusion, len(h.cfg.SweepPercents))
		}
		var noSel, wefr metrics.Confusion

		for _, ph := range phases {
			pd, err := pipeline.PreparePhase(h.src, m, ph, cfg)
			if err != nil {
				return Exp1Result{}, fmt.Errorf("experiments: exp1 %v: %w", m, err)
			}
			pr, err := pd.RunSelector(pipeline.NoSelection{})
			if err != nil {
				return Exp1Result{}, fmt.Errorf("experiments: exp1 no-selection on %v: %w", m, err)
			}
			noSel.Merge(pr.Confusion)

			for ri, rk := range rankers {
				ranked, err := rk.Rank(pd.SelFrame)
				if err != nil {
					return Exp1Result{}, fmt.Errorf("experiments: exp1 %s on %v: %w", rk.Name(), m, err)
				}
				for pi, pct := range h.cfg.SweepPercents {
					var names []string
					for _, f := range ranked.TopPercent(pct) {
						names = append(names, pd.SelFrame.Names()[f])
					}
					pr, err := pd.RunSelection(rk.Name(), pipeline.SelectorResult{All: names})
					if err != nil {
						return Exp1Result{}, fmt.Errorf("experiments: exp1 %s@%.0f%% on %v: %w", rk.Name(), pct*100, m, err)
					}
					sweep[ri][pi].Merge(pr.Confusion)
				}
			}

			pr, err = pd.RunSelector(pipeline.WEFR{Config: h.wefrConfig()})
			if err != nil {
				return Exp1Result{}, fmt.Errorf("experiments: exp1 wefr on %v: %w", m, err)
			}
			wefr.Merge(pr.Confusion)
		}

		res.Scores[0][mi] = scoreOf(noSel)
		overall[0].Merge(noSel)
		for ri := range rankers {
			best := sweep[ri][0]
			bestPct := h.cfg.SweepPercents[0]
			for pi, c := range sweep[ri] {
				if c.F05() > best.F05() {
					best = c
					bestPct = h.cfg.SweepPercents[pi]
				}
			}
			res.Scores[ri+1][mi] = scoreOf(best)
			res.BestPercent[ri+1][mi] = bestPct
			overall[ri+1].Merge(best)
		}
		wi := len(methods) - 1
		res.Scores[wi][mi] = scoreOf(wefr)
		overall[wi].Merge(wefr)
	}
	for i := range methods {
		res.Overall[i] = scoreOf(overall[i])
	}
	return res, nil
}

// wefrConfig assembles the WEFR core configuration from the harness.
func (h *Harness) wefrConfig() core.Config {
	cfg := core.Config{
		Seed:        h.cfg.Seed,
		SplitMethod: h.cfg.SplitMethod,
		RankerSpecs: h.cfg.RankerSpecs,
	}
	if h.cfg.Robust {
		cfg.Robust = &core.RobustConfig{}
	}
	return cfg
}

// Render formats Table VI.
func (r Exp1Result) Render() string {
	header := []string{"Method"}
	for _, m := range r.Models {
		header = append(header, m.String()+" P", "R", "F0.5")
	}
	header = append(header, "All P", "R", "F0.5")
	var rows [][]string
	for i, name := range r.Methods {
		row := []string{name}
		for j := range r.Models {
			s := r.Scores[i][j]
			row = append(row,
				textplot.Percent(s.Precision), textplot.Percent(s.Recall), textplot.Percent(s.F05))
		}
		o := r.Overall[i]
		row = append(row, textplot.Percent(o.Precision), textplot.Percent(o.Recall), textplot.Percent(o.F05))
		rows = append(rows, row)
	}
	return "Table VI (Exp#1): prediction accuracy per feature-selection method\n" +
		textplot.Table(header, rows)
}

// Score returns the overall score of the named method, or false.
func (r Exp1Result) Score(method string) (MethodScore, bool) {
	for i, name := range r.Methods {
		if name == method {
			return r.Overall[i], true
		}
	}
	return MethodScore{}, false
}

// ModelScore returns the named method's score on one model, or false.
func (r Exp1Result) ModelScore(method string, model smart.ModelID) (MethodScore, bool) {
	for i, name := range r.Methods {
		if name != method {
			continue
		}
		for j, m := range r.Models {
			if m == model {
				return r.Scores[i][j], true
			}
		}
	}
	return MethodScore{}, false
}

package experiments

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/smart"
	"repro/internal/textplot"
)

// Exp3Row compares WEFR with and without the wear-out update on one
// model, over all drives and over the low-MWI_N group only.
type Exp3Row struct {
	Model smart.ModelID
	// ThresholdMWI is the wear split used for the Low columns.
	ThresholdMWI float64
	NoUpdateAll  MethodScore
	NoUpdateLow  MethodScore
	WEFRAll      MethodScore
	WEFRLow      MethodScore
}

// Exp3Result is the updating-feature-selection evaluation (Table VII),
// run on the models whose survival curve has a change point.
type Exp3Result struct {
	Rows []Exp3Row
	// Skipped lists models with no change point.
	Skipped []smart.ModelID
}

// Exp3 runs Table VII: WEFR versus WEFR (No update) on the wear-split
// models, reporting both all-drive and low-MWI-group accuracy.
func (h *Harness) Exp3() (Exp3Result, error) {
	cfg := h.pipelineConfig()
	phases := h.phases()
	var res Exp3Result
	for _, m := range h.cfg.Models {
		full, err := pipeline.RunPhase(h.src, m, pipeline.WEFR{Config: h.wefrConfig()}, phases[len(phases)-1], cfg)
		if err != nil {
			return Exp3Result{}, fmt.Errorf("experiments: exp3 probe %v: %w", m, err)
		}
		if full.Selection.Split == nil {
			res.Skipped = append(res.Skipped, m)
			continue
		}
		threshold := full.Selection.Split.ThresholdMWI

		row := Exp3Row{Model: m, ThresholdMWI: threshold}
		var allUp, lowUp, allNo, lowNo metrics.Confusion
		for _, ph := range phases {
			up, err := pipeline.RunPhase(h.src, m, pipeline.WEFR{Config: h.wefrConfig()}, ph, cfg)
			if err != nil {
				return Exp3Result{}, fmt.Errorf("experiments: exp3 %v: %w", m, err)
			}
			no, err := pipeline.RunPhase(h.src, m, pipeline.WEFR{Config: h.wefrConfig(), NoUpdate: true}, ph, cfg)
			if err != nil {
				return Exp3Result{}, fmt.Errorf("experiments: exp3 %v no-update: %w", m, err)
			}
			allUp.Merge(up.Confusion)
			allNo.Merge(no.Confusion)
			thr := threshold
			if up.Selection.Split != nil {
				thr = up.Selection.Split.ThresholdMWI
			}
			lowUp.Merge(pipeline.EvaluateLowMWI(up.Outcomes, thr))
			lowNo.Merge(pipeline.EvaluateLowMWI(no.Outcomes, thr))
		}
		row.WEFRAll = scoreOf(allUp)
		row.WEFRLow = scoreOf(lowUp)
		row.NoUpdateAll = scoreOf(allNo)
		row.NoUpdateLow = scoreOf(lowNo)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render formats Table VII.
func (r Exp3Result) Render() string {
	header := []string{"Model", "Metric", "No update All", "No update Low", "WEFR All", "WEFR Low"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows,
			[]string{row.Model.String(), "Precision",
				textplot.Percent(row.NoUpdateAll.Precision), textplot.Percent(row.NoUpdateLow.Precision),
				textplot.Percent(row.WEFRAll.Precision), textplot.Percent(row.WEFRLow.Precision)},
			[]string{"", "Recall",
				textplot.Percent(row.NoUpdateAll.Recall), textplot.Percent(row.NoUpdateLow.Recall),
				textplot.Percent(row.WEFRAll.Recall), textplot.Percent(row.WEFRLow.Recall)},
			[]string{"", "F0.5",
				textplot.Percent(row.NoUpdateAll.F05), textplot.Percent(row.NoUpdateLow.F05),
				textplot.Percent(row.WEFRAll.F05), textplot.Percent(row.WEFRLow.F05)},
		)
	}
	out := "Table VII (Exp#3): WEFR vs WEFR (No update)\n" + textplot.Table(header, rows)
	if len(r.Skipped) > 0 {
		out += "No change point (skipped):"
		for _, m := range r.Skipped {
			out += " " + m.String()
		}
		out += "\n"
	}
	return out
}

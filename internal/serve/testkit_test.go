package serve

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/forest"
	"repro/internal/pipeline"
	"repro/internal/simulate"
	"repro/internal/smart"
	"repro/internal/store"
)

// The trained fixture is expensive relative to the tests that share
// it, so it is built once per test binary: a small simulated fleet
// and two snapshots of distinct configs (distinct config hashes, for
// hot-swap identity checks).
var fixtureOnce sync.Once
var fixture struct {
	src   dataset.Source
	snapA *engine.ModelSnapshot
	snapB *engine.ModelSnapshot
	err   error
}

const testModel = smart.MC1

func testCfg(seed int64) engine.Config {
	return engine.Config{
		Forest:   forest.Config{NumTrees: 8, MaxDepth: 5, Seed: seed},
		NegEvery: 20,
		Seed:     seed,
	}
}

func buildFixture() {
	f, err := simulate.New(simulate.Config{TotalDrives: 500, Seed: 7, AFRScale: 4})
	if err != nil {
		fixture.err = err
		return
	}
	src := dataset.FleetSource{Fleet: f}
	fixture.src = src
	ph := engine.StandardPhases(src.Days())[2]
	for i, seed := range []int64{1, 2} {
		res, err := engine.RunPhase(src, testModel, pipeline.NoSelection{}, ph, testCfg(seed))
		if err != nil {
			fixture.err = err
			return
		}
		snap, err := res.Snapshot()
		if err != nil {
			fixture.err = err
			return
		}
		if i == 0 {
			fixture.snapA = snap
		} else {
			fixture.snapB = snap
		}
	}
	if fixture.snapA.ConfigHash == fixture.snapB.ConfigHash {
		panic("fixture snapshots must have distinct config hashes")
	}
}

// testFleet returns the shared simulated fleet source and the two
// trained snapshots.
func testFleet(t *testing.T) (dataset.Source, *engine.ModelSnapshot, *engine.ModelSnapshot) {
	t.Helper()
	fixtureOnce.Do(buildFixture)
	if fixture.err != nil {
		t.Fatalf("fixture: %v", fixture.err)
	}
	return fixture.src, fixture.snapA, fixture.snapB
}

// newTestServer saves snapA as version 1 of artifact "serving" in a
// fresh registry and returns a server over it, plus the registry for
// saving further versions. A store over the shared fleet is attached
// with the full span pre-ingested.
func newTestServer(t *testing.T, opts Options) (*Server, *core.Registry, *store.Store) {
	t.Helper()
	src, snapA, _ := testFleet(t)
	reg := &core.Registry{Dir: t.TempDir()}
	if _, err := engine.SaveSnapshot(reg, "serving", snapA); err != nil {
		t.Fatal(err)
	}
	st := store.Open(src, store.Options{})
	if err := st.Track(testModel); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendThrough(src.Days() - 1); err != nil {
		t.Fatal(err)
	}
	opts.Registry = reg
	opts.Artifacts = []string{"serving"}
	opts.Store = st
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s, reg, st
}

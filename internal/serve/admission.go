package serve

import (
	"context"
	"errors"
)

// pathClass partitions the admission-controlled request paths. Each
// class has its own concurrency cap and bounded wait queue: a fleet
// pass must not starve single-drive scoring, and a flood of cheap
// singles must not crowd out the one ingest admission that advances
// the horizon.
type pathClass int

const (
	pathSingle pathClass = iota
	pathBatch
	pathFleet
	pathIngest
	numPathClasses
)

func (p pathClass) String() string {
	switch p {
	case pathSingle:
		return "single"
	case pathBatch:
		return "batch"
	case pathFleet:
		return "fleet"
	case pathIngest:
		return "ingest"
	}
	return "unknown"
}

// errShed is returned by gate.acquire when the path's wait queue is
// full: the request is rejected immediately (429 + Retry-After)
// rather than queued — the queue bound is what keeps overload from
// turning into unbounded latency.
var errShed = errors.New("serve: overloaded, request shed")

// gate is one path class's admission gate: a concurrency cap
// (inflight) plus a bounded wait queue (waiters). Admission is
// two-stage — a non-blocking waiter-slot reserve that sheds on a full
// queue, then a context-bounded wait for an inflight slot — so the
// number of goroutines parked on a saturated path never exceeds the
// queue bound, and a request whose deadline expires while queued
// leaves promptly without consuming capacity.
type gate struct {
	inflight chan struct{} // concurrency slots
	waiters  chan struct{} // bounded wait-queue slots
}

// newGate builds a gate admitting maxInflight concurrent requests
// with at most maxQueue more waiting.
func newGate(maxInflight, maxQueue int) *gate {
	if maxInflight < 1 {
		maxInflight = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &gate{
		inflight: make(chan struct{}, maxInflight),
		waiters:  make(chan struct{}, maxInflight+maxQueue),
	}
}

// acquire admits the request or reports why it can't: errShed when
// the wait queue is full, the context's error when the deadline
// expires before a slot frees. A nil return must be paired with
// release.
func (g *gate) acquire(ctx context.Context) error {
	select {
	case g.waiters <- struct{}{}:
	default:
		return errShed
	}
	defer func() { <-g.waiters }()
	select {
	case g.inflight <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release frees the inflight slot taken by a successful acquire.
func (g *gate) release() { <-g.inflight }

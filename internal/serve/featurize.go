package serve

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/engine"
	"repro/internal/featgen"
	"repro/internal/smart"
	"repro/internal/stats"
)

// featurize.go assembles one drive-day's model-input row exactly the
// way the engine's frame extraction does: the group's original
// features at the scored day, then — per feature — the generated
// window statistics, whose trailing windows look back through the
// supplied history. With at least maxWindow days of history before
// the scored day, the row is bit-identical to the engine's, so online
// scores match offline ones exactly.

// featScratch is the pooled working state of one row assembly.
type featScratch struct {
	row     []float64
	gen     [][]float64 // nGen single-day views into genSlab
	genSlab []float64
	rolling []stats.RollingStats
}

var featPool sync.Pool

// getScratch returns scratch sized for width row columns and nGen
// generated stats per feature.
func getScratch(width, nGen int) *featScratch {
	fs, _ := featPool.Get().(*featScratch)
	if fs == nil {
		fs = &featScratch{}
	}
	if cap(fs.row) < width {
		fs.row = make([]float64, width)
	}
	fs.row = fs.row[:width]
	if cap(fs.genSlab) < nGen {
		fs.genSlab = make([]float64, nGen)
	}
	fs.genSlab = fs.genSlab[:nGen]
	if cap(fs.gen) < nGen {
		fs.gen = make([][]float64, nGen)
	}
	fs.gen = fs.gen[:nGen]
	for i := range fs.gen {
		fs.gen[i] = fs.genSlab[i : i+1]
	}
	return fs
}

func putScratch(fs *featScratch) { featPool.Put(fs) }

// driveRow fills row with the group's model inputs for the given day
// of the series. Series columns must all have length > day; features
// the group selected must be present.
func (sv *serving) driveRow(g *groupRT, series map[smart.Feature][]float64, day int, fs *featScratch) error {
	k := len(g.feats)
	for i, ft := range g.feats {
		col, ok := series[ft]
		if !ok {
			return &reqError{code: 400, msg: fmt.Sprintf("series is missing selected feature %v", ft)}
		}
		fs.row[i] = col[day]
	}
	for fi, ft := range g.feats {
		col := series[ft]
		var err error
		fs.rolling, err = featgen.GenerateRangeInto(fs.gen, col, sv.windows, day, day, fs.rolling)
		if err != nil {
			return fmt.Errorf("serve: expand %v: %w", ft, err)
		}
		base := k + fi*g.nGen
		for j := 0; j < g.nGen; j++ {
			fs.row[base+j] = fs.gen[j][0]
		}
	}
	return nil
}

// routeMWI extracts the wear index the engine would route the day by:
// the normalized MWI column at the scored day when present, else 0 —
// the same default the engine's extraction applies to series without
// a wear column. An explicit override wins.
func routeMWI(series map[smart.Feature][]float64, day int, override *float64) float64 {
	if override != nil {
		return *override
	}
	if col, ok := series[engine.MWIFeature]; ok && day < len(col) {
		return col[day]
	}
	return 0
}

// checkSeries validates an inline series upload against the serving
// snapshot: parseable feature names, equal column lengths, and a
// bounded span. It returns the parsed columns and the common length.
func (sv *serving) checkSeries(raw map[string][]float64, maxDays int) (map[smart.Feature][]float64, int, error) {
	if len(raw) == 0 {
		return nil, 0, &reqError{code: 400, msg: "series is empty"}
	}
	cols := make(map[smart.Feature][]float64, len(raw))
	n := -1
	for name, vals := range raw {
		ft, err := smart.ParseFeature(name)
		if err != nil {
			return nil, 0, &reqError{code: 400, msg: fmt.Sprintf("unknown feature %q", name)}
		}
		if len(vals) == 0 {
			return nil, 0, &reqError{code: 400, msg: fmt.Sprintf("feature %q has an empty series", name)}
		}
		if len(vals) > maxDays {
			return nil, 0, &reqError{code: 413, msg: fmt.Sprintf("feature %q has %d days, limit %d", name, len(vals), maxDays)}
		}
		if n < 0 {
			n = len(vals)
		} else if len(vals) != n {
			return nil, 0, &reqError{code: 400, msg: fmt.Sprintf("feature %q has %d days, other columns have %d", name, len(vals), n)}
		}
		for _, v := range vals {
			if math.IsInf(v, 0) {
				return nil, 0, &reqError{code: 400, msg: fmt.Sprintf("feature %q contains an infinite value", name)}
			}
		}
		cols[ft] = vals
	}
	return cols, n, nil
}

package serve

import (
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// sumScorer is a deterministic stand-in kernel: out[i] = sum of row i.
// It exposes whether the coalescer keeps each request's row and
// result correctly associated across batching.
func sumScorer(cols [][]float64, out []float64) error {
	for i := range out {
		s := 0.0
		for _, c := range cols {
			s += c[i]
		}
		out[i] = s
	}
	return nil
}

func TestCoalescerSizeFlush(t *testing.T) {
	var sizeFlushes atomic.Int64
	co := newCoalescer(coalescerConfig{
		nCols: 2, maxRows: 4, maxAge: time.Hour, // age never fires
		score: sumScorer,
		onFlush: func(rows int, trig flushTrigger) {
			if trig == flushSize {
				sizeFlushes.Add(1)
			}
		},
	})
	defer co.Close()
	var wg sync.WaitGroup
	results := make([]float64, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := co.Submit([]float64{float64(i), 1})
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
			}
			results[i] = p
		}(i)
	}
	wg.Wait()
	for i, p := range results {
		if want := float64(i) + 1; p != want {
			t.Errorf("row %d: prob %v, want %v", i, p, want)
		}
	}
	if sizeFlushes.Load() != 2 {
		t.Errorf("size flushes = %d, want 2", sizeFlushes.Load())
	}
}

func TestCoalescerAgeFlush(t *testing.T) {
	var ageFlushes atomic.Int64
	co := newCoalescer(coalescerConfig{
		nCols: 1, maxRows: 1024, maxAge: 2 * time.Millisecond,
		score: sumScorer,
		onFlush: func(rows int, trig flushTrigger) {
			if trig == flushAge {
				ageFlushes.Add(1)
			}
		},
	})
	defer co.Close()
	start := time.Now()
	p, err := co.Submit([]float64{42})
	if err != nil {
		t.Fatal(err)
	}
	if p != 42 {
		t.Fatalf("prob = %v, want 42", p)
	}
	if ageFlushes.Load() == 0 {
		t.Error("expected an age-triggered flush")
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Errorf("single row waited %v for its age flush", waited)
	}
}

func TestCoalescerCloseDrains(t *testing.T) {
	co := newCoalescer(coalescerConfig{
		nCols: 1, maxRows: 1024, maxAge: time.Hour,
		score: sumScorer,
	})
	got := make(chan float64, 1)
	go func() {
		p, err := co.Submit([]float64{7})
		if err != nil {
			t.Errorf("queued submit failed across close: %v", err)
		}
		got <- p
	}()
	// Wait until the row is queued before closing.
	for {
		co.mu.Lock()
		queued := co.cur != nil && co.cur.n == 1
		co.mu.Unlock()
		if queued {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	co.Close()
	select {
	case p := <-got:
		if p != 7 {
			t.Fatalf("drained prob = %v, want 7", p)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued request not drained by Close")
	}
	if _, err := co.Submit([]float64{1}); !errors.Is(err, errRetired) {
		t.Fatalf("post-close submit error = %v, want errRetired", err)
	}
}

func TestCoalescerConcurrentHammer(t *testing.T) {
	co := newCoalescer(coalescerConfig{
		nCols: 3, maxRows: 16, maxAge: 200 * time.Microsecond,
		score: sumScorer,
	})
	defer co.Close()
	const goroutines = 8
	const perG = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			row := make([]float64, 3)
			for i := 0; i < perG; i++ {
				v := float64(g*perG + i)
				row[0], row[1], row[2] = v, 2*v, 3*v
				p, err := co.Submit(row)
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				if want := 6 * v; p != want {
					t.Errorf("row %v: prob %v, want %v", v, p, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestCoalescerScoreError delivers a kernel error to every queued
// request rather than wedging them.
func TestCoalescerScoreError(t *testing.T) {
	kernelErr := errors.New("kernel exploded")
	co := newCoalescer(coalescerConfig{
		nCols: 1, maxRows: 2, maxAge: time.Hour,
		score: func([][]float64, []float64) error { return kernelErr },
	})
	defer co.Close()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := co.Submit([]float64{1}); !errors.Is(err, kernelErr) {
				t.Errorf("error = %v, want kernel error", err)
			}
		}()
	}
	wg.Wait()
}

// TestCoalescerSubmitAllocs pins the tentpole's steady-state claim:
// once the batch/cell pools are warm, a Submit on the hot path
// performs no allocations. maxRows=1 keeps the flush synchronous in
// the submitter, so the measurement covers the full request path.
func TestCoalescerSubmitAllocs(t *testing.T) {
	co := newCoalescer(coalescerConfig{
		nCols: 4, maxRows: 1, maxAge: time.Hour,
		score: sumScorer,
	})
	defer co.Close()
	row := []float64{1, 2, 3, 4}
	// Warm the pools.
	for i := 0; i < 100; i++ {
		if _, err := co.Submit(row); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := co.Submit(row); err != nil {
			t.Fatal(err)
		}
	})
	// GC during the measurement can clear sync.Pool and cost a
	// handful of re-warm allocations; anything per-op-proportional
	// fails.
	if allocs > 0.1 {
		t.Errorf("Submit allocates %.3f objects/op at steady state, want ~0", allocs)
	}
	if math.IsNaN(allocs) {
		t.Error("AllocsPerRun returned NaN")
	}
}

func BenchmarkCoalescerSubmit(b *testing.B) {
	co := newCoalescer(coalescerConfig{
		nCols: 8, maxRows: 256, maxAge: 500 * time.Microsecond,
		score: sumScorer,
	})
	defer co.Close()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		row := make([]float64, 8)
		for i := range row {
			row[i] = float64(i)
		}
		for pb.Next() {
			if _, err := co.Submit(row); err != nil {
				b.Fatal(err)
			}
		}
	})
}

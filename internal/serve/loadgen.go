package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"
)

// loadgen.go is the open-loop load generator for the serving daemon:
// a Poisson arrival process with diurnal (sinusoidal) rate modulation
// and a per-cohort request mix — cohorts differ in artifact, path
// (single / batch / fleet), and batch size, modeling distinct client
// populations. Arrivals are open-loop: a slow server does not slow
// the generator down, and each request's latency is measured from its
// scheduled arrival time, so queueing delay under overload is charged
// to the server (no coordinated omission).

// Cohort is one client population in the mix.
type Cohort struct {
	// Name labels the cohort in the report.
	Name string `json:"name"`
	// Artifact is the served model the cohort scores against.
	Artifact string `json:"artifact"`
	// Weight is the cohort's share of arrivals (relative).
	Weight float64 `json:"weight"`
	// Path is the request shape: "single" (coalesced), "batch"
	// (kernel-direct), or "fleet" (whole-store pass).
	Path string `json:"path"`
	// Batch is the drives per request for the batch path (default 64).
	Batch int `json:"batch,omitempty"`
}

// LoadSpec configures one load-generation run.
type LoadSpec struct {
	// BaseQPS is the mean arrival rate.
	BaseQPS float64 `json:"base_qps"`
	// Duration is the generation span.
	Duration time.Duration `json:"duration"`
	// DiurnalPeriod is the modulation period (0 disables modulation).
	DiurnalPeriod time.Duration `json:"diurnal_period,omitempty"`
	// DiurnalAmp is the modulation amplitude in [0, 1): the rate swings
	// between Base*(1-Amp) and Base*(1+Amp).
	DiurnalAmp float64 `json:"diurnal_amp,omitempty"`
	// Cohorts is the request mix (required, weights need not sum to 1).
	Cohorts []Cohort `json:"cohorts"`
	// Seed makes the arrival process and payloads reproducible.
	Seed int64 `json:"seed"`
	// HistoryDays is the telemetry history per generated drive payload
	// (default 10 — enough for exact 7-day window statistics).
	HistoryDays int `json:"history_days,omitempty"`
	// Day is the store day scored by fleet-path requests.
	Day int `json:"day,omitempty"`
	// Workers is the request concurrency draining the arrival queue
	// (default 64).
	Workers int `json:"workers,omitempty"`
}

// PathStats is the latency/throughput report for one request path.
// Latency percentiles cover accepted (2xx) responses only: a shed is
// a fast constant-time rejection, and folding those into the
// percentiles would make an overloaded server look faster as it sheds
// harder.
type PathStats struct {
	Requests int `json:"requests"`
	// Accepted counts 2xx responses.
	Accepted int `json:"accepted"`
	// Shed counts 429 admission rejections.
	Shed int `json:"shed"`
	// Deadline counts 503s whose error code is deadline_exceeded.
	Deadline int `json:"deadline"`
	// Unavailable counts other 503s (breaker open, store down).
	Unavailable int `json:"unavailable"`
	// Errors counts everything else — transport failures and any
	// status outside {200, 429, 503}. Under pure overload this must
	// stay zero; a non-zero value is a daemon bug, not load.
	Errors int     `json:"errors"`
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// LoadReport is the result of one load run.
type LoadReport struct {
	OfferedQPS  float64 `json:"offered_qps"`
	AchievedQPS float64 `json:"achieved_qps"`
	// GoodputQPS is the accepted-response rate — the throughput that
	// actually served clients.
	GoodputQPS  float64 `json:"goodput_qps"`
	Requests    int     `json:"requests"`
	Accepted    int     `json:"accepted"`
	Shed        int     `json:"shed"`
	Deadline    int     `json:"deadline"`
	Unavailable int     `json:"unavailable"`
	Errors      int     `json:"errors"`
	// ShedRate is Shed / Requests.
	ShedRate float64              `json:"shed_rate"`
	Paths    map[string]PathStats `json:"paths"`
}

// SatReport is the result of a saturation scan: escalating offered
// rates until the SLO breaks or throughput stops following the offer.
type SatReport struct {
	Steps []LoadReport `json:"steps"`
	// SaturationQPS is the last achieved rate that held the SLO.
	SaturationQPS float64 `json:"saturation_qps"`
	// Saturated reports whether the scan actually found the knee (the
	// last step broke the SLO or fell behind the offer).
	Saturated bool `json:"saturated"`
}

type arrival struct {
	at     time.Duration // scheduled offset from run start
	cohort int
}

// outcome classifies one response for the shed-aware report.
type outcome int

const (
	outAccepted    outcome = iota // 2xx
	outShed                       // 429
	outDeadline                   // 503 deadline_exceeded
	outUnavailable                // other 503
	outError                      // transport failure or unexpected status
)

type sample struct {
	path string
	lat  time.Duration
	out  outcome
}

// classify maps one response to its outcome. The 503 split reads the
// structured "code" field the daemon puts in every error body.
func classify(status int, body []byte) outcome {
	switch {
	case status >= 200 && status < 300:
		return outAccepted
	case status == http.StatusTooManyRequests:
		return outShed
	case status == http.StatusServiceUnavailable:
		var e struct {
			Code string `json:"code"`
		}
		if json.Unmarshal(body, &e) == nil && e.Code == "deadline_exceeded" {
			return outDeadline
		}
		return outUnavailable
	}
	return outError
}

// payloadPool pre-marshals request bodies per cohort so the hot loop
// does no JSON encoding.
type payloadPool struct {
	path   string
	bodies [][]byte
	url    string
}

// buildPayloads fabricates drive telemetry for one cohort over the
// artifact's actual selected features (learned from /v1/models).
// Values are arbitrary but deterministic; each payload draws a random
// wear level so every wear group sees traffic.
func buildPayloads(spec LoadSpec, c Cohort, featNames []string, rng *rand.Rand, baseURL string) payloadPool {
	const variants = 32
	hist := spec.HistoryDays
	if hist <= 0 {
		hist = 10
	}
	batch := c.Batch
	if batch <= 0 {
		batch = 64
	}
	mkSeries := func() map[string][]float64 {
		mwi := rng.Float64()
		s := map[string][]float64{}
		for _, name := range featNames {
			col := make([]float64, hist)
			for i := range col {
				col[i] = rng.Float64()
			}
			if name == "MWI_N" {
				for i := range col {
					col[i] = mwi
				}
			}
			s[name] = col
		}
		return s
	}
	pp := payloadPool{path: c.Path}
	switch c.Path {
	case "fleet":
		pp.url = baseURL + "/v1/score/fleet"
		body, _ := json.Marshal(FleetRequest{Model: c.Artifact, Day: spec.Day})
		pp.bodies = [][]byte{body}
	case "batch":
		pp.url = baseURL + "/v1/score/batch"
		for v := 0; v < variants; v++ {
			req := BatchRequest{Model: c.Artifact}
			for i := 0; i < batch; i++ {
				req.Drives = append(req.Drives, BatchDrive{Series: mkSeries()})
			}
			body, _ := json.Marshal(req)
			pp.bodies = append(pp.bodies, body)
		}
	default: // single
		pp.url = baseURL + "/v1/score"
		for v := 0; v < variants; v++ {
			body, _ := json.Marshal(ScoreRequest{Model: c.Artifact, Series: mkSeries()})
			pp.bodies = append(pp.bodies, body)
		}
	}
	return pp
}

// genArrivals draws the full arrival schedule up front by thinning a
// homogeneous Poisson process at the peak rate, so the run's hot loop
// only sleeps and sends.
func genArrivals(spec LoadSpec, rng *rand.Rand) []arrival {
	lambdaMax := spec.BaseQPS * (1 + spec.DiurnalAmp)
	if lambdaMax <= 0 {
		return nil
	}
	var weights []float64
	var total float64
	for _, c := range spec.Cohorts {
		total += c.Weight
		weights = append(weights, total)
	}
	pickCohort := func() int {
		x := rng.Float64() * total
		for i, w := range weights {
			if x <= w {
				return i
			}
		}
		return len(weights) - 1
	}
	rate := func(t time.Duration) float64 {
		if spec.DiurnalPeriod <= 0 || spec.DiurnalAmp <= 0 {
			return spec.BaseQPS
		}
		phase := 2 * math.Pi * float64(t) / float64(spec.DiurnalPeriod)
		return spec.BaseQPS * (1 + spec.DiurnalAmp*math.Sin(phase))
	}
	var out []arrival
	t := time.Duration(0)
	for {
		gap := time.Duration(rng.ExpFloat64() / lambdaMax * float64(time.Second))
		t += gap
		if t >= spec.Duration {
			return out
		}
		if rng.Float64()*lambdaMax <= rate(t) {
			out = append(out, arrival{at: t, cohort: pickCohort()})
		}
	}
}

// RunLoad drives one open-loop load run against a serving daemon at
// baseURL and reports per-path latency percentiles and throughput.
func RunLoad(client *http.Client, baseURL string, spec LoadSpec) (*LoadReport, error) {
	if len(spec.Cohorts) == 0 {
		return nil, fmt.Errorf("serve: load spec has no cohorts")
	}
	workers := spec.Workers
	if workers <= 0 {
		workers = 64
	}
	feats, err := fetchFeatures(client, baseURL)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	pools := make([]payloadPool, len(spec.Cohorts))
	for i, c := range spec.Cohorts {
		names, ok := feats[c.Artifact]
		if !ok {
			return nil, fmt.Errorf("serve: cohort %q targets unknown artifact %q", c.Name, c.Artifact)
		}
		pools[i] = buildPayloads(spec, c, names, rng, baseURL)
	}
	arrivals := genArrivals(spec, rng)
	if len(arrivals) == 0 {
		return &LoadReport{Paths: map[string]PathStats{}}, nil
	}

	// The queue holds every arrival so the dispatcher never blocks on
	// slow workers: open-loop arrivals, closed-loop draining.
	queue := make(chan arrival, len(arrivals))
	samples := make([]sample, len(arrivals))
	var next int
	var nextMu sync.Mutex

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			wrng := rand.New(rand.NewSource(seed))
			for a := range queue {
				pp := &pools[a.cohort]
				body := pp.bodies[wrng.Intn(len(pp.bodies))]
				var out outcome
				resp, err := client.Post(pp.url, "application/json", bytes.NewReader(body))
				if err != nil {
					out = outError
				} else {
					rb, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					out = classify(resp.StatusCode, rb)
				}
				lat := time.Since(start.Add(a.at))
				nextMu.Lock()
				idx := next
				next++
				nextMu.Unlock()
				samples[idx] = sample{path: pp.path, lat: lat, out: out}
			}
		}(spec.Seed + int64(w) + 1)
	}
	for _, a := range arrivals {
		if d := time.Until(start.Add(a.at)); d > 0 {
			time.Sleep(d)
		}
		queue <- a
	}
	close(queue)
	wg.Wait()
	elapsed := time.Since(start)

	rep := &LoadReport{
		OfferedQPS:  float64(len(arrivals)) / spec.Duration.Seconds(),
		AchievedQPS: float64(len(arrivals)) / elapsed.Seconds(),
		Requests:    len(arrivals),
		Paths:       map[string]PathStats{},
	}
	byPath := map[string][]time.Duration{}
	for _, s := range samples[:next] {
		ps := rep.Paths[s.path]
		ps.Requests++
		switch s.out {
		case outAccepted:
			ps.Accepted++
			rep.Accepted++
			byPath[s.path] = append(byPath[s.path], s.lat)
		case outShed:
			ps.Shed++
			rep.Shed++
		case outDeadline:
			ps.Deadline++
			rep.Deadline++
		case outUnavailable:
			ps.Unavailable++
			rep.Unavailable++
		default:
			ps.Errors++
			rep.Errors++
		}
		rep.Paths[s.path] = ps
	}
	rep.GoodputQPS = float64(rep.Accepted) / elapsed.Seconds()
	if rep.Requests > 0 {
		rep.ShedRate = float64(rep.Shed) / float64(rep.Requests)
	}
	for path, lats := range byPath {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		ps := rep.Paths[path]
		ps.P50Ms = ms(pct(lats, 0.50))
		ps.P99Ms = ms(pct(lats, 0.99))
		ps.P999Ms = ms(pct(lats, 0.999))
		ps.MaxMs = ms(lats[len(lats)-1])
		rep.Paths[path] = ps
	}
	return rep, nil
}

// SaturationScan runs RunLoad at geometrically escalating rates until
// the single-path p99 breaks sloP99, any request fails to be fully
// served (error, shed, deadline, or unavailable), or achieved
// throughput falls under 90% of offered — then reports the last rate
// that held. At most maxSteps rates are tried. Sheds count as
// breaking the SLO here: a saturation scan asks for the rate the
// daemon serves everything, and admission control kicking in IS the
// knee it is looking for.
func SaturationScan(client *http.Client, baseURL string, spec LoadSpec, growth float64, maxSteps int, sloP99 time.Duration) (*SatReport, error) {
	if growth <= 1 {
		growth = 1.6
	}
	if maxSteps <= 0 {
		maxSteps = 6
	}
	out := &SatReport{}
	qps := spec.BaseQPS
	for step := 0; step < maxSteps; step++ {
		s := spec
		s.BaseQPS = qps
		s.Seed = spec.Seed + int64(step)
		rep, err := RunLoad(client, baseURL, s)
		if err != nil {
			return out, err
		}
		out.Steps = append(out.Steps, *rep)
		single := rep.Paths["single"]
		broke := rep.Errors > 0 || rep.Shed > 0 || rep.Deadline > 0 || rep.Unavailable > 0 ||
			(sloP99 > 0 && single.Requests > 0 && single.P99Ms > ms(sloP99)) ||
			rep.AchievedQPS < 0.9*rep.OfferedQPS
		if broke {
			out.Saturated = true
			return out, nil
		}
		out.SaturationQPS = rep.AchievedQPS
		qps *= growth
	}
	return out, nil
}

// fetchFeatures learns each served artifact's inline-series feature
// set: the union of its groups' selected features plus the wear
// column the router reads.
func fetchFeatures(client *http.Client, baseURL string) (map[string][]string, error) {
	resp, err := client.Get(baseURL + "/v1/models")
	if err != nil {
		return nil, fmt.Errorf("serve: loadgen models probe: %w", err)
	}
	defer resp.Body.Close()
	var models []ModelInfo
	if err := json.NewDecoder(resp.Body).Decode(&models); err != nil {
		return nil, fmt.Errorf("serve: loadgen models probe: %w", err)
	}
	out := make(map[string][]string, len(models))
	for _, m := range models {
		seen := map[string]bool{"MWI_N": true}
		names := []string{"MWI_N"}
		for _, g := range m.Groups {
			for _, f := range g.Features {
				if !seen[f] {
					seen[f] = true
					names = append(names, f)
				}
			}
		}
		sort.Strings(names)
		out[m.Name] = names
	}
	return out, nil
}

func pct(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/faults"
)

// breaker_test.go covers the state-machine edges the chaos suite's
// happy-path walk does not: probe release on verdict-free exits,
// stale successes while open, and the HTTP paths that must never
// consume or resolve the half-open probe slot.

func tripBreaker(b *breaker) {
	for i := 0; i < b.cfg.threshold; i++ {
		b.failure()
	}
}

// TestBreakerReleaseHandsBackProbe: a half-open probe that exits with
// no store verdict releases the slot, and the next caller probes
// immediately — the breaker cannot wedge half-open forever.
func TestBreakerReleaseHandsBackProbe(t *testing.T) {
	b := newBreaker(breakerConfig{threshold: 2, cooldown: time.Millisecond, seed: 1})
	tripBreaker(b)
	if st, trips := b.snapshot(); st != breakerOpen || trips != 1 {
		t.Fatalf("after %d failures: %v, trips %d; want open, 1", b.cfg.threshold, st, trips)
	}
	time.Sleep(3 * time.Millisecond) // past cooldown + ≤20% jitter
	if !b.allow() {
		t.Fatal("cooldown elapsed but probe refused")
	}
	b.release() // probe exits without store contact
	if st, trips := b.snapshot(); st != breakerOpen || trips != 1 {
		t.Fatalf("after release: %v, trips %d; want open (not a new trip), 1", st, trips)
	}
	if !b.allow() {
		t.Fatal("released probe slot not immediately re-available")
	}
	b.success()
	if st, _ := b.snapshot(); st != breakerClosed {
		t.Fatal("clean probe after release did not close the breaker")
	}
}

// TestBreakerReleaseOutsideHalfOpenIsNoop: release never disturbs a
// closed breaker's streak or lets callers through an open one early.
func TestBreakerReleaseOutsideHalfOpenIsNoop(t *testing.T) {
	b := newBreaker(breakerConfig{threshold: 2, cooldown: time.Hour, seed: 1})
	b.failure() // streak 1 of 2
	b.release()
	if st, _ := b.snapshot(); st != breakerClosed {
		t.Fatalf("release while closed: %v; want closed", st)
	}
	b.failure() // completes the streak only if release left it intact
	if st, _ := b.snapshot(); st != breakerOpen {
		t.Fatal("release while closed reset the failure streak")
	}
	b.release()
	if b.allow() {
		t.Fatal("release while open granted a probe before the cooldown")
	}
}

// TestBreakerStaleSuccessWhileOpenIgnored: a slow store call admitted
// before the trip that completes successfully mid-cooldown must not
// close the breaker and bypass the single-probe discipline.
func TestBreakerStaleSuccessWhileOpenIgnored(t *testing.T) {
	b := newBreaker(breakerConfig{threshold: 2, cooldown: time.Hour, seed: 1})
	tripBreaker(b)
	b.success() // straggler lands while open
	if st, _ := b.snapshot(); st != breakerOpen {
		t.Fatalf("stale success closed an open breaker mid-cooldown: %v", st)
	}
	if b.allow() {
		t.Fatal("stale success made the open breaker admit before cooldown")
	}
}

// TestBreakerClientErrorsDoNotConsumeProbe: with the breaker's
// cooldown spent, client errors on breaker-guarded paths — an
// unknown-drive 404, a fleet request for an out-of-range day — must
// neither consume the half-open probe slot (wedging every later
// store-backed request) nor resolve it (closing the breaker with no
// store contact). The first real store-backed request is the probe.
func TestBreakerClientErrorsDoNotConsumeProbe(t *testing.T) {
	s, _, st := newTestServer(t, Options{
		BreakerThreshold: 1,
		BreakerCooldown:  10 * time.Millisecond,
		BreakerSeed:      1,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, snapA, _ := testFleet(t)
	day := snapA.TrainedThrough + 3
	driveID := anyDriveID(t, st, day)

	faults.ArmOp(SiteStoreSeries, faults.OpFailEveryN(1))
	t.Cleanup(disarmAll)
	if code, body := postJSON(t, ts.Client(), ts.URL+"/v1/score",
		ScoreRequest{Model: "serving", DriveID: &driveID, Day: &day}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("faulted fetch: HTTP %d: %s", code, body)
	}
	if st := s.Stats(); st.BreakerState != "open" {
		t.Fatalf("breaker %q after trip; want open", st.BreakerState)
	}
	disarmAll()
	time.Sleep(15 * time.Millisecond) // cooldown + ≤20% jitter elapses

	// Unknown drive: 404, and the probe slot stays available.
	unknown := 1 << 30
	if code, body := postJSON(t, ts.Client(), ts.URL+"/v1/score",
		ScoreRequest{Model: "serving", DriveID: &unknown, Day: &day}, nil); code != http.StatusNotFound {
		t.Fatalf("unknown drive past cooldown: HTTP %d: %s", code, body)
	}
	// Fleet with a bad day: 400, and the breaker is neither consumed
	// nor closed by the old success-on-client-error path.
	if code, body := postJSON(t, ts.Client(), ts.URL+"/v1/score/fleet",
		FleetRequest{Model: "serving", Day: -1}, nil); code != http.StatusBadRequest {
		t.Fatalf("fleet bad day past cooldown: HTTP %d: %s", code, body)
	}
	if st := s.Stats(); st.BreakerState != "open" {
		t.Fatalf("breaker %q after client errors; want still open", st.BreakerState)
	}

	// The first store-backed request is the probe and closes it.
	var ok ScoreResponse
	if code, body := postJSON(t, ts.Client(), ts.URL+"/v1/score",
		ScoreRequest{Model: "serving", DriveID: &driveID, Day: &day}, &ok); code != http.StatusOK {
		t.Fatalf("probe after client errors: HTTP %d: %s", code, body)
	}
	if st := s.Stats(); st.BreakerState != "closed" {
		t.Errorf("breaker %q after clean probe; want closed", st.BreakerState)
	}
}

// TestBreakerDeadlineExpiryNotAFailure: client deadlines blowing on a
// hung fetch are the client's impatience, not store health — however
// many land, the breaker must stay closed, and one of them holding
// the half-open probe slot must hand it back.
func TestBreakerDeadlineExpiryNotAFailure(t *testing.T) {
	s, _, st := newTestServer(t, Options{
		DefaultDeadline:  10 * time.Second,
		BreakerThreshold: 3,
		BreakerCooldown:  10 * time.Millisecond,
		BreakerSeed:      1,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, snapA, _ := testFleet(t)
	day := snapA.TrainedThrough + 3
	driveID := anyDriveID(t, st, day)
	reqBody, err := json.Marshal(ScoreRequest{Model: "serving", DriveID: &driveID, Day: &day})
	if err != nil {
		t.Fatal(err)
	}
	deadlined := func() (int, string) {
		t.Helper()
		req, err := http.NewRequest("POST", ts.URL+"/v1/score", strings.NewReader(string(reqBody)))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Deadline-Ms", "30")
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var e struct {
			Code string `json:"code"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, e.Code
	}

	faults.ArmOp(SiteStoreSeries, faults.OpHang(nil))
	t.Cleanup(disarmAll)

	// Twice the threshold in blown deadlines: every one a 503
	// deadline_exceeded, none a breaker failure.
	for i := 0; i < 6; i++ {
		if code, kind := deadlined(); code != http.StatusServiceUnavailable || kind != "deadline_exceeded" {
			t.Fatalf("hung fetch %d: HTTP %d code %q", i, code, kind)
		}
	}
	if st := s.Stats(); st.BreakerState != "closed" || st.BreakerTrips != 0 {
		t.Fatalf("blown client deadlines tripped the breaker: %q, trips %d", st.BreakerState, st.BreakerTrips)
	}

	// Now trip it for real, wait out the cooldown, and let a blown
	// deadline take the probe slot: it must hand the slot back so the
	// next request probes immediately.
	faults.ArmOp(SiteStoreSeries, faults.OpFailEveryN(1))
	for i := 0; i < 3; i++ {
		postJSON(t, ts.Client(), ts.URL+"/v1/score",
			ScoreRequest{Model: "serving", DriveID: &driveID, Day: &day}, nil)
	}
	if st := s.Stats(); st.BreakerState != "open" {
		t.Fatalf("breaker %q after real failures; want open", st.BreakerState)
	}
	faults.ArmOp(SiteStoreSeries, faults.OpHang(nil))
	time.Sleep(15 * time.Millisecond)
	if code, kind := deadlined(); code != http.StatusServiceUnavailable || kind != "deadline_exceeded" {
		t.Fatalf("hung probe: HTTP %d code %q", code, kind)
	}
	disarmAll()
	var ok ScoreResponse
	if code, body := postJSON(t, ts.Client(), ts.URL+"/v1/score",
		ScoreRequest{Model: "serving", DriveID: &driveID, Day: &day}, &ok); code != http.StatusOK {
		t.Fatalf("probe after released slot: HTTP %d: %s", code, body)
	}
	if st := s.Stats(); st.BreakerState != "closed" {
		t.Errorf("breaker %q after clean probe; want closed", st.BreakerState)
	}
}

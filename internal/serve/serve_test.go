package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/store"
)

func postJSON(t *testing.T, client *http.Client, url string, body any, out any) (int, string) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(buf.Bytes(), out); err != nil {
			t.Fatalf("decode %s response %q: %v", url, buf.String(), err)
		}
	}
	return resp.StatusCode, buf.String()
}

// TestServeParity is the end-to-end bit-identity check: scoring a
// drive-day over HTTP — through featurization, group routing, and
// the micro-batching coalescer — must produce exactly the probability
// the offline engine pass assigns that drive-day, for both the
// store-backed and inline-series request forms.
func TestServeParity(t *testing.T) {
	s, _, st := newTestServer(t, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, snapA, _ := testFleet(t)
	scorer, err := engine.NewScorer(snapA, 0)
	if err != nil {
		t.Fatal(err)
	}
	day := snapA.TrainedThrough + 3
	offline, err := scorer.Score(st.Snapshot(), day, day)
	if err != nil {
		t.Fatal(err)
	}
	if len(offline) == 0 {
		t.Fatal("offline pass scored no drives")
	}

	snap := st.Snapshot()
	refs := snap.RefIndex(testModel)
	checked := 0
	for _, o := range offline {
		if checked >= 25 {
			break
		}
		id := o.Pred.DriveID

		var got ScoreResponse
		code, body := postJSON(t, ts.Client(), ts.URL+"/v1/score",
			ScoreRequest{Model: "serving", DriveID: &id, Day: &day}, &got)
		if code != http.StatusOK {
			t.Fatalf("drive %d: HTTP %d: %s", id, code, body)
		}
		if got.Prob != o.MaxProb {
			t.Errorf("drive %d: online prob %v != offline %v", id, got.Prob, o.MaxProb)
		}
		if got.Alarm != (o.Pred.FirstAlarmDay >= 0) {
			t.Errorf("drive %d: online alarm %v != offline %v", id, got.Alarm, o.Pred.FirstAlarmDay >= 0)
		}
		if got.Version != 1 || got.ConfigHash != snapA.ConfigHash {
			t.Errorf("drive %d: response identity (v%d, %s), want (v1, %s)", id, got.Version, got.ConfigHash, snapA.ConfigHash)
		}

		// Same drive-day as an inline upload: slice the store series to
		// end at the scored day; generated window statistics then see
		// the same trailing history and must match bit for bit.
		cols, _, err := snap.Series(refs[id])
		if err != nil {
			t.Fatal(err)
		}
		inline := make(map[string][]float64, len(cols))
		for ft, col := range cols {
			inline[ft.String()] = col[:day+1]
		}
		req := ScoreRequest{Model: "serving", Series: inline}
		if data, err := json.Marshal(req); err != nil || !json.Valid(data) {
			continue // series contains NaN; not expressible as JSON
		}
		var in ScoreResponse
		code, body = postJSON(t, ts.Client(), ts.URL+"/v1/score", req, &in)
		if code != http.StatusOK {
			t.Fatalf("drive %d inline: HTTP %d: %s", id, code, body)
		}
		if in.Prob != o.MaxProb {
			t.Errorf("drive %d: inline prob %v != offline %v", id, in.Prob, o.MaxProb)
		}
		checked++
	}
	if checked < 10 {
		t.Fatalf("only %d drives checked end to end", checked)
	}
	if st := s.Stats(); st.Coalesced == 0 {
		t.Error("no rows went through the coalescer")
	}
}

// TestServeBatchParity: the kernel-direct batch path must agree with
// both the coalesced single path and the offline engine.
func TestServeBatchParity(t *testing.T) {
	s, _, st := newTestServer(t, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, snapA, _ := testFleet(t)
	scorer, err := engine.NewScorer(snapA, 0)
	if err != nil {
		t.Fatal(err)
	}
	day := snapA.TrainedThrough + 5
	offline, err := scorer.Score(st.Snapshot(), day, day)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]float64{}
	req := BatchRequest{Model: "serving"}
	for i, o := range offline {
		if i >= 200 {
			break
		}
		id := o.Pred.DriveID
		d := day
		req.Drives = append(req.Drives, BatchDrive{DriveID: &id, Day: &d})
		want[id] = o.MaxProb
	}
	var resp BatchResponse
	code, body := postJSON(t, ts.Client(), ts.URL+"/v1/score/batch", req, &resp)
	if code != http.StatusOK {
		t.Fatalf("HTTP %d: %s", code, body)
	}
	if len(resp.Results) != len(req.Drives) {
		t.Fatalf("%d results for %d drives", len(resp.Results), len(req.Drives))
	}
	for i, r := range resp.Results {
		if r.DriveID != *req.Drives[i].DriveID {
			t.Fatalf("result %d is for drive %d, want %d (order must be preserved)", i, r.DriveID, *req.Drives[i].DriveID)
		}
		if r.Prob != want[r.DriveID] {
			t.Errorf("drive %d: batch prob %v != offline %v", r.DriveID, r.Prob, want[r.DriveID])
		}
	}
}

// TestServeFleet: the whole-store path agrees with the offline engine
// pass in aggregate.
func TestServeFleet(t *testing.T) {
	s, _, st := newTestServer(t, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, snapA, _ := testFleet(t)
	scorer, err := engine.NewScorer(snapA, 0)
	if err != nil {
		t.Fatal(err)
	}
	day := snapA.TrainedThrough + 1
	offline, err := scorer.Score(st.Snapshot(), day, day)
	if err != nil {
		t.Fatal(err)
	}
	alarms := 0
	for _, o := range offline {
		if o.Pred.FirstAlarmDay >= 0 {
			alarms++
		}
	}
	for pass := 0; pass < 3; pass++ { // repeated passes exercise ScoreBuf reuse
		var resp FleetResponse
		code, body := postJSON(t, ts.Client(), ts.URL+"/v1/score/fleet",
			FleetRequest{Model: "serving", Day: day}, &resp)
		if code != http.StatusOK {
			t.Fatalf("HTTP %d: %s", code, body)
		}
		if resp.Drives != len(offline) || resp.Alarms != alarms {
			t.Fatalf("fleet pass %d: %d drives / %d alarms, offline %d / %d",
				pass, resp.Drives, resp.Alarms, len(offline), alarms)
		}
	}
}

// TestServeIngest: admission advances the store horizon and newly
// visible days become scoreable; days beyond the horizon are not.
func TestServeIngest(t *testing.T) {
	src, snapA, _ := testFleet(t)
	reg := newRegistryWith(t, snapA)
	st := store.Open(src, store.Options{})
	s, err := New(Options{Registry: reg, Artifacts: []string{"serving"}, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	day := snapA.TrainedThrough
	// Beyond-horizon fleet scoring fails before ingest...
	code, _ := postJSON(t, ts.Client(), ts.URL+"/v1/score/fleet", FleetRequest{Model: "serving", Day: day}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("pre-ingest fleet score: HTTP %d, want 400", code)
	}
	var ing IngestResponse
	code, body := postJSON(t, ts.Client(), ts.URL+"/v1/ingest", IngestRequest{Day: day}, &ing)
	if code != http.StatusOK {
		t.Fatalf("ingest: HTTP %d: %s", code, body)
	}
	if ing.Horizon != day+1 {
		t.Fatalf("horizon %d after ingesting day %d", ing.Horizon, day)
	}
	// ...and succeeds after.
	var fr FleetResponse
	code, body = postJSON(t, ts.Client(), ts.URL+"/v1/score/fleet", FleetRequest{Model: "serving", Day: day}, &fr)
	if code != http.StatusOK {
		t.Fatalf("post-ingest fleet score: HTTP %d: %s", code, body)
	}
	if fr.Drives == 0 {
		t.Fatal("no drives visible after ingest")
	}
	// Re-admitting an older day is a no-op, not a retreat.
	code, _ = postJSON(t, ts.Client(), ts.URL+"/v1/ingest", IngestRequest{Day: day - 10}, &ing)
	if code != http.StatusOK || ing.Horizon != day+1 {
		t.Fatalf("re-ingest: HTTP %d horizon %d", code, ing.Horizon)
	}
}

func newRegistryWith(t *testing.T, snap *engine.ModelSnapshot) *core.Registry {
	t.Helper()
	reg := &core.Registry{Dir: t.TempDir()}
	if _, err := engine.SaveSnapshot(reg, "serving", snap); err != nil {
		t.Fatal(err)
	}
	return reg
}

// TestServeScorerScoreIntoParity pins the satellite reuse path at the
// engine level: ScoreInto with a warm buffer returns bit-identical
// outcomes to Score, and repeated passes stop allocating
// fleet-proportional state.
func TestServeScorerScoreIntoParity(t *testing.T) {
	_, snapA, _ := testFleet(t)
	s, _, st := newTestServer(t, Options{})
	defer s.Close()
	scorer, err := engine.NewScorer(snapA, 1)
	if err != nil {
		t.Fatal(err)
	}
	snap := st.Snapshot()
	day := snapA.TrainedThrough + 2
	plain, err := scorer.Score(snap, day, day)
	if err != nil {
		t.Fatal(err)
	}
	var buf engine.ScoreBuf
	for pass := 0; pass < 3; pass++ {
		got, err := scorer.ScoreInto(snap, day, day, &buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(plain) {
			t.Fatalf("pass %d: %d outcomes, want %d", pass, len(got), len(plain))
		}
		for i := range got {
			if got[i] != plain[i] {
				t.Fatalf("pass %d outcome %d: %+v != %+v", pass, i, got[i], plain[i])
			}
		}
	}
}

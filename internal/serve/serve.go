// Package serve is the online prediction service over the snapshot
// registry: a long-running daemon that decodes ModelSnapshots once,
// answers per-drive and batch scoring requests over HTTP/JSON, admits
// new fleet days into the store, and hot-swaps to newly promoted
// snapshot versions atomically with zero dropped requests.
//
// The performance core is a per-(artifact, wear-group) micro-batching
// coalescer: single-drive requests are queued and flushed — on a
// size or age trigger — through the compiled flat kernel in one
// column-major batch, so the steady-state per-request hot path
// performs no allocations. Batch and fleet requests bypass the
// coalescer straight into the kernel.
//
// Hot swap: each artifact's active snapshot lives behind one atomic
// pointer. A reload builds the new serving state (snapshot decode,
// scorer, coalescers) off to the side, swaps the pointer, and only
// then retires the old state by draining its coalescers. Requests
// that captured the old pointer finish on the old snapshot and echo
// its (version, config-hash); requests that lose the race to a
// retired coalescer transparently re-resolve the pointer and score on
// the new one. No request is dropped or mis-versioned by a swap.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/featgen"
	"repro/internal/smart"
	"repro/internal/store"
)

// Defaults for Options fields left zero.
const (
	DefaultMaxBatch        = 256
	DefaultMaxDelay        = 500 * time.Microsecond
	DefaultMaxBatchRequest = 4096
	DefaultMaxBodyBytes    = 8 << 20
	DefaultMaxSeriesDays   = 4096

	DefaultMaxInflightSingle = 256
	DefaultMaxInflightBatch  = 16
	DefaultMaxInflightFleet  = 2
	DefaultMaxInflightIngest = 1
	DefaultDeadline          = 2 * time.Second
	DefaultMaxDeadline       = 30 * time.Second
	DefaultBreakerThreshold  = 5
	DefaultBreakerCooldown   = 2 * time.Second
	DefaultSmallBodyBytes    = 4096
)

// Chaos-harness injection sites on the serving request path. Tests
// arm them via faults.ArmOp; in production they compile down to one
// atomic load each.
var (
	// SiteStoreSeries fires before every store-backed series fetch —
	// arming it simulates a flaky or hung store without touching the
	// store's cache state.
	SiteStoreSeries = faults.RegisterOpSite("serve-store-series")
	// SiteRegistryLoad fires before a reload decodes a new snapshot
	// version — arming it simulates registry corruption or an
	// unreadable artifact mid-watch.
	SiteRegistryLoad = faults.RegisterOpSite("serve-registry-load")
	// SiteSlowWrite fires after admission, before the handler runs —
	// arming it with a delay simulates slow request consumers holding
	// their admission slots.
	SiteSlowWrite = faults.RegisterOpSite("serve-slow-write")
)

// swapAttempts bounds how many times a request re-resolves the active
// snapshot after losing a race to a hot swap before giving up with
// 503. Each attempt only fails if another swap landed during it, so
// more than two in a row means the registry is churning faster than
// requests complete.
const swapAttempts = 8

// Options configures a Server.
type Options struct {
	// Registry is the snapshot registry to serve from (required).
	Registry *core.Registry
	// Artifacts are the registry artifact names to load and serve;
	// each must have at least one saved version (required).
	Artifacts []string
	// Store, when non-nil, enables store-backed scoring (requests that
	// name a drive instead of inlining its series), the fleet scoring
	// endpoint, and ingest admission.
	Store *store.Store
	// MaxBatch is the coalescer's flush size in rows (default 256).
	MaxBatch int
	// MaxDelay is the coalescer's flush age: the longest a queued
	// request waits for co-travelers (default 500µs).
	MaxDelay time.Duration
	// Workers bounds fleet-scoring parallelism (0 = GOMAXPROCS).
	Workers int
	// MaxBatchRequest caps the number of drives in one batch request
	// (default 4096); larger requests get 413.
	MaxBatchRequest int
	// MaxBodyBytes caps a request body (default 8 MiB).
	MaxBodyBytes int64
	// MaxSeriesDays caps the length of an inline series (default
	// 4096); longer uploads get 413.
	MaxSeriesDays int

	// MaxInflightSingle caps concurrent single-drive scoring requests
	// (default 256). Each path's wait queue holds 4× its cap; beyond
	// that, requests are shed with 429.
	MaxInflightSingle int
	// MaxInflightBatch caps concurrent batch requests (default 16).
	MaxInflightBatch int
	// MaxInflightFleet caps concurrent fleet passes (default 2).
	MaxInflightFleet int
	// MaxInflightIngest caps concurrent ingest admissions (default 1:
	// the store serializes appends anyway).
	MaxInflightIngest int

	// DefaultDeadline is the per-request deadline applied when the
	// client sends no X-Deadline-Ms header (default 2s).
	DefaultDeadline time.Duration
	// MaxDeadline caps a client-requested deadline (default 30s).
	MaxDeadline time.Duration

	// BreakerThreshold is the consecutive store-failure count that
	// trips the store circuit breaker (default 5).
	BreakerThreshold int
	// BreakerCooldown is the breaker's base open interval before a
	// half-open probe (default 2s).
	BreakerCooldown time.Duration
	// BreakerSeed seeds the breaker's deterministic cooldown jitter.
	BreakerSeed int64

	// DegradedOK makes /readyz report 200 even while degraded
	// (breaker open or registry stale) — for fleets that prefer a
	// brownout replica in rotation over losing capacity.
	DegradedOK bool

	// MaxSmallBodyBytes caps bodies on the fixed-shape POST endpoints
	// (/v1/score/fleet, /v1/ingest), whose valid payloads are tens of
	// bytes (default 4096). Score and batch bodies carry inline series
	// and use MaxBodyBytes.
	MaxSmallBodyBytes int64
}

func (o Options) withDefaults() Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = DefaultMaxBatch
	}
	if o.MaxDelay <= 0 {
		o.MaxDelay = DefaultMaxDelay
	}
	if o.MaxBatchRequest <= 0 {
		o.MaxBatchRequest = DefaultMaxBatchRequest
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if o.MaxSeriesDays <= 0 {
		o.MaxSeriesDays = DefaultMaxSeriesDays
	}
	if o.MaxInflightSingle <= 0 {
		o.MaxInflightSingle = DefaultMaxInflightSingle
	}
	if o.MaxInflightBatch <= 0 {
		o.MaxInflightBatch = DefaultMaxInflightBatch
	}
	if o.MaxInflightFleet <= 0 {
		o.MaxInflightFleet = DefaultMaxInflightFleet
	}
	if o.MaxInflightIngest <= 0 {
		o.MaxInflightIngest = DefaultMaxInflightIngest
	}
	if o.DefaultDeadline <= 0 {
		o.DefaultDeadline = DefaultDeadline
	}
	if o.MaxDeadline <= 0 {
		o.MaxDeadline = DefaultMaxDeadline
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = DefaultBreakerThreshold
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = DefaultBreakerCooldown
	}
	if o.MaxSmallBodyBytes <= 0 {
		o.MaxSmallBodyBytes = DefaultSmallBodyBytes
	}
	return o
}

// Stats is a snapshot of the server's request counters.
type Stats struct {
	Requests    int64 `json:"requests"`     // scoring requests answered (all paths)
	Errors      int64 `json:"errors"`       // requests answered with an error status
	Coalesced   int64 `json:"coalesced"`    // rows scored through the coalescers
	Flushes     int64 `json:"flushes"`      // coalescer batches flushed
	SizeFlushes int64 `json:"size_flushes"` // flushes triggered by a full batch
	AgeFlushes  int64 `json:"age_flushes"`  // flushes triggered by the age timer
	Swaps       int64 `json:"swaps"`        // snapshot hot swaps performed
	SwapRetries int64 `json:"swap_retries"` // requests that re-resolved after losing to a swap
	Ingests     int64 `json:"ingests"`      // ingest admissions accepted

	Accepted         int64  `json:"accepted"`          // requests admitted past the gates
	Shed             int64  `json:"shed"`              // requests rejected 429 by a full admission queue
	DeadlineExceeded int64  `json:"deadline_exceeded"` // requests that ran out of deadline (503)
	Degraded         int64  `json:"degraded"`          // responses served degraded (breaker open)
	BreakerTrips     int64  `json:"breaker_trips"`     // store circuit-breaker open transitions
	BreakerState     string `json:"breaker_state"`     // "closed", "open", or "half-open"
	ReloadFailures   int64  `json:"reload_failures"`   // consecutive registry reload failures
}

// Server is the online prediction service. Create with New, expose
// with Handler, and stop with Close.
type Server struct {
	opts  Options
	names []string // sorted artifact names
	arts  map[string]*artifact

	reloadMu sync.Mutex // serializes Reload (swap + retire ordering)

	requests    atomic.Int64
	errors      atomic.Int64
	coalesced   atomic.Int64
	flushes     atomic.Int64
	sizeFlushes atomic.Int64
	ageFlushes  atomic.Int64
	swaps       atomic.Int64
	swapRetries atomic.Int64
	ingests     atomic.Int64

	accepted         atomic.Int64
	shed             atomic.Int64
	deadlineExceeded atomic.Int64
	degraded         atomic.Int64

	gates [numPathClasses]*gate
	brk   *breaker

	// reloadFails counts consecutive Reload failures (reset on any
	// success); lastReloadErr keeps the most recent failure's message
	// for /readyz. Together they surface registry staleness: the
	// daemon keeps serving the last good snapshots while the watcher
	// retries.
	reloadFails   atomic.Int64
	lastReloadErr atomic.Pointer[string]

	watchStop chan struct{}
	watchDone chan struct{}
	closeOnce sync.Once
}

// artifact is one served registry artifact; cur is the active
// serving state, swapped atomically on reload.
type artifact struct {
	name string
	cur  atomic.Pointer[serving]
}

// serving is the immutable runtime state of one loaded snapshot
// version: the decoded scorer plus one coalescer per wear group. It
// is replaced wholesale on hot swap, never mutated.
type serving struct {
	name      string
	version   int
	hash      string
	model     smart.ModelID
	snap      *engine.ModelSnapshot
	scorer    *engine.Scorer
	windows   []int
	maxWindow int
	groups    []*groupRT

	// fleetBuf recycles the fleet-endpoint scoring scratch; fleetMu
	// serializes its use (fleet scoring is a whole-pass operation, so
	// serializing it per snapshot version costs nothing).
	fleetMu  sync.Mutex
	fleetBuf engine.ScoreBuf
}

// groupRT is one wear group's serving state.
type groupRT struct {
	index     int
	feats     []smart.Feature
	nGen      int // generated stats per original feature
	width     int // model-input columns
	threshold float64
	co        *coalescer
}

// New loads the latest version of every configured artifact and
// returns a ready server. The daemon owns the registry handle; the
// store, when provided, may be shared with an ingest pipeline.
func New(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	if opts.Registry == nil {
		return nil, errors.New("serve: Options.Registry is required")
	}
	if len(opts.Artifacts) == 0 {
		return nil, errors.New("serve: Options.Artifacts is empty")
	}
	s := &Server{opts: opts, arts: make(map[string]*artifact)}
	caps := [numPathClasses]int{
		pathSingle: opts.MaxInflightSingle,
		pathBatch:  opts.MaxInflightBatch,
		pathFleet:  opts.MaxInflightFleet,
		pathIngest: opts.MaxInflightIngest,
	}
	for pc, capacity := range caps {
		s.gates[pc] = newGate(capacity, 4*capacity)
	}
	s.brk = newBreaker(breakerConfig{
		threshold: opts.BreakerThreshold,
		cooldown:  opts.BreakerCooldown,
		seed:      opts.BreakerSeed,
	})
	for _, name := range opts.Artifacts {
		if _, dup := s.arts[name]; dup {
			return nil, fmt.Errorf("serve: duplicate artifact %q", name)
		}
		version, err := opts.Registry.LatestVersion(name)
		if err != nil {
			return nil, fmt.Errorf("serve: artifact %q: %w", name, err)
		}
		sv, err := s.newServing(name, version)
		if err != nil {
			return nil, err
		}
		art := &artifact{name: name}
		art.cur.Store(sv)
		s.arts[name] = art
		s.names = append(s.names, name)
	}
	sort.Strings(s.names)
	return s, nil
}

// newServing loads and decodes one snapshot version into runtime
// serving state with fresh coalescers.
func (s *Server) newServing(name string, version int) (*serving, error) {
	if err := faults.Op(context.Background(), SiteRegistryLoad); err != nil {
		return nil, fmt.Errorf("serve: artifact %q v%d: %w", name, version, err)
	}
	snap, err := engine.LoadSnapshot(s.opts.Registry, name, version)
	if err != nil {
		return nil, fmt.Errorf("serve: artifact %q v%d: %w", name, version, err)
	}
	scorer, err := engine.NewScorer(snap, s.opts.Workers)
	if err != nil {
		return nil, fmt.Errorf("serve: artifact %q v%d: %w", name, version, err)
	}
	sv := &serving{
		name:      name,
		version:   version,
		hash:      snap.ConfigHash,
		model:     snap.Model,
		snap:      snap,
		scorer:    scorer,
		windows:   scorer.Windows(),
		maxWindow: scorer.MaxWindow(),
	}
	nGen := featgen.NumGenerated(sv.windows)
	for g := 0; g < scorer.NumGroups(); g++ {
		rt := &groupRT{
			index:     g,
			feats:     scorer.GroupFeatures(g),
			nGen:      nGen,
			width:     scorer.GroupInputWidth(g),
			threshold: scorer.GroupThreshold(g),
		}
		gi := g
		rt.co = newCoalescer(coalescerConfig{
			nCols:   rt.width,
			maxRows: s.opts.MaxBatch,
			maxAge:  s.opts.MaxDelay,
			score: func(cols [][]float64, out []float64) error {
				return scorer.ScoreBatch(gi, cols, out)
			},
			onFlush: func(rows int, trigger flushTrigger) {
				s.coalesced.Add(int64(rows))
				s.flushes.Add(1)
				switch trigger {
				case flushSize:
					s.sizeFlushes.Add(1)
				case flushAge:
					s.ageFlushes.Add(1)
				}
			},
		})
		sv.groups = append(sv.groups, rt)
	}
	return sv, nil
}

// retire drains the serving state's coalescers: queued rows are
// flushed and scored (on the old snapshot — they captured it before
// the swap), and later submitters get errRetired, which sends them
// back to re-resolve the artifact pointer.
func (sv *serving) retire() {
	for _, g := range sv.groups {
		g.co.Close()
	}
}

// Reload checks every artifact for a newer registry version and
// atomically swaps any that advanced. It returns the names of the
// artifacts that were swapped. Safe to call concurrently with
// request traffic; concurrent Reloads serialize.
//
// A failed reload never disturbs the active serving state: the last
// good snapshots keep answering traffic, the consecutive-failure
// count and last error surface through Stats and /readyz, and the
// next successful reload clears both.
func (s *Server) Reload() ([]string, error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	swapped, err := s.reloadLocked()
	if err != nil {
		msg := err.Error()
		s.reloadFails.Add(1)
		s.lastReloadErr.Store(&msg)
	} else {
		s.reloadFails.Store(0)
		s.lastReloadErr.Store(nil)
	}
	return swapped, err
}

func (s *Server) reloadLocked() ([]string, error) {
	var swapped []string
	for _, name := range s.names {
		art := s.arts[name]
		version, err := s.opts.Registry.LatestVersion(name)
		if err != nil {
			return swapped, fmt.Errorf("serve: reload %q: %w", name, err)
		}
		cur := art.cur.Load()
		if cur != nil && cur.version == version {
			continue
		}
		sv, err := s.newServing(name, version)
		if err != nil {
			return swapped, err
		}
		old := art.cur.Swap(sv)
		s.swaps.Add(1)
		swapped = append(swapped, name)
		if old != nil {
			old.retire()
		}
	}
	return swapped, nil
}

// Watch polls the registry for new versions every interval until
// Close, hot-swapping as they appear — this is how controller
// promotions go live without a restart. Reload errors are reported
// through onErr (which may be nil) and do not stop the watcher.
func (s *Server) Watch(interval time.Duration, onErr func(error)) {
	if s.watchStop != nil {
		return
	}
	s.watchStop = make(chan struct{})
	s.watchDone = make(chan struct{})
	go func() {
		defer close(s.watchDone)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-s.watchStop:
				return
			case <-t.C:
				if _, err := s.Reload(); err != nil && onErr != nil {
					onErr(err)
				}
			}
		}
	}()
}

// Close stops the watcher and drains every coalescer. In-flight
// requests finish; new Submits fail. Idempotent.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		if s.watchStop != nil {
			close(s.watchStop)
			<-s.watchDone
		}
		for _, name := range s.names {
			if sv := s.arts[name].cur.Load(); sv != nil {
				sv.retire()
			}
		}
	})
}

// Stats returns a snapshot of the server's counters.
func (s *Server) Stats() Stats {
	state, trips := s.brk.snapshot()
	return Stats{
		Requests:    s.requests.Load(),
		Errors:      s.errors.Load(),
		Coalesced:   s.coalesced.Load(),
		Flushes:     s.flushes.Load(),
		SizeFlushes: s.sizeFlushes.Load(),
		AgeFlushes:  s.ageFlushes.Load(),
		Swaps:       s.swaps.Load(),
		SwapRetries: s.swapRetries.Load(),
		Ingests:     s.ingests.Load(),

		Accepted:         s.accepted.Load(),
		Shed:             s.shed.Load(),
		DeadlineExceeded: s.deadlineExceeded.Load(),
		Degraded:         s.degraded.Load(),
		BreakerTrips:     trips,
		BreakerState:     state.String(),
		ReloadFailures:   s.reloadFails.Load(),
	}
}

// registryStale reports whether the most recent reload attempt failed
// — the served snapshots may lag the registry until the watcher's
// next successful pass.
func (s *Server) registryStale() bool { return s.reloadFails.Load() > 0 }

// degradedNow reports whether the server is in a brownout: store
// breaker not closed, or serving stale snapshots past a failed
// reload.
func (s *Server) degradedNow() bool {
	state, _ := s.brk.snapshot()
	return state != breakerClosed || s.registryStale()
}

// artifactByName resolves a request's model name.
func (s *Server) artifactByName(name string) (*artifact, bool) {
	art, ok := s.arts[name]
	return art, ok
}

package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
)

// TestHotSwapZeroDrop is the hot-swap correctness hammer: request
// goroutines pound the single-drive path while a saver loop publishes
// new registry versions (alternating two snapshots with distinct
// config hashes) and reloads the server. Every response must succeed
// and must carry a (version, config-hash) pair that the registry held
// at score time — no dropped requests, no mis-versioned responses,
// no stitched identity across a swap boundary.
func TestHotSwapZeroDrop(t *testing.T) {
	s, reg, _ := newTestServer(t, Options{
		// A small batch plus a visible age bound keeps queued rows
		// moving through swaps.
		MaxBatch: 32, MaxDelay: 200 * time.Microsecond,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, snapA, snapB := testFleet(t)

	// validHash[v] is the config hash of registry version v; guarded
	// by validMu. A version is recorded before Reload can serve it.
	validMu := sync.Mutex{}
	validHash := map[int]string{1: snapA.ConfigHash}

	const swaps = 20
	stopSaver := make(chan struct{})
	saverDone := make(chan struct{})
	go func() {
		defer close(saverDone)
		for i := 0; i < swaps; i++ {
			select {
			case <-stopSaver:
				return
			default:
			}
			snap := snapA
			if i%2 == 0 {
				snap = snapB
			}
			v, err := engine.SaveSnapshot(reg, "serving", snap)
			if err != nil {
				t.Errorf("save: %v", err)
				return
			}
			validMu.Lock()
			validHash[v] = snap.ConfigHash
			validMu.Unlock()
			if _, err := s.Reload(); err != nil {
				t.Errorf("reload: %v", err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Inline payloads over the snapshot's feature set, covering both
	// wear groups via the MWI value.
	featNames := map[string]bool{"MWI_N": true}
	for _, g := range snapA.Groups {
		for _, f := range g.Features {
			featNames[f] = true
		}
	}
	mkBody := func(rng *rand.Rand) []byte {
		series := map[string][]float64{}
		mwi := rng.Float64()
		for name := range featNames {
			col := make([]float64, 10)
			for i := range col {
				col[i] = rng.Float64()
			}
			if name == "MWI_N" {
				for i := range col {
					col[i] = mwi
				}
			}
			series[name] = col
		}
		data, err := json.Marshal(ScoreRequest{Model: "serving", Series: series})
		if err != nil {
			panic(err)
		}
		return data
	}

	const goroutines = 8
	const perG = 150
	type obs struct {
		version int
		hash    string
	}
	results := make([][]obs, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) + 100))
			bodies := make([][]byte, 8)
			for i := range bodies {
				bodies[i] = mkBody(rng)
			}
			for i := 0; i < perG; i++ {
				var resp ScoreResponse
				code, body := postJSONBytes(t, ts, bodies[i%len(bodies)], &resp)
				if code != 200 {
					t.Errorf("goroutine %d request %d: HTTP %d: %s", g, i, code, body)
					return
				}
				results[g] = append(results[g], obs{resp.Version, resp.ConfigHash})
			}
		}(g)
	}
	wg.Wait()
	close(stopSaver)
	<-saverDone

	total := 0
	validMu.Lock()
	defer validMu.Unlock()
	for g, obsList := range results {
		lastVersion := 0
		for i, o := range obsList {
			total++
			want, ok := validHash[o.version]
			if !ok {
				t.Fatalf("goroutine %d response %d: version %d was never saved", g, i, o.version)
			}
			if o.hash != want {
				t.Fatalf("goroutine %d response %d: version %d with hash %s, registry holds %s — mis-versioned response", g, i, o.version, o.hash, want)
			}
			// A goroutine's requests are sequential, and a swap
			// publishes the new serving state before retiring the old,
			// so the version each goroutine observes can only move
			// forward.
			if o.version < lastVersion {
				t.Errorf("goroutine %d response %d: version went back from %d to %d", g, i, lastVersion, o.version)
			}
			lastVersion = o.version
		}
	}
	if want := goroutines * perG; total != want {
		t.Fatalf("%d responses for %d requests — dropped %d", total, want, want-total)
	}
	if got := s.Stats().Swaps; got != swaps {
		t.Errorf("swaps performed = %d, want %d", got, swaps)
	}
}

func postJSONBytes(t *testing.T, ts *httptest.Server, body []byte, out any) (int, string) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/v1/score", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	if out != nil && resp.StatusCode == 200 {
		if err := json.Unmarshal(buf, out); err != nil {
			t.Fatalf("decode %q: %v", buf, err)
		}
	}
	return resp.StatusCode, string(buf)
}

// TestWatchPicksUpPromotion: a registry save is hot-swapped by the
// poller without any explicit reload — the PR 7 controller promotion
// path goes live unattended.
func TestWatchPicksUpPromotion(t *testing.T) {
	s, reg, _ := newTestServer(t, Options{})
	s.Watch(time.Millisecond, func(err error) { t.Errorf("watch: %v", err) })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, _, snapB := testFleet(t)
	v, err := engine.SaveSnapshot(reg, "serving", snapB)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		sv := s.arts["serving"].cur.Load()
		if sv.version == v && sv.hash == snapB.ConfigHash {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("watcher never swapped to v%d", v)
}

package serve

import (
	"math/rand"
	"sync"
	"time"
)

// breakerState is the classic three-state circuit-breaker machine
// guarding the store fetch path.
type breakerState int

const (
	breakerClosed   breakerState = iota // healthy: all requests pass
	breakerOpen                         // tripped: fast-fail until cooldown
	breakerHalfOpen                     // probing: one request through
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// breakerConfig parameterizes the store circuit breaker.
type breakerConfig struct {
	// threshold is the consecutive-failure count that trips the
	// breaker open.
	threshold int
	// cooldown is the base open interval before a half-open probe is
	// allowed; each trip waits cooldown plus deterministic jitter.
	cooldown time.Duration
	// seed drives the jitter stream, so chaos tests replay the exact
	// same open intervals run to run.
	seed int64
}

// breaker is a consecutive-failure circuit breaker with seeded
// deterministic jitter on its cooldown. Store fetch failures count
// through failure(); once threshold consecutive failures accumulate
// the breaker opens and allow() fast-fails until the cooldown
// elapses, at which point exactly one caller is admitted half-open as
// a probe — its success closes the breaker, its failure re-opens it
// for another cooldown. Jitter (up to 20% of the cooldown, drawn from
// the seeded stream) staggers probe times so that replicas tripped by
// a shared dependency don't re-probe it in lockstep.
type breaker struct {
	cfg breakerConfig

	mu    sync.Mutex
	rng   *rand.Rand
	state breakerState
	fails int       // consecutive failures while closed
	until time.Time // open until (state == breakerOpen)
	trips int64     // cumulative open transitions
}

func newBreaker(cfg breakerConfig) *breaker {
	if cfg.threshold <= 0 {
		cfg.threshold = DefaultBreakerThreshold
	}
	if cfg.cooldown <= 0 {
		cfg.cooldown = DefaultBreakerCooldown
	}
	return &breaker{cfg: cfg, rng: rand.New(rand.NewSource(cfg.seed))}
}

// allow reports whether a store call may proceed. In the open state
// it flips to half-open once the cooldown has elapsed, admitting the
// caller as the probe; concurrent callers during the probe are
// rejected until the probe resolves.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if time.Now().Before(b.until) {
			return false
		}
		b.state = breakerHalfOpen
		return true
	case breakerHalfOpen:
		return false
	}
	return false
}

// success records a healthy store call: the failure streak resets and
// a half-open probe closes the breaker. A success landing while the
// breaker is open is a straggler — a slow call admitted before the
// trip completed — and is ignored: it predates the trip, so it says
// nothing about current health, and closing on it would bypass the
// half-open single-probe discipline.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		b.fails = 0
	case breakerHalfOpen:
		b.fails = 0
		b.state = breakerClosed
	}
}

// release hands back a half-open probe slot without recording a
// health verdict. Exits that never produced a store outcome — client
// errors, cancelled contexts — must neither close the breaker (no
// success signal) nor re-open it for a full cooldown (no failure
// signal); re-entering the open state with the already-elapsed
// deadline makes the next store-backed caller the probe immediately.
// No-op in any other state.
func (b *breaker) release() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen {
		b.state = breakerOpen
	}
}

// failure records a failed store call, tripping the breaker when the
// consecutive streak reaches the threshold or a half-open probe
// fails.
func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		b.trip()
	case breakerClosed:
		b.fails++
		if b.fails >= b.cfg.threshold {
			b.trip()
		}
	}
}

// trip opens the breaker for cooldown plus jitter. Caller holds mu.
func (b *breaker) trip() {
	b.state = breakerOpen
	b.fails = 0
	b.trips++
	jitter := time.Duration(b.rng.Int63n(int64(b.cfg.cooldown)/5 + 1))
	b.until = time.Now().Add(b.cfg.cooldown + jitter)
}

// snapshot returns the current state and cumulative trip count.
func (b *breaker) snapshot() (breakerState, int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.trips
}

package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/store"
)

// chaos_test.go is the serve-layer chaos suite: overload, store
// faults, breaker brownout, and registry-watch tolerance, each
// asserting that the daemon degrades with 429/503 only, keeps
// accepted responses bit-identical to offline scoring, and returns
// to its goroutine baseline once the fault clears. Run it with -race.

// goroutineBaseline snapshots the goroutine count and returns a check
// that fails the test if the count has not returned to (near) the
// baseline within a few seconds — the stuck-goroutine detector.
func goroutineBaseline(t *testing.T) func() {
	t.Helper()
	base := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		var n int
		for {
			n = runtime.NumGoroutine()
			// Small slack: the HTTP test server's idle conns and the
			// runtime's own background goroutines jitter by a few.
			if n <= base+5 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		buf := make([]byte, 1<<16)
		t.Errorf("goroutines stuck: %d now vs %d baseline\n%s", n, base, buf[:runtime.Stack(buf, true)])
	}
}

// disarmAll disarms every op site this suite arms, always safe to
// call.
func disarmAll() {
	faults.DisarmOp(SiteStoreSeries)
	faults.DisarmOp(SiteRegistryLoad)
	faults.DisarmOp(SiteSlowWrite)
}

// readyz fetches /readyz, returning status code and decoded body.
func readyz(t *testing.T, client *http.Client, base string) (int, ReadyResponse) {
	t.Helper()
	resp, err := client.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rr ReadyResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, rr
}

// TestChaosOverloadSheds drives an open-loop load far beyond a
// deliberately tiny admission capacity with a slow-consumer delay
// injected on every accepted request, and asserts the daemon's only
// failure modes are structured 429/503: nonzero shed, nonzero
// goodput, zero transport-or-5xx-other errors, and a clean goroutine
// baseline after the storm.
func TestChaosOverloadSheds(t *testing.T) {
	checkGoroutines := goroutineBaseline(t)
	s, _, _ := newTestServer(t, Options{
		MaxInflightSingle: 2,
		DefaultDeadline:   500 * time.Millisecond,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Every admitted request holds its slot ~2ms: capacity ~1000 QPS
	// with 2 slots, so 4000 offered QPS is far past the knee.
	faults.ArmOp(SiteSlowWrite, faults.OpDelay(2*time.Millisecond))
	t.Cleanup(disarmAll)

	rep, err := RunLoad(ts.Client(), ts.URL, LoadSpec{
		BaseQPS:  4000,
		Duration: 600 * time.Millisecond,
		Cohorts:  []Cohort{{Name: "single", Artifact: "serving", Weight: 1, Path: "single"}},
		Seed:     42,
		Workers:  128,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("overload produced %d hard errors; want only 429/503: %+v", rep.Errors, rep)
	}
	if rep.Shed == 0 {
		t.Errorf("offered %.0f QPS against 2 slots shed nothing: %+v", rep.OfferedQPS, rep)
	}
	if rep.Accepted == 0 {
		t.Errorf("overload starved goodput entirely: %+v", rep)
	}
	st := s.Stats()
	if st.Shed == 0 || st.Accepted == 0 {
		t.Errorf("server counters missed the storm: accepted %d shed %d", st.Accepted, st.Shed)
	}

	disarmAll()
	// The 128 load workers leave keep-alive connections (and their
	// server-side read goroutines) idling; reap them before the
	// stuck-goroutine check.
	ts.Client().CloseIdleConnections()
	checkGoroutines()
}

// TestChaosStoreFaultParity injects a mixed flaky-and-hung store on
// the serve fetch path (roughly 10% hangs, 10% transient errors)
// under store-backed traffic and asserts the daemon's dichotomy:
// every accepted response is bit-identical to the offline engine
// pass, every rejection is a structured 503 of a known kind, and
// nothing else.
func TestChaosStoreFaultParity(t *testing.T) {
	checkGoroutines := goroutineBaseline(t)
	s, _, st := newTestServer(t, Options{
		DefaultDeadline: 300 * time.Millisecond,
		// The breaker is exercised by TestChaosBreakerBrownout; here it
		// must not trip so the fault mix keeps flowing.
		BreakerThreshold: 1 << 30,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, snapA, _ := testFleet(t)
	scorer, err := engine.NewScorer(snapA, 0)
	if err != nil {
		t.Fatal(err)
	}
	day := snapA.TrainedThrough + 3
	offline, err := scorer.Score(st.Snapshot(), day, day)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[int]float64, len(offline))
	for _, o := range offline {
		want[o.Pred.DriveID] = o.MaxProb
	}

	// Deterministic 10/10 mix: every 10th fetch hangs until the
	// request deadline, every 7th fails transiently, the rest pass.
	faults.ArmOp(SiteStoreSeries, func(ctx context.Context, hit int) error {
		switch {
		case hit%10 == 0:
			<-ctx.Done()
			return ctx.Err()
		case hit%7 == 0:
			return fmt.Errorf("%w: injected at hit %d", faults.ErrTransient, hit)
		}
		return nil
	})
	t.Cleanup(disarmAll)

	var accepted, rejected int
	for _, o := range offline {
		if accepted >= 40 && rejected >= 5 {
			break
		}
		id := o.Pred.DriveID
		var got ScoreResponse
		code, body := postJSON(t, ts.Client(), ts.URL+"/v1/score",
			ScoreRequest{Model: "serving", DriveID: &id, Day: &day}, &got)
		switch code {
		case http.StatusOK:
			accepted++
			if got.Prob != want[id] {
				t.Errorf("drive %d accepted under faults: prob %v != offline %v", id, got.Prob, want[id])
			}
		case http.StatusServiceUnavailable:
			rejected++
			if !strings.Contains(body, `"code":"deadline_exceeded"`) && !strings.Contains(body, `"code":"store_unavailable"`) {
				t.Errorf("drive %d: 503 of unknown kind: %s", id, body)
			}
		default:
			t.Errorf("drive %d: HTTP %d under store faults; want 200 or 503: %s", id, code, body)
		}
	}
	if accepted == 0 {
		t.Fatal("store faults rejected every request; the mix should mostly pass")
	}
	if rejected == 0 {
		t.Fatal("store faults rejected nothing; injection did not engage")
	}

	disarmAll()
	checkGoroutines()
}

// TestChaosBreakerBrownout walks the breaker's whole state machine
// under traffic: consecutive store failures trip it open, open
// fast-fails store-backed requests without touching the store while
// inline requests keep scoring flagged degraded, /readyz goes
// unready (unless -degraded-ok), and a clean half-open probe after
// the cooldown closes it again.
func TestChaosBreakerBrownout(t *testing.T) {
	s, _, st := newTestServer(t, Options{
		BreakerThreshold: 3,
		BreakerCooldown:  50 * time.Millisecond,
		BreakerSeed:      1,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, snapA, _ := testFleet(t)
	day := snapA.TrainedThrough + 3
	driveID := anyDriveID(t, st, day)

	faults.ArmOp(SiteStoreSeries, faults.OpFailEveryN(1)) // every fetch fails
	t.Cleanup(disarmAll)

	// Three consecutive failures trip the breaker.
	for i := 0; i < 3; i++ {
		code, body := postJSON(t, ts.Client(), ts.URL+"/v1/score",
			ScoreRequest{Model: "serving", DriveID: &driveID, Day: &day}, nil)
		if code != http.StatusServiceUnavailable {
			t.Fatalf("faulted fetch %d: HTTP %d: %s", i, code, body)
		}
	}
	if st := s.Stats(); st.BreakerState != "open" || st.BreakerTrips != 1 {
		t.Fatalf("after 3 consecutive failures: breaker %q, trips %d; want open, 1", st.BreakerState, st.BreakerTrips)
	}

	// Open: store-backed requests fast-fail without reaching the store.
	hitsBefore := faults.OpHits(SiteStoreSeries)
	code, body := postJSON(t, ts.Client(), ts.URL+"/v1/score",
		ScoreRequest{Model: "serving", DriveID: &driveID, Day: &day}, nil)
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "store_unavailable") {
		t.Fatalf("open breaker: HTTP %d: %s", code, body)
	}
	if got := faults.OpHits(SiteStoreSeries); got != hitsBefore {
		t.Errorf("open breaker still reached the store: %d hits vs %d", got, hitsBefore)
	}

	// Open: fleet and ingest shed with 503 store_unavailable.
	code, body = postJSON(t, ts.Client(), ts.URL+"/v1/score/fleet",
		FleetRequest{Model: "serving", Day: day}, nil)
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "store_unavailable") {
		t.Errorf("open breaker fleet: HTTP %d: %s", code, body)
	}
	code, body = postJSON(t, ts.Client(), ts.URL+"/v1/ingest",
		IngestRequest{Day: day}, nil)
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "store_unavailable") {
		t.Errorf("open breaker ingest: HTTP %d: %s", code, body)
	}

	// Open: inline-series scoring is the brownout — still served,
	// flagged degraded.
	inline := inlineSeries(t, s, day)
	var deg ScoreResponse
	code, body = postJSON(t, ts.Client(), ts.URL+"/v1/score",
		ScoreRequest{Model: "serving", Series: inline}, &deg)
	if code != http.StatusOK {
		t.Fatalf("inline during brownout: HTTP %d: %s", code, body)
	}
	if !deg.Degraded {
		t.Error("inline response during brownout not flagged degraded")
	}

	// Readiness reflects the brownout; liveness stays dumb.
	if code, rr := readyz(t, ts.Client(), ts.URL); code != http.StatusServiceUnavailable || rr.Ready || !rr.Degraded || rr.Breaker != "open" {
		t.Errorf("/readyz during brownout: HTTP %d, %+v", code, rr)
	}
	if resp, err := ts.Client().Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz must stay 200 during brownout")
	} else {
		resp.Body.Close()
	}

	// Recovery: heal the store, wait out the cooldown (50ms + ≤20%
	// jitter), and the half-open probe closes the breaker.
	disarmAll()
	time.Sleep(70 * time.Millisecond)
	var ok ScoreResponse
	code, body = postJSON(t, ts.Client(), ts.URL+"/v1/score",
		ScoreRequest{Model: "serving", DriveID: &driveID, Day: &day}, &ok)
	if code != http.StatusOK {
		t.Fatalf("half-open probe: HTTP %d: %s", code, body)
	}
	if ok.Degraded {
		t.Error("post-recovery response still flagged degraded")
	}
	if st := s.Stats(); st.BreakerState != "closed" {
		t.Errorf("after clean probe: breaker %q; want closed", st.BreakerState)
	}
	if code, rr := readyz(t, ts.Client(), ts.URL); code != http.StatusOK || !rr.Ready {
		t.Errorf("/readyz after recovery: HTTP %d, %+v", code, rr)
	}
}

// TestChaosDegradedOK: with Options.DegradedOK a browned-out daemon
// still reports ready — degraded capacity beats no capacity.
func TestChaosDegradedOK(t *testing.T) {
	s, _, st := newTestServer(t, Options{
		BreakerThreshold: 1,
		BreakerCooldown:  time.Hour, // stay open for the whole test
		DegradedOK:       true,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	faults.ArmOp(SiteStoreSeries, faults.OpFailEveryN(1))
	t.Cleanup(disarmAll)

	_, snapA, _ := testFleet(t)
	day := snapA.TrainedThrough + 3
	driveID := anyDriveID(t, st, day)
	if code, _ := postJSON(t, ts.Client(), ts.URL+"/v1/score",
		ScoreRequest{Model: "serving", DriveID: &driveID, Day: &day}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("tripping fetch: HTTP %d", code)
	}
	code, rr := readyz(t, ts.Client(), ts.URL)
	if code != http.StatusOK || !rr.Ready || !rr.Degraded {
		t.Errorf("degraded-ok /readyz: HTTP %d, %+v; want 200, ready, degraded", code, rr)
	}
}

// TestChaosRegistryWatchTolerance: a registry that fails to load a
// new version must not take the daemon down — the last good snapshot
// keeps serving, /v1/models and /readyz surface the staleness, and
// the next clean reload swaps and clears it.
func TestChaosRegistryWatchTolerance(t *testing.T) {
	s, reg, _ := newTestServer(t, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, snapA, snapB := testFleet(t)
	if _, err := engine.SaveSnapshot(reg, "serving", snapB); err != nil {
		t.Fatal(err)
	}

	faults.ArmOp(SiteRegistryLoad, faults.OpFailEveryN(1))
	t.Cleanup(disarmAll)

	code, body := postJSON(t, ts.Client(), ts.URL+"/v1/reload", struct{}{}, nil)
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "registry_unavailable") {
		t.Fatalf("faulted reload: HTTP %d: %s", code, body)
	}

	// Still serving the last good snapshot, marked stale.
	resp, err := ts.Client().Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	var models []ModelInfo
	if err := json.NewDecoder(resp.Body).Decode(&models); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(models) != 1 || models[0].Version != 1 || !models[0].Stale {
		t.Fatalf("models after failed reload: %+v; want v1 stale", models)
	}
	if code, rr := readyz(t, ts.Client(), ts.URL); code != http.StatusServiceUnavailable || !rr.RegistryStale || rr.LastReloadError == "" {
		t.Errorf("/readyz after failed reload: HTTP %d, %+v", code, rr)
	}

	// Scoring still works on the stale snapshot, flagged degraded.
	day := snapA.TrainedThrough + 3
	inline := inlineSeries(t, s, day)
	var got ScoreResponse
	code, body = postJSON(t, ts.Client(), ts.URL+"/v1/score",
		ScoreRequest{Model: "serving", Series: inline}, &got)
	if code != http.StatusOK {
		t.Fatalf("score during staleness: HTTP %d: %s", code, body)
	}
	if got.Version != 1 || got.ConfigHash != snapA.ConfigHash {
		t.Errorf("stale serving identity (v%d, %s); want last good (v1, %s)", got.Version, got.ConfigHash, snapA.ConfigHash)
	}
	if !got.Degraded {
		t.Error("response during registry staleness not flagged degraded")
	}

	// Registry heals: the next reload swaps to v2 and clears staleness.
	disarmAll()
	if code, body := postJSON(t, ts.Client(), ts.URL+"/v1/reload", struct{}{}, nil); code != http.StatusOK {
		t.Fatalf("healed reload: HTTP %d: %s", code, body)
	}
	resp, err = ts.Client().Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	models = nil
	if err := json.NewDecoder(resp.Body).Decode(&models); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(models) != 1 || models[0].Version != 2 || models[0].Stale {
		t.Fatalf("models after healed reload: %+v; want v2 not stale", models)
	}
	if code, rr := readyz(t, ts.Client(), ts.URL); code != http.StatusOK || rr.RegistryStale {
		t.Errorf("/readyz after healed reload: HTTP %d, %+v", code, rr)
	}
}

// TestChaosClientDeadline: a client-supplied X-Deadline-Ms bounds a
// hung store fetch — the request returns 503 deadline_exceeded
// promptly instead of wedging for the server default.
func TestChaosClientDeadline(t *testing.T) {
	checkGoroutines := goroutineBaseline(t)
	s, _, st := newTestServer(t, Options{
		DefaultDeadline:  10 * time.Second,
		BreakerThreshold: 1 << 30,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	faults.ArmOp(SiteStoreSeries, faults.OpHang(nil))
	t.Cleanup(disarmAll)

	_, snapA, _ := testFleet(t)
	day := snapA.TrainedThrough + 3
	driveID := anyDriveID(t, st, day)
	reqBody, _ := json.Marshal(ScoreRequest{Model: "serving", DriveID: &driveID, Day: &day})
	req, err := http.NewRequest("POST", ts.URL+"/v1/score", strings.NewReader(string(reqBody)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Deadline-Ms", "100")
	start := time.Now()
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var e struct {
		Code string `json:"code"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || e.Code != "deadline_exceeded" {
		t.Fatalf("hung fetch with 100ms deadline: HTTP %d code %q", resp.StatusCode, e.Code)
	}
	if took := time.Since(start); took > 2*time.Second {
		t.Errorf("deadline-bounded request took %v; want ~100ms", took)
	}

	disarmAll()
	checkGoroutines()
}

// anyDriveID returns a drive ID of the fixture model that was still
// alive on the given day (its observed span covers it).
func anyDriveID(t *testing.T, st *store.Store, day int) int {
	t.Helper()
	snap := st.Snapshot()
	for id, ref := range snap.RefIndex(testModel) {
		if _, lastDay, err := snap.Series(ref); err == nil && lastDay >= day {
			return id
		}
	}
	t.Fatalf("no fixture drive alive on day %d", day)
	return -1
}

// inlineSeries builds a valid inline-series payload from the served
// snapshot's own feature set — whatever features the fixture selected.
func inlineSeries(t *testing.T, s *Server, day int) map[string][]float64 {
	t.Helper()
	sv := s.arts["serving"].cur.Load()
	inline := map[string][]float64{"MWI_N": nil}
	for _, g := range sv.groups {
		for _, ft := range g.feats {
			inline[ft.String()] = nil
		}
	}
	n := day + 1
	for name := range inline {
		col := make([]float64, n)
		for i := range col {
			col[i] = 0.5
		}
		inline[name] = col
	}
	return inline
}

package serve

import (
	"context"
	"errors"
	"sync"
	"time"
)

// errRetired reports a Submit against a coalescer whose serving state
// was hot-swapped away. The caller re-resolves the artifact's active
// snapshot and resubmits there; the request is never dropped.
var errRetired = errors.New("serve: snapshot retired by hot swap")

// flushTrigger says what caused a micro-batch to flush.
type flushTrigger int

const (
	flushSize  flushTrigger = iota // batch reached maxRows
	flushAge                       // oldest queued row reached maxAge
	flushClose                     // coalescer drained on retirement
)

// coalescerConfig configures one wear group's micro-batcher.
type coalescerConfig struct {
	nCols   int // model-input columns per row
	maxRows int // size trigger
	maxAge  time.Duration
	// score scores the batch: nCols equal-length columns into out.
	score func(cols [][]float64, out []float64) error
	// onFlush observes each flush (rows scored, trigger); may be nil.
	onFlush func(rows int, trigger flushTrigger)
}

// coalescer turns concurrent single-row Submit calls into column-major
// micro-batches for the compiled kernel. A batch flushes when it
// reaches maxRows (in the submitter that filled it) or when its first
// row has waited maxAge (in the flusher goroutine). All storage —
// batches, their column frames, the per-request completion cells — is
// recycled, so a Submit on the steady-state path allocates nothing.
//
// Probabilities are row-local in the underlying models, so the batch
// composition a request happens to land in cannot change its score:
// coalesced results are bit-identical to one-at-a-time scoring.
type coalescer struct {
	cfg coalescerConfig

	mu     sync.Mutex
	closed bool
	cur    *microbatch
	free   []*microbatch
	seq    uint64

	// kick wakes the flusher when a fresh batch gets its first row; a
	// dropped kick (buffer full) is safe because a pending kick means
	// the flusher will come around and flush whatever is current.
	kick chan struct{}
	stop chan struct{}
	done chan struct{}
}

// microbatch accumulates rows for one flush. Column storage is
// pre-sized to maxRows; n is the fill level.
type microbatch struct {
	seq   uint64
	n     int
	cols  [][]float64 // nCols columns of cap maxRows
	view  [][]float64 // reused column-slice header for the score call
	probs []float64
	cells []*cell
}

// cell carries one request's result out of a flushed batch. The done
// channel is buffered so the flusher never blocks on delivery.
type cell struct {
	done chan struct{}
	prob float64
	err  error
}

var cellPool = sync.Pool{New: func() any {
	return &cell{done: make(chan struct{}, 1)}
}}

func newCoalescer(cfg coalescerConfig) *coalescer {
	co := &coalescer{
		cfg:  cfg,
		kick: make(chan struct{}, 1),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go co.flusher()
	return co
}

// newBatch returns an empty batch, recycled when one is free. Caller
// holds co.mu.
func (co *coalescer) newBatch() *microbatch {
	var mb *microbatch
	if n := len(co.free); n > 0 {
		mb = co.free[n-1]
		co.free = co.free[:n-1]
		mb.n = 0
	} else {
		mb = &microbatch{
			cols:  make([][]float64, co.cfg.nCols),
			view:  make([][]float64, co.cfg.nCols),
			probs: make([]float64, co.cfg.maxRows),
			cells: make([]*cell, co.cfg.maxRows),
		}
		for i := range mb.cols {
			mb.cols[i] = make([]float64, co.cfg.maxRows)
		}
	}
	co.seq++
	mb.seq = co.seq
	return mb
}

// Submit queues one row, blocks until its batch flushes, and returns
// the row's probability. len(row) must be nCols. After Close it
// returns errRetired without scoring.
func (co *coalescer) Submit(row []float64) (float64, error) {
	return co.SubmitCtx(context.Background(), row)
}

// SubmitCtx is Submit bounded by a context: a caller whose deadline
// expires while its row is queued abandons the wait and returns the
// context's error. The row itself still flushes and scores with its
// batch — only the delivery is abandoned. The abandoned cell is NOT
// returned to the pool: the flusher's buffered send into it can race
// an early return, and a recycled cell with a pending token would
// corrupt a later request's result. The orphan is garbage-collected
// once the flusher's send lands.
func (co *coalescer) SubmitCtx(ctx context.Context, row []float64) (float64, error) {
	c := cellPool.Get().(*cell)
	co.mu.Lock()
	if co.closed {
		co.mu.Unlock()
		cellPool.Put(c)
		return 0, errRetired
	}
	mb := co.cur
	if mb == nil {
		mb = co.newBatch()
		co.cur = mb
	}
	idx := mb.n
	for i, v := range row {
		mb.cols[i][idx] = v
	}
	mb.cells[idx] = c
	mb.n++
	full := mb.n == co.cfg.maxRows
	first := mb.n == 1
	if full {
		co.cur = nil
	}
	co.mu.Unlock()

	if full {
		// The submitter that completed the batch scores it: at
		// saturation the size trigger dominates and scoring work rides
		// request goroutines with no handoff latency.
		co.flush(mb, flushSize)
	} else if first {
		select {
		case co.kick <- struct{}{}:
		default:
		}
	}

	select {
	case <-c.done:
	case <-ctx.Done():
		return 0, ctx.Err()
	}
	prob, err := c.prob, c.err
	cellPool.Put(c)
	return prob, err
}

// flusher ages out batches that never fill: each kick arms one maxAge
// sleep, after which whatever batch is current gets flushed. A batch
// whose kick was dropped is covered by the pending cycle that dropped
// it, so no batch waits more than ~2×maxAge.
func (co *coalescer) flusher() {
	defer close(co.done)
	timer := time.NewTimer(co.cfg.maxAge)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		select {
		case <-co.stop:
			return
		case <-co.kick:
		}
		timer.Reset(co.cfg.maxAge)
		select {
		case <-co.stop:
			if !timer.Stop() {
				<-timer.C
			}
			return
		case <-timer.C:
		}
		co.mu.Lock()
		mb := co.cur
		if mb != nil && mb.n > 0 {
			co.cur = nil
		} else {
			mb = nil
		}
		co.mu.Unlock()
		if mb != nil {
			co.flush(mb, flushAge)
		}
	}
}

// flush scores a detached batch and delivers each row's result. The
// batch is exclusively owned by the caller (it was removed from cur
// under the lock), so scoring runs without the lock.
func (co *coalescer) flush(mb *microbatch, trigger flushTrigger) {
	n := mb.n
	for i := range mb.view {
		mb.view[i] = mb.cols[i][:n]
	}
	probs := mb.probs[:n]
	err := co.cfg.score(mb.view, probs)
	if co.cfg.onFlush != nil {
		co.cfg.onFlush(n, trigger)
	}
	for i := 0; i < n; i++ {
		c := mb.cells[i]
		mb.cells[i] = nil
		c.prob = probs[i]
		c.err = err
		c.done <- struct{}{}
	}
	co.mu.Lock()
	if !co.closed {
		co.free = append(co.free, mb)
	}
	co.mu.Unlock()
}

// Close drains the coalescer: the current partial batch (if any) is
// flushed and scored, the flusher stops, and subsequent Submits get
// errRetired. Idempotent.
func (co *coalescer) Close() {
	co.mu.Lock()
	if co.closed {
		co.mu.Unlock()
		return
	}
	co.closed = true
	mb := co.cur
	co.cur = nil
	co.mu.Unlock()
	close(co.stop)
	<-co.done
	if mb != nil && mb.n > 0 {
		co.flush(mb, flushClose)
	}
}

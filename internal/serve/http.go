package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/faults"
	"repro/internal/smart"
)

// Machine-readable error kinds carried in the "code" field of error
// bodies, so load generators and clients can tell overload rejections
// (retry later, elsewhere) from genuine failures.
const (
	kindShed             = "shed"              // 429: admission queue full
	kindDeadlineExceeded = "deadline_exceeded" // 503: request deadline ran out
	kindStoreUnavailable = "store_unavailable" // 503: store breaker open or fetch failed
	kindRegistryDown     = "registry_unavailable"
	kindBadRequest       = "bad_request"
)

// reqError is a request failure the daemon classified: it maps to an
// HTTP status, a structured {"error", "code"} body, and by
// construction leaves no trace in daemon state. kind is the
// machine-readable code; empty means kindBadRequest.
type reqError struct {
	code int
	kind string
	msg  string
}

func (e *reqError) Error() string { return e.msg }

// ScoreRequest is the body of POST /v1/score: one drive-day to score.
// Either Series carries the drive's telemetry inline (each column the
// same length; the last day is scored, and at least the snapshot's
// maximum feature window of history before it makes generated
// statistics exact), or DriveID names a drive already in the store
// (Day picks the scored day, default its last observed day).
type ScoreRequest struct {
	// Model is the registry artifact name to score with.
	Model string `json:"model"`
	// DriveID selects a store-backed drive (with optional Day).
	DriveID *int `json:"drive_id,omitempty"`
	// Day is the scored day for store-backed requests.
	Day *int `json:"day,omitempty"`
	// MWI overrides the wear index used for group routing; default is
	// the MWI_N column at the scored day.
	MWI *float64 `json:"mwi,omitempty"`
	// Series is the inline telemetry, keyed by feature name (e.g.
	// "UCE_R", "MWI_N").
	Series map[string][]float64 `json:"series,omitempty"`
}

// ScoreResponse is one scored drive-day. Version and ConfigHash
// identify the exact snapshot that produced the probability — during
// a hot swap concurrent responses may carry either version, but every
// response's pair is internally consistent.
type ScoreResponse struct {
	Model      string  `json:"model"`
	Version    int     `json:"version"`
	ConfigHash string  `json:"config_hash"`
	DriveID    int     `json:"drive_id,omitempty"`
	Day        int     `json:"day"`
	Group      int     `json:"group"`
	Prob       float64 `json:"prob"`
	Threshold  float64 `json:"threshold"`
	Alarm      bool    `json:"alarm"`
	// Degraded marks a response produced while the daemon is in a
	// brownout (store breaker open or registry stale): the score is
	// exact for the data it saw, but store-backed context may be
	// unavailable or the snapshot may lag the registry.
	Degraded bool `json:"degraded,omitempty"`
}

// BatchRequest is the body of POST /v1/score/batch: many drives
// scored in one call, bypassing the coalescer.
type BatchRequest struct {
	Model  string       `json:"model"`
	Drives []BatchDrive `json:"drives"`
}

// BatchDrive is one drive of a batch request; fields mirror
// ScoreRequest minus the artifact name.
type BatchDrive struct {
	DriveID *int                 `json:"drive_id,omitempty"`
	Day     *int                 `json:"day,omitempty"`
	MWI     *float64             `json:"mwi,omitempty"`
	Series  map[string][]float64 `json:"series,omitempty"`
}

// BatchResponse returns one result per requested drive, in order.
type BatchResponse struct {
	Model      string          `json:"model"`
	Version    int             `json:"version"`
	ConfigHash string          `json:"config_hash"`
	Degraded   bool            `json:"degraded,omitempty"`
	Results    []ScoreResponse `json:"results"`
}

// FleetRequest is the body of POST /v1/score/fleet: score every drive
// of the artifact's model on one store day through the pooled
// whole-pass engine path.
type FleetRequest struct {
	Model string `json:"model"`
	Day   int    `json:"day"`
}

// FleetResponse summarizes a fleet pass.
type FleetResponse struct {
	Model      string  `json:"model"`
	Version    int     `json:"version"`
	ConfigHash string  `json:"config_hash"`
	Day        int     `json:"day"`
	Drives     int     `json:"drives"`
	Alarms     int     `json:"alarms"`
	MeanProb   float64 `json:"mean_prob"`
	Degraded   bool    `json:"degraded,omitempty"`
}

// IngestRequest is the body of POST /v1/ingest: admit upstream fleet
// telemetry through the given day into the store, making it visible
// to store-backed scoring.
type IngestRequest struct {
	Day int `json:"day"`
}

// IngestResponse reports the store horizon after an admission.
type IngestResponse struct {
	Horizon       int   `json:"horizon"`
	DaysIngested  int64 `json:"days_ingested"`
	SeriesFetches int64 `json:"series_fetches"`
}

// ModelInfo describes one served artifact (GET /v1/models).
type ModelInfo struct {
	Name           string `json:"name"`
	Version        int    `json:"version"`
	ConfigHash     string `json:"config_hash"`
	DriveModel     string `json:"drive_model"`
	TrainedThrough int    `json:"trained_through"`
	Windows        []int  `json:"windows"`
	// Stale marks an artifact served past a failed registry reload:
	// the listed version is the last good one and may lag the
	// registry's latest.
	Stale  bool        `json:"stale,omitempty"`
	Groups []GroupInfo `json:"groups"`
}

// GroupInfo describes one wear group of a served artifact.
type GroupInfo struct {
	MWIBelow   float64  `json:"mwi_below,omitempty"`
	MWIAtLeast float64  `json:"mwi_at_least,omitempty"`
	Threshold  float64  `json:"threshold"`
	Features   []string `json:"features"`
}

// Handler returns the daemon's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /v1/models", s.handleModels)
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("POST /v1/score", s.overload(pathSingle, s.handleScore))
	mux.HandleFunc("POST /v1/score/batch", s.overload(pathBatch, s.handleBatch))
	mux.HandleFunc("POST /v1/score/fleet", s.overload(pathFleet, s.handleFleet))
	mux.HandleFunc("POST /v1/ingest", s.overload(pathIngest, s.handleIngest))
	mux.HandleFunc("POST /v1/reload", s.handleReload)
	return mux
}

// ReadyResponse is the body of GET /readyz: whether the daemon wants
// traffic, and why not if it doesn't. Liveness (/healthz) stays dumb
// — a degraded daemon is alive; readiness is the load balancer's
// signal.
type ReadyResponse struct {
	Ready           bool   `json:"ready"`
	Degraded        bool   `json:"degraded"`
	Breaker         string `json:"breaker"`
	BreakerTrips    int64  `json:"breaker_trips"`
	RegistryStale   bool   `json:"registry_stale"`
	ReloadFailures  int64  `json:"reload_failures"`
	LastReloadError string `json:"last_reload_error,omitempty"`
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	state, trips := s.brk.snapshot()
	degraded := state != breakerClosed || s.registryStale()
	resp := ReadyResponse{
		Ready:          !degraded || s.opts.DegradedOK,
		Degraded:       degraded,
		Breaker:        state.String(),
		BreakerTrips:   trips,
		RegistryStale:  s.registryStale(),
		ReloadFailures: s.reloadFails.Load(),
	}
	if msg := s.lastReloadErr.Load(); msg != nil {
		resp.LastReloadError = *msg
	}
	code := http.StatusOK
	if !resp.Ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, resp)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	s.writeErrKind(w, code, kindBadRequest, format, args...)
}

func (s *Server) writeErrKind(w http.ResponseWriter, code int, kind string, format string, args ...any) {
	s.errors.Add(1)
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...), "code": kind})
}

// fail maps an error to its HTTP status: reqError carries its own
// status and kind, a blown request deadline is a 503
// deadline_exceeded, everything else is a 500.
func (s *Server) fail(w http.ResponseWriter, err error) {
	var re *reqError
	if errors.As(err, &re) {
		kind := re.kind
		if kind == "" {
			kind = kindBadRequest
		}
		if kind == kindDeadlineExceeded {
			s.deadlineExceeded.Add(1)
		}
		s.writeErrKind(w, re.code, kind, "%s", re.msg)
		return
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		s.deadlineExceeded.Add(1)
		s.writeErrKind(w, http.StatusServiceUnavailable, kindDeadlineExceeded, "%v", err)
		return
	}
	s.writeErr(w, http.StatusInternalServerError, "%v", err)
}

// decodeBody decodes a JSON request body strictly: unknown fields,
// trailing garbage, and bodies over the per-path limit are client
// errors.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, limit int64, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, limit)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return &reqError{code: http.StatusRequestEntityTooLarge, msg: fmt.Sprintf("body exceeds %d bytes", tooBig.Limit)}
		}
		return &reqError{code: http.StatusBadRequest, msg: fmt.Sprintf("bad request body: %v", err)}
	}
	// Token (not More) for the trailing check: More swallows read
	// errors, which would let an over-limit body whose excess is
	// trailing bytes slip past the cap.
	if _, err := dec.Token(); err != io.EOF {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return &reqError{code: http.StatusRequestEntityTooLarge, msg: fmt.Sprintf("body exceeds %d bytes", tooBig.Limit)}
		}
		return &reqError{code: http.StatusBadRequest, msg: "trailing data after JSON body"}
	}
	return nil
}

// requestDeadline resolves a request's deadline: the optional
// X-Deadline-Ms header (capped at Options.MaxDeadline) or the server
// default. A malformed header is a 400.
func (s *Server) requestDeadline(r *http.Request) (time.Duration, error) {
	h := r.Header.Get("X-Deadline-Ms")
	if h == "" {
		return s.opts.DefaultDeadline, nil
	}
	ms, err := strconv.ParseInt(h, 10, 64)
	if err != nil || ms <= 0 {
		return 0, &reqError{code: http.StatusBadRequest, msg: fmt.Sprintf("bad X-Deadline-Ms %q: want a positive integer", h)}
	}
	d := time.Duration(ms) * time.Millisecond
	if d > s.opts.MaxDeadline {
		d = s.opts.MaxDeadline
	}
	return d, nil
}

// overload wraps a handler with the path's admission gate and the
// request deadline. A full wait queue sheds with 429 + Retry-After; a
// deadline that expires while queued is a 503 deadline_exceeded.
// Admitted requests run under a context that featurization and store
// fetches observe, so a hung dependency cancels instead of wedging
// the slot forever.
func (s *Server) overload(pc pathClass, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		deadline, err := s.requestDeadline(r)
		if err != nil {
			s.fail(w, err)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), deadline)
		defer cancel()
		if err := s.gates[pc].acquire(ctx); err != nil {
			if errors.Is(err, errShed) {
				s.shed.Add(1)
				w.Header().Set("Retry-After", "1")
				s.writeErrKind(w, http.StatusTooManyRequests, kindShed, "%s path overloaded: admission queue full", pc)
				return
			}
			s.deadlineExceeded.Add(1)
			s.writeErrKind(w, http.StatusServiceUnavailable, kindDeadlineExceeded, "%s path: deadline expired in admission queue", pc)
			return
		}
		defer s.gates[pc].release()
		s.accepted.Add(1)
		if err := faults.Op(ctx, SiteSlowWrite); err != nil {
			s.fail(w, err)
			return
		}
		h(w, r.WithContext(ctx))
	}
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	stale := s.registryStale()
	out := make([]ModelInfo, 0, len(s.names))
	for _, name := range s.names {
		sv := s.arts[name].cur.Load()
		mi := ModelInfo{
			Name:           name,
			Version:        sv.version,
			ConfigHash:     sv.hash,
			DriveModel:     sv.model.String(),
			TrainedThrough: sv.snap.TrainedThrough,
			Windows:        sv.windows,
			Stale:          stale,
		}
		for _, g := range sv.groups {
			below, atLeast := sv.scorer.GroupMWIBounds(g.index)
			names := make([]string, len(g.feats))
			for i, ft := range g.feats {
				names[i] = ft.String()
			}
			mi.Groups = append(mi.Groups, GroupInfo{
				MWIBelow: below, MWIAtLeast: atLeast,
				Threshold: g.threshold, Features: names,
			})
		}
		out = append(out, mi)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	var req ScoreRequest
	if err := s.decodeBody(w, r, s.opts.MaxBodyBytes, &req); err != nil {
		s.fail(w, err)
		return
	}
	resp, err := s.scoreOne(r.Context(), req)
	if err != nil {
		s.fail(w, err)
		return
	}
	if resp.Degraded {
		s.degraded.Add(1)
	}
	writeJSON(w, http.StatusOK, resp)
}

// scoreOne scores a single drive-day through the coalescer, retrying
// transparently when a hot swap retires the serving state mid-flight.
func (s *Server) scoreOne(ctx context.Context, req ScoreRequest) (ScoreResponse, error) {
	art, ok := s.artifactByName(req.Model)
	if !ok {
		return ScoreResponse{}, &reqError{code: http.StatusNotFound, msg: fmt.Sprintf("unknown model %q", req.Model)}
	}
	for attempt := 0; attempt < swapAttempts; attempt++ {
		if attempt > 0 {
			s.swapRetries.Add(1)
		}
		sv := art.cur.Load()
		resp, err := s.scoreOn(ctx, sv, req)
		if errors.Is(err, errRetired) {
			continue
		}
		return resp, err
	}
	return ScoreResponse{}, &reqError{code: http.StatusServiceUnavailable, kind: kindRegistryDown, msg: "snapshot churn: retried past limit"}
}

// scoreOn scores the request against one captured serving state.
func (s *Server) scoreOn(ctx context.Context, sv *serving, req ScoreRequest) (ScoreResponse, error) {
	series, day, driveID, err := s.resolveSeries(ctx, sv, req.DriveID, req.Day, req.Series)
	if err != nil {
		return ScoreResponse{}, err
	}
	mwi := routeMWI(series, day, req.MWI)
	g := sv.scorer.PickGroup(mwi)
	if g < 0 {
		return ScoreResponse{}, &reqError{code: http.StatusUnprocessableEntity, msg: fmt.Sprintf("no wear group admits MWI %v", mwi)}
	}
	rt := sv.groups[g]
	fs := getScratch(rt.width, rt.nGen)
	err = sv.driveRow(rt, series, day, fs)
	if err != nil {
		putScratch(fs)
		return ScoreResponse{}, err
	}
	prob, err := rt.co.SubmitCtx(ctx, fs.row)
	putScratch(fs)
	if err != nil {
		return ScoreResponse{}, err
	}
	return ScoreResponse{
		Model: sv.name, Version: sv.version, ConfigHash: sv.hash,
		DriveID: driveID, Day: day, Group: g,
		Prob: prob, Threshold: rt.threshold, Alarm: prob >= rt.threshold,
		Degraded: s.degradedNow(),
	}, nil
}

// resolveSeries produces the telemetry columns and scored day for a
// request: inline series (scored day = last day) or a store lookup.
//
// The store-backed branch is the breaker-guarded dependency edge:
// with the breaker open it fast-fails 503 store_unavailable without
// touching the store (inline-series requests are unaffected — that is
// the brownout), and every real fetch outcome feeds the breaker.
// Unknown-drive 404s are checked before the breaker is consulted:
// they are client errors, not store health, and must not consume a
// half-open probe slot. Likewise a cancelled or deadline-blown fetch
// is the client's deadline, not the store's failure — it releases the
// probe slot instead of counting against the streak.
func (s *Server) resolveSeries(ctx context.Context, sv *serving, driveID, day *int, inline map[string][]float64) (map[smart.Feature][]float64, int, int, error) {
	if inline != nil {
		if driveID != nil {
			return nil, 0, 0, &reqError{code: http.StatusBadRequest, msg: "request has both series and drive_id; send one"}
		}
		cols, n, err := sv.checkSeries(inline, s.opts.MaxSeriesDays)
		if err != nil {
			return nil, 0, 0, err
		}
		d := n - 1
		if day != nil {
			if *day < 0 || *day >= n {
				return nil, 0, 0, &reqError{code: http.StatusBadRequest, msg: fmt.Sprintf("day %d outside series span %d", *day, n)}
			}
			d = *day
		}
		return cols, d, 0, nil
	}
	if driveID == nil {
		return nil, 0, 0, &reqError{code: http.StatusBadRequest, msg: "request needs series or drive_id"}
	}
	if s.opts.Store == nil {
		return nil, 0, 0, &reqError{code: http.StatusNotImplemented, msg: "store-backed scoring is disabled: no store configured"}
	}
	snap := s.opts.Store.Snapshot()
	ref, ok := snap.RefIndex(sv.model)[*driveID]
	if !ok {
		return nil, 0, 0, &reqError{code: http.StatusNotFound, msg: fmt.Sprintf("model %v has no drive %d", sv.model, *driveID)}
	}
	if !s.brk.allow() {
		return nil, 0, 0, &reqError{code: http.StatusServiceUnavailable, kind: kindStoreUnavailable, msg: "store circuit breaker open; retry with inline series"}
	}
	if err := faults.Op(ctx, SiteStoreSeries); err != nil {
		s.brkFetchFailed(err)
		return nil, 0, 0, storeErr(*driveID, err)
	}
	cols, lastDay, err := snap.SeriesCtx(ctx, ref)
	if err != nil {
		s.brkFetchFailed(err)
		return nil, 0, 0, storeErr(*driveID, err)
	}
	s.brk.success()
	d := lastDay
	if day != nil {
		if *day < 0 || *day > lastDay {
			return nil, 0, 0, &reqError{code: http.StatusBadRequest, msg: fmt.Sprintf("day %d outside drive %d's observed span [0, %d]", *day, *driveID, lastDay)}
		}
		d = *day
	}
	return cols, d, *driveID, nil
}

// brkFetchFailed feeds a failed store fetch to the circuit breaker.
// Cancellation and deadline expiry are the request's deadline, not
// the store's health — the store never answered, for better or worse
// — so they never count toward the failure streak; if the request
// held the half-open probe slot they hand it back so the next
// store-backed request can probe. Everything else is a real failure.
func (s *Server) brkFetchFailed(err error) {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		s.brk.release()
		return
	}
	s.brk.failure()
}

// storeErr classifies a store fetch failure: a blown deadline is a
// 503 deadline_exceeded, anything else a 503 store_unavailable. Both
// feed the circuit breaker at the call site.
func storeErr(driveID int, err error) error {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return &reqError{code: http.StatusServiceUnavailable, kind: kindDeadlineExceeded, msg: fmt.Sprintf("store series for drive %d: %v", driveID, err)}
	}
	return &reqError{code: http.StatusServiceUnavailable, kind: kindStoreUnavailable, msg: fmt.Sprintf("store series for drive %d: %v", driveID, err)}
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	var req BatchRequest
	if err := s.decodeBody(w, r, s.opts.MaxBodyBytes, &req); err != nil {
		s.fail(w, err)
		return
	}
	art, ok := s.artifactByName(req.Model)
	if !ok {
		s.writeErr(w, http.StatusNotFound, "unknown model %q", req.Model)
		return
	}
	if len(req.Drives) == 0 {
		s.writeErr(w, http.StatusBadRequest, "batch has no drives")
		return
	}
	if len(req.Drives) > s.opts.MaxBatchRequest {
		s.writeErr(w, http.StatusRequestEntityTooLarge, "batch of %d drives exceeds limit %d", len(req.Drives), s.opts.MaxBatchRequest)
		return
	}
	sv := art.cur.Load()
	resp, err := s.scoreBatchOn(r.Context(), sv, req)
	if err != nil {
		s.fail(w, err)
		return
	}
	if resp.Degraded {
		s.degraded.Add(1)
	}
	writeJSON(w, http.StatusOK, resp)
}

// scoreBatchOn scores a whole batch on one captured serving state,
// bypassing the coalescer: rows are bucketed by wear group, each
// bucket scored in one kernel call, results returned in request
// order. Validation is all-or-nothing — any bad drive fails the whole
// batch before anything is scored.
func (s *Server) scoreBatchOn(ctx context.Context, sv *serving, req BatchRequest) (BatchResponse, error) {
	n := len(req.Drives)
	type placed struct {
		group int
		slot  int // row within the group's bucket
	}
	place := make([]placed, n)
	rows := make([][]float64, n)
	buckets := make([][]int, len(sv.groups)) // group -> request indices
	resp := BatchResponse{Model: sv.name, Version: sv.version, ConfigHash: sv.hash}

	for i, d := range req.Drives {
		if err := ctx.Err(); err != nil {
			return resp, &reqError{code: http.StatusServiceUnavailable, kind: kindDeadlineExceeded,
				msg: fmt.Sprintf("deadline exceeded after featurizing %d of %d drives", i, n)}
		}
		series, day, driveID, err := s.resolveSeries(ctx, sv, d.DriveID, d.Day, d.Series)
		if err != nil {
			return resp, &reqError{code: errCode(err), kind: errKind(err), msg: fmt.Sprintf("drive %d of batch: %v", i, err)}
		}
		mwi := routeMWI(series, day, d.MWI)
		g := sv.scorer.PickGroup(mwi)
		if g < 0 {
			return resp, &reqError{code: http.StatusUnprocessableEntity, msg: fmt.Sprintf("drive %d of batch: no wear group admits MWI %v", i, mwi)}
		}
		rt := sv.groups[g]
		fs := getScratch(rt.width, rt.nGen)
		if err := sv.driveRow(rt, series, day, fs); err != nil {
			putScratch(fs)
			return resp, &reqError{code: errCode(err), msg: fmt.Sprintf("drive %d of batch: %v", i, err)}
		}
		row := make([]float64, rt.width)
		copy(row, fs.row)
		putScratch(fs)
		rows[i] = row
		place[i] = placed{group: g, slot: len(buckets[g])}
		buckets[g] = append(buckets[g], i)
		resp.Results = append(resp.Results, ScoreResponse{
			Model: sv.name, Version: sv.version, ConfigHash: sv.hash,
			DriveID: driveID, Day: day, Group: g, Threshold: rt.threshold,
		})
	}

	probs := make([][]float64, len(sv.groups))
	for g, idxs := range buckets {
		if len(idxs) == 0 {
			continue
		}
		rt := sv.groups[g]
		cols := make([][]float64, rt.width)
		for c := range cols {
			cols[c] = make([]float64, len(idxs))
		}
		for slot, i := range idxs {
			for c, v := range rows[i] {
				cols[c][slot] = v
			}
		}
		probs[g] = make([]float64, len(idxs))
		if err := sv.scorer.ScoreBatch(g, cols, probs[g]); err != nil {
			return resp, fmt.Errorf("serve: batch group %d: %w", g, err)
		}
	}
	for i := range resp.Results {
		p := probs[place[i].group][place[i].slot]
		resp.Results[i].Prob = p
		resp.Results[i].Alarm = p >= resp.Results[i].Threshold
	}
	resp.Degraded = s.degradedNow()
	return resp, nil
}

// errCode extracts a reqError's status, defaulting to 400.
func errCode(err error) int {
	var re *reqError
	if errors.As(err, &re) {
		return re.code
	}
	return http.StatusBadRequest
}

// errKind extracts a reqError's machine-readable kind, defaulting to
// bad_request.
func errKind(err error) string {
	var re *reqError
	if errors.As(err, &re) && re.kind != "" {
		return re.kind
	}
	return kindBadRequest
}

func (s *Server) handleFleet(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	var req FleetRequest
	if err := s.decodeBody(w, r, s.opts.MaxSmallBodyBytes, &req); err != nil {
		s.fail(w, err)
		return
	}
	art, ok := s.artifactByName(req.Model)
	if !ok {
		s.writeErr(w, http.StatusNotFound, "unknown model %q", req.Model)
		return
	}
	if s.opts.Store == nil {
		s.writeErr(w, http.StatusNotImplemented, "fleet scoring is disabled: no store configured")
		return
	}
	sv := art.cur.Load()
	snap := s.opts.Store.Snapshot()
	if req.Day < 0 || req.Day >= snap.Days() {
		s.writeErr(w, http.StatusBadRequest, "day %d outside store horizon %d", req.Day, snap.Days())
		return
	}
	if !s.brk.allow() {
		s.writeErrKind(w, http.StatusServiceUnavailable, kindStoreUnavailable, "store circuit breaker open: fleet scoring shed")
		return
	}
	sv.fleetMu.Lock()
	outcomes, err := sv.scorer.ScoreInto(snap, req.Day, req.Day, &sv.fleetBuf)
	if err != nil {
		sv.fleetMu.Unlock()
		s.brk.failure()
		s.writeErrKind(w, http.StatusServiceUnavailable, kindStoreUnavailable, "fleet scoring: %v", err)
		return
	}
	s.brk.success()
	resp := FleetResponse{
		Model: sv.name, Version: sv.version, ConfigHash: sv.hash,
		Day: req.Day, Drives: len(outcomes),
	}
	var total float64
	for _, o := range outcomes {
		total += o.MaxProb
		if o.Pred.FirstAlarmDay >= 0 {
			resp.Alarms++
		}
	}
	sv.fleetMu.Unlock()
	if len(outcomes) > 0 {
		resp.MeanProb = total / float64(resp.Drives)
	}
	if resp.Degraded = s.degradedNow(); resp.Degraded {
		s.degraded.Add(1)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	var req IngestRequest
	if err := s.decodeBody(w, r, s.opts.MaxSmallBodyBytes, &req); err != nil {
		s.fail(w, err)
		return
	}
	if s.opts.Store == nil {
		s.writeErr(w, http.StatusNotImplemented, "ingest is disabled: no store configured")
		return
	}
	if req.Day < 0 || req.Day >= s.opts.Store.SourceDays() {
		s.writeErr(w, http.StatusBadRequest, "day %d outside upstream span %d", req.Day, s.opts.Store.SourceDays())
		return
	}
	if !s.brk.allow() {
		s.writeErrKind(w, http.StatusServiceUnavailable, kindStoreUnavailable, "store circuit breaker open: ingest shed")
		return
	}
	for _, name := range s.names {
		sv := s.arts[name].cur.Load()
		if err := s.opts.Store.Track(sv.model); err != nil {
			s.brk.failure()
			s.fail(w, storeIngestErr(fmt.Errorf("track %v: %w", sv.model, err)))
			return
		}
	}
	if err := s.opts.Store.AppendThroughCtx(r.Context(), req.Day); err != nil {
		s.brkFetchFailed(err)
		s.fail(w, storeIngestErr(fmt.Errorf("ingest day %d: %w", req.Day, err)))
		return
	}
	s.brk.success()
	s.ingests.Add(1)
	c := s.opts.Store.Counters()
	writeJSON(w, http.StatusOK, IngestResponse{
		Horizon:       s.opts.Store.Horizon(),
		DaysIngested:  c.DaysIngested,
		SeriesFetches: c.SeriesFetches,
	})
}

// storeIngestErr classifies an ingest failure: a cancelled or
// deadline-blown append is a 503 deadline_exceeded, anything else a
// 503 store_unavailable — an unreachable upstream must not read as a
// daemon bug.
func storeIngestErr(err error) error {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return &reqError{code: http.StatusServiceUnavailable, kind: kindDeadlineExceeded, msg: err.Error()}
	}
	return &reqError{code: http.StatusServiceUnavailable, kind: kindStoreUnavailable, msg: err.Error()}
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	swapped, err := s.Reload()
	if err != nil {
		s.writeErrKind(w, http.StatusServiceUnavailable, kindRegistryDown, "reload: %v", err)
		return
	}
	if swapped == nil {
		swapped = []string{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"swapped": swapped})
}

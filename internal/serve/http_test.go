package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
)

// daemonState captures everything a malformed request must not
// change: store horizon and counters, registry version, swap count.
type daemonState struct {
	horizon  int
	ingested int64
	fetches  int64
	appends  int64
	version  int
	swaps    int64
	ingests  int64
}

// validDriveID returns some drive that exists in the store.
func validDriveID(t *testing.T, s *Server) int {
	t.Helper()
	for id := range s.opts.Store.Snapshot().RefIndex(testModel) {
		return id
	}
	t.Fatal("store has no drives")
	return 0
}

func captureState(t *testing.T, s *Server) daemonState {
	t.Helper()
	c := s.opts.Store.Counters()
	v, err := s.opts.Registry.LatestVersion("serving")
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	return daemonState{
		horizon:  s.opts.Store.Horizon(),
		ingested: c.DaysIngested, fetches: c.SeriesFetches, appends: c.Appends,
		version: v, swaps: st.Swaps, ingests: st.Ingests,
	}
}

// TestMalformedRequests: every malformed input maps to a structured
// 4xx — a JSON body with a non-empty "error" — and leaves daemon
// state (store horizon/counters, registry, swap count) untouched.
func TestMalformedRequests(t *testing.T) {
	s, _, _ := newTestServer(t, Options{MaxBatchRequest: 8, MaxSeriesDays: 64})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	longSeries := "[" + strings.Repeat("0.5,", 64) + "0.5]" // 65 days > MaxSeriesDays
	bigBatch := `{"model":"serving","drives":[` +
		strings.Repeat(`{"series":{"MWI_N":[0.5]}},`, 8) +
		`{"series":{"MWI_N":[0.5]}}]}` // 9 drives > MaxBatchRequest

	cases := []struct {
		name string
		path string
		body string
		want int
	}{
		{"truncated json", "/v1/score", `{"model":`, 400},
		{"not json at all", "/v1/score", `<xml/>`, 400},
		{"unknown field", "/v1/score", `{"model":"serving","bogus":1}`, 400},
		{"trailing garbage", "/v1/score", `{"model":"serving","series":{"MWI_N":[0.5]}} {"again":1}`, 400},
		{"unknown model", "/v1/score", `{"model":"nope","series":{"MWI_N":[0.5]}}`, 404},
		{"neither series nor drive", "/v1/score", `{"model":"serving"}`, 400},
		{"both series and drive", "/v1/score", `{"model":"serving","drive_id":1,"series":{"MWI_N":[0.5]}}`, 400},
		{"empty series", "/v1/score", `{"model":"serving","series":{}}`, 400},
		{"unknown feature", "/v1/score", `{"model":"serving","series":{"WARP_CORE":[0.5]}}`, 400},
		{"ragged columns", "/v1/score", `{"model":"serving","series":{"MWI_N":[0.5,0.5],"UCE_R":[0.5]}}`, 400},
		{"empty column", "/v1/score", `{"model":"serving","series":{"MWI_N":[]}}`, 400},
		{"NaN payload", "/v1/score", `{"model":"serving","series":{"MWI_N":[NaN]}}`, 400},
		{"Inf payload", "/v1/score", `{"model":"serving","series":{"MWI_N":[1e999]}}`, 400},
		{"negative Inf payload", "/v1/score", `{"model":"serving","series":{"MWI_N":[-Infinity]}}`, 400},
		{"series too long", "/v1/score", `{"model":"serving","series":{"MWI_N":` + longSeries + `}}`, 413},
		{"day outside inline span", "/v1/score", `{"model":"serving","day":9,"series":{"MWI_N":[0.5]}}`, 400},
		{"unknown drive", "/v1/score", `{"model":"serving","drive_id":99999999}`, 404},
		{"negative day for drive", "/v1/score", fmt.Sprintf(`{"model":"serving","drive_id":%d,"day":-3}`, validDriveID(t, s)), 400},
		{"wrong type for series", "/v1/score", `{"model":"serving","series":42}`, 400},
		{"string in column", "/v1/score", `{"model":"serving","series":{"MWI_N":["a"]}}`, 400},
		{"batch unknown model", "/v1/score/batch", `{"model":"nope","drives":[{"series":{"MWI_N":[0.5]}}]}`, 404},
		{"batch empty", "/v1/score/batch", `{"model":"serving","drives":[]}`, 400},
		{"batch oversized", "/v1/score/batch", bigBatch, 413},
		{"batch bad drive", "/v1/score/batch", `{"model":"serving","drives":[{"series":{"MWI_N":[0.5,0.5],"UCE_R":[0.5]}}]}`, 400},
		{"fleet unknown model", "/v1/score/fleet", `{"model":"nope","day":1}`, 404},
		{"fleet day past horizon", "/v1/score/fleet", `{"model":"serving","day":100000}`, 400},
		{"fleet negative day", "/v1/score/fleet", `{"model":"serving","day":-1}`, 400},
		{"ingest negative day", "/v1/ingest", `{"day":-1}`, 400},
		{"ingest past upstream", "/v1/ingest", `{"day":100000}`, 400},
		{"ingest bad json", "/v1/ingest", `{"day":`, 400},
	}

	before := captureState(t, s)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := ts.Client().Post(ts.URL+tc.path, "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Errorf("HTTP %d, want %d", resp.StatusCode, tc.want)
			}
			var parsed struct {
				Error string `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&parsed); err != nil {
				t.Fatalf("error body is not structured JSON: %v", err)
			}
			if parsed.Error == "" {
				t.Error("error body has no error message")
			}
		})
	}
	if after := captureState(t, s); after != before {
		t.Fatalf("malformed requests changed daemon state:\nbefore %+v\nafter  %+v", before, after)
	}

	// The daemon still serves valid traffic afterward.
	body, _ := json.Marshal(ScoreRequest{Model: "serving", Series: map[string][]float64{
		"MWI_N": {0.5}, "UCE_R": {0.1},
	}})
	resp, err := ts.Client().Post(ts.URL+"/v1/score", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// 200 if the snapshot's features happen to be covered, else a 4xx —
	// either way the daemon must not have wedged into 5xx territory.
	if resp.StatusCode >= 500 {
		t.Fatalf("daemon unhealthy after malformed burst: HTTP %d", resp.StatusCode)
	}
}

// TestOversizedBody: a body over MaxBodyBytes is rejected with 413
// before any of it is processed.
func TestOversizedBody(t *testing.T) {
	s, _, _ := newTestServer(t, Options{MaxBodyBytes: 1024})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	huge := fmt.Sprintf(`{"model":"serving","series":{"MWI_N":[%s0.5]}}`, strings.Repeat("0.5,", 2000))
	resp, err := ts.Client().Post(ts.URL+"/v1/score", "application/json", strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("HTTP %d, want 413", resp.StatusCode)
	}
}

// FuzzScoreRequest fuzzes the single-score decode/validate path: no
// input may panic the handler or produce a 5xx.
func FuzzScoreRequest(f *testing.F) {
	s := newFuzzServer(f)
	h := s.Handler()

	f.Add([]byte(`{"model":"serving","series":{"MWI_N":[0.5],"UCE_R":[0.1]}}`))
	f.Add([]byte(`{"model":"serving","drive_id":3,"day":200}`))
	f.Add([]byte(`{"model":`))
	f.Add([]byte(`{"model":"serving","series":{"MWI_N":[1e999]}}`))
	f.Add([]byte(`{"model":"serving","mwi":0.9,"series":{"MWI_N":[0.1,0.2,0.3]}}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest("POST", "/v1/score", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		// 501 is the documented answer for store-backed requests on a
		// store-less daemon; anything else in 5xx is a handler bug.
		if rec.Code >= 500 && rec.Code != http.StatusNotImplemented {
			t.Fatalf("input %q produced HTTP %d: %s", body, rec.Code, rec.Body.String())
		}
	})
}

// newFuzzServer mirrors newTestServer for *testing.F. No store is
// attached: store-backed requests answer 501, which keeps the fuzz
// target on the decode/validate path it is meant to cover.
func newFuzzServer(f *testing.F) *Server {
	f.Helper()
	fixtureOnce.Do(buildFixture)
	if fixture.err != nil {
		f.Fatalf("fixture: %v", fixture.err)
	}
	reg := &core.Registry{Dir: f.TempDir()}
	if _, err := engine.SaveSnapshot(reg, "serving", fixture.snapA); err != nil {
		f.Fatal(err)
	}
	s, err := New(Options{Registry: reg, Artifacts: []string{"serving"}})
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(s.Close)
	return s
}

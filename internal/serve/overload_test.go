package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestGateAdmission covers the two-stage admission gate directly:
// capacity admits, the bounded queue waits, a full queue sheds, and
// an expired deadline abandons the wait.
func TestGateAdmission(t *testing.T) {
	g := newGate(1, 1)
	ctx := context.Background()

	if err := g.acquire(ctx); err != nil {
		t.Fatalf("empty gate refused: %v", err)
	}

	// Park waiters until every queue slot is taken; a further acquire
	// must shed without blocking.
	parked, cancelParked := context.WithCancel(ctx)
	defer cancelParked()
	got := make(chan error, cap(g.waiters))
	for i := 0; i < cap(g.waiters); i++ {
		go func() { got <- g.acquire(parked) }()
	}
	deadline := time.Now().Add(2 * time.Second)
	for len(g.waiters) < cap(g.waiters) {
		if time.Now().After(deadline) {
			t.Fatalf("waiters never parked: %d of %d", len(g.waiters), cap(g.waiters))
		}
		time.Sleep(time.Millisecond)
	}
	if err := g.acquire(ctx); err != errShed {
		t.Fatalf("full queue: %v; want errShed", err)
	}

	// Releasing the slot admits exactly one parked waiter.
	g.release()
	if err := <-got; err != nil {
		t.Fatalf("parked waiter should admit after release: %v", err)
	}
	// The other parked waiter leaves promptly when its context dies.
	cancelParked()
	if err := <-got; err != context.Canceled {
		t.Fatalf("cancelled waiter: %v; want Canceled", err)
	}
	g.release()

	// Expired deadline while queued: prompt ctx error, not a hang.
	if err := g.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	c, cancel := context.WithTimeout(ctx, 10*time.Millisecond)
	defer cancel()
	if err := g.acquire(c); err != context.DeadlineExceeded {
		t.Fatalf("queued past deadline: %v; want DeadlineExceeded", err)
	}
	g.release()
}

// TestShedResponseShape: a shed is a structured 429 with Retry-After
// and code "shed" — clients must be able to tell backoff advice from
// failure.
func TestShedResponseShape(t *testing.T) {
	s, _, _ := newTestServer(t, Options{MaxInflightSingle: 1})
	// Fill the single path: take the 1 inflight slot, then park
	// enough waiters to exhaust all 5 queue slots (1+4).
	g := s.gates[pathSingle]
	if err := g.acquire(context.Background()); err != nil {
		t.Fatalf("prefill inflight: %v", err)
	}
	defer g.release()
	parked, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < cap(g.waiters); i++ {
		go func() { _ = g.acquire(parked) }()
	}
	deadline := time.Now().Add(2 * time.Second)
	for len(g.waiters) < cap(g.waiters) {
		if time.Now().After(deadline) {
			t.Fatalf("waiters never filled: %d of %d", len(g.waiters), cap(g.waiters))
		}
		time.Sleep(time.Millisecond)
	}

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := ts.Client().Post(ts.URL+"/v1/score", "application/json",
		strings.NewReader(`{"model":"serving"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full gate: HTTP %d; want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	var e struct {
		Code string `json:"code"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Code != "shed" {
		t.Errorf("shed body code %q (err %v); want \"shed\"", e.Code, err)
	}
	if s.Stats().Shed != 1 {
		t.Errorf("shed counter %d; want 1", s.Stats().Shed)
	}
}

// TestBadDeadlineHeader: a malformed X-Deadline-Ms is the client's
// error, rejected 400 before admission.
func TestBadDeadlineHeader(t *testing.T) {
	s, _, _ := newTestServer(t, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for _, bad := range []string{"abc", "-5", "0", "1.5"} {
		req, err := http.NewRequest("POST", ts.URL+"/v1/score", strings.NewReader(`{"model":"serving"}`))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Deadline-Ms", bad)
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("X-Deadline-Ms %q: HTTP %d; want 400", bad, resp.StatusCode)
		}
	}
}

// TestPerPathBodyLimits: every POST endpoint bounds its body with a
// per-path limit and rejects oversize with a structured 413. The
// fixed-shape endpoints (fleet, ingest) get the small limit; the
// series-carrying endpoints get the large one.
func TestPerPathBodyLimits(t *testing.T) {
	s, _, _ := newTestServer(t, Options{
		MaxBodyBytes:      2048,
		MaxSmallBodyBytes: 256,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// pad returns a syntactically valid JSON body inflated past the
	// limit with leading whitespace, which the decoder reads through
	// MaxBytesReader before the object even starts.
	pad := func(body string, size int) string {
		if n := size - len(body); n > 0 {
			return strings.Repeat(" ", n) + body
		}
		return body
	}
	// padTail inflates past the limit with trailing whitespace after a
	// complete JSON value — the over-limit read happens in the
	// trailing-data check, not the decode, and must still 413.
	padTail := func(body string, size int) string {
		if n := size - len(body); n > 0 {
			return body + strings.Repeat(" ", n)
		}
		return body
	}
	cases := []struct {
		name string
		url  string
		body string
		code int
	}{
		{"score over limit", "/v1/score", pad(`{"model":"serving"}`, 4096), http.StatusRequestEntityTooLarge},
		{"ingest trailing pad over limit", "/v1/ingest", padTail(`{"day":1}`, 512), http.StatusRequestEntityTooLarge},
		{"score trailing pad over limit", "/v1/score", padTail(`{"model":"serving"}`, 4096), http.StatusRequestEntityTooLarge},
		{"batch over limit", "/v1/score/batch", pad(`{"model":"serving"}`, 4096), http.StatusRequestEntityTooLarge},
		{"fleet over small limit", "/v1/score/fleet", pad(`{"model":"serving","day":1}`, 512), http.StatusRequestEntityTooLarge},
		{"ingest over small limit", "/v1/ingest", pad(`{"day":1}`, 512), http.StatusRequestEntityTooLarge},
		{"fleet under small limit ok", "/v1/score/fleet", `{"model":"serving","day":1}`, http.StatusOK},
		{"score under limit not 413", "/v1/score", pad(`{"model":"serving"}`, 1024), http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, err := ts.Client().Post(ts.URL+tc.url, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.code {
			t.Errorf("%s: HTTP %d; want %d: %s", tc.name, resp.StatusCode, tc.code, buf.String())
		}
		if tc.code == http.StatusRequestEntityTooLarge && !strings.Contains(buf.String(), "exceeds") {
			t.Errorf("%s: 413 body not structured: %s", tc.name, buf.String())
		}
	}
}

// TestSubmitCtxCancel: a coalescer submitter whose context expires
// abandons the wait promptly with the context error; the batch still
// flushes without it.
func TestSubmitCtxCancel(t *testing.T) {
	flushed := make(chan int, 8)
	co := newCoalescer(coalescerConfig{
		nCols:   1,
		maxRows: 4,
		maxAge:  50 * time.Millisecond,
		score: func(cols [][]float64, out []float64) error {
			for i := range out {
				out[i] = cols[0][i] * 2
			}
			return nil
		},
		onFlush: func(rows int, trigger flushTrigger) { flushed <- rows },
	})
	defer co.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := co.SubmitCtx(ctx, []float64{1})
		done <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the row queue
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("cancelled submit: %v; want Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled submit did not return")
	}
	// The abandoned row still flushes with its batch on the age timer.
	select {
	case n := <-flushed:
		if n != 1 {
			t.Fatalf("flush carried %d rows; want the abandoned 1", n)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("abandoned row never flushed")
	}
	// A subsequent submit is unaffected.
	if p, err := co.Submit([]float64{3}); err != nil || p != 6 {
		t.Fatalf("submit after abandon: (%v, %v); want (6, nil)", p, err)
	}
}
